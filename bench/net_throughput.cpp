// Networked-service throughput/latency sweep → BENCH_net.json.
//
// Starts an in-process net::Server on a unix-domain socket and hammers it
// with N synchronous client connections (one thread each, request →
// response, no pipelining — the per-request latency IS the SLO a caller
// sees).  Two cache regimes per connection count:
//
//   cold — no certificate store: every request runs the full synthesis +
//          validation pipeline, so the row measures transport + compute.
//   warm — store enabled and pre-warmed with the one benchmark key: every
//          request is a memory-tier hit, so the row isolates the transport
//          and event-loop overhead.
//
// Rows carry throughput (requests/s) and p50/p90/p99 latency so the perf
// trajectory catches both regressions in the verify pipeline (cold) and
// in the socket path itself (warm).
//
// Knobs (on top of bench_common.hpp's environment protocol):
//   SPIV_NET_CONNECTIONS=1,4,32 — connection counts to sweep
//   SPIV_NET_REQUESTS=16        — requests per connection per row
//   SPIV_QUICK=1                — {1,4} connections, 6 requests each
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "core/format.hpp"
#include "model/reduction.hpp"
#include "model/serialize.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "store/cert_store.hpp"

namespace {

using Clock = std::chrono::steady_clock;

struct Row {
  std::size_t connections = 0;
  std::string mode;  // "cold" | "warm"
  std::size_t requests = 0;
  std::size_t ok = 0;
  std::size_t shed = 0;
  std::size_t errors = 0;
  double wall_seconds = 0.0;
  double p50_ms = 0.0, p90_ms = 0.0, p99_ms = 0.0;

  [[nodiscard]] double throughput_rps() const {
    return wall_seconds > 0.0 ? static_cast<double>(ok) / wall_seconds : 0.0;
  }
};

double percentile(std::vector<double> sorted, double p) {
  if (sorted.empty()) return 0.0;
  const double rank = p * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

std::vector<std::size_t> env_connection_counts(bool quick) {
  std::vector<std::size_t> fallback =
      quick ? std::vector<std::size_t>{1, 4}
            : std::vector<std::size_t>{1, 2, 4, 8, 16, 32};
  const char* v = spiv::core::env::raw("SPIV_NET_CONNECTIONS");
  if (!v) return fallback;
  std::vector<std::size_t> out;
  std::stringstream ss{v};
  std::string tok;
  while (std::getline(ss, tok, ','))
    if (!tok.empty()) out.push_back(std::stoul(tok));
  return out.empty() ? fallback : out;
}

/// One synchronous worker: `requests` round trips, latencies in seconds.
void run_client(const std::string& socket_path, const std::string& line,
                std::size_t requests, std::vector<double>& latencies,
                std::size_t& ok, std::size_t& shed, std::size_t& errors) {
  spiv::net::Client client;
  if (!client.connect_unix(socket_path)) {
    errors += requests;
    return;
  }
  for (std::size_t i = 0; i < requests; ++i) {
    const auto t0 = Clock::now();
    if (!client.send_line(line)) {
      errors += requests - i;
      break;
    }
    bool settled = false;
    while (auto reply = client.recv_line()) {
      if (reply->rfind("queued", 0) == 0) continue;
      if (reply->rfind("result ", 0) == 0)
        ++ok;
      else if (reply->rfind("busy", 0) == 0)
        ++shed;
      else
        ++errors;
      settled = true;
      break;
    }
    if (!settled) {
      errors += requests - i;
      break;
    }
    latencies.push_back(
        std::chrono::duration<double>(Clock::now() - t0).count());
  }
  client.close();
}

Row run_row(const std::string& socket_path, const std::string& line,
            std::size_t connections, std::size_t requests,
            const std::string& mode) {
  Row row;
  row.connections = connections;
  row.mode = mode;
  row.requests = connections * requests;
  std::vector<std::vector<double>> latencies(connections);
  std::vector<std::size_t> ok(connections, 0), shed(connections, 0),
      errors(connections, 0);
  const auto t0 = Clock::now();
  std::vector<std::thread> workers;
  workers.reserve(connections);
  for (std::size_t c = 0; c < connections; ++c)
    workers.emplace_back([&, c] {
      run_client(socket_path, line, requests, latencies[c], ok[c], shed[c],
                 errors[c]);
    });
  for (auto& w : workers) w.join();
  row.wall_seconds = std::chrono::duration<double>(Clock::now() - t0).count();
  std::vector<double> all;
  for (std::size_t c = 0; c < connections; ++c) {
    all.insert(all.end(), latencies[c].begin(), latencies[c].end());
    row.ok += ok[c];
    row.shed += shed[c];
    row.errors += errors[c];
  }
  std::sort(all.begin(), all.end());
  row.p50_ms = percentile(all, 0.50) * 1e3;
  row.p90_ms = percentile(all, 0.90) * 1e3;
  row.p99_ms = percentile(all, 0.99) * 1e3;
  return row;
}

std::string rows_json(const std::vector<Row>& rows, std::size_t jobs,
                      double wall_seconds) {
  std::ostringstream os;
  os << "{\n";
  os << "  \"experiment\": \"net-throughput\",\n";
  os << "  " << spiv::bench::machine_meta_fields() << ",\n";
  os << "  \"jobs\": " << jobs << ",\n";
  os << "  \"wall_seconds\": " << wall_seconds << ",\n";
  os << "  \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    os << "    {\"connections\": " << r.connections << ", \"mode\": \""
       << r.mode << "\", \"requests\": " << r.requests
       << ", \"ok\": " << r.ok << ", \"shed\": " << r.shed
       << ", \"errors\": " << r.errors
       << ", \"wall_seconds\": " << r.wall_seconds
       << ", \"throughput_rps\": " << r.throughput_rps()
       << ", \"p50_ms\": " << r.p50_ms << ", \"p90_ms\": " << r.p90_ms
       << ", \"p99_ms\": " << r.p99_ms << "}"
       << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  os << "  ]\n";
  os << "}\n";
  return os.str();
}

/// Scoped server on a fresh unix socket: started on construction, drained
/// and joined on destruction.
struct ScopedServer {
  explicit ScopedServer(spiv::net::ServerOptions options)
      : server(std::move(options)) {
    server.start();
    thread = std::thread([this] { server.run(); });
  }
  ~ScopedServer() {
    server.request_drain();
    if (thread.joinable()) thread.join();
  }
  spiv::net::Server server;
  std::thread thread;
};

}  // namespace

int main(int argc, char** argv) {
  const std::string metrics_path = spiv::bench::metrics_out_path(argc, argv);
  const bool quick = spiv::bench::env_flag("SPIV_QUICK");
  const std::vector<std::size_t> counts = env_connection_counts(quick);
  const std::size_t requests = static_cast<std::size_t>(spiv::bench::env_double(
      "SPIV_NET_REQUESTS", quick ? 6.0 : 16.0));
  const std::size_t jobs = spiv::core::env::jobs().value_or(
      std::max(1u, std::thread::hardware_concurrency()));

  namespace fs = std::filesystem;
  const fs::path scratch =
      fs::temp_directory_path() /
      ("spiv_net_bench_" + std::to_string(::getpid()));
  fs::create_directories(scratch);

  // Export the smallest family case once; every request verifies it with
  // the paper's default pipeline (LMIa / newton-ac / sylvester eq engine).
  const auto& family = spiv::model::benchmark_family();
  const fs::path case_path = scratch / (family.front().name + ".spivcase");
  {
    std::ofstream out{case_path};
    spiv::model::write_case(out, family.front());
  }
  const std::string verify_line = "verify " + case_path.string() +
                                  " 0 LMIa newton-ac sylvester 10 30";

  std::vector<Row> rows;
  const auto bench_t0 = Clock::now();
  for (const std::size_t connections : counts) {
    for (const char* mode : {"cold", "warm"}) {
      const bool warm = std::string{mode} == "warm";
      const fs::path store_dir = scratch / ("store_" + std::string{mode} +
                                            std::to_string(connections));
      spiv::store::CertStore store{store_dir.string()};
      spiv::net::ServerOptions options;
      const std::string socket_path =
          (scratch / ("sock_" + std::to_string(connections) + mode)).string();
      options.unix_path = socket_path;
      options.max_connections = connections + 4;
      options.service.jobs = jobs;
      options.service.store = warm ? &store : nullptr;
      ScopedServer scoped{std::move(options)};
      if (warm) {
        // One priming round trip so the sweep below is all cache hits.
        std::vector<double> lat;
        std::size_t ok = 0, shed = 0, errors = 0;
        run_client(socket_path, verify_line, 1, lat, ok, shed, errors);
        if (ok != 1)
          std::cerr << "net_throughput: warm priming request failed\n";
      }
      Row row =
          run_row(socket_path, verify_line, connections, requests, mode);
      std::cout << "connections=" << row.connections << " mode=" << row.mode
                << " ok=" << row.ok << " shed=" << row.shed
                << " errors=" << row.errors << " throughput_rps="
                << row.throughput_rps() << " p50_ms=" << row.p50_ms
                << " p99_ms=" << row.p99_ms << "\n";
      rows.push_back(std::move(row));
    }
  }
  const double wall =
      std::chrono::duration<double>(Clock::now() - bench_t0).count();

  spiv::core::write_file("BENCH_net.json", rows_json(rows, jobs, wall));
  std::cout << "(" << rows.size() << " row(s) recorded in BENCH_net.json)\n";
  spiv::bench::write_metrics(metrics_path);

  std::error_code ec;
  fs::remove_all(scratch, ec);

  bool clean = true;
  for (const Row& r : rows)
    if (r.errors != 0 || r.ok == 0) clean = false;
  return clean ? 0 : 1;
}
