// Reproduces paper Fig. 3: validation-time comparison across the exact
// validation engines (incl. the "+det" encodings), presented as a cactus
// table (number of obligations solved within increasing time budgets).
//
// Expected shape: the Sylvester-criterion checker is the fastest engine;
// the SMT-style engines pay for their generality and saturate/timeout on
// the largest instances.
#include <iostream>

#include "bench_common.hpp"
#include "core/format.hpp"

int main(int argc, char** argv) {
  using namespace spiv;
  const std::string metrics_out = bench::metrics_out_path(argc, argv);
  core::ExperimentConfig config = bench::make_config(
      /*synth_timeout=*/60.0, /*validate_timeout=*/30.0);
  // The candidate pool comes from a Table-I pass over the small/mid sizes
  // (the paper validates all 192 candidates; the SMT-style engines make
  // the largest ones too slow for a default run — raise SPIV_SIZES /
  // SPIV_VALIDATE_TIMEOUT for the full protocol).
  if (!bench::env_present("SPIV_SIZES") && !bench::env_flag("SPIV_QUICK"))
    config.sizes = {3, 5};  // SPIV_SIZES=3,5,10[,15] for the wider sweep
  core::Table1Result table1 = core::run_table1(config);
  std::cout << "candidate pool: " << table1.candidates.size()
            << " synthesized candidates\n";
  core::Figure3Result result = core::run_figure3(table1.candidates, config);
  std::cout << core::format_figure3(result);
  core::write_file("figure3.csv", core::figure3_csv(result));
  std::cout << "(CSV written to figure3.csv)\n";
  bench::write_metrics(metrics_out);
  return 0;
}
