// Shared configuration for the table/figure harnesses.
//
// Every harness reads its budgets from the environment so the full paper
// protocol (hours) and a quick smoke run share one binary:
//   SPIV_QUICK=1            — small sizes, tight budgets (CI-friendly)
//   SPIV_SIZES=3,5,10       — override the benchmark sizes
//   SPIV_SYNTH_TIMEOUT=120  — per-job synthesis budget (seconds)
//   SPIV_VALIDATE_TIMEOUT=60— per-job validation budget (seconds)
//   SPIV_VERBOSE=1          — progress on stderr
//   SPIV_JOBS=4             — worker threads for the experiment job pool
//                             (default: hardware_concurrency; 1 = serial;
//                             every non-timing output is identical for any
//                             value, see core/parallel.hpp)
//
// Every harness additionally accepts `--metrics-out FILE`: at exit it
// writes the process's metrics registry (per-stage latency histograms,
// pool and store counters) as Prometheus text to FILE, so the flat totals
// in BENCH_*.json gain an attributable stage breakdown.
#pragma once

#include <unistd.h>

#include <cstring>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>

#include "core/env.hpp"
#include "core/experiments.hpp"
#include "core/format.hpp"
#include "obs/metrics.hpp"

// Short git commit of the build, injected by bench/CMakeLists.txt.
#ifndef SPIV_GIT_COMMIT
#define SPIV_GIT_COMMIT "unknown"
#endif

namespace spiv::bench {

/// Machine/build identification for BENCH_*.json files, rendered as
/// top-level `"key": value` pairs (no surrounding braces) so the emitters
/// can splice them next to "jobs" and "wall_seconds".  A benchmark number
/// without the host, core count, and commit that produced it cannot be
/// compared against later runs.
inline std::string machine_meta_fields() {
  char host[256] = {};
  if (::gethostname(host, sizeof host - 1) != 0)
    std::snprintf(host, sizeof host, "unknown");
  std::ostringstream os;
  os << "\"hostname\": \"" << host
     << "\", \"hardware_concurrency\": " << std::thread::hardware_concurrency()
     << ", \"git_commit\": \"" << SPIV_GIT_COMMIT << "\"";
  return os.str();
}

inline bool env_present(const char* name) {
  const char* v = core::env::raw(name);
  return v && *v;
}

inline double env_double(const char* name, double fallback) {
  const char* v = core::env::raw(name);
  return v ? std::atof(v) : fallback;
}

inline bool env_flag(const char* name) {
  const char* v = core::env::raw(name);
  return v && *v && std::string{v} != "0";
}

inline std::vector<std::size_t> env_sizes(
    const std::vector<std::size_t>& fallback) {
  const char* v = core::env::raw("SPIV_SIZES");
  if (!v) return fallback;
  std::vector<std::size_t> out;
  std::stringstream ss{v};
  std::string tok;
  while (std::getline(ss, tok, ','))
    if (!tok.empty()) out.push_back(std::stoul(tok));
  return out.empty() ? fallback : out;
}

/// Parse `--metrics-out FILE` from a harness command line; empty when the
/// flag is absent.  Unknown arguments warn (the harnesses are otherwise
/// configured entirely through the environment).
inline std::string metrics_out_path(int argc, char** argv) {
  std::string path;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--metrics-out") && i + 1 < argc) {
      path = argv[++i];
    } else {
      std::cerr << "bench: ignoring unknown argument '" << argv[i]
                << "' (supported: --metrics-out FILE)\n";
    }
  }
  return path;
}

/// Write the global metrics registry's Prometheus exposition to `path`
/// (no-op when `path` is empty).
inline void write_metrics(const std::string& path) {
  if (path.empty()) return;
  if (core::write_file(path, obs::Registry::global().expose() + "\n"))
    std::cout << "(stage-breakdown metrics written to " << path << ")\n";
  else
    std::cerr << "bench: cannot write metrics to " << path << "\n";
}

inline core::ExperimentConfig make_config(double default_synth_timeout,
                                          double default_validate_timeout) {
  core::ExperimentConfig config;
  if (env_flag("SPIV_QUICK")) {
    config.sizes = {3, 5};
    config.synth_timeout_seconds = 10.0;
    config.validate_timeout_seconds = 10.0;
  } else {
    config.synth_timeout_seconds = default_synth_timeout;
    config.validate_timeout_seconds = default_validate_timeout;
  }
  config.sizes = env_sizes(config.sizes);
  config.synth_timeout_seconds =
      env_double("SPIV_SYNTH_TIMEOUT", config.synth_timeout_seconds);
  config.validate_timeout_seconds =
      env_double("SPIV_VALIDATE_TIMEOUT", config.validate_timeout_seconds);
  config.verbose = env_flag("SPIV_VERBOSE");
  return config;
}

}  // namespace spiv::bench
