// Reproduces paper Table II: synthesis of robust regions for the two
// largest systems (sizes 15 and 18), both operating modes, every
// synthesis method — reporting the certification time, the volume of the
// truncated ellipsoid W_i, and the reference-robustness radius eps.
//
// Expected shape: certified + optimal everywhere a candidate exists, with
// volumes spanning many orders of magnitude across methods (the paper's
// "vol" column ranges 7e-18..9e+44) and small eps radii.
#include <iostream>

#include "bench_common.hpp"
#include "core/format.hpp"

int main(int argc, char** argv) {
  using namespace spiv;
  const std::string metrics_out = bench::metrics_out_path(argc, argv);
  core::ExperimentConfig config = bench::make_config(
      /*synth_timeout=*/120.0, /*validate_timeout=*/120.0);
  std::vector<std::size_t> sizes =
      bench::env_flag("SPIV_QUICK") ? std::vector<std::size_t>{5}
                                    : std::vector<std::size_t>{15, 18};
  if (bench::env_present("SPIV_SIZES")) sizes = bench::env_sizes(sizes);
  core::Table2Result result = core::run_table2(config, sizes);
  std::cout << core::format_table2(result);
  core::write_file("table2.csv", core::table2_csv(result));
  std::cout << "(CSV written to table2.csv)\n";
  bench::write_metrics(metrics_out);
  return 0;
}
