// Google-benchmark micro benchmarks for the substrates: exact arithmetic,
// dense linear algebra, Lyapunov solvers, LMI iterations and validation
// engines.  These quantify the building blocks behind Tables I/II.
#include <benchmark/benchmark.h>

#include <random>

#include "exact/lyapunov_exact.hpp"
#include "exact/modular.hpp"
#include "lyapunov/synthesis.hpp"
#include "model/reduction.hpp"
#include "numeric/eigen.hpp"
#include "numeric/lyapunov.hpp"
#include "numeric/svd.hpp"
#include "sdp/lyapunov_lmi.hpp"
#include "smt/validate.hpp"

namespace {

using namespace spiv;
using numeric::Matrix;

Matrix random_hurwitz(std::size_t n, unsigned seed) {
  std::mt19937_64 rng{seed};
  std::normal_distribution<double> d;
  Matrix a{n, n};
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) a(i, j) = d(rng);
  const double shift = numeric::spectral_abscissa(a) + 1.0;
  for (std::size_t i = 0; i < n; ++i) a(i, i) -= shift;
  return a;
}

void BM_BigIntMultiply(benchmark::State& state) {
  const auto limbs = static_cast<unsigned>(state.range(0));
  exact::BigInt a{"123456789123456789"};
  exact::BigInt big = a.pow(limbs);
  for (auto _ : state) benchmark::DoNotOptimize(big * big);
}
BENCHMARK(BM_BigIntMultiply)->Arg(4)->Arg(16)->Arg(64);

void BM_BigIntGcd(benchmark::State& state) {
  // Operands sharing a large common factor — the shape Rational
  // cross-cancellation feeds the binary gcd on the exact hot path.
  const auto limbs = static_cast<unsigned>(state.range(0));
  const exact::BigInt g = exact::BigInt{"987654321987654321"}.pow(limbs);
  const exact::BigInt a = g * exact::BigInt{"1000000007"};
  const exact::BigInt b = g * exact::BigInt{"998244353"};
  for (auto _ : state) benchmark::DoNotOptimize(exact::BigInt::gcd(a, b));
}
BENCHMARK(BM_BigIntGcd)->Arg(1)->Arg(4)->Arg(16);

void BM_BigIntSmallVecAddMul(benchmark::State& state) {
  // The small-operand fast paths of the pooled-limb BigInt: Arg(1) stays on
  // the u64/__int128 word paths, Arg(4) fills the four inline limbs without
  // touching the heap pool.  This is the shape of CRT delta arithmetic.
  const auto limbs = static_cast<unsigned>(state.range(0));
  const exact::BigInt a = exact::BigInt{"123456789"}.pow(limbs);
  const exact::BigInt b = exact::BigInt{"987654321"}.pow(limbs);
  for (auto _ : state) {
    exact::BigInt s = a * b;
    s += a;
    s -= b;
    benchmark::DoNotOptimize(s);
  }
}
BENCHMARK(BM_BigIntSmallVecAddMul)->Arg(1)->Arg(4);

void BM_CrtFold(benchmark::State& state) {
  // One product-tree batch fold of range(0) fresh primes into the 171
  // solution entries of the paper's size-15 vech system (m starts at 1:
  // the first, cheapest batch — later batches add the m-delta multiply).
  const std::size_t entries = 171;
  const auto primes_n = static_cast<std::size_t>(state.range(0));
  std::vector<std::uint64_t> primes(primes_n);
  std::vector<std::vector<std::uint64_t>> res(primes_n);
  std::vector<const std::uint64_t*> ptrs(primes_n);
  for (std::size_t i = 0; i < primes_n; ++i) {
    primes[i] = exact::modular_prime(i);
    res[i].resize(entries);
    for (std::size_t e = 0; e < entries; ++e)
      res[i][e] = (0x9e3779b97f4a7c15ull * (i * entries + e + 1)) % primes[i];
    ptrs[i] = res[i].data();
  }
  for (auto _ : state) {
    state.PauseTiming();
    std::vector<exact::BigInt> xs(entries);
    exact::BigInt m{1};
    state.ResumeTiming();
    exact::detail::crt_fold_batch(xs, m, ptrs, primes, 1);
    benchmark::DoNotOptimize(m);
  }
}
BENCHMARK(BM_CrtFold)->Arg(8)->Arg(32);

void BM_RationalReconstruct(benchmark::State& state) {
  // Euclid pullback of one entry whose CRT image spans range(0) primes —
  // the per-entry cost the output-sensitive cache exists to avoid.
  const auto primes_n = static_cast<std::size_t>(state.range(0));
  const exact::BigInt num{"123456789123456789"};
  const exact::BigInt den{"987654321987"};
  std::vector<std::uint64_t> primes(primes_n);
  std::vector<std::uint64_t> res(primes_n);
  std::vector<const std::uint64_t*> ptrs(primes_n);
  for (std::size_t i = 0; i < primes_n; ++i) {
    primes[i] = exact::modular_prime(i);
    const exact::Montgomery62 mont{primes[i]};
    res[i] = mont.from_mont(
        mont.mul(mont.to_mont(num.mod_u64(primes[i])),
                 mont.inv(mont.to_mont(den.mod_u64(primes[i])))));
    ptrs[i] = &res[i];
  }
  std::vector<exact::BigInt> xs(1);
  exact::BigInt m{1};
  exact::detail::crt_fold_batch(xs, m, ptrs, primes, 1);
  const exact::BigInt bound =
      exact::isqrt((m - exact::BigInt{1}) / exact::BigInt{2});
  for (auto _ : state)
    benchmark::DoNotOptimize(exact::rational_reconstruct(xs[0], m, bound));
}
BENCHMARK(BM_RationalReconstruct)->Arg(8)->Arg(64)->Arg(256);

void BM_MontgomeryMulInv(benchmark::State& state) {
  // The inner product of the per-prime elimination kernel: one Montgomery
  // multiply per matrix entry per pivot, plus the occasional inverse.
  const exact::Montgomery62 mont{exact::modular_prime(0)};
  std::uint64_t x = mont.to_mont(123456789u);
  const std::uint64_t y = mont.to_mont(987654321u);
  for (auto _ : state) {
    x = mont.mul(x, y);
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_MontgomeryMulInv);

void BM_ModularVsBareissSolve(benchmark::State& state) {
  // Whole-solver comparison on one vech-sized system (state.range(1) = 1
  // selects the modular backend) — the per-prime kernel overhead shows up
  // as the gap between the two at small sizes.
  const auto n = static_cast<std::size_t>(state.range(0));
  Matrix a = random_hurwitz(n, 11);
  exact::RatMatrix a_exact =
      exact::rat_matrix_from_doubles(a.data().data(), n, n, 4);
  exact::RatMatrix op = exact::lyapunov_operator_vech(a_exact);
  exact::RatMatrix rhs{op.rows(), 1};
  const auto v = exact::vech(exact::RatMatrix::identity(n) * exact::Rational{-1});
  for (std::size_t i = 0; i < v.size(); ++i) rhs(i, 0) = v[i];
  const bool modular = state.range(1) == 1;
  for (auto _ : state) {
    if (modular)
      benchmark::DoNotOptimize(exact::solve_rational_modular(op, rhs));
    else
      benchmark::DoNotOptimize(op.solve(rhs));
  }
}
BENCHMARK(BM_ModularVsBareissSolve)
    ->Args({4, 0})
    ->Args({4, 1})
    ->Args({6, 0})
    ->Args({6, 1});

void BM_RationalMatrixMultiply(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  exact::RatMatrix m{n, n};
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      m(i, j) = exact::Rational{static_cast<std::int64_t>(i * 31 + j * 17 + 1),
                                static_cast<std::int64_t>(j + 3)};
  for (auto _ : state) benchmark::DoNotOptimize(m * m);
}
BENCHMARK(BM_RationalMatrixMultiply)->Arg(6)->Arg(13)->Arg(21);

void BM_ComplexSchur(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Matrix a = random_hurwitz(n, 1);
  for (auto _ : state) benchmark::DoNotOptimize(numeric::complex_schur(a));
}
BENCHMARK(BM_ComplexSchur)->Arg(6)->Arg(13)->Arg(21);

void BM_BartelsStewart(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Matrix a = random_hurwitz(n, 2);
  Matrix q = Matrix::identity(n);
  for (auto _ : state) benchmark::DoNotOptimize(numeric::solve_lyapunov(a, q));
}
BENCHMARK(BM_BartelsStewart)->Arg(6)->Arg(13)->Arg(21);

void BM_JacobiSvd(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Matrix a = random_hurwitz(n, 3);
  for (auto _ : state) benchmark::DoNotOptimize(numeric::svd_decompose(a));
}
BENCHMARK(BM_JacobiSvd)->Arg(6)->Arg(13)->Arg(21);

void BM_ExactLyapunovSolve(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Matrix a = random_hurwitz(n, 4);
  exact::RatMatrix a_exact =
      exact::rat_matrix_from_doubles(a.data().data(), n, n, 4);
  exact::RatMatrix q = exact::RatMatrix::identity(n);
  for (auto _ : state)
    benchmark::DoNotOptimize(exact::solve_lyapunov_exact(a_exact, q));
}
BENCHMARK(BM_ExactLyapunovSolve)->Arg(4)->Arg(6)->Arg(8);

void BM_LmiNewtonSolve(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Matrix a = random_hurwitz(n, 5);
  auto problem = sdp::make_lyapunov_lmi(a, sdp::LyapunovLmiConfig{});
  for (auto _ : state)
    benchmark::DoNotOptimize(
        sdp::solve_lmi(problem, sdp::Backend::NewtonAnalyticCenter));
}
BENCHMARK(BM_LmiNewtonSolve)->Arg(6)->Arg(13);

void BM_SylvesterValidation(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Matrix a = random_hurwitz(n, 6);
  auto p = numeric::solve_lyapunov(a, Matrix::identity(n));
  for (auto _ : state)
    benchmark::DoNotOptimize(
        smt::validate_lyapunov(a, *p, smt::Engine::Sylvester, 10));
}
BENCHMARK(BM_SylvesterValidation)->Arg(6)->Arg(13)->Arg(21);

void BM_BalancedTruncation(benchmark::State& state) {
  const auto order = static_cast<std::size_t>(state.range(0));
  model::StateSpace engine = model::make_engine_model();
  for (auto _ : state)
    benchmark::DoNotOptimize(model::balanced_truncation(engine, order));
}
BENCHMARK(BM_BalancedTruncation)->Arg(3)->Arg(10)->Arg(15);

}  // namespace

BENCHMARK_MAIN();
