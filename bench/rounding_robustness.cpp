// Reproduces the paper's rounding-robustness study (§VI-B1, text): the
// synthesized candidates are re-validated after rounding to the 10th, 6th
// and 4th significant figure.
//
// Expected shape: everything validates at 10 digits; a few entries break
// at 6; many more break at 4 — with the LMIa method the most robust
// (paper: the only method still valid at 4 significant figures).
#include <iostream>

#include "bench_common.hpp"
#include "core/format.hpp"

int main(int argc, char** argv) {
  using namespace spiv;
  const std::string metrics_out = bench::metrics_out_path(argc, argv);
  core::ExperimentConfig config = bench::make_config(
      /*synth_timeout=*/60.0, /*validate_timeout=*/30.0);
  if (!bench::env_present("SPIV_SIZES") && !bench::env_flag("SPIV_QUICK"))
    config.sizes = {3, 5, 10};  // SPIV_SIZES=... to widen
  core::Table1Result table1 = core::run_table1(config);
  std::cout << "candidate pool: " << table1.candidates.size()
            << " synthesized candidates\n";
  core::RoundingResult result =
      core::run_rounding_study(table1.candidates, config, {10, 6, 4});
  std::cout << core::format_rounding(result);
  bench::write_metrics(metrics_out);
  return 0;
}
