// Reproduces paper Table I: synthesis and validation of Lyapunov functions
// for every benchmark size, method, and SDP backend.
//
// Expected shape (cf. EXPERIMENTS.md): eq-smt times out at the largest
// sizes, the numerical methods are fast and validate everywhere, the
// short-step backend is one to two orders of magnitude slower than the
// other two, and the aggressive backend may produce occasional invalid
// candidates on the hardest (LMIa+, largest-size) instances.
//
// Besides the human-readable table and table1.csv, the harness records its
// own wall-clock and worker count in BENCH_table1.json so the parallel
// speedup (SPIV_JOBS=N vs 1) can be tracked by machines.
//
// With SPIV_COLD_WARM=1 and SPIV_CACHE_DIR set, the grid runs twice —
// cold (computing + filling the certificate store) then warm (served from
// the store) — and BENCH_service.json records cold/warm seconds, the hit
// count, and whether the two tables were byte-identical, so the perf
// trajectory captures cache effectiveness.
#include <chrono>
#include <iostream>
#include <sstream>

#include "bench_common.hpp"
#include "core/format.hpp"
#include "core/parallel.hpp"
#include "store/cert_store.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double run_once(const spiv::core::ExperimentConfig& config,
                spiv::core::Table1Result& result) {
  const auto t0 = Clock::now();
  result = spiv::core::run_table1(config);
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

std::string service_bench_json(double cold_seconds, double warm_seconds,
                               std::uint64_t hits, bool identical,
                               std::size_t jobs) {
  std::ostringstream os;
  os << "{\n";
  os << "  \"experiment\": \"table1-cold-warm\",\n";
  os << "  " << spiv::bench::machine_meta_fields() << ",\n";
  os << "  \"jobs\": " << jobs << ",\n";
  os << "  \"cold_seconds\": " << cold_seconds << ",\n";
  os << "  \"warm_seconds\": " << warm_seconds << ",\n";
  os << "  \"speedup\": "
     << (warm_seconds > 0.0 ? cold_seconds / warm_seconds : 0.0) << ",\n";
  os << "  \"hits\": " << hits << ",\n";
  os << "  \"cells_identical\": " << (identical ? "true" : "false") << "\n";
  os << "}\n";
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace spiv;
  const std::string metrics_out = bench::metrics_out_path(argc, argv);
  core::ExperimentConfig config = bench::make_config(
      /*synth_timeout=*/75.0, /*validate_timeout=*/60.0);
  const std::size_t jobs = core::resolve_jobs(config.jobs);

  store::CertStore* cache = store::CertStore::from_env();
  const bool cold_warm = bench::env_flag("SPIV_COLD_WARM") && cache != nullptr;
  if (bench::env_flag("SPIV_COLD_WARM") && !cache)
    std::cerr << "table1: SPIV_COLD_WARM=1 ignored (SPIV_CACHE_DIR unset)\n";

  core::Table1Result result;
  const double wall = run_once(config, result);
  std::cout << core::format_table1(result);
  core::write_file("table1.csv", core::table1_csv(result));
  core::write_file("BENCH_table1.json",
                   core::table1_bench_json(result, wall, jobs,
                                           bench::machine_meta_fields()));
  std::cout << "(CSV written to table1.csv; harness wall-clock " << wall
            << " s with " << jobs
            << " worker(s) recorded in BENCH_table1.json)\n";

  if (cold_warm) {
    const store::StoreStats before = cache->stats();
    core::Table1Result warm_result;
    const double warm_wall = run_once(config, warm_result);
    const std::uint64_t hits = cache->stats().hits() - before.hits();
    const bool identical =
        core::format_table1(warm_result) == core::format_table1(result);
    core::write_file("BENCH_service.json",
                     service_bench_json(wall, warm_wall, hits, identical, jobs));
    std::cout << "(cold " << wall << " s -> warm " << warm_wall << " s, "
              << hits << " store hit(s), cells "
              << (identical ? "identical" : "DIFFERENT")
              << "; recorded in BENCH_service.json)\n";
  }
  bench::write_metrics(metrics_out);
  return 0;
}
