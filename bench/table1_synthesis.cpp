// Reproduces paper Table I: synthesis and validation of Lyapunov functions
// for every benchmark size, method, and SDP backend.
//
// Expected shape (cf. EXPERIMENTS.md): eq-smt times out at the largest
// sizes, the numerical methods are fast and validate everywhere, the
// short-step backend is one to two orders of magnitude slower than the
// other two, and the aggressive backend may produce occasional invalid
// candidates on the hardest (LMIa+, largest-size) instances.
//
// Besides the human-readable table and table1.csv, the harness records its
// own wall-clock and worker count in BENCH_table1.json so the parallel
// speedup (SPIV_JOBS=N vs 1) can be tracked by machines.
#include <chrono>
#include <iostream>

#include "bench_common.hpp"
#include "core/format.hpp"
#include "core/parallel.hpp"

int main() {
  using namespace spiv;
  core::ExperimentConfig config = bench::make_config(
      /*synth_timeout=*/75.0, /*validate_timeout=*/60.0);
  const std::size_t jobs = core::resolve_jobs(config.jobs);
  const auto t0 = std::chrono::steady_clock::now();
  core::Table1Result result = core::run_table1(config);
  const double wall = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
  std::cout << core::format_table1(result);
  core::write_file("table1.csv", core::table1_csv(result));
  core::write_file("BENCH_table1.json",
                   core::table1_bench_json(result, wall, jobs));
  std::cout << "(CSV written to table1.csv; harness wall-clock " << wall
            << " s with " << jobs
            << " worker(s) recorded in BENCH_table1.json)\n";
  return 0;
}
