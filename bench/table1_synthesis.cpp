// Reproduces paper Table I: synthesis and validation of Lyapunov functions
// for every benchmark size, method, and SDP backend.
//
// Expected shape (cf. EXPERIMENTS.md): eq-smt times out at the largest
// sizes, the numerical methods are fast and validate everywhere, the
// short-step backend is one to two orders of magnitude slower than the
// other two, and the aggressive backend may produce occasional invalid
// candidates on the hardest (LMIa+, largest-size) instances.
//
// Besides the human-readable table and table1.csv, the harness records its
// own wall-clock and worker count in BENCH_table1.json so the parallel
// speedup (SPIV_JOBS=N vs 1) can be tracked by machines.
//
// With SPIV_COLD_WARM=1 and a certificate store (--cache-dir DIR or
// $SPIV_CACHE_DIR), the grid runs twice — cold (computing + filling the
// certificate store) then warm (served from the store) — and
// BENCH_service.json records cold/warm seconds, the hit count, and whether
// the two tables were byte-identical, so the perf trajectory captures
// cache effectiveness.
#include <chrono>
#include <cstring>
#include <iostream>
#include <sstream>

#include "bench_common.hpp"
#include "core/format.hpp"
#include "core/parallel.hpp"
#include "store/cert_store.hpp"
#include "verify/verify.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double run_once(const spiv::core::ExperimentConfig& config,
                spiv::core::Table1Result& result) {
  const auto t0 = Clock::now();
  result = spiv::core::run_table1(config);
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

std::string service_bench_json(double cold_seconds, double warm_seconds,
                               std::uint64_t hits, bool identical,
                               std::size_t jobs) {
  std::ostringstream os;
  os << "{\n";
  os << "  \"experiment\": \"table1-cold-warm\",\n";
  os << "  " << spiv::bench::machine_meta_fields() << ",\n";
  os << "  \"jobs\": " << jobs << ",\n";
  os << "  \"cold_seconds\": " << cold_seconds << ",\n";
  os << "  \"warm_seconds\": " << warm_seconds << ",\n";
  os << "  \"speedup\": "
     << (warm_seconds > 0.0 ? cold_seconds / warm_seconds : 0.0) << ",\n";
  os << "  \"hits\": " << hits << ",\n";
  os << "  \"cells_identical\": " << (identical ? "true" : "false") << "\n";
  os << "}\n";
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace spiv;
  // This harness takes --cache-dir in addition to the common --metrics-out,
  // so it parses its own arguments instead of bench::metrics_out_path.
  std::string metrics_out, cache_dir;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--metrics-out") && i + 1 < argc) {
      metrics_out = argv[++i];
    } else if (!std::strcmp(argv[i], "--cache-dir") && i + 1 < argc) {
      cache_dir = argv[++i];
    } else {
      std::cerr << "bench: ignoring unknown argument '" << argv[i]
                << "' (supported: --metrics-out FILE, --cache-dir DIR)\n";
    }
  }
  core::ExperimentConfig config = bench::make_config(
      /*synth_timeout=*/75.0, /*validate_timeout=*/60.0);
  const std::size_t jobs = core::resolve_jobs(config.jobs);

  // Explicit --cache-dir wins over $SPIV_CACHE_DIR; the resolved store is
  // handed to run_table1 through the config (one resolution point).
  store::CertStore* cache = verify::resolve_store(cache_dir);
  config.store = cache;
  const bool cold_warm = bench::env_flag("SPIV_COLD_WARM") && cache != nullptr;
  if (bench::env_flag("SPIV_COLD_WARM") && !cache)
    std::cerr << "table1: SPIV_COLD_WARM=1 ignored (no --cache-dir and "
                 "SPIV_CACHE_DIR unset)\n";

  core::Table1Result result;
  const double wall = run_once(config, result);
  std::cout << core::format_table1(result);
  core::write_file("table1.csv", core::table1_csv(result));
  core::write_file("BENCH_table1.json",
                   core::table1_bench_json(result, wall, jobs,
                                           bench::machine_meta_fields()));
  std::cout << "(CSV written to table1.csv; harness wall-clock " << wall
            << " s with " << jobs
            << " worker(s) recorded in BENCH_table1.json)\n";

  if (cold_warm) {
    const store::StoreStats before = cache->stats();
    core::Table1Result warm_result;
    const double warm_wall = run_once(config, warm_result);
    const std::uint64_t hits = cache->stats().hits() - before.hits();
    const bool identical =
        core::format_table1(warm_result) == core::format_table1(result);
    core::write_file("BENCH_service.json",
                     service_bench_json(wall, warm_wall, hits, identical, jobs));
    std::cout << "(cold " << wall << " s -> warm " << warm_wall << " s, "
              << hits << " store hit(s), cells "
              << (identical ? "identical" : "DIFFERENT")
              << "; recorded in BENCH_service.json)\n";
  }
  bench::write_metrics(metrics_out);
  return 0;
}
