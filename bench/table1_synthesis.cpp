// Reproduces paper Table I: synthesis and validation of Lyapunov functions
// for every benchmark size, method, and SDP backend.
//
// Expected shape (cf. EXPERIMENTS.md): eq-smt times out at the largest
// sizes, the numerical methods are fast and validate everywhere, the
// short-step backend is one to two orders of magnitude slower than the
// other two, and the aggressive backend may produce occasional invalid
// candidates on the hardest (LMIa+, largest-size) instances.
#include <iostream>

#include "bench_common.hpp"
#include "core/format.hpp"

int main() {
  using namespace spiv;
  core::ExperimentConfig config = bench::make_config(
      /*synth_timeout=*/75.0, /*validate_timeout=*/60.0);
  core::Table1Result result = core::run_table1(config);
  std::cout << core::format_table1(result);
  core::write_file("table1.csv", core::table1_csv(result));
  std::cout << "(CSV written to table1.csv)\n";
  return 0;
}
