// Ablation: the LMI design parameters called out in DESIGN.md —
//   (a) the decay-rate alpha of LMIa: larger alpha shrinks the feasible
//       set (infeasible beyond 2|abscissa|) but buys validation
//       robustness to rounding;
//   (b) the eigenvalue floor nu of LMIa+;
//   (c) the backend's target margin.
// Measured on one representative mode (size 10), reporting synthesis
// time, whether exact validation passes at 10/6/4 significant digits.
#include <cstdio>

#include "bench_common.hpp"
#include "lyapunov/synthesis.hpp"
#include "model/reduction.hpp"
#include "numeric/eigen.hpp"
#include "smt/validate.hpp"

int main() {
  using namespace spiv;
  model::StateSpace plant =
      model::balanced_truncation(model::make_engine_model(), 10).sys;
  auto mode =
      model::close_loop_single_mode(plant, model::engine_gains_mode0());
  const double abscissa = numeric::spectral_abscissa(mode.a);
  std::printf("ABLATION — LMI parameters on size-10 mode 0 "
              "(spectral abscissa %.4f)\n\n", abscissa);

  auto validate_at = [&](const numeric::Matrix& p, int digits) {
    return smt::validate_lyapunov(mode.a, p, smt::Engine::Sylvester, digits)
        .valid();
  };

  std::printf("(a) LMIa decay rate alpha (feasible iff alpha < 2|abscissa| "
              "= %.3f)\n", 2.0 * std::abs(abscissa));
  std::printf("%10s %10s %8s %8s %8s\n", "alpha", "synth s", "v@10", "v@6",
              "v@4");
  for (double alpha : {0.01, 0.05, 0.1, 0.2, 0.24, 0.3}) {
    lyap::SynthesisOptions options;
    options.alpha = alpha;
    auto c = lyap::synthesize(mode.a, lyap::Method::LmiAlpha, options);
    if (!c) {
      std::printf("%10.2f %10s %8s %8s %8s\n", alpha, "infeas", "-", "-", "-");
      continue;
    }
    std::printf("%10.2f %10.2f %8s %8s %8s\n", alpha, c->synth_seconds,
                validate_at(c->p, 10) ? "ok" : "FAIL",
                validate_at(c->p, 6) ? "ok" : "FAIL",
                validate_at(c->p, 4) ? "ok" : "FAIL");
  }

  std::printf("\n(b) LMIa+ eigenvalue floor nu (with alpha = 0.1)\n");
  std::printf("%10s %10s %8s %8s %8s\n", "nu", "synth s", "v@10", "v@6",
              "v@4");
  for (double nu : {1e-4, 1e-3, 1e-2, 0.1}) {
    lyap::SynthesisOptions options;
    options.alpha = 0.1;
    options.nu = nu;
    auto c = lyap::synthesize(mode.a, lyap::Method::LmiAlphaPlus, options);
    if (!c) {
      std::printf("%10.0e %10s %8s %8s %8s\n", nu, "infeas", "-", "-", "-");
      continue;
    }
    std::printf("%10.0e %10.2f %8s %8s %8s\n", nu, c->synth_seconds,
                validate_at(c->p, 10) ? "ok" : "FAIL",
                validate_at(c->p, 6) ? "ok" : "FAIL",
                validate_at(c->p, 4) ? "ok" : "FAIL");
  }

  std::printf("\n(c) backend comparison on the same problem (plain LMI)\n");
  std::printf("%12s %10s %12s %8s\n", "backend", "synth s", "margin", "v@10");
  for (auto backend :
       {sdp::Backend::NewtonAnalyticCenter, sdp::Backend::FastInteriorPoint,
        sdp::Backend::ShortStepBarrier}) {
    lyap::SynthesisOptions options;
    options.backend = backend;
    auto c = lyap::synthesize(mode.a, lyap::Method::Lmi, options);
    if (!c) {
      std::printf("%12s %10s\n", sdp::to_string(backend).c_str(), "infeas");
      continue;
    }
    // Re-measure the margin of the candidate.
    auto eig_p = numeric::symmetric_eigen(c->p);
    std::printf("%12s %10.2f %12.2e %8s\n", sdp::to_string(backend).c_str(),
                c->synth_seconds, eig_p.values.front(),
                validate_at(c->p, 10) ? "ok" : "FAIL");
  }
  return 0;
}
