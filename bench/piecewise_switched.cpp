// Reproduces the paper's §VI-B2 negative result: piecewise-quadratic
// Lyapunov synthesis for the switched system with two surface encodings.
//
// Expected shape: the LMI solver always finds a candidate; the exact
// validation of the switching-surface condition always fails.
#include <iostream>

#include "bench_common.hpp"
#include "core/format.hpp"

int main(int argc, char** argv) {
  using namespace spiv;
  const std::string metrics_out = bench::metrics_out_path(argc, argv);
  core::ExperimentConfig config = bench::make_config(
      /*synth_timeout=*/120.0, /*validate_timeout=*/60.0);
  if (!bench::env_present("SPIV_SIZES") && !bench::env_flag("SPIV_QUICK"))
    config.sizes = {3, 5};  // SPIV_SIZES=3,5,10 for the wider run
  core::PiecewiseResult result = core::run_piecewise(config);
  std::cout << core::format_piecewise(result);
  bench::write_metrics(metrics_out);
  return 0;
}
