// Ablation: what the design choices inside the exact layer buy.
//
//   (a) vech (symmetric) vs full-Kronecker parameterization of the exact
//       Lyapunov solve — the paper's eq-smt method hinges on the smaller
//       system (n(n+1)/2 vs n^2 unknowns);
//   (b) digits of the input rationalization (binary-exact doubles vs
//       integer-rounded matrices) — why the paper's integer-truncated
//       benchmark variants are so much cheaper for eq-smt.
#include <chrono>
#include <cstdio>

#include "bench_common.hpp"
#include "exact/lyapunov_exact.hpp"
#include "model/reduction.hpp"

namespace {

using namespace spiv;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

}  // namespace

int main() {
  const double budget = bench::env_double("SPIV_SYNTH_TIMEOUT", 60.0);
  std::printf("ABLATION — exact Lyapunov solve: vech vs full Kronecker, "
              "exact-double vs integer inputs (budget %.0fs per cell)\n",
              budget);
  std::printf("%-8s %8s %14s %14s %14s\n", "model", "dim", "vech (s)",
              "kron (s)", "kron/vech");

  for (const auto& bm : model::make_benchmark_family()) {
    if (bm.size > 5) continue;  // the full-Kronecker variant explodes fast
    auto mode =
        model::close_loop_single_mode(bm.plant, model::engine_gains_mode0());
    const std::size_t d = mode.a.rows();
    exact::RatMatrix a_exact = exact::rat_matrix_from_doubles(
        mode.a.data().data(), d, d, /*digits=*/0);
    exact::RatMatrix q = exact::RatMatrix::identity(d);

    double t_vech = -1.0, t_kron = -1.0;
    {
      auto t0 = Clock::now();
      try {
        auto p = exact::solve_lyapunov_exact(a_exact, q,
                                             Deadline::after_seconds(budget));
        if (p) t_vech = seconds_since(t0);
      } catch (const TimeoutError&) {
      }
    }
    {
      auto t0 = Clock::now();
      try {
        auto p = exact::solve_lyapunov_exact_full_kronecker(
            a_exact, q, Deadline::after_seconds(budget));
        if (p) t_kron = seconds_since(t0);
      } catch (const TimeoutError&) {
      }
    }
    char ratio[32] = "-";
    if (t_vech > 0 && t_kron > 0)
      std::snprintf(ratio, sizeof ratio, "%.1fx", t_kron / t_vech);
    auto cell = [](double t) {
      static char buf[2][32];
      static int which = 0;
      which ^= 1;
      if (t < 0)
        std::snprintf(buf[which], 32, "TO");
      else
        std::snprintf(buf[which], 32, "%.3f", t);
      return buf[which];
    };
    std::printf("%-8s %8zu %14s %14s %14s\n", bm.name.c_str(), d,
                cell(t_vech), cell(t_kron), ratio);
  }
  std::printf("\n(integer-rounded variants — the 'i' rows — are cheaper "
              "because the closed-loop matrices have small integer entries,\n"
              " which is exactly why the paper includes them as 'simpler "
              "numerical inputs')\n");
  return 0;
}
