// Ablation: what the design choices inside the exact layer buy.
//
//   (a) vech (symmetric) vs full-Kronecker parameterization of the exact
//       Lyapunov solve — the paper's eq-smt method hinges on the smaller
//       system (n(n+1)/2 vs n^2 unknowns);
//   (b) fraction-free Bareiss vs the multi-modular CRT solver on the vech
//       system — where the SPIV_EXACT_SOLVER=modular|auto speedup comes
//       from, including the first size-10 eq-smt row that finishes at all.
//
// Section (b) is also written to BENCH_exact_solvers.json (with machine
// metadata) so the bareiss/modular ratio can be tracked across commits.
#include <chrono>
#include <cstdio>
#include <sstream>

#include "bench_common.hpp"
#include "core/parallel.hpp"
#include "exact/lyapunov_exact.hpp"
#include "exact/modular.hpp"
#include "model/reduction.hpp"

namespace {

using namespace spiv;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

const char* cell(double t, char (&buf)[32]) {
  if (t < 0)
    std::snprintf(buf, sizeof buf, "TO");
  else
    std::snprintf(buf, sizeof buf, "%.3f", t);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string metrics_out = bench::metrics_out_path(argc, argv);
  const double budget = bench::env_double("SPIV_SYNTH_TIMEOUT", 60.0);
  const std::vector<std::size_t> sizes =
      bench::env_sizes(bench::env_flag("SPIV_QUICK")
                           ? std::vector<std::size_t>{3, 5}
                           : std::vector<std::size_t>{3, 5, 10, 15, 18});
  const std::size_t jobs = core::resolve_jobs();
  const auto wanted = [&sizes](std::size_t s) {
    for (std::size_t w : sizes)
      if (w == s) return true;
    return false;
  };

  std::printf("ABLATION — exact Lyapunov solve: vech vs full Kronecker, "
              "exact-double vs integer inputs (budget %.0fs per cell)\n",
              budget);
  std::printf("%-8s %8s %14s %14s %14s\n", "model", "dim", "vech (s)",
              "kron (s)", "kron/vech");

  for (const auto& bm : model::make_benchmark_family()) {
    if (bm.size > 5 || !wanted(bm.size)) continue;  // kron explodes fast
    auto mode =
        model::close_loop_single_mode(bm.plant, model::engine_gains_mode0());
    const std::size_t d = mode.a.rows();
    exact::RatMatrix a_exact = exact::rat_matrix_from_doubles(
        mode.a.data().data(), d, d, /*digits=*/0);
    exact::RatMatrix q = exact::RatMatrix::identity(d);

    double t_vech = -1.0, t_kron = -1.0;
    {
      auto t0 = Clock::now();
      try {
        auto p = exact::solve_lyapunov_exact(a_exact, q,
                                             Deadline::after_seconds(budget));
        if (p) t_vech = seconds_since(t0);
      } catch (const TimeoutError&) {
      }
    }
    {
      auto t0 = Clock::now();
      try {
        auto p = exact::solve_lyapunov_exact_full_kronecker(
            a_exact, q, Deadline::after_seconds(budget));
        if (p) t_kron = seconds_since(t0);
      } catch (const TimeoutError&) {
      }
    }
    char ratio[32] = "-";
    if (t_vech > 0 && t_kron > 0)
      std::snprintf(ratio, sizeof ratio, "%.1fx", t_kron / t_vech);
    char b1[32], b2[32];
    std::printf("%-8s %8zu %14s %14s %14s\n", bm.name.c_str(), d,
                cell(t_vech, b1), cell(t_kron, b2), ratio);
  }
  std::printf("\n(integer-rounded variants — the 'i' rows — are cheaper "
              "because the closed-loop matrices have small integer entries,\n"
              " which is exactly why the paper includes them as 'simpler "
              "numerical inputs')\n");

  // ---- (b) Bareiss vs multi-modular on the vech system -------------------
  std::printf("\nABLATION — exact linear solve backend on the vech system "
              "(budget %.0fs per cell)\n", budget);
  std::printf("%-8s %6s %6s %14s %14s %10s %8s %8s  %s\n", "model", "dim",
              "vech-N", "bareiss (s)", "modular (s)", "speedup", "primes",
              "same", "elim/crt/rec/ver (s)");
  std::ostringstream rows;
  bool first = true;
  for (const auto& bm : model::make_benchmark_family()) {
    if (!wanted(bm.size)) continue;
    auto mode =
        model::close_loop_single_mode(bm.plant, model::engine_gains_mode0());
    const std::size_t d = mode.a.rows();
    exact::RatMatrix a_exact = exact::rat_matrix_from_doubles(
        mode.a.data().data(), d, d, /*digits=*/0);
    exact::RatMatrix q = exact::RatMatrix::identity(d);
    exact::RatMatrix op = exact::lyapunov_operator_vech(a_exact);
    const std::vector<exact::Rational> rhs_vec = exact::vech(-q);
    exact::RatMatrix rhs{op.rows(), 1};
    for (std::size_t i = 0; i < rhs_vec.size(); ++i) rhs(i, 0) = rhs_vec[i];

    double t_bareiss = -1.0, t_modular = -1.0;
    std::optional<exact::RatMatrix> x_bareiss, x_modular;
    {
      auto t0 = Clock::now();
      try {
        x_bareiss = op.solve(rhs, Deadline::after_seconds(budget));
        if (x_bareiss) t_bareiss = seconds_since(t0);
      } catch (const TimeoutError&) {
      }
    }
    exact::ModularStats stats;
    {
      exact::ModularOptions options;
      options.jobs = jobs;
      options.stats = &stats;
      auto t0 = Clock::now();
      try {
        x_modular = exact::solve_rational_modular(
            op, rhs, Deadline::after_seconds(budget), options);
        if (x_modular) t_modular = seconds_since(t0);
      } catch (const TimeoutError&) {
      }
    }
    // Parallel-phase speedup: rerun single-threaded and compare the CRT +
    // reconstruction stage (the part the batched product-tree fold spreads
    // over core::for_each_block).  Skipped when only one worker is
    // available — a 1-core box would just double the runtime to report 1.0.
    double speedup_crt_rec = -1.0;
    if (jobs > 1 && t_modular > 0) {
      exact::ModularStats stats1;
      exact::ModularOptions options1;
      options1.jobs = 1;
      options1.stats = &stats1;
      try {
        auto x1 = exact::solve_rational_modular(
            op, rhs, Deadline::after_seconds(budget), options1);
        const double par = stats.crt_seconds + stats.reconstruct_seconds;
        if (x1 && par > 0)
          speedup_crt_rec =
              (stats1.crt_seconds + stats1.reconstruct_seconds) / par;
        if (x1 && !(*x1 == *x_modular))
          std::printf("WARNING: jobs=1 and jobs=%zu results differ at %s\n",
                      jobs, bm.name.c_str());
      } catch (const TimeoutError&) {
      }
    }
    const bool both = x_bareiss.has_value() && x_modular.has_value();
    const bool identical = both && *x_bareiss == *x_modular;
    char ratio[32] = "-";
    if (t_bareiss > 0 && t_modular > 0)
      std::snprintf(ratio, sizeof ratio, "%.1fx", t_bareiss / t_modular);
    char b1[32], b2[32], phases[64];
    std::snprintf(phases, sizeof phases, "%.2f/%.2f/%.2f/%.2f",
                  stats.elim_seconds, stats.crt_seconds,
                  stats.reconstruct_seconds, stats.verify_seconds);
    std::printf("%-8s %6zu %6zu %14s %14s %10s %8llu %8s  %s\n",
                bm.name.c_str(), d, op.rows(), cell(t_bareiss, b1),
                cell(t_modular, b2), ratio,
                static_cast<unsigned long long>(stats.primes_used),
                both ? (identical ? "yes" : "NO") : "-", phases);

    rows << (first ? "\n" : ",\n") << "    {\"model\": \"" << bm.name
         << "\", \"size\": " << bm.size << ", \"dim\": " << d
         << ", \"vech_unknowns\": " << op.rows()
         << ", \"bareiss_seconds\": " << (t_bareiss < 0 ? -1.0 : t_bareiss)
         << ", \"modular_seconds\": " << (t_modular < 0 ? -1.0 : t_modular)
         << ", \"primes_used\": " << stats.primes_used
         << ", \"unlucky_primes\": " << stats.unlucky_primes
         << ", \"early_exit\": " << (stats.early_exit ? "true" : "false")
         << ", \"jobs\": " << jobs
         << ", \"elim_seconds\": " << stats.elim_seconds
         << ", \"crt_seconds\": " << stats.crt_seconds
         << ", \"reconstruct_seconds\": " << stats.reconstruct_seconds
         << ", \"verify_seconds\": " << stats.verify_seconds
         << ", \"crt_reconstruct_speedup\": "
         << (speedup_crt_rec < 0 ? -1.0 : speedup_crt_rec)
         << ", \"identical\": " << (identical ? "true" : "false") << "}";
    first = false;
  }
  std::ostringstream json;
  json << "{\n  \"experiment\": \"exact_solvers\",\n  "
       << bench::machine_meta_fields() << ",\n  \"budget_seconds\": " << budget
       << ",\n  \"cells\": [" << rows.str() << "\n  ]\n}\n";
  core::write_file("BENCH_exact_solvers.json", json.str());
  std::printf("\n(-1 seconds = timed out at the budget; backend comparison "
              "written to BENCH_exact_solvers.json)\n");
  bench::write_metrics(metrics_out);
  return 0;
}
