// spiv::service — the `spiv-serve` verification protocol.
//
// One line-oriented request protocol, spoken over two transports that share
// every byte of the implementation:
//
//   * stdin/stdout (`spiv-serve` with no --listen flag): one Session driven
//     by a getline loop — the original batch mode, byte-identical today.
//   * unix-domain / TCP sockets (`spiv-serve --listen PATH`,
//     `--listen-tcp [HOST:]PORT`): many concurrent Sessions multiplexed by
//     the poll(2) event loop in src/net, one Session per connection.
//
// ## Commands
//
//   verify <case-file> <mode> <method> <backend|-> <engine> <digits> [timeout_s]
//       Queue one verification.  Acknowledged immediately with
//       `queued id=N` (ids count from 1 per session), answered
//       asynchronously — possibly out of order with other requests — with
//       exactly one `result` or `busy` line (see below).
//
//   batch-verify <count>
//       Pipelined form: exactly <count> follow-up lines, each the argument
//       tail of a `verify` (everything after the word `verify`).  The batch
//       is acknowledged once with `queued ids=<first>-<last> batch=<count>`,
//       each member is answered with its own `result`/`busy` line as it
//       completes (out of order), and when the last member lands the
//       session emits `batch-done ids=<first>-<last> ok=<a> failed=<b>
//       shed=<c>` (ok: valid|invalid — the pipeline ran to a verdict;
//       failed: timeout|synth-failed|error; shed: answered `busy`).
//       If the input ends mid-batch the unread members are reported with
//       one `error batch truncated ...` line and the batch-done line
//       reflects only the members actually received.
//
//   deadline <seconds|off>
//       Per-connection deadline cap, carried into the pipeline's
//       BudgetPolicy: every subsequent verify on this session runs under
//       SharedBudget{min(request timeout, cap)}.  `off` removes the cap.
//       Acknowledged with `ok deadline=<seconds|off>`.
//
//   wait
//       Session barrier: the transport stops consuming this session's
//       input until every request it has queued so far is answered, then
//       emits `idle`.  Other connections keep flowing; on stdin this is
//       the classic whole-pool barrier it has always been.
//
//   stats
//       One line of pool/store counters with the per-tier breakdown:
//       `stats jobs=<n> memory_hits=<a> disk_hits=<b> misses=<c>
//       writes=<d> neg_hits=<e> neg_writes=<f> memory_entries=<g>`
//       (or `stats jobs=<n> store=off` without a store).
//
//   metrics
//       Prometheus text exposition of the global registry, ends `# EOF`.
//
//   quit
//       Graceful drain: stop accepting new work (socket mode: the whole
//       server stops accepting, exactly like SIGTERM), finish every
//       in-flight request, flush all responses, then shut down.
//
// ## Responses
//
//   queued id=N | queued ids=F-L batch=K
//   result id=N status=<valid|invalid|timeout|synth-failed|error>
//     cache=<hit|miss|neg-hit|off> key=<32 hex> model=<name> mode=<m>
//     method=<name> backend=<name|-> engine=<name> digits=<d>
//     synth_seconds=<s> validate_seconds=<s> [msg=<text>]
//     (one physical line; wrapped here for readability.  msg text is
//     sanitized: embedded newlines can never split a protocol line.)
//   busy id=N inflight=<i> queue_depth=<q>
//       Load shed: admission control refused the request without queuing
//       it.  Sheds are cheap by design — no case file is opened, no job is
//       submitted — and never block or abort the connection.
//   batch-done ids=F-L ok=<a> failed=<b> shed=<c>
//   idle | ok deadline=<v> | error <text>
//
// ## Admission control
//
// A session admits a request only while (a) the number of in-flight
// requests across ALL sessions is below `max_inflight` and (b) the job
// pool's queue-depth gauge (`spiv_pool_queue_depth`) is below
// `max_queue_depth`; either bound set to 0 disables that check.  Refused
// requests are answered with a `busy` line and counted in
// `spiv_serve_shed_total`.  Admission is checked on the event-loop thread
// without a lock, so a burst across many connections can overshoot the
// bound by at most the number of transport threads (one today).
//
// ## Budget semantics
//
// The [timeout_s] budget covers the WHOLE request: synthesis consumes from
// the front and validation gets only the remainder, so one request can
// never burn more than its declared timeout (min'ed with the session's
// `deadline` cap when one is set).
//
// Warm requests are answered straight from the certificate store
// (cache=hit) without invoking any synthesis kernel; misses are computed
// and inserted.  With `negative_ttl_seconds` > 0, synth-failed and timeout
// outcomes are remembered in the store's negative tier for the TTL and
// replayed as cache=neg-hit, so repeated hopeless requests stop re-burning
// the synthesis budget (timeout entries only shield requests whose budget
// is <= the budget that timed out).
#pragma once

#include <atomic>
#include <cstddef>
#include <functional>
#include <iosfwd>
#include <memory>
#include <optional>
#include <string>

#include "core/parallel.hpp"
#include "lyapunov/synthesis.hpp"
#include "obs/metrics.hpp"
#include "sdp/lmi.hpp"
#include "smt/validate.hpp"
#include "store/cert_store.hpp"
#include "verify/verify.hpp"

namespace spiv::service {

/// One parsed `verify` request (public so tests can substitute a Handler
/// that answers without running the pipeline).
struct Request {
  std::size_t id = 0;
  std::string case_file;
  std::size_t mode = 0;
  lyap::Method method = lyap::Method::LmiAlpha;
  std::optional<sdp::Backend> backend;
  smt::Engine engine = smt::Engine::Sylvester;
  int digits = 10;
  double timeout_seconds = 60.0;
};

/// One response: the machine-readable outcome plus the protocol line.
struct Response {
  verify::Status status = verify::Status::Error;
  std::string line;
};

/// Executes one admitted request on a pool worker.  The default handler
/// loads the case file, closes the loop, and runs verify::run_verify;
/// tests inject sleeps or canned outcomes here to make scheduling
/// properties (out-of-order completion, shedding, drain) deterministic.
using Handler = std::function<Response(
    const Request&, store::CertStore*, double negative_ttl_seconds,
    const CancelToken&)>;

/// The default Handler (the real verification pipeline).
[[nodiscard]] Handler default_handler();

struct ServeOptions {
  /// Worker threads for the request pool: 0 = $SPIV_JOBS (else
  /// hardware_concurrency).
  std::size_t jobs = 0;
  /// Whole-request (synthesis + validation combined) budget when a request
  /// carries no explicit timeout.
  double default_timeout_seconds = 60.0;
  /// Certificate store; nullptr disables caching (every request computes).
  store::CertStore* store = nullptr;
  /// Admission control: maximum in-flight requests across all sessions
  /// (0 = unbounded, the stdin default).
  std::size_t max_inflight = 0;
  /// Admission control: shed while the pool queue-depth gauge is at or
  /// above this (0 = unbounded).
  std::int64_t max_queue_depth = 0;
  /// TTL for negative certificate-store entries (0 = negative caching off).
  double negative_ttl_seconds = 0.0;
  /// Request executor; empty = default_handler().
  Handler handler;
};

/// Shared service state behind every session: the job pool, the store, the
/// admission counters, and the obs instruments.  One Engine serves any
/// number of concurrent Sessions; all of its methods are thread-safe.
class Engine {
 public:
  explicit Engine(const ServeOptions& options);

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Block until every submitted job has finished.
  void wait_idle() { pool_.wait_idle(); }

  [[nodiscard]] std::size_t thread_count() const {
    return pool_.thread_count();
  }
  [[nodiscard]] const ServeOptions& options() const { return options_; }
  /// Requests that ended in status=error (protocol or pipeline).
  [[nodiscard]] int errors() const {
    return errors_.load(std::memory_order_relaxed);
  }
  /// Requests admitted and not yet answered, across all sessions.
  [[nodiscard]] std::int64_t inflight() const {
    return inflight_.load(std::memory_order_relaxed);
  }

 private:
  friend class Session;

  /// Reserve one in-flight slot; false = shed (answer `busy`).
  [[nodiscard]] bool try_admit();
  void release();
  void count_error() {
    errors_.fetch_add(1, std::memory_order_relaxed);
    errors_total_.add();
  }

  ServeOptions options_;
  core::JobPool pool_;
  std::atomic<int> errors_{0};
  std::atomic<std::int64_t> inflight_{0};
  obs::Counter& requests_total_;
  obs::Counter& errors_total_;
  obs::Counter& shed_total_;
  obs::Counter& batches_total_;
  obs::Gauge& inflight_gauge_;
  obs::Gauge& queue_depth_gauge_;     ///< the pool's global depth gauge
  obs::Histogram& request_seconds_;   ///< queued -> response written (SLO)
};

/// Thread-safe whole-line sink: the transport appends line + "\n" to its
/// output (a mutexed ostream for stdin, a connection outbox for sockets).
/// Completion jobs call it from pool threads; it must tolerate that.
using LineSink = std::function<void(const std::string&)>;

/// What the transport should do after feeding a line.
enum class Flow {
  Continue,  ///< keep feeding input
  Wait,      ///< stop feeding THIS session until poll_wait() returns true
  Quit,      ///< session asked the service to drain
};

/// One protocol session (one connection, or the stdin stream).  handle_line
/// is single-threaded per session (the transport's read loop); responses
/// may be emitted concurrently from pool workers via the LineSink.
class Session {
 public:
  /// `on_settled` (optional) runs on the pool thread after a completion has
  /// both reached the sink AND decremented pending() — the transport's
  /// wake-up hook, so an event loop never misses the pending()==0 edge it
  /// gates `wait` and connection teardown on.
  Session(Engine& engine, LineSink sink,
          std::function<void()> on_settled = {});

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Feed one input line (without its terminator).
  [[nodiscard]] Flow handle_line(const std::string& line);

  /// `wait` support: true (and emits `idle`) once every request this
  /// session queued has been answered.  Call when in-flight work drains.
  [[nodiscard]] bool poll_wait();

  /// Input ended (EOF / connection reset).  Resolves a half-read batch so
  /// its batch-done line is still emitted for the members that did arrive.
  void finish_input();

  /// Requests admitted by this session and not yet answered.  The decrement
  /// happens after the response line reaches the sink, so pending() == 0
  /// means every response has been handed to the transport.
  [[nodiscard]] std::size_t pending() const {
    return pending_->load(std::memory_order_acquire);
  }

 private:
  struct Batch;

  Flow handle_command(const std::string& line);
  void handle_verify_args(std::istringstream& is,
                          const std::shared_ptr<Batch>& batch);
  void emit(const std::string& line) { sink_(line); }
  /// Record a synchronously-resolved batch member (parse error / shed).
  static void resolve_batch_member(const std::shared_ptr<Batch>& batch,
                                   verify::Status status, bool shed);

  Engine& engine_;
  LineSink sink_;
  std::function<void()> on_settled_;
  std::size_t next_id_ = 1;
  double deadline_cap_ = 0.0;  ///< 0 = no per-session cap
  bool wait_armed_ = false;
  std::shared_ptr<Batch> open_batch_;   ///< non-null while reading members
  std::size_t batch_to_read_ = 0;       ///< members still expected
  std::shared_ptr<std::atomic<std::size_t>> pending_;
};

/// Run the protocol on an istream/ostream pair until EOF or `quit`;
/// returns the number of requests that ended in status=error (0 = clean).
/// This is the stdin transport: a thin getline adapter over one Session.
int serve(std::istream& in, std::ostream& out, const ServeOptions& options);

}  // namespace spiv::service
