// spiv::service — the `spiv-serve` batch verification service.
//
// A line-oriented request protocol on an istream/ostream pair (the binary
// wires it to stdin/stdout), designed so a fleet of engine configurations
// can be verified without recompiling a bench binary:
//
//   verify <case-file> <mode> <method> <backend|-> <engine> <digits> [timeout_s]
//   wait                       # barrier: block until all queued work is done
//   stats                      # one line of store/pool counters
//   metrics                    # Prometheus text exposition, ends with `# EOF`
//   quit                       # drain and exit
//
// Each syntactically valid `verify` is acknowledged immediately with
// `queued id=N`, dispatched onto a core::JobPool with a per-request
// Deadline bound to the pool's CancelToken, and answered asynchronously
// with exactly one line:
//
//   result id=N status=<valid|invalid|timeout|synth-failed|error>
//     cache=<hit|miss|off> key=<32 hex> model=<name> mode=<m>
//     method=<name> backend=<name|-> engine=<name> digits=<d>
//     synth_seconds=<s> validate_seconds=<s> [msg=<text>]
//   (one physical line; wrapped here for readability.  msg text is
//   sanitized: embedded newlines can never split a protocol line.)
//
// The [timeout_s] budget covers the WHOLE request: synthesis consumes from
// the front and validation gets only the remainder, so one request can
// never burn more than its declared timeout.
//
// Warm requests are answered straight from the certificate store
// (cache=hit) without invoking any synthesis kernel; misses are computed
// and inserted, so the next identical request — from this process or any
// later one sharing the cache directory — is served from disk.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>

#include "store/cert_store.hpp"

namespace spiv::service {

struct ServeOptions {
  /// Worker threads for the request pool: 0 = $SPIV_JOBS (else
  /// hardware_concurrency).
  std::size_t jobs = 0;
  /// Whole-request (synthesis + validation combined) budget when a request
  /// carries no explicit timeout.
  double default_timeout_seconds = 60.0;
  /// Certificate store; nullptr disables caching (every request computes).
  store::CertStore* store = nullptr;
};

/// Run the protocol until EOF or `quit`; returns the number of requests
/// that ended in status=error (0 = clean run).  Thread-safe with respect to
/// its own pool; `out` is written one complete line at a time.
int serve(std::istream& in, std::ostream& out, const ServeOptions& options);

}  // namespace spiv::service
