#include "service/service.hpp"

#include <atomic>
#include <chrono>
#include <fstream>
#include <iomanip>
#include <istream>
#include <mutex>
#include <optional>
#include <ostream>
#include <sstream>

#include "core/parallel.hpp"
#include "model/serialize.hpp"
#include "model/switched_pi.hpp"

namespace spiv::service {

namespace {

/// One parsed `verify` line.
struct VerifyRequest {
  std::size_t id = 0;
  std::string case_file;
  std::size_t mode = 0;
  lyap::Method method = lyap::Method::LmiAlpha;
  std::optional<sdp::Backend> backend;
  smt::Engine engine = smt::Engine::Sylvester;
  int digits = 10;
  double timeout_seconds = 60.0;
};

/// Serializes whole lines onto the response stream.
class LineWriter {
 public:
  explicit LineWriter(std::ostream& out) : out_(out) {}
  void write(const std::string& line) {
    std::lock_guard<std::mutex> lock(mutex_);
    out_ << line << "\n" << std::flush;
  }

 private:
  std::ostream& out_;
  std::mutex mutex_;
};

std::string result_prefix(const VerifyRequest& req) {
  std::ostringstream os;
  os << "result id=" << req.id;
  return os.str();
}

std::string request_fields(const VerifyRequest& req, const std::string& key,
                           const std::string& model_name) {
  std::ostringstream os;
  os << " key=" << (key.empty() ? "-" : key) << " model="
     << (model_name.empty() ? "-" : model_name) << " mode=" << req.mode
     << " method=" << lyap::to_string(req.method) << " backend="
     << (req.backend ? sdp::to_string(*req.backend) : "-") << " engine="
     << smt::to_string(req.engine) << " digits=" << req.digits;
  return os.str();
}

std::string error_line(const VerifyRequest& req, const std::string& msg) {
  return result_prefix(req) + " status=error cache=off" +
         request_fields(req, "", "") + " msg=" + msg;
}

std::string seconds_field(const char* name, double s) {
  std::ostringstream os;
  os << " " << name << "=" << std::setprecision(17) << s;
  return os.str();
}

/// The whole per-request pipeline: load case, close the loop, consult the
/// store, compute on miss, insert, format one result line.
std::string handle_verify(const VerifyRequest& req, store::CertStore* store,
                          const CancelToken& token) {
  model::BenchmarkModel bm;
  {
    std::ifstream in{req.case_file};
    if (!in) return error_line(req, "cannot open case file " + req.case_file);
    try {
      bm = model::read_case(in);
    } catch (const std::exception& e) {
      return error_line(req, std::string{"case parse failed: "} + e.what());
    }
  }
  if (req.mode >= bm.controller.num_modes()) {
    std::ostringstream os;
    os << "mode " << req.mode << " out of range (case has "
       << bm.controller.num_modes() << " modes)";
    return error_line(req, os.str());
  }

  // The synthesis options used on a miss, built up front so the cache key
  // covers the exact alpha/nu/kappa the kernel would run with — a hit must
  // never replay a certificate synthesized under different parameters.
  lyap::SynthesisOptions options;
  if (req.backend) options.backend = *req.backend;

  store::CertRequest cert_req;
  cert_req.a =
      model::close_loop_single_mode(bm.plant, bm.controller.gains[req.mode]).a;
  cert_req.method = req.method;
  cert_req.backend = req.backend;
  cert_req.engine = req.engine;
  cert_req.digits = req.digits;
  cert_req.set_synthesis_params(options);
  const std::string key = store::request_key(cert_req);

  if (store) {
    if (auto rec = store->lookup(key)) {
      const char* status = rec->validation.valid() ? "valid" : "invalid";
      return result_prefix(req) + " status=" + status + " cache=hit" +
             request_fields(req, key, bm.name) +
             seconds_field("synth_seconds", rec->candidate.synth_seconds) +
             seconds_field("validate_seconds", rec->validation.seconds());
    }
  }

  // Miss: run the full synthesize-then-validate pipeline.
  options.deadline = Deadline::after_seconds(req.timeout_seconds, token);
  std::optional<lyap::Candidate> candidate;
  try {
    candidate = lyap::synthesize(cert_req.a, req.method, options);
  } catch (const TimeoutError&) {
    return result_prefix(req) + " status=timeout cache=miss" +
           request_fields(req, key, bm.name);
  } catch (const std::exception& e) {
    return error_line(req, std::string{"synthesis failed: "} + e.what());
  }
  if (!candidate)
    return result_prefix(req) + " status=synth-failed cache=miss" +
           request_fields(req, key, bm.name);

  smt::CheckOptions check;
  check.deadline = Deadline::after_seconds(req.timeout_seconds, token);
  smt::LyapunovValidation validation;
  try {
    validation = smt::validate_lyapunov(cert_req.a, candidate->p, req.engine,
                                        req.digits, check);
  } catch (const std::exception& e) {
    return error_line(req, std::string{"validation failed: "} + e.what());
  }
  const bool timed_out =
      validation.positivity.outcome == smt::Outcome::Timeout ||
      validation.decrease.outcome == smt::Outcome::Timeout;
  const char* status =
      timed_out ? "timeout" : (validation.valid() ? "valid" : "invalid");
  if (store && !timed_out)
    store->insert(key, store::CertRecord{*candidate, validation});
  return result_prefix(req) + " status=" + status + " cache=" +
         (store ? "miss" : "off") + request_fields(req, key, bm.name) +
         seconds_field("synth_seconds", candidate->synth_seconds) +
         seconds_field("validate_seconds", validation.seconds());
}

/// Parse one `verify` line (after the command token).  Returns an error
/// message, or empty on success.
std::string parse_verify(std::istringstream& is, VerifyRequest& req) {
  std::string method, backend, engine;
  if (!(is >> req.case_file >> req.mode >> method >> backend >> engine >>
        req.digits))
    return "usage: verify <case-file> <mode> <method> <backend|-> <engine> "
           "<digits> [timeout_s]";
  const auto m = lyap::method_from_string(method);
  if (!m) return "unknown method '" + method + "'";
  req.method = *m;
  if (backend == "-") {
    // LMI methods always run with *some* backend; pin the default one so
    // `LMIa -` and `LMIa newton-ac` share one certificate.
    req.backend = lyap::is_lmi_method(req.method)
                      ? std::optional<sdp::Backend>{
                            sdp::Backend::NewtonAnalyticCenter}
                      : std::nullopt;
  } else {
    const auto b = sdp::backend_from_string(backend);
    if (!b) return "unknown backend '" + backend + "'";
    req.backend = lyap::is_lmi_method(req.method)
                      ? std::optional<sdp::Backend>{*b}
                      : std::nullopt;
  }
  const auto e = smt::engine_from_string(engine);
  if (!e) return "unknown engine '" + engine + "'";
  req.engine = *e;
  if (req.digits < 0) return "digits must be >= 0";
  double timeout = 0.0;
  if (is >> timeout) {
    if (!(timeout > 0.0)) return "timeout must be positive";
    req.timeout_seconds = timeout;
  }
  return "";
}

}  // namespace

int serve(std::istream& in, std::ostream& out, const ServeOptions& options) {
  LineWriter writer{out};
  core::JobPool pool{core::resolve_jobs(options.jobs)};
  std::atomic<int> errors{0};
  std::size_t next_id = 1;

  std::string line;
  while (std::getline(in, line)) {
    std::istringstream is{line};
    std::string command;
    if (!(is >> command) || command[0] == '#') continue;
    if (command == "quit") break;
    if (command == "wait") {
      pool.wait_idle();
      writer.write("idle");
      continue;
    }
    if (command == "stats") {
      std::ostringstream os;
      os << "stats jobs=" << pool.thread_count();
      if (options.store) {
        const store::StoreStats s = options.store->stats();
        os << " memory_hits=" << s.memory_hits << " disk_hits=" << s.disk_hits
           << " misses=" << s.misses << " writes=" << s.writes;
      } else {
        os << " store=off";
      }
      writer.write(os.str());
      continue;
    }
    if (command != "verify") {
      writer.write("error unknown command '" + command + "'");
      errors.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    VerifyRequest req;
    req.id = next_id++;
    req.timeout_seconds = options.default_timeout_seconds;
    const std::string parse_error = parse_verify(is, req);
    if (!parse_error.empty()) {
      writer.write(error_line(req, parse_error));
      errors.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    writer.write("queued id=" + std::to_string(req.id));
    store::CertStore* store = options.store;
    pool.submit([req, store, &pool, &writer, &errors] {
      const std::string response = handle_verify(req, store, pool.token());
      if (response.find(" status=error ") != std::string::npos)
        errors.fetch_add(1, std::memory_order_relaxed);
      writer.write(response);
    });
  }
  pool.wait_idle();
  return errors.load(std::memory_order_relaxed);
}

}  // namespace spiv::service
