#include "service/service.hpp"

#include <atomic>
#include <chrono>
#include <fstream>
#include <iomanip>
#include <istream>
#include <mutex>
#include <optional>
#include <ostream>
#include <sstream>

#include "core/parallel.hpp"
#include "model/serialize.hpp"
#include "model/switched_pi.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "verify/verify.hpp"

namespace spiv::service {

namespace {

/// One parsed `verify` line.
struct VerifyRequest {
  std::size_t id = 0;
  std::string case_file;
  std::size_t mode = 0;
  lyap::Method method = lyap::Method::LmiAlpha;
  std::optional<sdp::Backend> backend;
  smt::Engine engine = smt::Engine::Sylvester;
  int digits = 10;
  double timeout_seconds = 60.0;
};

/// Serializes whole lines onto the response stream.
class LineWriter {
 public:
  explicit LineWriter(std::ostream& out) : out_(out) {}
  void write(const std::string& line) {
    std::lock_guard<std::mutex> lock(mutex_);
    out_ << line << "\n" << std::flush;
  }

 private:
  std::ostream& out_;
  std::mutex mutex_;
};

std::string result_prefix(const VerifyRequest& req) {
  std::ostringstream os;
  os << "result id=" << req.id;
  return os.str();
}

std::string request_fields(const VerifyRequest& req, const std::string& key,
                           const std::string& model_name) {
  std::ostringstream os;
  os << " key=" << (key.empty() ? "-" : key) << " model="
     << (model_name.empty() ? "-" : model_name) << " mode=" << req.mode
     << " method=" << lyap::to_string(req.method) << " backend="
     << (req.backend ? sdp::to_string(*req.backend) : "-") << " engine="
     << smt::to_string(req.engine) << " digits=" << req.digits;
  return os.str();
}

/// The service reuses the pipeline's canonical taxonomy; `serve` counts
/// failures on this enum — the formatted line is user-influenced (msg text,
/// case-file paths) and must never drive accounting.
using Status = verify::Status;

/// One response: the machine-readable outcome plus the protocol line.
struct ServiceOutcome {
  Status status = Status::Error;
  std::string line;
};

/// Collapse embedded line breaks (and other control bytes) so a message —
/// e.g. an exception's what() — can never split a protocol line, and trim
/// the trailing whitespace that multi-line messages leave behind.
std::string sanitize_message(const std::string& msg) {
  std::string out = msg;
  for (char& c : out)
    if (static_cast<unsigned char>(c) < 0x20) c = ' ';
  while (!out.empty() && out.back() == ' ') out.pop_back();
  return out;
}

ServiceOutcome error_outcome(const VerifyRequest& req, const std::string& msg) {
  return {Status::Error, result_prefix(req) + " status=error cache=off" +
                             request_fields(req, "", "") + " msg=" +
                             sanitize_message(msg)};
}

std::string seconds_field(const char* name, double s) {
  std::ostringstream os;
  os << " " << name << "=" << std::setprecision(17) << s;
  return os.str();
}

/// The per-request adapter: load the case, close the loop, hand the matrix
/// to the verify pipeline (which owns deadlines, cache keys, store access,
/// and outcome classification), and render one protocol line.
ServiceOutcome handle_verify(const VerifyRequest& req, store::CertStore* store,
                             const CancelToken& token) {
  model::BenchmarkModel bm;
  {
    obs::Span span{"case-load", req.case_file};
    std::ifstream in{req.case_file};
    if (!in)
      return error_outcome(req, "cannot open case file " + req.case_file);
    try {
      bm = model::read_case(in);
    } catch (const std::exception& e) {
      return error_outcome(req, std::string{"case parse failed: "} + e.what());
    }
  }
  if (req.mode >= bm.controller.num_modes()) {
    std::ostringstream os;
    os << "mode " << req.mode << " out of range (case has "
       << bm.controller.num_modes() << " modes)";
    return error_outcome(req, os.str());
  }

  verify::VerifyRequest vreq;
  {
    obs::Span span{"close-loop", bm.name};
    vreq.a =
        model::close_loop_single_mode(bm.plant, bm.controller.gains[req.mode])
            .a;
  }
  vreq.method = req.method;
  vreq.backend = req.backend;
  vreq.engine = req.engine;
  vreq.digits = req.digits;
  // Service semantics: one budget shared by both stages — synthesis
  // consumes from the front and validation gets only the remainder, so a
  // request can never burn more than its declared timeout.
  vreq.budget = verify::SharedBudget{req.timeout_seconds};

  verify::VerifyContext ctx;
  ctx.store = store;
  ctx.token = &token;
  const verify::VerifyOutcome outcome = verify::run_verify(ctx, vreq);

  if (outcome.status == Status::Error)
    return error_outcome(req, outcome.message);
  std::string line = result_prefix(req) + " status=" +
                     verify::to_string(outcome.status) + " cache=" +
                     verify::to_string(outcome.cache) +
                     request_fields(req, outcome.key, bm.name);
  // Timing fields exist exactly when a candidate does: synthesis timeouts
  // and failures have nothing to report.
  if (outcome.synthesized())
    line += seconds_field("synth_seconds", outcome.synth_seconds) +
            seconds_field("validate_seconds", outcome.validate_seconds);
  return {outcome.status, std::move(line)};
}

/// Parse one `verify` line (after the command token).  Returns an error
/// message, or empty on success.
std::string parse_verify(std::istringstream& is, VerifyRequest& req) {
  std::string method, backend, engine;
  if (!(is >> req.case_file >> req.mode >> method >> backend >> engine >>
        req.digits))
    return "usage: verify <case-file> <mode> <method> <backend|-> <engine> "
           "<digits> [timeout_s]";
  const auto m = lyap::method_from_string(method);
  if (!m) return "unknown method '" + method + "'";
  req.method = *m;
  if (backend == "-") {
    // LMI methods always run with *some* backend; pin the default one so
    // `LMIa -` and `LMIa newton-ac` share one certificate.
    req.backend = lyap::is_lmi_method(req.method)
                      ? std::optional<sdp::Backend>{
                            sdp::Backend::NewtonAnalyticCenter}
                      : std::nullopt;
  } else {
    const auto b = sdp::backend_from_string(backend);
    if (!b) return "unknown backend '" + backend + "'";
    req.backend = lyap::is_lmi_method(req.method)
                      ? std::optional<sdp::Backend>{*b}
                      : std::nullopt;
  }
  const auto e = smt::engine_from_string(engine);
  if (!e) return "unknown engine '" + engine + "'";
  req.engine = *e;
  if (req.digits < 0) return "digits must be >= 0";
  double timeout = 0.0;
  if (is >> timeout) {
    if (!(timeout > 0.0)) return "timeout must be positive";
    req.timeout_seconds = timeout;
  }
  return "";
}

}  // namespace

int serve(std::istream& in, std::ostream& out, const ServeOptions& options) {
  LineWriter writer{out};
  core::JobPool pool{core::resolve_jobs(options.jobs)};
  std::atomic<int> errors{0};
  std::size_t next_id = 1;

  obs::Registry& registry = obs::Registry::global();
  obs::Counter& requests_total =
      registry.counter("spiv_serve_requests_total");
  obs::Counter& errors_total = registry.counter("spiv_serve_errors_total");
  // Pre-register the stage histograms the `metrics` command promises, so a
  // scrape before the first request still sees the full family set.
  for (const char* stage : {"case-load", "close-loop", "synthesis",
                            "validation", "store-lookup", "store-insert"})
    (void)registry.histogram(std::string{"spiv_stage_seconds{stage=\""} +
                             stage + "\"}");

  std::string line;
  while (std::getline(in, line)) {
    std::istringstream is{line};
    std::string command;
    if (!(is >> command) || command[0] == '#') continue;
    if (command == "quit") break;
    if (command == "wait") {
      pool.wait_idle();
      writer.write("idle");
      continue;
    }
    if (command == "metrics") {
      // Multi-line Prometheus text exposition, written as one atomic block
      // and terminated by `# EOF` so clients know where the scrape ends.
      writer.write(registry.expose());
      continue;
    }
    if (command == "stats") {
      std::ostringstream os;
      os << "stats jobs=" << pool.thread_count();
      if (options.store) {
        const store::StoreStats s = options.store->stats();
        os << " memory_hits=" << s.memory_hits << " disk_hits=" << s.disk_hits
           << " misses=" << s.misses << " writes=" << s.writes;
      } else {
        os << " store=off";
      }
      writer.write(os.str());
      continue;
    }
    if (command != "verify") {
      writer.write("error unknown command '" + command + "'");
      errors.fetch_add(1, std::memory_order_relaxed);
      errors_total.add();
      continue;
    }
    VerifyRequest req;
    req.id = next_id++;
    req.timeout_seconds = options.default_timeout_seconds;
    const std::string parse_error = parse_verify(is, req);
    if (!parse_error.empty()) {
      writer.write(error_outcome(req, parse_error).line);
      errors.fetch_add(1, std::memory_order_relaxed);
      errors_total.add();
      continue;
    }
    writer.write("queued id=" + std::to_string(req.id));
    requests_total.add();
    store::CertStore* store = options.store;
    pool.submit([req, store, &pool, &writer, &errors, &errors_total] {
      const ServiceOutcome outcome = handle_verify(req, store, pool.token());
      if (outcome.status == Status::Error) {
        errors.fetch_add(1, std::memory_order_relaxed);
        errors_total.add();
      }
      writer.write(outcome.line);
    });
  }
  pool.wait_idle();
  return errors.load(std::memory_order_relaxed);
}

}  // namespace spiv::service
