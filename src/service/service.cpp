#include "service/service.hpp"

#include <chrono>
#include <fstream>
#include <iomanip>
#include <istream>
#include <mutex>
#include <ostream>
#include <sstream>

#include "model/serialize.hpp"
#include "model/switched_pi.hpp"
#include "obs/span.hpp"

namespace spiv::service {

namespace {

using Status = verify::Status;

/// Serializes whole lines onto the response stream.
class LineWriter {
 public:
  explicit LineWriter(std::ostream& out) : out_(out) {}
  void write(const std::string& line) {
    std::lock_guard<std::mutex> lock(mutex_);
    out_ << line << "\n" << std::flush;
  }

 private:
  std::ostream& out_;
  std::mutex mutex_;
};

std::string result_prefix(const Request& req) {
  std::ostringstream os;
  os << "result id=" << req.id;
  return os.str();
}

std::string request_fields(const Request& req, const std::string& key,
                           const std::string& model_name) {
  std::ostringstream os;
  os << " key=" << (key.empty() ? "-" : key) << " model="
     << (model_name.empty() ? "-" : model_name) << " mode=" << req.mode
     << " method=" << lyap::to_string(req.method) << " backend="
     << (req.backend ? sdp::to_string(*req.backend) : "-") << " engine="
     << smt::to_string(req.engine) << " digits=" << req.digits;
  return os.str();
}

/// Collapse embedded line breaks (and other control bytes) so a message —
/// e.g. an exception's what() — can never split a protocol line, and trim
/// the trailing whitespace that multi-line messages leave behind.
std::string sanitize_message(const std::string& msg) {
  std::string out = msg;
  for (char& c : out)
    if (static_cast<unsigned char>(c) < 0x20) c = ' ';
  while (!out.empty() && out.back() == ' ') out.pop_back();
  return out;
}

Response error_outcome(const Request& req, const std::string& msg) {
  return {Status::Error, result_prefix(req) + " status=error cache=off" +
                             request_fields(req, "", "") + " msg=" +
                             sanitize_message(msg)};
}

std::string seconds_field(const char* name, double s) {
  std::ostringstream os;
  os << " " << name << "=" << std::setprecision(17) << s;
  return os.str();
}

/// The per-request adapter: load the case, close the loop, hand the matrix
/// to the verify pipeline (which owns deadlines, cache keys, store access,
/// and outcome classification), and render one protocol line.
Response handle_verify(const Request& req, store::CertStore* store,
                       double negative_ttl_seconds, const CancelToken& token) {
  model::BenchmarkModel bm;
  {
    obs::Span span{"case-load", req.case_file};
    std::ifstream in{req.case_file};
    if (!in)
      return error_outcome(req, "cannot open case file " + req.case_file);
    try {
      bm = model::read_case(in);
    } catch (const std::exception& e) {
      return error_outcome(req, std::string{"case parse failed: "} + e.what());
    }
  }
  if (req.mode >= bm.controller.num_modes()) {
    std::ostringstream os;
    os << "mode " << req.mode << " out of range (case has "
       << bm.controller.num_modes() << " modes)";
    return error_outcome(req, os.str());
  }

  verify::VerifyRequest vreq;
  {
    obs::Span span{"close-loop", bm.name};
    vreq.a =
        model::close_loop_single_mode(bm.plant, bm.controller.gains[req.mode])
            .a;
  }
  vreq.method = req.method;
  vreq.backend = req.backend;
  vreq.engine = req.engine;
  vreq.digits = req.digits;
  // Service semantics: one budget shared by both stages — synthesis
  // consumes from the front and validation gets only the remainder, so a
  // request can never burn more than its declared timeout.
  vreq.budget = verify::SharedBudget{req.timeout_seconds};

  verify::VerifyContext ctx;
  ctx.store = store;
  ctx.token = &token;
  ctx.negative_ttl_seconds = negative_ttl_seconds;
  const verify::VerifyOutcome outcome = verify::run_verify(ctx, vreq);

  if (outcome.status == Status::Error)
    return error_outcome(req, outcome.message);
  std::string line = result_prefix(req) + " status=" +
                     verify::to_string(outcome.status) + " cache=" +
                     verify::to_string(outcome.cache) +
                     request_fields(req, outcome.key, bm.name);
  // Timing fields exist exactly when a candidate does: synthesis timeouts
  // and failures have nothing to report.
  if (outcome.synthesized())
    line += seconds_field("synth_seconds", outcome.synth_seconds) +
            seconds_field("validate_seconds", outcome.validate_seconds);
  return {outcome.status, std::move(line)};
}

/// Parse one `verify` line (after the command token).  Returns an error
/// message, or empty on success.
std::string parse_verify(std::istringstream& is, Request& req) {
  std::string method, backend, engine;
  if (!(is >> req.case_file >> req.mode >> method >> backend >> engine >>
        req.digits))
    return "usage: verify <case-file> <mode> <method> <backend|-> <engine> "
           "<digits> [timeout_s]";
  const auto m = lyap::method_from_string(method);
  if (!m) return "unknown method '" + method + "'";
  req.method = *m;
  if (backend == "-") {
    // LMI methods always run with *some* backend; pin the default one so
    // `LMIa -` and `LMIa newton-ac` share one certificate.
    req.backend = lyap::is_lmi_method(req.method)
                      ? std::optional<sdp::Backend>{
                            sdp::Backend::NewtonAnalyticCenter}
                      : std::nullopt;
  } else {
    const auto b = sdp::backend_from_string(backend);
    if (!b) return "unknown backend '" + backend + "'";
    req.backend = lyap::is_lmi_method(req.method)
                      ? std::optional<sdp::Backend>{*b}
                      : std::nullopt;
  }
  const auto e = smt::engine_from_string(engine);
  if (!e) return "unknown engine '" + engine + "'";
  req.engine = *e;
  if (req.digits < 0) return "digits must be >= 0";
  double timeout = 0.0;
  if (is >> timeout) {
    if (!(timeout > 0.0)) return "timeout must be positive";
    req.timeout_seconds = timeout;
  }
  return "";
}

double since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

Handler default_handler() {
  return [](const Request& req, store::CertStore* store,
            double negative_ttl_seconds, const CancelToken& token) {
    return handle_verify(req, store, negative_ttl_seconds, token);
  };
}

// ------------------------------------------------------------------ Engine

Engine::Engine(const ServeOptions& options)
    : options_(options),
      pool_(core::resolve_jobs(options.jobs)),
      requests_total_(
          obs::Registry::global().counter("spiv_serve_requests_total")),
      errors_total_(obs::Registry::global().counter("spiv_serve_errors_total")),
      shed_total_(obs::Registry::global().counter("spiv_serve_shed_total")),
      batches_total_(
          obs::Registry::global().counter("spiv_serve_batches_total")),
      inflight_gauge_(obs::Registry::global().gauge("spiv_serve_inflight")),
      queue_depth_gauge_(
          obs::Registry::global().gauge("spiv_pool_queue_depth")),
      request_seconds_(
          obs::Registry::global().histogram("spiv_serve_request_seconds")) {
  if (!options_.handler) options_.handler = default_handler();
  // Pre-register the stage histograms the `metrics` command promises, so a
  // scrape before the first request still sees the full family set.
  for (const char* stage : {"case-load", "close-loop", "synthesis",
                            "validation", "store-lookup", "store-insert"})
    (void)obs::Registry::global().histogram(
        std::string{"spiv_stage_seconds{stage=\""} + stage + "\"}");
}

bool Engine::try_admit() {
  // Checked from the transport thread without a lock: a burst across many
  // sessions can overshoot each bound by at most the number of transport
  // threads (one today) — the bound is a shed threshold, not a hard cap.
  if (options_.max_inflight != 0 &&
      inflight_.load(std::memory_order_relaxed) >=
          static_cast<std::int64_t>(options_.max_inflight))
    return false;
  if (options_.max_queue_depth != 0 &&
      queue_depth_gauge_.value() >= options_.max_queue_depth)
    return false;
  inflight_.fetch_add(1, std::memory_order_relaxed);
  inflight_gauge_.add(1);
  return true;
}

void Engine::release() {
  inflight_.fetch_sub(1, std::memory_order_relaxed);
  inflight_gauge_.sub(1);
}

// ----------------------------------------------------------------- Session

/// Completion bookkeeping for one batch-verify: members resolve from pool
/// threads in any order; the last one emits the batch-done line.
struct Session::Batch {
  std::size_t first = 0;
  std::size_t last = 0;
  std::atomic<std::size_t> remaining{0};
  std::atomic<std::size_t> ok{0};
  std::atomic<std::size_t> failed{0};
  std::atomic<std::size_t> shed{0};
  LineSink sink;
};

Session::Session(Engine& engine, LineSink sink,
                 std::function<void()> on_settled)
    : engine_(engine),
      sink_(std::move(sink)),
      on_settled_(std::move(on_settled)),
      pending_(std::make_shared<std::atomic<std::size_t>>(0)) {}

void Session::resolve_batch_member(const std::shared_ptr<Batch>& batch,
                                   Status status, bool shed) {
  if (!batch) return;
  if (shed)
    batch->shed.fetch_add(1, std::memory_order_relaxed);
  else if (status == Status::Valid || status == Status::Invalid)
    batch->ok.fetch_add(1, std::memory_order_relaxed);
  else
    batch->failed.fetch_add(1, std::memory_order_relaxed);
  if (batch->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    std::ostringstream os;
    os << "batch-done ids=" << batch->first << "-" << batch->last
       << " ok=" << batch->ok.load(std::memory_order_relaxed)
       << " failed=" << batch->failed.load(std::memory_order_relaxed)
       << " shed=" << batch->shed.load(std::memory_order_relaxed);
    batch->sink(os.str());
  }
}

void Session::handle_verify_args(std::istringstream& is,
                                 const std::shared_ptr<Batch>& batch) {
  Request req;
  req.id = next_id_++;
  req.timeout_seconds = engine_.options_.default_timeout_seconds;
  const std::string parse_error = parse_verify(is, req);
  if (!parse_error.empty()) {
    emit(error_outcome(req, parse_error).line);
    engine_.count_error();
    resolve_batch_member(batch, Status::Error, /*shed=*/false);
    return;
  }
  // The session's `deadline` cap rides into the pipeline's BudgetPolicy:
  // the effective SharedBudget is the smaller of the request's own timeout
  // and the per-connection cap.
  if (deadline_cap_ > 0.0 && req.timeout_seconds > deadline_cap_)
    req.timeout_seconds = deadline_cap_;
  if (!engine_.try_admit()) {
    std::ostringstream os;
    os << "busy id=" << req.id << " inflight=" << engine_.inflight()
       << " queue_depth=" << engine_.queue_depth_gauge_.value();
    emit(os.str());
    engine_.shed_total_.add();
    resolve_batch_member(batch, Status::Error, /*shed=*/true);
    return;
  }
  engine_.requests_total_.add();
  if (!batch) emit("queued id=" + std::to_string(req.id));
  pending_->fetch_add(1, std::memory_order_release);
  // The job captures everything it touches by value (shared_ptrs for the
  // batch and pending counter): the Session may be destroyed while jobs
  // are in flight, the Engine may not (transports wait_idle before that).
  Engine* engine = &engine_;
  store::CertStore* store = engine_.options_.store;
  const double ttl = engine_.options_.negative_ttl_seconds;
  LineSink sink = sink_;
  auto pending = pending_;
  auto settled = on_settled_;
  const auto t0 = std::chrono::steady_clock::now();
  engine_.pool_.submit([req, engine, store, ttl, sink, pending, batch, settled,
                        t0] {
    Response response;
    try {
      response = engine->options_.handler(req, store, ttl,
                                          engine->pool_.token());
    } catch (const std::exception& e) {
      response = error_outcome(req, std::string{"handler failed: "} + e.what());
    }
    if (response.status == Status::Error) engine->count_error();
    engine->request_seconds_.observe(since(t0));
    // Response before bookkeeping: pending() == 0 implies every response
    // line has reached the transport (the drain invariant).
    sink(response.line);
    resolve_batch_member(batch, response.status, /*shed=*/false);
    engine->release();
    pending->fetch_sub(1, std::memory_order_release);
    // After the decrement, so an event loop woken here observes the new
    // pending() — the sink's own wake can fire before the decrement and
    // would otherwise be the only (racy) signal.
    if (settled) settled();
  });
}

Flow Session::handle_command(const std::string& line) {
  std::istringstream is{line};
  std::string command;
  if (!(is >> command) || command[0] == '#') return Flow::Continue;
  if (command == "quit") return Flow::Quit;
  if (command == "wait") {
    if (pending() == 0) {
      emit("idle");
      return Flow::Continue;
    }
    wait_armed_ = true;
    return Flow::Wait;
  }
  if (command == "metrics") {
    // Multi-line Prometheus text exposition, written as one atomic block
    // and terminated by `# EOF` so clients know where the scrape ends.
    emit(obs::Registry::global().expose());
    return Flow::Continue;
  }
  if (command == "stats") {
    std::ostringstream os;
    os << "stats jobs=" << engine_.thread_count();
    if (engine_.options_.store) {
      const store::StoreStats s = engine_.options_.store->stats();
      os << " memory_hits=" << s.memory_hits << " disk_hits=" << s.disk_hits
         << " misses=" << s.misses << " writes=" << s.writes
         << " neg_hits=" << s.negative_hits
         << " neg_writes=" << s.negative_writes
         << " memory_entries=" << s.memory_entries;
    } else {
      os << " store=off";
    }
    emit(os.str());
    return Flow::Continue;
  }
  if (command == "deadline") {
    std::string value;
    if (is >> value) {
      if (value == "off") {
        deadline_cap_ = 0.0;
        emit("ok deadline=off");
        return Flow::Continue;
      }
      char* end = nullptr;
      const double seconds = std::strtod(value.c_str(), &end);
      if (end != value.c_str() && *end == '\0' && seconds > 0.0) {
        deadline_cap_ = seconds;
        emit("ok deadline=" + value);
        return Flow::Continue;
      }
    }
    emit("error deadline requires a positive number of seconds or 'off'");
    engine_.count_error();
    return Flow::Continue;
  }
  if (command == "batch-verify") {
    std::size_t count = 0;
    if (!(is >> count) || count == 0 || count > 4096) {
      emit("error batch-verify requires a member count between 1 and 4096");
      engine_.count_error();
      return Flow::Continue;
    }
    auto batch = std::make_shared<Batch>();
    batch->first = next_id_;
    batch->last = next_id_ + count - 1;
    batch->remaining.store(count, std::memory_order_relaxed);
    batch->sink = sink_;
    open_batch_ = batch;
    batch_to_read_ = count;
    engine_.batches_total_.add();
    std::ostringstream os;
    os << "queued ids=" << batch->first << "-" << batch->last
       << " batch=" << count;
    emit(os.str());
    return Flow::Continue;
  }
  if (command != "verify") {
    emit("error unknown command '" + command + "'");
    engine_.count_error();
    return Flow::Continue;
  }
  handle_verify_args(is, nullptr);
  return Flow::Continue;
}

Flow Session::handle_line(const std::string& line) {
  if (batch_to_read_ > 0) {
    std::istringstream is{line};
    handle_verify_args(is, open_batch_);
    if (--batch_to_read_ == 0) open_batch_.reset();
    return Flow::Continue;
  }
  return handle_command(line);
}

bool Session::poll_wait() {
  if (!wait_armed_) return true;
  if (pending() != 0) return false;
  wait_armed_ = false;
  emit("idle");
  return true;
}

void Session::finish_input() {
  if (!open_batch_ || batch_to_read_ == 0) return;
  std::ostringstream os;
  os << "error batch truncated (" << batch_to_read_
     << " member(s) never arrived)";
  emit(os.str());
  engine_.count_error();
  // Retire the unread members without classifying them, so the members
  // that DID arrive still produce a batch-done line when they land.
  auto batch = open_batch_;
  open_batch_.reset();
  const std::size_t unread = batch_to_read_;
  batch_to_read_ = 0;
  if (batch->remaining.fetch_sub(unread, std::memory_order_acq_rel) ==
      unread) {
    std::ostringstream done;
    done << "batch-done ids=" << batch->first << "-" << batch->last
         << " ok=" << batch->ok.load(std::memory_order_relaxed)
         << " failed=" << batch->failed.load(std::memory_order_relaxed)
         << " shed=" << batch->shed.load(std::memory_order_relaxed);
    batch->sink(done.str());
  }
}

// ---------------------------------------------------------- stdin transport

int serve(std::istream& in, std::ostream& out, const ServeOptions& options) {
  LineWriter writer{out};
  Engine engine{options};
  // serve() waits for the pool before returning, so capturing the local
  // writer by reference is safe — no job outlives this frame.
  Session session{engine, [&writer](const std::string& line) {
                    writer.write(line);
                  }};
  std::string line;
  while (std::getline(in, line)) {
    const Flow flow = session.handle_line(line);
    if (flow == Flow::Quit) break;
    if (flow == Flow::Wait) {
      // stdin keeps the classic semantics: `wait` is a whole-pool barrier
      // and input is not consumed until the pool is idle.
      engine.wait_idle();
      (void)session.poll_wait();
    }
  }
  session.finish_input();
  engine.wait_idle();
  return engine.errors();
}

}  // namespace spiv::service
