// spiv-serve: certificate verification service.
//
// Two transports, one protocol (documented in service/service.hpp):
//
//   # classic batch mode — stdin/stdout
//   SPIV_CACHE_DIR=cache ./build/src/service/spiv-serve --jobs 4
//
//   # network mode — unix-domain and/or TCP listeners, many concurrent
//   # clients, graceful drain on SIGTERM / SIGINT / `quit`
//   ./build/src/service/spiv-serve --listen /tmp/spiv.sock
//       --listen-tcp 127.0.0.1:7199 --max-inflight 64 --metrics-out m.prom
//
// The certificate store is enabled by --cache-dir DIR (or $SPIV_CACHE_DIR);
// without either, every request recomputes.  In network mode, synth-failed
// and timeout outcomes are negatively cached for --neg-ttl seconds
// (default 30; 0 disables) so hopeless retries answer from memory.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>

#include "core/env.hpp"
#include "core/parallel.hpp"
#include "net/server.hpp"
#include "net/socket.hpp"
#include "obs/metrics.hpp"
#include "service/service.hpp"
#include "verify/verify.hpp"

namespace {

void print_usage(std::FILE* to, const char* prog) {
  std::fprintf(
      to,
      "usage: %s [options]\n"
      "  --jobs N             worker threads (default: $SPIV_JOBS or cores)\n"
      "  --timeout SECONDS    default per-request budget (default 60)\n"
      "  --cache-dir DIR      certificate store (default $SPIV_CACHE_DIR)\n"
      "network mode (without --listen* the protocol runs on stdin/stdout):\n"
      "  --listen PATH        unix-domain socket listener\n"
      "  --listen-tcp [HOST:]PORT   TCP listener (port 0 = ephemeral)\n"
      "  --max-connections N  connection cap, excess shed (default 256)\n"
      "  --max-inflight N     request admission cap, 0 = unbounded\n"
      "  --max-queue-depth N  shed above this pool queue depth, 0 = off\n"
      "  --neg-ttl SECONDS    negative-cache TTL (default 30, 0 = off)\n"
      "  --metrics-out FILE   write a final Prometheus snapshot on drain\n"
      "protocol: verify <case-file> <mode> <method> <backend|-> <engine> "
      "<digits> [timeout_s] | batch-verify <n> | deadline <s|off> | wait | "
      "stats | metrics | quit\n",
      prog);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace spiv;
  service::ServeOptions options;
  net::ServerOptions server_options;
  std::string cache_dir;
  std::string metrics_out;
  bool listen_unix = false, listen_tcp = false;
  bool neg_ttl_set = false;
  auto need_value = [&](int& i) -> const char* {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "%s requires a value\n", argv[i]);
      print_usage(stderr, argv[0]);
      std::exit(2);
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--help") || !std::strcmp(argv[i], "-h")) {
      print_usage(stdout, argv[0]);
      return 0;
    }
    if (!std::strcmp(argv[i], "--jobs")) {
      // Strict parse + the same 8x hardware cap as $SPIV_JOBS (resolve_jobs
      // clamps oversized explicit requests with a stderr warning).
      const char* value = need_value(i);
      const std::optional<std::size_t> jobs = core::parse_jobs(value);
      if (!jobs) {
        std::fprintf(stderr,
                     "invalid --jobs '%s' (must be a positive integer)\n",
                     value);
        return 2;
      }
      options.jobs = core::resolve_jobs(*jobs);
    } else if (!std::strcmp(argv[i], "--timeout")) {
      const char* value = need_value(i);
      char* end = nullptr;
      options.default_timeout_seconds = std::strtod(value, &end);
      if (end == value || *end != '\0' ||
          !(options.default_timeout_seconds > 0.0)) {
        std::fprintf(stderr,
                     "invalid --timeout '%s' (must be positive seconds)\n",
                     value);
        return 2;
      }
    } else if (!std::strcmp(argv[i], "--cache-dir")) {
      cache_dir = need_value(i);
      if (cache_dir.empty()) {
        std::fprintf(stderr, "--cache-dir requires a non-empty directory\n");
        return 2;
      }
    } else if (!std::strcmp(argv[i], "--listen")) {
      server_options.unix_path = need_value(i);
      listen_unix = true;
    } else if (!std::strcmp(argv[i], "--listen-tcp")) {
      const char* value = need_value(i);
      const auto addr = net::parse_tcp_address(value);
      if (!addr) {
        std::fprintf(stderr,
                     "invalid --listen-tcp '%s' (expected [HOST:]PORT)\n",
                     value);
        return 2;
      }
      server_options.tcp_host = addr->host;
      server_options.tcp_port = addr->port;
      listen_tcp = true;
    } else if (!std::strcmp(argv[i], "--max-connections")) {
      const char* value = need_value(i);
      const auto n = core::env::parse_positive(value);
      if (!n) {
        std::fprintf(stderr, "invalid --max-connections '%s'\n", value);
        return 2;
      }
      server_options.max_connections = *n;
    } else if (!std::strcmp(argv[i], "--max-inflight")) {
      const char* value = need_value(i);
      const auto n = core::env::parse_positive(value);
      if (!n && std::strcmp(value, "0") != 0) {
        std::fprintf(stderr, "invalid --max-inflight '%s'\n", value);
        return 2;
      }
      options.max_inflight = n.value_or(0);
    } else if (!std::strcmp(argv[i], "--max-queue-depth")) {
      const char* value = need_value(i);
      const auto n = core::env::parse_positive(value);
      if (!n && std::strcmp(value, "0") != 0) {
        std::fprintf(stderr, "invalid --max-queue-depth '%s'\n", value);
        return 2;
      }
      options.max_queue_depth = static_cast<std::int64_t>(n.value_or(0));
    } else if (!std::strcmp(argv[i], "--neg-ttl")) {
      const char* value = need_value(i);
      char* end = nullptr;
      options.negative_ttl_seconds = std::strtod(value, &end);
      if (end == value || *end != '\0' || options.negative_ttl_seconds < 0.0) {
        std::fprintf(stderr,
                     "invalid --neg-ttl '%s' (must be >= 0 seconds)\n", value);
        return 2;
      }
      neg_ttl_set = true;
    } else if (!std::strcmp(argv[i], "--metrics-out")) {
      metrics_out = need_value(i);
    } else {
      std::fprintf(stderr, "unknown argument '%s'\n", argv[i]);
      print_usage(stderr, argv[0]);
      return 2;
    }
  }
  // Explicit --cache-dir wins over $SPIV_CACHE_DIR (resolve_store).
  options.store = verify::resolve_store(cache_dir);

  if (!listen_unix && !listen_tcp) {
    // Classic batch mode, byte-identical to the pre-network service.
    const int errors = service::serve(std::cin, std::cout, options);
    return errors == 0 ? 0 : 1;
  }

  // Network defaults diverge from stdin on purpose: a long-lived server
  // wants negative caching ($SPIV_NEG_TTL overrides, flag wins over both).
  if (!neg_ttl_set)
    options.negative_ttl_seconds = core::env::negative_ttl().value_or(30.0);
  server_options.service = options;
  net::Server server{server_options};
  try {
    server.start();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "spiv-serve: %s\n", e.what());
    return 2;
  }
  server.install_signal_handlers();
  if (listen_unix)
    std::fprintf(stderr, "spiv-serve: listening on %s\n",
                 server_options.unix_path.c_str());
  if (listen_tcp)
    std::fprintf(stderr, "spiv-serve: listening on %s:%d\n",
                 server_options.tcp_host.c_str(), server.tcp_port());
  const int errors = server.run();
  if (!metrics_out.empty()) {
    std::ofstream out{metrics_out};
    if (out)
      out << obs::Registry::global().expose() << "\n";
    else
      std::fprintf(stderr, "spiv-serve: cannot write --metrics-out %s\n",
                   metrics_out.c_str());
  }
  std::fprintf(stderr, "spiv-serve: drained (%d request error(s))\n", errors);
  return errors == 0 ? 0 : 1;
}
