// spiv-serve: batch certificate verification over stdin/stdout.
//
//   SPIV_CACHE_DIR=cache ./build/src/service/spiv-serve [--jobs N] [--timeout S]
//
// Speaks the line protocol documented in service/service.hpp; see
// EXPERIMENTS.md ("Certificate cache & service") for a worked example.
// The certificate store is enabled by --cache-dir DIR (or $SPIV_CACHE_DIR);
// without either, every request recomputes.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <optional>
#include <string>

#include "core/parallel.hpp"
#include "service/service.hpp"
#include "verify/verify.hpp"

namespace {

void print_usage(std::FILE* to, const char* prog) {
  std::fprintf(to,
               "usage: %s [--jobs N] [--timeout SECONDS] [--cache-dir DIR]\n"
               "protocol: verify <case-file> <mode> <method> <backend|-> "
               "<engine> <digits> [timeout_s] | wait | stats | metrics | "
               "quit\n",
               prog);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace spiv;
  service::ServeOptions options;
  std::string cache_dir;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--help") || !std::strcmp(argv[i], "-h")) {
      print_usage(stdout, argv[0]);
      return 0;
    }
    if (!std::strcmp(argv[i], "--jobs")) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--jobs requires a value\n");
        print_usage(stderr, argv[0]);
        return 2;
      }
      // Strict parse + the same 8x hardware cap as $SPIV_JOBS (resolve_jobs
      // clamps oversized explicit requests with a stderr warning).
      const std::optional<std::size_t> jobs = core::parse_jobs(argv[++i]);
      if (!jobs) {
        std::fprintf(stderr, "invalid --jobs '%s' (must be a positive integer)\n",
                     argv[i]);
        return 2;
      }
      options.jobs = core::resolve_jobs(*jobs);
    } else if (!std::strcmp(argv[i], "--timeout")) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--timeout requires a value\n");
        print_usage(stderr, argv[0]);
        return 2;
      }
      char* end = nullptr;
      options.default_timeout_seconds = std::strtod(argv[++i], &end);
      if (end == argv[i] || *end != '\0' ||
          !(options.default_timeout_seconds > 0.0)) {
        std::fprintf(stderr, "invalid --timeout '%s' (must be positive seconds)\n",
                     argv[i]);
        return 2;
      }
    } else if (!std::strcmp(argv[i], "--cache-dir")) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--cache-dir requires a value\n");
        print_usage(stderr, argv[0]);
        return 2;
      }
      cache_dir = argv[++i];
      if (cache_dir.empty()) {
        std::fprintf(stderr, "--cache-dir requires a non-empty directory\n");
        return 2;
      }
    } else {
      std::fprintf(stderr, "unknown argument '%s'\n", argv[i]);
      print_usage(stderr, argv[0]);
      return 2;
    }
  }
  // Explicit --cache-dir wins over $SPIV_CACHE_DIR (resolve_store).
  options.store = verify::resolve_store(cache_dir);
  const int errors = service::serve(std::cin, std::cout, options);
  return errors == 0 ? 0 : 1;
}
