// spiv-serve: batch certificate verification over stdin/stdout.
//
//   SPIV_CACHE_DIR=cache ./build/src/service/spiv-serve [--jobs N] [--timeout S]
//
// Speaks the line protocol documented in service/service.hpp; see
// EXPERIMENTS.md ("Certificate cache & service") for a worked example.
// The certificate store is enabled by $SPIV_CACHE_DIR; without it every
// request recomputes.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>

#include "service/service.hpp"

int main(int argc, char** argv) {
  using namespace spiv;
  service::ServeOptions options;
  for (int i = 1; i + 1 < argc; i += 2) {
    if (!std::strcmp(argv[i], "--jobs")) {
      options.jobs = static_cast<std::size_t>(std::atol(argv[i + 1]));
    } else if (!std::strcmp(argv[i], "--timeout")) {
      options.default_timeout_seconds = std::atof(argv[i + 1]);
      if (options.default_timeout_seconds <= 0.0) {
        std::fprintf(stderr, "invalid --timeout %s\n", argv[i + 1]);
        return 2;
      }
    } else {
      std::fprintf(stderr,
                   "usage: %s [--jobs N] [--timeout SECONDS]\n"
                   "protocol: verify <case-file> <mode> <method> <backend|-> "
                   "<engine> <digits> [timeout_s] | wait | stats | quit\n",
                   argv[0]);
      return 2;
    }
  }
  options.store = store::CertStore::from_env();
  const int errors = service::serve(std::cin, std::cout, options);
  return errors == 0 ? 0 : 1;
}
