// spiv::verify — the one synthesize→validate→cache pipeline (paper §VI-B).
//
// The paper's core artifact is a single conceptual operation: synthesize a
// candidate quadratic Lyapunov function for one closed-loop mode, round it,
// exactly validate both Lyapunov conditions, and record the verdict.  This
// layer is the only place that operation is implemented.  The service
// (service/service.cpp), the Table I / rounding / Table II drivers
// (core/experiments.cpp), and the examples are all thin adapters over
// run_verify / run_validate / run_synthesize — they format, aggregate, and
// schedule, but never re-derive deadlines, cache keys, or verdict
// classification.
//
//   model ──▶ verify ──▶ { service, experiments, examples }
//
// Budget semantics come in exactly two flavours, chosen per request:
//
//   SharedBudget{t}  — service semantics: ONE deadline covers both stages;
//                      synthesis consumes from the front of the budget and
//                      validation gets only the remainder.  A request can
//                      never burn more than t seconds of wall clock.
//   SplitBudget{s,v} — Table I semantics: synthesis gets its own s-second
//                      deadline and validation a fresh v-second one,
//                      preserving the paper's per-stage budgets bit-for-bit.
//
// Cache-key derivation happens in exactly one place (run_verify calling
// store::request_key on a CertRequest built from the same SynthesisOptions
// handed to the kernel), killing the parameter-drift class of cache bugs.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <variant>

#include "exact/modular.hpp"
#include "exact/timeout.hpp"
#include "lyapunov/synthesis.hpp"
#include "numeric/matrix.hpp"
#include "obs/metrics.hpp"
#include "sdp/lmi.hpp"
#include "smt/validate.hpp"
#include "store/cert_store.hpp"

namespace spiv::verify {

/// The canonical outcome taxonomy.  Everything downstream — service
/// protocol lines, table cells, example exit codes — is a rendering of
/// this enum; no caller classifies verdicts on its own.
enum class Status {
  Valid,        ///< candidate synthesized and both conditions proved
  Invalid,      ///< pipeline completed; at least one condition refuted
  Timeout,      ///< a stage exceeded its budget (see VerifyOutcome::timeout_stage)
  SynthFailed,  ///< synthesis returned no candidate (infeasible / defective)
  Error,        ///< malformed input or an unexpected exception
};

/// "valid" | "invalid" | "timeout" | "synth-failed" | "error".
[[nodiscard]] const char* to_string(Status s);

/// How the certificate store participated in this outcome.  NegativeHit:
/// the store's negative tier replayed a remembered failure (synth-failed
/// or timeout) without touching any kernel — see CertStore::lookup_negative
/// for the TTL and budget-gating rules.
enum class Cache { Off, Hit, Miss, NegativeHit };

/// "off" | "hit" | "miss" | "neg-hit".
[[nodiscard]] const char* to_string(Cache c);

/// Which stage ran out of budget (None unless status == Timeout).
enum class Stage { None, Synthesis, Validation };

/// Service semantics: one wall-clock budget shared by both stages.
struct SharedBudget {
  double seconds = 60.0;
};

/// Table I semantics: independent per-stage budgets.
struct SplitBudget {
  double synth_seconds = 60.0;
  double validate_seconds = 60.0;
};

using BudgetPolicy = std::variant<SharedBudget, SplitBudget>;

/// Everything that determines one verification result.  `options` carries
/// the LMI parameters (alpha/nu/kappa); its backend and deadline fields are
/// overwritten by run_verify from `backend` and `budget` so a request has
/// exactly one source of truth for each.
struct VerifyRequest {
  numeric::Matrix a;  ///< closed-loop mode dynamics matrix
  lyap::Method method = lyap::Method::EqNum;
  std::optional<sdp::Backend> backend;  ///< LMI methods only
  smt::Engine engine = smt::Engine::Sylvester;
  int digits = 10;  ///< rounding before exact validation
  lyap::SynthesisOptions options{};
  BudgetPolicy budget = SharedBudget{};
};

/// Ambient machinery threaded through the pipeline: where certificates
/// live, how to cancel, which exact backend to use, where metrics go.
/// from_env() resolves every field from the core::env variables; callers
/// (CLI flags, the service, tests) override fields explicitly after that.
struct VerifyContext {
  store::CertStore* store = nullptr;       ///< nullptr = caching off
  const CancelToken* token = nullptr;      ///< optional cooperative cancel
  std::size_t jobs = 0;                    ///< worker hint for drivers (0 = auto)
  std::optional<exact::ExactSolverStrategy> exact_solver;  ///< eq-smt backend
  /// TTL for negative caching of synth-failed/timeout outcomes (0 = off).
  /// Timeout entries only shield requests whose budget is <= the budget
  /// that timed out, so raising a request's budget still recomputes.
  double negative_ttl_seconds = 0.0;
  obs::Registry* registry = &obs::Registry::global();

  /// $SPIV_CACHE_DIR store, $SPIV_JOBS hint, $SPIV_EXACT_SOLVER strategy,
  /// $SPIV_NEG_TTL negative-cache TTL.
  [[nodiscard]] static VerifyContext from_env();
};

/// Structured result of one pipeline run.
struct VerifyOutcome {
  Status status = Status::Error;
  Cache cache = Cache::Off;
  Stage timeout_stage = Stage::None;  ///< set iff status == Timeout
  std::string key;      ///< store::request_key (always derived, even cache-off)
  std::string message;  ///< diagnostic for Status::Error, empty otherwise
  /// Freshly computed candidate (miss paths); hits expose the cached record
  /// instead of deep-copying the (possibly exact-rational) matrices.
  std::optional<lyap::Candidate> candidate;
  std::shared_ptr<const store::CertRecord> record;
  smt::LyapunovValidation validation{};  ///< miss paths; hits: see record
  double synth_seconds = 0.0;     ///< replayed from the record on a hit
  double validate_seconds = 0.0;  ///< replayed from the record on a hit
  /// The deadline the pipeline ran under.  Under SharedBudget, follow-up
  /// work (e.g. a robust-region computation) chained on this deadline stays
  /// inside the request's declared budget instead of minting a fresh one —
  /// the double-budget bug class.
  Deadline deadline{};

  [[nodiscard]] bool synthesized() const {
    return candidate.has_value() || record != nullptr;
  }
  /// The candidate regardless of hit/miss provenance (nullptr when absent).
  [[nodiscard]] const lyap::Candidate* candidate_ptr() const {
    if (record) return &record->candidate;
    return candidate ? &*candidate : nullptr;
  }
  /// The validation regardless of hit/miss provenance (nullptr when the
  /// pipeline never reached validation).
  [[nodiscard]] const smt::LyapunovValidation* validation_ptr() const {
    if (record) return &record->validation;
    return candidate ? &validation : nullptr;
  }
};

/// THE pipeline: derive the cache key, consult the store, synthesize,
/// exactly validate, insert the certificate, classify.  Owns all deadline
/// construction per req.budget.  Never throws for per-request failures —
/// they are Status values; only programming errors propagate.
[[nodiscard]] VerifyOutcome run_verify(const VerifyContext& ctx,
                                       const VerifyRequest& req);

/// Validation-only entry for pre-synthesized candidates (the Fig. 3 and
/// rounding-study drivers re-validate one candidate across engines and
/// digit levels).  No store interaction: these sweeps intentionally vary
/// the request axes a certificate is keyed on.
struct ValidateRequest {
  numeric::Matrix a;
  numeric::Matrix p;
  smt::Engine engine = smt::Engine::Sylvester;
  int digits = 10;
  bool det_encoding = false;
  double timeout_seconds = 60.0;
};

[[nodiscard]] VerifyOutcome run_validate(const VerifyContext& ctx,
                                         const ValidateRequest& req);

/// Synthesis-only entry (Table II and the robust-regions example follow
/// synthesis with a region computation instead of plain validation).
/// Status::Valid here means "candidate synthesized".  No store interaction:
/// certificates record validation verdicts, which this entry never produces.
[[nodiscard]] VerifyOutcome run_synthesize(const VerifyContext& ctx,
                                           const VerifyRequest& req);

/// Resolve the certificate store for a CLI: an explicit --cache-dir wins;
/// empty falls back to $SPIV_CACHE_DIR (store::CertStore::from_env).
/// Returns nullptr (with a one-line stderr warning) when the directory
/// cannot be created.  Returned stores live for the process.
[[nodiscard]] store::CertStore* resolve_store(const std::string& cli_dir);

}  // namespace spiv::verify
