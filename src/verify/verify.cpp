#include "verify/verify.hpp"

#include <chrono>
#include <iostream>
#include <map>
#include <mutex>

#include "core/env.hpp"
#include "obs/span.hpp"

namespace spiv::verify {

namespace {

/// Deadline bound to the context's cancel token when one is present.
Deadline mint_deadline(const VerifyContext& ctx, double seconds) {
  return ctx.token ? Deadline::after_seconds(seconds, *ctx.token)
                   : Deadline::after_seconds(seconds);
}

obs::Registry& registry_of(const VerifyContext& ctx) {
  return ctx.registry ? *ctx.registry : obs::Registry::global();
}

void count_outcome(obs::Registry& registry, Status status) {
  registry
      .counter(std::string{"spiv_verify_outcomes_total{status=\""} +
               to_string(status) + "\"}")
      .add();
}

/// The synthesis options actually handed to the kernel: request backend and
/// context solver strategy folded in, so the cache key and the computation
/// can never disagree about a parameter.
lyap::SynthesisOptions effective_options(const VerifyContext& ctx,
                                         const VerifyRequest& req) {
  lyap::SynthesisOptions options = req.options;
  if (req.backend) options.backend = *req.backend;
  if (!options.exact_solver) options.exact_solver = ctx.exact_solver;
  return options;
}

VerifyOutcome run_verify_impl(const VerifyContext& ctx,
                              const VerifyRequest& req) {
  VerifyOutcome out;
  out.cache = ctx.store ? Cache::Miss : Cache::Off;

  lyap::SynthesisOptions options = effective_options(ctx, req);

  // The pipeline's ONE cache-key derivation: the CertRequest mirrors the
  // options object the kernel runs with, so a hit can never replay a
  // certificate synthesized under different parameters.
  store::CertRequest cert_req;
  cert_req.a = req.a;
  cert_req.method = req.method;
  cert_req.backend = req.backend;
  cert_req.engine = req.engine;
  cert_req.digits = req.digits;
  cert_req.set_synthesis_params(options);
  out.key = store::request_key(cert_req);

  // SharedBudget: one deadline covers both stages — synthesis consumes from
  // the front, validation gets the remainder.  SplitBudget: synthesis runs
  // under its own budget here; validation's clock starts only once
  // synthesis is done (below), preserving Table I's per-stage semantics.
  const bool shared = std::holds_alternative<SharedBudget>(req.budget);
  // The scalar the negative tier gates timeouts on: the whole wall-clock
  // budget this request could possibly burn.
  const double total_budget =
      shared ? std::get<SharedBudget>(req.budget).seconds
             : std::get<SplitBudget>(req.budget).synth_seconds +
                   std::get<SplitBudget>(req.budget).validate_seconds;

  if (ctx.store) {
    obs::Span span{"store-lookup", out.key};
    if (auto rec = ctx.store->lookup(out.key)) {
      out.cache = Cache::Hit;
      out.record = std::move(rec);
      out.status =
          out.record->validation.valid() ? Status::Valid : Status::Invalid;
      out.synth_seconds = out.record->candidate.synth_seconds;
      out.validate_seconds = out.record->validation.seconds();
      return out;
    }
    if (ctx.negative_ttl_seconds > 0.0) {
      if (auto neg = ctx.store->lookup_negative(out.key, total_budget)) {
        out.cache = Cache::NegativeHit;
        if (neg->reason == "synth-failed") {
          out.status = Status::SynthFailed;
        } else {
          out.status = Status::Timeout;
          out.timeout_stage = neg->reason == "timeout-validation"
                                  ? Stage::Validation
                                  : Stage::Synthesis;
        }
        return out;
      }
    }
  }
  Deadline deadline =
      shared ? mint_deadline(ctx, std::get<SharedBudget>(req.budget).seconds)
             : mint_deadline(ctx,
                             std::get<SplitBudget>(req.budget).synth_seconds);
  out.deadline = deadline;
  options.deadline = deadline;

  // Failures worth remembering go into the store's negative tier (TTL'd,
  // memory-only): a full certificate is never written for them, so without
  // this every identical retry re-burns the whole budget.
  const auto remember_failure = [&](const char* reason,
                                    double budget_seconds) {
    if (ctx.store && ctx.negative_ttl_seconds > 0.0)
      ctx.store->insert_negative(out.key, reason, budget_seconds,
                                 ctx.negative_ttl_seconds);
  };

  try {
    out.candidate = lyap::synthesize(req.a, req.method, options);
  } catch (const TimeoutError&) {
    out.status = Status::Timeout;
    out.timeout_stage = Stage::Synthesis;
    remember_failure("timeout-synthesis", total_budget);
    return out;
  } catch (const std::exception& e) {
    out.status = Status::Error;
    out.cache = Cache::Off;
    out.message = std::string{"synthesis failed: "} + e.what();
    return out;
  }
  if (!out.candidate) {
    out.status = Status::SynthFailed;
    remember_failure("synth-failed", 0.0);
    return out;
  }
  out.synth_seconds = out.candidate->synth_seconds;

  if (!shared) {
    deadline =
        mint_deadline(ctx, std::get<SplitBudget>(req.budget).validate_seconds);
    out.deadline = deadline;
  }
  smt::CheckOptions check;
  check.deadline = deadline;
  try {
    out.validation = smt::validate_lyapunov(req.a, out.candidate->p,
                                            req.engine, req.digits, check);
  } catch (const TimeoutError&) {
    out.status = Status::Timeout;
    out.timeout_stage = Stage::Validation;
    remember_failure("timeout-validation", total_budget);
    return out;
  } catch (const std::exception& e) {
    out.status = Status::Error;
    out.cache = Cache::Off;
    out.message = std::string{"validation failed: "} + e.what();
    return out;
  }
  out.validate_seconds = out.validation.seconds();

  const bool timed_out =
      out.validation.positivity.outcome == smt::Outcome::Timeout ||
      out.validation.decrease.outcome == smt::Outcome::Timeout;
  if (timed_out) {
    // A verdict under this run's budget is not a reusable certificate:
    // never inserted as a certificate (it could poison warmer runs), but
    // remembered in the budget-gated negative tier.
    out.status = Status::Timeout;
    out.timeout_stage = Stage::Validation;
    remember_failure("timeout-validation", total_budget);
    return out;
  }
  if (ctx.store) {
    obs::Span span{"store-insert", out.key};
    ctx.store->insert(out.key,
                      store::CertRecord{*out.candidate, out.validation});
  }
  out.status = out.validation.valid() ? Status::Valid : Status::Invalid;
  return out;
}

}  // namespace

const char* to_string(Status s) {
  switch (s) {
    case Status::Valid: return "valid";
    case Status::Invalid: return "invalid";
    case Status::Timeout: return "timeout";
    case Status::SynthFailed: return "synth-failed";
    case Status::Error: return "error";
  }
  return "error";
}

const char* to_string(Cache c) {
  switch (c) {
    case Cache::Off: return "off";
    case Cache::Hit: return "hit";
    case Cache::Miss: return "miss";
    case Cache::NegativeHit: return "neg-hit";
  }
  return "off";
}

VerifyContext VerifyContext::from_env() {
  VerifyContext ctx;
  ctx.store = store::CertStore::from_env();
  ctx.jobs = core::env::jobs().value_or(0);
  ctx.negative_ttl_seconds = core::env::negative_ttl().value_or(0.0);
  switch (core::env::exact_solver()) {
    case core::env::ExactSolver::Bareiss:
      ctx.exact_solver = exact::ExactSolverStrategy::Bareiss;
      break;
    case core::env::ExactSolver::Modular:
      ctx.exact_solver = exact::ExactSolverStrategy::Modular;
      break;
    case core::env::ExactSolver::Auto:
      break;  // nullopt — kernels resolve Auto themselves
  }
  return ctx;
}

VerifyOutcome run_verify(const VerifyContext& ctx, const VerifyRequest& req) {
  obs::Registry& registry = registry_of(ctx);
  registry.counter("spiv_verify_requests_total").add();
  VerifyOutcome out = run_verify_impl(ctx, req);
  count_outcome(registry, out.status);
  return out;
}

VerifyOutcome run_validate(const VerifyContext& ctx,
                           const ValidateRequest& req) {
  VerifyOutcome out;
  out.cache = Cache::Off;
  const Deadline deadline = mint_deadline(ctx, req.timeout_seconds);
  out.deadline = deadline;
  smt::CheckOptions check;
  check.det_encoding = req.det_encoding;
  check.deadline = deadline;
  const auto t0 = std::chrono::steady_clock::now();
  try {
    out.validation =
        smt::validate_lyapunov(req.a, req.p, req.engine, req.digits, check);
  } catch (const TimeoutError&) {
    out.status = Status::Timeout;
    out.timeout_stage = Stage::Validation;
    return out;
  } catch (const std::exception& e) {
    out.status = Status::Error;
    out.message = std::string{"validation failed: "} + e.what();
    return out;
  }
  // Wall clock, not the verdicts' own sum: the Fig. 3 protocol reports the
  // harness-observed latency of the whole validation call.
  out.validate_seconds = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - t0)
                             .count();
  if (out.validation.positivity.outcome == smt::Outcome::Timeout ||
      out.validation.decrease.outcome == smt::Outcome::Timeout) {
    out.status = Status::Timeout;
    out.timeout_stage = Stage::Validation;
  } else {
    out.status = out.validation.valid() ? Status::Valid : Status::Invalid;
  }
  return out;
}

VerifyOutcome run_synthesize(const VerifyContext& ctx,
                             const VerifyRequest& req) {
  VerifyOutcome out;
  out.cache = Cache::Off;

  lyap::SynthesisOptions options = effective_options(ctx, req);
  const bool shared = std::holds_alternative<SharedBudget>(req.budget);
  Deadline deadline =
      shared ? mint_deadline(ctx, std::get<SharedBudget>(req.budget).seconds)
             : mint_deadline(ctx,
                             std::get<SplitBudget>(req.budget).synth_seconds);
  out.deadline = deadline;
  options.deadline = deadline;
  try {
    out.candidate = lyap::synthesize(req.a, req.method, options);
  } catch (const TimeoutError&) {
    out.status = Status::Timeout;
    out.timeout_stage = Stage::Synthesis;
    return out;
  } catch (const std::exception& e) {
    out.status = Status::Error;
    out.message = std::string{"synthesis failed: "} + e.what();
    return out;
  }
  if (!out.candidate) {
    out.status = Status::SynthFailed;
    return out;
  }
  out.synth_seconds = out.candidate->synth_seconds;
  out.status = Status::Valid;
  // Budget for whatever the caller chains next (a region computation plays
  // validation's role): the shared remainder, or the split validate budget
  // whose clock starts now — synthesis never eats into it.
  if (!shared)
    out.deadline =
        mint_deadline(ctx, std::get<SplitBudget>(req.budget).validate_seconds);
  return out;
}

store::CertStore* resolve_store(const std::string& cli_dir) {
  if (cli_dir.empty()) return store::CertStore::from_env();
  static std::mutex mutex;
  static std::map<std::string, std::unique_ptr<store::CertStore>> stores;
  std::lock_guard<std::mutex> lock(mutex);
  auto it = stores.find(cli_dir);
  if (it == stores.end()) {
    std::unique_ptr<store::CertStore> created;
    try {
      created = std::make_unique<store::CertStore>(cli_dir);
    } catch (const std::exception& e) {
      std::cerr << "spiv: certificate cache disabled: " << e.what() << "\n";
    }
    it = stores.emplace(cli_dir, std::move(created)).first;
  }
  return it->second.get();
}

}  // namespace spiv::verify
