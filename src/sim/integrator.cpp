#include "sim/integrator.hpp"

#include <algorithm>
#include <cmath>
#include <optional>
#include <stdexcept>

namespace spiv::sim {

using numeric::Vector;

namespace {

/// Cash–Karp embedded Runge–Kutta 4(5) tableau.
constexpr double kA21 = 1.0 / 5.0;
constexpr double kA31 = 3.0 / 40.0, kA32 = 9.0 / 40.0;
constexpr double kA41 = 3.0 / 10.0, kA42 = -9.0 / 10.0, kA43 = 6.0 / 5.0;
constexpr double kA51 = -11.0 / 54.0, kA52 = 5.0 / 2.0, kA53 = -70.0 / 27.0,
                 kA54 = 35.0 / 27.0;
constexpr double kA61 = 1631.0 / 55296.0, kA62 = 175.0 / 512.0,
                 kA63 = 575.0 / 13824.0, kA64 = 44275.0 / 110592.0,
                 kA65 = 253.0 / 4096.0;
constexpr double kB1 = 37.0 / 378.0, kB3 = 250.0 / 621.0, kB4 = 125.0 / 594.0,
                 kB6 = 512.0 / 1771.0;
constexpr double kE1 = kB1 - 2825.0 / 27648.0, kE3 = kB3 - 18575.0 / 48384.0,
                 kE4 = kB4 - 13525.0 / 55296.0, kE5 = -277.0 / 14336.0,
                 kE6 = kB6 - 0.25;

struct StepResult {
  Vector w_new;
  double error = 0.0;  ///< scaled truncation error estimate
};

StepResult rk45_step(const model::PwaMode& mode, const Vector& drift,
                     const Vector& w, double dt, double rel_tol,
                     double abs_tol) {
  const std::size_t n = w.size();
  auto f = [&mode, &drift](const Vector& x) {
    Vector dx = mode.a.apply(x);
    for (std::size_t i = 0; i < dx.size(); ++i) dx[i] += drift[i];
    return dx;
  };
  Vector k1 = f(w);
  Vector tmp(n);
  for (std::size_t i = 0; i < n; ++i) tmp[i] = w[i] + dt * kA21 * k1[i];
  Vector k2 = f(tmp);
  for (std::size_t i = 0; i < n; ++i)
    tmp[i] = w[i] + dt * (kA31 * k1[i] + kA32 * k2[i]);
  Vector k3 = f(tmp);
  for (std::size_t i = 0; i < n; ++i)
    tmp[i] = w[i] + dt * (kA41 * k1[i] + kA42 * k2[i] + kA43 * k3[i]);
  Vector k4 = f(tmp);
  for (std::size_t i = 0; i < n; ++i)
    tmp[i] = w[i] + dt * (kA51 * k1[i] + kA52 * k2[i] + kA53 * k3[i] +
                          kA54 * k4[i]);
  Vector k5 = f(tmp);
  for (std::size_t i = 0; i < n; ++i)
    tmp[i] = w[i] + dt * (kA61 * k1[i] + kA62 * k2[i] + kA63 * k3[i] +
                          kA64 * k4[i] + kA65 * k5[i]);
  Vector k6 = f(tmp);

  StepResult out;
  out.w_new.resize(n);
  double err = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    out.w_new[i] =
        w[i] + dt * (kB1 * k1[i] + kB3 * k3[i] + kB4 * k4[i] + kB6 * k6[i]);
    const double e = dt * (kE1 * k1[i] + kE3 * k3[i] + kE4 * k4[i] +
                           kE5 * k5[i] + kE6 * k6[i]);
    const double scale =
        abs_tol + rel_tol * std::max(std::abs(w[i]), std::abs(out.w_new[i]));
    err = std::max(err, std::abs(e) / scale);
  }
  out.error = err;
  return out;
}

}  // namespace

Trajectory simulate(const model::PwaSystem& system, const Vector& r,
                    Vector w0, const SimOptions& options) {
  if (w0.size() != system.dim())
    throw std::invalid_argument("simulate: initial state dimension mismatch");
  Trajectory traj;
  double t = 0.0;
  double dt = options.dt_initial;
  std::size_t mode = system.mode_of(w0);
  Vector w = std::move(w0);
  // Cache drifts (and, when convergence tracking is on, equilibria) per
  // mode; modes with singular dynamics simply opt out of the convergence
  // check.
  std::vector<Vector> drifts;
  std::vector<std::optional<Vector>> equilibria(system.num_modes());
  for (std::size_t i = 0; i < system.num_modes(); ++i) {
    drifts.push_back(system.mode(i).drift(r));
    if (options.convergence_radius > 0.0) {
      try {
        equilibria[i] = system.mode(i).equilibrium(r);
      } catch (const std::runtime_error&) {
        // singular mode matrix: no equilibrium to converge to
      }
    }
  }
  traj.points.push_back({t, w, mode});
  double last_record = 0.0;

  for (std::size_t step = 0; step < options.max_steps && t < options.t_end;
       ++step) {
    dt = std::min({dt, options.dt_max, options.t_end - t});
    StepResult res = rk45_step(system.mode(mode), drifts[mode], w, dt,
                               options.rel_tol, options.abs_tol);
    if (res.error > 1.0) {
      dt *= std::max(0.1, 0.9 * std::pow(res.error, -0.25));
      if (dt < options.dt_min) {
        traj.step_failed = true;
        break;
      }
      continue;  // retry with smaller step
    }
    const std::size_t new_mode = system.mode_of(res.w_new);
    if (new_mode != mode) {
      // Localize the crossing by bisection on the step size, then accept
      // the sub-step and switch the flow (state is continuous).
      double lo = 0.0, hi = dt;
      Vector w_cross = res.w_new;
      for (int iter = 0; iter < 40 && hi - lo > options.dt_min; ++iter) {
        const double mid = 0.5 * (lo + hi);
        StepResult sub = rk45_step(system.mode(mode), drifts[mode], w, mid,
                                   options.rel_tol, options.abs_tol);
        if (system.mode_of(sub.w_new) == mode) {
          lo = mid;
        } else {
          hi = mid;
          w_cross = sub.w_new;
        }
      }
      t += hi;
      w = std::move(w_cross);
      traj.switches.push_back({t, mode, system.mode_of(w)});
      mode = system.mode_of(w);
      traj.points.push_back({t, w, mode});
      last_record = t;
      dt = options.dt_initial;
      continue;
    }
    // Accept.
    t += dt;
    w = std::move(res.w_new);
    if (t - last_record >= options.record_interval || t >= options.t_end) {
      traj.points.push_back({t, w, mode});
      last_record = t;
    }
    // Step-size growth.
    if (res.error > 0.0)
      dt *= std::min(4.0, 0.9 * std::pow(res.error, -0.2));
    else
      dt *= 4.0;
    if (options.convergence_radius > 0.0 && equilibria[mode]) {
      double dist2 = 0.0;
      for (std::size_t i = 0; i < w.size(); ++i) {
        const double d = w[i] - (*equilibria[mode])[i];
        dist2 += d * d;
      }
      if (std::sqrt(dist2) < options.convergence_radius) {
        traj.converged = true;
        break;
      }
    }
  }
  if (traj.points.back().t != t) traj.points.push_back({t, w, mode});
  return traj;
}

}  // namespace spiv::sim
