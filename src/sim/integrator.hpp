// spiv::sim — numerical simulation of the closed-loop PWA switched system.
//
// Used by the examples and by property tests: trajectories started inside
// a certified robust region W_i must converge to the mode's equilibrium
// without ever switching mode (the semantic content of paper §VI-C), and
// trajectories elsewhere exhibit the switching behaviour of §V.
//
// The integrator is an adaptive Cash–Karp RK45 with bisection-based
// localization of guard crossings (switching is continuous in the state,
// so only the flow changes at a crossing).
#pragma once

#include <cstddef>
#include <vector>

#include "model/switched_pi.hpp"

namespace spiv::sim {

struct SimOptions {
  double t_end = 10.0;
  double dt_initial = 1e-3;
  double dt_min = 1e-9;
  double dt_max = 0.05;
  double rel_tol = 1e-7;
  double abs_tol = 1e-10;
  /// Record a trajectory point at least this often (simulation time).
  double record_interval = 0.01;
  std::size_t max_steps = 2000000;
  /// Stop early when within this distance of the active mode equilibrium.
  double convergence_radius = 0.0;
};

struct TrajectoryPoint {
  double t = 0.0;
  numeric::Vector w;
  std::size_t mode = 0;
};

struct SwitchEvent {
  double t = 0.0;
  std::size_t from = 0;
  std::size_t to = 0;
};

struct Trajectory {
  std::vector<TrajectoryPoint> points;
  std::vector<SwitchEvent> switches;
  bool converged = false;  ///< reached convergence_radius before t_end
  bool step_failed = false;  ///< step size underflow (stiff failure)

  [[nodiscard]] const TrajectoryPoint& back() const { return points.back(); }
};

/// Integrate the switched system from w0 under constant reference r.
[[nodiscard]] Trajectory simulate(const model::PwaSystem& system,
                                  const numeric::Vector& r,
                                  numeric::Vector w0,
                                  const SimOptions& options = {});

}  // namespace spiv::sim
