#include "store/cert_store.hpp"

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <thread>

#include "core/env.hpp"

namespace spiv::store {

namespace fs = std::filesystem;

namespace {

/// Seconds elapsed since `t0` (store-tier latency observations).
double since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

CertStore::CertStore(std::string dir, std::size_t memory_capacity)
    : dir_(std::move(dir)),
      shard_capacity_(std::max<std::size_t>(1, memory_capacity / kShards)),
      m_memory_hits_(
          obs::Registry::global().counter("spiv_store_memory_hits_total")),
      m_disk_hits_(
          obs::Registry::global().counter("spiv_store_disk_hits_total")),
      m_misses_(obs::Registry::global().counter("spiv_store_misses_total")),
      m_writes_(obs::Registry::global().counter("spiv_store_writes_total")),
      m_negative_hits_(
          obs::Registry::global().counter("spiv_store_negative_hits_total")),
      m_negative_writes_(
          obs::Registry::global().counter("spiv_store_negative_writes_total")),
      lookup_memory_seconds_(obs::Registry::global().histogram(
          "spiv_store_lookup_seconds{tier=\"memory\"}")),
      lookup_disk_seconds_(obs::Registry::global().histogram(
          "spiv_store_lookup_seconds{tier=\"disk\"}")),
      lookup_miss_seconds_(obs::Registry::global().histogram(
          "spiv_store_lookup_seconds{tier=\"miss\"}")),
      insert_seconds_(
          obs::Registry::global().histogram("spiv_store_insert_seconds")) {
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec || !fs::is_directory(dir_))
    throw std::runtime_error("cert store: cannot create cache directory '" +
                             dir_ + "'");
}

std::string CertStore::path_for(const std::string& key) const {
  return (fs::path(dir_) / (key + ".spivcert")).string();
}

CertStore::Shard& CertStore::shard_for(const std::string& key) {
  // Keys are hex strings of a uniform hash; the last nibble is as good a
  // shard index as any.  Keys are caller-supplied, though, so decode
  // defensively: uppercase hex maps like lowercase, anything else hashes
  // by raw byte value instead of wrapping through a negative `c - '0'`.
  const unsigned char c =
      key.empty() ? '0' : static_cast<unsigned char>(key.back());
  std::size_t nibble;
  if (c >= '0' && c <= '9')
    nibble = static_cast<std::size_t>(c - '0');
  else if (c >= 'a' && c <= 'f')
    nibble = static_cast<std::size_t>(c - 'a' + 10);
  else if (c >= 'A' && c <= 'F')
    nibble = static_cast<std::size_t>(c - 'A' + 10);
  else
    nibble = static_cast<std::size_t>(c) & 0xF;
  return shards_[nibble % kShards];
}

void CertStore::remember(const std::string& key,
                         std::shared_ptr<const CertRecord> rec) {
  Shard& shard = shard_for(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    shard.lru.erase(it->second);
    shard.index.erase(it);
    memory_entries_.fetch_sub(1, std::memory_order_relaxed);
  }
  shard.lru.emplace_front(key, std::move(rec));
  shard.index[key] = shard.lru.begin();
  memory_entries_.fetch_add(1, std::memory_order_relaxed);
  while (shard.lru.size() > shard_capacity_) {
    shard.index.erase(shard.lru.back().first);
    shard.lru.pop_back();
    memory_entries_.fetch_sub(1, std::memory_order_relaxed);
  }
}

void CertStore::insert_negative(const std::string& key,
                                const std::string& reason,
                                double budget_seconds, double ttl_seconds) {
  if (!(ttl_seconds > 0.0)) return;
  Shard& shard = shard_for(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  // Bound the tier: sweep expired entries when it grows past the shard's
  // LRU capacity, then evict arbitrarily — negatives are an optimization,
  // dropping one only costs a recompute.
  if (shard.negatives.size() >= shard_capacity_ + 64) {
    const auto now = std::chrono::steady_clock::now();
    for (auto it = shard.negatives.begin(); it != shard.negatives.end();)
      it = it->second.expires <= now ? shard.negatives.erase(it)
                                     : std::next(it);
    if (shard.negatives.size() >= shard_capacity_ + 64)
      shard.negatives.erase(shard.negatives.begin());
  }
  NegativeEntry entry;
  entry.reason = reason;
  entry.budget_seconds = budget_seconds;
  entry.expires = std::chrono::steady_clock::now() +
                  std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                      std::chrono::duration<double>(ttl_seconds));
  // Keep the more general entry: a live budget-independent failure already
  // shields everything a budget-bound one would, so only refresh its expiry.
  auto it = shard.negatives.find(key);
  if (it != shard.negatives.end() && it->second.budget_seconds == 0.0 &&
      budget_seconds > 0.0 &&
      it->second.expires > std::chrono::steady_clock::now()) {
    if (entry.expires > it->second.expires) it->second.expires = entry.expires;
    return;
  }
  shard.negatives[key] = std::move(entry);
  negative_writes_.fetch_add(1, std::memory_order_relaxed);
  m_negative_writes_.add();
}

std::optional<NegativeEntry> CertStore::lookup_negative(
    const std::string& key, double budget_seconds) {
  Shard& shard = shard_for(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.negatives.find(key);
  if (it == shard.negatives.end()) return std::nullopt;
  if (it->second.expires <= std::chrono::steady_clock::now()) {
    shard.negatives.erase(it);
    return std::nullopt;
  }
  // A budget-bound failure only shields requests with no more budget than
  // the run that failed; a bigger budget deserves a fresh attempt.
  if (it->second.budget_seconds > 0.0 &&
      budget_seconds > it->second.budget_seconds)
    return std::nullopt;
  negative_hits_.fetch_add(1, std::memory_order_relaxed);
  m_negative_hits_.add();
  return it->second;
}

std::shared_ptr<const CertRecord> CertStore::lookup(const std::string& key) {
  const auto t0 = std::chrono::steady_clock::now();
  // Memory tier.
  {
    Shard& shard = shard_for(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      memory_hits_.fetch_add(1, std::memory_order_relaxed);
      m_memory_hits_.add();
      lookup_memory_seconds_.observe(since(t0));
      return it->second->second;
    }
  }
  // Disk tier (no shard lock held across I/O).
  std::ifstream in{path_for(key), std::ios::binary};
  if (!in) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    m_misses_.add();
    lookup_miss_seconds_.observe(since(t0));
    return nullptr;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  try {
    auto rec = std::make_shared<const CertRecord>(
        cert_from_string(buf.str(), key));
    disk_hits_.fetch_add(1, std::memory_order_relaxed);
    m_disk_hits_.add();
    remember(key, rec);
    lookup_disk_seconds_.observe(since(t0));
    return rec;
  } catch (const std::exception&) {
    // Corrupt / truncated / version-mismatched entry: a miss, not an error.
    misses_.fetch_add(1, std::memory_order_relaxed);
    m_misses_.add();
    lookup_miss_seconds_.observe(since(t0));
    return nullptr;
  }
}

void CertStore::insert(const std::string& key, const CertRecord& record) {
  const auto t0 = std::chrono::steady_clock::now();
  const std::string text = cert_to_string(key, record);
  // Unique temp name per writer so racing inserts never clobber each
  // other's in-flight bytes; the final rename is atomic within dir_.
  static std::atomic<std::uint64_t> counter{0};
  std::ostringstream tmp_name;
  tmp_name << key << ".tmp." << std::hash<std::thread::id>{}(
                  std::this_thread::get_id())
           << "." << counter.fetch_add(1, std::memory_order_relaxed);
  const fs::path tmp = fs::path(dir_) / tmp_name.str();
  {
    std::ofstream out{tmp, std::ios::binary | std::ios::trunc};
    if (!out) return;  // read-only cache dir: degrade to memory-only
    out << text;
    if (!out.flush()) {
      std::error_code ec;
      fs::remove(tmp, ec);
      return;
    }
  }
  std::error_code ec;
  fs::rename(tmp, path_for(key), ec);
  if (ec) {
    fs::remove(tmp, ec);
    return;
  }
  writes_.fetch_add(1, std::memory_order_relaxed);
  m_writes_.add();
  remember(key, std::make_shared<const CertRecord>(record));
  insert_seconds_.observe(since(t0));
}

StoreStats CertStore::stats() const {
  StoreStats s;
  s.memory_hits = memory_hits_.load(std::memory_order_relaxed);
  s.disk_hits = disk_hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.writes = writes_.load(std::memory_order_relaxed);
  s.negative_hits = negative_hits_.load(std::memory_order_relaxed);
  s.negative_writes = negative_writes_.load(std::memory_order_relaxed);
  s.memory_entries = memory_entries_.load(std::memory_order_relaxed);
  return s;
}

CertStore* CertStore::from_env() {
  static std::unique_ptr<CertStore> store = [] {
    const std::string dir = core::env::cache_dir();
    if (dir.empty()) return std::unique_ptr<CertStore>{};
    try {
      return std::make_unique<CertStore>(dir);
    } catch (const std::exception& e) {
      std::cerr << "spiv: certificate cache disabled: " << e.what() << "\n";
      return std::unique_ptr<CertStore>{};
    }
  }();
  return store.get();
}

}  // namespace spiv::store
