// spiv::store — persistent, content-addressed certificate store.
//
// Layout: one `spiv-cert v1` file per request key under a cache directory
// (`<dir>/<32-hex-key>.spivcert`).  Writes go through a temp file in the
// same directory followed by an atomic rename, so concurrent writers and
// crashed runs can never leave a half-written certificate under a live key.
// Reads verify the checksum and the embedded key; any damage — truncation,
// corruption, version mismatch — is a cache miss that triggers recompute,
// never a crash.
//
// An in-memory sharded-mutex LRU fronts the disk: JobPool workers hammering
// the store concurrently only contend on their key's shard, and repeated
// hits on hot certificates skip the filesystem entirely.
// A negative tier rides alongside: failures worth remembering (synthesis
// infeasible, budget exhausted) are cached in memory with a TTL so a storm
// of identical hopeless requests stops re-burning the synthesis budget.
// Negative entries are deliberately NOT persisted — a failure is a claim
// about this process's kernels and budgets, not a portable certificate.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "obs/metrics.hpp"
#include "store/cert_format.hpp"
#include "store/cert_key.hpp"

namespace spiv::store {

/// Hit/miss counters (monotonic, relaxed; exact under any interleaving).
struct StoreStats {
  std::uint64_t memory_hits = 0;
  std::uint64_t disk_hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t writes = 0;
  std::uint64_t negative_hits = 0;
  std::uint64_t negative_writes = 0;
  /// Certificates currently resident in the memory LRU tier.
  std::uint64_t memory_entries = 0;
  [[nodiscard]] std::uint64_t hits() const { return memory_hits + disk_hits; }
};

/// A remembered failure: why it failed and, for budget-bound failures, the
/// budget that was exhausted (0 = failure independent of budget).
struct NegativeEntry {
  std::string reason;           ///< e.g. "synth-failed", "timeout-synthesis"
  double budget_seconds = 0.0;  ///< 0 = shields any budget
  std::chrono::steady_clock::time_point expires{};
};

class CertStore {
 public:
  /// Opens (and creates, if needed) the cache directory.  `memory_capacity`
  /// bounds the total number of certificates kept in RAM across all shards.
  /// Throws std::runtime_error when the directory cannot be created.
  explicit CertStore(std::string dir, std::size_t memory_capacity = 1024);

  CertStore(const CertStore&) = delete;
  CertStore& operator=(const CertStore&) = delete;

  /// Look a certificate up by key: memory first, then disk (which also
  /// warms the memory tier).  Returns nullptr on miss or damaged entry.
  /// Hits share the cached record instead of deep-copying it — exact
  /// rational P matrices can be large, and hot keys are hit per job.
  [[nodiscard]] std::shared_ptr<const CertRecord> lookup(
      const std::string& key);

  /// Persist a certificate (atomic write) and warm the memory tier.
  /// Concurrent inserts under one key are safe: renames are atomic and all
  /// writers of a key serialize identical bytes.
  void insert(const std::string& key, const CertRecord& record);

  /// Convenience: request_key + lookup/insert.
  [[nodiscard]] std::shared_ptr<const CertRecord> lookup(
      const CertRequest& request) {
    return lookup(request_key(request));
  }
  void insert(const CertRequest& request, const CertRecord& record) {
    insert(request_key(request), record);
  }

  /// Remember a failure under `key` for `ttl_seconds`.  `budget_seconds`
  /// > 0 marks a budget-bound failure (timeout): the entry then shields
  /// only requests whose budget is <= the one that failed — a request
  /// with MORE budget might succeed and is allowed through to recompute.
  void insert_negative(const std::string& key, const std::string& reason,
                       double budget_seconds, double ttl_seconds);

  /// Fresh negative entry applicable to a request with `budget_seconds`
  /// of budget, or nullopt.  Expired entries are evicted on the way.
  [[nodiscard]] std::optional<NegativeEntry> lookup_negative(
      const std::string& key, double budget_seconds);

  [[nodiscard]] const std::string& directory() const { return dir_; }
  [[nodiscard]] std::string path_for(const std::string& key) const;
  [[nodiscard]] StoreStats stats() const;

  /// Process-wide store configured by $SPIV_CACHE_DIR; nullptr when the
  /// variable is unset or empty (caching disabled) or the directory cannot
  /// be created (a one-line stderr warning is printed in that case).
  [[nodiscard]] static CertStore* from_env();

 private:
  static constexpr std::size_t kShards = 16;

  struct Shard {
    std::mutex mutex;
    /// Front = most recently used.  The list owns the records; the map
    /// indexes them by key.
    std::list<std::pair<std::string, std::shared_ptr<const CertRecord>>> lru;
    std::unordered_map<std::string, decltype(lru)::iterator> index;
    /// Negative tier (same lock: entries are tiny and touched rarely).
    std::unordered_map<std::string, NegativeEntry> negatives;
  };

  [[nodiscard]] Shard& shard_for(const std::string& key);
  void remember(const std::string& key, std::shared_ptr<const CertRecord> rec);

  std::string dir_;
  std::size_t shard_capacity_;
  std::array<Shard, kShards> shards_;
  std::atomic<std::uint64_t> memory_hits_{0};
  std::atomic<std::uint64_t> disk_hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> writes_{0};
  std::atomic<std::uint64_t> negative_hits_{0};
  std::atomic<std::uint64_t> negative_writes_{0};
  std::atomic<std::uint64_t> memory_entries_{0};
  // Global-registry mirrors of the counters above plus per-tier lookup and
  // insert latency histograms (resolved once here; observing is wait-free).
  obs::Counter& m_memory_hits_;
  obs::Counter& m_disk_hits_;
  obs::Counter& m_misses_;
  obs::Counter& m_writes_;
  obs::Counter& m_negative_hits_;
  obs::Counter& m_negative_writes_;
  obs::Histogram& lookup_memory_seconds_;
  obs::Histogram& lookup_disk_seconds_;
  obs::Histogram& lookup_miss_seconds_;
  obs::Histogram& insert_seconds_;
};

}  // namespace spiv::store
