// spiv::store — content addressing of verification requests.
//
// A verification request is fully determined by (mode dynamics matrix A,
// synthesis method, SDP backend, synthesis parameters alpha/nu/kappa for
// the LMI methods, rounding digits, validation engine): the whole pipeline
// downstream of those inputs is deterministic, so the exact validation
// verdict of §VI-B1 is a *reusable certificate*.  This module defines the
// canonical byte serialization of a request and a 128-bit hash over those
// bytes that keys the certificate store (store/cert_store.hpp).
//
// The canonical bytes are a plain-text `spiv-req v2` block with 17-digit
// doubles (round-trip exact), so two requests collide iff their matrices
// are bit-identical and their options equal — no float normalization games.
// alpha/nu/kappa enter the bytes only for LMI methods (the only methods
// whose result depends on them), so eq-smt/eq-num/modal certificates are
// shared across alpha sweeps.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "lyapunov/synthesis.hpp"
#include "numeric/matrix.hpp"
#include "sdp/lmi.hpp"
#include "smt/validate.hpp"

namespace spiv::store {

/// Everything that determines a verification result.  The synthesis
/// parameters must mirror the lyap::SynthesisOptions actually passed to
/// synthesize() — copy them from the options object, never re-default.
struct CertRequest {
  numeric::Matrix a;  ///< closed-loop mode dynamics matrix
  lyap::Method method = lyap::Method::EqNum;
  std::optional<sdp::Backend> backend;  ///< LMI methods only
  smt::Engine engine = smt::Engine::Sylvester;
  int digits = 10;      ///< rounding before exact validation
  double alpha = 0.1;   ///< LMIa decay rate (LMI methods only)
  double nu = 1e-3;     ///< LMIa+ eigenvalue floor (LMI methods only)
  double kappa = 1.0;   ///< P < kappa I normalization (LMI methods only)

  /// Copy the result-determining synthesis parameters from the options
  /// that will be (or were) handed to lyap::synthesize.
  void set_synthesis_params(const lyap::SynthesisOptions& options) {
    alpha = options.alpha;
    nu = options.nu;
    kappa = options.kappa;
  }
};

/// FNV-1a over `bytes` starting from `seed` (pass a different seed to get an
/// independent hash lane).
[[nodiscard]] std::uint64_t fnv1a64(std::string_view bytes,
                                    std::uint64_t seed = 14695981039346656037ull);

/// The canonical `spiv-req v2` serialization of a request.
[[nodiscard]] std::string canonical_request_bytes(const CertRequest& request);

/// 128-bit content key: 32 lowercase hex characters (two independent FNV-1a
/// lanes over the canonical bytes).
[[nodiscard]] std::string request_key(const CertRequest& request);

}  // namespace spiv::store
