#include "store/cert_key.hpp"

#include <iomanip>
#include <sstream>

namespace spiv::store {

std::uint64_t fnv1a64(std::string_view bytes, std::uint64_t seed) {
  constexpr std::uint64_t kPrime = 1099511628211ull;
  std::uint64_t h = seed;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= kPrime;
  }
  return h;
}

std::string canonical_request_bytes(const CertRequest& request) {
  std::ostringstream os;
  os << "spiv-req v2\n";
  os << "method " << lyap::to_string(request.method) << " backend "
     << (request.backend ? sdp::to_string(*request.backend) : "-")
     << " engine " << smt::to_string(request.engine) << " digits "
     << request.digits << "\n";
  // Synthesis parameters shape the result only for the LMI methods;
  // omitting them elsewhere lets eq-smt/eq-num/modal certificates be
  // shared across alpha/nu/kappa sweeps.
  if (lyap::is_lmi_method(request.method))
    os << std::setprecision(17) << "alpha " << request.alpha << " nu "
       << request.nu << " kappa " << request.kappa << "\n";
  os << "a " << request.a.rows() << " " << request.a.cols() << "\n";
  os << std::setprecision(17);
  for (std::size_t i = 0; i < request.a.rows(); ++i) {
    for (std::size_t j = 0; j < request.a.cols(); ++j)
      os << request.a(i, j) << (j + 1 == request.a.cols() ? "" : " ");
    os << "\n";
  }
  return os.str();
}

std::string request_key(const CertRequest& request) {
  const std::string bytes = canonical_request_bytes(request);
  // Two independent lanes: the second seed is the FNV offset basis xored
  // with a 64-bit odd constant, giving a 128-bit key whose collision odds
  // are negligible for any realistic store size.
  const std::uint64_t lo = fnv1a64(bytes);
  const std::uint64_t hi =
      fnv1a64(bytes, 14695981039346656037ull ^ 0x9e3779b97f4a7c15ull);
  std::ostringstream os;
  os << std::hex << std::setfill('0') << std::setw(16) << hi << std::setw(16)
     << lo;
  return os.str();
}

}  // namespace spiv::store
