#include "store/cert_format.hpp"

#include <cmath>
#include <iomanip>
#include <sstream>
#include <stdexcept>

#include "store/cert_key.hpp"

namespace spiv::store {

using exact::RatMatrix;
using exact::Rational;
using numeric::Matrix;

namespace {

const char* outcome_name(smt::Outcome o) {
  switch (o) {
    case smt::Outcome::Valid: return "valid";
    case smt::Outcome::Invalid: return "invalid";
    case smt::Outcome::Timeout: return "timeout";
  }
  return "?";
}

smt::Outcome outcome_from_name(const std::string& name) {
  if (name == "valid") return smt::Outcome::Valid;
  if (name == "invalid") return smt::Outcome::Invalid;
  if (name == "timeout") return smt::Outcome::Timeout;
  throw std::runtime_error("spiv-cert: unknown outcome '" + name + "'");
}

void expect_token(std::istream& is, const std::string& expected) {
  std::string tok;
  if (!(is >> tok) || tok != expected)
    throw std::runtime_error("spiv-cert: expected '" + expected + "', got '" +
                             tok + "'");
}

double read_finite(std::istream& is, const char* what) {
  double x = 0.0;
  if (!(is >> x))
    throw std::runtime_error(std::string{"spiv-cert: truncated "} + what);
  if (!std::isfinite(x))
    throw std::runtime_error(std::string{"spiv-cert: non-finite "} + what);
  return x;
}

void write_rational(std::ostream& os, const Rational& r) {
  os << r.num().to_string() << "/" << r.den().to_string();
}

Rational read_rational(std::istream& is) {
  std::string tok;
  if (!(is >> tok)) throw std::runtime_error("spiv-cert: truncated rational");
  const std::size_t slash = tok.find('/');
  if (slash == std::string::npos || slash == 0 || slash + 1 == tok.size())
    throw std::runtime_error("spiv-cert: malformed rational '" + tok + "'");
  try {
    return Rational{exact::BigInt{std::string_view{tok}.substr(0, slash)},
                    exact::BigInt{std::string_view{tok}.substr(slash + 1)}};
  } catch (const std::exception&) {
    throw std::runtime_error("spiv-cert: malformed rational '" + tok + "'");
  }
}

void write_verdict(std::ostream& os, const char* label,
                   const smt::Verdict& v) {
  os << label << " " << outcome_name(v.outcome) << " seconds "
     << std::setprecision(17) << v.seconds << " witness ";
  if (!v.witness) {
    os << "none\n";
    return;
  }
  os << v.witness->size() << "\n";
  for (std::size_t i = 0; i < v.witness->size(); ++i) {
    write_rational(os, (*v.witness)[i]);
    os << (i + 1 == v.witness->size() ? "" : " ");
  }
  if (!v.witness->empty()) os << "\n";
}

smt::Verdict read_verdict(std::istream& is, const std::string& label) {
  expect_token(is, label);
  std::string outcome;
  if (!(is >> outcome))
    throw std::runtime_error("spiv-cert: truncated verdict");
  smt::Verdict v;
  v.outcome = outcome_from_name(outcome);
  expect_token(is, "seconds");
  v.seconds = read_finite(is, "verdict seconds");
  expect_token(is, "witness");
  std::string witness;
  if (!(is >> witness))
    throw std::runtime_error("spiv-cert: truncated witness header");
  if (witness != "none") {
    std::size_t n = 0;
    try {
      n = std::stoul(witness);
    } catch (const std::exception&) {
      throw std::runtime_error("spiv-cert: bad witness size '" + witness + "'");
    }
    std::vector<Rational> w;
    w.reserve(n);
    for (std::size_t i = 0; i < n; ++i) w.push_back(read_rational(is));
    v.witness = std::move(w);
  }
  return v;
}

}  // namespace

std::string cert_to_string(const std::string& key, const CertRecord& record) {
  std::ostringstream os;
  os << "spiv-cert v1\n";
  os << "key " << key << "\n";
  os << "method " << lyap::to_string(record.candidate.method) << "\n";
  os << "synth_seconds " << std::setprecision(17)
     << record.candidate.synth_seconds << "\n";
  const Matrix& p = record.candidate.p;
  os << "p " << p.rows() << " " << p.cols() << "\n";
  os << std::setprecision(17);
  for (std::size_t i = 0; i < p.rows(); ++i) {
    for (std::size_t j = 0; j < p.cols(); ++j)
      os << p(i, j) << (j + 1 == p.cols() ? "" : " ");
    os << "\n";
  }
  if (record.candidate.exact_p) {
    const RatMatrix& ep = *record.candidate.exact_p;
    os << "exact_p " << ep.rows() << " " << ep.cols() << "\n";
    for (std::size_t i = 0; i < ep.rows(); ++i) {
      for (std::size_t j = 0; j < ep.cols(); ++j) {
        write_rational(os, ep(i, j));
        os << (j + 1 == ep.cols() ? "" : " ");
      }
      os << "\n";
    }
  } else {
    os << "exact_p none\n";
  }
  write_verdict(os, "positivity", record.validation.positivity);
  write_verdict(os, "decrease", record.validation.decrease);
  std::string body = os.str();
  std::ostringstream sum;
  sum << "checksum " << std::hex << std::setfill('0') << std::setw(16)
      << fnv1a64(body) << "\n";
  return body + sum.str();
}

CertRecord cert_from_string(const std::string& text,
                            const std::string& expected_key) {
  // Split off and verify the trailing checksum line before parsing anything.
  const std::size_t sum_pos = text.rfind("checksum ");
  if (sum_pos == std::string::npos || (sum_pos > 0 && text[sum_pos - 1] != '\n'))
    throw std::runtime_error("spiv-cert: missing checksum line");
  const std::string body = text.substr(0, sum_pos);
  std::istringstream sum_line{text.substr(sum_pos)};
  std::string tok, sum_hex;
  if (!(sum_line >> tok >> sum_hex) || sum_hex.size() != 16)
    throw std::runtime_error("spiv-cert: malformed checksum line");
  std::ostringstream expect;
  expect << std::hex << std::setfill('0') << std::setw(16) << fnv1a64(body);
  if (sum_hex != expect.str())
    throw std::runtime_error("spiv-cert: checksum mismatch");

  std::istringstream is{body};
  std::string magic, version;
  if (!(is >> magic >> version) || magic != "spiv-cert" || version != "v1")
    throw std::runtime_error("spiv-cert: not a spiv-cert v1 stream");
  expect_token(is, "key");
  std::string key;
  if (!(is >> key)) throw std::runtime_error("spiv-cert: truncated key");
  if (!expected_key.empty() && key != expected_key)
    throw std::runtime_error("spiv-cert: key mismatch (hash collision or "
                             "misplaced file)");
  CertRecord record;
  expect_token(is, "method");
  std::string method;
  if (!(is >> method)) throw std::runtime_error("spiv-cert: truncated method");
  const auto m = lyap::method_from_string(method);
  if (!m) throw std::runtime_error("spiv-cert: unknown method '" + method + "'");
  record.candidate.method = *m;
  expect_token(is, "synth_seconds");
  record.candidate.synth_seconds = read_finite(is, "synth_seconds");

  expect_token(is, "p");
  std::size_t rows = 0, cols = 0;
  if (!(is >> rows >> cols))
    throw std::runtime_error("spiv-cert: bad p header");
  record.candidate.p = Matrix{rows, cols};
  for (std::size_t i = 0; i < rows; ++i)
    for (std::size_t j = 0; j < cols; ++j)
      record.candidate.p(i, j) = read_finite(is, "p entry");

  expect_token(is, "exact_p");
  std::string ep_header;
  if (!(is >> ep_header))
    throw std::runtime_error("spiv-cert: truncated exact_p header");
  if (ep_header != "none") {
    std::size_t ep_rows = 0, ep_cols = 0;
    try {
      ep_rows = std::stoul(ep_header);
    } catch (const std::exception&) {
      throw std::runtime_error("spiv-cert: bad exact_p header");
    }
    if (!(is >> ep_cols))
      throw std::runtime_error("spiv-cert: bad exact_p header");
    RatMatrix ep{ep_rows, ep_cols};
    for (std::size_t i = 0; i < ep_rows; ++i)
      for (std::size_t j = 0; j < ep_cols; ++j) ep(i, j) = read_rational(is);
    record.candidate.exact_p = std::move(ep);
  }
  record.validation.positivity = read_verdict(is, "positivity");
  record.validation.decrease = read_verdict(is, "decrease");
  return record;
}

}  // namespace spiv::store
