// spiv::store — the on-disk `spiv-cert v1` certificate format.
//
// A certificate bundles everything the harness learned about one request:
// the synthesized candidate (including, for eq-smt, the exact rational
// solution as numerator/denominator pairs), both exact validation verdicts
// with their witnesses, and the timing metadata.  The format extends the
// `model/serialize` idiom — line-oriented plain text, 17-significant-digit
// doubles (round-trip exact), exact rationals as `num/den` tokens — and
// ends with a checksum line over every preceding byte:
//
//   spiv-cert v1
//   key <32 hex chars>
//   method LMIa
//   synth_seconds 0.12345678901234567
//   p 3 3
//   <3 rows of 3 doubles>
//   exact_p none                  # or `exact_p 3 3` + 9 num/den tokens
//   positivity valid seconds 0.001 witness none
//   decrease invalid seconds 0.002 witness 3
//   <3 num/den tokens>
//   checksum <16 hex chars>
//
// Readers throw std::runtime_error on any structural damage — bad magic,
// truncation, non-finite numbers, checksum mismatch, key mismatch.  The
// store treats every such throw as a cache miss (recompute), never a crash.
#pragma once

#include <iosfwd>
#include <string>

#include "lyapunov/synthesis.hpp"
#include "smt/validate.hpp"

namespace spiv::store {

/// One stored certificate: candidate + verdicts + timings.
struct CertRecord {
  lyap::Candidate candidate;
  smt::LyapunovValidation validation;
};

/// Serialize a record (checksum line included).
[[nodiscard]] std::string cert_to_string(const std::string& key,
                                         const CertRecord& record);

/// Parse and fully verify a certificate: magic/version, checksum over the
/// body, and — when `expected_key` is nonempty — the embedded key.  Throws
/// std::runtime_error on any mismatch.
[[nodiscard]] CertRecord cert_from_string(const std::string& text,
                                          const std::string& expected_key = "");

}  // namespace spiv::store
