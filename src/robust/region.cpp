#include "robust/region.hpp"

#include <chrono>
#include <cmath>
#include <random>
#include <stdexcept>

#include "exact/matrix.hpp"
#include "numeric/eigen.hpp"
#include "numeric/svd.hpp"
#include "smt/validate.hpp"

namespace spiv::robust {

using exact::RatMatrix;
using exact::Rational;
using numeric::Matrix;
using numeric::Vector;

namespace {

/// Exact geometric data of the mode, rationalized once.
struct ExactGeometry {
  RatMatrix p;       ///< candidate, rounded to `digits`
  RatMatrix p_inv;
  std::vector<Rational> g;   ///< surface normal (region: g.w + h > 0)
  Rational c0;               ///< surface offset in shifted coords (< 0)
  std::vector<Rational> q;   ///< gradient of the surface flow: A^T g
  // Scalars of the certificate algebra.
  Rational a;    ///< g^T P^-1 g
  Rational vstar;///< min V on the surface = c0^2 / a
  Rational t1;   ///< flow at the surface touch point
  Rational stilde;  ///< P-metric norm^2 of the surface-tangential flow grad
};

ExactGeometry make_exact_geometry(const model::PwaSystem& system,
                                  std::size_t mode_index, const Matrix& p,
                                  const Vector& r, int digits,
                                  const Deadline& deadline) {
  const model::PwaMode& mode = system.mode(mode_index);
  if (mode.region.size() != 1)
    throw std::invalid_argument(
        "synthesize_region: single-guard modes only");
  const std::size_t d = system.dim();

  ExactGeometry geo;
  geo.p = smt::rationalize(p, digits).symmetrized();
  auto inv = geo.p.inverse();
  if (!inv)
    throw std::invalid_argument("synthesize_region: candidate P singular");
  geo.p_inv = std::move(*inv);
  deadline.check();

  // Exact flow matrices and equilibrium.
  const RatMatrix a_exact = exact::rat_matrix_from_doubles(
      mode.a.data().data(), d, d, 0);
  const RatMatrix b_exact = exact::rat_matrix_from_doubles(
      mode.b.data().data(), d, mode.b.cols(), 0);
  std::vector<Rational> r_exact(r.size());
  for (std::size_t i = 0; i < r.size(); ++i)
    r_exact[i] = Rational::from_double_exact(r[i]);
  std::vector<Rational> drift = b_exact.apply(r_exact);
  for (auto& v : drift) v = -v;
  auto w_eq = a_exact.solve(drift);
  if (!w_eq)
    throw std::runtime_error("synthesize_region: singular mode matrix");
  deadline.check();

  const model::HalfSpace& hs = mode.region[0];
  geo.g.resize(d);
  for (std::size_t i = 0; i < d; ++i)
    geo.g[i] = Rational::from_double_exact(hs.g[i]);
  // s(w_eq) = g . w_eq + h must be positive (equilibrium inside region).
  Rational s_eq = Rational::from_double_exact(hs.h);
  for (std::size_t i = 0; i < d; ++i) s_eq += geo.g[i] * (*w_eq)[i];
  if (s_eq.sign() <= 0)
    throw std::runtime_error(
        "synthesize_region: equilibrium not strictly inside its region");
  geo.c0 = -s_eq;

  geo.q = a_exact.transposed().apply(geo.g);
  deadline.check();

  const std::vector<Rational> pg = geo.p_inv.apply(geo.g);
  const std::vector<Rational> pq = geo.p_inv.apply(geo.q);
  Rational gpg, qpg, qpq;
  for (std::size_t i = 0; i < d; ++i) {
    gpg += geo.g[i] * pg[i];
    qpg += geo.q[i] * pg[i];
    qpq += geo.q[i] * pq[i];
  }
  geo.a = gpg;
  if (geo.a.sign() <= 0)
    throw std::runtime_error("synthesize_region: P not positive definite");
  geo.vstar = geo.c0 * geo.c0 / geo.a;
  geo.t1 = geo.c0 * qpg / geo.a;
  geo.stilde = qpq - qpg * qpg / geo.a;
  return geo;
}

/// Exact check of condition (24) at sublevel k: every surface point with
/// V <= k has strictly inward flow.  Vacuously true when the ellipsoid
/// does not reach the surface (k < V*).
bool condition24_holds(const ExactGeometry& geo, const Rational& k) {
  if (k < geo.vstar) return true;  // slice empty
  if (geo.t1.sign() <= 0) return false;
  // min flow on the slice = t1 - sqrt((k - V*) * stilde) > 0
  //   <=>  t1 > 0  and  t1^2 > (k - V*) * stilde.
  return geo.t1 * geo.t1 > (k - geo.vstar) * geo.stilde;
}

}  // namespace

double ellipsoid_volume(const Matrix& p, double k) {
  const std::size_t d = p.rows();
  const double det = p.determinant();
  if (det <= 0.0 || k <= 0.0) return 0.0;
  const double log_ball =
      0.5 * static_cast<double>(d) * std::log(M_PI) -
      std::lgamma(0.5 * static_cast<double>(d) + 1.0);
  const double log_vol = log_ball +
                         0.5 * static_cast<double>(d) * std::log(k) -
                         0.5 * std::log(det);
  return std::exp(log_vol);
}

RobustRegion synthesize_region(const model::PwaSystem& system,
                               std::size_t mode_index, const Matrix& p,
                               const Vector& r, const RegionOptions& options) {
  const auto start = std::chrono::steady_clock::now();
  RobustRegion out;
  const ExactGeometry geo = make_exact_geometry(system, mode_index, p, r,
                                                options.digits,
                                                options.deadline);
  const model::PwaMode& mode = system.mode(mode_index);
  const std::size_t d = system.dim();

  if (geo.stilde.is_zero()) {
    // The surface flow is constant along the surface (paper's special
    // case): if it points inward the whole region is robust.
    out.flow_constant_on_surface = true;
    out.certified = geo.t1.sign() > 0;
    out.optimal = true;
    out.k = out.k_supremum = std::numeric_limits<double>::infinity();
    out.volume = std::numeric_limits<double>::infinity();
    out.seconds = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start)
                      .count();
    return out;
  }

  // Closed-form supremum k*: V* when the surface touch point already has
  // outward flow, otherwise the value where the inward-flow margin hits 0.
  const Rational k_sup = geo.t1.sign() <= 0
                             ? geo.vstar
                             : geo.vstar + geo.t1 * geo.t1 / geo.stilde;
  const Rational tol = Rational::from_double_rounded(options.tolerance, 6);
  const Rational k_cert = k_sup * (Rational{1} - tol);
  const Rational k_above = k_sup * (Rational{1} + tol);

  options.deadline.check();
  out.certified = condition24_holds(geo, k_cert);
  // Optimality: k*(1 + tol) must violate condition (24).
  out.optimal = !condition24_holds(geo, k_above);
  out.k = k_cert.to_double();
  out.k_supremum = k_sup.to_double();

  // Volume of the truncated ellipsoid W = {V <= k} ∩ R_i: full ellipsoid
  // volume times a Monte-Carlo estimate of the fraction inside the region.
  const double full = ellipsoid_volume(p, out.k);
  auto chol = p.symmetrized().cholesky();
  if (chol && full > 0.0 && options.volume_samples > 0) {
    // x = w_eq + sqrt(k) L^-T z with z uniform in the unit ball.
    Vector w_eq = mode.equilibrium(r);
    std::mt19937_64 rng{0x5e9f00d5};
    std::normal_distribution<double> gauss;
    std::uniform_real_distribution<double> unif{0.0, 1.0};
    int inside = 0;
    const Matrix lt = chol->transposed();
    for (int s = 0; s < options.volume_samples; ++s) {
      Vector z(d);
      double norm = 0.0;
      for (auto& v : z) {
        v = gauss(rng);
        norm += v * v;
      }
      norm = std::sqrt(norm);
      const double radius =
          std::pow(unif(rng), 1.0 / static_cast<double>(d)) / norm;
      for (auto& v : z) v *= radius * std::sqrt(out.k);
      // Solve L^T y = z  =>  y = L^-T z.
      Vector y(d, 0.0);
      for (std::size_t i = d; i-- > 0;) {
        double acc = z[i];
        for (std::size_t j = i + 1; j < d; ++j) acc -= lt(i, j) * y[j];
        y[i] = acc / lt(i, i);
      }
      Vector x(d);
      for (std::size_t i = 0; i < d; ++i) x[i] = w_eq[i] + y[i];
      if (mode.contains(x)) ++inside;
    }
    out.volume = full * static_cast<double>(inside) /
                 static_cast<double>(options.volume_samples);
  } else {
    out.volume = full;
  }

  out.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return out;
}

double state_robustness_radius(const model::PwaSystem& system,
                               std::size_t mode_index, const Matrix& p,
                               const Vector& r, const RobustRegion& region) {
  const model::PwaMode& mode = system.mode(mode_index);
  if (mode.region.size() != 1)
    throw std::invalid_argument("state_robustness_radius: single guard");
  const model::HalfSpace& hs = mode.region[0];
  const Vector w_eq = mode.equilibrium(r);
  const double delta =
      std::abs(numeric::dot(hs.g, w_eq) + hs.h) / numeric::norm2(hs.g);
  if (region.flow_constant_on_surface) {
    // W is the whole region: the ball is limited only by the surface.
    return delta;
  }
  auto eig = numeric::symmetric_eigen(p.symmetrized());
  const double lam_max = eig.values.back();
  if (lam_max <= 0.0)
    throw std::invalid_argument("state_robustness_radius: P not PD");
  return std::min(std::sqrt(region.k / lam_max), delta);
}

double reference_robustness_epsilon(const model::PwaSystem& system,
                                    std::size_t mode_index, const Matrix& p,
                                    const Vector& r,
                                    const RobustRegion& region) {
  const model::PwaMode& mode = system.mode(mode_index);
  if (mode.region.size() != 1)
    throw std::invalid_argument("reference_robustness_epsilon: single guard");
  const model::HalfSpace& hs = mode.region[0];
  const std::size_t d = system.dim();

  auto a_inv = mode.a.inverse();
  if (!a_inv)
    throw std::runtime_error("reference_robustness_epsilon: singular mode");
  const double beta = numeric::spectral_norm(*a_inv * mode.b);

  const Vector w_eq = mode.equilibrium(r);
  const double g_norm = numeric::norm2(hs.g);
  const double delta =
      std::abs(numeric::dot(hs.g, w_eq) + hs.h) / g_norm;

  if (region.flow_constant_on_surface) {
    // Paper: eps = dist(w_eq, surface) / ||A^-1 B||.
    return delta / beta;
  }

  // p_vec: orthogonal projection of A^T g onto g-perp (the direction in
  // which the surface flow varies along the surface).
  Vector atg = mode.a.apply_transposed(hs.g);
  const double coeff = numeric::dot(atg, hs.g) / (g_norm * g_norm);
  Vector p_vec(d);
  for (std::size_t i = 0; i < d; ++i) p_vec[i] = atg[i] - coeff * hs.g[i];
  const double p_norm = numeric::norm2(p_vec);
  if (p_norm == 0.0) return delta / beta;

  // gamma = ||g^T B|| / ||p||.
  const double gamma = numeric::norm2(mode.b.apply_transposed(hs.g)) / p_norm;

  // alpha: radius of a ball around w_eq inside W = {V <= k} ∩ R_i.
  auto eig = numeric::symmetric_eigen(p.symmetrized());
  const double lam_min = eig.values.front();
  const double lam_max = eig.values.back();
  if (lam_min <= 0.0 || lam_max <= 0.0)
    throw std::invalid_argument("reference_robustness_epsilon: P not PD");
  const double alpha =
      std::min(std::sqrt(region.k / lam_max), delta);
  const double mu = std::sqrt(lam_min / lam_max);

  return std::min(alpha * mu / (mu * (beta + gamma) + beta), delta / beta);
}

}  // namespace spiv::robust
