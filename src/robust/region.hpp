// spiv::robust — robustness to perturbation (paper §VI-C, Table II).
//
// Given a validated quadratic Lyapunov function V_i(w) =
// (w - w_eq)^T P (w - w_eq) for one operating mode, we synthesize the
// largest sublevel set {V_i <= k_i} whose intersection with the switching
// surface only contains points where the flow points back into the mode's
// region (condition (24)): trajectories starting in
// W_i = {V_i <= k_i} ∩ R_i converge to w_eq without ever switching mode.
//
// k_i has a closed form (equality-constrained quadratic minimization); the
// certificate that k_i satisfies condition (24) — and that it is optimal
// up to a 1e-3 factor, as the paper proves with Mathematica — is checked
// in exact rational arithmetic.
#pragma once

#include <optional>

#include "exact/timeout.hpp"
#include "model/switched_pi.hpp"
#include "numeric/matrix.hpp"

namespace spiv::robust {

struct RegionOptions {
  /// Optimality gap for the exact certificates (paper: 1e-3).
  double tolerance = 1e-3;
  /// Significant decimal digits for rationalizing the candidate P.
  int digits = 10;
  /// Monte-Carlo samples for the truncated-ellipsoid volume.
  int volume_samples = 4096;
  Deadline deadline{};
};

struct RobustRegion {
  double k = 0.0;          ///< certified sublevel value
  double k_supremum = 0.0; ///< the exact bound k* the search converged to
  bool flow_constant_on_surface = false;  ///< paper's special case: W = R_i
  double volume = 0.0;     ///< volume of the truncated ellipsoid W_i
  bool certified = false;  ///< exact proof of condition (24) at k
  bool optimal = false;    ///< exact witness that k*(1+tol) violates (24)
  double seconds = 0.0;    ///< synthesis + certification time
};

/// Synthesize and certify the robust region of `mode` for candidate P.
/// Requirements: the mode has a single guard (one switching surface) and P
/// is symmetric positive definite.
[[nodiscard]] RobustRegion synthesize_region(const model::PwaSystem& system,
                                             std::size_t mode,
                                             const numeric::Matrix& p,
                                             const numeric::Vector& r,
                                             const RegionOptions& options = {});

/// Radius eps_i of the reference-perturbation ball (paper §VI-C2): for any
/// r' with ||r' - r|| < eps_i, the old equilibrium w_eq(r) lies inside the
/// robust region W_i(r'), so the mode re-stabilizes without switching.
[[nodiscard]] double reference_robustness_epsilon(
    const model::PwaSystem& system, std::size_t mode, const numeric::Matrix& p,
    const numeric::Vector& r, const RobustRegion& region);

/// Volume of the full ellipsoid {(w-c)^T P (w-c) <= k} in R^d.
[[nodiscard]] double ellipsoid_volume(const numeric::Matrix& p, double k);

/// Largest ball radius alpha around w_eq certified inside W_i: perturbing
/// the *state* by less than alpha keeps the trajectory converging to w_eq
/// without a mode switch (the paper's "robustness of the stable states to
/// perturbation [of the state]").  Infinity in the flow-constant case.
[[nodiscard]] double state_robustness_radius(const model::PwaSystem& system,
                                             std::size_t mode,
                                             const numeric::Matrix& p,
                                             const numeric::Vector& r,
                                             const RobustRegion& region);

}  // namespace spiv::robust
