// spiv-client: benchmark/driver client for a networked spiv-serve.
//
//   ./spiv-client --unix /tmp/spiv.sock --connections 8 --requests 64
//       --request 'cases/paper.spivcase 0 eq-num - sylvester {i}' --json
//
// Opens N concurrent connections (one thread each), sends M requests per
// connection, and reports throughput plus p50/p90/p99 latency.  `{i}` in
// the request tail is replaced by a globally unique request index, so a
// sweep can choose between one hot cache key (no placeholder) and all-cold
// keys (placeholder in the digits position).  --batch B pipelines the
// requests in batch-verify rounds of B; latency is then per round.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "net/client.hpp"
#include "net/socket.hpp"

namespace {

struct Options {
  std::string unix_path;
  std::string tcp;  // HOST:PORT or PORT
  std::string request_tail;
  std::size_t connections = 1;
  std::size_t requests = 16;
  std::size_t batch = 0;  // 0 = one verify per round trip
  double deadline = 0.0;
  bool warm = false;
  bool stats = false;
  bool json = false;
};

struct WorkerResult {
  std::vector<double> latencies;  // seconds per round trip
  std::size_t ok = 0;             // status=valid|invalid
  std::size_t failed = 0;         // timeout|synth-failed|error + error lines
  std::size_t shed = 0;           // busy lines
  bool transport_error = false;
};

void print_usage(std::FILE* to, const char* prog) {
  std::fprintf(
      to,
      "usage: %s (--unix PATH | --tcp [HOST:]PORT) --request 'TAIL' "
      "[options]\n"
      "  TAIL is everything after `verify`, e.g. "
      "'case.spivcase 0 eq-num - sylvester 10 5'; '{i}' in TAIL is\n"
      "  replaced by a unique per-request index (distinct cache keys)\n"
      "  --connections N   concurrent connections (default 1)\n"
      "  --requests N      requests per connection (default 16)\n"
      "  --batch B         pipeline with batch-verify rounds of B\n"
      "  --deadline S      send a per-connection deadline cap first\n"
      "  --warm            one untimed warm-up request before measuring\n"
      "  --stats           print the server stats line when done\n"
      "  --json            JSON summary on stdout\n",
      prog);
}

std::string substitute_index(const std::string& tail, std::size_t index) {
  std::string out = tail;
  const std::string token = "{i}";
  for (std::size_t pos = out.find(token); pos != std::string::npos;
       pos = out.find(token, pos))
    out.replace(pos, token.size(), std::to_string(index));
  return out;
}

bool connect(spiv::net::Client& client, const Options& opt,
             std::string& error) {
  if (!opt.unix_path.empty()) {
    if (client.connect_unix(opt.unix_path)) return true;
    error = client.error();
    return false;
  }
  const auto addr = spiv::net::parse_tcp_address(opt.tcp);
  if (!addr) {
    error = "malformed --tcp address '" + opt.tcp + "'";
    return false;
  }
  if (client.connect_tcp(addr->host, addr->port)) return true;
  error = client.error();
  return false;
}

/// Classify one response line into the worker tallies; true when the line
/// terminates a request (result/busy) as opposed to an ack (queued).
bool classify(const std::string& line, WorkerResult& r) {
  if (line.rfind("busy", 0) == 0) {
    ++r.shed;
    return true;
  }
  if (line.rfind("result", 0) == 0) {
    if (line.find(" status=valid") != std::string::npos ||
        line.find(" status=invalid") != std::string::npos)
      ++r.ok;
    else
      ++r.failed;
    return true;
  }
  if (line.rfind("error", 0) == 0) {
    ++r.failed;
    return true;
  }
  return false;  // queued / ok / idle / stats — keep reading
}

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

WorkerResult run_worker(const Options& opt, std::size_t worker_index) {
  WorkerResult r;
  spiv::net::Client client;
  std::string error;
  if (!connect(client, opt, error)) {
    std::fprintf(stderr, "spiv-client: connection %zu: %s\n", worker_index,
                 error.c_str());
    r.transport_error = true;
    return r;
  }
  // A connection-level shed arrives before any request: the server said
  // `busy connections=N` and closed.
  if (opt.deadline > 0.0) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "deadline %g", opt.deadline);
    if (!client.send_line(buf)) {
      r.transport_error = true;
      return r;
    }
    const auto ack = client.recv_line();
    if (!ack || ack->rfind("ok deadline=", 0) != 0) {
      if (ack && ack->rfind("busy", 0) == 0) ++r.shed;
      else r.transport_error = true;
      return r;
    }
  }
  const std::size_t base = worker_index * opt.requests;
  auto send_verify = [&](std::size_t index) {
    return client.send_line("verify " +
                            substitute_index(opt.request_tail, base + index));
  };
  if (opt.warm) {
    if (!send_verify(0)) {
      r.transport_error = true;
      return r;
    }
    WorkerResult scratch;
    for (;;) {
      const auto line = client.recv_line();
      if (!line) {
        if (!scratch.shed) r.transport_error = true;
        r.shed += scratch.shed;
        return r;
      }
      if (classify(*line, scratch)) break;
    }
  }
  if (opt.batch == 0) {
    for (std::size_t i = 0; i < opt.requests; ++i) {
      const double t0 = now_seconds();
      if (!send_verify(i)) {
        r.transport_error = true;
        return r;
      }
      for (;;) {
        const auto line = client.recv_line();
        if (!line) {
          r.transport_error = true;
          return r;
        }
        if (classify(*line, r)) {
          r.latencies.push_back(now_seconds() - t0);
          break;
        }
      }
    }
  } else {
    for (std::size_t sent = 0; sent < opt.requests;) {
      const std::size_t round = std::min(opt.batch, opt.requests - sent);
      const double t0 = now_seconds();
      if (!client.send_line("batch-verify " + std::to_string(round))) {
        r.transport_error = true;
        return r;
      }
      for (std::size_t i = 0; i < round; ++i) {
        if (!client.send_line(
                substitute_index(opt.request_tail, base + sent + i))) {
          r.transport_error = true;
          return r;
        }
      }
      for (;;) {
        const auto line = client.recv_line();
        if (!line) {
          r.transport_error = true;
          return r;
        }
        (void)classify(*line, r);
        if (line->rfind("batch-done", 0) == 0) break;
      }
      r.latencies.push_back(now_seconds() - t0);
      sent += round;
    }
  }
  if (opt.stats && worker_index == 0) {
    if (client.send_line("stats")) {
      if (const auto line = client.recv_line())
        std::fprintf(stderr, "%s\n", line->c_str());
    }
  }
  // Plain close, NOT `quit`: quit drains the whole server, which would
  // yank it out from under the other benchmark connections.
  client.close();
  return r;
}

double percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const double rank = p * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  auto need_value = [&](int& i) -> const char* {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "%s requires a value\n", argv[i]);
      print_usage(stderr, argv[0]);
      std::exit(2);
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--help") || !std::strcmp(argv[i], "-h")) {
      print_usage(stdout, argv[0]);
      return 0;
    } else if (!std::strcmp(argv[i], "--unix")) {
      opt.unix_path = need_value(i);
    } else if (!std::strcmp(argv[i], "--tcp")) {
      opt.tcp = need_value(i);
    } else if (!std::strcmp(argv[i], "--request")) {
      opt.request_tail = need_value(i);
    } else if (!std::strcmp(argv[i], "--connections")) {
      opt.connections = std::strtoul(need_value(i), nullptr, 10);
    } else if (!std::strcmp(argv[i], "--requests")) {
      opt.requests = std::strtoul(need_value(i), nullptr, 10);
    } else if (!std::strcmp(argv[i], "--batch")) {
      opt.batch = std::strtoul(need_value(i), nullptr, 10);
    } else if (!std::strcmp(argv[i], "--deadline")) {
      opt.deadline = std::strtod(need_value(i), nullptr);
    } else if (!std::strcmp(argv[i], "--warm")) {
      opt.warm = true;
    } else if (!std::strcmp(argv[i], "--stats")) {
      opt.stats = true;
    } else if (!std::strcmp(argv[i], "--json")) {
      opt.json = true;
    } else {
      std::fprintf(stderr, "unknown argument '%s'\n", argv[i]);
      print_usage(stderr, argv[0]);
      return 2;
    }
  }
  if ((opt.unix_path.empty() == opt.tcp.empty()) ||
      opt.request_tail.empty() || opt.connections == 0 || opt.requests == 0) {
    print_usage(stderr, argv[0]);
    return 2;
  }

  std::vector<WorkerResult> results(opt.connections);
  const double t0 = now_seconds();
  {
    std::vector<std::thread> threads;
    threads.reserve(opt.connections);
    for (std::size_t w = 0; w < opt.connections; ++w)
      threads.emplace_back(
          [&results, &opt, w] { results[w] = run_worker(opt, w); });
    for (std::thread& t : threads) t.join();
  }
  const double wall = now_seconds() - t0;

  std::vector<double> latencies;
  std::size_t ok = 0, failed = 0, shed = 0;
  bool transport_error = false;
  for (const WorkerResult& r : results) {
    latencies.insert(latencies.end(), r.latencies.begin(), r.latencies.end());
    ok += r.ok;
    failed += r.failed;
    shed += r.shed;
    transport_error = transport_error || r.transport_error;
  }
  std::sort(latencies.begin(), latencies.end());
  const std::size_t answered = ok + failed + shed;
  const double rps = wall > 0.0 ? static_cast<double>(answered) / wall : 0.0;
  const double p50 = percentile(latencies, 0.50);
  const double p90 = percentile(latencies, 0.90);
  const double p99 = percentile(latencies, 0.99);

  if (opt.json) {
    std::printf(
        "{\"connections\":%zu,\"requests_per_connection\":%zu,"
        "\"batch\":%zu,\"answered\":%zu,\"ok\":%zu,\"failed\":%zu,"
        "\"shed\":%zu,\"wall_seconds\":%.6f,\"throughput_rps\":%.3f,"
        "\"latency_seconds\":{\"p50\":%.6f,\"p90\":%.6f,\"p99\":%.6f},"
        "\"transport_error\":%s}\n",
        opt.connections, opt.requests, opt.batch, answered, ok, failed, shed,
        wall, rps, p50, p90, p99, transport_error ? "true" : "false");
  } else {
    std::printf(
        "answered=%zu ok=%zu failed=%zu shed=%zu wall=%.3fs rps=%.1f "
        "p50=%.6fs p90=%.6fs p99=%.6fs\n",
        answered, ok, failed, shed, wall, rps, p50, p90, p99);
  }
  return transport_error ? 1 : 0;
}
