// spiv::net socket primitives — the only layer that speaks POSIX sockets.
//
// Thin RAII + helper surface shared by the server event loop, the blocking
// client, and the tests: an owning file descriptor, listener/connector
// factories for the two supported address families (unix-domain and TCP),
// and the address-string parsing the CLI flags use.  Everything above this
// header deals in whole protocol lines, not fds.
#pragma once

#include <optional>
#include <string>

namespace spiv::net {

/// Owning file descriptor (move-only; -1 = empty).  Closes on destruction.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() { reset(); }

  Fd(Fd&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Fd& operator=(Fd&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;

  [[nodiscard]] int get() const { return fd_; }
  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  void reset();
  /// Release ownership without closing.
  [[nodiscard]] int release() {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }

 private:
  int fd_ = -1;
};

/// "HOST:PORT" or bare "PORT" (host defaults to 127.0.0.1).  Port 0 asks
/// the kernel for an ephemeral port (query it back with local_tcp_port).
struct TcpAddress {
  std::string host = "127.0.0.1";
  int port = 0;
};

/// Parse a --listen-tcp / --tcp argument; nullopt on malformed input
/// (non-numeric port, port outside [0, 65535], empty host).
[[nodiscard]] std::optional<TcpAddress> parse_tcp_address(
    const std::string& text);

// Listener/connector factories.  On failure they return an empty Fd and
// describe the errno in `error`.  Listeners are created nonblocking and
// close-on-exec; connectors are blocking (the client is synchronous).
[[nodiscard]] Fd listen_unix(const std::string& path, int backlog,
                             std::string& error);
[[nodiscard]] Fd listen_tcp(const std::string& host, int port, int backlog,
                            std::string& error);
[[nodiscard]] Fd connect_unix(const std::string& path, std::string& error);
[[nodiscard]] Fd connect_tcp(const std::string& host, int port,
                             std::string& error);

/// The port a TCP listener actually bound (resolves port 0); -1 on error.
[[nodiscard]] int local_tcp_port(int fd);

/// O_NONBLOCK on an accepted connection fd; false on fcntl failure.
bool set_nonblocking(int fd);

}  // namespace spiv::net
