#include "net/client.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstring>

namespace spiv::net {

bool Client::connect_unix(const std::string& path) {
  std::signal(SIGPIPE, SIG_IGN);
  fd_ = spiv::net::connect_unix(path, error_);
  return fd_.valid();
}

bool Client::connect_tcp(const std::string& host, int port) {
  std::signal(SIGPIPE, SIG_IGN);
  fd_ = spiv::net::connect_tcp(host, port, error_);
  return fd_.valid();
}

bool Client::send_line(const std::string& line) {
  return send_raw(line + '\n');
}

bool Client::send_raw(const std::string& out) {
  if (!fd_.valid()) return false;
  std::size_t written = 0;
  while (written < out.size()) {
    const ssize_t n =
        ::write(fd_.get(), out.data() + written, out.size() - written);
    if (n > 0) {
      written += static_cast<std::size_t>(n);
      continue;
    }
    if (errno == EINTR) continue;
    error_ = std::string{"write: "} + std::strerror(errno);
    return false;
  }
  return true;
}

std::optional<std::string> Client::recv_line() {
  for (;;) {
    const std::size_t nl = inbuf_.find('\n');
    if (nl != std::string::npos) {
      std::string line = inbuf_.substr(0, nl);
      inbuf_.erase(0, nl + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return line;
    }
    if (eof_) {
      if (inbuf_.empty()) return std::nullopt;
      std::string line = std::move(inbuf_);
      inbuf_.clear();
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return line;
    }
    if (!fd_.valid()) return std::nullopt;
    char buf[4096];
    const ssize_t n = ::read(fd_.get(), buf, sizeof(buf));
    if (n > 0) {
      inbuf_.append(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0) {
      eof_ = true;
      continue;
    }
    if (errno == EINTR) continue;
    error_ = std::string{"read: "} + std::strerror(errno);
    return std::nullopt;
  }
}

void Client::shutdown_write() {
  if (fd_.valid()) ::shutdown(fd_.get(), SHUT_WR);
}

}  // namespace spiv::net
