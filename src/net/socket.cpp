#include "net/socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace spiv::net {

namespace {

std::string errno_message(const char* what) {
  return std::string{what} + ": " + std::strerror(errno);
}

Fd make_socket(int family, bool nonblocking, std::string& error) {
  int type = SOCK_STREAM | SOCK_CLOEXEC;
  if (nonblocking) type |= SOCK_NONBLOCK;
  Fd fd{::socket(family, type, 0)};
  if (!fd.valid()) error = errno_message("socket");
  return fd;
}

/// Fill a sockaddr_un; false when the path exceeds sun_path (107 bytes on
/// Linux) — a real limit users hit with deep tmpdirs, so spell it out.
bool fill_unix_addr(const std::string& path, sockaddr_un& addr,
                    std::string& error) {
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  if (path.empty() || path.size() >= sizeof(addr.sun_path)) {
    error = "unix socket path must be 1.." +
            std::to_string(sizeof(addr.sun_path) - 1) + " bytes: '" + path +
            "'";
    return false;
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return true;
}

/// Numeric-only resolution (inet_pton first, then getaddrinfo with
/// AI_NUMERICHOST off so "localhost" works without DNS surprises for
/// anything else the resolver knows locally).
bool fill_tcp_addr(const std::string& host, int port, sockaddr_in& addr,
                   std::string& error) {
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) == 1) return true;
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  const int rc = getaddrinfo(host.c_str(), nullptr, &hints, &res);
  if (rc != 0 || !res) {
    error = "cannot resolve host '" + host + "': " + gai_strerror(rc);
    if (res) freeaddrinfo(res);
    return false;
  }
  addr.sin_addr = reinterpret_cast<sockaddr_in*>(res->ai_addr)->sin_addr;
  freeaddrinfo(res);
  return true;
}

}  // namespace

void Fd::reset() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
}

std::optional<TcpAddress> parse_tcp_address(const std::string& text) {
  TcpAddress out;
  std::string port_text = text;
  const std::size_t colon = text.rfind(':');
  if (colon != std::string::npos) {
    if (colon == 0) return std::nullopt;
    out.host = text.substr(0, colon);
    port_text = text.substr(colon + 1);
  }
  if (port_text.empty()) return std::nullopt;
  for (const char c : port_text)
    if (c < '0' || c > '9') return std::nullopt;
  if (port_text.size() > 5) return std::nullopt;
  const long port = std::strtol(port_text.c_str(), nullptr, 10);
  if (port < 0 || port > 65535) return std::nullopt;
  out.port = static_cast<int>(port);
  return out;
}

Fd listen_unix(const std::string& path, int backlog, std::string& error) {
  sockaddr_un addr;
  if (!fill_unix_addr(path, addr, error)) return {};
  Fd fd = make_socket(AF_UNIX, /*nonblocking=*/true, error);
  if (!fd.valid()) return {};
  // A previous server instance leaves its socket file behind; binding over
  // it needs the unlink.  A *live* server also holds the file, but it holds
  // the listen queue too, so stealing its name is still the least-surprise
  // behavior for a restart-in-place workflow.
  ::unlink(path.c_str());
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    error = errno_message("bind") + " (" + path + ")";
    return {};
  }
  if (::listen(fd.get(), backlog) != 0) {
    error = errno_message("listen") + " (" + path + ")";
    return {};
  }
  return fd;
}

Fd listen_tcp(const std::string& host, int port, int backlog,
              std::string& error) {
  sockaddr_in addr;
  if (!fill_tcp_addr(host, port, addr, error)) return {};
  Fd fd = make_socket(AF_INET, /*nonblocking=*/true, error);
  if (!fd.valid()) return {};
  const int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    error = errno_message("bind") + " (" + host + ":" + std::to_string(port) +
            ")";
    return {};
  }
  if (::listen(fd.get(), backlog) != 0) {
    error = errno_message("listen");
    return {};
  }
  return fd;
}

Fd connect_unix(const std::string& path, std::string& error) {
  sockaddr_un addr;
  if (!fill_unix_addr(path, addr, error)) return {};
  Fd fd = make_socket(AF_UNIX, /*nonblocking=*/false, error);
  if (!fd.valid()) return {};
  if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    error = errno_message("connect") + " (" + path + ")";
    return {};
  }
  return fd;
}

Fd connect_tcp(const std::string& host, int port, std::string& error) {
  sockaddr_in addr;
  if (!fill_tcp_addr(host, port, addr, error)) return {};
  Fd fd = make_socket(AF_INET, /*nonblocking=*/false, error);
  if (!fd.valid()) return {};
  if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    error = errno_message("connect") + " (" + host + ":" +
            std::to_string(port) + ")";
    return {};
  }
  return fd;
}

int local_tcp_port(int fd) {
  sockaddr_in addr;
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0)
    return -1;
  return static_cast<int>(ntohs(addr.sin_port));
}

bool set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return false;
  return ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

}  // namespace spiv::net
