// spiv::net::Server — the socket transport for the spiv-serve protocol.
//
// One poll(2) event loop multiplexes every connection (unix-domain and TCP)
// onto the shared service::Engine: the loop thread parses input lines and
// feeds them to each connection's service::Session; completions arrive
// out of order from pool workers into a per-connection Outbox, wake the
// loop through a self-pipe, and are flushed in arrival order per
// connection.  The protocol itself — batching, admission control, per
// session deadlines — lives entirely in src/service; this layer only moves
// bytes and owns connection lifecycle:
//
//   * accept until `max_connections`, then answer one `busy connections=N`
//     line and close (connection-level shedding, counted in
//     spiv_net_shed_connections_total — distinct from request-level `busy`
//     sheds, which keep the connection).
//   * `wait` pauses reading ONLY that connection until its requests drain;
//     other connections keep flowing.
//   * graceful drain (SIGTERM / SIGINT / any session's `quit` /
//     request_drain()): stop accepting, stop reading, finish every
//     in-flight request, flush every outbox byte, then run() returns.
//     No in-flight response is ever dropped.
//   * an input line longer than `max_line_bytes` is a protocol violation:
//     the connection gets one `error line too long ...` response and its
//     input side is closed (pending responses still flush).
//
// run() is single-threaded; Server is not reentrant.  request_drain() is
// async-signal-safe and may be called from any thread or signal handler.
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "net/socket.hpp"
#include "service/service.hpp"

namespace spiv::net {

struct ServerOptions {
  /// Unix-domain listener path; empty = no unix listener.
  std::string unix_path;
  /// TCP listener; port < 0 = no TCP listener, port 0 = kernel-chosen
  /// ephemeral port (read it back with Server::tcp_port()).
  std::string tcp_host = "127.0.0.1";
  int tcp_port = -1;
  /// The shared protocol engine configuration (pool size, store, admission
  /// bounds, negative-cache TTL, handler hook).
  service::ServeOptions service;
  /// Accepted connections beyond this are shed with `busy connections=N`.
  std::size_t max_connections = 256;
  /// Longest accepted input line (protocol robustness bound).
  std::size_t max_line_bytes = 1 << 16;
};

class Server {
 public:
  explicit Server(ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind the configured listeners.  Throws std::runtime_error with the
  /// socket-layer message on failure; at least one listener is required.
  void start();

  /// Port the TCP listener actually bound (after start()); -1 without one.
  [[nodiscard]] int tcp_port() const { return tcp_port_; }

  /// Run the event loop until a drain completes.  Returns the engine's
  /// error count (requests that ended status=error), like service::serve.
  int run();

  /// Begin graceful drain.  Async-signal-safe; idempotent.
  void request_drain() noexcept;

  /// Route SIGTERM and SIGINT to request_drain() of this server (process
  /// wide — at most one Server may install handlers at a time).
  void install_signal_handlers();

  [[nodiscard]] service::Engine& engine() { return *engine_; }

 private:
  struct Conn;

  void accept_ready(Fd& listener);
  void read_ready(Conn& conn);
  void process_buffer(Conn& conn);
  void flush_outbox(Conn& conn);
  void kill_protocol(Conn& conn, const std::string& error_line);
  [[nodiscard]] bool finished(const Conn& conn) const;
  void drain_wake_pipe();

  ServerOptions options_;
  std::unique_ptr<service::Engine> engine_;
  Fd unix_listener_;
  Fd tcp_listener_;
  int tcp_port_ = -1;
  Fd wake_read_;
  Fd wake_write_;
  std::atomic<bool> drain_requested_{false};
  bool draining_ = false;
  std::vector<std::unique_ptr<Conn>> conns_;

  obs::Counter& connections_total_;
  obs::Counter& shed_connections_total_;
  obs::Counter& protocol_errors_total_;
  obs::Counter& bytes_read_total_;
  obs::Counter& bytes_written_total_;
  obs::Gauge& open_connections_;
};

}  // namespace spiv::net
