#include "net/server.hpp"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstdint>
#include <cstring>
#include <mutex>
#include <stdexcept>
#include <utility>

namespace spiv::net {

namespace {

/// Poll backstop: the self-pipe is the real wake signal (response ready,
/// request settled, drain requested); the timeout only bounds how long a
/// missed edge could stall — it should never be load-bearing.
constexpr int kPollTimeoutMs = 500;

/// Thread-safe response queue for one connection.  Pool workers push
/// completed lines from any thread; only the event-loop thread takes.
/// push() wakes the loop through the server's self-pipe so a response is
/// flushed promptly even if the loop is parked in poll().
struct Outbox {
  explicit Outbox(int wake_fd) : wake_fd(wake_fd) {}

  void push(const std::string& line) {
    {
      std::lock_guard<std::mutex> lock(mutex);
      pending += line;
      pending += '\n';
    }
    wake();
  }

  void wake() const {
    const char byte = 'w';
    // Best effort: a full pipe already guarantees a pending wake-up.
    [[maybe_unused]] const ssize_t n = ::write(wake_fd, &byte, 1);
  }

  [[nodiscard]] std::string take() {
    std::lock_guard<std::mutex> lock(mutex);
    return std::exchange(pending, std::string{});
  }

  [[nodiscard]] bool empty() {
    std::lock_guard<std::mutex> lock(mutex);
    return pending.empty();
  }

  std::mutex mutex;
  std::string pending;  ///< concatenated "line\n" bytes, FIFO per connection
  const int wake_fd;
};

/// The one signal-handler hook: SIGTERM/SIGINT handlers may only touch
/// async-signal-safe state, so they go through an atomic Server pointer.
std::atomic<Server*> g_signal_server{nullptr};

extern "C" void spiv_net_drain_signal(int) {
  if (Server* server = g_signal_server.load(std::memory_order_acquire))
    server->request_drain();
}

}  // namespace

/// One accepted connection: the socket, its protocol Session, the input
/// accumulation buffer, and the (partially written) output tail.
struct Server::Conn {
  Fd fd;
  std::shared_ptr<Outbox> outbox;
  std::unique_ptr<service::Session> session;
  std::string inbuf;     ///< bytes read, not yet consumed as lines
  std::string writebuf;  ///< bytes taken from the outbox, not yet written
  bool input_closed = false;  ///< EOF / protocol kill / drain: stop reading
  bool waiting = false;       ///< `wait` armed: stop reading until idle
  bool dead = false;          ///< socket error: discard without flushing
};

Server::Server(ServerOptions options)
    : options_(std::move(options)),
      engine_(std::make_unique<service::Engine>(options_.service)),
      connections_total_(
          obs::Registry::global().counter("spiv_net_connections_total")),
      shed_connections_total_(
          obs::Registry::global().counter("spiv_net_shed_connections_total")),
      protocol_errors_total_(
          obs::Registry::global().counter("spiv_net_protocol_errors_total")),
      bytes_read_total_(
          obs::Registry::global().counter("spiv_net_bytes_read_total")),
      bytes_written_total_(
          obs::Registry::global().counter("spiv_net_bytes_written_total")),
      open_connections_(
          obs::Registry::global().gauge("spiv_net_open_connections")) {}

Server::~Server() {
  Server* expected = this;
  g_signal_server.compare_exchange_strong(expected, nullptr);
  // Join every in-flight job before the wake pipe closes: completion jobs
  // hold this server's wake fd through their outboxes.
  if (engine_) engine_->wait_idle();
}

void Server::start() {
  if (options_.unix_path.empty() && options_.tcp_port < 0)
    throw std::runtime_error(
        "net::Server: no listener configured (need a unix path or tcp port)");
  // A peer closing mid-write must surface as EPIPE, not kill the process.
  std::signal(SIGPIPE, SIG_IGN);
  int pipefd[2];
  if (::pipe2(pipefd, O_NONBLOCK | O_CLOEXEC) != 0)
    throw std::runtime_error(std::string{"net::Server: pipe2: "} +
                             std::strerror(errno));
  wake_read_ = Fd{pipefd[0]};
  wake_write_ = Fd{pipefd[1]};
  std::string error;
  if (!options_.unix_path.empty()) {
    unix_listener_ = listen_unix(options_.unix_path, /*backlog=*/128, error);
    if (!unix_listener_.valid())
      throw std::runtime_error("net::Server: " + error);
  }
  if (options_.tcp_port >= 0) {
    tcp_listener_ =
        listen_tcp(options_.tcp_host, options_.tcp_port, /*backlog=*/128,
                   error);
    if (!tcp_listener_.valid())
      throw std::runtime_error("net::Server: " + error);
    tcp_port_ = local_tcp_port(tcp_listener_.get());
  }
}

void Server::request_drain() noexcept {
  drain_requested_.store(true, std::memory_order_release);
  if (wake_write_.valid()) {
    const char byte = 'd';
    [[maybe_unused]] const ssize_t n = ::write(wake_write_.get(), &byte, 1);
  }
}

void Server::install_signal_handlers() {
  g_signal_server.store(this, std::memory_order_release);
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = spiv_net_drain_signal;
  sigemptyset(&sa.sa_mask);
  // No SA_RESTART: the signal must interrupt poll() so the drain flag is
  // seen promptly even if the wake pipe is somehow full.
  sa.sa_flags = 0;
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);
}

void Server::drain_wake_pipe() {
  char buf[256];
  while (::read(wake_read_.get(), buf, sizeof(buf)) > 0) {
  }
}

void Server::kill_protocol(Conn& conn, const std::string& error_line) {
  protocol_errors_total_.add();
  conn.outbox->push(error_line);
  conn.inbuf.clear();
  conn.input_closed = true;
  conn.session->finish_input();
}

void Server::accept_ready(Fd& listener) {
  for (;;) {
    const int cfd = ::accept4(listener.get(), nullptr, nullptr,
                              SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (cfd < 0) {
      if (errno == EINTR) continue;
      break;  // EAGAIN (queue drained) or a transient accept error
    }
    connections_total_.add();
    if (draining_ || conns_.size() >= options_.max_connections) {
      // Connection-level shed: one cheap line on a fresh socket (its send
      // buffer is empty, so the nonblocking write cannot meaningfully
      // fail) and close.  Never blocks the loop, never aborts the server.
      const std::string line =
          "busy connections=" + std::to_string(conns_.size()) + "\n";
      [[maybe_unused]] const ssize_t n =
          ::write(cfd, line.c_str(), line.size());
      ::close(cfd);
      shed_connections_total_.add();
      continue;
    }
    auto conn = std::make_unique<Conn>();
    conn->fd = Fd{cfd};
    conn->outbox = std::make_shared<Outbox>(wake_write_.get());
    // The sink wakes on push (response bytes ready); on_settled wakes
    // after the pending() decrement (teardown/`wait` edges) — both are
    // needed, see service.hpp.
    std::shared_ptr<Outbox> outbox = conn->outbox;
    conn->session = std::make_unique<service::Session>(
        *engine_,
        [outbox](const std::string& line) { outbox->push(line); },
        [outbox] { outbox->wake(); });
    open_connections_.add(1);
    conns_.push_back(std::move(conn));
  }
}

void Server::process_buffer(Conn& conn) {
  std::size_t start = 0;
  while (!conn.input_closed && !conn.waiting) {
    const std::size_t nl = conn.inbuf.find('\n', start);
    if (nl == std::string::npos) break;
    std::string line = conn.inbuf.substr(start, nl - start);
    start = nl + 1;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.size() > options_.max_line_bytes) {
      conn.inbuf.erase(0, start);
      kill_protocol(conn, "error line too long (limit " +
                              std::to_string(options_.max_line_bytes) +
                              " bytes)");
      return;
    }
    switch (conn.session->handle_line(line)) {
      case service::Flow::Continue:
        break;
      case service::Flow::Wait:
        conn.waiting = true;
        // pending() may already be 0 (all answered before `wait` parsed).
        if (conn.session->poll_wait()) conn.waiting = false;
        break;
      case service::Flow::Quit:
        conn.inbuf.clear();
        conn.input_closed = true;
        conn.session->finish_input();
        request_drain();
        return;
    }
  }
  if (start > 0) conn.inbuf.erase(0, start);
  // A newline-less prefix longer than the line bound can never become a
  // valid line: reject it now instead of buffering an unbounded flood.
  if (!conn.input_closed && conn.inbuf.size() > options_.max_line_bytes)
    kill_protocol(conn, "error line too long (limit " +
                            std::to_string(options_.max_line_bytes) +
                            " bytes)");
}

void Server::read_ready(Conn& conn) {
  char buf[4096];
  for (;;) {
    const ssize_t n = ::read(conn.fd.get(), buf, sizeof(buf));
    if (n > 0) {
      bytes_read_total_.add(static_cast<std::uint64_t>(n));
      conn.inbuf.append(buf, static_cast<std::size_t>(n));
      process_buffer(conn);
      if (conn.input_closed || conn.waiting) return;
      continue;
    }
    if (n == 0) {
      // EOF.  A trailing unterminated line still counts as input (getline
      // semantics on the stdin transport), then the session learns the
      // input ended so a half-read batch resolves.
      process_buffer(conn);
      if (!conn.input_closed && !conn.waiting && !conn.inbuf.empty()) {
        std::string line = std::exchange(conn.inbuf, std::string{});
        if (!line.empty() && line.back() == '\r') line.pop_back();
        (void)conn.session->handle_line(line);
      }
      conn.input_closed = true;
      conn.session->finish_input();
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    if (errno == EINTR) continue;
    conn.dead = true;
    return;
  }
}

void Server::flush_outbox(Conn& conn) {
  if (conn.dead) return;
  conn.writebuf += conn.outbox->take();
  std::size_t written = 0;
  while (written < conn.writebuf.size()) {
    const ssize_t n = ::write(conn.fd.get(), conn.writebuf.data() + written,
                              conn.writebuf.size() - written);
    if (n > 0) {
      bytes_written_total_.add(static_cast<std::uint64_t>(n));
      written += static_cast<std::size_t>(n);
      continue;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    // EPIPE / ECONNRESET: the peer is gone; nothing left to deliver.
    conn.dead = true;
    conn.writebuf.clear();
    return;
  }
  conn.writebuf.erase(0, written);
}

bool Server::finished(const Conn& conn) const {
  if (conn.dead) return true;
  return conn.input_closed && !conn.waiting && conn.session->pending() == 0 &&
         conn.writebuf.empty() && conn.outbox->empty();
}

int Server::run() {
  std::vector<pollfd> fds;
  std::vector<Conn*> owners;
  for (;;) {
    if (drain_requested_.load(std::memory_order_acquire) && !draining_) {
      draining_ = true;
      // Stop accepting (close the listeners so new connects fail fast) and
      // stop reading; everything already admitted still completes and
      // every buffered response still flushes — that is the whole point.
      unix_listener_.reset();
      tcp_listener_.reset();
      if (!options_.unix_path.empty()) ::unlink(options_.unix_path.c_str());
      for (auto& conn : conns_) {
        if (conn->input_closed) continue;
        conn->inbuf.clear();
        conn->input_closed = true;
        conn->session->finish_input();
      }
    }

    for (auto& conn : conns_) {
      if (conn->waiting && conn->session->poll_wait()) {
        conn->waiting = false;
        // Lines buffered behind the `wait` (pipelined clients) run now.
        if (!conn->input_closed) process_buffer(*conn);
      }
    }
    for (auto& conn : conns_) flush_outbox(*conn);
    for (std::size_t i = 0; i < conns_.size();) {
      if (finished(*conns_[i])) {
        // Safe even with handler jobs still running (a dead connection):
        // jobs reference only the shared outbox and counters, never the
        // Conn or its Session.
        open_connections_.sub(1);
        conns_.erase(conns_.begin() +
                     static_cast<std::ptrdiff_t>(i));
      } else {
        ++i;
      }
    }
    if (draining_ && conns_.empty()) break;

    fds.clear();
    owners.clear();
    fds.push_back(pollfd{wake_read_.get(), POLLIN, 0});
    owners.push_back(nullptr);
    if (!draining_) {
      for (Fd* listener : {&unix_listener_, &tcp_listener_}) {
        if (!listener->valid()) continue;
        fds.push_back(pollfd{listener->get(), POLLIN, 0});
        owners.push_back(nullptr);
      }
    }
    for (auto& conn : conns_) {
      short events = 0;
      if (!conn->input_closed && !conn->waiting) events |= POLLIN;
      if (!conn->writebuf.empty()) events |= POLLOUT;
      fds.push_back(pollfd{conn->fd.get(), events, 0});
      owners.push_back(conn.get());
    }

    const int ready = ::poll(fds.data(), fds.size(), kPollTimeoutMs);
    if (ready < 0) {
      if (errno == EINTR) continue;  // signal — loop re-checks the flag
      throw std::runtime_error(std::string{"net::Server: poll: "} +
                               std::strerror(errno));
    }

    for (std::size_t i = 0; i < fds.size(); ++i) {
      if (fds[i].revents == 0) continue;
      if (!owners[i]) {
        if (fds[i].fd == wake_read_.get()) {
          drain_wake_pipe();
        } else if (unix_listener_.valid() &&
                   fds[i].fd == unix_listener_.get()) {
          accept_ready(unix_listener_);
        } else if (tcp_listener_.valid() &&
                   fds[i].fd == tcp_listener_.get()) {
          accept_ready(tcp_listener_);
        }
        continue;
      }
      Conn& conn = *owners[i];
      if (fds[i].revents & (POLLERR | POLLNVAL)) {
        conn.dead = true;
        continue;
      }
      if ((fds[i].revents & POLLIN) && !conn.input_closed && !conn.waiting)
        read_ready(conn);
      if (fds[i].revents & POLLOUT) flush_outbox(conn);
      if (fds[i].revents & POLLHUP) {
        if (!conn.input_closed && !conn.waiting) {
          // Readable data rides along with the hang-up: read() drains it
          // and then reports the EOF.
          read_ready(conn);
        } else {
          // The peer closed BOTH directions (a half-close shows up as read
          // EOF, not POLLHUP), so nothing we produce is deliverable — and
          // POLLHUP re-reports every iteration, which would busy-spin the
          // loop for as long as this connection lingered.
          flush_outbox(conn);
          conn.dead = true;
        }
      }
    }
  }
  // All sessions report pending()==0, so this only waits for jobs whose
  // connections died early — their responses have nowhere to go anyway.
  engine_->wait_idle();
  return engine_->errors();
}

}  // namespace spiv::net
