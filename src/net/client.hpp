// spiv::net::Client — blocking line client for the spiv-serve protocol.
//
// The synchronous counterpart of the server's event loop: one connected
// socket, send whole lines, receive whole lines (buffered, '\r'-tolerant).
// Used by the spiv-client benchmark driver and the net tests; anything
// fancier (pipelining, concurrency) is built on top by running several
// clients, exactly like real callers would.
#pragma once

#include <optional>
#include <string>

#include "net/socket.hpp"

namespace spiv::net {

class Client {
 public:
  Client() = default;

  /// Connect; false (with `error()` set) on failure.
  bool connect_unix(const std::string& path);
  bool connect_tcp(const std::string& host, int port);

  [[nodiscard]] bool connected() const { return fd_.valid(); }
  [[nodiscard]] const std::string& error() const { return error_; }

  /// Send `line` + '\n' (handles short writes); false on a broken socket.
  bool send_line(const std::string& line);

  /// Send bytes verbatim, no terminator — for tests that need to split a
  /// protocol line across writes.
  bool send_raw(const std::string& bytes);

  /// Receive the next line (terminator stripped, trailing '\r' dropped).
  /// nullopt on EOF or error; a final unterminated line is delivered.
  std::optional<std::string> recv_line();

  /// Half-close: no more requests, but keep reading responses — the
  /// server-side drain path for well-behaved clients.
  void shutdown_write();

  void close() { fd_.reset(); }

 private:
  Fd fd_;
  std::string inbuf_;
  bool eof_ = false;
  std::string error_;
};

}  // namespace spiv::net
