// spiv::lyap — synthesis of candidate quadratic Lyapunov functions for a
// single operating mode (paper §III-E and §VI-B1).
//
// Six methods, exactly the paper's palette:
//   eq-smt — exact (symbolic) solution of A^T P + P A + I = 0 over the
//            rationals.  Complete but expensive; times out at the largest
//            sizes (reproducing Table I's "TO" rows).
//   eq-num — Bartels–Stewart (python-control style).
//   modal  — P = M^{-1 dagger} M^{-1} from a modal matrix of A (eq. (8)).
//   LMI    — SDP feasibility P > 0, A^T P + P A < 0 (eq. (9)).
//   LMIa   — adds the decay-rate term alpha*P (eq. (10)).
//   LMIa+  — additionally pins eigenvalues from below: P - nu*I > 0.
// The LMI methods accept one of the three sdp backends.
#pragma once

#include <optional>
#include <string>

#include "exact/matrix.hpp"
#include "exact/modular.hpp"
#include "exact/timeout.hpp"
#include "numeric/matrix.hpp"
#include "sdp/lmi.hpp"

namespace spiv::lyap {

enum class Method { EqSmt, EqNum, Modal, Lmi, LmiAlpha, LmiAlphaPlus };

[[nodiscard]] std::string to_string(Method m);
/// Inverse of to_string ("eq-smt", "LMIa+", ...); nullopt for unknown names.
[[nodiscard]] std::optional<Method> method_from_string(const std::string& name);
[[nodiscard]] bool is_lmi_method(Method m);

struct SynthesisOptions {
  sdp::Backend backend = sdp::Backend::NewtonAnalyticCenter;  ///< LMI methods
  double alpha = 0.1;  ///< LMIa decay rate (must satisfy alpha/2 < |abscissa|)
  double nu = 1e-3;    ///< LMIa+ eigenvalue floor
  double kappa = 1.0;  ///< normalization P < kappa I for the LMI methods
  Deadline deadline{};
  /// eq-smt only: pin the exact linear-algebra backend instead of the
  /// process-wide $SPIV_EXACT_SOLVER selection (verify::VerifyContext).
  std::optional<exact::ExactSolverStrategy> exact_solver{};
};

/// A synthesized candidate.  `p` always holds the double-precision matrix
/// handed to validation; eq-smt additionally keeps its exact solution.
struct Candidate {
  Method method = Method::EqNum;
  numeric::Matrix p;
  std::optional<exact::RatMatrix> exact_p;
  double synth_seconds = 0.0;
};

/// Synthesize a candidate Lyapunov function for wdot = A w.
/// Returns nullopt when the method fails (LMI infeasible, singular
/// spectrum, defective modal matrix).  Throws TimeoutError when the
/// deadline expires (the paper's "TO" entries).
[[nodiscard]] std::optional<Candidate> synthesize(
    const numeric::Matrix& a, Method method,
    const SynthesisOptions& options = {});

}  // namespace spiv::lyap
