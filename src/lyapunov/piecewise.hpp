// spiv::lyap — piecewise-quadratic Lyapunov synthesis for the switched
// system (paper §III-F and §VI-B2, after Johansson–Rantzer / Oehlerking).
//
// For the 2-mode PWA system with a single switching surface s(w) = 0 we
// search for augmented quadratic pieces V_i(w) = wbar^T Pbar_i wbar (wbar =
// (w - x*, 1), x* the nominal equilibrium) such that, via the S-procedure,
//   * V_i > 0 on region R_i,
//   * Vdot_i < 0 on region R_i,
//   * the switching-surface condition holds, in one of two encodings:
//       Equality — V_0 = V_1 on the surface (continuity), imposed with a
//                  small numerical slack delta (as any floating-point
//                  solver effectively does);
//       Relaxed  — V does not increase across the surface in either
//                  crossing direction, again with slack delta.
//
// The paper's finding — reproduced here — is that the LMI solver always
// returns a candidate, but *exact* validation of the surface condition
// always fails: the synthesized pieces satisfy it only up to the numerical
// slack, never exactly.
#pragma once

#include <optional>

#include "lyapunov/synthesis.hpp"
#include "model/switched_pi.hpp"

namespace spiv::lyap {

enum class SurfaceEncoding { Equality, Relaxed };

struct PiecewiseCandidate {
  numeric::Matrix p0_aug;  ///< (d+1) x (d+1), last row/col zero by
                           ///< construction (mode 0 centered at x*)
  numeric::Matrix p1_aug;  ///< (d+1) x (d+1) full augmented form
  double mu0 = 0.0, mu1 = 0.0;    ///< positivity S-procedure multipliers
  double eta0 = 0.0, eta1 = 0.0;  ///< decrease S-procedure multipliers
  double synth_seconds = 0.0;
};

struct PiecewiseOptions {
  sdp::Backend backend = sdp::Backend::NewtonAnalyticCenter;
  double slack = 1e-6;   ///< numerical slack delta on the surface condition
  double kappa = 10.0;   ///< normalization |entries of Pbar| scale
  Deadline deadline{};
};

/// Synthesize a piecewise-quadratic candidate for a 2-mode system whose
/// modes are separated by one switching surface.  Returns nullopt when the
/// LMI solver fails to produce a candidate.
[[nodiscard]] std::optional<PiecewiseCandidate> synthesize_piecewise(
    const model::PwaSystem& system, const numeric::Vector& r,
    SurfaceEncoding encoding, const PiecewiseOptions& options = {});

/// Exact validation verdicts for a piecewise candidate (candidates are
/// rounded to `digits` significant figures first, as in §VI-B1).
struct PiecewiseValidation {
  bool positivity0 = false;  ///< V_0 - mu_0 * region term  PSD
  bool positivity1 = false;
  bool decrease0 = false;    ///< -(A^T P + P A) - eta * region term  PSD
  bool decrease1 = false;
  /// The surface condition checked *exactly* (no slack): continuity
  /// (Equality) or two-sided non-increase (Relaxed) of V across s(w) = 0.
  bool surface = false;

  [[nodiscard]] bool all_valid() const {
    return positivity0 && positivity1 && decrease0 && decrease1 && surface;
  }
};

[[nodiscard]] PiecewiseValidation validate_piecewise(
    const model::PwaSystem& system, const numeric::Vector& r,
    const PiecewiseCandidate& candidate, SurfaceEncoding encoding,
    int digits = 10, const Deadline& deadline = {});

}  // namespace spiv::lyap
