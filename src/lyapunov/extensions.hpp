// spiv::lyap — extensions beyond the paper's §VI experiments, following
// its §VII future-work directions and the related-work palette (§II):
//
//  * common quadratic Lyapunov functions for the switched system
//    (Peleties–DeCarlo style [22]): one P certifying every mode's linear
//    dynamics simultaneously — stronger than the per-mode analysis, and a
//    complement to the failed piecewise-quadratic attempt of §VI-B2;
//  * exponential-stability certificates: the largest exactly-validated
//    decay rate alpha with Vdot <= -alpha V, and the settling-time bound
//    it implies (paper §III-E, eq. (6) and the remark below eq. (10));
//  * empirical region stability (Podelski–Wagner [23]): a sampling check
//    that all trajectories eventually enter and stay in a target ball.
#pragma once

#include <optional>

#include "lyapunov/synthesis.hpp"
#include "model/switched_pi.hpp"

namespace spiv::lyap {

/// Synthesize one P with P > 0 and A_i^T P + P A_i < 0 for every mode
/// matrix in `mode_matrices` (common quadratic Lyapunov function for the
/// switched *linear* dynamics).  Returns nullopt when the LMI is
/// infeasible within the budget.
[[nodiscard]] std::optional<Candidate> synthesize_common(
    const std::vector<numeric::Matrix>& mode_matrices,
    const SynthesisOptions& options = {});

/// Exactly validate a common candidate against every mode.
[[nodiscard]] bool validate_common(
    const std::vector<numeric::Matrix>& mode_matrices,
    const numeric::Matrix& p, int digits = 10, const Deadline& deadline = {});

/// The largest decay rate alpha (up to `tolerance`, via bisection) such
/// that A^T P + P A + alpha P <= 0 holds *exactly* for the rounded
/// candidate.  Returns 0 when even alpha = 0 fails.
struct ExponentialCertificate {
  double alpha = 0.0;          ///< exactly validated decay rate
  double settling_time = 0.0;  ///< time to shrink V by 1e6, = ln(1e6)/alpha
  bool valid = false;          ///< alpha > 0 was certified
};
[[nodiscard]] ExponentialCertificate exponential_certificate(
    const numeric::Matrix& a, const numeric::Matrix& p, int digits = 10,
    double tolerance = 1e-3, const Deadline& deadline = {});

/// Empirical region stability: simulate `samples` trajectories from the
/// box [-amplitude, amplitude]^d and check each ends (and stays, for the
/// trailing 20% of its horizon) within `radius` of the final mode's
/// equilibrium.  Returns the number of trajectories that satisfy this.
struct RegionStabilityReport {
  int samples = 0;
  int trapped = 0;
  std::size_t max_switches = 0;
  [[nodiscard]] bool all_trapped() const { return trapped == samples; }
};
[[nodiscard]] RegionStabilityReport check_region_stability(
    const model::PwaSystem& system, const numeric::Vector& r, double amplitude,
    double radius, int samples = 16, double t_end = 300.0, unsigned seed = 7);

}  // namespace spiv::lyap
