#include "lyapunov/piecewise.hpp"

#include <chrono>
#include <stdexcept>

#include "sdp/lyapunov_lmi.hpp"
#include "smt/charpoly.hpp"
#include "smt/validate.hpp"

namespace spiv::lyap {

using numeric::Matrix;
using numeric::Vector;

namespace {

/// Geometry of the 2-mode problem in coordinates shifted to the nominal
/// (mode-0) equilibrium x*.
struct Setup {
  std::size_t d;     ///< state dimension
  Matrix a0;         ///< mode-0 flow (drift vanishes at x*)
  Matrix a1_aug;     ///< (d+1)x(d+1) augmented mode-1 flow [[A1, d1],[0,0]]
  Vector s_bar;      ///< (d+1): surface functional s(v) = s_bar . (v,1),
                     ///< positive on R_0
  Matrix s0_matrix;  ///< sym(s_bar e^T): quadratic region term
};

Setup make_setup(const model::PwaSystem& system, const Vector& r) {
  if (system.num_modes() != 2)
    throw std::invalid_argument("piecewise: exactly 2 modes supported");
  if (system.mode(0).region.size() != 1)
    throw std::invalid_argument("piecewise: single-surface systems only");
  Setup s;
  s.d = system.dim();
  const Vector x_star = system.mode(0).equilibrium(r);
  s.a0 = system.mode(0).a;

  const model::PwaMode& m1 = system.mode(1);
  Vector d1 = m1.a.apply(x_star);
  const Vector drift = m1.drift(r);
  for (std::size_t i = 0; i < d1.size(); ++i) d1[i] += drift[i];
  s.a1_aug = Matrix{s.d + 1, s.d + 1};
  s.a1_aug.set_block(0, 0, m1.a);
  for (std::size_t i = 0; i < s.d; ++i) s.a1_aug(i, s.d) = d1[i];

  const model::HalfSpace& hs = system.mode(0).region[0];
  s.s_bar = Vector(s.d + 1, 0.0);
  for (std::size_t i = 0; i < s.d; ++i) s.s_bar[i] = hs.g[i];
  s.s_bar[s.d] = hs.h + numeric::dot(hs.g, x_star);

  s.s0_matrix = Matrix{s.d + 1, s.d + 1};
  for (std::size_t i = 0; i <= s.d; ++i) {
    s.s0_matrix(i, s.d) += s.s_bar[i];
    s.s0_matrix(s.d, i) += s.s_bar[i];
  }
  return s;
}

/// Variable layout: vech(P0) (d x d) | vech(P1aug) ((d+1) x (d+1)) |
/// mu1 | eta1 | qa (d+1) | qb (d+1, Relaxed only).
struct VarMap {
  std::size_t d, dd;
  std::size_t p0_offset = 0;
  std::size_t p0_count, p1_count;
  std::size_t p1_offset, mu1, eta1, qa_offset, qb_offset, total;

  VarMap(std::size_t dim, bool relaxed) : d(dim), dd(dim + 1) {
    p0_count = d * (d + 1) / 2;
    p1_count = dd * (dd + 1) / 2;
    p1_offset = p0_count;
    mu1 = p1_offset + p1_count;
    eta1 = mu1 + 1;
    qa_offset = eta1 + 1;
    qb_offset = qa_offset + dd;
    total = relaxed ? qb_offset + dd : qb_offset;
  }
};

/// Coefficient of variable k in the d x d block P0, embedded into an
/// n x n frame at offset 0 (n = d or d+1).
Matrix embedded_basis(std::size_t k, std::size_t block_dim,
                      std::size_t frame_dim) {
  Matrix e = sdp::vech_basis_matrix(k, block_dim);
  if (block_dim == frame_dim) return e;
  Matrix out{frame_dim, frame_dim};
  out.set_block(0, 0, e);
  return out;
}

}  // namespace

std::optional<PiecewiseCandidate> synthesize_piecewise(
    const model::PwaSystem& system, const Vector& r, SurfaceEncoding encoding,
    const PiecewiseOptions& options) {
  const auto start = std::chrono::steady_clock::now();
  const Setup setup = make_setup(system, r);
  const std::size_t d = setup.d;
  const std::size_t dd = d + 1;
  const bool relaxed = encoding == SurfaceEncoding::Relaxed;
  const VarMap vars{d, relaxed};

  sdp::LmiProblem problem;
  problem.num_vars = vars.total;
  auto zero_coeffs = [&vars](std::size_t dim) {
    return std::vector<Matrix>(vars.total, Matrix{dim, dim});
  };

  // (1) pos0: P0 > 0  (mode 0 is centered at the equilibrium, so the
  // augmented row/column of Pbar_0 is identically zero and positivity
  // reduces to the d x d block).
  {
    auto coeffs = zero_coeffs(d);
    for (std::size_t k = 0; k < vars.p0_count; ++k)
      coeffs[vars.p0_offset + k] = embedded_basis(k, d, d);
    problem.constraints.emplace_back(Matrix{d, d}, std::move(coeffs));
  }
  // (2) normalization kappa I - P0 > 0.
  {
    auto coeffs = zero_coeffs(d);
    for (std::size_t k = 0; k < vars.p0_count; ++k)
      coeffs[vars.p0_offset + k] = -embedded_basis(k, d, d);
    Matrix f0 = Matrix::identity(d) * options.kappa;
    problem.constraints.emplace_back(std::move(f0), std::move(coeffs));
  }
  // (3) pos1: P1aug + mu1 * S0 > 0 on R1 via the S-procedure.
  {
    auto coeffs = zero_coeffs(dd);
    for (std::size_t k = 0; k < vars.p1_count; ++k)
      coeffs[vars.p1_offset + k] = embedded_basis(k, dd, dd);
    coeffs[vars.mu1] = setup.s0_matrix;
    problem.constraints.emplace_back(Matrix{dd, dd}, std::move(coeffs));
  }
  // (4) normalization kappa I - P1aug > 0.
  {
    auto coeffs = zero_coeffs(dd);
    for (std::size_t k = 0; k < vars.p1_count; ++k)
      coeffs[vars.p1_offset + k] = -embedded_basis(k, dd, dd);
    Matrix f0 = Matrix::identity(dd) * options.kappa;
    problem.constraints.emplace_back(std::move(f0), std::move(coeffs));
  }
  // (5) dec0: -(A0^T P0 + P0 A0) > 0.
  {
    auto coeffs = zero_coeffs(d);
    const Matrix a0t = setup.a0.transposed();
    for (std::size_t k = 0; k < vars.p0_count; ++k) {
      Matrix e = embedded_basis(k, d, d);
      coeffs[vars.p0_offset + k] = -(a0t * e) - e * setup.a0;
    }
    problem.constraints.emplace_back(Matrix{d, d}, std::move(coeffs));
  }
  // (6) dec1: -(A1aug^T P1 + P1 A1aug) + eta1 * S0 > 0 on R1.
  {
    auto coeffs = zero_coeffs(dd);
    const Matrix a1t = setup.a1_aug.transposed();
    for (std::size_t k = 0; k < vars.p1_count; ++k) {
      Matrix e = embedded_basis(k, dd, dd);
      coeffs[vars.p1_offset + k] = -(a1t * e) - e * setup.a1_aug;
    }
    coeffs[vars.eta1] = setup.s0_matrix;
    problem.constraints.emplace_back(Matrix{dd, dd}, std::move(coeffs));
  }
  // (7) multipliers nonnegative (1x1 blocks).
  for (std::size_t var : {vars.mu1, vars.eta1}) {
    auto coeffs = zero_coeffs(1);
    coeffs[var] = Matrix{{1.0}};
    problem.constraints.emplace_back(Matrix{1, 1}, std::move(coeffs));
  }
  // (8) surface condition with numerical slack delta:
  //     E := P0ext - P1aug - sym(qa s^T);
  //     Equality:  delta I - E > 0 and delta I + E > 0;
  //     Relaxed :  delta I - (P1 - P0 - sym(qa s^T)) > 0  (crossing 0->1)
  //                delta I - (P0 - P1 - sym(qb s^T)) > 0  (crossing 1->0).
  auto add_surface_block = [&](double sign_p, std::size_t q_offset) {
    // delta I + sign_p * (P0ext - P1aug) + sym(q s^T) > 0.
    auto coeffs = zero_coeffs(dd);
    for (std::size_t k = 0; k < vars.p0_count; ++k)
      coeffs[vars.p0_offset + k] = sign_p * embedded_basis(k, d, dd);
    for (std::size_t k = 0; k < vars.p1_count; ++k)
      coeffs[vars.p1_offset + k] = -sign_p * embedded_basis(k, dd, dd);
    for (std::size_t i = 0; i < dd; ++i) {
      Matrix m{dd, dd};
      for (std::size_t j = 0; j < dd; ++j) {
        m(i, j) += setup.s_bar[j];
        m(j, i) += setup.s_bar[j];
      }
      coeffs[q_offset + i] = std::move(m);
    }
    Matrix f0 = Matrix::identity(dd) * options.slack;
    problem.constraints.emplace_back(std::move(f0), std::move(coeffs));
  };
  if (relaxed) {
    add_surface_block(+1.0, vars.qa_offset);  // P1 - P0 <= sym(qa s^T) + dI
    add_surface_block(-1.0, vars.qb_offset);  // P0 - P1 <= sym(qb s^T) + dI
  } else {
    add_surface_block(+1.0, vars.qa_offset);
    add_surface_block(-1.0, vars.qa_offset);
  }

  sdp::LmiOptions lmi_options;
  lmi_options.deadline = options.deadline;
  lmi_options.target_margin = options.slack * 1e-3;
  auto sol = sdp::solve_lmi(problem, options.backend, lmi_options);
  if (!sol.feasible) return std::nullopt;

  PiecewiseCandidate c;
  c.p0_aug = Matrix{dd, dd};
  c.p0_aug.set_block(0, 0,
                     sdp::unvech_double(
                         Vector(sol.p.begin() + static_cast<std::ptrdiff_t>(
                                                    vars.p0_offset),
                                sol.p.begin() + static_cast<std::ptrdiff_t>(
                                                    vars.p0_offset +
                                                    vars.p0_count)),
                         d));
  c.p1_aug = sdp::unvech_double(
      Vector(sol.p.begin() + static_cast<std::ptrdiff_t>(vars.p1_offset),
             sol.p.begin() +
                 static_cast<std::ptrdiff_t>(vars.p1_offset + vars.p1_count)),
      dd);
  c.mu1 = sol.p[vars.mu1];
  c.eta1 = sol.p[vars.eta1];
  c.synth_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return c;
}

PiecewiseValidation validate_piecewise(const model::PwaSystem& system,
                                       const Vector& r,
                                       const PiecewiseCandidate& candidate,
                                       SurfaceEncoding encoding, int digits,
                                       const Deadline& deadline) {
  const Setup setup = make_setup(system, r);
  const std::size_t d = setup.d;
  const std::size_t dd = d + 1;

  using exact::RatMatrix;
  using exact::Rational;
  auto rat = [digits](const Matrix& m) {
    return smt::rationalize(m, digits).symmetrized();
  };
  const RatMatrix p0 = rat(candidate.p0_aug.block(0, 0, d, d));
  const RatMatrix p1 = rat(candidate.p1_aug);
  const RatMatrix a0 =
      exact::rat_matrix_from_doubles(setup.a0.data().data(), d, d, 0);
  const RatMatrix a1 = exact::rat_matrix_from_doubles(
      setup.a1_aug.data().data(), dd, dd, 0);
  std::vector<Rational> s_bar(dd);
  for (std::size_t i = 0; i < dd; ++i)
    s_bar[i] = Rational::from_double_exact(setup.s_bar[i]);
  RatMatrix s0{dd, dd};
  for (std::size_t i = 0; i < dd; ++i) {
    s0(i, dd - 1) += s_bar[i];
    s0(dd - 1, i) += s_bar[i];
  }
  const Rational mu1 = Rational::from_double_rounded(
      std::max(candidate.mu1, 0.0), std::max(digits, 1));
  const Rational eta1 = Rational::from_double_rounded(
      std::max(candidate.eta1, 0.0), std::max(digits, 1));

  smt::CheckOptions opts;
  opts.deadline = deadline;
  PiecewiseValidation out;
  // Positivity and decrease, checked exactly through the charpoly engine
  // (weak PSD conditions for the augmented blocks, strict for mode 0).
  out.positivity0 =
      smt::check_positive_definite(p0, smt::Engine::Sylvester, opts).outcome ==
      smt::Outcome::Valid;
  out.decrease0 = smt::check_positive_definite(
                      -(a0.transposed() * p0 + p0 * a0).symmetrized(),
                      smt::Engine::Sylvester, opts)
                      .outcome == smt::Outcome::Valid;
  {
    RatMatrix pos1 = p1 + s0 * mu1;
    out.positivity1 = smt::all_roots_nonnegative(
        smt::characteristic_polynomial_faddeev(pos1, deadline));
    RatMatrix dec1 =
        -(a1.transposed() * p1 + p1 * a1).symmetrized() + s0 * eta1;
    out.decrease1 = smt::all_roots_nonnegative(
        smt::characteristic_polynomial_faddeev(dec1, deadline));
  }
  // Surface condition, checked EXACTLY (no slack): on the hyperplane
  // {v : s_bar . (v,1) = 0} the difference V0 - V1 must vanish (Equality)
  // or be sign-constrained in both crossing directions (Relaxed) — either
  // way, U^T (P0ext - P1) U must be the zero matrix for an exact basis U
  // of the orthogonal complement of s_bar.
  {
    RatMatrix p0_ext{dd, dd};
    for (std::size_t i = 0; i < d; ++i)
      for (std::size_t j = 0; j < d; ++j) p0_ext(i, j) = p0(i, j);
    RatMatrix diff = p0_ext - p1;
    // Exact basis of s_bar^perp: for a pivot coordinate pi with
    // s_bar[pi] != 0, vectors e_i - (s_i/s_pi) e_pi for i != pi.
    std::size_t pivot = dd;
    for (std::size_t i = 0; i < dd; ++i)
      if (!s_bar[i].is_zero()) {
        pivot = i;
        break;
      }
    if (pivot == dd)
      throw std::invalid_argument("validate_piecewise: zero surface normal");
    RatMatrix u{dd, dd - 1};
    std::size_t col = 0;
    for (std::size_t i = 0; i < dd; ++i) {
      if (i == pivot) continue;
      u(i, col) = Rational{1};
      u(pivot, col) = -(s_bar[i] / s_bar[pivot]);
      ++col;
    }
    RatMatrix restricted = u.transposed() * diff * u;
    bool zero = true;
    for (std::size_t i = 0; i < dd - 1 && zero; ++i)
      for (std::size_t j = 0; j < dd - 1 && zero; ++j)
        if (!restricted(i, j).is_zero()) zero = false;
    if (encoding == SurfaceEncoding::Equality) {
      out.surface = zero;
    } else {
      // Relaxed: both U^T diff U >= 0 and <= 0 must hold exactly.
      out.surface =
          zero ||
          (smt::all_roots_nonnegative(
               smt::characteristic_polynomial_faddeev(restricted, deadline)) &&
           smt::all_roots_nonnegative(smt::characteristic_polynomial_faddeev(
               -restricted, deadline)));
    }
  }
  return out;
}

}  // namespace spiv::lyap
