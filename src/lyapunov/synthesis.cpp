#include "lyapunov/synthesis.hpp"

#include <chrono>
#include <stdexcept>

#include "exact/lyapunov_exact.hpp"
#include "numeric/eigen.hpp"
#include "numeric/lyapunov.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "sdp/lyapunov_lmi.hpp"

namespace spiv::lyap {

using numeric::Matrix;

std::string to_string(Method m) {
  switch (m) {
    case Method::EqSmt: return "eq-smt";
    case Method::EqNum: return "eq-num";
    case Method::Modal: return "modal";
    case Method::Lmi: return "LMI";
    case Method::LmiAlpha: return "LMIa";
    case Method::LmiAlphaPlus: return "LMIa+";
  }
  return "?";
}

std::optional<Method> method_from_string(const std::string& name) {
  for (Method m : {Method::EqSmt, Method::EqNum, Method::Modal, Method::Lmi,
                   Method::LmiAlpha, Method::LmiAlphaPlus})
    if (to_string(m) == name) return m;
  return std::nullopt;
}

bool is_lmi_method(Method m) {
  return m == Method::Lmi || m == Method::LmiAlpha ||
         m == Method::LmiAlphaPlus;
}

namespace {

std::optional<Candidate> synthesize_eq_smt(const Matrix& a,
                                           const SynthesisOptions& options) {
  const exact::RatMatrix a_exact = exact::rat_matrix_from_doubles(
      a.data().data(), a.rows(), a.cols(), /*digits=*/0);
  auto p_exact = exact::solve_lyapunov_exact(
      a_exact, exact::RatMatrix::identity(a.rows()), options.deadline,
      options.exact_solver);
  if (!p_exact) return std::nullopt;
  Candidate c;
  c.method = Method::EqSmt;
  c.p = Matrix{a.rows(), a.cols()};
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < a.cols(); ++j)
      c.p(i, j) = (*p_exact)(i, j).to_double();
  c.exact_p = std::move(*p_exact);
  return c;
}

std::optional<Candidate> synthesize_eq_num(const Matrix& a) {
  auto p = numeric::solve_lyapunov(a, Matrix::identity(a.rows()));
  if (!p) return std::nullopt;
  Candidate c;
  c.method = Method::EqNum;
  c.p = std::move(*p);
  return c;
}

std::optional<Candidate> synthesize_modal(const Matrix& a) {
  auto eig = numeric::eigen_decompose(a);
  if (!eig.converged) return std::nullopt;
  auto m_inv = eig.modal.inverse();
  if (!m_inv) return std::nullopt;  // defective (numerically)
  // P = (M^-1)^H (M^-1); real symmetric for real A (paper eq. (8)).
  numeric::CMatrix p = m_inv->adjoint() * *m_inv;
  Candidate c;
  c.method = Method::Modal;
  c.p = p.real_part().symmetrized();
  return c;
}

std::optional<Candidate> synthesize_lmi(const Matrix& a, Method method,
                                        const SynthesisOptions& options) {
  sdp::LyapunovLmiConfig config;
  config.kappa = options.kappa;
  if (method == Method::LmiAlpha || method == Method::LmiAlphaPlus)
    config.alpha = options.alpha;
  if (method == Method::LmiAlphaPlus) config.nu = options.nu;
  sdp::LmiProblem problem = sdp::make_lyapunov_lmi(a, config);
  sdp::LmiOptions lmi_options;
  lmi_options.deadline = options.deadline;
  auto sol = sdp::solve_lmi(problem, options.backend, lmi_options);
  if (!sol.feasible) return std::nullopt;
  Candidate c;
  c.method = method;
  c.p = sdp::unvech_double(sol.p, a.rows());
  return c;
}

}  // namespace

std::optional<Candidate> synthesize(const Matrix& a, Method method,
                                    const SynthesisOptions& options) {
  if (!a.is_square() || a.rows() == 0)
    throw std::invalid_argument("synthesize: A must be square and non-empty");
  // Stage span (records even when the method throws TimeoutError) plus a
  // per-method latency histogram for the successful syntheses.
  obs::Span span{"synthesis", to_string(method)};
  obs::Histogram& method_seconds = obs::Registry::global().histogram(
      "spiv_synthesis_seconds{method=\"" + to_string(method) + "\"}");
  const auto start = std::chrono::steady_clock::now();
  std::optional<Candidate> c;
  switch (method) {
    case Method::EqSmt: c = synthesize_eq_smt(a, options); break;
    case Method::EqNum: c = synthesize_eq_num(a); break;
    case Method::Modal: c = synthesize_modal(a); break;
    case Method::Lmi:
    case Method::LmiAlpha:
    case Method::LmiAlphaPlus:
      c = synthesize_lmi(a, method, options);
      break;
  }
  if (c) {
    c->synth_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    method_seconds.observe(c->synth_seconds);
  }
  return c;
}

}  // namespace spiv::lyap
