#include "lyapunov/extensions.hpp"

#include <chrono>
#include <cmath>
#include <random>
#include <stdexcept>

#include "numeric/eigen.hpp"
#include "sdp/lyapunov_lmi.hpp"
#include "sim/integrator.hpp"
#include "smt/charpoly.hpp"
#include "smt/validate.hpp"

namespace spiv::lyap {

using numeric::Matrix;
using numeric::Vector;

std::optional<Candidate> synthesize_common(
    const std::vector<Matrix>& mode_matrices, const SynthesisOptions& options) {
  if (mode_matrices.empty())
    throw std::invalid_argument("synthesize_common: no modes");
  const std::size_t n = mode_matrices.front().rows();
  for (const auto& a : mode_matrices)
    if (!a.is_square() || a.rows() != n)
      throw std::invalid_argument("synthesize_common: shape mismatch");
  const auto start = std::chrono::steady_clock::now();

  const std::size_t big_k = n * (n + 1) / 2;
  std::vector<Matrix> basis;
  basis.reserve(big_k);
  for (std::size_t k = 0; k < big_k; ++k)
    basis.push_back(sdp::vech_basis_matrix(k, n));

  sdp::LmiProblem problem;
  problem.num_vars = big_k;
  // P > nu I.
  {
    Matrix f0{n, n};
    for (std::size_t i = 0; i < n; ++i) f0(i, i) = -options.nu;
    problem.constraints.emplace_back(std::move(f0), basis);
  }
  // kappa I - P > 0.
  {
    Matrix f0 = Matrix::identity(n) * options.kappa;
    std::vector<Matrix> neg;
    neg.reserve(big_k);
    for (const auto& e : basis) neg.push_back(-e);
    problem.constraints.emplace_back(std::move(f0), std::move(neg));
  }
  // Per mode: -(A_i^T P + P A_i) - alpha P > 0.
  for (const Matrix& a : mode_matrices) {
    const Matrix at = a.transposed();
    std::vector<Matrix> coeffs;
    coeffs.reserve(big_k);
    for (const auto& e : basis) {
      Matrix c = -(at * e) - e * a;
      if (options.alpha != 0.0) c -= options.alpha * e;
      coeffs.push_back(std::move(c));
    }
    problem.constraints.emplace_back(Matrix{n, n}, std::move(coeffs));
  }

  sdp::LmiOptions lmi_options;
  lmi_options.deadline = options.deadline;
  auto sol = sdp::solve_lmi(problem, options.backend, lmi_options);
  if (!sol.feasible) return std::nullopt;
  Candidate c;
  c.method = Method::Lmi;
  c.p = sdp::unvech_double(sol.p, n);
  c.synth_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return c;
}

bool validate_common(const std::vector<Matrix>& mode_matrices, const Matrix& p,
                     int digits, const Deadline& deadline) {
  smt::CheckOptions options;
  options.deadline = deadline;
  for (const Matrix& a : mode_matrices) {
    auto v = smt::validate_lyapunov(a, p, smt::Engine::Sylvester, digits,
                                    options);
    if (!v.valid()) return false;
  }
  return true;
}

ExponentialCertificate exponential_certificate(const Matrix& a,
                                               const Matrix& p, int digits,
                                               double tolerance,
                                               const Deadline& deadline) {
  using exact::RatMatrix;
  using exact::Rational;
  const RatMatrix a_exact = smt::rationalize(a, 0);
  const RatMatrix p_exact = smt::rationalize(p, digits).symmetrized();
  const RatMatrix s =
      -(a_exact.transposed() * p_exact + p_exact * a_exact).symmetrized();

  // Exact check: S - alpha P >= 0 (PSD via the characteristic polynomial).
  auto holds = [&](const Rational& alpha) {
    RatMatrix m = s - p_exact * alpha;
    return smt::all_roots_nonnegative(
        smt::characteristic_polynomial_faddeev(m, deadline));
  };

  ExponentialCertificate cert;
  cert.settling_time = std::numeric_limits<double>::infinity();
  if (!holds(Rational{})) return cert;  // not even a plain Lyapunov function

  // Numeric estimate of alpha* = lambda_min(S, P) as the bracket seed.
  double alpha_star = 0.0;
  {
    auto chol = p.symmetrized().cholesky();
    if (chol) {
      // L^-1 S L^-T via two triangular solves on the double twins.
      Matrix s_num = -(a.transposed() * p + p * a).symmetrized();
      const Matrix& l = *chol;
      const std::size_t n = p.rows();
      // X = L^-1 S: forward substitution column-wise.
      Matrix x{n, n};
      for (std::size_t col = 0; col < n; ++col)
        for (std::size_t i = 0; i < n; ++i) {
          double acc = s_num(i, col);
          for (std::size_t k = 0; k < i; ++k) acc -= l(i, k) * x(k, col);
          x(i, col) = acc / l(i, i);
        }
      // Y = X L^-T  <=>  Y L^T = X: forward substitution on rows.
      Matrix y{n, n};
      for (std::size_t row = 0; row < n; ++row)
        for (std::size_t j = 0; j < n; ++j) {
          double acc = x(row, j);
          for (std::size_t k = 0; k < j; ++k) acc -= y(row, k) * l(j, k);
          y(row, j) = acc / l(j, j);
        }
      alpha_star = numeric::symmetric_eigen(y.symmetrized()).values.front();
    }
  }
  if (alpha_star <= 0.0) alpha_star = 1.0;

  // Exact bisection inside [0, hi], growing hi if the numeric seed was shy.
  Rational lo{};
  Rational hi = Rational::from_double_rounded(alpha_star * 1.05, 6);
  if (holds(hi)) {
    for (int grow = 0; grow < 8 && holds(hi * Rational{2}); ++grow)
      hi *= Rational{2};
    lo = hi;
    hi *= Rational{2};
  }
  const Rational tol = Rational::from_double_rounded(
      std::max(tolerance * alpha_star, 1e-12), 3);
  while (hi - lo > tol) {
    deadline.check();
    Rational mid = (lo + hi) * Rational{1, 2};
    if (holds(mid))
      lo = mid;
    else
      hi = mid;
  }
  cert.alpha = lo.to_double();
  cert.valid = cert.alpha > 0.0;
  cert.settling_time =
      cert.valid ? std::log(1e6) / cert.alpha
                 : std::numeric_limits<double>::infinity();
  return cert;
}

RegionStabilityReport check_region_stability(const model::PwaSystem& system,
                                             const Vector& r, double amplitude,
                                             double radius, int samples,
                                             double t_end, unsigned seed) {
  RegionStabilityReport report;
  report.samples = samples;
  std::mt19937_64 rng{seed};
  std::uniform_real_distribution<double> box{-amplitude, amplitude};
  std::vector<Vector> equilibria;
  for (std::size_t i = 0; i < system.num_modes(); ++i)
    equilibria.push_back(system.mode(i).equilibrium(r));

  for (int s = 0; s < samples; ++s) {
    Vector w0(system.dim());
    for (auto& v : w0) v = box(rng);
    sim::SimOptions options;
    options.t_end = t_end;
    options.record_interval = t_end / 50.0;
    sim::Trajectory traj = sim::simulate(system, r, w0, options);
    report.max_switches = std::max(report.max_switches, traj.switches.size());
    if (traj.step_failed) continue;
    // Trapped: the trailing 20% of recorded points are within `radius` of
    // the then-active mode's equilibrium.
    bool trapped = true;
    const double t_tail = 0.8 * traj.points.back().t;
    for (const auto& pt : traj.points) {
      if (pt.t < t_tail) continue;
      double dist2 = 0.0;
      for (std::size_t i = 0; i < pt.w.size(); ++i) {
        const double d = pt.w[i] - equilibria[pt.mode][i];
        dist2 += d * d;
      }
      if (std::sqrt(dist2) > radius) {
        trapped = false;
        break;
      }
    }
    if (trapped) ++report.trapped;
  }
  return report;
}

}  // namespace spiv::lyap
