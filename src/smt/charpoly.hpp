// spiv::smt — exact characteristic polynomials of rational matrices.
//
// The complete decision procedures behind the SMT-style validation engines
// (paper's Z3 / CVC5 columns in Fig. 3) reduce positive-definiteness of a
// symmetric rational matrix to a sign condition on its characteristic
// polynomial: P is PD iff all roots of det(lambda I - P) are positive,
// which for a symmetric (hence real-rooted) matrix is equivalent to the
// coefficients of det(lambda I - P) alternating strictly in sign
// (Descartes).  Two exact algorithms with different cost profiles are
// provided, mirroring two different solver back-ends.
#pragma once

#include <vector>

#include "exact/matrix.hpp"
#include "exact/timeout.hpp"

namespace spiv::smt {

/// Coefficients c of det(lambda I - M) = sum_k c[k] lambda^k
/// (monic: c[n] == 1) via the Faddeev–LeVerrier recurrence.
/// O(n) exact matrix products with substantial coefficient growth — the
/// deliberately heavyweight route (Z3-like engine).
[[nodiscard]] std::vector<exact::Rational> characteristic_polynomial_faddeev(
    const exact::RatMatrix& m, const Deadline& deadline = {});

/// Same polynomial via evaluation/interpolation: det(k I - M) at the
/// integer nodes k = 0..n followed by exact Lagrange interpolation.
/// n+1 rational eliminations — a different cost profile (CVC5-like engine).
[[nodiscard]] std::vector<exact::Rational>
characteristic_polynomial_interpolation(const exact::RatMatrix& m,
                                        const Deadline& deadline = {});

/// Sign condition for a *symmetric* matrix with char poly c (monic,
/// degree n): all eigenvalues > 0 iff the coefficients alternate strictly:
/// sign(c[k]) == (-1)^(n-k).
[[nodiscard]] bool all_roots_positive_strict(
    const std::vector<exact::Rational>& coeffs);

/// All eigenvalues >= 0 iff coefficients alternate weakly:
/// c[k] * (-1)^(n-k) >= 0 for every k.
[[nodiscard]] bool all_roots_nonnegative(
    const std::vector<exact::Rational>& coeffs);

/// Evaluate the polynomial at x (Horner).
[[nodiscard]] exact::Rational evaluate_polynomial(
    const std::vector<exact::Rational>& coeffs, const exact::Rational& x);

}  // namespace spiv::smt
