#include "smt/charpoly.hpp"

#include <stdexcept>

#include "exact/modular.hpp"

namespace spiv::smt {

using exact::RatMatrix;
using exact::Rational;

namespace {

/// Exact determinant for one interpolation node under the configured
/// strategy.  Runs the modular path serially (jobs = 1): the engine is
/// itself invoked from parallel validation sweeps, and nesting job pools
/// inside each node would oversubscribe the machine.
Rational node_determinant(const RatMatrix& shifted, const Deadline& deadline) {
  if (exact::modular_preferred(shifted.rows(), exact::exact_solver_strategy())) {
    exact::ModularOptions options;
    options.jobs = 1;
    return exact::determinant_modular(shifted, deadline, options);
  }
  return shifted.determinant(deadline);
}

}  // namespace

std::vector<Rational> characteristic_polynomial_faddeev(
    const RatMatrix& m, const Deadline& deadline) {
  if (!m.is_square())
    throw std::invalid_argument("characteristic_polynomial: square required");
  const std::size_t n = m.rows();
  // Faddeev–LeVerrier: M_1 = M, c_{n-1} = -tr(M_1);
  // M_k = M (M_{k-1} + c_{n-k+1} I), c_{n-k} = -tr(M_k)/k.
  std::vector<Rational> coeffs(n + 1);
  coeffs[n] = Rational{1};
  RatMatrix mk = m;
  for (std::size_t k = 1; k <= n; ++k) {
    deadline.check();
    Rational trace;
    for (std::size_t i = 0; i < n; ++i) trace += mk(i, i);
    coeffs[n - k] = -trace / Rational{static_cast<std::int64_t>(k)};
    if (k == n) break;
    RatMatrix shifted = mk;
    for (std::size_t i = 0; i < n; ++i) shifted(i, i) += coeffs[n - k];
    mk = m * shifted;
  }
  return coeffs;
}

std::vector<Rational> characteristic_polynomial_interpolation(
    const RatMatrix& m, const Deadline& deadline) {
  if (!m.is_square())
    throw std::invalid_argument("characteristic_polynomial: square required");
  const std::size_t n = m.rows();
  // Values p(k) = det(k I - M) at nodes k = 0..n.
  std::vector<Rational> values(n + 1);
  for (std::size_t k = 0; k <= n; ++k) {
    deadline.check();
    RatMatrix shifted = -m;
    for (std::size_t i = 0; i < n; ++i)
      shifted(i, i) += Rational{static_cast<std::int64_t>(k)};
    // Each determinant is the engine's dominant cost; pass the deadline so
    // a cancellation preempts inside the elimination, not just between
    // interpolation nodes.
    values[k] = node_determinant(shifted, deadline);
  }
  // Newton's divided differences on integer nodes, then expand to the
  // monomial basis.
  std::vector<Rational> dd = values;
  for (std::size_t level = 1; level <= n; ++level) {
    deadline.check();
    for (std::size_t i = n; i >= level; --i) {
      dd[i] = (dd[i] - dd[i - 1]) /
              Rational{static_cast<std::int64_t>(level)};
      if (i == level) break;
    }
  }
  // p(x) = sum_j dd[j] * prod_{i<j} (x - i): expand incrementally.
  std::vector<Rational> coeffs(n + 1);
  std::vector<Rational> basis{Rational{1}};  // prod_{i<j} (x - i) so far
  for (std::size_t j = 0; j <= n; ++j) {
    for (std::size_t t = 0; t < basis.size(); ++t)
      coeffs[t] += dd[j] * basis[t];
    if (j == n) break;
    // basis *= (x - j): new[t] = old[t-1] - j*old[t].
    const Rational node{static_cast<std::int64_t>(j)};
    std::vector<Rational> fresh(basis.size() + 1);
    for (std::size_t t = 0; t < basis.size(); ++t) {
      fresh[t + 1] += basis[t];
      fresh[t] -= node * basis[t];
    }
    basis = std::move(fresh);
  }
  return coeffs;
}

bool all_roots_positive_strict(const std::vector<Rational>& coeffs) {
  if (coeffs.empty())
    throw std::invalid_argument("all_roots_positive_strict: empty polynomial");
  const std::size_t n = coeffs.size() - 1;
  for (std::size_t k = 0; k <= n; ++k) {
    const int expected = (n - k) % 2 == 0 ? 1 : -1;
    if (coeffs[k].sign() != expected) return false;
  }
  return true;
}

bool all_roots_nonnegative(const std::vector<Rational>& coeffs) {
  if (coeffs.empty())
    throw std::invalid_argument("all_roots_nonnegative: empty polynomial");
  const std::size_t n = coeffs.size() - 1;
  for (std::size_t k = 0; k <= n; ++k) {
    const int expected = (n - k) % 2 == 0 ? 1 : -1;
    const int s = coeffs[k].sign();
    if (s != 0 && s != expected) return false;
  }
  return true;
}

Rational evaluate_polynomial(const std::vector<Rational>& coeffs,
                             const Rational& x) {
  Rational acc;
  for (std::size_t k = coeffs.size(); k-- > 0;) acc = acc * x + coeffs[k];
  return acc;
}

}  // namespace spiv::smt
