#include "smt/interval_cholesky.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

namespace spiv::smt {

namespace {

/// Closed interval with outward-rounded arithmetic.  Directed rounding is
/// emulated by widening every computed endpoint one ulp outward, which
/// over-approximates the at-most-half-ulp error of each IEEE operation.
struct Interval {
  double lo = 0.0;
  double hi = 0.0;

  static double down(double v) {
    return std::nextafter(v, -std::numeric_limits<double>::infinity());
  }
  static double up(double v) {
    return std::nextafter(v, std::numeric_limits<double>::infinity());
  }

  static Interval exact(double v) { return {v, v}; }

  friend Interval operator+(const Interval& a, const Interval& b) {
    return {down(a.lo + b.lo), up(a.hi + b.hi)};
  }
  friend Interval operator-(const Interval& a, const Interval& b) {
    return {down(a.lo - b.hi), up(a.hi - b.lo)};
  }
  friend Interval operator*(const Interval& a, const Interval& b) {
    const double p1 = a.lo * b.lo, p2 = a.lo * b.hi, p3 = a.hi * b.lo,
                 p4 = a.hi * b.hi;
    return {down(std::min({p1, p2, p3, p4})), up(std::max({p1, p2, p3, p4}))};
  }
  /// Division by an interval strictly positive (lo > 0).
  friend Interval operator/(const Interval& a, const Interval& b) {
    const double q1 = a.lo / b.lo, q2 = a.lo / b.hi, q3 = a.hi / b.lo,
                 q4 = a.hi / b.hi;
    return {down(std::min({q1, q2, q3, q4})), up(std::max({q1, q2, q3, q4}))};
  }
  /// Square root of a nonnegative interval.
  [[nodiscard]] Interval sqrt() const {
    return {down(std::sqrt(lo)), up(std::sqrt(hi))};
  }
};

IntervalOutcome check(const std::vector<Interval>& a, std::size_t n) {
  // Interval Cholesky: track L entries as intervals; decide from the pivot
  // enclosures.
  std::vector<Interval> l(n * n);
  for (std::size_t j = 0; j < n; ++j) {
    Interval pivot = a[j * n + j];
    for (std::size_t k = 0; k < j; ++k)
      pivot = pivot - l[j * n + k] * l[j * n + k];
    if (pivot.hi <= 0.0) return IntervalOutcome::ProvedNotPd;
    if (pivot.lo <= 0.0) return IntervalOutcome::Unknown;
    const Interval root = pivot.sqrt();
    l[j * n + j] = root;
    for (std::size_t i = j + 1; i < n; ++i) {
      Interval acc = a[i * n + j];
      for (std::size_t k = 0; k < j; ++k)
        acc = acc - l[i * n + k] * l[j * n + k];
      l[i * n + j] = acc / root;
    }
  }
  return IntervalOutcome::ProvedPd;
}

}  // namespace

IntervalOutcome interval_cholesky_check(const exact::RatMatrix& m) {
  if (!m.is_square() || !m.is_symmetric())
    throw std::invalid_argument(
        "interval_cholesky_check: symmetric matrix required");
  const std::size_t n = m.rows();
  std::vector<Interval> a(n * n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) {
      // Rational -> enclosing interval: our to_double is near-nearest;
      // widening a few ulps each way gives a rigorous enclosure.
      double v = m(i, j).to_double();
      Interval iv = Interval::exact(v);
      for (int w = 0; w < 4; ++w) {
        iv.lo = Interval::down(iv.lo);
        iv.hi = Interval::up(iv.hi);
      }
      a[i * n + j] = iv;
    }
  return check(a, n);
}

IntervalOutcome interval_cholesky_check(const numeric::Matrix& m) {
  if (!m.is_square() || !m.is_symmetric(0.0))
    throw std::invalid_argument(
        "interval_cholesky_check: symmetric matrix required");
  const std::size_t n = m.rows();
  std::vector<Interval> a(n * n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      a[i * n + j] = Interval::exact(m(i, j));
  return check(a, n);
}

}  // namespace spiv::smt
