#include "smt/validate.hpp"

#include <chrono>
#include <stdexcept>

#include "numeric/eigen.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "smt/charpoly.hpp"

namespace spiv::smt {

using exact::RatMatrix;
using exact::Rational;

std::string to_string(Engine e) {
  switch (e) {
    case Engine::Sylvester: return "sylvester";
    case Engine::SympyGauss: return "sympy-gauss";
    case Engine::Ldlt: return "ldlt";
    case Engine::SmtZ3Style: return "smt-z3";
    case Engine::SmtCvc5Style: return "smt-cvc5";
  }
  return "?";
}

std::optional<Engine> engine_from_string(const std::string& name) {
  for (Engine e : {Engine::Sylvester, Engine::SympyGauss, Engine::Ldlt,
                   Engine::SmtZ3Style, Engine::SmtCvc5Style})
    if (to_string(e) == name) return e;
  return std::nullopt;
}

namespace {

/// Incremental Sylvester criterion with early exit: eliminates without row
/// swaps; the running pivot product equals the leading principal minors.
/// Returns Valid iff every leading principal minor is strictly positive.
Outcome sylvester_strict(const RatMatrix& input, const Deadline& deadline) {
  RatMatrix m = input;
  const std::size_t n = m.rows();
  for (std::size_t col = 0; col < n; ++col) {
    deadline.check();
    // With all previous pivots positive, minor_k = (prod pivots) * pivot_k,
    // so the sign of the next minor is the sign of the pivot itself.
    if (m(col, col).sign() <= 0) return Outcome::Invalid;
    const Rational inv_pivot = m(col, col).reciprocal();
    for (std::size_t r = col + 1; r < n; ++r) {
      if (m(r, col).is_zero()) continue;
      deadline.check();  // row-level poll: rows get heavy late in elimination
      const Rational factor = m(r, col) * inv_pivot;
      m(r, col) = Rational{};
      for (std::size_t j = col + 1; j < n; ++j) {
        if (m(col, j).is_zero()) continue;
        m(r, j) -= factor * m(col, j);
      }
    }
  }
  return Outcome::Valid;
}

/// Fraction-free Bareiss elimination without renormalization (the SymPy
/// is_positive_definite route): the k-th pivot equals the k-th leading
/// principal minor, intermediate products are kept un-divided as long as
/// possible, giving the heavier coefficient growth the paper observed.
Outcome bareiss_strict(const RatMatrix& input, const Deadline& deadline) {
  RatMatrix m = input;
  const std::size_t n = m.rows();
  Rational prev_pivot{1};
  for (std::size_t col = 0; col < n; ++col) {
    deadline.check();
    const Rational pivot = m(col, col);
    // Bareiss pivots are exactly the leading principal minors.
    if (pivot.sign() <= 0) return Outcome::Invalid;
    for (std::size_t r = col + 1; r < n; ++r) {
      deadline.check();  // row-level poll; see sylvester_strict
      for (std::size_t j = col + 1; j < n; ++j) {
        m(r, j) = (pivot * m(r, j) - m(r, col) * m(col, j)) / prev_pivot;
      }
      m(r, col) = Rational{};
    }
    prev_pivot = pivot;
  }
  return Outcome::Valid;
}

/// Exact LDL^T with early exit on a non-positive pivot.
Outcome ldlt_strict(const RatMatrix& input, const Deadline& deadline) {
  const std::size_t n = input.rows();
  RatMatrix l = RatMatrix::identity(n);
  std::vector<Rational> d(n);
  for (std::size_t j = 0; j < n; ++j) {
    deadline.check();
    Rational dj = input(j, j);
    for (std::size_t k = 0; k < j; ++k) {
      if (l(j, k).is_zero()) continue;
      dj -= l(j, k) * l(j, k) * d[k];
    }
    if (dj.sign() <= 0) return Outcome::Invalid;
    d[j] = dj;
    const Rational inv_dj = dj.reciprocal();
    for (std::size_t i = j + 1; i < n; ++i) {
      deadline.check();  // row-level poll; see sylvester_strict
      Rational acc = input(i, j);
      for (std::size_t k = 0; k < j; ++k) {
        if (l(i, k).is_zero() || l(j, k).is_zero()) continue;
        acc -= l(i, k) * l(j, k) * d[k];
      }
      l(i, j) = acc * inv_dj;
    }
  }
  return Outcome::Valid;
}

/// SMT-style counter-model attempt: rationalize the numeric eigenvector of
/// the smallest eigenvalue and test the quadratic form exactly.  Returns a
/// witness when it certifies indefiniteness.
std::optional<std::vector<Rational>> counter_model(const RatMatrix& m) {
  const std::size_t n = m.rows();
  numeric::Matrix md{n, n};
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) md(i, j) = m(i, j).to_double();
  auto eig = numeric::symmetric_eigen(md);
  if (eig.values.front() > 0.0) return std::nullopt;  // numerically PD
  std::vector<Rational> w(n);
  for (std::size_t i = 0; i < n; ++i)
    w[i] = exact::Rational::from_double_rounded(eig.vectors(i, 0), 8);
  bool nonzero = false;
  for (const auto& v : w) nonzero |= !v.is_zero();
  if (!nonzero) return std::nullopt;
  if (m.quad_form(w).sign() <= 0) return w;
  return std::nullopt;
}

}  // namespace

Verdict check_positive_definite(const RatMatrix& m, Engine engine,
                                const CheckOptions& options) {
  if (!m.is_square() || !m.is_symmetric())
    throw std::invalid_argument(
        "check_positive_definite: symmetric matrix required");
  Verdict verdict;
  const auto start = std::chrono::steady_clock::now();
  auto finish = [&](Outcome o) {
    verdict.outcome = o;
    verdict.seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    return verdict;
  };
  try {
    switch (engine) {
      case Engine::Sylvester: {
        if (options.det_encoding) {
          // "+det": nonsingularity first, then the weak condition (which
          // together with det != 0 is equivalent to the strict one).
          if (m.determinant(options.deadline).is_zero())
            return finish(Outcome::Invalid);
        }
        return finish(sylvester_strict(m, options.deadline));
      }
      case Engine::SympyGauss: {
        if (options.det_encoding && m.determinant(options.deadline).is_zero())
          return finish(Outcome::Invalid);
        return finish(bareiss_strict(m, options.deadline));
      }
      case Engine::Ldlt: {
        if (options.det_encoding && m.determinant(options.deadline).is_zero())
          return finish(Outcome::Invalid);
        return finish(ldlt_strict(m, options.deadline));
      }
      case Engine::SmtZ3Style:
      case Engine::SmtCvc5Style: {
        // Phase 1: cheap counter-model search (SAT answers are fast).
        if (auto w = counter_model(m)) {
          verdict.witness = std::move(*w);
          return finish(Outcome::Invalid);
        }
        // Phase 2: complete decision via the characteristic polynomial.
        auto coeffs = engine == Engine::SmtZ3Style
                          ? characteristic_polynomial_faddeev(m, options.deadline)
                          : characteristic_polynomial_interpolation(
                                m, options.deadline);
        bool ok;
        if (options.det_encoding) {
          // weak alternation + det != 0  (det = +/- c0).
          ok = all_roots_nonnegative(coeffs) && !coeffs.front().is_zero();
        } else {
          ok = all_roots_positive_strict(coeffs);
        }
        return finish(ok ? Outcome::Valid : Outcome::Invalid);
      }
    }
  } catch (const TimeoutError&) {
    return finish(Outcome::Timeout);
  }
  throw std::logic_error("check_positive_definite: unknown engine");
}

exact::RatMatrix rationalize(const numeric::Matrix& m, int digits) {
  return exact::rat_matrix_from_doubles(m.data().data(), m.rows(), m.cols(),
                                        digits);
}

LyapunovValidation validate_lyapunov(const numeric::Matrix& a,
                                     const numeric::Matrix& p, Engine engine,
                                     int digits, const CheckOptions& options) {
  if (!a.is_square() || !p.is_square() || a.rows() != p.rows())
    throw std::invalid_argument("validate_lyapunov: shape mismatch");
  obs::Span span{"validation", to_string(engine)};
  // The system matrix enters exactly; only the candidate is rounded
  // (paper §VI-B1: candidates rounded at the 10th significant figure).
  const RatMatrix a_exact = rationalize(a, 0);
  const RatMatrix p_exact = rationalize(p, digits).symmetrized();
  const RatMatrix lie =
      -(a_exact.transposed() * p_exact + p_exact * a_exact).symmetrized();

  LyapunovValidation out;
  out.positivity = check_positive_definite(p_exact, engine, options);
  out.decrease = check_positive_definite(lie, engine, options);
  obs::Registry::global()
      .histogram("spiv_validation_seconds{engine=\"" + to_string(engine) +
                 "\"}")
      .observe(out.seconds());
  return out;
}

}  // namespace spiv::smt
