// spiv::smt — certified floating-point positive-definiteness checking via
// interval (outward-rounded) Cholesky.
//
// A sixth engine class, complementing the exact-rational ones: VSDP-style
// verified numerics.  The factorization is run in double precision with
// every operation's result widened to a rigorous enclosure (directed
// rounding emulated through nextafter); if even the *lower* bounds of all
// pivots stay positive, the matrix is provably PD — at floating-point
// speed.  The price is incompleteness: near-singular inputs return
// Unknown, where the exact engines still decide.
#pragma once

#include "exact/matrix.hpp"
#include "numeric/matrix.hpp"

namespace spiv::smt {

enum class IntervalOutcome {
  ProvedPd,     ///< rigorous proof of positive definiteness
  ProvedNotPd,  ///< rigorous disproof (an upper pivot bound <= 0)
  Unknown,      ///< enclosure too wide to decide
};

/// Rigorous PD check of a symmetric rational matrix (the entries are
/// converted to enclosing double intervals first, so the verdict is valid
/// for the exact rational input).
[[nodiscard]] IntervalOutcome interval_cholesky_check(
    const exact::RatMatrix& m);

/// Convenience overload for double input (entries are exact doubles).
[[nodiscard]] IntervalOutcome interval_cholesky_check(
    const numeric::Matrix& m);

}  // namespace spiv::smt
