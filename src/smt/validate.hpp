// spiv::smt — exact (symbolic) validation of candidate Lyapunov functions
// (paper §VI-B1 and Fig. 3).
//
// Numerically synthesized candidates P are rounded to a fixed number of
// significant decimal figures, converted to exact rationals, and the two
// Lyapunov conditions
//     (1)  forall w != 0 :  w^T P w > 0
//     (2)  forall w != 0 :  w^T (A^T P + P A) w < 0
// are decided exactly.  Both reduce to strict positive-definiteness of a
// symmetric rational matrix; the engines below are complete decision
// procedures with deliberately different algorithmic profiles, mirroring
// the validators compared in the paper's Fig. 3:
//
//   Sylvester     — leading principal minors (the paper's fastest method);
//   SympyGauss    — fraction-free (Bareiss) elimination without
//                   renormalization, SymPy-is_positive_definite style;
//   Ldlt          — exact LDL^T pivots;
//   SmtZ3Style    — SMT-flavoured: numerically-guided counter-model search
//                   first (cheap Invalid answers with an exact witness),
//                   then a complete check via the Faddeev–LeVerrier
//                   characteristic polynomial and Descartes' rule;
//   SmtCvc5Style  — same search loop, complete check via characteristic
//                   polynomial by exact evaluation/interpolation.
//
// The `det_encoding` option mirrors the paper's "+det" variant: the strict
// check "forall w != 0: q(w) > 0" is encoded as
// "forall w: q(w) >= 0  and  det != 0" (weak sign condition + separate
// nonsingularity test).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "exact/matrix.hpp"
#include "exact/timeout.hpp"
#include "numeric/matrix.hpp"

namespace spiv::smt {

enum class Engine {
  Sylvester,
  SympyGauss,
  Ldlt,
  SmtZ3Style,
  SmtCvc5Style,
};

[[nodiscard]] std::string to_string(Engine e);
/// Inverse of to_string ("sylvester", ...); nullopt for unknown names.
[[nodiscard]] std::optional<Engine> engine_from_string(const std::string& name);

struct CheckOptions {
  bool det_encoding = false;  ///< the paper's "+det" reformulation
  Deadline deadline{};
};

enum class Outcome { Valid, Invalid, Timeout };

/// Result of one positive-definiteness query.
struct Verdict {
  Outcome outcome = Outcome::Timeout;
  /// For Invalid: an exact vector w with w^T M w <= 0, when the engine
  /// produced one.
  std::optional<std::vector<exact::Rational>> witness;
  double seconds = 0.0;
};

/// Decide strict positive-definiteness of a symmetric rational matrix.
[[nodiscard]] Verdict check_positive_definite(const exact::RatMatrix& m,
                                              Engine engine,
                                              const CheckOptions& options = {});

/// Validation of a candidate quadratic Lyapunov function for wdot = A w:
/// both conditions (positivity of P and negativity of the Lie derivative).
struct LyapunovValidation {
  Verdict positivity;
  Verdict decrease;
  [[nodiscard]] bool valid() const {
    return positivity.outcome == Outcome::Valid &&
           decrease.outcome == Outcome::Valid;
  }
  [[nodiscard]] double seconds() const {
    return positivity.seconds + decrease.seconds;
  }
};

/// Exact-rationalize A, round candidate P to `digits` significant decimal
/// figures (paper protocol; digits = 0 keeps the binary-exact value), and
/// validate both Lyapunov conditions with the chosen engine.
[[nodiscard]] LyapunovValidation validate_lyapunov(
    const numeric::Matrix& a, const numeric::Matrix& p, Engine engine,
    int digits = 10, const CheckOptions& options = {});

/// Round-and-rationalize helper shared by the validation harness.
[[nodiscard]] exact::RatMatrix rationalize(const numeric::Matrix& m,
                                           int digits);

}  // namespace spiv::smt
