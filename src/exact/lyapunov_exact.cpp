#include "exact/lyapunov_exact.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>

#include "exact/modular.hpp"
#include "obs/metrics.hpp"

namespace spiv::exact {

namespace {

obs::Counter& fallback_counter() {
  static obs::Counter& c =
      obs::Registry::global().counter("spiv_modular_fallback_total");
  return c;
}

obs::Histogram& residual_check_seconds() {
  static obs::Histogram& h = obs::Registry::global().histogram(
      "spiv_modular_residual_check_seconds");
  return h;
}

// Eager registration: the family shows up in `spiv-serve metrics` /
// --metrics-out scrapes before the first modular solve runs.
[[maybe_unused]] const bool kResidualMetricRegistered =
    (residual_check_seconds(), true);

/// Exact check that A^T P + P A + Q == 0, performed over the integers: the
/// rational form would pay a multi-thousand-bit gcd per entry product (P's
/// entries carry det-sized numerators), which is slower than the solve it
/// is guarding.  Scaling each matrix by the lcm of its denominators turns
/// the whole residual into BigInt multiply/accumulate.
bool lyapunov_residual_is_zero(const RatMatrix& a, const RatMatrix& p,
                               const RatMatrix& q,
                               const Deadline& deadline) {
  const auto t0 = std::chrono::steady_clock::now();
  struct Observe {
    std::chrono::steady_clock::time_point t0;
    ~Observe() {
      residual_check_seconds().observe(
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count());
    }
  } observe{t0};
  const std::size_t n = a.rows();
  const auto common_den = [n](const RatMatrix& m) {
    BigInt d{1};
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = 0; j < n; ++j) {
        const BigInt& den = m(i, j).den();
        if (den.is_one() || den == d) continue;
        d = d / BigInt::gcd(d, den) * den;
      }
    return d;
  };
  const auto scaled = [n](const RatMatrix& m, const BigInt& d) {
    std::vector<BigInt> out(n * n);
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = 0; j < n; ++j)
        out[i * n + j] = m(i, j).num() * (d / m(i, j).den());
    return out;
  };
  const BigInt da = common_den(a), dp = common_den(p), dq = common_den(q);
  const std::vector<BigInt> ai = scaled(a, da);
  const std::vector<BigInt> pi = scaled(p, dp);
  const std::vector<BigInt> qi = scaled(q, dq);
  // (Ai^T Pi + Pi Ai) dq + Qi da dp == 0  <=>  (A^T P + P A + Q) da dp dq == 0.
  const BigInt qscale = da * dp;
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) {
      deadline.check();
      BigInt acc;
      for (std::size_t l = 0; l < n; ++l) {
        if (!ai[l * n + i].is_zero() && !pi[l * n + j].is_zero())
          acc += ai[l * n + i] * pi[l * n + j];  // (A^T)(i,l) P(l,j)
        if (!pi[i * n + l].is_zero() && !ai[l * n + j].is_zero())
          acc += pi[i * n + l] * ai[l * n + j];  // P(i,l) A(l,j)
      }
      if (!(acc * dq + qi[i * n + j] * qscale).is_zero()) return false;
    }
  return true;
}

/// Multi-modular solve of op X = B (any number of RHS columns — the
/// per-prime elimination is shared across all of them).  nullopt means
/// "use Bareiss": the strategy didn't select modular, the system looks
/// singular, or reconstruction failed.  Only genuine failures count as
/// fallbacks.
std::optional<RatMatrix> try_modular_solve(
    const RatMatrix& op, const RatMatrix& b, const Deadline& deadline,
    std::optional<ExactSolverStrategy> strategy) {
  if (!modular_preferred(op.rows(), strategy.value_or(exact_solver_strategy())))
    return std::nullopt;
  auto x = solve_rational_modular(op, b, deadline);
  if (!x) fallback_counter().add();
  return x;
}

std::optional<std::vector<Rational>> try_modular_solve(
    const RatMatrix& op, const std::vector<Rational>& rhs,
    const Deadline& deadline, std::optional<ExactSolverStrategy> strategy) {
  RatMatrix b{op.rows(), 1};
  for (std::size_t i = 0; i < rhs.size(); ++i) b(i, 0) = rhs[i];
  auto x = try_modular_solve(op, b, deadline, strategy);
  if (!x) return std::nullopt;
  std::vector<Rational> out(op.rows());
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = std::move((*x)(i, 0));
  return out;
}

}  // namespace

std::size_t vech_index(std::size_t i, std::size_t j, std::size_t n) {
  if (i < j) std::swap(i, j);
  // Column j contributes (n - j) entries; offset within column is i - j.
  return j * n - j * (j + 1) / 2 + i;
}

std::vector<Rational> vech(const RatMatrix& m) {
  if (!m.is_square())
    throw std::invalid_argument("vech: matrix must be square");
  const std::size_t n = m.rows();
  std::vector<Rational> out(n * (n + 1) / 2);
  for (std::size_t j = 0; j < n; ++j)
    for (std::size_t i = j; i < n; ++i) out[vech_index(i, j, n)] = m(i, j);
  return out;
}

RatMatrix unvech(const std::vector<Rational>& v, std::size_t n) {
  if (v.size() != n * (n + 1) / 2)
    throw std::invalid_argument("unvech: size mismatch");
  RatMatrix m{n, n};
  for (std::size_t j = 0; j < n; ++j)
    for (std::size_t i = j; i < n; ++i) {
      m(i, j) = v[vech_index(i, j, n)];
      m(j, i) = m(i, j);
    }
  return m;
}

RatMatrix lyapunov_operator_vech(const RatMatrix& a, const Deadline& deadline) {
  if (!a.is_square())
    throw std::invalid_argument("lyapunov_operator_vech: A must be square");
  const std::size_t n = a.rows();
  const std::size_t big_n = n * (n + 1) / 2;
  RatMatrix op{big_n, big_n};
  // Column for the symmetric basis matrix E_{ij} (ones at (i,j),(j,i)).
  // F = A^T E_{ij} + E_{ij} A has at most 4 contributions per cell:
  //   F(r,c) = [c==j] a(i,r) + [c==i] a(j,r) + [r==i] a(j,c) + [r==j] a(i,c)
  // (drop the first and third term's twin when i == j, where E has a
  // single 1 at (i,i)).  F only has entries in rows/columns i and j, so
  // the dense two-matrix-products assembly (O(n^3) rational multiplies
  // per column, O(n^5) total) reduces to O(n) copies per column.
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t i = j; i < n; ++i) {
      deadline.check();
      const std::size_t col = vech_index(i, j, n);
      const auto cell = [&](std::size_t r, std::size_t c) {
        Rational v;
        if (c == j) v += a(i, r);
        if (r == j) v += a(i, c);
        if (i != j) {
          if (c == i) v += a(j, r);
          if (r == i) v += a(j, c);
        }
        return v;
      };
      // Nonzero cells of the lower triangle: row or column in {i, j}.
      for (std::size_t t = 0; t < n; ++t) {
        op(vech_index(t, j, n), col) = cell(std::max(t, j), std::min(t, j));
        if (i != j && t != j)
          op(vech_index(t, i, n), col) = cell(std::max(t, i), std::min(t, i));
      }
    }
  }
  return op;
}

std::vector<std::optional<RatMatrix>> solve_lyapunov_exact_multi(
    const RatMatrix& a, const std::vector<RatMatrix>& qs,
    const Deadline& deadline, std::optional<ExactSolverStrategy> strategy) {
  if (!a.is_square())
    throw std::invalid_argument("solve_lyapunov_exact: A must be square");
  for (const RatMatrix& q : qs) {
    if (!q.is_square() || a.rows() != q.rows())
      throw std::invalid_argument("solve_lyapunov_exact: shape mismatch");
    if (!q.is_symmetric())
      throw std::invalid_argument("solve_lyapunov_exact: Q must be symmetric");
  }
  const std::size_t n = a.rows();
  const std::size_t k = qs.size();
  std::vector<std::optional<RatMatrix>> out(k);
  if (k == 0) return out;
  RatMatrix op = lyapunov_operator_vech(a, deadline);
  RatMatrix b{op.rows(), k};
  for (std::size_t c = 0; c < k; ++c) {
    const std::vector<Rational> col = vech(-qs[c]);
    for (std::size_t i = 0; i < col.size(); ++i) b(i, c) = col[i];
  }
  std::vector<std::size_t> remaining;  // columns the modular path missed
  if (auto xm = try_modular_solve(op, b, deadline, strategy)) {
    for (std::size_t c = 0; c < k; ++c) {
      std::vector<Rational> col(op.rows());
      for (std::size_t i = 0; i < col.size(); ++i) col[i] = (*xm)(i, c);
      RatMatrix p = unvech(col, n);
      // The modular path already verified op·X == B; this recheck is the
      // belt-and-braces guarantee that what we hand out satisfies the
      // *Lyapunov equation*, independent of how op was assembled.
      if (lyapunov_residual_is_zero(a, p, qs[c], deadline)) {
        out[c] = std::move(p);
      } else {
        fallback_counter().add();
        remaining.push_back(c);
      }
    }
  } else {
    for (std::size_t c = 0; c < k; ++c) remaining.push_back(c);
  }
  if (remaining.empty()) return out;
  // Deadline-aware fraction-free solve for whatever the modular path did
  // not deliver — one Bareiss elimination shared across the leftover RHS
  // columns (RatMatrix::solve polls the deadline and any attached
  // CancelToken at row granularity).
  RatMatrix b_rest{op.rows(), remaining.size()};
  for (std::size_t c = 0; c < remaining.size(); ++c)
    for (std::size_t i = 0; i < op.rows(); ++i)
      b_rest(i, c) = b(i, remaining[c]);
  auto x = op.solve(b_rest, deadline);
  if (!x) return out;  // singular operator: the missing columns stay empty
  for (std::size_t c = 0; c < remaining.size(); ++c) {
    std::vector<Rational> col(op.rows());
    for (std::size_t i = 0; i < col.size(); ++i) col[i] = (*x)(i, c);
    out[remaining[c]] = unvech(col, n);
  }
  return out;
}

std::optional<RatMatrix> solve_lyapunov_exact(
    const RatMatrix& a, const RatMatrix& q, const Deadline& deadline,
    std::optional<ExactSolverStrategy> strategy) {
  auto ps = solve_lyapunov_exact_multi(a, {q}, deadline, strategy);
  return std::move(ps.front());
}

RatMatrix lyapunov_residual(const RatMatrix& a, const RatMatrix& p,
                            const RatMatrix& q) {
  return a.transposed() * p + p * a + q;
}

std::optional<RatMatrix> solve_lyapunov_exact_full_kronecker(
    const RatMatrix& a, const RatMatrix& q, const Deadline& deadline,
    std::optional<ExactSolverStrategy> strategy) {
  if (!a.is_square() || !q.is_square() || a.rows() != q.rows())
    throw std::invalid_argument("solve_lyapunov_exact_full_kronecker: shape");
  const std::size_t n = a.rows();
  const RatMatrix at = a.transposed();
  // vec(A^T P) = (I (x) A^T) vec(P); vec(P A) = (A^T (x) I) vec(P),
  // with vec() stacking columns.
  RatMatrix op = kronecker(RatMatrix::identity(n), at) +
                 kronecker(at, RatMatrix::identity(n));
  std::vector<Rational> rhs(n * n);
  for (std::size_t col = 0; col < n; ++col)
    for (std::size_t row = 0; row < n; ++row)
      rhs[col * n + row] = -q(row, col);
  const auto unstack = [n](const std::vector<Rational>& v) {
    RatMatrix p{n, n};
    for (std::size_t col = 0; col < n; ++col)
      for (std::size_t row = 0; row < n; ++row)
        p(row, col) = v[col * n + row];
    return p;
  };
  if (auto xm = try_modular_solve(op, rhs, deadline, strategy)) {
    RatMatrix p = unstack(*xm).symmetrized();
    if (lyapunov_residual_is_zero(a, p, q, deadline)) return p;
    fallback_counter().add();
  }
  auto x = op.solve(rhs, deadline);
  if (!x) return std::nullopt;
  return unstack(*x).symmetrized();
}

}  // namespace spiv::exact
