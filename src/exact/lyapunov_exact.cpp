#include "exact/lyapunov_exact.hpp"

#include <stdexcept>

namespace spiv::exact {

std::size_t vech_index(std::size_t i, std::size_t j, std::size_t n) {
  if (i < j) std::swap(i, j);
  // Column j contributes (n - j) entries; offset within column is i - j.
  return j * n - j * (j + 1) / 2 + i;
}

std::vector<Rational> vech(const RatMatrix& m) {
  if (!m.is_square())
    throw std::invalid_argument("vech: matrix must be square");
  const std::size_t n = m.rows();
  std::vector<Rational> out(n * (n + 1) / 2);
  for (std::size_t j = 0; j < n; ++j)
    for (std::size_t i = j; i < n; ++i) out[vech_index(i, j, n)] = m(i, j);
  return out;
}

RatMatrix unvech(const std::vector<Rational>& v, std::size_t n) {
  if (v.size() != n * (n + 1) / 2)
    throw std::invalid_argument("unvech: size mismatch");
  RatMatrix m{n, n};
  for (std::size_t j = 0; j < n; ++j)
    for (std::size_t i = j; i < n; ++i) {
      m(i, j) = v[vech_index(i, j, n)];
      m(j, i) = m(i, j);
    }
  return m;
}

RatMatrix lyapunov_operator_vech(const RatMatrix& a, const Deadline& deadline) {
  if (!a.is_square())
    throw std::invalid_argument("lyapunov_operator_vech: A must be square");
  const std::size_t n = a.rows();
  const std::size_t big_n = n * (n + 1) / 2;
  RatMatrix op{big_n, big_n};
  const RatMatrix at = a.transposed();
  // Column for the symmetric basis matrix E_{ij} (ones at (i,j),(j,i)).
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t i = j; i < n; ++i) {
      deadline.check();
      RatMatrix e{n, n};
      e(i, j) = Rational{1};
      e(j, i) = Rational{1};
      RatMatrix f = at * e + e * a;
      const std::size_t col = vech_index(i, j, n);
      for (std::size_t jj = 0; jj < n; ++jj)
        for (std::size_t ii = jj; ii < n; ++ii)
          op(vech_index(ii, jj, n), col) = f(ii, jj);
    }
  }
  return op;
}

std::optional<RatMatrix> solve_lyapunov_exact(const RatMatrix& a,
                                              const RatMatrix& q,
                                              const Deadline& deadline) {
  if (!a.is_square() || !q.is_square() || a.rows() != q.rows())
    throw std::invalid_argument("solve_lyapunov_exact: shape mismatch");
  if (!q.is_symmetric())
    throw std::invalid_argument("solve_lyapunov_exact: Q must be symmetric");
  const std::size_t n = a.rows();
  RatMatrix op = lyapunov_operator_vech(a, deadline);
  // Deadline-aware fraction-free solve (RatMatrix::solve polls the deadline
  // and any attached CancelToken at row granularity).
  auto x = op.solve(vech(-q), deadline);
  if (!x) return std::nullopt;
  return unvech(*x, n);
}

RatMatrix lyapunov_residual(const RatMatrix& a, const RatMatrix& p,
                            const RatMatrix& q) {
  return a.transposed() * p + p * a + q;
}

std::optional<RatMatrix> solve_lyapunov_exact_full_kronecker(
    const RatMatrix& a, const RatMatrix& q, const Deadline& deadline) {
  if (!a.is_square() || !q.is_square() || a.rows() != q.rows())
    throw std::invalid_argument("solve_lyapunov_exact_full_kronecker: shape");
  const std::size_t n = a.rows();
  const RatMatrix at = a.transposed();
  // vec(A^T P) = (I (x) A^T) vec(P); vec(P A) = (A^T (x) I) vec(P),
  // with vec() stacking columns.
  RatMatrix op = kronecker(RatMatrix::identity(n), at) +
                 kronecker(at, RatMatrix::identity(n));
  std::vector<Rational> rhs(n * n);
  for (std::size_t col = 0; col < n; ++col)
    for (std::size_t row = 0; row < n; ++row)
      rhs[col * n + row] = -q(row, col);
  auto x = op.solve(rhs, deadline);
  if (!x) return std::nullopt;
  RatMatrix p{n, n};
  for (std::size_t col = 0; col < n; ++col)
    for (std::size_t row = 0; row < n; ++row) p(row, col) = (*x)[col * n + row];
  return p.symmetrized();
}

}  // namespace spiv::exact
