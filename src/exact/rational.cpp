#include "exact/rational.hpp"

#include <cmath>
#include <cstdio>
#include <ostream>
#include <stdexcept>

namespace spiv::exact {

Rational::Rational(BigInt num, BigInt den)
    : num_(std::move(num)), den_(std::move(den)) {
  if (den_.is_zero()) throw std::domain_error("Rational: zero denominator");
  normalize();
}

void Rational::normalize() {
  if (den_.is_negative()) {
    num_ = num_.negated();
    den_ = den_.negated();
  }
  if (num_.is_zero()) {
    den_ = BigInt{1};
    return;
  }
  BigInt g = BigInt::gcd(num_, den_);
  if (!g.is_one()) {
    num_ /= g;
    den_ /= g;
  }
}

Rational::Rational(std::string_view text) : num_(0), den_(1) {
  // Accept forms: [+-]digits, [+-]digits/digits, [+-]digits[.digits][eE[+-]k]
  auto slash = text.find('/');
  if (slash != std::string_view::npos) {
    num_ = BigInt{text.substr(0, slash)};
    den_ = BigInt{text.substr(slash + 1)};
    if (den_.is_zero()) throw std::domain_error("Rational: zero denominator");
    normalize();
    return;
  }
  // Decimal / scientific.
  int exp10 = 0;
  auto epos = text.find_first_of("eE");
  std::string_view mant = text;
  if (epos != std::string_view::npos) {
    std::string estr{text.substr(epos + 1)};
    try {
      exp10 = std::stoi(estr);
    } catch (const std::exception&) {
      throw std::invalid_argument("Rational: bad exponent");
    }
    mant = text.substr(0, epos);
  }
  auto dot = mant.find('.');
  std::string digits;
  digits.reserve(mant.size());
  if (dot == std::string_view::npos) {
    digits.assign(mant);
  } else {
    digits.assign(mant.substr(0, dot));
    std::string_view frac = mant.substr(dot + 1);
    digits.append(frac);
    exp10 -= static_cast<int>(frac.size());
  }
  num_ = BigInt{digits};
  den_ = BigInt{1};
  if (exp10 > 0)
    num_ *= BigInt::pow10(static_cast<unsigned>(exp10));
  else if (exp10 < 0)
    den_ = BigInt::pow10(static_cast<unsigned>(-exp10));
  normalize();
}

Rational Rational::from_double_exact(double v) {
  if (!std::isfinite(v))
    throw std::domain_error("Rational: non-finite double");
  if (v == 0.0) return {};
  int exp = 0;
  double mant = std::frexp(v, &exp);  // v = mant * 2^exp, |mant| in [0.5, 1)
  // Scale mantissa to a 53-bit integer.
  auto scaled = static_cast<std::int64_t>(std::ldexp(mant, 53));
  exp -= 53;
  BigInt num{scaled};
  BigInt den{1};
  if (exp >= 0)
    num = num.shifted_left(static_cast<std::size_t>(exp));
  else
    den = den.shifted_left(static_cast<std::size_t>(-exp));
  return Rational{std::move(num), std::move(den)};
}

Rational Rational::from_double_rounded(double v, int digits) {
  if (digits < 1) throw std::invalid_argument("Rational: digits must be >= 1");
  if (!std::isfinite(v))
    throw std::domain_error("Rational: non-finite double");
  if (v == 0.0) return {};
  // printf %.*e rounds to `digits` significant decimal figures; parsing the
  // result back as an exact decimal gives the paper's rounding semantics.
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*e", digits - 1, v);
  return Rational{std::string_view{buf}};
}

Rational Rational::abs() const {
  Rational r = *this;
  r.num_ = r.num_.abs();
  return r;
}

Rational Rational::reciprocal() const {
  if (is_zero()) throw std::domain_error("Rational: reciprocal of zero");
  return Rational{den_, num_};
}

Rational& Rational::operator+=(const Rational& rhs) {
  num_ = num_ * rhs.den_ + rhs.num_ * den_;
  den_ *= rhs.den_;
  normalize();
  return *this;
}

Rational& Rational::operator-=(const Rational& rhs) {
  num_ = num_ * rhs.den_ - rhs.num_ * den_;
  den_ *= rhs.den_;
  normalize();
  return *this;
}

Rational& Rational::operator*=(const Rational& rhs) {
  // Cross-cancel before multiplying: with both operands already in lowest
  // terms, gcd(num_, rhs.den_) and gcd(rhs.num_, den_) remove every common
  // factor, so the products below are coprime and no final gcd pass on the
  // (larger) intermediates is needed.  Temporaries keep `r *= r` correct.
  const BigInt g1 = BigInt::gcd(num_, rhs.den_);
  const BigInt g2 = BigInt::gcd(rhs.num_, den_);
  BigInt new_num = (g1.is_one() ? num_ : num_ / g1) *
                   (g2.is_one() ? rhs.num_ : rhs.num_ / g2);
  BigInt new_den = (g2.is_one() ? den_ : den_ / g2) *
                   (g1.is_one() ? rhs.den_ : rhs.den_ / g1);
  num_ = std::move(new_num);
  den_ = std::move(new_den);
  if (num_.is_zero()) den_ = BigInt{1};
  return *this;
}

Rational& Rational::operator/=(const Rational& rhs) {
  if (rhs.is_zero()) throw std::domain_error("Rational: division by zero");
  // a/b / (c/d) = (a d)/(b c); cross-cancel num_ with rhs.num_ and den_
  // with rhs.den_ so the intermediates stay small.
  const BigInt g1 = BigInt::gcd(num_, rhs.num_);
  const BigInt g2 = BigInt::gcd(den_, rhs.den_);
  BigInt new_num = (g1.is_one() ? num_ : num_ / g1) *
                   (g2.is_one() ? rhs.den_ : rhs.den_ / g2);
  BigInt new_den = (g2.is_one() ? den_ : den_ / g2) *
                   (g1.is_one() ? rhs.num_ : rhs.num_ / g1);
  if (new_den.is_negative()) {
    new_num = new_num.negated();
    new_den = new_den.negated();
  }
  num_ = std::move(new_num);
  den_ = std::move(new_den);
  if (num_.is_zero()) den_ = BigInt{1};
  return *this;
}

Rational Rational::operator-() const {
  Rational r = *this;
  r.num_ = r.num_.negated();
  return r;
}

std::strong_ordering operator<=>(const Rational& a, const Rational& b) {
  // a.num/a.den vs b.num/b.den with positive denominators.
  return a.num_ * b.den_ <=> b.num_ * a.den_;
}

Rational Rational::pow(int e) const {
  if (e == 0) return Rational{1};
  if (e < 0) return reciprocal().pow(-e);
  return Rational{num_.pow(static_cast<unsigned>(e)),
                  den_.pow(static_cast<unsigned>(e))};
}

double Rational::to_double() const {
  if (num_.is_zero()) return 0.0;
  // Scale so the quotient retains ~64 bits of precision.
  const auto nb = static_cast<std::ptrdiff_t>(num_.bit_length());
  const auto db = static_cast<std::ptrdiff_t>(den_.bit_length());
  const std::ptrdiff_t shift = 64 - (nb - db);
  BigInt scaled_num = shift > 0
                          ? num_.shifted_left(static_cast<std::size_t>(shift))
                          : num_.shifted_right(static_cast<std::size_t>(-shift));
  BigInt q = scaled_num / den_;
  return std::ldexp(q.to_double(), static_cast<int>(-shift));
}

std::string Rational::to_string() const {
  if (den_.is_one()) return num_.to_string();
  return num_.to_string() + "/" + den_.to_string();
}

std::ostream& operator<<(std::ostream& os, const Rational& v) {
  return os << v.to_string();
}

BigInt isqrt(const BigInt& v) {
  if (v.is_negative()) throw std::domain_error("isqrt: negative argument");
  if (v.is_zero()) return {};
  // Newton iteration starting from a power-of-two overestimate.
  const std::size_t bits = v.bit_length();
  BigInt x = BigInt{1}.shifted_left(bits / 2 + 1);
  while (true) {
    BigInt y = (x + v / x).shifted_right(1);
    if (y >= x) break;
    x = std::move(y);
  }
  return x;
}

std::pair<Rational, Rational> sqrt_bracket(const Rational& v,
                                           unsigned precision_bits) {
  if (v.is_negative()) throw std::domain_error("sqrt_bracket: negative argument");
  if (v.is_zero()) return {Rational{}, Rational{}};
  // sqrt(n/d) = sqrt(n*d)/d.  Scale by 4^precision_bits for extra bits.
  BigInt nd = v.num() * v.den();
  BigInt scaled = nd.shifted_left(2 * static_cast<std::size_t>(precision_bits));
  BigInt s = isqrt(scaled);
  BigInt denom = v.den().shifted_left(precision_bits);
  Rational lo{s, denom};
  Rational hi{s + BigInt{1}, denom};
  return {std::move(lo), std::move(hi)};
}

}  // namespace spiv::exact
