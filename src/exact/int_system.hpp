// spiv::exact — shared integer form of a rational linear system.
//
// Both exact solvers (fraction-free Bareiss in matrix.cpp and the
// multi-modular CRT solver in modular.cpp) start the same way: multiply
// each row of the rational augmented system [A | B] by the LCM of its
// denominators so all arithmetic happens over integers.  This header keeps
// that preprocessing in one place; `row_scales` records the per-row LCMs
// needed to undo the scaling (determinants) — the *solution* of the scaled
// system is unchanged, since scaling a row of [A | b] scales both sides.
#pragma once

#include <algorithm>
#include <bit>
#include <vector>

#include "exact/matrix.hpp"

namespace spiv::exact::detail {

/// Integer augmented system [M | R] with per-row scale factors and the
/// Hadamard-style prime budgets the multi-modular solvers run against.
/// The budgets are computed once here, at denominator-clearing time, so a
/// solve never rescans the full matrix/RHS to rebound itself (they used to
/// be recomputed from scratch on every solve call).
struct IntSystem {
  std::vector<std::vector<BigInt>> m;
  std::vector<std::vector<BigInt>> rhs;
  std::vector<BigInt> row_scales;
  /// Bits of a row-Hadamard bound on |det(M)| (+1 slack): the CRT budget
  /// for determinant_modular.
  std::size_t det_bound_bits = 0;
  /// Bits the CRT modulus must reach so balanced rational reconstruction
  /// of the solution of M x = R is guaranteed: by Cramer every numerator
  /// is a det of M with a column swapped for an R column and every
  /// denominator divides det(M); both are below the column-Hadamard bound,
  /// and balanced reconstruction needs the modulus to exceed
  /// 2 * max(num, den)^2.  Zero when there is no RHS.
  std::size_t solve_budget_bits = 0;
};

/// Clear denominators row-wise; `b` may be nullptr (no right-hand side).
inline IntSystem clear_denominators(const RatMatrix& a, const RatMatrix* b) {
  const std::size_t n = a.rows();
  const std::size_t k = b ? b->cols() : 0;
  IntSystem sys;
  sys.m.assign(n, std::vector<BigInt>(a.cols()));
  sys.rhs.assign(n, std::vector<BigInt>(k));
  sys.row_scales.assign(n, BigInt{1});
  for (std::size_t i = 0; i < n; ++i) {
    BigInt& l = sys.row_scales[i];
    auto fold = [&l](const Rational& v) {
      if (!v.den().is_one()) l = l / BigInt::gcd(l, v.den()) * v.den();
    };
    for (std::size_t j = 0; j < a.cols(); ++j) fold(a(i, j));
    for (std::size_t j = 0; j < k; ++j) fold((*b)(i, j));
    for (std::size_t j = 0; j < a.cols(); ++j)
      sys.m[i][j] = a(i, j).num() * (l / a(i, j).den());
    for (std::size_t j = 0; j < k; ++j)
      sys.rhs[i][j] = (*b)(i, j).num() * (l / (*b)(i, j).den());
  }
  // Row bound: |det| <= prod_i ||row_i||_2 <= prod_i sqrt(n) max_j |m_ij|.
  const std::size_t half_log = (std::bit_width(n) + 1) / 2;
  std::size_t det_bits = 1;
  for (const auto& row : sys.m) {
    std::size_t row_bits = 0;
    for (const BigInt& v : row) row_bits = std::max(row_bits, v.bit_length());
    det_bits += row_bits + half_log + 1;
  }
  sys.det_bound_bits = det_bits;
  if (b) {
    // Column bound for the Cramer numerators/denominators (see the field
    // comment above).
    std::size_t sum_cols = 0;
    for (std::size_t j = 0; j < n; ++j) {
      std::size_t col_bits = 0;
      for (std::size_t i = 0; i < n; ++i)
        col_bits = std::max(col_bits, sys.m[i][j].bit_length());
      sum_cols += col_bits + half_log + 1;
    }
    std::size_t b_bits = 0;
    for (const auto& row : sys.rhs)
      for (const BigInt& v : row) b_bits = std::max(b_bits, v.bit_length());
    const std::size_t num_bits = sum_cols + b_bits + half_log + 1;
    sys.solve_budget_bits = 2 * num_bits + 2;
  }
  return sys;
}

}  // namespace spiv::exact::detail
