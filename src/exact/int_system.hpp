// spiv::exact — shared integer form of a rational linear system.
//
// Both exact solvers (fraction-free Bareiss in matrix.cpp and the
// multi-modular CRT solver in modular.cpp) start the same way: multiply
// each row of the rational augmented system [A | B] by the LCM of its
// denominators so all arithmetic happens over integers.  This header keeps
// that preprocessing in one place; `row_scales` records the per-row LCMs
// needed to undo the scaling (determinants) — the *solution* of the scaled
// system is unchanged, since scaling a row of [A | b] scales both sides.
#pragma once

#include <vector>

#include "exact/matrix.hpp"

namespace spiv::exact::detail {

/// Integer augmented system [M | R] with per-row scale factors.
struct IntSystem {
  std::vector<std::vector<BigInt>> m;
  std::vector<std::vector<BigInt>> rhs;
  std::vector<BigInt> row_scales;
};

/// Clear denominators row-wise; `b` may be nullptr (no right-hand side).
inline IntSystem clear_denominators(const RatMatrix& a, const RatMatrix* b) {
  const std::size_t n = a.rows();
  const std::size_t k = b ? b->cols() : 0;
  IntSystem sys;
  sys.m.assign(n, std::vector<BigInt>(a.cols()));
  sys.rhs.assign(n, std::vector<BigInt>(k));
  sys.row_scales.assign(n, BigInt{1});
  for (std::size_t i = 0; i < n; ++i) {
    BigInt& l = sys.row_scales[i];
    auto fold = [&l](const Rational& v) {
      if (!v.den().is_one()) l = l / BigInt::gcd(l, v.den()) * v.den();
    };
    for (std::size_t j = 0; j < a.cols(); ++j) fold(a(i, j));
    for (std::size_t j = 0; j < k; ++j) fold((*b)(i, j));
    for (std::size_t j = 0; j < a.cols(); ++j)
      sys.m[i][j] = a(i, j).num() * (l / a(i, j).den());
    for (std::size_t j = 0; j < k; ++j)
      sys.rhs[i][j] = (*b)(i, j).num() * (l / (*b)(i, j).den());
  }
  return sys;
}

}  // namespace spiv::exact::detail
