// spiv::exact — exact (symbolic) solution of the continuous-time Lyapunov
// equation  A^T P + P A + Q = 0.
//
// This is the paper's `eq-smt` synthesis method: the equation is turned into
// a linear system over the n(n+1)/2 distinct entries of the symmetric P
// (the "vech" parameterization) and solved with exact rational Gaussian
// elimination.  Coefficient growth makes this intrinsically expensive; at
// the paper's sizes 15/18 it exceeds any practical budget, which we surface
// via the cooperative Deadline.
#pragma once

#include <optional>

#include "exact/matrix.hpp"
#include "exact/modular.hpp"
#include "exact/timeout.hpp"

namespace spiv::exact {

/// Index of entry (i, j), i >= j, in the vech (column-stacked lower
/// triangle) ordering of a symmetric n x n matrix.
[[nodiscard]] std::size_t vech_index(std::size_t i, std::size_t j,
                                     std::size_t n);

/// vech(M): stack the lower triangle of symmetric M column by column.
[[nodiscard]] std::vector<Rational> vech(const RatMatrix& m);

/// Inverse of vech for an n x n symmetric matrix.
[[nodiscard]] RatMatrix unvech(const std::vector<Rational>& v, std::size_t n);

/// The matrix of the linear map P -> A^T P + P A restricted to symmetric
/// matrices, in vech coordinates (size N x N with N = n(n+1)/2).
[[nodiscard]] RatMatrix lyapunov_operator_vech(const RatMatrix& a,
                                               const Deadline& deadline = {});

/// Solve A^T P + P A + Q = 0 exactly for symmetric P.
/// Q must be symmetric.  Returns nullopt when the Lyapunov operator is
/// singular (i.e. A and -A share an eigenvalue).  Throws TimeoutError when
/// the deadline expires mid-solve.  `strategy` overrides the process-wide
/// $SPIV_EXACT_SOLVER selection (verify::VerifyContext threads it through).
[[nodiscard]] std::optional<RatMatrix> solve_lyapunov_exact(
    const RatMatrix& a, const RatMatrix& q, const Deadline& deadline = {},
    std::optional<ExactSolverStrategy> strategy = {});

/// Batched variant: solve A^T P_c + P_c A + Q_c = 0 for every Q in `qs`
/// against the SAME A.  The Lyapunov operator is assembled once and all
/// right-hand sides share one elimination per prime (modular path) or one
/// Bareiss forward pass (fallback), so k solves cost barely more than one.
/// out[c] is empty iff the operator is singular or that column failed the
/// residual check and the fallback.  Throws TimeoutError on deadline.
[[nodiscard]] std::vector<std::optional<RatMatrix>> solve_lyapunov_exact_multi(
    const RatMatrix& a, const std::vector<RatMatrix>& qs,
    const Deadline& deadline = {},
    std::optional<ExactSolverStrategy> strategy = {});

/// Residual A^T P + P A + Q (all-zero iff P solves the equation).
[[nodiscard]] RatMatrix lyapunov_residual(const RatMatrix& a,
                                          const RatMatrix& p,
                                          const RatMatrix& q);

/// Ablation variant of solve_lyapunov_exact: ignores symmetry and solves
/// the full n^2-unknown Kronecker system (I (x) A^T + A^T (x) I) vec(P) =
/// -vec(Q).  Roughly 8x the elimination work of the vech formulation —
/// kept to quantify what the symmetric parameterization buys
/// (see bench/ablation_exact_solvers).
[[nodiscard]] std::optional<RatMatrix> solve_lyapunov_exact_full_kronecker(
    const RatMatrix& a, const RatMatrix& q, const Deadline& deadline = {},
    std::optional<ExactSolverStrategy> strategy = {});

}  // namespace spiv::exact
