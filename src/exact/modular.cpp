#include "exact/modular.hpp"

#include <atomic>
#include <bit>
#include <chrono>
#include <cstring>
#include <iostream>
#include <mutex>
#include <stdexcept>
#include <vector>

#include "core/env.hpp"
#include "core/parallel.hpp"
#include "exact/int_system.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace spiv::exact {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Accumulates wall-clock into a phase total even when the guarded section
/// throws (deadline expiry mid-reconstruction must still be attributed).
struct PhaseTimer {
  explicit PhaseTimer(double& acc) : acc_(acc) {}
  ~PhaseTimer() { acc_ += seconds_since(t0_); }
  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

 private:
  double& acc_;
  Clock::time_point t0_ = Clock::now();
};

/// Hot-path metric handles, resolved once.  Constructed eagerly below so
/// the whole family is present in `spiv-serve metrics` / --metrics-out
/// output even before the first modular solve runs.
struct Metrics {
  obs::Histogram& prime_solve_seconds = obs::Registry::global().histogram(
      "spiv_modular_prime_solve_seconds");
  // Per-solve phase totals (wall clock, driver-attributed).
  obs::Histogram& elim_seconds =
      obs::Registry::global().histogram("spiv_modular_elim_seconds");
  obs::Histogram& crt_seconds =
      obs::Registry::global().histogram("spiv_modular_crt_seconds");
  obs::Histogram& reconstruct_seconds = obs::Registry::global().histogram(
      "spiv_modular_reconstruct_seconds");
  obs::Histogram& verify_seconds =
      obs::Registry::global().histogram("spiv_modular_verify_seconds");
  obs::Counter& primes_used =
      obs::Registry::global().counter("spiv_modular_primes_used_total");
  obs::Counter& unlucky_primes =
      obs::Registry::global().counter("spiv_modular_unlucky_primes_total");
  obs::Counter& early_exits =
      obs::Registry::global().counter("spiv_modular_early_exit_total");
  obs::Counter& solves =
      obs::Registry::global().counter("spiv_modular_solves_total");
  obs::Counter& fallbacks =
      obs::Registry::global().counter("spiv_modular_fallback_total");
};

Metrics& metrics() {
  static Metrics m;
  return m;
}

[[maybe_unused]] const bool kMetricsRegistered = (metrics(), true);

// ------------------------------------------------------- prime generation

std::uint64_t mulmod_u64(std::uint64_t a, std::uint64_t b, std::uint64_t m) {
  return static_cast<std::uint64_t>(
      static_cast<unsigned __int128>(a) * b % m);
}

std::uint64_t powmod_u64(std::uint64_t base, std::uint64_t e,
                         std::uint64_t m) {
  std::uint64_t r = 1;
  base %= m;
  while (e != 0) {
    if (e & 1u) r = mulmod_u64(r, base, m);
    base = mulmod_u64(base, base, m);
    e >>= 1;
  }
  return r;
}

/// Deterministic Miller–Rabin for 64-bit integers (the 12-base set covers
/// all n < 2^64).  Only used when extending the cached prime sequence.
bool is_prime_u64(std::uint64_t n) {
  if (n < 2) return false;
  for (std::uint64_t p : {2ull, 3ull, 5ull, 7ull, 11ull, 13ull, 17ull, 19ull,
                          23ull, 29ull, 31ull, 37ull}) {
    if (n % p == 0) return n == p;
  }
  std::uint64_t d = n - 1;
  unsigned r = 0;
  while ((d & 1u) == 0) {
    d >>= 1;
    ++r;
  }
  for (std::uint64_t a : {2ull, 3ull, 5ull, 7ull, 11ull, 13ull, 17ull, 19ull,
                          23ull, 29ull, 31ull, 37ull}) {
    std::uint64_t x = powmod_u64(a, d, n);
    if (x == 1 || x == n - 1) continue;
    bool witness = true;
    for (unsigned i = 1; i < r; ++i) {
      x = mulmod_u64(x, x, n);
      if (x == n - 1) {
        witness = false;
        break;
      }
    }
    if (witness) return false;
  }
  return true;
}

// ------------------------------------------------------- per-prime kernel

enum class PrimeStatus { Abandoned, Unlucky, Ok };

struct PrimeSolve {
  std::uint64_t prime = 0;
  PrimeStatus status = PrimeStatus::Abandoned;
  /// Plain (non-Montgomery) solution residues, row-major n x k.
  std::vector<std::uint64_t> x;
};

/// Solve the integer system mod `out.prime` with dense Gaussian
/// elimination in Montgomery form.  Never throws: an expired deadline
/// leaves status == Abandoned (the caller re-checks and raises), a zero
/// determinant mod p yields Unlucky.
void solve_one_prime(const detail::IntSystem& sys, std::size_t n,
                     std::size_t k, const Deadline& deadline,
                     PrimeSolve& out) {
  const auto t0 = Clock::now();
  const Montgomery62 mont{out.prime};
  const std::uint64_t p = out.prime;
  const std::size_t w = n + k;
  std::vector<std::uint64_t> t(n * w);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j)
      t[i * w + j] = mont.to_mont(sys.m[i][j].mod_u64(p));
    for (std::size_t c = 0; c < k; ++c)
      t[i * w + n + c] = mont.to_mont(sys.rhs[i][c].mod_u64(p));
  }
  for (std::size_t col = 0; col < n; ++col) {
    if (deadline.expired()) return;  // status stays Abandoned
    std::size_t pivot = n;
    for (std::size_t r = col; r < n; ++r) {
      if (t[r * w + col] != 0) {
        pivot = r;
        break;
      }
    }
    if (pivot == n) {
      out.status = PrimeStatus::Unlucky;  // det == 0 mod p
      return;
    }
    if (pivot != col)
      std::swap_ranges(t.begin() + static_cast<std::ptrdiff_t>(pivot * w),
                       t.begin() + static_cast<std::ptrdiff_t>((pivot + 1) * w),
                       t.begin() + static_cast<std::ptrdiff_t>(col * w));
    const std::uint64_t inv_pivot = mont.inv(t[col * w + col]);
    for (std::size_t r = col + 1; r < n; ++r) {
      const std::uint64_t lead = t[r * w + col];
      if (lead == 0) continue;
      const std::uint64_t f = mont.mul(lead, inv_pivot);
      t[r * w + col] = 0;
      for (std::size_t j = col + 1; j < w; ++j)
        t[r * w + j] = mont.sub(t[r * w + j], mont.mul(f, t[col * w + j]));
    }
  }
  // Back substitution; diagonal inverses are shared across RHS columns.
  std::vector<std::uint64_t> dinv(n);
  for (std::size_t i = 0; i < n; ++i) dinv[i] = mont.inv(t[i * w + i]);
  out.x.assign(n * k, 0);
  std::vector<std::uint64_t> xm(n);
  for (std::size_t c = 0; c < k; ++c) {
    for (std::size_t i = n; i-- > 0;) {
      std::uint64_t acc = t[i * w + n + c];
      for (std::size_t j = i + 1; j < n; ++j)
        acc = mont.sub(acc, mont.mul(t[i * w + j], xm[j]));
      xm[i] = mont.mul(acc, dinv[i]);
    }
    for (std::size_t i = 0; i < n; ++i)
      out.x[i * k + c] = mont.from_mont(xm[i]);
  }
  out.status = PrimeStatus::Ok;
  metrics().prime_solve_seconds.observe(seconds_since(t0));
}

struct PrimeDet {
  std::uint64_t prime = 0;
  PrimeStatus status = PrimeStatus::Abandoned;
  std::uint64_t det = 0;  ///< plain residue (0 is a legitimate value here)
};

void det_one_prime(const detail::IntSystem& sys, std::size_t n,
                   const Deadline& deadline, PrimeDet& out) {
  const auto t0 = Clock::now();
  const Montgomery62 mont{out.prime};
  const std::uint64_t p = out.prime;
  std::vector<std::uint64_t> t(n * n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      t[i * n + j] = mont.to_mont(sys.m[i][j].mod_u64(p));
  std::uint64_t det = mont.one();
  bool negate = false;
  for (std::size_t col = 0; col < n; ++col) {
    if (deadline.expired()) return;
    std::size_t pivot = n;
    for (std::size_t r = col; r < n; ++r) {
      if (t[r * n + col] != 0) {
        pivot = r;
        break;
      }
    }
    if (pivot == n) {
      out.det = 0;  // det == 0 mod p: the answer, not an unlucky prime
      out.status = PrimeStatus::Ok;
      return;
    }
    if (pivot != col) {
      std::swap_ranges(t.begin() + static_cast<std::ptrdiff_t>(pivot * n),
                       t.begin() + static_cast<std::ptrdiff_t>((pivot + 1) * n),
                       t.begin() + static_cast<std::ptrdiff_t>(col * n));
      negate = !negate;
    }
    det = mont.mul(det, t[col * n + col]);
    const std::uint64_t inv_pivot = mont.inv(t[col * n + col]);
    for (std::size_t r = col + 1; r < n; ++r) {
      const std::uint64_t lead = t[r * n + col];
      if (lead == 0) continue;
      const std::uint64_t f = mont.mul(lead, inv_pivot);
      t[r * n + col] = 0;
      for (std::size_t j = col + 1; j < n; ++j)
        t[r * n + j] = mont.sub(t[r * n + j], mont.mul(f, t[col * n + j]));
    }
  }
  det = mont.from_mont(det);
  if (negate && det != 0) det = p - det;
  out.det = det;
  out.status = PrimeStatus::Ok;
  metrics().prime_solve_seconds.observe(seconds_since(t0));
}

// --------------------------------------------------------------- CRT fold

/// a^{-1} mod m (extended Euclid), for gcd(a, m) == 1; result in [0, m).
BigInt modinv_big(const BigInt& a, const BigInt& m) {
  BigInt r0 = m;
  BigInt r1 = a % m;
  if (r1.is_negative()) r1 += m;
  BigInt t0{0}, t1{1};
  while (!r1.is_zero()) {
    auto [q, r2] = BigInt::div_mod(r0, r1);
    BigInt t2 = t0 - q * t1;
    r0 = std::move(r1);
    r1 = std::move(r2);
    t0 = std::move(t1);
    t1 = std::move(t2);
  }
  if (t0.is_negative()) t0 += m;
  return t0;
}

/// Shared (entry-independent) data for one batched CRT fold: the per-prime
/// delta multipliers and the balanced product tree that combines per-prime
/// deltas into one group value.  Built once per batch on the driver; read
/// concurrently by every entry-block worker.
struct FoldPlan {
  std::vector<std::uint64_t> primes;
  std::vector<std::uint64_t> minv;  ///< (m mod p)^{-1} mod p, plain residue
  struct Pair {
    BigInt m_lo, m_hi;
    BigInt inv_lo;  ///< m_lo^{-1} mod m_hi
  };
  /// levels[l] pairs adjacent subtree moduli; an odd tail passes through.
  std::vector<std::vector<Pair>> levels;
  BigInt group;  ///< product of all folded primes
};

FoldPlan make_fold_plan(const std::vector<std::uint64_t>& primes,
                        const BigInt& m) {
  FoldPlan plan;
  plan.primes = primes;
  plan.minv.reserve(primes.size());
  for (std::uint64_t p : primes) {
    const Montgomery62 mont{p};
    plan.minv.push_back(
        mont.from_mont(mont.inv(mont.to_mont(m.mod_u64(p)))));
  }
  std::vector<BigInt> mods;
  mods.reserve(primes.size());
  for (std::uint64_t p : primes)
    mods.emplace_back(static_cast<std::int64_t>(p));
  while (mods.size() > 1) {
    std::vector<FoldPlan::Pair> level;
    std::vector<BigInt> next;
    level.reserve(mods.size() / 2);
    next.reserve((mods.size() + 1) / 2);
    std::size_t i = 0;
    for (; i + 1 < mods.size(); i += 2) {
      FoldPlan::Pair pair{mods[i], mods[i + 1],
                          modinv_big(mods[i], mods[i + 1])};
      next.push_back(pair.m_lo * pair.m_hi);
      level.push_back(std::move(pair));
    }
    if (i < mods.size()) next.push_back(std::move(mods[i]));
    mods = std::move(next);
    plan.levels.push_back(std::move(level));
  }
  plan.group = mods.empty() ? BigInt{1} : std::move(mods.front());
  return plan;
}

/// Combine the first `count` per-prime deltas in `vals` (vals[i] mod
/// plan.primes[i]) into the unique value mod plan.group, bottom-up through
/// the product tree.  `vals` is caller-owned scratch, overwritten in place.
BigInt combine_fold_tree(const FoldPlan& plan, std::vector<BigInt>& vals,
                         std::size_t count) {
  for (const auto& level : plan.levels) {
    std::size_t out = 0;
    std::size_t i = 0;
    for (const FoldPlan::Pair& pair : level) {
      // v = v_lo + m_lo * (((v_hi - v_lo) mod m_hi) * inv_lo mod m_hi)
      BigInt t = vals[i + 1] - vals[i];
      t %= pair.m_hi;
      if (t.is_negative()) t += pair.m_hi;
      t *= pair.inv_lo;
      t %= pair.m_hi;
      vals[out++] = vals[i] + pair.m_lo * t;
      i += 2;
    }
    if (i < count) vals[out++] = std::move(vals[i]);
    count = out;
  }
  return std::move(vals.front());
}

}  // namespace

namespace detail {

void crt_fold_batch(std::vector<BigInt>& xs, BigInt& m,
                    const std::vector<const std::uint64_t*>& residues,
                    const std::vector<std::uint64_t>& primes,
                    std::size_t jobs) {
  if (primes.empty()) return;
  const FoldPlan plan = make_fold_plan(primes, m);
  const std::size_t np = primes.size();
  core::for_each_block(
      xs.size(), jobs,
      [&](std::size_t b0, std::size_t b1, const CancelToken& /*token*/) {
        std::vector<BigInt> vals(np);
        for (std::size_t e = b0; e < b1; ++e) {
          // Per-prime delta: t_p = (r_p - x_e) * m^{-1} (mod p), so that
          // x_e + m * CRT(t_p...) matches every folded prime and stays
          // congruent to x_e mod m.
          for (std::size_t i = 0; i < np; ++i) {
            const std::uint64_t p = primes[i];
            const std::uint64_t xe = xs[e].mod_u64(p);
            const std::uint64_t r = residues[i][e];
            const std::uint64_t diff = r >= xe ? r - xe : r + (p - xe);
            vals[i] = BigInt{static_cast<std::int64_t>(
                mulmod_u64(diff, plan.minv[i], p))};
          }
          BigInt t = combine_fold_tree(plan, vals, np);
          if (!t.is_zero()) xs[e] += m * t;
        }
      });
  m *= plan.group;
}

}  // namespace detail

// --------------------------------------------------------------- montgomery

Montgomery62::Montgomery62(std::uint64_t p) : p_(p) {
  if (p < 3 || (p & 1u) == 0 || (p >> 62) != 0)
    throw std::invalid_argument("Montgomery62: need an odd modulus < 2^62");
  // Newton–Hensel: x <- x(2 - p x) doubles the number of correct low bits,
  // so six iterations from x = p (3 correct bits for odd p) reach 2^64.
  std::uint64_t inv = p;
  for (int i = 0; i < 6; ++i) inv *= 2 - p * inv;
  ninv_ = ~inv + 1;
  r1_ = static_cast<std::uint64_t>(
      (static_cast<unsigned __int128>(1) << 64) % p);
  r2_ = static_cast<std::uint64_t>(
      static_cast<unsigned __int128>(r1_) * r1_ % p);
}

std::uint64_t Montgomery62::inv(std::uint64_t a_mont) const {
  if (a_mont == 0)
    throw std::domain_error("Montgomery62: inverse of zero");
  // Fermat: a^(p-2) mod p, entirely in Montgomery form.
  std::uint64_t result = r1_;
  std::uint64_t base = a_mont;
  std::uint64_t e = p_ - 2;
  while (e != 0) {
    if (e & 1u) result = mul(result, base);
    base = mul(base, base);
    e >>= 1;
  }
  return result;
}

// ----------------------------------------------------------------- primes

std::uint64_t modular_prime(std::size_t index) {
  static std::mutex mutex;
  static std::vector<std::uint64_t> primes;
  std::lock_guard<std::mutex> lock(mutex);
  while (primes.size() <= index) {
    std::uint64_t candidate =
        primes.empty() ? (std::uint64_t{1} << 62) - 1 : primes.back() - 2;
    while (!is_prime_u64(candidate)) candidate -= 2;
    primes.push_back(candidate);
  }
  return primes[index];
}

// --------------------------------------------------------------- strategy

ExactSolverStrategy exact_solver_strategy() {
  // Parsing and the warn-once diagnostic live in core::env, next to every
  // other SPIV_* variable; this is just the enum translation.
  switch (core::env::exact_solver()) {
    case core::env::ExactSolver::Bareiss: return ExactSolverStrategy::Bareiss;
    case core::env::ExactSolver::Modular: return ExactSolverStrategy::Modular;
    case core::env::ExactSolver::Auto: break;
  }
  return ExactSolverStrategy::Auto;
}

bool modular_preferred(std::size_t dim, ExactSolverStrategy strategy) {
  switch (strategy) {
    case ExactSolverStrategy::Bareiss: return false;
    case ExactSolverStrategy::Modular: return dim > 0;
    case ExactSolverStrategy::Auto: return dim >= 6;
  }
  return false;
}

// ---------------------------------------------------------- reconstruction

std::optional<Rational> rational_reconstruct(const BigInt& u, const BigInt& m,
                                             const BigInt& bound) {
  // Half-extended Euclid on (m, u): every intermediate (r_i, t_i) satisfies
  // r_i == t_i * u (mod m); stop at the first remainder <= bound (Wang).
  BigInt r0 = m, r1 = u;
  BigInt t0{0}, t1{1};
  while (r1 > bound) {
    auto [q, r2] = BigInt::div_mod(r0, r1);
    r0 = std::move(r1);
    r1 = std::move(r2);
    BigInt t2 = t0 - q * t1;
    t0 = std::move(t1);
    t1 = std::move(t2);
  }
  if (t1.is_zero()) return std::nullopt;
  BigInt num = std::move(r1);
  BigInt den = std::move(t1);
  if (den.is_negative()) {
    num = num.negated();
    den = den.negated();
  }
  if (den > bound) return std::nullopt;
  if (!BigInt::gcd(num, den).is_one()) return std::nullopt;
  return Rational{std::move(num), std::move(den)};
}

// ------------------------------------------------------------------ solve

namespace {

/// Cached reconstruction candidate for one solution entry.  Entries whose
/// denominators are small reconstruct at early checkpoints; afterwards
/// each new prime only costs the word-mod congruence recheck in
/// revalidate_candidates, never another Euclid pass.
struct EntryCand {
  Rational value;
  bool valid = false;
};

/// Drop every cached candidate that disagrees with a freshly folded prime:
/// a surviving candidate satisfies num == den * x (mod old m) and (mod p)
/// for each new p, hence (mod current m) by CRT — with unchanged Wang
/// bounds and gcd 1 it is *the* unique reconstruction at the current
/// modulus, no Euclid needed.
void revalidate_candidates(std::vector<EntryCand>& cands,
                           const std::vector<BigInt>& xs,
                           const std::vector<std::uint64_t>& fresh_primes) {
  if (fresh_primes.empty()) return;
  for (std::size_t e = 0; e < cands.size(); ++e) {
    EntryCand& c = cands[e];
    if (!c.valid) continue;
    for (std::uint64_t p : fresh_primes) {
      const std::uint64_t num_p = c.value.num().mod_u64(p);
      const std::uint64_t den_p = c.value.den().mod_u64(p);
      const std::uint64_t xe_p = xs[e].mod_u64(p);
      if (num_p != mulmod_u64(den_p, xe_p, p)) {
        c.valid = false;
        break;
      }
    }
  }
}

/// lcm(d, den) with a cheap divisibility pre-check: on the fast path every
/// denominator divides det(M), so after the first entry the remainder test
/// short-circuits the det-sized gcd.
void fold_lcm(BigInt& d, const BigInt& den) {
  if (den.is_one() || den == d) return;
  if (d.is_one()) {
    d = den;
    return;
  }
  if ((d % den).is_zero()) return;
  d = d / BigInt::gcd(d, den) * den;
}

}  // namespace

std::optional<RatMatrix> solve_rational_modular(const RatMatrix& a,
                                                const RatMatrix& b,
                                                const Deadline& deadline,
                                                const ModularOptions& options) {
  if (!a.is_square() || b.rows() != a.rows())
    throw std::invalid_argument("solve_rational_modular: shape mismatch");
  const std::size_t n = a.rows();
  const std::size_t k = b.cols();
  if (n == 0) return RatMatrix{0, k};
  metrics().solves.add();
  deadline.check();
  const detail::IntSystem sys = detail::clear_denominators(a, &b);
  const std::size_t budget_bits = sys.solve_budget_bits;
  const std::size_t jobs = core::resolve_jobs(options.jobs);
  const std::size_t batch = std::max<std::size_t>(jobs, 8);
  std::size_t checkpoint =
      options.checkpoint != 0
          ? options.checkpoint
          : core::env::modular_checkpoint().value_or(4);

  const std::size_t entries = n * k;
  std::vector<BigInt> xs(entries);  // CRT images of the solution entries
  BigInt m{1};
  std::size_t prime_index = 0;
  std::uint64_t primes_used = 0;
  std::uint64_t unlucky = 0;
  std::vector<EntryCand> cands(entries);
  std::vector<std::uint64_t> fresh_primes;  // folded since the last attempt
  double elim_s = 0, crt_s = 0, rec_s = 0, ver_s = 0;

  auto finish = [&](bool early, std::optional<RatMatrix> result) {
    metrics().primes_used.add(primes_used);
    metrics().unlucky_primes.add(unlucky);
    if (early && result) metrics().early_exits.add();
    metrics().elim_seconds.observe(elim_s);
    metrics().crt_seconds.observe(crt_s);
    metrics().reconstruct_seconds.observe(rec_s);
    metrics().verify_seconds.observe(ver_s);
    if (options.stats) {
      ModularStats s;
      s.primes_used = primes_used;
      s.unlucky_primes = unlucky;
      s.early_exit = early && result.has_value();
      s.elim_seconds = elim_s;
      s.crt_seconds = crt_s;
      s.reconstruct_seconds = rec_s;
      s.verify_seconds = ver_s;
      *options.stats = s;
    }
    return result;
  };

  // Output-sensitive trial reconstruction.  Revalidates cached candidates
  // against the primes folded since the last attempt (word mods only),
  // then fills the gaps: first via the shared denominator — by Cramer all
  // true denominators divide det(M), so x_e * d_shared mod m lifted to the
  // balanced range usually IS the numerator times a cofactor of d_shared,
  // one mulmod + gcd instead of an extended-Euclid pass — and only falls
  // back to the full Euclid reconstruction when that misses.  With
  // `strict` every cache and shortcut is bypassed (the final full-budget
  // retry, so a pathological shared-denominator interaction can never
  // wedge the solver into the Bareiss fallback).
  auto attempt = [&](bool strict) -> std::optional<RatMatrix> {
    obs::Span span{"modular-reconstruct"};
    PhaseTimer timer{rec_s};
    if (strict)
      for (EntryCand& c : cands) c.valid = false;
    revalidate_candidates(cands, xs, fresh_primes);
    fresh_primes.clear();
    const BigInt bound = isqrt((m - BigInt{1}) / BigInt{2});
    BigInt d_shared{1};
    RatMatrix x{n, k};
    for (std::size_t e = 0; e < entries; ++e) {
      deadline.check();
      EntryCand& c = cands[e];
      if (!c.valid && !strict && !d_shared.is_one()) {
        BigInt w = xs[e] * d_shared % m;
        if (w + w > m) w -= m;  // balanced lift: w in (-m/2, m/2]
        const BigInt g = BigInt::gcd(w, d_shared);
        BigInt num = w / g;
        BigInt den = d_shared / g;
        if (num.abs() <= bound && den <= bound) {
          c.value = Rational{std::move(num), std::move(den)};
          c.valid = true;
        }
      }
      if (!c.valid) {
        auto entry = rational_reconstruct(xs[e], m, bound);
        if (!entry) return std::nullopt;  // fold more primes
        c.value = std::move(*entry);
        c.valid = true;
      }
      fold_lcm(d_shared, c.value.den());
      x(e / k, e % k) = c.value;
    }
    return x;
  };

  // Exact A·X == B over the integer system, parallel over row blocks.
  // Scales X by the shared denominator D first (by Cramer every entry's
  // denominator divides det(M), so D stays one det-sized value) — rational
  // accumulation would re-run a multi-thousand-bit gcd per term.
  auto verify_solution = [&](const RatMatrix& x) -> bool {
    obs::Span span{"modular-verify"};
    PhaseTimer timer{ver_s};
    BigInt d{1};
    for (std::size_t e = 0; e < entries; ++e) {
      deadline.check();
      fold_lcm(d, x(e / k, e % k).den());
    }
    std::vector<BigInt> xi(entries);  // X·D, exact integers
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t c = 0; c < k; ++c)
        xi[i * k + c] = x(i, c).num() * (d / x(i, c).den());
    std::atomic<bool> ok{true};
    std::atomic<bool> abandoned{false};
    core::for_each_block(
        n, jobs,
        [&](std::size_t r0, std::size_t r1, const CancelToken& /*token*/) {
          for (std::size_t i = r0; i < r1; ++i) {
            if (!ok.load(std::memory_order_relaxed)) return;
            if (deadline.expired()) {  // jobs must not throw; driver raises
              abandoned.store(true, std::memory_order_relaxed);
              return;
            }
            for (std::size_t c = 0; c < k; ++c) {
              BigInt acc;
              for (std::size_t j = 0; j < n; ++j) {
                if (sys.m[i][j].is_zero() || xi[j * k + c].is_zero()) continue;
                acc += sys.m[i][j] * xi[j * k + c];
              }
              if (acc != sys.rhs[i][c] * d) {
                ok.store(false, std::memory_order_relaxed);
                return;
              }
            }
          }
        });
    if (abandoned.load()) deadline.check();
    return ok.load();
  };

  while (m.bit_length() < budget_bits) {
    deadline.check();
    // A nonsingular system sheds at most a handful of primes (each unlucky
    // prime divides det); a singular one sheds every prime.  Give up and
    // let the Bareiss fallback decide.
    if (unlucky > primes_used + 16) return finish(false, std::nullopt);
    std::vector<PrimeSolve> results(batch);
    for (std::size_t i = 0; i < batch; ++i)
      results[i].prime = modular_prime(prime_index++);
    {
      obs::Span span{"modular-elim"};
      PhaseTimer timer{elim_s};
      core::for_each_job(batch, jobs,
                         [&](std::size_t i, const CancelToken& /*token*/) {
                           solve_one_prime(sys, n, k, deadline, results[i]);
                         });
    }
    deadline.check();
    // Lucky primes in prime order, truncated where the running modulus
    // meets the budget — the folded sequence (hence every xs[e], hence the
    // result) is independent of jobs and batch size.
    std::vector<std::uint64_t> fold_primes;
    std::vector<const std::uint64_t*> fold_residues;
    BigInt m_run = m;
    for (const PrimeSolve& r : results) {
      if (r.status == PrimeStatus::Unlucky) {
        ++unlucky;
        continue;
      }
      if (r.status != PrimeStatus::Ok) continue;  // abandoned: deadline
      if (m_run.bit_length() >= budget_bits) break;  // budget already met
      fold_primes.push_back(r.prime);
      fold_residues.push_back(r.x.data());
      m_run *= BigInt{static_cast<std::int64_t>(r.prime)};
    }
    {
      obs::Span span{"modular-crt"};
      PhaseTimer timer{crt_s};
      detail::crt_fold_batch(xs, m, fold_residues, fold_primes, jobs);
    }
    primes_used += fold_primes.size();
    fresh_primes.insert(fresh_primes.end(), fold_primes.begin(),
                        fold_primes.end());
    if (entries > 0 && primes_used < checkpoint && !cands[0].valid) {
      // Denominator predictor (ROADMAP): one cheap Euclid pass on the first
      // entry at the current — still small — modulus seeds the
      // shared-denominator fast path, so the next full attempt usually
      // skips its entry-0 reconstruction at a much larger modulus.  A
      // spurious early candidate is harmless: like every cached candidate
      // it must survive the per-prime congruence revalidation and the
      // exact A·X == B verification.
      PhaseTimer timer{rec_s};
      const BigInt bound = isqrt((m - BigInt{1}) / BigInt{2});
      if (auto entry = rational_reconstruct(xs[0], m, bound)) {
        cands[0].value = std::move(*entry);
        cands[0].valid = true;
      }
    }
    if (primes_used >= checkpoint && m.bit_length() < budget_bits) {
      checkpoint = primes_used * 2;
      if (auto x = attempt(false)) {
        if (!options.verify || verify_solution(*x))
          return finish(true, std::move(x));
        // A spurious candidate survived the congruence checks; none of the
        // caches can be trusted until more primes arrive.
        for (EntryCand& c : cands) c.valid = false;
      }
    }
  }
  // Full Hadamard budget reached: reconstruction now succeeds for every
  // nonsingular system.  If the cached/shared-denominator attempt fails or
  // mis-verifies, retry once strictly (pure per-entry Euclid, no caches);
  // a failure after that means singular (or pathological), which the
  // caller resolves via Bareiss.
  auto x = attempt(false);
  if (x && options.verify && !verify_solution(*x)) x.reset();
  if (!x) {
    x = attempt(true);
    if (x && options.verify && !verify_solution(*x)) x.reset();
  }
  return finish(false, std::move(x));
}

// ------------------------------------------------------------ determinant

Rational determinant_modular(const RatMatrix& mat, const Deadline& deadline,
                             const ModularOptions& options) {
  if (!mat.is_square())
    throw std::invalid_argument("determinant_modular: square required");
  const std::size_t n = mat.rows();
  if (n == 0) return Rational{1};
  deadline.check();
  const detail::IntSystem sys = detail::clear_denominators(mat, nullptr);
  const std::size_t budget_bits = sys.det_bound_bits + 2;
  const std::size_t jobs = core::resolve_jobs(options.jobs);
  const std::size_t batch = std::max<std::size_t>(jobs, 8);

  std::vector<BigInt> xs(1);
  BigInt m{1};
  std::size_t prime_index = 0;
  std::uint64_t primes_used = 0;
  double elim_s = 0, crt_s = 0;
  while (m.bit_length() < budget_bits) {
    deadline.check();
    std::vector<PrimeDet> results(batch);
    for (std::size_t i = 0; i < batch; ++i)
      results[i].prime = modular_prime(prime_index++);
    {
      obs::Span span{"modular-elim"};
      PhaseTimer timer{elim_s};
      core::for_each_job(batch, jobs,
                         [&](std::size_t i, const CancelToken& /*token*/) {
                           det_one_prime(sys, n, deadline, results[i]);
                         });
    }
    deadline.check();
    std::vector<std::uint64_t> fold_primes;
    std::vector<std::uint64_t> fold_dets;
    BigInt m_run = m;
    for (const PrimeDet& r : results) {
      if (r.status != PrimeStatus::Ok) continue;
      if (m_run.bit_length() >= budget_bits) break;
      fold_primes.push_back(r.prime);
      fold_dets.push_back(r.det);
      m_run *= BigInt{static_cast<std::int64_t>(r.prime)};
    }
    std::vector<const std::uint64_t*> fold_residues;
    fold_residues.reserve(fold_primes.size());
    for (const std::uint64_t& det : fold_dets) fold_residues.push_back(&det);
    {
      obs::Span span{"modular-crt"};
      PhaseTimer timer{crt_s};
      detail::crt_fold_batch(xs, m, fold_residues, fold_primes, jobs);
    }
    primes_used += fold_primes.size();
  }
  metrics().primes_used.add(primes_used);
  metrics().elim_seconds.observe(elim_s);
  metrics().crt_seconds.observe(crt_s);
  if (options.stats) {
    ModularStats s;
    s.primes_used = primes_used;
    s.elim_seconds = elim_s;
    s.crt_seconds = crt_s;
    *options.stats = s;
  }
  // Balanced representative: the scaled determinant is an integer with
  // |det| < 2^(budget_bits-1) <= m/2.
  BigInt det = std::move(xs[0]);
  if (det + det > m) det -= m;
  BigInt scale{1};
  for (const BigInt& l : sys.row_scales) scale *= l;
  return Rational{std::move(det), std::move(scale)};
}

}  // namespace spiv::exact
