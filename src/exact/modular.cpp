#include "exact/modular.hpp"

#include <atomic>
#include <bit>
#include <chrono>
#include <cstring>
#include <iostream>
#include <mutex>
#include <stdexcept>
#include <vector>

#include "core/env.hpp"
#include "core/parallel.hpp"
#include "exact/int_system.hpp"
#include "obs/metrics.hpp"

namespace spiv::exact {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Hot-path metric handles, resolved once.  Constructed eagerly below so
/// the whole family is present in `spiv-serve metrics` / --metrics-out
/// output even before the first modular solve runs.
struct Metrics {
  obs::Histogram& prime_solve_seconds = obs::Registry::global().histogram(
      "spiv_modular_prime_solve_seconds");
  obs::Histogram& reconstruct_seconds = obs::Registry::global().histogram(
      "spiv_modular_reconstruct_seconds");
  obs::Counter& primes_used =
      obs::Registry::global().counter("spiv_modular_primes_used_total");
  obs::Counter& unlucky_primes =
      obs::Registry::global().counter("spiv_modular_unlucky_primes_total");
  obs::Counter& early_exits =
      obs::Registry::global().counter("spiv_modular_early_exit_total");
  obs::Counter& solves =
      obs::Registry::global().counter("spiv_modular_solves_total");
  obs::Counter& fallbacks =
      obs::Registry::global().counter("spiv_modular_fallback_total");
};

Metrics& metrics() {
  static Metrics m;
  return m;
}

[[maybe_unused]] const bool kMetricsRegistered = (metrics(), true);

// ------------------------------------------------------- prime generation

std::uint64_t mulmod_u64(std::uint64_t a, std::uint64_t b, std::uint64_t m) {
  return static_cast<std::uint64_t>(
      static_cast<unsigned __int128>(a) * b % m);
}

std::uint64_t powmod_u64(std::uint64_t base, std::uint64_t e,
                         std::uint64_t m) {
  std::uint64_t r = 1;
  base %= m;
  while (e != 0) {
    if (e & 1u) r = mulmod_u64(r, base, m);
    base = mulmod_u64(base, base, m);
    e >>= 1;
  }
  return r;
}

/// Deterministic Miller–Rabin for 64-bit integers (the 12-base set covers
/// all n < 2^64).  Only used when extending the cached prime sequence.
bool is_prime_u64(std::uint64_t n) {
  if (n < 2) return false;
  for (std::uint64_t p : {2ull, 3ull, 5ull, 7ull, 11ull, 13ull, 17ull, 19ull,
                          23ull, 29ull, 31ull, 37ull}) {
    if (n % p == 0) return n == p;
  }
  std::uint64_t d = n - 1;
  unsigned r = 0;
  while ((d & 1u) == 0) {
    d >>= 1;
    ++r;
  }
  for (std::uint64_t a : {2ull, 3ull, 5ull, 7ull, 11ull, 13ull, 17ull, 19ull,
                          23ull, 29ull, 31ull, 37ull}) {
    std::uint64_t x = powmod_u64(a, d, n);
    if (x == 1 || x == n - 1) continue;
    bool witness = true;
    for (unsigned i = 1; i < r; ++i) {
      x = mulmod_u64(x, x, n);
      if (x == n - 1) {
        witness = false;
        break;
      }
    }
    if (witness) return false;
  }
  return true;
}

// --------------------------------------------------------- size estimates

/// Bits of a Hadamard-style bound on |det| of the integer matrix, by rows:
/// |det| <= prod_i ||row_i||_2 <= prod_i sqrt(n) * max_j |m_ij|.
std::size_t det_bound_bits(const std::vector<std::vector<BigInt>>& m) {
  const std::size_t n = m.size();
  const std::size_t half_log = (std::bit_width(n) + 1) / 2;
  std::size_t bits = 1;
  for (const auto& row : m) {
    std::size_t row_bits = 0;
    for (const BigInt& v : row) row_bits = std::max(row_bits, v.bit_length());
    bits += row_bits + half_log + 1;
  }
  return bits;
}

/// Bits the CRT modulus must reach so balanced rational reconstruction of
/// the solution of M x = R is guaranteed: by Cramer, every numerator is a
/// det of M with a column swapped for an R column and every denominator
/// divides det(M); both are below the column-Hadamard bound, and balanced
/// reconstruction needs the modulus to exceed 2 * max(num, den)^2.
std::size_t solve_budget_bits(const std::vector<std::vector<BigInt>>& m,
                              const std::vector<std::vector<BigInt>>& rhs) {
  const std::size_t n = m.size();
  const std::size_t half_log = (std::bit_width(n) + 1) / 2;
  std::size_t sum_cols = 0;
  for (std::size_t j = 0; j < n; ++j) {
    std::size_t col_bits = 0;
    for (std::size_t i = 0; i < n; ++i)
      col_bits = std::max(col_bits, m[i][j].bit_length());
    sum_cols += col_bits + half_log + 1;
  }
  std::size_t b_bits = 0;
  for (const auto& row : rhs)
    for (const BigInt& v : row) b_bits = std::max(b_bits, v.bit_length());
  const std::size_t num_bits = sum_cols + b_bits + half_log + 1;
  return 2 * num_bits + 2;
}

// ------------------------------------------------------- per-prime kernel

enum class PrimeStatus { Abandoned, Unlucky, Ok };

struct PrimeSolve {
  std::uint64_t prime = 0;
  PrimeStatus status = PrimeStatus::Abandoned;
  /// Plain (non-Montgomery) solution residues, row-major n x k.
  std::vector<std::uint64_t> x;
};

/// Solve the integer system mod `out.prime` with dense Gaussian
/// elimination in Montgomery form.  Never throws: an expired deadline
/// leaves status == Abandoned (the caller re-checks and raises), a zero
/// determinant mod p yields Unlucky.
void solve_one_prime(const detail::IntSystem& sys, std::size_t n,
                     std::size_t k, const Deadline& deadline,
                     PrimeSolve& out) {
  const auto t0 = Clock::now();
  const Montgomery62 mont{out.prime};
  const std::uint64_t p = out.prime;
  const std::size_t w = n + k;
  std::vector<std::uint64_t> t(n * w);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j)
      t[i * w + j] = mont.to_mont(sys.m[i][j].mod_u64(p));
    for (std::size_t c = 0; c < k; ++c)
      t[i * w + n + c] = mont.to_mont(sys.rhs[i][c].mod_u64(p));
  }
  for (std::size_t col = 0; col < n; ++col) {
    if (deadline.expired()) return;  // status stays Abandoned
    std::size_t pivot = n;
    for (std::size_t r = col; r < n; ++r) {
      if (t[r * w + col] != 0) {
        pivot = r;
        break;
      }
    }
    if (pivot == n) {
      out.status = PrimeStatus::Unlucky;  // det == 0 mod p
      return;
    }
    if (pivot != col)
      std::swap_ranges(t.begin() + static_cast<std::ptrdiff_t>(pivot * w),
                       t.begin() + static_cast<std::ptrdiff_t>((pivot + 1) * w),
                       t.begin() + static_cast<std::ptrdiff_t>(col * w));
    const std::uint64_t inv_pivot = mont.inv(t[col * w + col]);
    for (std::size_t r = col + 1; r < n; ++r) {
      const std::uint64_t lead = t[r * w + col];
      if (lead == 0) continue;
      const std::uint64_t f = mont.mul(lead, inv_pivot);
      t[r * w + col] = 0;
      for (std::size_t j = col + 1; j < w; ++j)
        t[r * w + j] = mont.sub(t[r * w + j], mont.mul(f, t[col * w + j]));
    }
  }
  // Back substitution; diagonal inverses are shared across RHS columns.
  std::vector<std::uint64_t> dinv(n);
  for (std::size_t i = 0; i < n; ++i) dinv[i] = mont.inv(t[i * w + i]);
  out.x.assign(n * k, 0);
  std::vector<std::uint64_t> xm(n);
  for (std::size_t c = 0; c < k; ++c) {
    for (std::size_t i = n; i-- > 0;) {
      std::uint64_t acc = t[i * w + n + c];
      for (std::size_t j = i + 1; j < n; ++j)
        acc = mont.sub(acc, mont.mul(t[i * w + j], xm[j]));
      xm[i] = mont.mul(acc, dinv[i]);
    }
    for (std::size_t i = 0; i < n; ++i)
      out.x[i * k + c] = mont.from_mont(xm[i]);
  }
  out.status = PrimeStatus::Ok;
  metrics().prime_solve_seconds.observe(seconds_since(t0));
}

struct PrimeDet {
  std::uint64_t prime = 0;
  PrimeStatus status = PrimeStatus::Abandoned;
  std::uint64_t det = 0;  ///< plain residue (0 is a legitimate value here)
};

void det_one_prime(const detail::IntSystem& sys, std::size_t n,
                   const Deadline& deadline, PrimeDet& out) {
  const auto t0 = Clock::now();
  const Montgomery62 mont{out.prime};
  const std::uint64_t p = out.prime;
  std::vector<std::uint64_t> t(n * n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      t[i * n + j] = mont.to_mont(sys.m[i][j].mod_u64(p));
  std::uint64_t det = mont.one();
  bool negate = false;
  for (std::size_t col = 0; col < n; ++col) {
    if (deadline.expired()) return;
    std::size_t pivot = n;
    for (std::size_t r = col; r < n; ++r) {
      if (t[r * n + col] != 0) {
        pivot = r;
        break;
      }
    }
    if (pivot == n) {
      out.det = 0;  // det == 0 mod p: the answer, not an unlucky prime
      out.status = PrimeStatus::Ok;
      return;
    }
    if (pivot != col) {
      std::swap_ranges(t.begin() + static_cast<std::ptrdiff_t>(pivot * n),
                       t.begin() + static_cast<std::ptrdiff_t>((pivot + 1) * n),
                       t.begin() + static_cast<std::ptrdiff_t>(col * n));
      negate = !negate;
    }
    det = mont.mul(det, t[col * n + col]);
    const std::uint64_t inv_pivot = mont.inv(t[col * n + col]);
    for (std::size_t r = col + 1; r < n; ++r) {
      const std::uint64_t lead = t[r * n + col];
      if (lead == 0) continue;
      const std::uint64_t f = mont.mul(lead, inv_pivot);
      t[r * n + col] = 0;
      for (std::size_t j = col + 1; j < n; ++j)
        t[r * n + j] = mont.sub(t[r * n + j], mont.mul(f, t[col * n + j]));
    }
  }
  det = mont.from_mont(det);
  if (negate && det != 0) det = p - det;
  out.det = det;
  out.status = PrimeStatus::Ok;
  metrics().prime_solve_seconds.observe(seconds_since(t0));
}

// --------------------------------------------------------------- CRT fold

/// Fold residues `r` (plain, mod p) into the accumulated CRT state:
/// afterwards each xs[e] is the unique value in [0, m*p) matching all
/// primes folded so far, and m has been multiplied by p.
void crt_fold(std::vector<BigInt>& xs, BigInt& m,
              const std::vector<std::uint64_t>& r, std::uint64_t p) {
  const Montgomery62 mont{p};
  const std::uint64_t m_mod = m.mod_u64(p);
  const std::uint64_t minv_mont = mont.inv(mont.to_mont(m_mod));
  for (std::size_t e = 0; e < xs.size(); ++e) {
    const std::uint64_t xe = xs[e].mod_u64(p);
    const std::uint64_t diff = r[e] >= xe ? r[e] - xe : r[e] + (p - xe);
    const std::uint64_t t =
        mont.from_mont(mont.mul(mont.to_mont(diff), minv_mont));
    if (t != 0) xs[e] += m * BigInt{static_cast<std::int64_t>(t)};
  }
  m *= BigInt{static_cast<std::int64_t>(p)};
}

// ------------------------------------------------ reconstruction + verify

/// Reconstruct every entry of the n x k solution from its CRT image and
/// (optionally) verify A X == B exactly over the integer system.  nullopt
/// when any entry fails to reconstruct or the verification fails — the
/// driver then folds in more primes.  Polls the deadline per entry / per
/// verified cell (a full-budget reconstruction on a vech-100+ system runs
/// for seconds, far longer than the driver's between-batches poll) and
/// throws TimeoutError on expiry; the histogram records either way.
std::optional<RatMatrix> try_reconstruct(const detail::IntSystem& sys,
                                         const std::vector<BigInt>& xs,
                                         const BigInt& m, std::size_t n,
                                         std::size_t k, bool verify,
                                         const Deadline& deadline) {
  struct Observe {
    Clock::time_point t0 = Clock::now();
    ~Observe() { metrics().reconstruct_seconds.observe(seconds_since(t0)); }
  } observe;
  const BigInt bound = isqrt((m - BigInt{1}) / BigInt{2});
  RatMatrix x{n, k};
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t c = 0; c < k; ++c) {
      deadline.check();
      auto entry = rational_reconstruct(xs[i * k + c], m, bound);
      if (!entry) return std::nullopt;
      x(i, c) = std::move(*entry);
    }
  if (verify) {
    // Check M·X == R entirely over the integers: scale X by the common
    // denominator D (by Cramer every entry's denominator divides det(M), so
    // D stays one det-sized value, not a product).  Rational arithmetic
    // here would re-run a multi-thousand-bit gcd per accumulate.
    BigInt d{1};
    for (std::size_t e = 0; e < xs.size(); ++e) {
      const BigInt& den = x(e / k, e % k).den();
      if (den == d || den.is_one()) continue;
      deadline.check();
      d = d / BigInt::gcd(d, den) * den;  // lcm
    }
    std::vector<BigInt> xi(n * k);  // X·D, exact integers
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t c = 0; c < k; ++c)
        xi[i * k + c] = x(i, c).num() * (d / x(i, c).den());
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t c = 0; c < k; ++c) {
        deadline.check();
        BigInt acc;
        for (std::size_t j = 0; j < n; ++j) {
          if (sys.m[i][j].is_zero() || xi[j * k + c].is_zero()) continue;
          acc += sys.m[i][j] * xi[j * k + c];
        }
        if (acc != sys.rhs[i][c] * d) return std::nullopt;
      }
  }
  return x;
}

}  // namespace

// --------------------------------------------------------------- montgomery

Montgomery62::Montgomery62(std::uint64_t p) : p_(p) {
  if (p < 3 || (p & 1u) == 0 || (p >> 62) != 0)
    throw std::invalid_argument("Montgomery62: need an odd modulus < 2^62");
  // Newton–Hensel: x <- x(2 - p x) doubles the number of correct low bits,
  // so six iterations from x = p (3 correct bits for odd p) reach 2^64.
  std::uint64_t inv = p;
  for (int i = 0; i < 6; ++i) inv *= 2 - p * inv;
  ninv_ = ~inv + 1;
  r1_ = static_cast<std::uint64_t>(
      (static_cast<unsigned __int128>(1) << 64) % p);
  r2_ = static_cast<std::uint64_t>(
      static_cast<unsigned __int128>(r1_) * r1_ % p);
}

std::uint64_t Montgomery62::inv(std::uint64_t a_mont) const {
  if (a_mont == 0)
    throw std::domain_error("Montgomery62: inverse of zero");
  // Fermat: a^(p-2) mod p, entirely in Montgomery form.
  std::uint64_t result = r1_;
  std::uint64_t base = a_mont;
  std::uint64_t e = p_ - 2;
  while (e != 0) {
    if (e & 1u) result = mul(result, base);
    base = mul(base, base);
    e >>= 1;
  }
  return result;
}

// ----------------------------------------------------------------- primes

std::uint64_t modular_prime(std::size_t index) {
  static std::mutex mutex;
  static std::vector<std::uint64_t> primes;
  std::lock_guard<std::mutex> lock(mutex);
  while (primes.size() <= index) {
    std::uint64_t candidate =
        primes.empty() ? (std::uint64_t{1} << 62) - 1 : primes.back() - 2;
    while (!is_prime_u64(candidate)) candidate -= 2;
    primes.push_back(candidate);
  }
  return primes[index];
}

// --------------------------------------------------------------- strategy

ExactSolverStrategy exact_solver_strategy() {
  // Parsing and the warn-once diagnostic live in core::env, next to every
  // other SPIV_* variable; this is just the enum translation.
  switch (core::env::exact_solver()) {
    case core::env::ExactSolver::Bareiss: return ExactSolverStrategy::Bareiss;
    case core::env::ExactSolver::Modular: return ExactSolverStrategy::Modular;
    case core::env::ExactSolver::Auto: break;
  }
  return ExactSolverStrategy::Auto;
}

bool modular_preferred(std::size_t dim, ExactSolverStrategy strategy) {
  switch (strategy) {
    case ExactSolverStrategy::Bareiss: return false;
    case ExactSolverStrategy::Modular: return dim > 0;
    case ExactSolverStrategy::Auto: return dim >= 6;
  }
  return false;
}

// ---------------------------------------------------------- reconstruction

std::optional<Rational> rational_reconstruct(const BigInt& u, const BigInt& m,
                                             const BigInt& bound) {
  // Half-extended Euclid on (m, u): every intermediate (r_i, t_i) satisfies
  // r_i == t_i * u (mod m); stop at the first remainder <= bound (Wang).
  BigInt r0 = m, r1 = u;
  BigInt t0{0}, t1{1};
  while (r1 > bound) {
    auto [q, r2] = BigInt::div_mod(r0, r1);
    r0 = std::move(r1);
    r1 = std::move(r2);
    BigInt t2 = t0 - q * t1;
    t0 = std::move(t1);
    t1 = std::move(t2);
  }
  if (t1.is_zero()) return std::nullopt;
  BigInt num = std::move(r1);
  BigInt den = std::move(t1);
  if (den.is_negative()) {
    num = num.negated();
    den = den.negated();
  }
  if (den > bound) return std::nullopt;
  if (!BigInt::gcd(num, den).is_one()) return std::nullopt;
  return Rational{std::move(num), std::move(den)};
}

// ------------------------------------------------------------------ solve

std::optional<RatMatrix> solve_rational_modular(const RatMatrix& a,
                                                const RatMatrix& b,
                                                const Deadline& deadline,
                                                const ModularOptions& options) {
  if (!a.is_square() || b.rows() != a.rows())
    throw std::invalid_argument("solve_rational_modular: shape mismatch");
  const std::size_t n = a.rows();
  const std::size_t k = b.cols();
  if (n == 0) return RatMatrix{0, k};
  metrics().solves.add();
  deadline.check();
  const detail::IntSystem sys = detail::clear_denominators(a, &b);
  const std::size_t budget_bits = solve_budget_bits(sys.m, sys.rhs);
  const std::size_t jobs = core::resolve_jobs(options.jobs);
  const std::size_t batch = std::max<std::size_t>(jobs, 8);

  std::vector<BigInt> xs(n * k);  // CRT images of the solution entries
  BigInt m{1};
  std::size_t prime_index = 0;
  std::uint64_t primes_used = 0;
  std::uint64_t unlucky = 0;
  std::size_t checkpoint = 4;  // trial reconstruction schedule (doubling)

  auto finish = [&](bool early, std::optional<RatMatrix> result) {
    metrics().primes_used.add(primes_used);
    metrics().unlucky_primes.add(unlucky);
    if (early && result) metrics().early_exits.add();
    if (options.stats)
      *options.stats = ModularStats{primes_used, unlucky,
                                    early && result.has_value()};
    return result;
  };

  while (m.bit_length() < budget_bits) {
    deadline.check();
    // A nonsingular system sheds at most a handful of primes (each unlucky
    // prime divides det); a singular one sheds every prime.  Give up and
    // let the Bareiss fallback decide.
    if (unlucky > primes_used + 16) return finish(false, std::nullopt);
    std::vector<PrimeSolve> results(batch);
    for (std::size_t i = 0; i < batch; ++i)
      results[i].prime = modular_prime(prime_index++);
    core::for_each_job(batch, jobs,
                       [&](std::size_t i, const CancelToken& /*token*/) {
                         solve_one_prime(sys, n, k, deadline, results[i]);
                       });
    deadline.check();
    for (const PrimeSolve& r : results) {
      if (r.status == PrimeStatus::Unlucky) {
        ++unlucky;
        continue;
      }
      if (r.status != PrimeStatus::Ok) continue;  // abandoned: deadline
      if (m.bit_length() >= budget_bits) break;   // budget already met
      crt_fold(xs, m, r.x, r.prime);
      ++primes_used;
    }
    if (primes_used >= checkpoint && m.bit_length() < budget_bits) {
      checkpoint = primes_used * 2;
      if (auto x = try_reconstruct(sys, xs, m, n, k, options.verify, deadline))
        return finish(true, std::move(x));
    }
  }
  // Full Hadamard budget reached: reconstruction now succeeds for every
  // nonsingular system; a failure here means singular (or pathological),
  // which the caller resolves via Bareiss.
  return finish(false,
                try_reconstruct(sys, xs, m, n, k, options.verify, deadline));
}

// ------------------------------------------------------------ determinant

Rational determinant_modular(const RatMatrix& mat, const Deadline& deadline,
                             const ModularOptions& options) {
  if (!mat.is_square())
    throw std::invalid_argument("determinant_modular: square required");
  const std::size_t n = mat.rows();
  if (n == 0) return Rational{1};
  deadline.check();
  const detail::IntSystem sys = detail::clear_denominators(mat, nullptr);
  const std::size_t budget_bits = det_bound_bits(sys.m) + 2;
  const std::size_t jobs = core::resolve_jobs(options.jobs);
  const std::size_t batch = std::max<std::size_t>(jobs, 8);

  std::vector<BigInt> xs(1);
  BigInt m{1};
  std::size_t prime_index = 0;
  std::uint64_t primes_used = 0;
  while (m.bit_length() < budget_bits) {
    deadline.check();
    std::vector<PrimeDet> results(batch);
    for (std::size_t i = 0; i < batch; ++i)
      results[i].prime = modular_prime(prime_index++);
    core::for_each_job(batch, jobs,
                       [&](std::size_t i, const CancelToken& /*token*/) {
                         det_one_prime(sys, n, deadline, results[i]);
                       });
    deadline.check();
    for (const PrimeDet& r : results) {
      if (r.status != PrimeStatus::Ok) continue;
      if (m.bit_length() >= budget_bits) break;
      std::vector<std::uint64_t> residue{r.det};
      crt_fold(xs, m, residue, r.prime);
      ++primes_used;
    }
  }
  metrics().primes_used.add(primes_used);
  if (options.stats) *options.stats = ModularStats{primes_used, 0, false};
  // Balanced representative: the scaled determinant is an integer with
  // |det| < 2^(budget_bits-1) <= m/2.
  BigInt det = std::move(xs[0]);
  if (det + det > m) det -= m;
  BigInt scale{1};
  for (const BigInt& l : sys.row_scales) scale *= l;
  return Rational{std::move(det), std::move(scale)};
}

}  // namespace spiv::exact
