// spiv::exact — multi-modular exact linear algebra.
//
// The paper's eq-smt method (§VI-B1) solves the Lyapunov equation in exact
// rational arithmetic; fraction-free Bareiss over ever-growing BigInt
// entries is its dominant cost (Table I: 0.56 s at size 5, timeout at 10+).
// This module replaces that with the standard fast path of exact linear
// algebra: solve the (denominator-cleared) integer system modulo many
// ~62-bit primes with machine-word Gaussian elimination, combine the
// residues by CRT, and recover the rational solution by Wang-style rational
// reconstruction.  A Hadamard bound caps the prime budget; trial
// reconstruction at doubling checkpoints exits far earlier on typical
// inputs, and an exact A·X = B recheck makes the early exit sound.
//
// Per-prime solves are independent, so they fan out over core::JobPool.
// Residues are CRT-folded in prime-order batches through a balanced
// product tree, parallelised over solution-entry blocks (each entry's CRT
// image is a pure function of the residue sequence, so any SPIV_JOBS gives
// bit-identical results).  Reconstruction is output-sensitive: entries
// whose denominators are small lock in at early checkpoints and are only
// revalidated with one word-mod per new prime afterwards, and a shared
// denominator (every denominator divides det(M) by Cramer) turns most
// per-entry reconstructions into a single mulmod instead of a full
// extended-Euclid pass.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "exact/matrix.hpp"
#include "exact/timeout.hpp"

namespace spiv::exact {

/// Which exact solver backs solve_lyapunov_exact (and the modular
/// determinant used by the charpoly validation engines).
enum class ExactSolverStrategy {
  Bareiss,  ///< fraction-free Bareiss elimination (the original path)
  Modular,  ///< multi-modular CRT + rational reconstruction
  Auto,     ///< modular above a size threshold, Bareiss below
};

/// Strategy from $SPIV_EXACT_SOLVER ("bareiss" | "modular" | "auto";
/// unset/empty -> Auto; anything else warns once and falls back to Auto).
/// Re-read on every call so tests can flip the environment.
[[nodiscard]] ExactSolverStrategy exact_solver_strategy();

/// Whether the modular path should be taken for a system of the given
/// dimension under `strategy`.  Auto prefers modular from dimension 6 up:
/// below that the whole Bareiss elimination stays in single-limb territory
/// and the CRT bookkeeping costs more than it saves.
[[nodiscard]] bool modular_preferred(std::size_t dim,
                                     ExactSolverStrategy strategy);

/// Per-solve statistics (also mirrored into the obs registry).
struct ModularStats {
  std::uint64_t primes_used = 0;     ///< lucky primes folded into the CRT
  std::uint64_t unlucky_primes = 0;  ///< det == 0 mod p, skipped
  bool early_exit = false;  ///< reconstruction succeeded below the bound
  // Per-phase wall-clock split of this solve (driver-attributed seconds;
  // the elimination phase is the parallel fan-out's wall time, not the
  // summed worker time).  The same split feeds the spiv_modular_elim /
  // crt / reconstruct / verify histograms and BENCH_exact_solvers.json.
  double elim_seconds = 0;
  double crt_seconds = 0;
  double reconstruct_seconds = 0;
  double verify_seconds = 0;
};

struct ModularOptions {
  /// Worker threads for the per-prime fan-out, the entry-block CRT fold,
  /// and the A·X == B recheck: 0 = $SPIV_JOBS (else hardware_concurrency),
  /// 1 = serial on the calling thread.  Results are identical for any
  /// value.
  std::size_t jobs = 0;
  /// Recheck A·X == B exactly after reconstruction (makes the early exit
  /// sound; cheap next to the elimination it replaces).
  bool verify = true;
  /// First trial-reconstruction checkpoint, in lucky primes folded; the
  /// schedule doubles from there.  0 = $SPIV_MODULAR_CHECKPOINT (default
  /// 4).  Purely a performance knob: any schedule yields the same result.
  std::size_t checkpoint = 0;
  ModularStats* stats = nullptr;  ///< optional out-param
};

/// The i-th prime of the deterministic, descending sequence of ~62-bit
/// primes every multi-modular solve draws from (exposed so tests can build
/// "unlucky prime" instances whose determinant vanishes mod a known prime).
[[nodiscard]] std::uint64_t modular_prime(std::size_t index);

/// Exact solve A X = B for square A by the multi-modular method.  Returns
/// nullopt when A is singular *or* when reconstruction fails — callers fall
/// back to Bareiss, which decides singularity exactly.  With
/// options.verify (default) a returned matrix is a proven solution.
/// Throws TimeoutError when `deadline` expires.
[[nodiscard]] std::optional<RatMatrix> solve_rational_modular(
    const RatMatrix& a, const RatMatrix& b, const Deadline& deadline = {},
    const ModularOptions& options = {});

/// Exact determinant by per-prime elimination + CRT, run to the full
/// Hadamard budget (no early exit, hence deterministic with no recheck
/// needed).  Used by the charpoly validation engines for larger matrices.
[[nodiscard]] Rational determinant_modular(const RatMatrix& m,
                                           const Deadline& deadline = {},
                                           const ModularOptions& options = {});

/// Montgomery arithmetic modulo an odd prime p < 2^62.  Values live in
/// Montgomery form (x·2^64 mod p); a multiply is two 64x64->128 products
/// and a conditional subtract — no division anywhere in the elimination
/// kernel.  Exposed for the micro benchmarks and kernel unit tests.
class Montgomery62 {
 public:
  explicit Montgomery62(std::uint64_t p);

  [[nodiscard]] std::uint64_t modulus() const { return p_; }
  /// 1 in Montgomery form.
  [[nodiscard]] std::uint64_t one() const { return r1_; }
  /// x < p into Montgomery form.
  [[nodiscard]] std::uint64_t to_mont(std::uint64_t x) const {
    return mul(x, r2_);
  }
  /// Montgomery form back to a plain residue in [0, p).
  [[nodiscard]] std::uint64_t from_mont(std::uint64_t x) const {
    return redc(x);
  }
  [[nodiscard]] std::uint64_t add(std::uint64_t a, std::uint64_t b) const {
    const std::uint64_t s = a + b;  // a, b < p < 2^62: no wrap
    return s >= p_ ? s - p_ : s;
  }
  [[nodiscard]] std::uint64_t sub(std::uint64_t a, std::uint64_t b) const {
    return a >= b ? a - b : a + (p_ - b);
  }
  [[nodiscard]] std::uint64_t mul(std::uint64_t a, std::uint64_t b) const {
    return redc(static_cast<unsigned __int128>(a) * b);
  }
  /// Inverse of a nonzero Montgomery-form value (Fermat: a^(p-2)).
  [[nodiscard]] std::uint64_t inv(std::uint64_t a_mont) const;

 private:
  [[nodiscard]] std::uint64_t redc(unsigned __int128 t) const {
    const std::uint64_t m = static_cast<std::uint64_t>(t) * ninv_;
    const unsigned __int128 s = t + static_cast<unsigned __int128>(m) * p_;
    const std::uint64_t r = static_cast<std::uint64_t>(s >> 64);
    return r >= p_ ? r - p_ : r;
  }

  std::uint64_t p_;     ///< modulus
  std::uint64_t ninv_;  ///< -p^{-1} mod 2^64
  std::uint64_t r1_;    ///< 2^64 mod p
  std::uint64_t r2_;    ///< 2^128 mod p
};

/// Wang-style rational reconstruction: the unique n/d with |n|, d <= bound,
/// gcd(n, d) = 1 and n == u·d (mod m), if one exists.  `bound` defaults to
/// the balanced floor(sqrt((m-1)/2)) when callers pass none.
[[nodiscard]] std::optional<Rational> rational_reconstruct(const BigInt& u,
                                                           const BigInt& m,
                                                           const BigInt& bound);

namespace detail {

/// Batched CRT fold (exposed for micro benchmarks and determinism tests).
/// `residues[i][e]` is the plain residue of entry e modulo `primes[i]`
/// (all primes distinct, odd, < 2^62, and coprime to m).  Afterwards every
/// xs[e] is the unique value in [0, m·Πp) congruent to its old self mod m
/// and to residues[i][e] mod primes[i], and m has been multiplied by Πp.
/// The per-prime deltas are combined through a balanced product tree and
/// the per-entry folds fan out over `jobs` workers in entry blocks; the
/// result is a pure function of (xs, m, residues, primes) — bit-identical
/// for any jobs value.
void crt_fold_batch(std::vector<BigInt>& xs, BigInt& m,
                    const std::vector<const std::uint64_t*>& residues,
                    const std::vector<std::uint64_t>& primes,
                    std::size_t jobs);

}  // namespace detail

}  // namespace spiv::exact
