// spiv — cooperative deadlines and cancellation for long-running
// exact/symbolic computations.
//
// The paper runs every synthesis/validation job under a wall-clock budget
// (2 h in their cluster setup); the exact Lyapunov solve (eq-smt) times out
// at plant sizes 15 and 18.  We reproduce that behaviour with a cooperative
// Deadline checked inside the expensive inner loops.
//
// A Deadline can additionally carry a CancelToken: a shared flag flipped by
// another thread (the parallel experiment harness, see core/parallel.hpp)
// that expires the deadline immediately.  Checking the flag is a relaxed
// atomic load, so kernels can afford to poll it in their innermost loops —
// a cancelled job stops burning CPU within a few arithmetic operations
// instead of running to the next coarse phase boundary.
#pragma once

#include <atomic>
#include <chrono>
#include <memory>
#include <optional>
#include <stdexcept>

namespace spiv {

/// Thrown by deadline-aware algorithms when the budget is exhausted.
class TimeoutError : public std::runtime_error {
 public:
  TimeoutError() : std::runtime_error("computation exceeded its deadline") {}
};

/// Shared cancellation flag.  Copies observe the same flag; cancel() makes
/// every Deadline bound to this token expire immediately.  All operations
/// are thread-safe.
class CancelToken {
 public:
  CancelToken() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

  void cancel() const noexcept {
    flag_->store(true, std::memory_order_relaxed);
  }

  [[nodiscard]] bool cancelled() const noexcept {
    return flag_->load(std::memory_order_relaxed);
  }

 private:
  friend class Deadline;
  std::shared_ptr<std::atomic<bool>> flag_;
};

/// A wall-clock budget, optionally bound to a CancelToken.
/// Default-constructed deadlines never expire.
class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  /// Never expires.
  Deadline() = default;

  /// Expires `budget` from now.  Budgets beyond the clock's representable
  /// range saturate to "effectively never" — an unchecked duration_cast
  /// would overflow into a *past* expiry and time every request out
  /// instantly (e.g. `spiv-serve --timeout 1e18`).
  explicit Deadline(std::chrono::duration<double> budget) {
    const Clock::time_point now = Clock::now();
    const std::chrono::duration<double> headroom =
        std::chrono::duration<double>(Clock::time_point::max() - now);
    expiry_ = budget >= headroom
                  ? Clock::time_point::max()
                  : now + std::chrono::duration_cast<Clock::duration>(budget);
  }

  [[nodiscard]] static Deadline after_seconds(double s) {
    return Deadline{std::chrono::duration<double>(s)};
  }

  /// Expires `s` seconds from now or as soon as `token` is cancelled,
  /// whichever comes first.
  [[nodiscard]] static Deadline after_seconds(double s,
                                              const CancelToken& token) {
    Deadline d = after_seconds(s);
    d.cancel_ = token.flag_;
    return d;
  }

  /// A copy of this deadline that additionally observes `token`.
  [[nodiscard]] Deadline with_token(const CancelToken& token) const {
    Deadline d = *this;
    d.cancel_ = token.flag_;
    return d;
  }

  [[nodiscard]] bool expired() const {
    if (cancel_ && cancel_->load(std::memory_order_relaxed)) return true;
    return expiry_ && Clock::now() > *expiry_;
  }

  /// Throws TimeoutError when expired.
  void check() const {
    if (expired()) throw TimeoutError{};
  }

 private:
  std::optional<Clock::time_point> expiry_;
  std::shared_ptr<const std::atomic<bool>> cancel_;
};

}  // namespace spiv
