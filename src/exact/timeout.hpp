// spiv — cooperative deadlines for long-running exact/symbolic computations.
//
// The paper runs every synthesis/validation job under a wall-clock budget
// (2 h in their cluster setup); the exact Lyapunov solve (eq-smt) times out
// at plant sizes 15 and 18.  We reproduce that behaviour with a cooperative
// Deadline checked inside the expensive inner loops.
#pragma once

#include <chrono>
#include <optional>
#include <stdexcept>

namespace spiv {

/// Thrown by deadline-aware algorithms when the budget is exhausted.
class TimeoutError : public std::runtime_error {
 public:
  TimeoutError() : std::runtime_error("computation exceeded its deadline") {}
};

/// A wall-clock budget.  Default-constructed deadlines never expire.
class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  /// Never expires.
  Deadline() = default;

  /// Expires `budget` from now.
  explicit Deadline(std::chrono::duration<double> budget)
      : expiry_(Clock::now() +
                std::chrono::duration_cast<Clock::duration>(budget)) {}

  [[nodiscard]] static Deadline after_seconds(double s) {
    return Deadline{std::chrono::duration<double>(s)};
  }

  [[nodiscard]] bool expired() const {
    return expiry_ && Clock::now() > *expiry_;
  }

  /// Throws TimeoutError when expired.
  void check() const {
    if (expired()) throw TimeoutError{};
  }

 private:
  std::optional<Clock::time_point> expiry_;
};

}  // namespace spiv
