// spiv::exact — exact dense matrices over Rational.
//
// These matrices are the workhorse of the symbolic validation layer:
// positive-definiteness certificates (Sylvester minors, LDL^T, Gaussian
// elimination), exact determinants, and the exact (eq-smt) solution of the
// Lyapunov equation are all computed here with no rounding whatsoever.
#pragma once

#include <cstddef>
#include <functional>
#include <initializer_list>
#include <iosfwd>
#include <optional>
#include <vector>

#include "exact/rational.hpp"
#include "exact/timeout.hpp"

namespace spiv::exact {

/// Dense matrix with exact rational entries (row-major storage).
class RatMatrix {
 public:
  RatMatrix() = default;

  /// rows x cols zero matrix.
  RatMatrix(std::size_t rows, std::size_t cols);

  /// From nested initializer lists (rows of entries); all rows must have
  /// equal length.
  RatMatrix(std::initializer_list<std::initializer_list<Rational>> rows);

  [[nodiscard]] static RatMatrix identity(std::size_t n);
  [[nodiscard]] static RatMatrix zero(std::size_t rows, std::size_t cols) {
    return RatMatrix{rows, cols};
  }

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] bool empty() const { return rows_ == 0 || cols_ == 0; }
  [[nodiscard]] bool is_square() const { return rows_ == cols_; }

  [[nodiscard]] Rational& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  [[nodiscard]] const Rational& operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  RatMatrix& operator+=(const RatMatrix& rhs);
  RatMatrix& operator-=(const RatMatrix& rhs);
  RatMatrix& operator*=(const Rational& s);

  friend RatMatrix operator+(RatMatrix a, const RatMatrix& b) { return a += b; }
  friend RatMatrix operator-(RatMatrix a, const RatMatrix& b) { return a -= b; }
  friend RatMatrix operator*(RatMatrix a, const Rational& s) { return a *= s; }
  friend RatMatrix operator*(const Rational& s, RatMatrix a) { return a *= s; }
  friend RatMatrix operator*(const RatMatrix& a, const RatMatrix& b);
  RatMatrix operator-() const;

  friend bool operator==(const RatMatrix& a, const RatMatrix& b) = default;

  [[nodiscard]] RatMatrix transposed() const;
  [[nodiscard]] bool is_symmetric() const;
  /// (M + M^T)/2.
  [[nodiscard]] RatMatrix symmetrized() const;

  /// Exact determinant (fraction-free Bareiss after clearing denominators).
  /// Requires a square matrix.  Throws TimeoutError when `deadline` expires
  /// mid-elimination.
  [[nodiscard]] Rational determinant(const Deadline& deadline = {}) const;

  /// Leading principal minors det(M[0..k, 0..k]) for k = 0..n-1, computed in
  /// one elimination sweep.  Requires a square matrix.
  [[nodiscard]] std::vector<Rational> leading_principal_minors() const;

  /// Exact solve A x = b for square non-singular A.  Returns nullopt when A
  /// is singular.  Throws TimeoutError when `deadline` expires mid-solve.
  [[nodiscard]] std::optional<std::vector<Rational>> solve(
      const std::vector<Rational>& b, const Deadline& deadline = {}) const;

  /// Exact solve A X = B (multi-RHS) by fraction-free Bareiss elimination of
  /// the augmented system after clearing denominators row-wise, with
  /// smallest-entry pivoting.  Every elimination step divides exactly (no
  /// rational gcd normalization on the hot path); only the final back
  /// substitution returns to Rational arithmetic.  Returns nullopt when A is
  /// singular.  Throws TimeoutError when `deadline` expires mid-solve.
  [[nodiscard]] std::optional<RatMatrix> solve(
      const RatMatrix& b, const Deadline& deadline = {}) const;

  /// Exact inverse.  Returns nullopt when singular.
  [[nodiscard]] std::optional<RatMatrix> inverse() const;

  /// Rank via exact elimination.
  [[nodiscard]] std::size_t rank() const;

  /// LDL^T decomposition of a symmetric matrix without pivoting:
  /// M = L D L^T with unit-lower-triangular L and diagonal D.  Fails (returns
  /// nullopt) when a zero pivot is encountered, which for our use (testing
  /// positive definiteness) already implies "not PD" when all previous pivots
  /// were positive.
  [[nodiscard]] std::optional<struct RatLdlt> ldlt() const;

  /// Quadratic form x^T M x.
  [[nodiscard]] Rational quad_form(const std::vector<Rational>& x) const;

  /// Matrix-vector product.
  [[nodiscard]] std::vector<Rational> apply(const std::vector<Rational>& x) const;

  /// Largest bit_size over entries (coefficient-growth diagnostics).
  [[nodiscard]] std::size_t max_entry_bits() const;

  /// Entry-wise conversion to double (for reporting only).
  [[nodiscard]] std::vector<double> to_double_row_major() const;

  friend std::ostream& operator<<(std::ostream& os, const RatMatrix& m);

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<Rational> data_;
};

/// Result of RatMatrix::ldlt(): M = L D L^T.
struct RatLdlt {
  RatMatrix l;              ///< unit lower triangular
  std::vector<Rational> d;  ///< diagonal of D
};

/// Build an exact matrix from a row-major double buffer, rounding each entry
/// to `digits` significant decimal figures first (the paper's protocol); pass
/// digits == 0 to convert exactly (binary-exact rationals).
[[nodiscard]] RatMatrix rat_matrix_from_doubles(const double* data,
                                                std::size_t rows,
                                                std::size_t cols, int digits);

/// Kronecker product A (x) B.
[[nodiscard]] RatMatrix kronecker(const RatMatrix& a, const RatMatrix& b);

}  // namespace spiv::exact
