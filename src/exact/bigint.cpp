#include "exact/bigint.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>
#include <ostream>
#include <stdexcept>

namespace spiv::exact {

namespace detail {
namespace {

// Thread-local free list of heap limb blocks.  Every heap capacity LimbVec
// ever uses is a power of two in [2^kMinShift, 2^kMaxShift]; each class
// keeps up to kBinCap retired blocks for reuse.  Blocks outside the binned
// range (or overflowing a bin) go straight to new[]/delete[].
struct Pool {
  static constexpr unsigned kMinShift = 3;   // 8 limbs  (32 bytes)
  static constexpr unsigned kMaxShift = 12;  // 4096 limbs (16 KiB)
  static constexpr std::size_t kBinCap = 8;
  struct Bin {
    std::uint32_t* blocks[kBinCap];
    std::size_t count = 0;
  };
  Bin bins[kMaxShift - kMinShift + 1];
  ~Pool() {
    for (Bin& bin : bins)
      while (bin.count > 0) delete[] bin.blocks[--bin.count];
  }
};

// The pool is reached through a trivially-destructible thread_local slot so
// BigInt temporaries destroyed *after* the pool (static-destruction order,
// late thread-exit destructors) see a null slot and fall back to delete[]
// instead of touching a dead Pool.  `dead` distinguishes "not yet built"
// from "already torn down" so we never reconstruct past thread exit.
struct PoolSlot {
  Pool* pool;
  bool dead;
};
thread_local constinit PoolSlot g_pool_slot{nullptr, false};

struct PoolOwner {
  Pool pool;
  PoolOwner() { g_pool_slot.pool = &pool; }
  ~PoolOwner() { g_pool_slot = {nullptr, true}; }
};

// `cap` must be a power of two.
std::uint32_t* pool_acquire(std::size_t cap) {
  const unsigned shift = static_cast<unsigned>(std::countr_zero(cap));
  if (shift >= Pool::kMinShift && shift <= Pool::kMaxShift) {
    if (g_pool_slot.pool == nullptr && !g_pool_slot.dead) {
      thread_local PoolOwner owner;
      (void)owner;
    }
    if (Pool* p = g_pool_slot.pool) {
      Pool::Bin& bin = p->bins[shift - Pool::kMinShift];
      if (bin.count > 0) return bin.blocks[--bin.count];
    }
  }
  return new std::uint32_t[cap];
}

void pool_release(std::uint32_t* block, std::size_t cap) noexcept {
  const unsigned shift = static_cast<unsigned>(std::countr_zero(cap));
  if (shift >= Pool::kMinShift && shift <= Pool::kMaxShift) {
    if (Pool* p = g_pool_slot.pool) {
      Pool::Bin& bin = p->bins[shift - Pool::kMinShift];
      if (bin.count < Pool::kBinCap) {
        bin.blocks[bin.count++] = block;
        return;
      }
    }
  }
  delete[] block;
}

}  // namespace

void LimbVec::grow(std::size_t mincap) {
  const std::size_t newcap =
      std::bit_ceil(std::max<std::size_t>(mincap, std::size_t{1}
                                                      << Pool::kMinShift));
  value_type* fresh = pool_acquire(newcap);
  std::memcpy(fresh, data(), size_ * sizeof(value_type));
  if (on_heap()) pool_release(heap_, cap_);
  heap_ = fresh;
  cap_ = static_cast<std::uint32_t>(newcap);
}

void LimbVec::release() noexcept {
  if (on_heap()) pool_release(heap_, cap_);
}

}  // namespace detail

namespace {
// Limb count at which mul_magnitude switches from schoolbook to Karatsuba.
// Tuned 2026-08 on an x86-64 core (gcc -O2) by timing balanced random
// products at 16..512 limbs across thresholds {12, 16, 24, 32, 48, 64, 96,
// 128, 192, 256}; total bench seconds were 0.62 / 0.59 / 0.37 / 0.35 /
// 0.25 / 0.24 / 0.19 / 0.186 / 0.19 / 0.19.  The schoolbook inner loop
// (32-bit limbs accumulated in 64-bit) beats this Karatsuba's split/alloc
// overhead until well past 100 limbs: at 128 limbs pure schoolbook runs
// 10.7us vs 12.4us for Karatsuba-with-base-48, and only at 512 limbs does
// recursion still pay (131us with base 128 vs 138us with base 256).  128
// was the sweep minimum; the curve is flat within noise from 96 up.
// Overridable (-DSPIV_KARATSUBA_THRESHOLD=N) for re-tuning on new hardware.
#ifndef SPIV_KARATSUBA_THRESHOLD
#define SPIV_KARATSUBA_THRESHOLD 128
#endif
constexpr std::size_t kKaratsubaThreshold = SPIV_KARATSUBA_THRESHOLD;
}  // namespace

BigInt::BigInt(std::int64_t v) {
  if (v == 0) return;
  negative_ = v < 0;
  // Avoid UB on INT64_MIN: negate in unsigned space.
  std::uint64_t mag =
      negative_ ? ~static_cast<std::uint64_t>(v) + 1 : static_cast<std::uint64_t>(v);
  limbs_.push_back(static_cast<Limb>(mag & 0xffffffffu));
  if (mag >> 32) limbs_.push_back(static_cast<Limb>(mag >> 32));
}

BigInt::BigInt(std::string_view decimal) {
  std::size_t i = 0;
  bool neg = false;
  if (i < decimal.size() && (decimal[i] == '-' || decimal[i] == '+')) {
    neg = decimal[i] == '-';
    ++i;
  }
  if (i == decimal.size()) throw std::invalid_argument("BigInt: empty numeral");
  BigInt acc;
  const BigInt ten{10};
  for (; i < decimal.size(); ++i) {
    char c = decimal[i];
    if (c < '0' || c > '9')
      throw std::invalid_argument("BigInt: invalid character in numeral");
    acc *= ten;
    acc += BigInt{c - '0'};
  }
  limbs_ = std::move(acc.limbs_);
  negative_ = neg && !limbs_.empty();
}

void BigInt::trim() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
  if (limbs_.empty()) negative_ = false;
}

void BigInt::set_mag_u128(unsigned __int128 mag, bool negative) {
  limbs_.clear();
  while (mag != 0) {
    limbs_.push_back(static_cast<Limb>(mag & 0xffffffffu));
    mag >>= kLimbBits;
  }
  negative_ = negative && !limbs_.empty();
}

std::size_t BigInt::bit_length() const {
  if (limbs_.empty()) return 0;
  std::size_t bits = (limbs_.size() - 1) * kLimbBits;
  Limb top = limbs_.back();
  while (top != 0) {
    ++bits;
    top >>= 1;
  }
  return bits;
}

BigInt BigInt::abs() const {
  BigInt r = *this;
  r.negative_ = false;
  return r;
}

BigInt BigInt::negated() const {
  BigInt r = *this;
  if (!r.limbs_.empty()) r.negative_ = !r.negative_;
  return r;
}

int BigInt::compare_magnitude(const Limbs& a, const Limbs& b) {
  if (a.size() != b.size()) return a.size() < b.size() ? -1 : 1;
  for (std::size_t i = a.size(); i-- > 0;) {
    if (a[i] != b[i]) return a[i] < b[i] ? -1 : 1;
  }
  return 0;
}

BigInt::Limbs BigInt::add_magnitude(const Limbs& a, const Limbs& b) {
  const auto& longer = a.size() >= b.size() ? a : b;
  const auto& shorter = a.size() >= b.size() ? b : a;
  Limbs out;
  out.reserve(longer.size() + 1);
  DoubleLimb carry = 0;
  for (std::size_t i = 0; i < longer.size(); ++i) {
    DoubleLimb s = carry + longer[i];
    if (i < shorter.size()) s += shorter[i];
    out.push_back(static_cast<Limb>(s & 0xffffffffu));
    carry = s >> 32;
  }
  if (carry) out.push_back(static_cast<Limb>(carry));
  return out;
}

BigInt::Limbs BigInt::sub_magnitude(const Limbs& a, const Limbs& b) {
  Limbs out;
  out.reserve(a.size());
  std::int64_t borrow = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    std::int64_t d = static_cast<std::int64_t>(a[i]) - borrow -
                     (i < b.size() ? static_cast<std::int64_t>(b[i]) : 0);
    if (d < 0) {
      d += (std::int64_t{1} << 32);
      borrow = 1;
    } else {
      borrow = 0;
    }
    out.push_back(static_cast<Limb>(d));
  }
  while (!out.empty() && out.back() == 0) out.pop_back();
  return out;
}

BigInt::Limbs BigInt::mul_schoolbook(const Limbs& a, const Limbs& b) {
  if (a.empty() || b.empty()) return {};
  // Exact-size construction: a.size()+b.size() limbs always suffices, so
  // this single allocation is the only one the whole routine performs.
  Limbs out(a.size() + b.size(), 0);
  for (std::size_t i = 0; i < a.size(); ++i) {
    DoubleLimb carry = 0;
    DoubleLimb ai = a[i];
    if (ai == 0) continue;  // sparse operands (powers of ten, shifts)
    for (std::size_t j = 0; j < b.size(); ++j) {
      DoubleLimb cur = static_cast<DoubleLimb>(out[i + j]) + ai * b[j] + carry;
      out[i + j] = static_cast<Limb>(cur & 0xffffffffu);
      carry = cur >> 32;
    }
    std::size_t k = i + b.size();
    while (carry) {
      DoubleLimb cur = static_cast<DoubleLimb>(out[k]) + carry;
      out[k] = static_cast<Limb>(cur & 0xffffffffu);
      carry = cur >> 32;
      ++k;
    }
  }
  while (!out.empty() && out.back() == 0) out.pop_back();
  return out;
}

BigInt::Limbs BigInt::mul_karatsuba(const Limbs& a, const Limbs& b) {
  if (a.size() < kKaratsubaThreshold || b.size() < kKaratsubaThreshold)
    return mul_schoolbook(a, b);
  const std::size_t half = std::max(a.size(), b.size()) / 2;
  auto split = [half](const Limbs& v) -> std::pair<Limbs, Limbs> {
    Limbs lo(v.begin(), v.begin() + std::min(half, v.size()));
    Limbs hi;
    if (v.size() > half) hi.assign(v.begin() + half, v.end());
    while (!lo.empty() && lo.back() == 0) lo.pop_back();
    return {std::move(lo), std::move(hi)};
  };
  auto [a0, a1] = split(a);
  auto [b0, b1] = split(b);
  Limbs z0 = mul_karatsuba(a0, b0);
  Limbs z2 = mul_karatsuba(a1, b1);
  Limbs sa = add_magnitude(a0, a1);
  Limbs sb = add_magnitude(b0, b1);
  Limbs z1 = mul_karatsuba(sa, sb);
  z1 = sub_magnitude(z1, z0);
  z1 = sub_magnitude(z1, z2);
  // result = z0 + z1 << (32*half) + z2 << (64*half)
  Limbs out(std::max({z0.size(), z1.size() + half, z2.size() + 2 * half}) + 1,
            0);
  auto add_at = [&out](const Limbs& v, std::size_t off) {
    DoubleLimb carry = 0;
    std::size_t i = 0;
    for (; i < v.size(); ++i) {
      DoubleLimb cur = static_cast<DoubleLimb>(out[off + i]) + v[i] + carry;
      out[off + i] = static_cast<Limb>(cur & 0xffffffffu);
      carry = cur >> 32;
    }
    while (carry) {
      DoubleLimb cur = static_cast<DoubleLimb>(out[off + i]) + carry;
      out[off + i] = static_cast<Limb>(cur & 0xffffffffu);
      carry = cur >> 32;
      ++i;
    }
  };
  add_at(z0, 0);
  add_at(z1, half);
  add_at(z2, 2 * half);
  while (!out.empty() && out.back() == 0) out.pop_back();
  return out;
}

BigInt::Limbs BigInt::mul_magnitude(const Limbs& a, const Limbs& b) {
  if (a.size() >= kKaratsubaThreshold && b.size() >= kKaratsubaThreshold)
    return mul_karatsuba(a, b);
  return mul_schoolbook(a, b);
}

BigInt& BigInt::add_signed(const BigInt& rhs, bool rhs_negative) {
  if (limbs_.size() <= 2 && rhs.limbs_.size() <= 2) {
    __int128 a = static_cast<__int128>(mag_u64());
    if (negative_) a = -a;
    __int128 b = static_cast<__int128>(rhs.mag_u64());
    if (rhs_negative) b = -b;
    const __int128 s = a + b;
    set_mag_u128(s < 0 ? static_cast<unsigned __int128>(-s)
                       : static_cast<unsigned __int128>(s),
                 s < 0);
    return *this;
  }
  if (negative_ == rhs_negative) {
    limbs_ = add_magnitude(limbs_, rhs.limbs_);
  } else {
    int cmp = compare_magnitude(limbs_, rhs.limbs_);
    if (cmp == 0) {
      limbs_.clear();
      negative_ = false;
    } else if (cmp > 0) {
      limbs_ = sub_magnitude(limbs_, rhs.limbs_);
    } else {
      limbs_ = sub_magnitude(rhs.limbs_, limbs_);
      negative_ = rhs_negative;
    }
  }
  trim();
  return *this;
}

BigInt& BigInt::operator+=(const BigInt& rhs) {
  return add_signed(rhs, rhs.negative_);
}

BigInt& BigInt::operator-=(const BigInt& rhs) {
  return add_signed(rhs, !rhs.negative_);
}

BigInt& BigInt::operator*=(const BigInt& rhs) {
  if (limbs_.size() <= 2 && rhs.limbs_.size() <= 2) {
    const unsigned __int128 p =
        static_cast<unsigned __int128>(mag_u64()) * rhs.mag_u64();
    set_mag_u128(p, negative_ != rhs.negative_);
    return *this;
  }
  negative_ = negative_ != rhs.negative_;
  limbs_ = mul_magnitude(limbs_, rhs.limbs_);
  trim();
  return *this;
}

std::pair<BigInt::Limbs, BigInt::Limbs> BigInt::divmod_magnitude(
    const Limbs& num, const Limbs& den) {
  if (den.empty()) throw std::domain_error("BigInt: division by zero");
  if (compare_magnitude(num, den) < 0) return {{}, num};
  if (den.size() == 1) {
    // Fast path: single-limb divisor.
    Limbs quot(num.size(), 0);
    DoubleLimb rem = 0;
    DoubleLimb d = den[0];
    for (std::size_t i = num.size(); i-- > 0;) {
      DoubleLimb cur = (rem << 32) | num[i];
      quot[i] = static_cast<Limb>(cur / d);
      rem = cur % d;
    }
    while (!quot.empty() && quot.back() == 0) quot.pop_back();
    Limbs r;
    if (rem) r.push_back(static_cast<Limb>(rem));
    return {std::move(quot), std::move(r)};
  }
  // Knuth algorithm D with normalization.
  unsigned shift = 0;
  Limb top = den.back();
  while ((top & 0x80000000u) == 0) {
    top <<= 1;
    ++shift;
  }
  auto shl = [](const Limbs& v, unsigned s) {
    if (s == 0) return v;
    Limbs out(v.size() + 1, 0);
    for (std::size_t i = 0; i < v.size(); ++i) {
      out[i] |= v[i] << s;
      out[i + 1] = v[i] >> (32 - s);
    }
    while (!out.empty() && out.back() == 0) out.pop_back();
    return out;
  };
  Limbs u = shl(num, shift);
  Limbs v = shl(den, shift);
  const std::size_t n = v.size();
  const std::size_t m = u.size() - n;
  u.resize(u.size() + 1, 0);  // extra high limb
  Limbs quot(m + 1, 0);
  const DoubleLimb base = DoubleLimb{1} << 32;
  for (std::size_t j = m + 1; j-- > 0;) {
    DoubleLimb numerator = (static_cast<DoubleLimb>(u[j + n]) << 32) | u[j + n - 1];
    DoubleLimb qhat = numerator / v[n - 1];
    DoubleLimb rhat = numerator % v[n - 1];
    while (qhat >= base ||
           qhat * v[n - 2] > ((rhat << 32) | u[j + n - 2])) {
      --qhat;
      rhat += v[n - 1];
      if (rhat >= base) break;
    }
    // Multiply-subtract qhat*v from u[j..j+n].
    std::int64_t borrow = 0;
    DoubleLimb carry = 0;
    for (std::size_t i = 0; i < n; ++i) {
      DoubleLimb p = qhat * v[i] + carry;
      carry = p >> 32;
      std::int64_t t = static_cast<std::int64_t>(u[i + j]) -
                       static_cast<std::int64_t>(p & 0xffffffffu) - borrow;
      if (t < 0) {
        t += static_cast<std::int64_t>(base);
        borrow = 1;
      } else {
        borrow = 0;
      }
      u[i + j] = static_cast<Limb>(t);
    }
    std::int64_t t = static_cast<std::int64_t>(u[j + n]) -
                     static_cast<std::int64_t>(carry) - borrow;
    if (t < 0) {
      // qhat was one too large: add back.
      t += static_cast<std::int64_t>(base);
      --qhat;
      DoubleLimb c2 = 0;
      for (std::size_t i = 0; i < n; ++i) {
        DoubleLimb s = static_cast<DoubleLimb>(u[i + j]) + v[i] + c2;
        u[i + j] = static_cast<Limb>(s & 0xffffffffu);
        c2 = s >> 32;
      }
      t += static_cast<std::int64_t>(c2);
      t &= static_cast<std::int64_t>(base - 1);
    }
    u[j + n] = static_cast<Limb>(t);
    quot[j] = static_cast<Limb>(qhat);
  }
  while (!quot.empty() && quot.back() == 0) quot.pop_back();
  // Remainder = u[0..n) >> shift.
  Limbs rem(u.begin(), u.begin() + n);
  if (shift) {
    for (std::size_t i = 0; i + 1 < rem.size(); ++i)
      rem[i] = (rem[i] >> shift) | (rem[i + 1] << (32 - shift));
    rem.back() >>= shift;
  }
  while (!rem.empty() && rem.back() == 0) rem.pop_back();
  return {std::move(quot), std::move(rem)};
}

std::pair<BigInt, BigInt> BigInt::div_mod(const BigInt& num, const BigInt& den) {
  if (den.limbs_.empty()) throw std::domain_error("BigInt: division by zero");
  if (num.limbs_.size() <= 2 && den.limbs_.size() <= 2) {
    const std::uint64_t n = num.mag_u64();
    const std::uint64_t d = den.mag_u64();
    BigInt q, r;
    q.set_mag_u128(n / d, num.negative_ != den.negative_);
    r.set_mag_u128(n % d, num.negative_);
    return {std::move(q), std::move(r)};
  }
  auto [qm, rm] = divmod_magnitude(num.limbs_, den.limbs_);
  BigInt q, r;
  q.limbs_ = std::move(qm);
  r.limbs_ = std::move(rm);
  q.negative_ = !q.limbs_.empty() && (num.negative_ != den.negative_);
  r.negative_ = !r.limbs_.empty() && num.negative_;
  return {std::move(q), std::move(r)};
}

BigInt& BigInt::operator/=(const BigInt& rhs) {
  *this = div_mod(*this, rhs).first;
  return *this;
}

BigInt& BigInt::operator%=(const BigInt& rhs) {
  *this = div_mod(*this, rhs).second;
  return *this;
}

std::strong_ordering operator<=>(const BigInt& a, const BigInt& b) {
  if (a.negative_ != b.negative_)
    return a.negative_ ? std::strong_ordering::less
                       : std::strong_ordering::greater;
  int cmp = BigInt::compare_magnitude(a.limbs_, b.limbs_);
  if (a.negative_) cmp = -cmp;
  if (cmp < 0) return std::strong_ordering::less;
  if (cmp > 0) return std::strong_ordering::greater;
  return std::strong_ordering::equal;
}

namespace {

/// Binary gcd on machine words (operands need not be odd).
std::uint64_t gcd_u64(std::uint64_t a, std::uint64_t b) {
  if (a == 0) return b;
  if (b == 0) return a;
  const int shift = std::countr_zero(a | b);
  a >>= std::countr_zero(a);
  while (b != 0) {
    b >>= std::countr_zero(b);
    if (a > b) std::swap(a, b);
    b -= a;
  }
  return a << shift;
}

}  // namespace

BigInt BigInt::gcd(BigInt a, BigInt b) {
  a.negative_ = false;
  b.negative_ = false;
  if (a.is_zero()) return b;
  if (b.is_zero()) return a;
  if (a.limbs_.size() <= 2 && b.limbs_.size() <= 2) {
    a.set_mag_u128(gcd_u64(a.mag_u64(), b.mag_u64()), false);
    return a;
  }
  auto trailing_zeros = [](const Limbs& v) {
    std::size_t bits = 0;
    std::size_t i = 0;
    while (v[i] == 0) {
      bits += kLimbBits;
      ++i;
    }
    return bits + static_cast<std::size_t>(std::countr_zero(v[i]));
  };
  auto shr_in_place = [](Limbs& v, std::size_t bits) {
    const std::size_t limb_shift = bits / kLimbBits;
    const unsigned bit_shift = static_cast<unsigned>(bits % kLimbBits);
    if (limb_shift) v.erase_prefix(limb_shift);
    if (bit_shift && !v.empty()) {
      for (std::size_t i = 0; i + 1 < v.size(); ++i)
        v[i] = (v[i] >> bit_shift) | (v[i + 1] << (kLimbBits - bit_shift));
      v.back() >>= bit_shift;
    }
    while (!v.empty() && v.back() == 0) v.pop_back();
  };
  auto fits_u64 = [](const Limbs& v) { return v.size() <= 2; };
  auto to_u64 = [](const Limbs& v) {
    std::uint64_t out = v.empty() ? 0 : v[0];
    if (v.size() == 2) out |= static_cast<std::uint64_t>(v[1]) << 32;
    return out;
  };
  // gcd(a, b) = 2^common * gcd(a odd-part, b odd-part) — factor the shared
  // power of two out once, then run odd-only Stein.
  const std::size_t common =
      std::min(trailing_zeros(a.limbs_), trailing_zeros(b.limbs_));
  shr_in_place(a.limbs_, trailing_zeros(a.limbs_));
  shr_in_place(b.limbs_, trailing_zeros(b.limbs_));
  std::uint64_t word_gcd = 0;
  for (;;) {
    if (fits_u64(a.limbs_) && fits_u64(b.limbs_)) {
      word_gcd = gcd_u64(to_u64(a.limbs_), to_u64(b.limbs_));
      break;
    }
    const int cmp = compare_magnitude(a.limbs_, b.limbs_);
    if (cmp == 0) {
      word_gcd = 0;  // answer is a itself
      break;
    }
    if (cmp < 0) a.limbs_.swap(b.limbs_);
    // a, b odd and a > b: a - b is even, so at least one halving follows.
    a.limbs_ = sub_magnitude(a.limbs_, b.limbs_);
    shr_in_place(a.limbs_, trailing_zeros(a.limbs_));
  }
  BigInt g;
  if (word_gcd != 0) {
    g.set_mag_u128(word_gcd, false);
  } else {
    g.limbs_ = std::move(a.limbs_);
  }
  return common ? g.shifted_left(common) : g;
}

std::uint64_t BigInt::mod_u64(std::uint64_t m) const {
  if (m == 0) throw std::domain_error("BigInt: mod_u64 by zero");
  std::uint64_t rem = 0;
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    const unsigned __int128 cur =
        (static_cast<unsigned __int128>(rem) << kLimbBits) | limbs_[i];
    rem = static_cast<std::uint64_t>(cur % m);
  }
  if (negative_ && rem != 0) rem = m - rem;
  return rem;
}

BigInt BigInt::pow(unsigned e) const {
  BigInt base = *this;
  BigInt result{1};
  while (e != 0) {
    if (e & 1u) result *= base;
    e >>= 1;
    if (e != 0) base *= base;
  }
  return result;
}

BigInt BigInt::pow10(unsigned e) { return BigInt{10}.pow(e); }

BigInt BigInt::shifted_left(std::size_t bits) const {
  if (is_zero() || bits == 0) return *this;
  BigInt out;
  out.negative_ = negative_;
  const std::size_t limb_shift = bits / kLimbBits;
  const unsigned bit_shift = static_cast<unsigned>(bits % kLimbBits);
  out.limbs_.assign(limbs_.size() + limb_shift + 1, 0);
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    out.limbs_[i + limb_shift] |= bit_shift ? (limbs_[i] << bit_shift) : limbs_[i];
    if (bit_shift)
      out.limbs_[i + limb_shift + 1] = limbs_[i] >> (kLimbBits - bit_shift);
  }
  out.trim();
  return out;
}

BigInt BigInt::shifted_right(std::size_t bits) const {
  if (is_zero()) return {};
  const std::size_t limb_shift = bits / kLimbBits;
  if (limb_shift >= limbs_.size()) return {};
  const unsigned bit_shift = static_cast<unsigned>(bits % kLimbBits);
  BigInt out;
  out.negative_ = negative_;
  out.limbs_.assign(limbs_.begin() + limb_shift, limbs_.end());
  if (bit_shift) {
    for (std::size_t i = 0; i + 1 < out.limbs_.size(); ++i)
      out.limbs_[i] =
          (out.limbs_[i] >> bit_shift) | (out.limbs_[i + 1] << (kLimbBits - bit_shift));
    out.limbs_.back() >>= bit_shift;
  }
  out.trim();
  return out;
}

std::string BigInt::to_string() const {
  if (is_zero()) return "0";
  // Repeated division by 1e9 (fits in a limb-sized chunk).
  Limbs mag = limbs_;
  std::string digits;
  const DoubleLimb chunk = 1000000000ull;
  while (!mag.empty()) {
    DoubleLimb rem = 0;
    for (std::size_t i = mag.size(); i-- > 0;) {
      DoubleLimb cur = (rem << 32) | mag[i];
      mag[i] = static_cast<Limb>(cur / chunk);
      rem = cur % chunk;
    }
    while (!mag.empty() && mag.back() == 0) mag.pop_back();
    for (int d = 0; d < 9; ++d) {
      digits.push_back(static_cast<char>('0' + rem % 10));
      rem /= 10;
    }
  }
  while (digits.size() > 1 && digits.back() == '0') digits.pop_back();
  if (negative_) digits.push_back('-');
  std::reverse(digits.begin(), digits.end());
  return digits;
}

double BigInt::to_double() const {
  if (is_zero()) return 0.0;
  // Use the top 64 bits of the magnitude plus the exponent.
  const std::size_t bits = bit_length();
  double result;
  if (bits <= 64) {
    std::uint64_t mag = 0;
    for (std::size_t i = limbs_.size(); i-- > 0;)
      mag = (mag << 32) | limbs_[i];
    result = static_cast<double>(mag);
  } else {
    BigInt top = shifted_right(bits - 64);
    std::uint64_t mag = 0;
    for (std::size_t i = top.limbs_.size(); i-- > 0;)
      mag = (mag << 32) | top.limbs_[i];
    result = std::ldexp(static_cast<double>(mag),
                        static_cast<int>(bits - 64));
  }
  return negative_ ? -result : result;
}

bool BigInt::fits_int64() const {
  if (limbs_.size() > 2) return false;
  if (limbs_.size() < 2) return true;
  std::uint64_t mag = (static_cast<std::uint64_t>(limbs_[1]) << 32) | limbs_[0];
  if (negative_) return mag <= (std::uint64_t{1} << 63);
  return mag < (std::uint64_t{1} << 63);
}

std::int64_t BigInt::to_int64() const {
  if (!fits_int64()) throw std::range_error("BigInt: value does not fit int64");
  if (is_zero()) return 0;
  std::uint64_t mag = limbs_[0];
  if (limbs_.size() == 2) mag |= static_cast<std::uint64_t>(limbs_[1]) << 32;
  if (negative_) return static_cast<std::int64_t>(~mag + 1);
  return static_cast<std::int64_t>(mag);
}

std::ostream& operator<<(std::ostream& os, const BigInt& v) {
  return os << v.to_string();
}

}  // namespace spiv::exact
