#include "exact/matrix.hpp"

#include <ostream>
#include <stdexcept>

#include "exact/int_system.hpp"

namespace spiv::exact {

RatMatrix::RatMatrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols) {}

RatMatrix::RatMatrix(std::initializer_list<std::initializer_list<Rational>> rows) {
  rows_ = rows.size();
  cols_ = rows_ == 0 ? 0 : rows.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& row : rows) {
    if (row.size() != cols_)
      throw std::invalid_argument("RatMatrix: ragged initializer");
    for (const auto& v : row) data_.push_back(v);
  }
}

RatMatrix RatMatrix::identity(std::size_t n) {
  RatMatrix m{n, n};
  for (std::size_t i = 0; i < n; ++i) m(i, i) = Rational{1};
  return m;
}

RatMatrix& RatMatrix::operator+=(const RatMatrix& rhs) {
  if (rows_ != rhs.rows_ || cols_ != rhs.cols_)
    throw std::invalid_argument("RatMatrix: shape mismatch in +=");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += rhs.data_[i];
  return *this;
}

RatMatrix& RatMatrix::operator-=(const RatMatrix& rhs) {
  if (rows_ != rhs.rows_ || cols_ != rhs.cols_)
    throw std::invalid_argument("RatMatrix: shape mismatch in -=");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= rhs.data_[i];
  return *this;
}

RatMatrix& RatMatrix::operator*=(const Rational& s) {
  for (auto& v : data_) v *= s;
  return *this;
}

RatMatrix operator*(const RatMatrix& a, const RatMatrix& b) {
  if (a.cols_ != b.rows_)
    throw std::invalid_argument("RatMatrix: shape mismatch in *");
  RatMatrix out{a.rows_, b.cols_};
  for (std::size_t i = 0; i < a.rows_; ++i) {
    for (std::size_t k = 0; k < a.cols_; ++k) {
      const Rational& aik = a(i, k);
      if (aik.is_zero()) continue;
      for (std::size_t j = 0; j < b.cols_; ++j) {
        if (b(k, j).is_zero()) continue;
        out(i, j) += aik * b(k, j);
      }
    }
  }
  return out;
}

RatMatrix RatMatrix::operator-() const {
  RatMatrix out = *this;
  for (auto& v : out.data_) v = -v;
  return out;
}

RatMatrix RatMatrix::transposed() const {
  RatMatrix out{cols_, rows_};
  for (std::size_t i = 0; i < rows_; ++i)
    for (std::size_t j = 0; j < cols_; ++j) out(j, i) = (*this)(i, j);
  return out;
}

bool RatMatrix::is_symmetric() const {
  if (!is_square()) return false;
  for (std::size_t i = 0; i < rows_; ++i)
    for (std::size_t j = i + 1; j < cols_; ++j)
      if ((*this)(i, j) != (*this)(j, i)) return false;
  return true;
}

RatMatrix RatMatrix::symmetrized() const {
  if (!is_square())
    throw std::invalid_argument("RatMatrix: symmetrized requires square");
  RatMatrix out{rows_, cols_};
  const Rational half{1, 2};
  for (std::size_t i = 0; i < rows_; ++i)
    for (std::size_t j = 0; j < cols_; ++j)
      out(i, j) = ((*this)(i, j) + (*this)(j, i)) * half;
  return out;
}

namespace {

using detail::IntSystem;
using detail::clear_denominators;

/// One sweep of fraction-free Bareiss elimination on an integer augmented
/// system, with smallest-entry pivoting.  Every division by the previous
/// pivot is exact (Sylvester's identity), so no gcd/normalization runs
/// inside the elimination.  Returns false when the matrix is singular;
/// `parity` flips per row swap.  Checks `deadline` at row granularity (the
/// atomic cancel poll is cheap; Clock::now() only every few rows).
bool bareiss_eliminate(IntSystem& sys, const Deadline& deadline,
                       bool* parity) {
  const std::size_t n = sys.m.size();
  const std::size_t k = sys.rhs.empty() ? 0 : sys.rhs.front().size();
  BigInt prev{1};
  std::size_t poll = 0;
  for (std::size_t col = 0; col < n; ++col) {
    deadline.check();
    std::size_t pivot = n;
    std::size_t best_bits = 0;
    for (std::size_t r = col; r < n; ++r) {
      if (sys.m[r][col].is_zero()) continue;
      const std::size_t bits = sys.m[r][col].bit_length();
      if (pivot == n || bits < best_bits) {
        pivot = r;
        best_bits = bits;
      }
    }
    if (pivot == n) return false;  // singular
    if (pivot != col) {
      sys.m[pivot].swap(sys.m[col]);
      if (k) sys.rhs[pivot].swap(sys.rhs[col]);
      if (parity) *parity = !*parity;
    }
    const BigInt& p = sys.m[col][col];
    for (std::size_t r = col + 1; r < n; ++r) {
      if ((++poll & 7u) == 0) deadline.check();
      const BigInt f = std::move(sys.m[r][col]);
      sys.m[r][col] = BigInt{};
      // Note: even for f == 0 the row must be rescaled by p/prev to keep
      // every entry a minor of the original matrix (exact divisions).
      for (std::size_t j = col + 1; j < n; ++j)
        sys.m[r][j] = (p * sys.m[r][j] - f * sys.m[col][j]) / prev;
      for (std::size_t j = 0; j < k; ++j)
        sys.rhs[r][j] = (p * sys.rhs[r][j] - f * sys.rhs[col][j]) / prev;
    }
    prev = p;
  }
  return true;
}

}  // namespace

Rational RatMatrix::determinant(const Deadline& deadline) const {
  if (!is_square())
    throw std::invalid_argument("RatMatrix: determinant requires square");
  const std::size_t n = rows_;
  if (n == 0) return Rational{1};
  IntSystem sys = clear_denominators(*this, nullptr);
  bool parity = false;
  if (!bareiss_eliminate(sys, deadline, &parity)) return Rational{};
  // The last Bareiss pivot is det of the scaled integer matrix; undo the
  // per-row scaling and the swap parity.
  BigInt scale{1};
  for (const BigInt& l : sys.row_scales) scale *= l;
  BigInt det = sys.m[n - 1][n - 1];
  if (parity) det = -det;
  return Rational{std::move(det), std::move(scale)};
}

std::vector<Rational> RatMatrix::leading_principal_minors() const {
  if (!is_square())
    throw std::invalid_argument("RatMatrix: minors require square");
  const std::size_t n = rows_;
  std::vector<Rational> minors;
  minors.reserve(n);
  // Elimination without row swaps: the product of the first k pivots is the
  // k-th leading principal minor.  When a zero pivot appears the remaining
  // minors are computed directly by determinant of the leading block.
  RatMatrix m = *this;
  Rational prod{1};
  for (std::size_t col = 0; col < n; ++col) {
    if (m(col, col).is_zero()) {
      // Fall back: compute remaining minors as explicit determinants.
      for (std::size_t k = col; k < n; ++k) {
        RatMatrix block{k + 1, k + 1};
        for (std::size_t i = 0; i <= k; ++i)
          for (std::size_t j = 0; j <= k; ++j) block(i, j) = (*this)(i, j);
        minors.push_back(block.determinant());
      }
      return minors;
    }
    prod *= m(col, col);
    minors.push_back(prod);
    const Rational inv_pivot = m(col, col).reciprocal();
    for (std::size_t r = col + 1; r < n; ++r) {
      if (m(r, col).is_zero()) continue;
      const Rational factor = m(r, col) * inv_pivot;
      m(r, col) = Rational{};
      for (std::size_t j = col + 1; j < n; ++j) {
        if (m(col, j).is_zero()) continue;
        m(r, j) -= factor * m(col, j);
      }
    }
  }
  return minors;
}

std::optional<RatMatrix> RatMatrix::solve(const RatMatrix& b,
                                          const Deadline& deadline) const {
  if (!is_square() || b.rows_ != rows_)
    throw std::invalid_argument("RatMatrix: solve shape mismatch");
  const std::size_t n = rows_;
  const std::size_t k = b.cols_;
  if (n == 0) return RatMatrix{0, k};
  IntSystem sys = clear_denominators(*this, &b);
  if (!bareiss_eliminate(sys, deadline, nullptr)) return std::nullopt;
  // Back substitution on the integer triangle, back in Rational arithmetic.
  RatMatrix x{n, k};
  for (std::size_t col = 0; col < k; ++col) {
    for (std::size_t i = n; i-- > 0;) {
      deadline.check();
      Rational acc{sys.rhs[i][col], BigInt{1}};
      for (std::size_t j = i + 1; j < n; ++j) {
        if (sys.m[i][j].is_zero() || x(j, col).is_zero()) continue;
        acc -= Rational{sys.m[i][j], BigInt{1}} * x(j, col);
      }
      x(i, col) = acc / Rational{sys.m[i][i], BigInt{1}};
    }
  }
  return x;
}

std::optional<std::vector<Rational>> RatMatrix::solve(
    const std::vector<Rational>& b, const Deadline& deadline) const {
  if (b.size() != rows_)
    throw std::invalid_argument("RatMatrix: solve rhs size mismatch");
  RatMatrix col{rows_, 1};
  for (std::size_t i = 0; i < rows_; ++i) col(i, 0) = b[i];
  auto x = solve(col, deadline);
  if (!x) return std::nullopt;
  std::vector<Rational> out(rows_);
  for (std::size_t i = 0; i < rows_; ++i) out[i] = (*x)(i, 0);
  return out;
}

std::optional<RatMatrix> RatMatrix::inverse() const {
  if (!is_square())
    throw std::invalid_argument("RatMatrix: inverse requires square");
  return solve(identity(rows_));
}

std::size_t RatMatrix::rank() const {
  RatMatrix m = *this;
  std::size_t rank = 0;
  std::size_t row = 0;
  for (std::size_t col = 0; col < cols_ && row < rows_; ++col) {
    std::size_t pivot = rows_;
    for (std::size_t r = row; r < rows_; ++r) {
      if (!m(r, col).is_zero()) {
        pivot = r;
        break;
      }
    }
    if (pivot == rows_) continue;
    if (pivot != row)
      for (std::size_t j = 0; j < cols_; ++j) std::swap(m(pivot, j), m(row, j));
    const Rational inv_pivot = m(row, col).reciprocal();
    for (std::size_t r = row + 1; r < rows_; ++r) {
      if (m(r, col).is_zero()) continue;
      const Rational factor = m(r, col) * inv_pivot;
      for (std::size_t j = col; j < cols_; ++j) {
        if (m(row, j).is_zero()) continue;
        m(r, j) -= factor * m(row, j);
      }
    }
    ++row;
    ++rank;
  }
  return rank;
}

std::optional<RatLdlt> RatMatrix::ldlt() const {
  if (!is_square())
    throw std::invalid_argument("RatMatrix: ldlt requires square");
  const std::size_t n = rows_;
  RatMatrix l = identity(n);
  std::vector<Rational> d(n);
  // Column-by-column: d_j = a_jj - sum_k l_jk^2 d_k;
  // l_ij = (a_ij - sum_k l_ik l_jk d_k)/d_j.
  for (std::size_t j = 0; j < n; ++j) {
    Rational dj = (*this)(j, j);
    for (std::size_t k = 0; k < j; ++k) {
      if (l(j, k).is_zero() || d[k].is_zero()) continue;
      dj -= l(j, k) * l(j, k) * d[k];
    }
    if (dj.is_zero()) return std::nullopt;
    d[j] = dj;
    const Rational inv_dj = dj.reciprocal();
    for (std::size_t i = j + 1; i < n; ++i) {
      Rational acc = (*this)(i, j);
      for (std::size_t k = 0; k < j; ++k) {
        if (l(i, k).is_zero() || l(j, k).is_zero() || d[k].is_zero()) continue;
        acc -= l(i, k) * l(j, k) * d[k];
      }
      l(i, j) = acc * inv_dj;
    }
  }
  return RatLdlt{std::move(l), std::move(d)};
}

Rational RatMatrix::quad_form(const std::vector<Rational>& x) const {
  if (!is_square() || x.size() != rows_)
    throw std::invalid_argument("RatMatrix: quad_form shape mismatch");
  Rational acc;
  for (std::size_t i = 0; i < rows_; ++i) {
    if (x[i].is_zero()) continue;
    Rational row_acc;
    for (std::size_t j = 0; j < cols_; ++j) {
      if ((*this)(i, j).is_zero() || x[j].is_zero()) continue;
      row_acc += (*this)(i, j) * x[j];
    }
    acc += x[i] * row_acc;
  }
  return acc;
}

std::vector<Rational> RatMatrix::apply(const std::vector<Rational>& x) const {
  if (x.size() != cols_)
    throw std::invalid_argument("RatMatrix: apply shape mismatch");
  std::vector<Rational> out(rows_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t j = 0; j < cols_; ++j) {
      if ((*this)(i, j).is_zero() || x[j].is_zero()) continue;
      out[i] += (*this)(i, j) * x[j];
    }
  }
  return out;
}

std::size_t RatMatrix::max_entry_bits() const {
  std::size_t best = 0;
  for (const auto& v : data_) best = std::max(best, v.bit_size());
  return best;
}

std::vector<double> RatMatrix::to_double_row_major() const {
  std::vector<double> out;
  out.reserve(data_.size());
  for (const auto& v : data_) out.push_back(v.to_double());
  return out;
}

std::ostream& operator<<(std::ostream& os, const RatMatrix& m) {
  for (std::size_t i = 0; i < m.rows(); ++i) {
    os << (i == 0 ? "[" : " ");
    for (std::size_t j = 0; j < m.cols(); ++j)
      os << m(i, j) << (j + 1 == m.cols() ? "" : ", ");
    os << (i + 1 == m.rows() ? "]" : ";\n");
  }
  return os;
}

RatMatrix rat_matrix_from_doubles(const double* data, std::size_t rows,
                                  std::size_t cols, int digits) {
  RatMatrix out{rows, cols};
  for (std::size_t i = 0; i < rows; ++i)
    for (std::size_t j = 0; j < cols; ++j) {
      const double v = data[i * cols + j];
      out(i, j) = digits > 0 ? Rational::from_double_rounded(v, digits)
                             : Rational::from_double_exact(v);
    }
  return out;
}

RatMatrix kronecker(const RatMatrix& a, const RatMatrix& b) {
  RatMatrix out{a.rows() * b.rows(), a.cols() * b.cols()};
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < a.cols(); ++j) {
      if (a(i, j).is_zero()) continue;
      for (std::size_t k = 0; k < b.rows(); ++k)
        for (std::size_t l = 0; l < b.cols(); ++l) {
          if (b(k, l).is_zero()) continue;
          out(i * b.rows() + k, j * b.cols() + l) = a(i, j) * b(k, l);
        }
    }
  return out;
}

}  // namespace spiv::exact
