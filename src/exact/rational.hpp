// spiv::exact — exact rational numbers on top of BigInt.
//
// Rational is the scalar type of the symbolic validation layer: candidate
// Lyapunov matrices are rounded to a fixed number of significant decimal
// digits, converted losslessly to Rational, and all positive-definiteness /
// Lie-derivative checks are carried out in exact arithmetic.
#pragma once

#include <compare>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>

#include "exact/bigint.hpp"

namespace spiv::exact {

/// Exact rational number.
///
/// Invariants: denominator > 0; gcd(|num|, den) == 1; zero is 0/1.
class Rational {
 public:
  /// Zero.
  Rational() : num_(0), den_(1) {}

  Rational(std::int64_t v) : num_(v), den_(1) {}  // NOLINT: literal convenience

  /// num/den, normalized. Throws std::domain_error if den == 0.
  Rational(BigInt num, BigInt den);

  Rational(std::int64_t num, std::int64_t den)
      : Rational(BigInt{num}, BigInt{den}) {}

  /// Parse "a", "a/b" or decimal "a.b" / "-a.bEk" notation (exact).
  explicit Rational(std::string_view text);

  /// Exact conversion of a finite double (every finite double is a rational
  /// with power-of-two denominator).  Throws std::domain_error on NaN/inf.
  [[nodiscard]] static Rational from_double_exact(double v);

  /// Decimal rounding of `v` to `digits` significant figures, returned as an
  /// exact rational (e.g. 0.0123456, 3 digits -> 123/10000).  This mirrors
  /// the paper's rounding of synthesized Lyapunov matrices before symbolic
  /// validation.  digits must be >= 1.
  [[nodiscard]] static Rational from_double_rounded(double v, int digits);

  [[nodiscard]] const BigInt& num() const { return num_; }
  [[nodiscard]] const BigInt& den() const { return den_; }

  [[nodiscard]] bool is_zero() const { return num_.is_zero(); }
  [[nodiscard]] bool is_negative() const { return num_.is_negative(); }
  [[nodiscard]] bool is_one() const { return num_.is_one() && den_.is_one(); }
  [[nodiscard]] bool is_integer() const { return den_.is_one(); }
  [[nodiscard]] int sign() const { return num_.sign(); }

  [[nodiscard]] Rational abs() const;
  [[nodiscard]] Rational reciprocal() const;

  Rational& operator+=(const Rational& rhs);
  Rational& operator-=(const Rational& rhs);
  Rational& operator*=(const Rational& rhs);
  Rational& operator/=(const Rational& rhs);

  friend Rational operator+(Rational a, const Rational& b) { return a += b; }
  friend Rational operator-(Rational a, const Rational& b) { return a -= b; }
  friend Rational operator*(Rational a, const Rational& b) { return a *= b; }
  friend Rational operator/(Rational a, const Rational& b) { return a /= b; }
  Rational operator-() const;

  friend bool operator==(const Rational& a, const Rational& b) {
    return a.num_ == b.num_ && a.den_ == b.den_;
  }
  friend std::strong_ordering operator<=>(const Rational& a, const Rational& b);

  [[nodiscard]] Rational pow(int e) const;

  [[nodiscard]] double to_double() const;
  [[nodiscard]] std::string to_string() const;

  /// Total bit size of numerator+denominator (coefficient-growth metric).
  [[nodiscard]] std::size_t bit_size() const {
    return num_.bit_length() + den_.bit_length();
  }

  friend std::ostream& operator<<(std::ostream& os, const Rational& v);

 private:
  BigInt num_;
  BigInt den_;  // > 0

  void normalize();
};

/// min/max by value.
[[nodiscard]] inline const Rational& min(const Rational& a, const Rational& b) {
  return b < a ? b : a;
}
[[nodiscard]] inline const Rational& max(const Rational& a, const Rational& b) {
  return a < b ? b : a;
}

/// Integer square-root helper: largest s with s*s <= v (v >= 0).
[[nodiscard]] BigInt isqrt(const BigInt& v);

/// Rational sqrt bracket: returns (lo, hi) with lo^2 <= v <= hi^2 and
/// hi - lo <= 1/2^precision_bits.  Used to compare quantities involving
/// square roots without leaving exact arithmetic.
[[nodiscard]] std::pair<Rational, Rational> sqrt_bracket(const Rational& v,
                                                         unsigned precision_bits);

}  // namespace spiv::exact
