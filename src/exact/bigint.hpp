// spiv::exact — arbitrary-precision signed integer arithmetic.
//
// BigInt is the foundation of the exact (symbolic) layer used for the
// SMT-style validation of Lyapunov candidates.  It is a sign-magnitude
// number with base-2^32 limbs stored little-endian.  All operations are
// exact; overflow cannot occur.  Performance targets are the matrix sizes
// of the paper (up to ~22x22 rational matrices, vech systems of a few
// hundred unknowns); multiplication uses schoolbook with uint64
// accumulation plus Karatsuba above a threshold.
#pragma once

#include <cstdint>
#include <compare>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace spiv::exact {

/// Arbitrary-precision signed integer (sign-magnitude, base 2^32).
///
/// Invariants:
///  - limbs_ has no trailing zero limbs (most significant limb nonzero),
///  - zero is represented by an empty limb vector and negative_ == false.
class BigInt {
 public:
  /// Zero.
  BigInt() = default;

  /// From a native signed integer.
  BigInt(std::int64_t v);  // NOLINT(google-explicit-constructor): numeric literal convenience

  /// Parse a base-10 string: optional leading '-' or '+', then digits.
  /// Throws std::invalid_argument on malformed input.
  explicit BigInt(std::string_view decimal);

  [[nodiscard]] bool is_zero() const { return limbs_.empty(); }
  [[nodiscard]] bool is_negative() const { return negative_; }
  [[nodiscard]] bool is_one() const {
    return !negative_ && limbs_.size() == 1 && limbs_[0] == 1;
  }

  /// Number of significant bits of |*this| (0 for zero).
  [[nodiscard]] std::size_t bit_length() const;

  /// Sign as -1, 0, +1.
  [[nodiscard]] int sign() const {
    return is_zero() ? 0 : (negative_ ? -1 : 1);
  }

  [[nodiscard]] BigInt abs() const;
  [[nodiscard]] BigInt negated() const;

  BigInt& operator+=(const BigInt& rhs);
  BigInt& operator-=(const BigInt& rhs);
  BigInt& operator*=(const BigInt& rhs);
  /// Truncated division (C semantics: quotient rounds toward zero).
  /// Throws std::domain_error on division by zero.
  BigInt& operator/=(const BigInt& rhs);
  /// Remainder matching truncated division: sign follows the dividend.
  BigInt& operator%=(const BigInt& rhs);

  friend BigInt operator+(BigInt a, const BigInt& b) { return a += b; }
  friend BigInt operator-(BigInt a, const BigInt& b) { return a -= b; }
  friend BigInt operator*(BigInt a, const BigInt& b) { return a *= b; }
  friend BigInt operator/(BigInt a, const BigInt& b) { return a /= b; }
  friend BigInt operator%(BigInt a, const BigInt& b) { return a %= b; }
  BigInt operator-() const { return negated(); }

  friend bool operator==(const BigInt& a, const BigInt& b) {
    return a.negative_ == b.negative_ && a.limbs_ == b.limbs_;
  }
  friend std::strong_ordering operator<=>(const BigInt& a, const BigInt& b);

  /// Quotient and remainder in one pass (truncated division).
  [[nodiscard]] static std::pair<BigInt, BigInt> div_mod(const BigInt& num,
                                                         const BigInt& den);

  /// Greatest common divisor, always non-negative. gcd(0,0) == 0.
  /// Binary (Stein) algorithm: shift/subtract only — no divmod per step —
  /// with a single-word kernel once both operands fit in uint64.  This
  /// sits under every Rational::normalize() on the exact hot path.
  [[nodiscard]] static BigInt gcd(BigInt a, BigInt b);

  /// Canonical residue of the signed value in [0, m); throws
  /// std::domain_error when m == 0.  One u128 division per limb — the
  /// BigInt -> machine-word reduction of the multi-modular solver.
  [[nodiscard]] std::uint64_t mod_u64(std::uint64_t m) const;

  /// this^e for e >= 0 (binary exponentiation).
  [[nodiscard]] BigInt pow(unsigned e) const;

  /// 10^e.
  [[nodiscard]] static BigInt pow10(unsigned e);

  /// Multiply by 2^k (limb/bit shifts).
  [[nodiscard]] BigInt shifted_left(std::size_t bits) const;
  /// Divide by 2^k, truncating toward zero.
  [[nodiscard]] BigInt shifted_right(std::size_t bits) const;

  /// Base-10 representation (with leading '-' when negative).
  [[nodiscard]] std::string to_string() const;

  /// Nearest double (round-to-nearest via long-division scaling);
  /// may overflow to +/-inf for huge values.
  [[nodiscard]] double to_double() const;

  /// Exact conversion when the value fits in int64; throws std::range_error
  /// otherwise.
  [[nodiscard]] std::int64_t to_int64() const;

  /// True when the value fits in int64.
  [[nodiscard]] bool fits_int64() const;

  friend std::ostream& operator<<(std::ostream& os, const BigInt& v);

  /// Total limb count (for diagnostics / complexity experiments).
  [[nodiscard]] std::size_t limb_count() const { return limbs_.size(); }

 private:
  using Limb = std::uint32_t;
  using DoubleLimb = std::uint64_t;
  static constexpr unsigned kLimbBits = 32;

  std::vector<Limb> limbs_;  // little-endian, no trailing zeros
  bool negative_ = false;

  void trim();
  // |a| vs |b|
  static int compare_magnitude(const std::vector<Limb>& a,
                               const std::vector<Limb>& b);
  static std::vector<Limb> add_magnitude(const std::vector<Limb>& a,
                                         const std::vector<Limb>& b);
  // requires |a| >= |b|
  static std::vector<Limb> sub_magnitude(const std::vector<Limb>& a,
                                         const std::vector<Limb>& b);
  static std::vector<Limb> mul_magnitude(const std::vector<Limb>& a,
                                         const std::vector<Limb>& b);
  static std::vector<Limb> mul_schoolbook(const std::vector<Limb>& a,
                                          const std::vector<Limb>& b);
  static std::vector<Limb> mul_karatsuba(const std::vector<Limb>& a,
                                         const std::vector<Limb>& b);
  // long division of magnitudes; returns {quot, rem}
  static std::pair<std::vector<Limb>, std::vector<Limb>> divmod_magnitude(
      const std::vector<Limb>& num, const std::vector<Limb>& den);
};

}  // namespace spiv::exact
