// spiv::exact — arbitrary-precision signed integer arithmetic.
//
// BigInt is the foundation of the exact (symbolic) layer used for the
// SMT-style validation of Lyapunov candidates.  It is a sign-magnitude
// number with base-2^32 limbs stored little-endian.  All operations are
// exact; overflow cannot occur.  Performance targets are the matrix sizes
// of the paper (up to ~22x22 rational matrices, vech systems of a few
// hundred unknowns); multiplication uses schoolbook with uint64
// accumulation plus Karatsuba above a threshold.
//
// Storage is allocation-light: values below 2^128 live inline in the
// BigInt itself (detail::LimbVec keeps 4 limbs in-place), and larger
// magnitudes draw power-of-two heap blocks from a thread-local pool so the
// CRT folding and integer-verification loops of the multi-modular solver
// recycle their temporaries instead of hammering the allocator.  Values
// that fit two limbs additionally take branch-free int128 fast paths
// through +, -, *, and div_mod.
#pragma once

#include <cstdint>
#include <cstring>
#include <compare>
#include <iosfwd>
#include <string>
#include <string_view>
#include <utility>

namespace spiv::exact {

namespace detail {

/// Small-vector limb storage: kInlineLimbs limbs in-place, larger sizes in
/// pow2-capacity heap blocks recycled through a per-thread free list (see
/// bigint.cpp).  Only the subset of the std::vector interface BigInt needs.
class LimbVec {
 public:
  using value_type = std::uint32_t;
  static constexpr std::size_t kInlineLimbs = 4;

  LimbVec() noexcept : size_(0), cap_(kInlineLimbs) {}
  LimbVec(std::size_t n, value_type fill) : LimbVec() { resize(n, fill); }
  LimbVec(const value_type* first, const value_type* last) : LimbVec() {
    assign(first, last);
  }
  LimbVec(const LimbVec& other) : LimbVec() {
    assign(other.data(), other.data() + other.size_);
  }
  LimbVec(LimbVec&& other) noexcept : size_(other.size_), cap_(other.cap_) {
    if (other.on_heap())
      heap_ = other.heap_;
    else
      std::memcpy(inline_, other.inline_, sizeof inline_);
    other.size_ = 0;
    other.cap_ = kInlineLimbs;
  }
  LimbVec& operator=(const LimbVec& other) {
    if (this != &other) assign(other.data(), other.data() + other.size_);
    return *this;
  }
  LimbVec& operator=(LimbVec&& other) noexcept {
    if (this == &other) return *this;
    release();
    size_ = other.size_;
    cap_ = other.cap_;
    if (other.on_heap())
      heap_ = other.heap_;
    else
      std::memcpy(inline_, other.inline_, sizeof inline_);
    other.size_ = 0;
    other.cap_ = kInlineLimbs;
    return *this;
  }
  ~LimbVec() { release(); }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] std::size_t capacity() const noexcept { return cap_; }
  [[nodiscard]] bool on_heap() const noexcept { return cap_ != kInlineLimbs; }

  [[nodiscard]] value_type* data() noexcept {
    return on_heap() ? heap_ : inline_;
  }
  [[nodiscard]] const value_type* data() const noexcept {
    return on_heap() ? heap_ : inline_;
  }
  [[nodiscard]] value_type* begin() noexcept { return data(); }
  [[nodiscard]] value_type* end() noexcept { return data() + size_; }
  [[nodiscard]] const value_type* begin() const noexcept { return data(); }
  [[nodiscard]] const value_type* end() const noexcept {
    return data() + size_;
  }

  value_type& operator[](std::size_t i) noexcept { return data()[i]; }
  value_type operator[](std::size_t i) const noexcept { return data()[i]; }
  [[nodiscard]] value_type& back() noexcept { return data()[size_ - 1]; }
  [[nodiscard]] value_type back() const noexcept { return data()[size_ - 1]; }

  void reserve(std::size_t n) {
    if (n > cap_) grow(n);
  }
  void push_back(value_type v) {
    if (size_ == cap_) grow(size_ + 1);
    data()[size_++] = v;
  }
  void pop_back() noexcept { --size_; }
  void clear() noexcept { size_ = 0; }
  void resize(std::size_t n, value_type fill = 0) {
    if (n > size_) {
      reserve(n);
      value_type* p = data();
      for (std::size_t i = size_; i < n; ++i) p[i] = fill;
    }
    size_ = static_cast<std::uint32_t>(n);
  }
  void assign(std::size_t n, value_type fill) {
    size_ = 0;
    resize(n, fill);
  }
  void assign(const value_type* first, const value_type* last) {
    const std::size_t n = static_cast<std::size_t>(last - first);
    reserve(n);
    std::memmove(data(), first, n * sizeof(value_type));
    size_ = static_cast<std::uint32_t>(n);
  }
  /// Drop the k least-significant limbs (right shift by whole limbs).
  void erase_prefix(std::size_t k) noexcept {
    value_type* p = data();
    std::memmove(p, p + k, (size_ - k) * sizeof(value_type));
    size_ -= static_cast<std::uint32_t>(k);
  }
  void swap(LimbVec& other) noexcept {
    LimbVec tmp = std::move(*this);
    *this = std::move(other);
    other = std::move(tmp);
  }

  friend bool operator==(const LimbVec& a, const LimbVec& b) noexcept {
    return a.size_ == b.size_ &&
           std::memcmp(a.data(), b.data(), a.size_ * sizeof(value_type)) == 0;
  }

 private:
  void grow(std::size_t mincap);  // bigint.cpp (pool-backed)
  void release() noexcept;        // bigint.cpp (returns heap blocks)

  std::uint32_t size_;
  std::uint32_t cap_;  ///< == kInlineLimbs iff the inline buffer is active
  union {
    value_type inline_[kInlineLimbs];
    value_type* heap_;
  };
};

}  // namespace detail

/// Arbitrary-precision signed integer (sign-magnitude, base 2^32).
///
/// Invariants:
///  - limbs_ has no trailing zero limbs (most significant limb nonzero),
///  - zero is represented by an empty limb vector and negative_ == false.
class BigInt {
 public:
  /// Zero.
  BigInt() = default;

  /// From a native signed integer.
  BigInt(std::int64_t v);  // NOLINT(google-explicit-constructor): numeric literal convenience

  /// Parse a base-10 string: optional leading '-' or '+', then digits.
  /// Throws std::invalid_argument on malformed input.
  explicit BigInt(std::string_view decimal);

  [[nodiscard]] bool is_zero() const { return limbs_.empty(); }
  [[nodiscard]] bool is_negative() const { return negative_; }
  [[nodiscard]] bool is_one() const {
    return !negative_ && limbs_.size() == 1 && limbs_[0] == 1;
  }

  /// Number of significant bits of |*this| (0 for zero).
  [[nodiscard]] std::size_t bit_length() const;

  /// Sign as -1, 0, +1.
  [[nodiscard]] int sign() const {
    return is_zero() ? 0 : (negative_ ? -1 : 1);
  }

  [[nodiscard]] BigInt abs() const;
  [[nodiscard]] BigInt negated() const;

  BigInt& operator+=(const BigInt& rhs);
  BigInt& operator-=(const BigInt& rhs);
  BigInt& operator*=(const BigInt& rhs);
  /// Truncated division (C semantics: quotient rounds toward zero).
  /// Throws std::domain_error on division by zero.
  BigInt& operator/=(const BigInt& rhs);
  /// Remainder matching truncated division: sign follows the dividend.
  BigInt& operator%=(const BigInt& rhs);

  friend BigInt operator+(BigInt a, const BigInt& b) { return a += b; }
  friend BigInt operator-(BigInt a, const BigInt& b) { return a -= b; }
  friend BigInt operator*(BigInt a, const BigInt& b) { return a *= b; }
  friend BigInt operator/(BigInt a, const BigInt& b) { return a /= b; }
  friend BigInt operator%(BigInt a, const BigInt& b) { return a %= b; }
  BigInt operator-() const { return negated(); }

  friend bool operator==(const BigInt& a, const BigInt& b) {
    return a.negative_ == b.negative_ && a.limbs_ == b.limbs_;
  }
  friend std::strong_ordering operator<=>(const BigInt& a, const BigInt& b);

  /// Quotient and remainder in one pass (truncated division).
  [[nodiscard]] static std::pair<BigInt, BigInt> div_mod(const BigInt& num,
                                                         const BigInt& den);

  /// Greatest common divisor, always non-negative. gcd(0,0) == 0.
  /// Binary (Stein) algorithm: shift/subtract only — no divmod per step —
  /// with a single-word kernel once both operands fit in uint64.  This
  /// sits under every Rational::normalize() on the exact hot path.
  [[nodiscard]] static BigInt gcd(BigInt a, BigInt b);

  /// Canonical residue of the signed value in [0, m); throws
  /// std::domain_error when m == 0.  One u128 division per limb — the
  /// BigInt -> machine-word reduction of the multi-modular solver.
  [[nodiscard]] std::uint64_t mod_u64(std::uint64_t m) const;

  /// this^e for e >= 0 (binary exponentiation).
  [[nodiscard]] BigInt pow(unsigned e) const;

  /// 10^e.
  [[nodiscard]] static BigInt pow10(unsigned e);

  /// Multiply by 2^k (limb/bit shifts).
  [[nodiscard]] BigInt shifted_left(std::size_t bits) const;
  /// Divide by 2^k, truncating toward zero.
  [[nodiscard]] BigInt shifted_right(std::size_t bits) const;

  /// Base-10 representation (with leading '-' when negative).
  [[nodiscard]] std::string to_string() const;

  /// Nearest double (round-to-nearest via long-division scaling);
  /// may overflow to +/-inf for huge values.
  [[nodiscard]] double to_double() const;

  /// Exact conversion when the value fits in int64; throws std::range_error
  /// otherwise.
  [[nodiscard]] std::int64_t to_int64() const;

  /// True when the value fits in int64.
  [[nodiscard]] bool fits_int64() const;

  friend std::ostream& operator<<(std::ostream& os, const BigInt& v);

  /// Total limb count (for diagnostics / complexity experiments).
  [[nodiscard]] std::size_t limb_count() const { return limbs_.size(); }

 private:
  using Limb = std::uint32_t;
  using DoubleLimb = std::uint64_t;
  using Limbs = detail::LimbVec;
  static constexpr unsigned kLimbBits = 32;

  Limbs limbs_;  // little-endian, no trailing zeros
  bool negative_ = false;

  void trim();
  /// Magnitude as u64; only valid when limbs_.size() <= 2.
  [[nodiscard]] std::uint64_t mag_u64() const {
    std::uint64_t m = limbs_.empty() ? 0 : limbs_[0];
    if (limbs_.size() == 2) m |= static_cast<std::uint64_t>(limbs_[1]) << 32;
    return m;
  }
  /// Overwrite with a <= 128-bit magnitude (stays in inline storage).
  void set_mag_u128(unsigned __int128 mag, bool negative);
  /// *this += (rhs_negative ? -|rhs| : |rhs|); shared by += and -=.
  BigInt& add_signed(const BigInt& rhs, bool rhs_negative);
  // |a| vs |b|
  static int compare_magnitude(const Limbs& a, const Limbs& b);
  static Limbs add_magnitude(const Limbs& a, const Limbs& b);
  // requires |a| >= |b|
  static Limbs sub_magnitude(const Limbs& a, const Limbs& b);
  static Limbs mul_magnitude(const Limbs& a, const Limbs& b);
  static Limbs mul_schoolbook(const Limbs& a, const Limbs& b);
  static Limbs mul_karatsuba(const Limbs& a, const Limbs& b);
  // long division of magnitudes; returns {quot, rem}
  static std::pair<Limbs, Limbs> divmod_magnitude(const Limbs& num,
                                                  const Limbs& den);
};

}  // namespace spiv::exact
