// spiv::model — continuous-time linear state-space models (paper §III-A).
#pragma once

#include <cstddef>

#include "numeric/matrix.hpp"

namespace spiv::model {

/// Linear time-invariant system  xdot = A x + B u,  y = C x.
struct StateSpace {
  numeric::Matrix a;  ///< n x n
  numeric::Matrix b;  ///< n x m
  numeric::Matrix c;  ///< p x n

  [[nodiscard]] std::size_t num_states() const { return a.rows(); }
  [[nodiscard]] std::size_t num_inputs() const { return b.cols(); }
  [[nodiscard]] std::size_t num_outputs() const { return c.rows(); }

  /// Throws std::invalid_argument when the dimensions are inconsistent.
  void validate() const;

  /// DC gain C (-A)^-1 B (p x m); requires A nonsingular.
  [[nodiscard]] numeric::Matrix dc_gain() const;

  /// True when A is Hurwitz (all eigenvalues in the open left half-plane).
  [[nodiscard]] bool is_stable(double margin = 0.0) const;
};

}  // namespace spiv::model
