#include "model/engine.hpp"

#include <stdexcept>

namespace spiv::model {

using numeric::Matrix;
using numeric::Vector;

namespace {

// State indices of the synthetic engine (see header substitution note).
enum State : std::size_t {
  kN1 = 0,        // LPC spool speed
  kN2 = 1,        // HPC spool speed
  kPComb = 2,     // combustor pressure
  kTComb = 3,     // combustor temperature
  kPLpc = 4,      // LPC exit pressure
  kPHpc = 5,      // HPC exit pressure
  kTTurb = 6,     // turbine temperature
  kPNoz = 7,      // nozzle pressure
  kMach = 8,      // exit-Mach aerodynamic state
  kActFuel = 9,   // fuel-valve actuator lag
  kActNoz = 10,   // nozzle-area actuator lag
  kActIgv = 11,   // IGV-angle actuator lag
  kSensN1 = 12,   // y0 sensor lag
  kSensPr = 13,   // y1 sensor lag
  kSensMach = 14, // y2 sensor lag
  kSensN2 = 15,   // y3 sensor lag
  kThermal = 16,  // thermal soak state
  kDuct = 17,     // duct/volume state
};
constexpr std::size_t kNumStates = 18;
constexpr std::size_t kNumInputs = 3;
constexpr std::size_t kNumOutputs = 4;

/// Deterministic pseudo-random stream for the weak dense cross-couplings
/// that make the matrices generic ("industrial messiness").  Plain LCG so
/// the model is bit-reproducible across platforms.
class CouplingNoise {
 public:
  double next() {
    state_ = state_ * 6364136223846793005ull + 1442695040888963407ull;
    // Top 53 bits -> [0, 1), then center to [-1, 1).
    const double u =
        static_cast<double>(state_ >> 11) / 9007199254740992.0;
    return 2.0 * u - 1.0;
  }

 private:
  std::uint64_t state_ = 0x5eed5eed5eed5eedull;
};

}  // namespace

StateSpace make_engine_model() {
  Matrix a{kNumStates, kNumStates};
  Matrix b{kNumStates, kNumInputs};
  Matrix c{kNumOutputs, kNumStates};

  // All structural entries are integers, and the input/output map is
  // *dynamically rank 3*: every channel routes through the three "core"
  // states (the two spools and one exit-aerodynamic mode), while
  // actuators, sensors and relay states are 15-30x faster and the
  // remaining thermodynamic states are only weakly observable (through
  // the coupling noise below).  This gives the strongly decaying Hankel
  // spectrum that the paper's balanced-truncation benchmark family
  // (sizes 3/5/10/15) presupposes, and it keeps the integer-rounded
  // variants dynamically equivalent (rounding merely strips the noise).
  //
  // Core: N1 spool (-15), exit-aero mode (-25), N2 spool (-40), with weak
  // physical cross-couplings.
  a(kN1, kN1) = -15;
  a(kN1, kN2) = 1;
  a(kN1, kActFuel) = 2;
  a(kN1, kActNoz) = -2;
  a(kN1, kActIgv) = 1;
  a(kMach, kMach) = -25;
  a(kMach, kN1) = 1;
  a(kMach, kActNoz) = 2;
  a(kN2, kN2) = -40;
  a(kN2, kN1) = 1;
  a(kN2, kActFuel) = 9;
  a(kN2, kActIgv) = 8;
  // Fast pressure-ratio relay: PHpc tracks the static gauge combination
  // 1.9*N1 + 3.17*Mach - 0.63*N2 with a -600 1/s lag.
  a(kPHpc, kPHpc) = -600;
  a(kPHpc, kN1) = 1140;
  a(kPHpc, kMach) = 1900;
  a(kPHpc, kN2) = -380;
  // Actuator lags (first order, driven by B below).
  a(kActFuel, kActFuel) = -400;
  a(kActNoz, kActNoz) = -350;
  a(kActIgv, kActIgv) = -450;
  // Sensor lags (fast).
  a(kSensN1, kSensN1) = -300;
  a(kSensN1, kN1) = 300;
  a(kSensPr, kSensPr) = -300;
  a(kSensPr, kPHpc) = 300;
  a(kSensMach, kSensMach) = -300;
  a(kSensMach, kMach) = 300;
  a(kSensN2, kSensN2) = -300;
  a(kSensN2, kN2) = 300;
  // Driven thermodynamic states: stable chains excited by the core and the
  // actuators; they feed each other but reach the outputs only through the
  // coupling noise, so they carry near-zero Hankel weight.
  a(kPComb, kPComb) = -30;
  a(kPComb, kActFuel) = 20;
  a(kPComb, kN2) = 4;
  a(kTComb, kTComb) = -20;
  a(kTComb, kActFuel) = 15;
  a(kTComb, kThermal) = -2;
  a(kPLpc, kPLpc) = -35;
  a(kPLpc, kN1) = 10;
  a(kPLpc, kActIgv) = -4;
  a(kTTurb, kTTurb) = -12;
  a(kTTurb, kTComb) = 8;
  a(kTTurb, kPComb) = 3;
  a(kPNoz, kPNoz) = -45;
  a(kPNoz, kPHpc) = 1;
  a(kPNoz, kN1) = 5;
  a(kPNoz, kActNoz) = -12;
  a(kThermal, kThermal) = -5;
  a(kThermal, kTComb) = 4;
  a(kDuct, kDuct) = -50;
  a(kDuct, kPNoz) = 10;
  a(kDuct, kPLpc) = 5;

  // Weak dense cross-couplings so the matrices are generic (every entry
  // participates in the downstream numerics, as in the real model of [25]).
  CouplingNoise noise;
  for (std::size_t i = 0; i < kNumStates; ++i)
    for (std::size_t j = 0; j < kNumStates; ++j) {
      if (i == j) continue;
      a(i, j) += 0.02 * noise.next();
    }

  // Inputs drive the actuator states only.
  b(kActFuel, 0) = 400;
  b(kActNoz, 1) = 350;
  b(kActIgv, 2) = 450;

  // Measured outputs come from the sensor-lag states with unit scale; the
  // loop gains required by the paper's fixed PI matrices are realized
  // inside A (fast integer diagonals), so the integer-rounded variants see
  // the same loop dynamics.
  c(0, kSensN1) = 1.0;
  c(1, kSensPr) = 1.0;
  c(2, kSensMach) = 1.0;
  c(3, kSensN2) = 1.0;

  StateSpace plant{std::move(a), std::move(b), std::move(c)};
  plant.validate();
  return plant;
}

PiGains engine_gains_mode0() {
  // Paper §V-B, mode 0 (thrust / nominal operation).
  Matrix ki{{10, 0, 0, 0}, {0, 0, 100, 0}, {0, 0, 0, 2}};
  Matrix kp{{1, 0, 0, 0}, {0, 0, 10, 0}, {0, 0, 0, 0.5}};
  return {std::move(kp), std::move(ki)};
}

PiGains engine_gains_mode1() {
  // Paper §V-B, mode 1 (LPC spool-speed limiting).
  Matrix ki{{0, 20, 0, 0}, {0, 0, 100, 0}, {0, 0, 0, 2}};
  Matrix kp{{0, 0.1, 0, 0}, {0, 0, 10, 0}, {0, 0, 0, 0.5}};
  return {std::move(kp), std::move(ki)};
}

SwitchedPiController make_engine_controller(double theta) {
  SwitchedPiController ctrl;
  ctrl.gains = {engine_gains_mode0(), engine_gains_mode1()};

  // Paper §V-B: g0 = (1,0,0,0), h0 = Theta - r0, strict '>':
  //   y0 + Theta - r0 > 0  <=>  r0 - y0 < Theta  (region R0).
  OutputGuard r0_guard;
  r0_guard.g = Vector{1, 0, 0, 0};
  r0_guard.h = theta;
  r0_guard.h_r = Vector{-1, 0, 0, 0};
  r0_guard.strict = true;
  // g1 = (-1,0,0,0), h1 = r0 - Theta, '>=':
  //   -y0 + r0 - Theta >= 0  <=>  r0 - y0 >= Theta  (region R1).
  OutputGuard r1_guard;
  r1_guard.g = Vector{-1, 0, 0, 0};
  r1_guard.h = -theta;
  r1_guard.h_r = Vector{1, 0, 0, 0};
  r1_guard.strict = false;

  ctrl.regions = {{r0_guard}, {r1_guard}};
  return ctrl;
}

Vector make_engine_references(const StateSpace& plant, double theta) {
  // Base targets for (pressure ratio, exit Mach, HPC spool speed); the
  // mode-1 equilibrium does not depend on r0 (the K_{.,1} matrices have a
  // zero first column), so r0 can then be placed to put the mode-1
  // equilibrium inside R1 with one extra Theta of margin.
  Vector r{0.0, 1.0, 0.5, 1.0};
  PwaMode mode1 = close_loop_single_mode(plant, engine_gains_mode1());
  const Vector w_eq = mode1.equilibrium(r);
  // y0 at the mode-1 equilibrium.
  double y0 = 0.0;
  for (std::size_t j = 0; j < plant.num_states(); ++j)
    y0 += plant.c(0, j) * w_eq[j];
  r[0] = y0 + 2.0 * theta;
  return r;
}

}  // namespace spiv::model
