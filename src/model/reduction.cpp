#include "model/reduction.hpp"

#include <cmath>
#include <stdexcept>

#include "numeric/eigen.hpp"
#include "numeric/lyapunov.hpp"

namespace spiv::model {

using numeric::Matrix;
using numeric::Vector;

ReducedModel balanced_truncation(const StateSpace& sys, std::size_t order) {
  sys.validate();
  const std::size_t n = sys.num_states();
  if (order == 0 || order > n)
    throw std::invalid_argument("balanced_truncation: bad target order");
  if (!sys.is_stable())
    throw std::runtime_error("balanced_truncation: system must be stable");

  // Controllability Gramian: A Wc + Wc A^T + B B^T = 0.
  auto wc = numeric::solve_lyapunov_dual(sys.a, sys.b * sys.b.transposed());
  // Observability Gramian: A^T Wo + Wo A + C^T C = 0.
  auto wo = numeric::solve_lyapunov(sys.a, sys.c.transposed() * sys.c);
  if (!wc || !wo)
    throw std::runtime_error("balanced_truncation: Gramian solve failed");

  // Regularize against numerically-uncontrollable directions before the
  // Cholesky factorization.
  const double reg = 1e-12 * (1.0 + wc->max_abs());
  Matrix wc_reg = *wc;
  for (std::size_t i = 0; i < n; ++i) wc_reg(i, i) += reg;
  auto lc = wc_reg.cholesky();
  if (!lc)
    throw std::runtime_error("balanced_truncation: Gramian not PD");

  // Hankel singular values from Lc^T Wo Lc = V diag(s^2) V^T.
  Matrix m = lc->transposed() * *wo * *lc;
  auto eig = numeric::symmetric_eigen(m);  // ascending
  Vector hsv(n);
  Matrix v{n, n};
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t src = n - 1 - k;  // descending
    hsv[k] = std::sqrt(std::max(0.0, eig.values[src]));
    for (std::size_t i = 0; i < n; ++i) v(i, k) = eig.vectors(i, src);
  }

  // Balancing transformation T = Lc V diag(hsv^{-1/2}).
  Matrix t = *lc * v;
  for (std::size_t j = 0; j < n; ++j) {
    const double s = hsv[j] > 1e-300 ? 1.0 / std::sqrt(hsv[j]) : 0.0;
    for (std::size_t i = 0; i < n; ++i) t(i, j) *= s;
  }
  auto t_inv = t.inverse();
  if (!t_inv)
    throw std::runtime_error("balanced_truncation: balancing transform singular");

  const Matrix a_bal = *t_inv * sys.a * t;
  const Matrix b_bal = *t_inv * sys.b;
  const Matrix c_bal = sys.c * t;

  ReducedModel out;
  out.hankel_singular_values = std::move(hsv);
  out.sys.a = a_bal.block(0, 0, order, order);
  out.sys.b = b_bal.block(0, 0, order, sys.num_inputs());
  out.sys.c = c_bal.block(0, 0, sys.num_outputs(), order);
  out.sys.validate();
  return out;
}

StateSpace round_to_integers(const StateSpace& sys) {
  StateSpace out = sys;
  auto round_matrix = [](Matrix& m) {
    for (std::size_t i = 0; i < m.rows(); ++i)
      for (std::size_t j = 0; j < m.cols(); ++j)
        m(i, j) = std::nearbyint(m(i, j));
  };
  round_matrix(out.a);
  round_matrix(out.b);
  round_matrix(out.c);
  return out;
}

namespace {

std::vector<BenchmarkModel> build_benchmark_family() {
  const StateSpace engine = make_engine_model();
  const SwitchedPiController ctrl = make_engine_controller();

  std::vector<BenchmarkModel> family;
  auto add = [&family, &ctrl](std::string name, std::size_t size,
                              bool integer_rounded, StateSpace plant) {
    BenchmarkModel bm;
    bm.name = std::move(name);
    bm.size = size;
    bm.integer_rounded = integer_rounded;
    bm.references = make_engine_references(plant);
    bm.plant = std::move(plant);
    bm.controller = ctrl;
    family.push_back(std::move(bm));
  };

  for (std::size_t size : {std::size_t{3}, std::size_t{5}, std::size_t{10}}) {
    StateSpace reduced = balanced_truncation(engine, size).sys;
    add("size" + std::to_string(size) + "i", size, true,
        round_to_integers(reduced));
    add("size" + std::to_string(size), size, false, std::move(reduced));
  }
  add("size15", 15, false, balanced_truncation(engine, 15).sys);
  add("size18", 18, false, engine);
  return family;
}

}  // namespace

const std::vector<BenchmarkModel>& benchmark_family() {
  // Thread-safe (C++11 magic static): the five balanced truncations run
  // exactly once per process even when experiment drivers race here.
  static const std::vector<BenchmarkModel> family = build_benchmark_family();
  return family;
}

std::vector<BenchmarkModel> make_benchmark_family() {
  return benchmark_family();
}

}  // namespace spiv::model
