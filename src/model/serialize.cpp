#include "model/serialize.hpp"

#include <cmath>
#include <iomanip>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace spiv::model {

using numeric::Matrix;
using numeric::Vector;

namespace {

void write_matrix(std::ostream& os, const Matrix& m) {
  os << std::setprecision(17);
  for (std::size_t i = 0; i < m.rows(); ++i) {
    for (std::size_t j = 0; j < m.cols(); ++j)
      os << m(i, j) << (j + 1 == m.cols() ? "" : " ");
    os << "\n";
  }
}

/// operator>> happily parses "nan"/"inf", which would silently poison every
/// downstream computation on the model; reject them like truncated streams.
double read_finite(std::istream& is, const char* what) {
  double x = 0.0;
  if (!(is >> x))
    throw std::runtime_error(std::string{"serialize: truncated "} + what);
  if (!std::isfinite(x))
    throw std::runtime_error(std::string{"serialize: non-finite value in "} +
                             what);
  return x;
}

Matrix read_matrix(std::istream& is, std::size_t rows, std::size_t cols) {
  Matrix m{rows, cols};
  for (std::size_t i = 0; i < rows; ++i)
    for (std::size_t j = 0; j < cols; ++j)
      m(i, j) = read_finite(is, "matrix data");
  return m;
}

void expect_token(std::istream& is, const std::string& expected) {
  std::string tok;
  if (!(is >> tok) || tok != expected)
    throw std::runtime_error("serialize: expected '" + expected + "', got '" +
                             tok + "'");
}

Vector read_vector(std::istream& is, std::size_t n) {
  Vector v(n);
  for (auto& x : v) x = read_finite(is, "vector");
  return v;
}

void write_vector(std::ostream& os, const Vector& v) {
  os << std::setprecision(17);
  for (std::size_t i = 0; i < v.size(); ++i)
    os << v[i] << (i + 1 == v.size() ? "" : " ");
}

}  // namespace

void write_state_space(std::ostream& os, const StateSpace& sys) {
  os << "plant " << sys.num_states() << " " << sys.num_inputs() << " "
     << sys.num_outputs() << "\nA\n";
  write_matrix(os, sys.a);
  os << "B\n";
  write_matrix(os, sys.b);
  os << "C\n";
  write_matrix(os, sys.c);
}

StateSpace read_state_space(std::istream& is) {
  expect_token(is, "plant");
  std::size_t n = 0, m = 0, p = 0;
  if (!(is >> n >> m >> p))
    throw std::runtime_error("serialize: bad plant header");
  StateSpace sys;
  expect_token(is, "A");
  sys.a = read_matrix(is, n, n);
  expect_token(is, "B");
  sys.b = read_matrix(is, n, m);
  expect_token(is, "C");
  sys.c = read_matrix(is, p, n);
  sys.validate();
  return sys;
}

void write_case(std::ostream& os, const BenchmarkModel& bm) {
  os << "spiv-case v1\n";
  os << "name " << bm.name << " size " << bm.size << " integer "
     << (bm.integer_rounded ? 1 : 0) << "\n";
  write_state_space(os, bm.plant);
  os << "controller " << bm.controller.num_modes() << "\n";
  const std::size_t p = bm.plant.num_outputs();
  for (std::size_t i = 0; i < bm.controller.num_modes(); ++i) {
    os << "mode\nKP\n";
    write_matrix(os, bm.controller.gains[i].kp);
    os << "KI\n";
    write_matrix(os, bm.controller.gains[i].ki);
    os << "guards " << bm.controller.regions[i].size() << "\n";
    for (const auto& g : bm.controller.regions[i]) {
      os << "g ";
      write_vector(os, g.g);
      os << " h " << std::setprecision(17) << g.h << " h_r ";
      if (g.h_r.empty())
        write_vector(os, Vector(p, 0.0));
      else
        write_vector(os, g.h_r);
      os << " strict " << (g.strict ? 1 : 0) << "\n";
    }
  }
  os << "references ";
  write_vector(os, bm.references);
  os << "\n";
}

BenchmarkModel read_case(std::istream& is) {
  std::string magic, version;
  if (!(is >> magic >> version) || magic != "spiv-case" || version != "v1")
    throw std::runtime_error("serialize: not a spiv-case v1 stream");
  BenchmarkModel bm;
  expect_token(is, "name");
  if (!(is >> bm.name)) throw std::runtime_error("serialize: bad name");
  expect_token(is, "size");
  if (!(is >> bm.size)) throw std::runtime_error("serialize: bad size");
  expect_token(is, "integer");
  int integer_flag = 0;
  if (!(is >> integer_flag))
    throw std::runtime_error("serialize: bad integer flag");
  bm.integer_rounded = integer_flag != 0;
  bm.plant = read_state_space(is);
  const std::size_t m = bm.plant.num_inputs();
  const std::size_t p = bm.plant.num_outputs();

  expect_token(is, "controller");
  std::size_t modes = 0;
  if (!(is >> modes)) throw std::runtime_error("serialize: bad mode count");
  for (std::size_t i = 0; i < modes; ++i) {
    expect_token(is, "mode");
    PiGains gains;
    expect_token(is, "KP");
    gains.kp = read_matrix(is, m, p);
    expect_token(is, "KI");
    gains.ki = read_matrix(is, m, p);
    bm.controller.gains.push_back(std::move(gains));
    expect_token(is, "guards");
    std::size_t guards = 0;
    if (!(is >> guards)) throw std::runtime_error("serialize: bad guards");
    std::vector<OutputGuard> region;
    for (std::size_t g = 0; g < guards; ++g) {
      OutputGuard guard;
      expect_token(is, "g");
      guard.g = read_vector(is, p);
      expect_token(is, "h");
      guard.h = read_finite(is, "guard constant h");
      expect_token(is, "h_r");
      guard.h_r = read_vector(is, p);
      expect_token(is, "strict");
      int strict = 0;
      if (!(is >> strict)) throw std::runtime_error("serialize: bad strict");
      guard.strict = strict != 0;
      region.push_back(std::move(guard));
    }
    bm.controller.regions.push_back(std::move(region));
  }
  expect_token(is, "references");
  bm.references = read_vector(is, p);
  return bm;
}

std::string case_to_string(const BenchmarkModel& bm) {
  std::ostringstream os;
  write_case(os, bm);
  return os.str();
}

BenchmarkModel case_from_string(const std::string& text) {
  std::istringstream is{text};
  return read_case(is);
}

}  // namespace spiv::model
