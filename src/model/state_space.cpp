#include "model/state_space.hpp"

#include <stdexcept>

#include "numeric/eigen.hpp"

namespace spiv::model {

void StateSpace::validate() const {
  if (!a.is_square())
    throw std::invalid_argument("StateSpace: A must be square");
  if (b.rows() != a.rows())
    throw std::invalid_argument("StateSpace: B row count must match A");
  if (c.cols() != a.cols())
    throw std::invalid_argument("StateSpace: C column count must match A");
}

numeric::Matrix StateSpace::dc_gain() const {
  auto inv = (-a).inverse();
  if (!inv)
    throw std::runtime_error("StateSpace: A is singular, DC gain undefined");
  return c * *inv * b;
}

bool StateSpace::is_stable(double margin) const {
  return numeric::is_hurwitz(a, margin);
}

}  // namespace spiv::model
