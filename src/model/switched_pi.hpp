// spiv::model — switched PI controllers and the closed-loop reformulation
// into an autonomous piecewise-affine switched system (paper §IV).
#pragma once

#include <cstddef>
#include <vector>

#include "model/state_space.hpp"
#include "numeric/matrix.hpp"

namespace spiv::model {

/// Proportional + integral gain pair for one operating mode:
/// u = K_P e + K_I \int e dt, both m x p (paper eq. (12)).
struct PiGains {
  numeric::Matrix kp;
  numeric::Matrix ki;
};

/// One affine guard inequality on the *outputs*:
///   g^T y + h  (>|>=)  0                      (paper eq. (13)).
/// `h` may depend affinely on the reference vector; the contribution
/// `h_r^T r` is added to the constant at close-loop time.
struct OutputGuard {
  numeric::Vector g;    ///< p-dimensional
  double h = 0.0;       ///< constant part
  numeric::Vector h_r;  ///< optional reference-dependent part (p-dim; may be empty)
  bool strict = false;  ///< true for '>', false for '>='
};

/// A switched PI controller: one gain pair and one guard conjunction per
/// operating mode (paper §IV-A).
struct SwitchedPiController {
  std::vector<PiGains> gains;                     ///< per mode
  std::vector<std::vector<OutputGuard>> regions;  ///< per mode, conjunction

  [[nodiscard]] std::size_t num_modes() const { return gains.size(); }
};

/// One affine guard inequality on the *closed-loop state* w = (x, u):
///   g^T w + h  (>|>=)  0                       (paper eq. (16)).
struct HalfSpace {
  numeric::Vector g;
  double h = 0.0;
  bool strict = false;

  [[nodiscard]] bool contains(const numeric::Vector& w) const;
  /// Signed value g^T w + h.
  [[nodiscard]] double evaluate(const numeric::Vector& w) const;
};

/// One operating mode of the reformulated autonomous PWA system:
///   wdot = A w + B r   restricted to  /\ region_k   (paper eq. (22)).
struct PwaMode {
  numeric::Matrix a;               ///< (n+m) x (n+m)
  numeric::Matrix b;               ///< (n+m) x p, multiplies the reference r
  std::vector<HalfSpace> region;   ///< polyhedral operating region

  /// Affine drift b_r = B r for a fixed reference.
  [[nodiscard]] numeric::Vector drift(const numeric::Vector& r) const;
  /// Equilibrium -A^{-1} B r; throws when A is singular.
  [[nodiscard]] numeric::Vector equilibrium(const numeric::Vector& r) const;
  [[nodiscard]] bool contains(const numeric::Vector& w) const;
};

/// The autonomous PWA switched system S_pi obtained by closing the loop
/// (paper §IV-B): state w = (x, u) in R^{n+m}, one affine flow per mode.
class PwaSystem {
 public:
  PwaSystem(std::vector<PwaMode> modes, std::size_t plant_states,
            std::size_t plant_inputs, std::size_t plant_outputs);

  [[nodiscard]] std::size_t num_modes() const { return modes_.size(); }
  [[nodiscard]] const PwaMode& mode(std::size_t i) const { return modes_[i]; }
  [[nodiscard]] std::size_t dim() const { return plant_states_ + plant_inputs_; }
  [[nodiscard]] std::size_t plant_states() const { return plant_states_; }
  [[nodiscard]] std::size_t plant_inputs() const { return plant_inputs_; }
  [[nodiscard]] std::size_t plant_outputs() const { return plant_outputs_; }

  /// Index of the first mode whose region contains w; modes are checked in
  /// order, so overlapping closures resolve deterministically.  Throws
  /// std::runtime_error when no region matches (should not happen for a
  /// well-formed partition).
  [[nodiscard]] std::size_t mode_of(const numeric::Vector& w) const;

 private:
  std::vector<PwaMode> modes_;
  std::size_t plant_states_;
  std::size_t plant_inputs_;
  std::size_t plant_outputs_;
};

/// Close the loop between plant S = (A, B, C) and the switched PI
/// controller for a fixed reference vector r (paper §IV-B):
///
///   A_i = [ A                    B        ]    B_i = [ 0     ]
///         [ -K_Pi C A - K_Ii C   -K_Pi C B ]          [ K_Ii ]
///
/// Guards on outputs are lifted to half-spaces on w via y = C x.
[[nodiscard]] PwaSystem close_loop(const StateSpace& plant,
                                   const SwitchedPiController& controller,
                                   const numeric::Vector& r);

/// Closed-loop matrices of a *single* mode (useful for per-mode analysis
/// without constructing the full switched system).
[[nodiscard]] PwaMode close_loop_single_mode(const StateSpace& plant,
                                             const PiGains& gains);

}  // namespace spiv::model
