// spiv::model — plain-text (de)serialization of models.
//
// A small line-oriented format so benchmark instances can be exported,
// archived (the paper plans to contribute this case study to ARCH-COMP)
// and re-loaded without recompiling:
//
//   spiv-case v1
//   plant 18 3 4
//   A
//   <18 rows of 18 numbers>
//   B
//   ...
//   C
//   ...
//   controller 2            # number of modes
//   mode
//   KP <3x4 numbers...> KI <3x4 numbers...>
//   guards 1
//   g <p numbers> h <num> h_r <p numbers> strict <0|1>
//   ...
//   references <p numbers>
//
// Numbers are written with 17 significant digits (round-trip exact for
// doubles).  Readers accept only finite numbers: "nan"/"inf" tokens raise
// std::runtime_error instead of silently poisoning the model.
#pragma once

#include <iosfwd>
#include <string>

#include "model/reduction.hpp"
#include "model/state_space.hpp"
#include "model/switched_pi.hpp"

namespace spiv::model {

/// Serialize / parse a bare state-space model.
void write_state_space(std::ostream& os, const StateSpace& sys);
[[nodiscard]] StateSpace read_state_space(std::istream& is);

/// Serialize / parse a full benchmark case (plant + switched controller +
/// references).  Throws std::runtime_error on malformed input.
void write_case(std::ostream& os, const BenchmarkModel& bm);
[[nodiscard]] BenchmarkModel read_case(std::istream& is);

/// String convenience wrappers.
[[nodiscard]] std::string case_to_string(const BenchmarkModel& bm);
[[nodiscard]] BenchmarkModel case_from_string(const std::string& text);

}  // namespace spiv::model
