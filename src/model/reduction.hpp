// spiv::model — Balanced Truncation Model Reduction (paper §VI-A).
//
// The paper evaluates scalability on reduced models of sizes 3, 5, 10, 15
// obtained by balanced truncation of the 18-state engine, plus
// integer-rounded variants of sizes 3, 5, 10 as numerically simpler inputs.
#pragma once

#include <string>
#include <vector>

#include "model/engine.hpp"
#include "model/state_space.hpp"
#include "model/switched_pi.hpp"

namespace spiv::model {

/// Result of balanced truncation, including the Hankel singular values of
/// the full system (useful to judge the truncation error a priori:
/// ||G - G_r||_inf <= 2 * sum of discarded HSVs).
struct ReducedModel {
  StateSpace sys;
  numeric::Vector hankel_singular_values;  ///< of the *full* system, descending
};

/// Reduce a stable system to `order` states by balanced truncation.
/// Throws std::invalid_argument for order 0 or > n, std::runtime_error when
/// the system is unstable or a Gramian solve fails.
[[nodiscard]] ReducedModel balanced_truncation(const StateSpace& sys,
                                               std::size_t order);

/// Round every entry of (A, B, C) to the nearest integer (the paper's
/// "truncated" benchmark variants for sizes 3/5/10).
[[nodiscard]] StateSpace round_to_integers(const StateSpace& sys);

/// One entry of the paper's benchmark family (§VI-A).
struct BenchmarkModel {
  std::string name;       ///< e.g. "size5i" (integer) / "size18"
  std::size_t size;       ///< plant order
  bool integer_rounded;   ///< true for the rounded variants
  StateSpace plant;
  SwitchedPiController controller;
  numeric::Vector references;  ///< r with w_eq_i in R_i for both modes
};

/// The full family: sizes {3, 5, 10} in float and integer-rounded variants
/// plus {15, 18} float-only — 8 plants, 2 closed-loop modes each, matching
/// the paper's per-size case counts (4/4/4/2/2 in Table I).
///
/// The balanced-truncation reductions run once per process: both functions
/// serve from a thread-safe cache (the experiment drivers used to recompute
/// all five reductions per harness invocation).
[[nodiscard]] std::vector<BenchmarkModel> make_benchmark_family();

/// Cached variant of make_benchmark_family() that avoids the copy.
[[nodiscard]] const std::vector<BenchmarkModel>& benchmark_family();

}  // namespace spiv::model
