// spiv::model — the industrial case study (paper §V): a turbofan engine
// model with 18 states, 3 inputs, 4 outputs, controlled by a 2-mode
// switched PI controller.
//
// SUBSTITUTION NOTE (see DESIGN.md §2): the paper takes the engine matrices
// A, B, C from Skogestad & Postlethwaite's aero-engine case study [25],
// which are not printed in the paper and not redistributable.  We build a
// deterministic *synthetic* engine with the same dimensions and the same
// structure class: two coupled spool-speed states, combustor
// pressure/temperature states, pressure/volume chains, three first-order
// actuator lags (fuel, nozzle, IGV) and four sensor lags, plus weak dense
// cross-couplings.  The plant is open-loop stable, and the closed loop is
// verified Hurwitz in both modes with the *exact PI gain matrices printed
// in the paper*.  Every downstream algorithm consumes only (A, B, C) and
// dimensions, so the verification workload is preserved.
#pragma once

#include "model/state_space.hpp"
#include "model/switched_pi.hpp"

namespace spiv::model {

/// Safety margin of the switching law (paper §V-B fixes Theta = 1).
inline constexpr double kEngineTheta = 1.0;

/// The synthetic 18-state / 3-input / 4-output turbofan engine plant.
/// Deterministic: always returns the same matrices.
[[nodiscard]] StateSpace make_engine_model();

/// The 2-mode switched PI controller with the paper's printed gain
/// matrices K_{I,0}, K_{I,1}, K_{P,0}, K_{P,1} and the switching law
///   mode 0  iff  r0 - y0 < Theta   (strict),
///   mode 1  iff  r0 - y0 >= Theta,
/// encoded as output guards with reference-dependent offsets.
[[nodiscard]] SwitchedPiController make_engine_controller(
    double theta = kEngineTheta);

/// Gain matrices alone (mode 0 and mode 1), exactly as printed in §V-B.
[[nodiscard]] PiGains engine_gains_mode0();
[[nodiscard]] PiGains engine_gains_mode1();

/// A reference vector r such that the mode-i equilibrium of the closed
/// loop lies strictly inside region R_i for *both* modes (the setting of
/// the paper's robustness analysis, §VI-C1).  Computed by placing r0 from
/// the mode-1 equilibrium output.
[[nodiscard]] numeric::Vector make_engine_references(
    const StateSpace& plant, double theta = kEngineTheta);

}  // namespace spiv::model
