#include "model/switched_pi.hpp"

#include <stdexcept>

namespace spiv::model {

using numeric::Matrix;
using numeric::Vector;

bool HalfSpace::contains(const Vector& w) const {
  const double v = evaluate(w);
  return strict ? v > 0.0 : v >= 0.0;
}

double HalfSpace::evaluate(const Vector& w) const {
  return numeric::dot(g, w) + h;
}

Vector PwaMode::drift(const Vector& r) const { return b.apply(r); }

Vector PwaMode::equilibrium(const Vector& r) const {
  Vector neg_drift = drift(r);
  for (double& v : neg_drift) v = -v;
  auto w = a.solve(neg_drift);
  if (!w)
    throw std::runtime_error("PwaMode: singular A, equilibrium undefined");
  return *w;
}

bool PwaMode::contains(const Vector& w) const {
  for (const auto& hs : region)
    if (!hs.contains(w)) return false;
  return true;
}

PwaSystem::PwaSystem(std::vector<PwaMode> modes, std::size_t plant_states,
                     std::size_t plant_inputs, std::size_t plant_outputs)
    : modes_(std::move(modes)),
      plant_states_(plant_states),
      plant_inputs_(plant_inputs),
      plant_outputs_(plant_outputs) {
  if (modes_.empty())
    throw std::invalid_argument("PwaSystem: at least one mode required");
  const std::size_t d = plant_states_ + plant_inputs_;
  for (const auto& m : modes_) {
    if (m.a.rows() != d || !m.a.is_square() || m.b.rows() != d)
      throw std::invalid_argument("PwaSystem: mode dimension mismatch");
    for (const auto& hs : m.region)
      if (hs.g.size() != d)
        throw std::invalid_argument("PwaSystem: guard dimension mismatch");
  }
}

std::size_t PwaSystem::mode_of(const Vector& w) const {
  for (std::size_t i = 0; i < modes_.size(); ++i)
    if (modes_[i].contains(w)) return i;
  throw std::runtime_error("PwaSystem: state not covered by any region");
}

PwaMode close_loop_single_mode(const StateSpace& plant, const PiGains& gains) {
  plant.validate();
  const std::size_t n = plant.num_states();
  const std::size_t m = plant.num_inputs();
  const std::size_t p = plant.num_outputs();
  if (gains.kp.rows() != m || gains.kp.cols() != p || gains.ki.rows() != m ||
      gains.ki.cols() != p)
    throw std::invalid_argument("close_loop: gain shape must be m x p");

  // Paper eq. (22):  N_i = -K_P C A - K_I C,  M_i = -K_P C B.
  const Matrix kpc = gains.kp * plant.c;
  const Matrix n_i = -(kpc * plant.a) - gains.ki * plant.c;
  const Matrix m_i = -(kpc * plant.b);

  PwaMode mode;
  mode.a = Matrix{n + m, n + m};
  mode.a.set_block(0, 0, plant.a);
  mode.a.set_block(0, n, plant.b);
  mode.a.set_block(n, 0, n_i);
  mode.a.set_block(n, n, m_i);
  mode.b = Matrix{n + m, p};
  mode.b.set_block(n, 0, gains.ki);
  return mode;
}

PwaSystem close_loop(const StateSpace& plant,
                     const SwitchedPiController& controller,
                     const Vector& r) {
  plant.validate();
  const std::size_t n = plant.num_states();
  const std::size_t m = plant.num_inputs();
  const std::size_t p = plant.num_outputs();
  if (r.size() != p)
    throw std::invalid_argument("close_loop: reference dimension mismatch");
  if (controller.gains.size() != controller.regions.size())
    throw std::invalid_argument("close_loop: modes/regions count mismatch");
  if (controller.gains.empty())
    throw std::invalid_argument("close_loop: controller has no modes");

  std::vector<PwaMode> modes;
  modes.reserve(controller.num_modes());
  for (std::size_t i = 0; i < controller.num_modes(); ++i) {
    PwaMode mode = close_loop_single_mode(plant, controller.gains[i]);
    // Lift output guards g^T y + h |> 0 to state guards via y = C x
    // (paper eqs. (14)-(16)); u-coordinates get zero coefficients.
    for (const auto& og : controller.regions[i]) {
      if (og.g.size() != p)
        throw std::invalid_argument("close_loop: guard dimension mismatch");
      HalfSpace hs;
      hs.g = Vector(n + m, 0.0);
      const Vector gc = plant.c.apply_transposed(og.g);  // C^T g
      for (std::size_t k = 0; k < n; ++k) hs.g[k] = gc[k];
      hs.h = og.h;
      if (!og.h_r.empty()) {
        if (og.h_r.size() != p)
          throw std::invalid_argument("close_loop: guard h_r dimension mismatch");
        hs.h += numeric::dot(og.h_r, r);
      }
      hs.strict = og.strict;
      mode.region.push_back(std::move(hs));
    }
    modes.push_back(std::move(mode));
  }
  return PwaSystem{std::move(modes), n, m, p};
}

}  // namespace spiv::model
