#include "numeric/discrete.hpp"

#include <cmath>
#include <stdexcept>

#include "numeric/eigen.hpp"

namespace spiv::numeric {

Matrix expm(const Matrix& a) {
  if (!a.is_square()) throw std::invalid_argument("expm: requires square");
  const std::size_t n = a.rows();
  // Scaling.
  double norm = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    double row = 0.0;
    for (std::size_t j = 0; j < n; ++j) row += std::abs(a(i, j));
    norm = std::max(norm, row);
  }
  int s = 0;
  if (norm > 0.5) s = std::max(0, static_cast<int>(std::ceil(std::log2(norm / 0.5))));
  Matrix x = a * std::ldexp(1.0, -s);

  // Padé(6,6): N = sum c_k X^k, D = sum (-1)^k c_k X^k.
  const int p = 6;
  double c = 1.0;
  Matrix power = Matrix::identity(n);
  Matrix num = Matrix::identity(n);
  Matrix den = Matrix::identity(n);
  for (int k = 1; k <= p; ++k) {
    c *= static_cast<double>(p - k + 1) /
         static_cast<double>((2 * p - k + 1) * k);
    power = power * x;
    num += c * power;
    if (k % 2 == 0)
      den += c * power;
    else
      den -= c * power;
  }
  auto e = den.solve(num);
  if (!e) throw std::runtime_error("expm: Padé denominator singular");
  Matrix result = *e;
  for (int i = 0; i < s; ++i) result = result * result;
  return result;
}

double spectral_radius(const Matrix& a) {
  double best = 0.0;
  for (const Complex& l : eigenvalues(a)) best = std::max(best, std::abs(l));
  return best;
}

bool is_schur_stable(const Matrix& a, double margin) {
  return spectral_radius(a) < 1.0 - margin;
}

std::pair<Matrix, Matrix> discretize_zoh(const Matrix& a, const Matrix& b,
                                         double h) {
  if (!a.is_square() || b.rows() != a.rows())
    throw std::invalid_argument("discretize_zoh: shape mismatch");
  const std::size_t n = a.rows();
  const std::size_t m = b.cols();
  Matrix block{n + m, n + m};
  block.set_block(0, 0, a * h);
  block.set_block(0, n, b * h);
  Matrix e = expm(block);
  return {e.block(0, 0, n, n), e.block(0, n, n, m)};
}

std::optional<Matrix> solve_discrete_lyapunov(const Matrix& a,
                                              const Matrix& q) {
  if (!a.is_square() || !q.is_square() || a.rows() != q.rows())
    throw std::invalid_argument("solve_discrete_lyapunov: shape mismatch");
  const std::size_t n = a.rows();
  if (n == 0) return Matrix{};
  ComplexSchur schur = complex_schur(a);
  if (!schur.converged) return std::nullopt;
  const CMatrix& t = schur.t;
  const CMatrix& u = schur.u;
  // With A = U T U^H and X = conj(U) Y U^H the equation A^T X A - X = -Q
  // becomes T^T Y T - Y = C with C = -U^T Q U.
  CMatrix ut{n, n};
  CMatrix uc{n, n};
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) {
      ut(i, j) = u(j, i);
      uc(i, j) = std::conj(u(i, j));
    }
  CMatrix c = ut * CMatrix::from_real(-q) * u;
  CMatrix y{n, n};
  const double tol = 1e-12;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      // (T^T Y T)_{ij} = sum_{k<=i} sum_{l<=j} T_{ki} Y_{kl} T_{lj}.
      Complex acc = c(i, j);
      for (std::size_t k = 0; k <= i; ++k)
        for (std::size_t l = 0; l <= j; ++l) {
          if (k == i && l == j) continue;
          acc -= t(k, i) * y(k, l) * t(l, j);
        }
      const Complex denom = t(i, i) * t(j, j) - Complex{1.0, 0.0};
      if (std::abs(denom) < tol) return std::nullopt;
      y(i, j) = acc / denom;
    }
  }
  CMatrix x = uc * y * u.adjoint();
  return x.real_part().symmetrized();
}

Matrix discrete_lyapunov_residual(const Matrix& a, const Matrix& p,
                                  const Matrix& q) {
  return a.transposed() * p * a - p + q;
}

}  // namespace spiv::numeric
