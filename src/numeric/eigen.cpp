#include "numeric/eigen.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace spiv::numeric {

CMatrix::CMatrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols) {}

CMatrix CMatrix::identity(std::size_t n) {
  CMatrix m{n, n};
  for (std::size_t i = 0; i < n; ++i) m(i, i) = Complex{1.0, 0.0};
  return m;
}

CMatrix CMatrix::from_real(const Matrix& m) {
  CMatrix out{m.rows(), m.cols()};
  for (std::size_t i = 0; i < m.rows(); ++i)
    for (std::size_t j = 0; j < m.cols(); ++j)
      out(i, j) = Complex{m(i, j), 0.0};
  return out;
}

CMatrix operator*(const CMatrix& a, const CMatrix& b) {
  if (a.cols_ != b.rows_)
    throw std::invalid_argument("CMatrix: shape mismatch in *");
  CMatrix out{a.rows_, b.cols_};
  for (std::size_t i = 0; i < a.rows_; ++i)
    for (std::size_t k = 0; k < a.cols_; ++k) {
      const Complex aik = a(i, k);
      if (aik == Complex{}) continue;
      for (std::size_t j = 0; j < b.cols_; ++j) out(i, j) += aik * b(k, j);
    }
  return out;
}

CMatrix& CMatrix::operator-=(const CMatrix& rhs) {
  if (rows_ != rhs.rows_ || cols_ != rhs.cols_)
    throw std::invalid_argument("CMatrix: shape mismatch in -=");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= rhs.data_[i];
  return *this;
}

CMatrix CMatrix::adjoint() const {
  CMatrix out{cols_, rows_};
  for (std::size_t i = 0; i < rows_; ++i)
    for (std::size_t j = 0; j < cols_; ++j)
      out(j, i) = std::conj((*this)(i, j));
  return out;
}

std::optional<CMatrix> CMatrix::inverse() const {
  if (rows_ != cols_)
    throw std::invalid_argument("CMatrix: inverse requires square");
  const std::size_t n = rows_;
  CMatrix m = *this;
  CMatrix inv = identity(n);
  for (std::size_t col = 0; col < n; ++col) {
    std::size_t pivot = col;
    double best = std::abs(m(col, col));
    for (std::size_t r = col + 1; r < n; ++r) {
      if (std::abs(m(r, col)) > best) {
        best = std::abs(m(r, col));
        pivot = r;
      }
    }
    if (best == 0.0) return std::nullopt;
    if (pivot != col) {
      for (std::size_t j = 0; j < n; ++j) {
        std::swap(m(pivot, j), m(col, j));
        std::swap(inv(pivot, j), inv(col, j));
      }
    }
    const Complex ipiv = Complex{1.0, 0.0} / m(col, col);
    for (std::size_t j = 0; j < n; ++j) {
      m(col, j) *= ipiv;
      inv(col, j) *= ipiv;
    }
    for (std::size_t r = 0; r < n; ++r) {
      if (r == col) continue;
      const Complex f = m(r, col);
      if (f == Complex{}) continue;
      for (std::size_t j = 0; j < n; ++j) {
        m(r, j) -= f * m(col, j);
        inv(r, j) -= f * inv(col, j);
      }
    }
  }
  return inv;
}

Matrix CMatrix::real_part() const {
  Matrix out{rows_, cols_};
  for (std::size_t i = 0; i < rows_; ++i)
    for (std::size_t j = 0; j < cols_; ++j) out(i, j) = (*this)(i, j).real();
  return out;
}

double CMatrix::max_abs_imag() const {
  double best = 0.0;
  for (const auto& v : data_) best = std::max(best, std::abs(v.imag()));
  return best;
}

double CMatrix::frobenius_norm() const {
  double acc = 0.0;
  for (const auto& v : data_) acc += std::norm(v);
  return std::sqrt(acc);
}

namespace {

/// Unitary Givens rotation [[c, s], [-conj(s), c]] (c real) mapping
/// (f, g) -> (r, 0).
struct Givens {
  double c = 1.0;
  Complex s{};
};

Givens make_givens(Complex f, Complex g) {
  Givens out;
  const double af = std::abs(f);
  const double ag = std::abs(g);
  if (ag == 0.0) return out;
  const double denom = std::hypot(af, ag);
  if (af == 0.0) {
    out.c = 0.0;
    out.s = std::conj(g) / ag;
    return out;
  }
  out.c = af / denom;
  out.s = (f / af) * std::conj(g) / denom;
  return out;
}

/// Reduce a complex square matrix to upper Hessenberg via Householder
/// similarity, accumulating the unitary transform in u.
void hessenberg_reduce(CMatrix& h, CMatrix& u) {
  const std::size_t n = h.rows();
  if (n < 3) return;
  for (std::size_t k = 0; k + 2 < n; ++k) {
    // Householder on x = h(k+1..n-1, k).
    double xnorm = 0.0;
    for (std::size_t i = k + 1; i < n; ++i) xnorm += std::norm(h(i, k));
    xnorm = std::sqrt(xnorm);
    if (xnorm == 0.0) continue;
    Complex x0 = h(k + 1, k);
    const Complex phase =
        std::abs(x0) == 0.0 ? Complex{1.0, 0.0} : x0 / std::abs(x0);
    const Complex alpha = -phase * xnorm;
    std::vector<Complex> v(n, Complex{});
    v[k + 1] = x0 - alpha;
    for (std::size_t i = k + 2; i < n; ++i) v[i] = h(i, k);
    double vnorm2 = 0.0;
    for (std::size_t i = k + 1; i < n; ++i) vnorm2 += std::norm(v[i]);
    if (vnorm2 == 0.0) continue;
    const double beta = 2.0 / vnorm2;
    // Left: H <- H - beta v (v^H H).
    for (std::size_t j = 0; j < n; ++j) {
      Complex s{};
      for (std::size_t i = k + 1; i < n; ++i) s += std::conj(v[i]) * h(i, j);
      s *= beta;
      for (std::size_t i = k + 1; i < n; ++i) h(i, j) -= v[i] * s;
    }
    // Right: H <- H - (H v) beta v^H.
    for (std::size_t i = 0; i < n; ++i) {
      Complex s{};
      for (std::size_t j = k + 1; j < n; ++j) s += h(i, j) * v[j];
      s *= beta;
      for (std::size_t j = k + 1; j < n; ++j) h(i, j) -= s * std::conj(v[j]);
    }
    // U <- U (I - beta v v^H).
    for (std::size_t i = 0; i < n; ++i) {
      Complex s{};
      for (std::size_t j = k + 1; j < n; ++j) s += u(i, j) * v[j];
      s *= beta;
      for (std::size_t j = k + 1; j < n; ++j) u(i, j) -= s * std::conj(v[j]);
    }
    // Enforce exact zeros below the subdiagonal in column k.
    for (std::size_t i = k + 2; i < n; ++i) h(i, k) = Complex{};
  }
}

}  // namespace

ComplexSchur complex_schur(const Matrix& a) {
  if (!a.is_square())
    throw std::invalid_argument("complex_schur: requires square");
  const std::size_t n = a.rows();
  ComplexSchur out;
  out.t = CMatrix::from_real(a);
  out.u = CMatrix::identity(n);
  if (n == 0) return out;
  hessenberg_reduce(out.t, out.u);
  CMatrix& t = out.t;
  CMatrix& u = out.u;

  const double scale = std::max(1e-300, t.frobenius_norm());
  const double eps = 1e-15;
  std::size_t hi = n - 1;
  int iters_since_deflation = 0;
  const int max_total_iters = static_cast<int>(60 * n);
  int total_iters = 0;

  while (hi > 0) {
    if (++total_iters > max_total_iters) {
      out.converged = false;
      break;
    }
    // Find the deflation point: smallest lo with a non-negligible
    // subdiagonal chain up to hi.
    std::size_t lo = hi;
    while (lo > 0) {
      const double sub = std::abs(t(lo, lo - 1));
      const double ref =
          std::abs(t(lo - 1, lo - 1)) + std::abs(t(lo, lo));
      if (sub <= eps * (ref > 0 ? ref : scale)) {
        t(lo, lo - 1) = Complex{};
        break;
      }
      --lo;
    }
    if (lo == hi) {
      --hi;
      iters_since_deflation = 0;
      continue;
    }

    // Shift: Wilkinson from the trailing 2x2 of the active window, with an
    // exceptional shift every 12 stalled iterations.
    Complex mu;
    ++iters_since_deflation;
    if (iters_since_deflation % 12 == 0) {
      mu = t(hi, hi) + Complex{std::abs(t(hi, hi - 1)), 0.0} * 1.5;
    } else {
      const Complex a11 = t(hi - 1, hi - 1), a12 = t(hi - 1, hi);
      const Complex a21 = t(hi, hi - 1), a22 = t(hi, hi);
      const Complex tr2 = (a11 + a22) * 0.5;
      const Complex disc = std::sqrt(tr2 * tr2 - (a11 * a22 - a12 * a21));
      const Complex l1 = tr2 + disc;
      const Complex l2 = tr2 - disc;
      mu = std::abs(l1 - a22) < std::abs(l2 - a22) ? l1 : l2;
    }

    // Single-shift QR sweep on the window [lo, hi] via Givens chasing.
    Complex x = t(lo, lo) - mu;
    Complex y = t(lo + 1, lo);
    for (std::size_t k = lo; k < hi; ++k) {
      Givens g = make_givens(x, y);
      // Apply from the left to rows k, k+1.
      const std::size_t col_start = k > lo ? k - 1 : lo;
      for (std::size_t j = col_start; j < n; ++j) {
        const Complex t1 = t(k, j), t2 = t(k + 1, j);
        t(k, j) = g.c * t1 + g.s * t2;
        t(k + 1, j) = -std::conj(g.s) * t1 + g.c * t2;
      }
      // Apply from the right to columns k, k+1.
      const std::size_t row_end = std::min(hi, k + 2);
      for (std::size_t i = 0; i <= row_end; ++i) {
        const Complex t1 = t(i, k), t2 = t(i, k + 1);
        t(i, k) = g.c * t1 + std::conj(g.s) * t2;
        t(i, k + 1) = -g.s * t1 + g.c * t2;
      }
      // Accumulate in U (right multiplication).
      for (std::size_t i = 0; i < n; ++i) {
        const Complex u1 = u(i, k), u2 = u(i, k + 1);
        u(i, k) = g.c * u1 + std::conj(g.s) * u2;
        u(i, k + 1) = -g.s * u1 + g.c * u2;
      }
      if (k + 1 < hi) {
        x = t(k + 1, k);
        y = t(k + 2, k);
      }
    }
  }
  // Zero-out the strict lower triangle (numerically negligible by now).
  for (std::size_t i = 1; i < n; ++i)
    for (std::size_t j = 0; j < i; ++j) t(i, j) = Complex{};
  return out;
}

EigenDecomposition eigen_decompose(const Matrix& a) {
  const std::size_t n = a.rows();
  ComplexSchur schur = complex_schur(a);
  EigenDecomposition out;
  out.converged = schur.converged;
  out.values.resize(n);
  for (std::size_t i = 0; i < n; ++i) out.values[i] = schur.t(i, i);
  // Eigenvectors of the triangular T by back substitution, then rotate by U.
  CMatrix y{n, n};
  const double tiny = 1e-300;
  for (std::size_t k = 0; k < n; ++k) {
    const Complex lambda = schur.t(k, k);
    y(k, k) = Complex{1.0, 0.0};
    for (std::size_t i = k; i-- > 0;) {
      Complex acc{};
      for (std::size_t m = i + 1; m <= k; ++m) acc += schur.t(i, m) * y(m, k);
      Complex denom = schur.t(i, i) - lambda;
      if (std::abs(denom) < tiny + 1e-12 * std::abs(lambda))
        denom += Complex{1e-12 * (1.0 + std::abs(lambda)), 0.0};
      y(i, k) = -acc / denom;
    }
  }
  out.modal = schur.u * y;
  // Normalize columns.
  for (std::size_t k = 0; k < n; ++k) {
    double norm = 0.0;
    for (std::size_t i = 0; i < n; ++i) norm += std::norm(out.modal(i, k));
    norm = std::sqrt(norm);
    if (norm == 0.0) continue;
    for (std::size_t i = 0; i < n; ++i) out.modal(i, k) /= norm;
  }
  return out;
}

std::vector<Complex> eigenvalues(const Matrix& a) {
  ComplexSchur schur = complex_schur(a);
  std::vector<Complex> out(a.rows());
  for (std::size_t i = 0; i < a.rows(); ++i) out[i] = schur.t(i, i);
  return out;
}

double spectral_abscissa(const Matrix& a) {
  double best = -std::numeric_limits<double>::infinity();
  for (const Complex& l : eigenvalues(a)) best = std::max(best, l.real());
  return best;
}

bool is_hurwitz(const Matrix& a, double margin) {
  return spectral_abscissa(a) < -margin;
}

}  // namespace spiv::numeric
