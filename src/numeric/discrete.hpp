// spiv::numeric — discrete-time support: matrix exponential, zero-order-
// hold discretization, and the discrete (Stein) Lyapunov equation.
//
// The paper verifies the continuous-time design; its reference controller
// [24] is a *digital* multimode implementation.  This module provides the
// bridge: discretize the closed loop at a sample period and certify
// discrete-time stability with the same exact validation machinery
// (P > 0 and P - A^T P A > 0 are positive-definiteness checks).
#pragma once

#include <optional>
#include <utility>

#include "numeric/matrix.hpp"

namespace spiv::numeric {

/// Matrix exponential via scaling-and-squaring with a Padé(6,6)
/// approximant — ample accuracy for the well-scaled matrices here.
[[nodiscard]] Matrix expm(const Matrix& a);

/// Spectral radius (max |eigenvalue|).
[[nodiscard]] double spectral_radius(const Matrix& a);

/// True when all eigenvalues lie strictly inside the unit disk
/// (discrete-time asymptotic stability, i.e. Schur stability).
[[nodiscard]] bool is_schur_stable(const Matrix& a, double margin = 0.0);

/// Zero-order-hold discretization of xdot = A x + B u at sample period h:
///   x[k+1] = Ad x[k] + Bd u[k],  with [Ad Bd; 0 I] = expm([A B; 0 0] h).
/// Returns {Ad, Bd}.
[[nodiscard]] std::pair<Matrix, Matrix> discretize_zoh(const Matrix& a,
                                                       const Matrix& b,
                                                       double h);

/// Solve the discrete Lyapunov (Stein) equation A^T P A - P + Q = 0 for
/// symmetric P via the complex Schur form.  Returns nullopt when the
/// spectrum makes the equation singular (lambda_i * lambda_j ~ 1).
[[nodiscard]] std::optional<Matrix> solve_discrete_lyapunov(const Matrix& a,
                                                            const Matrix& q);

/// Residual A^T P A - P + Q.
[[nodiscard]] Matrix discrete_lyapunov_residual(const Matrix& a,
                                                const Matrix& p,
                                                const Matrix& q);

}  // namespace spiv::numeric
