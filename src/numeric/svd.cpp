#include "numeric/svd.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace spiv::numeric {

Svd svd_decompose(const Matrix& a) {
  if (a.rows() < a.cols())
    throw std::invalid_argument("svd_decompose: requires rows >= cols");
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  Matrix u = a;                     // columns will be rotated to orthogonality
  Matrix v = Matrix::identity(n);
  const int max_sweeps = 60;
  const double eps = 1e-15;
  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    bool converged = true;
    for (std::size_t p = 0; p + 1 < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        // Gram entries of columns p, q.
        double app = 0.0, aqq = 0.0, apq = 0.0;
        for (std::size_t i = 0; i < m; ++i) {
          app += u(i, p) * u(i, p);
          aqq += u(i, q) * u(i, q);
          apq += u(i, p) * u(i, q);
        }
        if (std::abs(apq) <= eps * std::sqrt(app * aqq) || apq == 0.0) continue;
        converged = false;
        const double theta = (aqq - app) / (2.0 * apq);
        const double t = (theta >= 0 ? 1.0 : -1.0) /
                         (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        for (std::size_t i = 0; i < m; ++i) {
          const double up = u(i, p), uq = u(i, q);
          u(i, p) = c * up - s * uq;
          u(i, q) = s * up + c * uq;
        }
        for (std::size_t i = 0; i < n; ++i) {
          const double vp = v(i, p), vq = v(i, q);
          v(i, p) = c * vp - s * vq;
          v(i, q) = s * vp + c * vq;
        }
      }
    }
    if (converged) break;
  }
  // Column norms are the singular values; normalize U's columns.
  Svd out;
  out.singular_values.resize(n);
  std::vector<std::size_t> order(n);
  Vector norms(n);
  for (std::size_t j = 0; j < n; ++j) {
    double acc = 0.0;
    for (std::size_t i = 0; i < m; ++i) acc += u(i, j) * u(i, j);
    norms[j] = std::sqrt(acc);
    order[j] = j;
  }
  std::sort(order.begin(), order.end(),
            [&norms](std::size_t x, std::size_t y) { return norms[x] > norms[y]; });
  out.u = Matrix{m, n};
  out.v = Matrix{n, n};
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t j = order[k];
    out.singular_values[k] = norms[j];
    const double inv = norms[j] > 0 ? 1.0 / norms[j] : 0.0;
    for (std::size_t i = 0; i < m; ++i) out.u(i, k) = u(i, j) * inv;
    for (std::size_t i = 0; i < n; ++i) out.v(i, k) = v(i, j);
  }
  return out;
}

double condition_number(const Matrix& a) {
  const bool tall = a.rows() >= a.cols();
  Svd s = svd_decompose(tall ? a : a.transposed());
  const double smax = s.singular_values.front();
  const double smin = s.singular_values.back();
  if (smin <= smax * 1e-300)
    return std::numeric_limits<double>::infinity();
  return smax / smin;
}

}  // namespace spiv::numeric
