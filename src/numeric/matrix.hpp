// spiv::numeric — dense double-precision matrices and vectors.
//
// The numerical layer mirrors what the paper obtains from python-control /
// NumPy: fast floating-point linear algebra used to *synthesize* candidate
// Lyapunov functions (which are then validated exactly by spiv::smt).
#pragma once

#include <cstddef>
#include <initializer_list>
#include <iosfwd>
#include <optional>
#include <vector>

namespace spiv::numeric {

using Vector = std::vector<double>;

/// Dense row-major matrix of doubles.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  [[nodiscard]] static Matrix identity(std::size_t n);
  [[nodiscard]] static Matrix diagonal(const Vector& d);
  /// Build from a row-major buffer.
  [[nodiscard]] static Matrix from_row_major(std::size_t rows, std::size_t cols,
                                             const double* data);

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] bool is_square() const { return rows_ == cols_; }
  [[nodiscard]] const std::vector<double>& data() const { return data_; }

  [[nodiscard]] double& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  [[nodiscard]] double operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  Matrix& operator+=(const Matrix& rhs);
  Matrix& operator-=(const Matrix& rhs);
  Matrix& operator*=(double s);
  friend Matrix operator+(Matrix a, const Matrix& b) { return a += b; }
  friend Matrix operator-(Matrix a, const Matrix& b) { return a -= b; }
  friend Matrix operator*(Matrix a, double s) { return a *= s; }
  friend Matrix operator*(double s, Matrix a) { return a *= s; }
  friend Matrix operator*(const Matrix& a, const Matrix& b);
  Matrix operator-() const;

  [[nodiscard]] Vector apply(const Vector& x) const;
  /// x^T M (returns a row vector as Vector).
  [[nodiscard]] Vector apply_transposed(const Vector& x) const;
  [[nodiscard]] double quad_form(const Vector& x) const;

  [[nodiscard]] Matrix transposed() const;
  [[nodiscard]] Matrix symmetrized() const;
  [[nodiscard]] bool is_symmetric(double tol = 0.0) const;

  /// Sub-matrix copy: rows [r0, r0+nr), cols [c0, c0+nc).
  [[nodiscard]] Matrix block(std::size_t r0, std::size_t c0, std::size_t nr,
                             std::size_t nc) const;
  /// Write `m` into this matrix at offset (r0, c0).
  void set_block(std::size_t r0, std::size_t c0, const Matrix& m);

  [[nodiscard]] double frobenius_norm() const;
  [[nodiscard]] double max_abs() const;

  /// LU with partial pivoting.  Returns nullopt when numerically singular.
  [[nodiscard]] std::optional<Vector> solve(const Vector& b) const;
  [[nodiscard]] std::optional<Matrix> solve(const Matrix& b) const;
  [[nodiscard]] std::optional<Matrix> inverse() const;
  [[nodiscard]] double determinant() const;

  /// Cholesky factor L (lower) with M = L L^T; nullopt when not PD
  /// (within roundoff).
  [[nodiscard]] std::optional<Matrix> cholesky() const;

  friend std::ostream& operator<<(std::ostream& os, const Matrix& m);

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

// --- free vector helpers -------------------------------------------------

[[nodiscard]] double dot(const Vector& a, const Vector& b);
[[nodiscard]] double norm2(const Vector& v);
[[nodiscard]] Vector operator+(const Vector& a, const Vector& b);
[[nodiscard]] Vector operator-(const Vector& a, const Vector& b);
[[nodiscard]] Vector operator*(double s, const Vector& v);

/// Householder QR: A = Q R with Q orthogonal (rows x rows) and R upper
/// trapezoidal (rows x cols).
struct Qr {
  Matrix q;
  Matrix r;
};
[[nodiscard]] Qr qr_decompose(const Matrix& a);

/// Symmetric eigendecomposition via cyclic Jacobi: A = V diag(w) V^T,
/// eigenvalues ascending.  Requires symmetric input (symmetrize first
/// if in doubt).
struct SymmetricEigen {
  Vector values;  ///< ascending
  Matrix vectors; ///< columns are eigenvectors
};
[[nodiscard]] SymmetricEigen symmetric_eigen(const Matrix& a);

/// Largest singular value (spectral norm) — via symmetric_eigen of A^T A.
[[nodiscard]] double spectral_norm(const Matrix& a);

}  // namespace spiv::numeric
