// spiv::numeric — numerical solution of the continuous-time Lyapunov
// equation (Bartels–Stewart via complex Schur form).
//
// This is the paper's `eq-num` synthesis method (python-control's `lyap`):
// fast, floating-point, and therefore only a *candidate* generator — its
// output still has to be validated symbolically.
#pragma once

#include <optional>

#include "numeric/matrix.hpp"

namespace spiv::numeric {

/// Solve A^T P + P A + Q = 0 for symmetric P (Q symmetric).
/// Returns nullopt when the spectrum of A makes the equation singular
/// (lambda_i + lambda_j ~ 0) or the Schur iteration fails.
[[nodiscard]] std::optional<Matrix> solve_lyapunov(const Matrix& a,
                                                   const Matrix& q);

/// Solve the dual equation A W + W A^T + Q = 0 (controllability-Gramian
/// form), implemented as solve_lyapunov(A^T, Q).
[[nodiscard]] std::optional<Matrix> solve_lyapunov_dual(const Matrix& a,
                                                        const Matrix& q);

/// Residual A^T P + P A + Q.
[[nodiscard]] Matrix lyapunov_residual(const Matrix& a, const Matrix& p,
                                       const Matrix& q);

}  // namespace spiv::numeric
