#include "numeric/matrix.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <stdexcept>

namespace spiv::numeric {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ == 0 ? 0 : rows.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& row : rows) {
    if (row.size() != cols_)
      throw std::invalid_argument("Matrix: ragged initializer");
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m{n, n};
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::diagonal(const Vector& d) {
  Matrix m{d.size(), d.size()};
  for (std::size_t i = 0; i < d.size(); ++i) m(i, i) = d[i];
  return m;
}

Matrix Matrix::from_row_major(std::size_t rows, std::size_t cols,
                              const double* data) {
  Matrix m{rows, cols};
  std::copy(data, data + rows * cols, m.data_.begin());
  return m;
}

Matrix& Matrix::operator+=(const Matrix& rhs) {
  if (rows_ != rhs.rows_ || cols_ != rhs.cols_)
    throw std::invalid_argument("Matrix: shape mismatch in +=");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += rhs.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& rhs) {
  if (rows_ != rhs.rows_ || cols_ != rhs.cols_)
    throw std::invalid_argument("Matrix: shape mismatch in -=");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= rhs.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double s) {
  for (auto& v : data_) v *= s;
  return *this;
}

Matrix operator*(const Matrix& a, const Matrix& b) {
  if (a.cols_ != b.rows_)
    throw std::invalid_argument("Matrix: shape mismatch in *");
  Matrix out{a.rows_, b.cols_};
  for (std::size_t i = 0; i < a.rows_; ++i)
    for (std::size_t k = 0; k < a.cols_; ++k) {
      const double aik = a(i, k);
      if (aik == 0.0) continue;
      for (std::size_t j = 0; j < b.cols_; ++j) out(i, j) += aik * b(k, j);
    }
  return out;
}

Matrix Matrix::operator-() const {
  Matrix out = *this;
  for (auto& v : out.data_) v = -v;
  return out;
}

Vector Matrix::apply(const Vector& x) const {
  if (x.size() != cols_)
    throw std::invalid_argument("Matrix: apply shape mismatch");
  Vector out(rows_, 0.0);
  for (std::size_t i = 0; i < rows_; ++i)
    for (std::size_t j = 0; j < cols_; ++j) out[i] += (*this)(i, j) * x[j];
  return out;
}

Vector Matrix::apply_transposed(const Vector& x) const {
  if (x.size() != rows_)
    throw std::invalid_argument("Matrix: apply_transposed shape mismatch");
  Vector out(cols_, 0.0);
  for (std::size_t i = 0; i < rows_; ++i) {
    const double xi = x[i];
    if (xi == 0.0) continue;
    for (std::size_t j = 0; j < cols_; ++j) out[j] += (*this)(i, j) * xi;
  }
  return out;
}

double Matrix::quad_form(const Vector& x) const {
  if (!is_square() || x.size() != rows_)
    throw std::invalid_argument("Matrix: quad_form shape mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < rows_; ++i) {
    double row = 0.0;
    for (std::size_t j = 0; j < cols_; ++j) row += (*this)(i, j) * x[j];
    acc += x[i] * row;
  }
  return acc;
}

Matrix Matrix::transposed() const {
  Matrix out{cols_, rows_};
  for (std::size_t i = 0; i < rows_; ++i)
    for (std::size_t j = 0; j < cols_; ++j) out(j, i) = (*this)(i, j);
  return out;
}

Matrix Matrix::symmetrized() const {
  if (!is_square())
    throw std::invalid_argument("Matrix: symmetrized requires square");
  Matrix out{rows_, cols_};
  for (std::size_t i = 0; i < rows_; ++i)
    for (std::size_t j = 0; j < cols_; ++j)
      out(i, j) = 0.5 * ((*this)(i, j) + (*this)(j, i));
  return out;
}

bool Matrix::is_symmetric(double tol) const {
  if (!is_square()) return false;
  for (std::size_t i = 0; i < rows_; ++i)
    for (std::size_t j = i + 1; j < cols_; ++j)
      if (std::abs((*this)(i, j) - (*this)(j, i)) > tol) return false;
  return true;
}

Matrix Matrix::block(std::size_t r0, std::size_t c0, std::size_t nr,
                     std::size_t nc) const {
  if (r0 + nr > rows_ || c0 + nc > cols_)
    throw std::out_of_range("Matrix: block out of range");
  Matrix out{nr, nc};
  for (std::size_t i = 0; i < nr; ++i)
    for (std::size_t j = 0; j < nc; ++j) out(i, j) = (*this)(r0 + i, c0 + j);
  return out;
}

void Matrix::set_block(std::size_t r0, std::size_t c0, const Matrix& m) {
  if (r0 + m.rows_ > rows_ || c0 + m.cols_ > cols_)
    throw std::out_of_range("Matrix: set_block out of range");
  for (std::size_t i = 0; i < m.rows_; ++i)
    for (std::size_t j = 0; j < m.cols_; ++j)
      (*this)(r0 + i, c0 + j) = m(i, j);
}

double Matrix::frobenius_norm() const {
  double acc = 0.0;
  for (double v : data_) acc += v * v;
  return std::sqrt(acc);
}

double Matrix::max_abs() const {
  double best = 0.0;
  for (double v : data_) best = std::max(best, std::abs(v));
  return best;
}

namespace {

struct Lu {
  Matrix lu;                 // combined factors
  std::vector<std::size_t> perm;
  int parity = 1;
  bool singular = false;
};

Lu lu_decompose(const Matrix& a) {
  const std::size_t n = a.rows();
  Lu f{a, {}, 1, false};
  f.perm.resize(n);
  for (std::size_t i = 0; i < n; ++i) f.perm[i] = i;
  for (std::size_t col = 0; col < n; ++col) {
    std::size_t pivot = col;
    double best = std::abs(f.lu(col, col));
    for (std::size_t r = col + 1; r < n; ++r) {
      if (std::abs(f.lu(r, col)) > best) {
        best = std::abs(f.lu(r, col));
        pivot = r;
      }
    }
    if (best == 0.0) {
      f.singular = true;
      return f;
    }
    if (pivot != col) {
      for (std::size_t j = 0; j < n; ++j)
        std::swap(f.lu(pivot, j), f.lu(col, j));
      std::swap(f.perm[pivot], f.perm[col]);
      f.parity = -f.parity;
    }
    const double inv = 1.0 / f.lu(col, col);
    for (std::size_t r = col + 1; r < n; ++r) {
      const double factor = f.lu(r, col) * inv;
      f.lu(r, col) = factor;
      for (std::size_t j = col + 1; j < n; ++j)
        f.lu(r, j) -= factor * f.lu(col, j);
    }
  }
  return f;
}

}  // namespace

std::optional<Matrix> Matrix::solve(const Matrix& b) const {
  if (!is_square() || b.rows_ != rows_)
    throw std::invalid_argument("Matrix: solve shape mismatch");
  const std::size_t n = rows_;
  Lu f = lu_decompose(*this);
  if (f.singular) return std::nullopt;
  Matrix x{n, b.cols_};
  for (std::size_t col = 0; col < b.cols_; ++col) {
    Vector y(n);
    for (std::size_t i = 0; i < n; ++i) {
      double acc = b(f.perm[i], col);
      for (std::size_t j = 0; j < i; ++j) acc -= f.lu(i, j) * y[j];
      y[i] = acc;
    }
    for (std::size_t i = n; i-- > 0;) {
      double acc = y[i];
      for (std::size_t j = i + 1; j < n; ++j) acc -= f.lu(i, j) * x(j, col);
      x(i, col) = acc / f.lu(i, i);
    }
  }
  return x;
}

std::optional<Vector> Matrix::solve(const Vector& b) const {
  if (b.size() != rows_)
    throw std::invalid_argument("Matrix: solve rhs size mismatch");
  Matrix col{rows_, 1};
  for (std::size_t i = 0; i < rows_; ++i) col(i, 0) = b[i];
  auto x = solve(col);
  if (!x) return std::nullopt;
  Vector out(rows_);
  for (std::size_t i = 0; i < rows_; ++i) out[i] = (*x)(i, 0);
  return out;
}

std::optional<Matrix> Matrix::inverse() const {
  if (!is_square())
    throw std::invalid_argument("Matrix: inverse requires square");
  return solve(identity(rows_));
}

double Matrix::determinant() const {
  if (!is_square())
    throw std::invalid_argument("Matrix: determinant requires square");
  Lu f = lu_decompose(*this);
  if (f.singular) return 0.0;
  double det = f.parity;
  for (std::size_t i = 0; i < rows_; ++i) det *= f.lu(i, i);
  return det;
}

std::optional<Matrix> Matrix::cholesky() const {
  if (!is_square())
    throw std::invalid_argument("Matrix: cholesky requires square");
  const std::size_t n = rows_;
  Matrix l{n, n};
  for (std::size_t j = 0; j < n; ++j) {
    double diag = (*this)(j, j);
    for (std::size_t k = 0; k < j; ++k) diag -= l(j, k) * l(j, k);
    if (diag <= 0.0) return std::nullopt;
    l(j, j) = std::sqrt(diag);
    const double inv = 1.0 / l(j, j);
    for (std::size_t i = j + 1; i < n; ++i) {
      double acc = (*this)(i, j);
      for (std::size_t k = 0; k < j; ++k) acc -= l(i, k) * l(j, k);
      l(i, j) = acc * inv;
    }
  }
  return l;
}

std::ostream& operator<<(std::ostream& os, const Matrix& m) {
  for (std::size_t i = 0; i < m.rows(); ++i) {
    os << (i == 0 ? "[" : " ");
    for (std::size_t j = 0; j < m.cols(); ++j)
      os << m(i, j) << (j + 1 == m.cols() ? "" : ", ");
    os << (i + 1 == m.rows() ? "]" : ";\n");
  }
  return os;
}

double dot(const Vector& a, const Vector& b) {
  if (a.size() != b.size())
    throw std::invalid_argument("dot: size mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

double norm2(const Vector& v) { return std::sqrt(dot(v, v)); }

Vector operator+(const Vector& a, const Vector& b) {
  if (a.size() != b.size())
    throw std::invalid_argument("vector +: size mismatch");
  Vector out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] + b[i];
  return out;
}

Vector operator-(const Vector& a, const Vector& b) {
  if (a.size() != b.size())
    throw std::invalid_argument("vector -: size mismatch");
  Vector out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

Vector operator*(double s, const Vector& v) {
  Vector out(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) out[i] = s * v[i];
  return out;
}

Qr qr_decompose(const Matrix& a) {
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  Matrix r = a;
  Matrix q = Matrix::identity(m);
  for (std::size_t k = 0; k < std::min(m == 0 ? 0 : m - 1, n); ++k) {
    // Householder vector for column k below the diagonal.
    double norm = 0.0;
    for (std::size_t i = k; i < m; ++i) norm += r(i, k) * r(i, k);
    norm = std::sqrt(norm);
    if (norm == 0.0) continue;
    const double alpha = r(k, k) >= 0 ? -norm : norm;
    Vector v(m, 0.0);
    v[k] = r(k, k) - alpha;
    for (std::size_t i = k + 1; i < m; ++i) v[i] = r(i, k);
    double vnorm2 = 0.0;
    for (std::size_t i = k; i < m; ++i) vnorm2 += v[i] * v[i];
    if (vnorm2 == 0.0) continue;
    const double beta = 2.0 / vnorm2;
    // R <- (I - beta v v^T) R
    for (std::size_t j = k; j < n; ++j) {
      double s = 0.0;
      for (std::size_t i = k; i < m; ++i) s += v[i] * r(i, j);
      s *= beta;
      for (std::size_t i = k; i < m; ++i) r(i, j) -= s * v[i];
    }
    // Q <- Q (I - beta v v^T)
    for (std::size_t i = 0; i < m; ++i) {
      double s = 0.0;
      for (std::size_t j = k; j < m; ++j) s += q(i, j) * v[j];
      s *= beta;
      for (std::size_t j = k; j < m; ++j) q(i, j) -= s * v[j];
    }
  }
  // Clean negligible subdiagonal noise in R.
  for (std::size_t i = 1; i < m; ++i)
    for (std::size_t j = 0; j < std::min<std::size_t>(i, n); ++j) r(i, j) = 0.0;
  return {std::move(q), std::move(r)};
}

SymmetricEigen symmetric_eigen(const Matrix& a) {
  if (!a.is_square())
    throw std::invalid_argument("symmetric_eigen: requires square");
  const std::size_t n = a.rows();
  Matrix m = a.symmetrized();
  Matrix v = Matrix::identity(n);
  const int max_sweeps = 100;
  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    double off = 0.0;
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = i + 1; j < n; ++j) off += m(i, j) * m(i, j);
    if (off < 1e-26 * (1.0 + m.frobenius_norm())) break;
    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const double apq = m(p, q);
        if (std::abs(apq) < 1e-300) continue;
        const double theta = (m(q, q) - m(p, p)) / (2.0 * apq);
        const double t = (theta >= 0 ? 1.0 : -1.0) /
                         (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        // Apply Jacobi rotation to rows/cols p and q of m.
        for (std::size_t k = 0; k < n; ++k) {
          const double mkp = m(k, p), mkq = m(k, q);
          m(k, p) = c * mkp - s * mkq;
          m(k, q) = s * mkp + c * mkq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double mpk = m(p, k), mqk = m(q, k);
          m(p, k) = c * mpk - s * mqk;
          m(q, k) = s * mpk + c * mqk;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double vkp = v(k, p), vkq = v(k, q);
          v(k, p) = c * vkp - s * vkq;
          v(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }
  // Sort ascending by eigenvalue, permuting eigenvector columns to match.
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&m](std::size_t x, std::size_t y) { return m(x, x) < m(y, y); });
  SymmetricEigen out;
  out.values.resize(n);
  out.vectors = Matrix{n, n};
  for (std::size_t k = 0; k < n; ++k) {
    out.values[k] = m(order[k], order[k]);
    for (std::size_t i = 0; i < n; ++i) out.vectors(i, k) = v(i, order[k]);
  }
  return out;
}

double spectral_norm(const Matrix& a) {
  const Matrix ata = a.transposed() * a;
  auto eig = symmetric_eigen(ata);
  const double lam = eig.values.empty() ? 0.0 : eig.values.back();
  return lam > 0 ? std::sqrt(lam) : 0.0;
}

}  // namespace spiv::numeric
