// spiv::numeric — singular value decomposition (one-sided Jacobi).
//
// Used by balanced-truncation model reduction (Hankel singular values of
// the Gramian product) and for spectral norms in the robustness bounds of
// paper §VI-C2.  One-sided Jacobi is slower than Golub–Kahan but simple
// and extremely robust at our sizes (n <= ~22).
#pragma once

#include "numeric/matrix.hpp"

namespace spiv::numeric {

/// A = U diag(s) V^T with singular values descending, U (m x n column-
/// orthonormal for m >= n), V (n x n orthogonal).  Requires rows >= cols;
/// transpose first otherwise.
struct Svd {
  Matrix u;
  Vector singular_values;
  Matrix v;
};

[[nodiscard]] Svd svd_decompose(const Matrix& a);

/// Condition number sigma_max / sigma_min (inf when singular to roundoff).
[[nodiscard]] double condition_number(const Matrix& a);

}  // namespace spiv::numeric
