#include "numeric/lyapunov.hpp"

#include <cmath>
#include <stdexcept>

#include "numeric/eigen.hpp"

namespace spiv::numeric {

std::optional<Matrix> solve_lyapunov(const Matrix& a, const Matrix& q) {
  if (!a.is_square() || !q.is_square() || a.rows() != q.rows())
    throw std::invalid_argument("solve_lyapunov: shape mismatch");
  const std::size_t n = a.rows();
  if (n == 0) return Matrix{};
  ComplexSchur schur = complex_schur(a);
  if (!schur.converged) return std::nullopt;
  const CMatrix& t = schur.t;
  const CMatrix& u = schur.u;
  // With A = U T U^H and X = conj(U) Y U^H the equation A^T X + X A = -Q
  // becomes T^T Y + Y T = C with C = -U^T Q conj(U).
  CMatrix ut{n, n};   // U^T
  CMatrix uc{n, n};   // conj(U)
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) {
      ut(i, j) = u(j, i);
      uc(i, j) = std::conj(u(i, j));
    }
  CMatrix c = ut * CMatrix::from_real(-q) * u;
  // Forward substitution: T^T lower triangular, T upper triangular.
  CMatrix y{n, n};
  const double tol = 1e-12 * (1.0 + t.frobenius_norm());
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      Complex acc = c(i, j);
      for (std::size_t k = 0; k < i; ++k) acc -= t(k, i) * y(k, j);
      for (std::size_t k = 0; k < j; ++k) acc -= y(i, k) * t(k, j);
      const Complex denom = t(i, i) + t(j, j);
      if (std::abs(denom) < tol) return std::nullopt;
      y(i, j) = acc / denom;
    }
  }
  CMatrix x = uc * y * u.adjoint();
  return x.real_part().symmetrized();
}

std::optional<Matrix> solve_lyapunov_dual(const Matrix& a, const Matrix& q) {
  return solve_lyapunov(a.transposed(), q);
}

Matrix lyapunov_residual(const Matrix& a, const Matrix& p, const Matrix& q) {
  return a.transposed() * p + p * a + q;
}

}  // namespace spiv::numeric
