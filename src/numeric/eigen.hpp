// spiv::numeric — complex dense matrices, complex Schur decomposition and
// eigen-decomposition of real matrices.
//
// The paper's `modal` synthesis method builds a Lyapunov matrix
// P = M^{-1 dagger} M^{-1} from a modal (eigenvector) matrix M of A; the
// Bartels–Stewart Lyapunov solver also needs a Schur form.  For the sizes
// involved (<= ~22) a complex single-shift QR iteration on a Hessenberg
// reduction is simple and robust, so we use the complex Schur form
// A = U T U^H throughout and take real parts at the boundaries.
#pragma once

#include <complex>
#include <cstddef>
#include <optional>
#include <vector>

#include "numeric/matrix.hpp"

namespace spiv::numeric {

using Complex = std::complex<double>;

/// Dense row-major complex matrix (minimal interface for Schur/modal work).
class CMatrix {
 public:
  CMatrix() = default;
  CMatrix(std::size_t rows, std::size_t cols);

  [[nodiscard]] static CMatrix identity(std::size_t n);
  [[nodiscard]] static CMatrix from_real(const Matrix& m);

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }

  [[nodiscard]] Complex& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  [[nodiscard]] Complex operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  friend CMatrix operator*(const CMatrix& a, const CMatrix& b);
  CMatrix& operator-=(const CMatrix& rhs);
  friend CMatrix operator-(CMatrix a, const CMatrix& b) { return a -= b; }

  /// Conjugate (Hermitian) transpose.
  [[nodiscard]] CMatrix adjoint() const;

  /// Gaussian elimination with partial pivoting; nullopt when singular.
  [[nodiscard]] std::optional<CMatrix> inverse() const;

  [[nodiscard]] Matrix real_part() const;
  [[nodiscard]] double max_abs_imag() const;
  [[nodiscard]] double frobenius_norm() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<Complex> data_;
};

/// Complex Schur decomposition A = U T U^H with T upper triangular and U
/// unitary.  `converged` is false if the QR iteration hit its sweep budget
/// (extremely unlikely for well-scaled inputs; results are still returned).
struct ComplexSchur {
  CMatrix u;
  CMatrix t;
  bool converged = true;
};
[[nodiscard]] ComplexSchur complex_schur(const Matrix& a);

/// Eigen-decomposition of a real (generally non-symmetric) matrix.
/// `values[k]` is the k-th eigenvalue; `modal` has the corresponding
/// (complex, unit-norm) eigenvectors as columns, obtained from the Schur
/// form by triangular back-substitution.
struct EigenDecomposition {
  std::vector<Complex> values;
  CMatrix modal;
  bool converged = true;
};
[[nodiscard]] EigenDecomposition eigen_decompose(const Matrix& a);

/// Just the eigenvalues of a real square matrix.
[[nodiscard]] std::vector<Complex> eigenvalues(const Matrix& a);

/// Spectral abscissa: max real part over the spectrum (negative iff Hurwitz).
[[nodiscard]] double spectral_abscissa(const Matrix& a);

/// True when every eigenvalue has real part < -margin.
[[nodiscard]] bool is_hurwitz(const Matrix& a, double margin = 0.0);

}  // namespace spiv::numeric
