#include "obs/metrics.hpp"

#include <cmath>
#include <limits>
#include <sstream>
#include <unordered_set>

namespace spiv::obs {

namespace detail {

std::size_t thread_slot() noexcept {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t slot =
      next.fetch_add(1, std::memory_order_relaxed);
  return slot;
}

}  // namespace detail

double Histogram::bucket_bound(std::size_t i) noexcept {
  if (i + 1 >= kBuckets) return std::numeric_limits<double>::infinity();
  return 1e-6 * static_cast<double>(std::uint64_t{1} << i);
}

std::size_t Histogram::bucket_index(double seconds) noexcept {
  // NaN and negatives land in the first bucket rather than deciding policy
  // on the hot path; durations are nonnegative by construction.
  for (std::size_t i = 0; i + 1 < kBuckets; ++i)
    if (!(seconds > bucket_bound(i))) return i;
  return kBuckets - 1;
}

void Histogram::observe(double seconds) noexcept {
  Shard& shard = shards_[detail::thread_slot() % kShards];
  shard.buckets[bucket_index(seconds)].fetch_add(1, std::memory_order_relaxed);
  shard.count.fetch_add(1, std::memory_order_relaxed);
  const double ns = seconds * 1e9;
  const std::uint64_t add =
      ns > 0.0 && ns < 1.8e19 ? static_cast<std::uint64_t>(ns) : 0;
  shard.sum_ns.fetch_add(add, std::memory_order_relaxed);
}

std::uint64_t Histogram::cumulative(std::size_t i) const noexcept {
  std::uint64_t total = 0;
  for (const Shard& shard : shards_)
    for (std::size_t b = 0; b <= i && b < kBuckets; ++b)
      total += shard.buckets[b].load(std::memory_order_relaxed);
  return total;
}

std::uint64_t Histogram::count() const noexcept {
  std::uint64_t total = 0;
  for (const Shard& shard : shards_)
    total += shard.count.load(std::memory_order_relaxed);
  return total;
}

double Histogram::sum_seconds() const noexcept {
  std::uint64_t ns = 0;
  for (const Shard& shard : shards_)
    ns += shard.sum_ns.load(std::memory_order_relaxed);
  return static_cast<double>(ns) / 1e9;
}

Counter& Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

namespace {

/// Family = the metric name without its inline label set.
std::string family_of(const std::string& name) {
  const std::size_t brace = name.find('{');
  return brace == std::string::npos ? name : name.substr(0, brace);
}

/// The label set of `name` with one more label appended:
/// `f{a="b"}` + `le="1"` -> `{a="b",le="1"}`; `f` + `le="1"` -> `{le="1"}`.
std::string labels_with(const std::string& name, const std::string& extra) {
  const std::size_t brace = name.find('{');
  if (brace == std::string::npos) return "{" + extra + "}";
  std::string labels = name.substr(brace);             // "{...}"
  if (labels.size() <= 2) return "{" + extra + "}";    // "{}"
  labels.insert(labels.size() - 1, "," + extra);
  return labels;
}

std::string format_bound(double bound) {
  if (std::isinf(bound)) return "+Inf";
  std::ostringstream os;
  os << bound;
  return os.str();
}

void type_line(std::ostream& os, std::unordered_set<std::string>& seen,
               const std::string& name, const char* type) {
  const std::string family = family_of(name);
  if (seen.insert(family).second)
    os << "# TYPE " << family << " " << type << "\n";
}

}  // namespace

std::string Registry::expose() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream os;
  std::unordered_set<std::string> seen;
  for (const auto& [name, c] : counters_) {
    type_line(os, seen, name, "counter");
    os << name << " " << c->value() << "\n";
  }
  for (const auto& [name, g] : gauges_) {
    type_line(os, seen, name, "gauge");
    os << name << " " << g->value() << "\n";
  }
  for (const auto& [name, h] : histograms_) {
    type_line(os, seen, name, "histogram");
    const std::string family = family_of(name);
    for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
      os << family << "_bucket"
         << labels_with(name,
                        "le=\"" + format_bound(Histogram::bucket_bound(i)) +
                            "\"")
         << " " << h->cumulative(i) << "\n";
    }
    const std::size_t brace = name.find('{');
    const std::string labels =
        brace == std::string::npos ? "" : name.substr(brace);
    os << family << "_sum" << labels << " " << h->sum_seconds() << "\n";
    os << family << "_count" << labels << " " << h->count() << "\n";
  }
  os << "# EOF";
  return os.str();
}

Registry& Registry::global() {
  static Registry registry;
  return registry;
}

}  // namespace spiv::obs
