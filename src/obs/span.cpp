#include "obs/span.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <sstream>

#include "core/env.hpp"
#include "obs/metrics.hpp"

namespace spiv::obs {

namespace {

/// O_APPEND descriptor for $SPIV_TRACE, opened once; -1 when tracing is
/// off.  Never closed — the trace outlives every span, including ones in
/// static destructors.
int trace_fd() noexcept {
  static const int fd = [] {
    const std::string path = core::env::trace_path();
    if (path.empty()) return -1;
    return ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  }();
  return fd;
}

thread_local int t_span_depth = 0;

/// Stable small id per thread for the trace (kernel tids are noisy across
/// runs; a dense counter diffs cleanly).
std::size_t trace_thread_id() noexcept {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

void append_escaped(std::string& out, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void write_trace_line(const char* stage, const std::string& detail,
                      std::chrono::steady_clock::time_point start,
                      double elapsed_seconds, int depth) {
  const int fd = trace_fd();
  if (fd < 0) return;
  const auto start_us = std::chrono::duration_cast<std::chrono::microseconds>(
                            start.time_since_epoch())
                            .count();
  const auto dur_us = static_cast<long long>(elapsed_seconds * 1e6);
  std::string line = "{\"stage\":\"";
  append_escaped(line, stage);
  line += "\"";
  if (!detail.empty()) {
    line += ",\"detail\":\"";
    append_escaped(line, detail);
    line += "\"";
  }
  std::ostringstream tail;
  tail << ",\"thread\":" << trace_thread_id() << ",\"depth\":" << depth
       << ",\"start_us\":" << start_us << ",\"dur_us\":" << dur_us << "}\n";
  line += tail.str();
  // One write(2) per line: O_APPEND makes the whole line land atomically at
  // the end of the file, so concurrent spans never shear each other.
  [[maybe_unused]] const ssize_t n = ::write(fd, line.data(), line.size());
}

}  // namespace

bool trace_enabled() noexcept { return trace_fd() >= 0; }

Span::Span(const char* stage, std::string detail)
    : stage_(stage),
      detail_(std::move(detail)),
      start_(std::chrono::steady_clock::now()),
      depth_(t_span_depth++) {}

double Span::elapsed_seconds() const noexcept {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start_)
      .count();
}

Span::~Span() {
  --t_span_depth;
  const double elapsed = elapsed_seconds();
  Registry::global()
      .histogram(std::string{"spiv_stage_seconds{stage=\""} + stage_ + "\"}")
      .observe(elapsed);
  if (trace_enabled())
    write_trace_line(stage_, detail_, start_, elapsed, depth_);
}

}  // namespace spiv::obs
