// spiv::obs — RAII timing spans that attribute wall-time to pipeline
// stages.
//
//   obs::Span span{"synthesis", lyap::to_string(method)};
//
// On destruction the span records its elapsed wall-clock into the global
// registry's `spiv_stage_seconds{stage="<name>"}` histogram, so every
// stage of the pipeline (case-load / close-loop / synthesis / validation /
// store-lookup / store-insert) has an attributable latency distribution.
//
// With $SPIV_TRACE set to a file path, each span additionally appends one
// JSON line to that file when it closes:
//
//   {"stage":"synthesis","detail":"eq-smt","thread":3,"depth":1,
//    "start_us":12345,"dur_us":678}
//
// Lines are written with a single write(2) to an O_APPEND descriptor, so
// concurrent workers never interleave bytes within a line.  Spans nest via
// a thread-local stack; `depth` in the trace reflects the nesting level at
// the time the span was opened (0 = top level).
#pragma once

#include <chrono>
#include <string>

namespace spiv::obs {

class Span {
 public:
  /// `stage` must outlive the span (string literals in practice); `detail`
  /// is free-form context for the trace line (method/engine/model name).
  explicit Span(const char* stage, std::string detail = {});
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Nesting level of this span on its thread (0 = outermost).
  [[nodiscard]] int depth() const noexcept { return depth_; }

  /// Elapsed seconds so far (the value the destructor will record).
  [[nodiscard]] double elapsed_seconds() const noexcept;

 private:
  const char* stage_;
  std::string detail_;
  std::chrono::steady_clock::time_point start_;
  int depth_;
};

/// Whether $SPIV_TRACE is active (checked once per process).
[[nodiscard]] bool trace_enabled() noexcept;

}  // namespace spiv::obs
