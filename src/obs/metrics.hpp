// spiv::obs — lock-cheap metrics for the verification pipeline.
//
// The paper's evaluation is a timing study (Table I synthesis times, Fig. 3
// validation curves); this registry is the substrate that keeps those
// timings attributable as the system scales: counters and gauges for the
// job pool and certificate store, latency histograms for every pipeline
// stage, all exposed in Prometheus text format by `spiv-serve metrics` and
// by the benches' `--metrics-out` flag.
//
// Concurrency model: the hot path (add / observe) is wait-free — sharded
// relaxed atomics indexed by a per-thread slot, no mutex anywhere on it.
// The registry itself takes a mutex only to *create* a metric or to render
// an exposition snapshot; call sites on hot paths cache the returned
// reference (metrics are never deleted, so references stay valid for the
// life of the process).
//
// Metric names follow Prometheus conventions and may carry a label set
// inline: `counter("spiv_pool_jobs_total")`,
// `histogram("spiv_stage_seconds{stage=\"synthesis\"}")`.  Metrics sharing
// a family (the name before '{') are grouped under one `# TYPE` line.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace spiv::obs {

namespace detail {
/// Small per-thread slot used to spread hot-path atomics across cache
/// lines; threads are assigned round-robin at first use.
[[nodiscard]] std::size_t thread_slot() noexcept;
}  // namespace detail

/// Monotonic counter: sharded relaxed atomics, exact total under any
/// interleaving (each increment lands in exactly one shard).
class Counter {
 public:
  static constexpr std::size_t kShards = 16;

  void add(std::uint64_t n = 1) noexcept {
    cells_[detail::thread_slot() % kShards].v.fetch_add(
        n, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t value() const noexcept {
    std::uint64_t total = 0;
    for (const Cell& c : cells_) total += c.v.load(std::memory_order_relaxed);
    return total;
  }

 private:
  struct alignas(64) Cell {
    std::atomic<std::uint64_t> v{0};
  };
  std::array<Cell, kShards> cells_{};
};

/// Signed instantaneous value (queue depth, in-flight requests).
class Gauge {
 public:
  void set(std::int64_t v) noexcept { v_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t n = 1) noexcept {
    v_.fetch_add(n, std::memory_order_relaxed);
  }
  void sub(std::int64_t n = 1) noexcept {
    v_.fetch_sub(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Latency histogram with fixed log-scale buckets: upper bounds
/// 1 µs · 2^i for i = 0 .. kBuckets-2 (so 1 µs … ~17.9 min) plus a +Inf
/// bucket.  Fixed boundaries mean histograms from different runs and
/// different processes are always mergeable.  Observations are wait-free:
/// one relaxed fetch_add into a sharded (bucket, count, sum) block.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 32;  ///< last bucket is +Inf
  static constexpr std::size_t kShards = 4;

  /// Upper bound of bucket `i` in seconds; +Inf for the last bucket.
  [[nodiscard]] static double bucket_bound(std::size_t i) noexcept;

  /// Index of the bucket whose bound is the first >= `seconds`.
  [[nodiscard]] static std::size_t bucket_index(double seconds) noexcept;

  void observe(double seconds) noexcept;

  /// Cumulative count of observations <= bucket_bound(i) (Prometheus `le`
  /// semantics).
  [[nodiscard]] std::uint64_t cumulative(std::size_t i) const noexcept;
  [[nodiscard]] std::uint64_t count() const noexcept;
  [[nodiscard]] double sum_seconds() const noexcept;

 private:
  struct alignas(64) Shard {
    std::array<std::atomic<std::uint64_t>, kBuckets> buckets{};
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> sum_ns{0};
  };
  std::array<Shard, kShards> shards_{};
};

/// Named metric registry.  Creation and exposition lock; returned
/// references are stable for the life of the registry.
class Registry {
 public:
  [[nodiscard]] Counter& counter(const std::string& name);
  [[nodiscard]] Gauge& gauge(const std::string& name);
  [[nodiscard]] Histogram& histogram(const std::string& name);

  /// Prometheus text exposition of every registered metric, terminated by
  /// an OpenMetrics-style `# EOF` line.
  [[nodiscard]] std::string expose() const;

  /// The process-wide registry every subsystem reports into.
  [[nodiscard]] static Registry& global();

 private:
  mutable std::mutex mutex_;
  // std::map: sorted exposition and node-stable references.
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace spiv::obs
