#include "core/format.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>

namespace spiv::core {

namespace {

std::string fixed(double v, int precision = 2) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string scientific(double v) {
  if (std::isinf(v)) return "inf";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.0e", v);
  return buf;
}

std::string pad(std::string s, std::size_t width, bool left = false) {
  if (s.size() < width) {
    std::string fill(width - s.size(), ' ');
    s = left ? s + fill : fill + s;
  }
  return s;
}

// Printable synthesis time of a Table I cell.  "TO" is reserved for cells
// where every case ran out of budget; a cell that synthesized nothing for
// another reason (solver failure, or an empty cell with zero cases) prints
// "-" so an all-timeout row can't be confused with a missing one.
std::string cell_time(const Table1Cell& cell, int precision) {
  if (cell.synthesized > 0) return fixed(cell.avg_synth_seconds(), precision);
  if (cell.cases > 0 && cell.timeouts == cell.cases) return "TO";
  return "-";
}

}  // namespace

std::string format_table1(const Table1Result& result) {
  std::set<std::size_t> sizes;
  for (const auto& row : result.cells)
    for (const auto& [size, cell] : row) sizes.insert(size);

  std::ostringstream os;
  os << "TABLE I — SYNTHESIS AND VALIDATION OF LYAPUNOV FUNCTIONS\n";
  os << pad("method", 8, true) << pad("solver", 11, true);
  for (std::size_t size : sizes)
    os << pad("size " + std::to_string(size), 12) << pad("valid", 7);
  os << "\n";
  for (std::size_t s = 0; s < result.strategies.size(); ++s) {
    const Strategy& strategy = result.strategies[s];
    os << pad(lyap::to_string(strategy.method), 8, true)
       << pad(strategy.backend_name(), 11, true);
    for (std::size_t size : sizes) {
      auto it = result.cells[s].find(size);
      if (it == result.cells[s].end()) {
        os << pad("-", 12) << pad("-", 7);
        continue;
      }
      const Table1Cell& cell = it->second;
      os << pad(cell_time(cell, 2), 12)
         << pad(std::to_string(cell.valid) + "/" + std::to_string(cell.cases),
                7);
    }
    os << "\n";
  }
  return os.str();
}

std::string table1_csv(const Table1Result& result) {
  std::ostringstream os;
  os << "method,solver,size,avg_synth_seconds,valid,cases,timeouts\n";
  // cells and strategies are populated together by run_table1; take the
  // min so a hand-built partial result cannot index out of range.
  const std::size_t rows = std::min(result.strategies.size(),
                                    result.cells.size());
  for (std::size_t s = 0; s < rows; ++s)
    for (const auto& [size, cell] : result.cells[s]) {
      if (cell.cases == 0) continue;  // empty cell: nothing to report
      os << lyap::to_string(result.strategies[s].method) << ","
         << result.strategies[s].backend_name() << "," << size << ","
         << cell_time(cell, 6) << "," << cell.valid << "," << cell.cases
         << "," << cell.timeouts << "\n";
    }
  return os.str();
}

std::string table1_bench_json(const Table1Result& result, double wall_seconds,
                              std::size_t jobs,
                              const std::string& meta_fields) {
  std::ostringstream os;
  os << "{\n";
  os << "  \"experiment\": \"table1\",\n";
  if (!meta_fields.empty()) os << "  " << meta_fields << ",\n";
  os << "  \"jobs\": " << jobs << ",\n";
  os << "  \"wall_seconds\": " << fixed(wall_seconds, 6) << ",\n";
  os << "  \"cells\": [";
  const std::size_t rows = std::min(result.strategies.size(),
                                    result.cells.size());
  bool first = true;
  for (std::size_t s = 0; s < rows; ++s)
    for (const auto& [size, cell] : result.cells[s]) {
      if (cell.cases == 0) continue;
      os << (first ? "\n" : ",\n");
      first = false;
      os << "    {\"method\": \"" << lyap::to_string(result.strategies[s].method)
         << "\", \"solver\": \"" << result.strategies[s].backend_name()
         << "\", \"size\": " << size
         << ", \"total_synth_seconds\": " << fixed(cell.total_synth_seconds, 6)
         << ", \"avg_synth_seconds\": " << fixed(cell.avg_synth_seconds(), 6)
         << ", \"synthesized\": " << cell.synthesized
         << ", \"valid\": " << cell.valid
         << ", \"timeouts\": " << cell.timeouts
         << ", \"cases\": " << cell.cases << "}";
    }
  os << "\n  ]\n}\n";
  return os.str();
}

std::string format_figure3(const Figure3Result& result) {
  // Cactus: cumulative #solved (Valid or Invalid answers both count as
  // solved obligations) within time budgets.
  const std::vector<double> budgets = {0.001, 0.01, 0.1, 0.5, 1,
                                       5,     10,   30,  60,  120};
  std::ostringstream os;
  os << "FIGURE 3 — VALIDATION TIME WITH DIFFERENT SOLVERS (cactus)\n";
  os << pad("engine", 14, true);
  for (double b : budgets) os << pad("<=" + fixed(b, 3) + "s", 11);
  os << pad("total", 8) << "\n";
  for (std::size_t e = 0; e < result.engines.size(); ++e) {
    std::vector<double> solved_times;
    int total = 0;
    for (const auto& sample : result.samples) {
      if (sample.engine_index != e) continue;
      ++total;
      if (sample.outcome != smt::Outcome::Timeout)
        solved_times.push_back(sample.seconds);
    }
    std::sort(solved_times.begin(), solved_times.end());
    os << pad(result.engines[e].name(), 14, true);
    for (double b : budgets) {
      const auto n = std::upper_bound(solved_times.begin(),
                                      solved_times.end(), b) -
                     solved_times.begin();
      os << pad(std::to_string(n), 11);
    }
    os << pad(std::to_string(total), 8) << "\n";
  }
  return os.str();
}

std::string figure3_csv(const Figure3Result& result) {
  std::ostringstream os;
  os << "engine,candidate,outcome,seconds\n";
  for (const auto& sample : result.samples) {
    const char* outcome = sample.outcome == smt::Outcome::Valid ? "valid"
                          : sample.outcome == smt::Outcome::Invalid
                              ? "invalid"
                              : "timeout";
    os << result.engines[sample.engine_index].name() << ","
       << sample.candidate_index << "," << outcome << ","
       << fixed(sample.seconds, 6) << "\n";
  }
  return os.str();
}

std::string format_rounding(const RoundingResult& result) {
  std::ostringstream os;
  os << "ROUNDING ROBUSTNESS — candidates re-validated at coarser "
        "significant-figure roundings\n";
  os << pad("strategy", 18, true);
  for (int d : result.digit_levels)
    os << pad(std::to_string(d) + " digits", 14);
  os << "\n";
  int totals_invalid[16] = {0};
  for (const auto& [name, cells] : result.counts) {
    os << pad(name, 18, true);
    for (std::size_t d = 0; d < cells.size(); ++d) {
      os << pad(std::to_string(cells[d].valid) + "v/" +
                    std::to_string(cells[d].invalid) + "i",
                14);
      totals_invalid[d] += cells[d].invalid;
    }
    os << "\n";
  }
  os << pad("TOTAL invalid", 18, true);
  for (std::size_t d = 0; d < result.digit_levels.size(); ++d)
    os << pad(std::to_string(totals_invalid[d]), 14);
  os << "\n";
  return os.str();
}

std::string format_table2(const Table2Result& result) {
  std::ostringstream os;
  os << "TABLE II — SYNTHESIS OF ROBUST REGIONS\n";
  // Group by (size, mode).
  std::set<std::pair<std::size_t, std::size_t>> groups;
  for (const auto& e : result.entries) groups.insert({e.size, e.mode});
  for (auto [size, mode] : groups) {
    os << "-- size " << size << ", mode " << mode << " --\n";
    os << pad("method", 8, true) << pad("solver", 11, true) << pad("time", 10)
       << pad("vol", 10) << pad("eps", 10) << pad("cert", 6) << pad("opt", 5)
       << "\n";
    double best_vol = 0.0, best_eps = 0.0;
    for (const auto& e : result.entries)
      if (e.size == size && e.mode == mode && e.certified) {
        best_vol = std::max(best_vol, e.volume);
        best_eps = std::max(best_eps, e.epsilon);
      }
    for (const auto& e : result.entries) {
      if (e.size != size || e.mode != mode) continue;
      os << pad(lyap::to_string(e.strategy.method), 8, true)
         << pad(e.strategy.backend_name(), 11, true);
      if (!e.synthesized) {
        os << pad("-", 10) << pad("-", 10) << pad("-", 10) << pad("-", 6)
           << pad("-", 5) << "\n";
        continue;
      }
      os << pad(fixed(e.seconds, 2), 10)
         << pad(scientific(e.volume) +
                    (e.certified && e.volume == best_vol ? "*" : ""),
                10)
         << pad(scientific(e.epsilon) +
                    (e.certified && e.epsilon == best_eps ? "*" : ""),
                10)
         << pad(e.certified ? "yes" : "no", 6)
         << pad(e.optimal ? "yes" : "no", 5) << "\n";
    }
  }
  os << "(* = column maximum among certified entries, cf. the paper's "
        "highlighting)\n";
  return os.str();
}

std::string table2_csv(const Table2Result& result) {
  std::ostringstream os;
  os << "model,size,mode,method,solver,synthesized,certified,optimal,"
        "seconds,volume,epsilon\n";
  for (const auto& e : result.entries)
    os << e.model_name << "," << e.size << "," << e.mode << ","
       << lyap::to_string(e.strategy.method) << "," << e.strategy.backend_name()
       << "," << e.synthesized << "," << e.certified << "," << e.optimal << ","
       << fixed(e.seconds, 4) << "," << scientific(e.volume) << ","
       << scientific(e.epsilon) << "\n";
  return os.str();
}

std::string format_piecewise(const PiecewiseResult& result) {
  std::ostringstream os;
  os << "PIECEWISE-QUADRATIC LYAPUNOV FOR THE SWITCHED SYSTEM (paper "
        "§VI-B2)\n";
  os << pad("model", 8, true) << pad("encoding", 10, true)
     << pad("candidate", 11) << pad("synth s", 9) << pad("pos0", 6)
     << pad("pos1", 6) << pad("dec0", 6) << pad("dec1", 6)
     << pad("surface", 9) << "\n";
  for (const auto& e : result.entries) {
    os << pad(e.model_name, 8, true)
       << pad(e.encoding == lyap::SurfaceEncoding::Equality ? "equality"
                                                            : "relaxed",
              10, true)
       << pad(e.candidate_found ? "found" : "none", 11);
    if (!e.candidate_found) {
      os << "\n";
      continue;
    }
    auto yn = [](bool b) { return b ? "ok" : "FAIL"; };
    os << pad(fixed(e.synth_seconds, 2), 9) << pad(yn(e.validation.positivity0), 6)
       << pad(yn(e.validation.positivity1), 6) << pad(yn(e.validation.decrease0), 6)
       << pad(yn(e.validation.decrease1), 6) << pad(yn(e.validation.surface), 9)
       << "\n";
  }
  os << "(paper's result: candidates are always found, the exact surface "
        "check always fails)\n";
  return os.str();
}

bool write_file(const std::string& path, const std::string& text) {
  std::ofstream out{path};
  if (!out) return false;
  out << text;
  return static_cast<bool>(out);
}

}  // namespace spiv::core
