#include "core/env.hpp"

#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <iostream>

namespace spiv::core::env {

namespace {

std::atomic<bool> g_warned_jobs{false};
std::atomic<bool> g_warned_exact_solver{false};
std::atomic<bool> g_warned_modular_checkpoint{false};
std::atomic<bool> g_warned_negative_ttl{false};

/// One stderr line per process per variable: the harnesses resolve their
/// configuration once per driver, and a misconfigured shell should not
/// spam every parallel job.
void warn_once(std::atomic<bool>& flag, const std::string& message) {
  if (!flag.exchange(true)) std::cerr << "spiv: " << message << "\n";
}

std::string string_or_empty(const char* name) {
  const char* v = raw(name);
  return v ? std::string{v} : std::string{};
}

}  // namespace

const char* raw(const char* name) noexcept { return std::getenv(name); }

std::optional<std::size_t> parse_positive(const char* text) {
  if (!text || *text == '\0') return std::nullopt;
  // Require a full parse: "4abc" used to slip through strtol as 4, and
  // strtol itself skips leading whitespace (" 4"), which we also reject.
  if (*text < '0' || *text > '9') return std::nullopt;
  char* end = nullptr;
  errno = 0;
  const long v = std::strtol(text, &end, 10);
  if (end == text || *end != '\0' || errno != 0 || v <= 0)
    return std::nullopt;
  return static_cast<std::size_t>(v);
}

std::optional<std::size_t> jobs() {
  const char* v = raw("SPIV_JOBS");
  if (!v || !*v) return std::nullopt;
  if (const std::optional<std::size_t> parsed = parse_positive(v))
    return parsed;
  warn_once(g_warned_jobs, "ignoring invalid SPIV_JOBS='" + std::string{v} +
                               "' (must be a positive integer)");
  return std::nullopt;
}

std::string cache_dir() { return string_or_empty("SPIV_CACHE_DIR"); }

std::string trace_path() { return string_or_empty("SPIV_TRACE"); }

ExactSolver exact_solver() {
  const char* v = raw("SPIV_EXACT_SOLVER");
  if (!v || !*v) return ExactSolver::Auto;
  if (!std::strcmp(v, "bareiss")) return ExactSolver::Bareiss;
  if (!std::strcmp(v, "modular")) return ExactSolver::Modular;
  if (!std::strcmp(v, "auto")) return ExactSolver::Auto;
  warn_once(g_warned_exact_solver,
            "ignoring invalid SPIV_EXACT_SOLVER='" + std::string{v} +
                "' (expected bareiss|modular|auto); using auto");
  return ExactSolver::Auto;
}

std::optional<std::size_t> modular_checkpoint() {
  const char* v = raw("SPIV_MODULAR_CHECKPOINT");
  if (!v || !*v) return std::nullopt;
  if (const std::optional<std::size_t> parsed = parse_positive(v))
    return parsed;
  warn_once(g_warned_modular_checkpoint,
            "ignoring invalid SPIV_MODULAR_CHECKPOINT='" + std::string{v} +
                "' (must be a positive integer)");
  return std::nullopt;
}

std::optional<double> negative_ttl() {
  const char* v = raw("SPIV_NEG_TTL");
  if (!v || !*v) return std::nullopt;
  // Same full-parse discipline as the integer knobs: leading whitespace,
  // trailing junk, negatives, and non-finite values all reject (strtod
  // itself would skip leading whitespace and accept "inf").
  if ((*v >= '0' && *v <= '9') || *v == '.') {
    char* end = nullptr;
    errno = 0;
    const double seconds = std::strtod(v, &end);
    if (end != v && *end == '\0' && errno == 0 && seconds >= 0.0 &&
        seconds < 1e18)
      return seconds;
  }
  warn_once(g_warned_negative_ttl,
            "ignoring invalid SPIV_NEG_TTL='" + std::string{v} +
                "' (must be a non-negative number of seconds)");
  return std::nullopt;
}

void rearm_warnings_for_testing() {
  g_warned_jobs.store(false);
  g_warned_exact_solver.store(false);
  g_warned_modular_checkpoint.store(false);
  g_warned_negative_ttl.store(false);
}

}  // namespace spiv::core::env
