// spiv::core — presentation of experiment results: the paper's table
// layouts on stdout, plus machine-readable CSV.
#pragma once

#include <string>

#include "core/experiments.hpp"

namespace spiv::core {

/// Table I layout: one row per strategy, one (time, valid) column pair per
/// size; "TO" where every case of a cell timed out.
[[nodiscard]] std::string format_table1(const Table1Result& result);
[[nodiscard]] std::string table1_csv(const Table1Result& result);

/// Machine-readable benchmark record for the Table I harness: one JSON
/// object with the harness wall-clock, the worker count, and one entry per
/// (strategy, size) cell carrying its per-cell seconds and counts.  Written
/// by bench/table1_synthesis as BENCH_table1.json so CI can track the
/// parallel speedup across runs.  `meta_fields`, when nonempty, is spliced
/// in as additional top-level `"key": value` pairs (machine/build identity;
/// see bench::machine_meta_fields()).
[[nodiscard]] std::string table1_bench_json(const Table1Result& result,
                                            double wall_seconds,
                                            std::size_t jobs,
                                            const std::string& meta_fields = {});

/// Fig. 3 layout: a cactus table — for each engine, the cumulative number
/// of validation obligations solved within increasing time budgets.
[[nodiscard]] std::string format_figure3(const Figure3Result& result);
[[nodiscard]] std::string figure3_csv(const Figure3Result& result);

/// Rounding study: valid/invalid counts per strategy and digit level.
[[nodiscard]] std::string format_rounding(const RoundingResult& result);

/// Table II layout: per size and mode, one row per strategy with
/// (time, vol, eps), highlighting the per-column maxima like the paper.
[[nodiscard]] std::string format_table2(const Table2Result& result);
[[nodiscard]] std::string table2_csv(const Table2Result& result);

/// Piecewise experiment: candidate-found / per-condition verdicts.
[[nodiscard]] std::string format_piecewise(const PiecewiseResult& result);

/// Write `text` to `path` (overwrites); returns success.
bool write_file(const std::string& path, const std::string& text);

}  // namespace spiv::core
