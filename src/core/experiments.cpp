#include "core/experiments.hpp"

#include <algorithm>
#include <chrono>
#include <iostream>
#include <sstream>

#include "core/parallel.hpp"
#include "model/switched_pi.hpp"
#include "obs/span.hpp"
#include "store/cert_store.hpp"
#include "verify/verify.hpp"

namespace spiv::core {

using numeric::Matrix;
using numeric::Vector;

std::string Strategy::name() const {
  std::string out = lyap::to_string(method);
  if (backend) out += "/" + backend_name();
  return out;
}

std::string Strategy::backend_name() const {
  return backend ? sdp::to_string(*backend) : "";
}

std::vector<Strategy> paper_strategies() {
  std::vector<Strategy> out;
  out.push_back({lyap::Method::EqSmt, std::nullopt});
  out.push_back({lyap::Method::EqNum, std::nullopt});
  out.push_back({lyap::Method::Modal, std::nullopt});
  for (lyap::Method m :
       {lyap::Method::Lmi, lyap::Method::LmiAlpha, lyap::Method::LmiAlphaPlus})
    for (sdp::Backend b :
         {sdp::Backend::NewtonAnalyticCenter, sdp::Backend::FastInteriorPoint,
          sdp::Backend::ShortStepBarrier})
      out.push_back({m, b});
  return out;
}

namespace {

/// The per-mode closed-loop matrices of one benchmark model.
struct ModeCase {
  std::string model_name;
  std::size_t size;
  bool integer_model;
  std::size_t mode;
  Matrix a;
};

std::vector<ModeCase> make_cases(const ExperimentConfig& config) {
  // Case enumeration covers both the model loads and the loop closures;
  // attribute it as one stage (it is cheap next to synthesis, but the
  // benches' --metrics-out breakdown should still account for it).
  obs::Span span{"case-load"};
  std::vector<ModeCase> cases;
  for (const auto& bm : model::benchmark_family()) {
    if (std::find(config.sizes.begin(), config.sizes.end(), bm.size) ==
        config.sizes.end())
      continue;
    const std::vector<model::PiGains> gains = {model::engine_gains_mode0(),
                                               model::engine_gains_mode1()};
    for (std::size_t mode = 0; mode < gains.size(); ++mode) {
      model::PwaMode closed =
          model::close_loop_single_mode(bm.plant, gains[mode]);
      cases.push_back(
          {bm.name, bm.size, bm.integer_rounded, mode, std::move(closed.a)});
    }
  }
  return cases;
}

/// Single-write progress line (worker threads share stderr).
void progress(const ExperimentConfig& config, const std::string& line) {
  if (config.verbose) std::cerr << line;
}

}  // namespace

Table1Result run_table1(const ExperimentConfig& config) {
  Table1Result result;
  result.strategies = paper_strategies();
  result.cells.resize(result.strategies.size());
  const std::vector<ModeCase> cases = make_cases(config);
  const std::size_t num_cases = cases.size();

  // One job per (strategy, case); job i writes only slot i.
  struct SynthOutcome {
    bool timeout = false;
    bool synthesized = false;
    bool valid = false;
    double synth_seconds = 0.0;
    numeric::Matrix p;
  };
  std::vector<SynthOutcome> outcomes(result.strategies.size() * num_cases);

  // Certificate store: an explicit config.store wins; nullopt resolves
  // $SPIV_CACHE_DIR (nullptr = recompute everything, exactly the pre-cache
  // behaviour).  Warm entries replay the stored candidate, verdict, and
  // synthesis time, so a warm run produces bit-identical table cells.
  store::CertStore* cache =
      config.store ? *config.store : store::CertStore::from_env();

  for_each_job(
      outcomes.size(), config.jobs,
      [&](std::size_t idx, const CancelToken& token) {
        const Strategy& strategy = result.strategies[idx / num_cases];
        const ModeCase& mc = cases[idx % num_cases];
        SynthOutcome& out = outcomes[idx];
        {
          std::ostringstream line;
          line << "[table1] " << strategy.name() << " " << mc.model_name
               << " mode " << mc.mode << "\n";
          progress(config, line.str());
        }
        verify::VerifyContext ctx;
        ctx.store = cache;
        ctx.token = &token;
        verify::VerifyRequest vreq;
        vreq.a = mc.a;
        vreq.method = strategy.method;
        vreq.backend = strategy.backend;
        vreq.engine = smt::Engine::Sylvester;
        vreq.digits = config.digits;
        vreq.options.alpha = config.alpha;
        vreq.options.nu = config.nu;
        // Table I semantics: independent per-stage budgets, validation's
        // clock starting only once synthesis is done.
        vreq.budget = verify::SplitBudget{config.synth_timeout_seconds,
                                          config.validate_timeout_seconds};
        verify::VerifyOutcome res = verify::run_verify(ctx, vreq);
        // The table's "TO" cells count synthesis timeouts only; a
        // validation timeout keeps the synthesized candidate in play.
        if (res.status == verify::Status::Timeout &&
            res.timeout_stage == verify::Stage::Synthesis) {
          out.timeout = true;
          return;
        }
        if (!res.synthesized()) return;
        out.synthesized = true;
        out.synth_seconds = res.synth_seconds;
        out.valid = res.status == verify::Status::Valid;
        out.p = res.candidate ? std::move(res.candidate->p)
                              : res.record->candidate.p;  // hit: shared record
      });

  // Merge in (strategy, case) order — the serial loop nest's order — so the
  // aggregation and the candidate list are independent of scheduling.
  for (std::size_t s = 0; s < result.strategies.size(); ++s) {
    for (std::size_t c = 0; c < num_cases; ++c) {
      const ModeCase& mc = cases[c];
      Table1Cell& cell = result.cells[s][mc.size];
      ++cell.cases;
      SynthOutcome& out = outcomes[s * num_cases + c];
      if (out.timeout) {
        ++cell.timeouts;
        continue;
      }
      if (!out.synthesized) continue;
      ++cell.synthesized;
      cell.total_synth_seconds += out.synth_seconds;
      if (out.valid) ++cell.valid;

      CandidateRecord record;
      record.model_name = mc.model_name;
      record.size = mc.size;
      record.integer_model = mc.integer_model;
      record.mode = mc.mode;
      record.strategy = result.strategies[s];
      record.a = mc.a;
      record.p = std::move(out.p);
      record.synth_seconds = out.synth_seconds;
      result.candidates.push_back(std::move(record));
    }
  }
  return result;
}

std::string EngineConfig::name() const {
  return smt::to_string(engine) + (det_encoding ? "+det" : "");
}

std::vector<EngineConfig> paper_engine_configs() {
  return {
      {smt::Engine::SympyGauss, false}, {smt::Engine::Sylvester, false},
      {smt::Engine::Ldlt, false},       {smt::Engine::Ldlt, true},
      {smt::Engine::SmtZ3Style, false}, {smt::Engine::SmtZ3Style, true},
      {smt::Engine::SmtCvc5Style, false}, {smt::Engine::SmtCvc5Style, true},
  };
}

Figure3Result run_figure3(const std::vector<CandidateRecord>& candidates,
                          const ExperimentConfig& config) {
  Figure3Result result;
  result.engines = paper_engine_configs();
  const std::size_t num_candidates = candidates.size();
  // One job per (engine, candidate), filling the sample slot the serial
  // engine-major loop nest would have pushed.
  result.samples.resize(result.engines.size() * num_candidates);

  for_each_job(
      result.samples.size(), config.jobs,
      [&](std::size_t idx, const CancelToken& token) {
        const std::size_t e = idx / num_candidates;
        const std::size_t c = idx % num_candidates;
        {
          std::ostringstream line;
          line << "[figure3] " << result.engines[e].name() << " candidate "
               << c << "/" << num_candidates << "\n";
          progress(config, line.str());
        }
        verify::VerifyContext ctx;
        ctx.token = &token;
        verify::ValidateRequest vreq;
        vreq.a = candidates[c].a;
        vreq.p = candidates[c].p;
        vreq.engine = result.engines[e].engine;
        vreq.digits = config.digits;
        vreq.det_encoding = result.engines[e].det_encoding;
        vreq.timeout_seconds = config.validate_timeout_seconds;
        const verify::VerifyOutcome res = verify::run_validate(ctx, vreq);
        ValidationSample& sample = result.samples[idx];
        sample.candidate_index = c;
        sample.engine_index = e;
        sample.seconds = res.validate_seconds;
        switch (res.status) {
          case verify::Status::Timeout:
            sample.outcome = smt::Outcome::Timeout;
            break;
          case verify::Status::Valid:
            sample.outcome = smt::Outcome::Valid;
            break;
          default:
            sample.outcome = smt::Outcome::Invalid;
            break;
        }
      });
  return result;
}

RoundingResult run_rounding_study(
    const std::vector<CandidateRecord>& candidates,
    const ExperimentConfig& config, const std::vector<int>& digit_levels) {
  RoundingResult result;
  result.digit_levels = digit_levels;
  const std::size_t num_levels = digit_levels.size();

  // One job per (candidate, digit level); 0 = valid, 1 = invalid,
  // 2 = timeout, merged into the per-strategy counts afterwards.
  std::vector<int> outcomes(candidates.size() * num_levels, 0);
  for_each_job(
      outcomes.size(), config.jobs,
      [&](std::size_t idx, const CancelToken& token) {
        const CandidateRecord& record = candidates[idx / num_levels];
        const int digits = digit_levels[idx % num_levels];
        verify::VerifyContext ctx;
        ctx.token = &token;
        verify::ValidateRequest vreq;
        vreq.a = record.a;
        vreq.p = record.p;
        vreq.engine = smt::Engine::Sylvester;
        vreq.digits = digits;
        vreq.timeout_seconds = config.validate_timeout_seconds;
        const verify::VerifyOutcome res = verify::run_validate(ctx, vreq);
        if (res.status == verify::Status::Timeout)
          outcomes[idx] = 2;
        else if (res.status == verify::Status::Valid)
          outcomes[idx] = 0;
        else
          outcomes[idx] = 1;
      });

  for (std::size_t c = 0; c < candidates.size(); ++c) {
    auto& row = result.counts[candidates[c].strategy.name()];
    if (row.empty()) row.resize(num_levels);
    for (std::size_t d = 0; d < num_levels; ++d) {
      switch (outcomes[c * num_levels + d]) {
        case 0: ++row[d].valid; break;
        case 1: ++row[d].invalid; break;
        default: ++row[d].timeout; break;
      }
    }
  }
  return result;
}

Table2Result run_table2(const ExperimentConfig& config,
                        const std::vector<std::size_t>& sizes) {
  Table2Result result;
  // Enumerate (model, mode, strategy) cases up front; the closed-loop
  // systems are shared read-only across jobs.
  struct Table2Case {
    const model::BenchmarkModel* bm;
    const model::PwaSystem* system;
    std::size_t mode;
    Strategy strategy;
  };
  std::vector<model::PwaSystem> systems;
  std::vector<const model::BenchmarkModel*> models;
  for (const auto& bm : model::benchmark_family()) {
    if (bm.integer_rounded) continue;
    if (std::find(sizes.begin(), sizes.end(), bm.size) == sizes.end())
      continue;
    systems.push_back(model::close_loop(bm.plant, bm.controller,
                                        bm.references));
    models.push_back(&bm);
  }
  std::vector<Table2Case> cases;
  for (std::size_t i = 0; i < systems.size(); ++i)
    for (std::size_t mode = 0; mode < systems[i].num_modes(); ++mode)
      for (const Strategy& strategy : paper_strategies()) {
        if (strategy.method == lyap::Method::EqSmt) continue;  // paper: TO
        cases.push_back({models[i], &systems[i], mode, strategy});
      }

  result.entries.resize(cases.size());
  for_each_job(
      cases.size(), config.jobs,
      [&](std::size_t idx, const CancelToken& token) {
        const Table2Case& tc = cases[idx];
        {
          std::ostringstream line;
          line << "[table2] " << tc.bm->name << " mode " << tc.mode << " "
               << tc.strategy.name() << "\n";
          progress(config, line.str());
        }
        Table2Entry& entry = result.entries[idx];
        entry.model_name = tc.bm->name;
        entry.size = tc.bm->size;
        entry.mode = tc.mode;
        entry.strategy = tc.strategy;
        verify::VerifyContext ctx;
        ctx.token = &token;
        verify::VerifyRequest vreq;
        vreq.a = tc.system->mode(tc.mode).a;
        vreq.method = tc.strategy.method;
        vreq.backend = tc.strategy.backend;
        vreq.options.alpha = config.alpha;
        vreq.options.nu = config.nu;
        vreq.budget = verify::SplitBudget{config.synth_timeout_seconds,
                                          config.validate_timeout_seconds};
        const verify::VerifyOutcome res = verify::run_synthesize(ctx, vreq);
        if (!res.synthesized()) return;
        entry.synthesized = true;
        try {
          robust::RegionOptions region_options;
          region_options.digits = config.digits;
          // The region computation plays validation's role: run_synthesize
          // hands back the split validate budget, clock started just now.
          region_options.deadline = res.deadline;
          robust::RobustRegion region = robust::synthesize_region(
              *tc.system, tc.mode, res.candidate->p, tc.bm->references,
              region_options);
          entry.certified = region.certified;
          entry.optimal = region.optimal;
          entry.seconds = region.seconds;
          entry.volume = region.volume;
          entry.epsilon = robust::reference_robustness_epsilon(
              *tc.system, tc.mode, res.candidate->p, tc.bm->references, region);
        } catch (const TimeoutError&) {
        } catch (const std::runtime_error&) {
          // e.g. candidate not PD after rounding: leave uncertified.
        }
      });
  return result;
}

PiecewiseResult run_piecewise(const ExperimentConfig& config) {
  PiecewiseResult result;
  const model::StateSpace engine = model::make_engine_model();
  const model::SwitchedPiController ctrl = model::make_engine_controller();
  for (std::size_t size : config.sizes) {
    if (size > 10) continue;  // keep the exact checks tractable
    model::StateSpace plant =
        size == engine.num_states()
            ? engine
            : model::balanced_truncation(engine, size).sys;
    // References giving a single global attractor (mode 1 transient).
    Vector r{0.0, 1.0, 0.5, 1.0};
    auto mode1 = model::close_loop_single_mode(plant, model::engine_gains_mode1());
    Vector w_eq = mode1.equilibrium(r);
    double y0 = 0.0;
    for (std::size_t j = 0; j < plant.num_states(); ++j)
      y0 += plant.c(0, j) * w_eq[j];
    r[0] = y0;
    model::PwaSystem system = model::close_loop(plant, ctrl, r);

    for (lyap::SurfaceEncoding encoding :
         {lyap::SurfaceEncoding::Equality, lyap::SurfaceEncoding::Relaxed}) {
      if (config.verbose)
        std::cerr << "[piecewise] size " << size << " encoding "
                  << (encoding == lyap::SurfaceEncoding::Equality ? "equality"
                                                                  : "relaxed")
                  << "\n";
      PiecewiseEntry entry;
      entry.model_name = "size" + std::to_string(size);
      entry.encoding = encoding;
      lyap::PiecewiseOptions options;
      options.deadline = Deadline::after_seconds(config.synth_timeout_seconds);
      std::optional<lyap::PiecewiseCandidate> candidate;
      try {
        candidate = lyap::synthesize_piecewise(system, r, encoding, options);
      } catch (const TimeoutError&) {
      }
      if (candidate) {
        entry.candidate_found = true;
        entry.synth_seconds = candidate->synth_seconds;
        entry.validation = lyap::validate_piecewise(
            system, r, *candidate, encoding, config.digits,
            Deadline::after_seconds(config.validate_timeout_seconds));
      }
      result.entries.push_back(entry);
    }
  }
  return result;
}

}  // namespace spiv::core
