#include "core/experiments.hpp"

#include <algorithm>
#include <chrono>
#include <iostream>
#include <sstream>

#include "core/parallel.hpp"
#include "model/switched_pi.hpp"
#include "obs/span.hpp"
#include "store/cert_store.hpp"

namespace spiv::core {

using numeric::Matrix;
using numeric::Vector;

std::string Strategy::name() const {
  std::string out = lyap::to_string(method);
  if (backend) out += "/" + backend_name();
  return out;
}

std::string Strategy::backend_name() const {
  return backend ? sdp::to_string(*backend) : "";
}

std::vector<Strategy> paper_strategies() {
  std::vector<Strategy> out;
  out.push_back({lyap::Method::EqSmt, std::nullopt});
  out.push_back({lyap::Method::EqNum, std::nullopt});
  out.push_back({lyap::Method::Modal, std::nullopt});
  for (lyap::Method m :
       {lyap::Method::Lmi, lyap::Method::LmiAlpha, lyap::Method::LmiAlphaPlus})
    for (sdp::Backend b :
         {sdp::Backend::NewtonAnalyticCenter, sdp::Backend::FastInteriorPoint,
          sdp::Backend::ShortStepBarrier})
      out.push_back({m, b});
  return out;
}

namespace {

/// The per-mode closed-loop matrices of one benchmark model.
struct ModeCase {
  std::string model_name;
  std::size_t size;
  bool integer_model;
  std::size_t mode;
  Matrix a;
};

std::vector<ModeCase> make_cases(const ExperimentConfig& config) {
  // Case enumeration covers both the model loads and the loop closures;
  // attribute it as one stage (it is cheap next to synthesis, but the
  // benches' --metrics-out breakdown should still account for it).
  obs::Span span{"case-load"};
  std::vector<ModeCase> cases;
  for (const auto& bm : model::benchmark_family()) {
    if (std::find(config.sizes.begin(), config.sizes.end(), bm.size) ==
        config.sizes.end())
      continue;
    const std::vector<model::PiGains> gains = {model::engine_gains_mode0(),
                                               model::engine_gains_mode1()};
    for (std::size_t mode = 0; mode < gains.size(); ++mode) {
      model::PwaMode closed =
          model::close_loop_single_mode(bm.plant, gains[mode]);
      cases.push_back(
          {bm.name, bm.size, bm.integer_rounded, mode, std::move(closed.a)});
    }
  }
  return cases;
}

/// Single-write progress line (worker threads share stderr).
void progress(const ExperimentConfig& config, const std::string& line) {
  if (config.verbose) std::cerr << line;
}

}  // namespace

Table1Result run_table1(const ExperimentConfig& config) {
  Table1Result result;
  result.strategies = paper_strategies();
  result.cells.resize(result.strategies.size());
  const std::vector<ModeCase> cases = make_cases(config);
  const std::size_t num_cases = cases.size();

  // One job per (strategy, case); job i writes only slot i.
  struct SynthOutcome {
    bool timeout = false;
    bool synthesized = false;
    bool valid = false;
    double synth_seconds = 0.0;
    numeric::Matrix p;
  };
  std::vector<SynthOutcome> outcomes(result.strategies.size() * num_cases);

  // Certificate store, enabled by $SPIV_CACHE_DIR (nullptr = recompute
  // everything, exactly the pre-cache behaviour).  Warm entries replay the
  // stored candidate, verdict, and synthesis time, so a warm run produces
  // bit-identical table cells.
  store::CertStore* cache = store::CertStore::from_env();

  for_each_job(
      outcomes.size(), config.jobs,
      [&](std::size_t idx, const CancelToken& token) {
        const Strategy& strategy = result.strategies[idx / num_cases];
        const ModeCase& mc = cases[idx % num_cases];
        SynthOutcome& out = outcomes[idx];
        {
          std::ostringstream line;
          line << "[table1] " << strategy.name() << " " << mc.model_name
               << " mode " << mc.mode << "\n";
          progress(config, line.str());
        }
        lyap::SynthesisOptions options;
        options.alpha = config.alpha;
        options.nu = config.nu;
        if (strategy.backend) options.backend = *strategy.backend;
        std::string key;
        if (cache) {
          store::CertRequest request;
          request.a = mc.a;
          request.method = strategy.method;
          request.backend = strategy.backend;
          request.engine = smt::Engine::Sylvester;
          request.digits = config.digits;
          request.set_synthesis_params(options);
          key = store::request_key(request);
          if (auto record = cache->lookup(key)) {
            out.synthesized = true;
            out.synth_seconds = record->candidate.synth_seconds;
            out.valid = record->validation.valid();
            out.p = record->candidate.p;  // record is shared with the cache
            return;
          }
        }
        options.deadline =
            Deadline::after_seconds(config.synth_timeout_seconds, token);
        std::optional<lyap::Candidate> candidate;
        try {
          candidate = lyap::synthesize(mc.a, strategy.method, options);
        } catch (const TimeoutError&) {
          out.timeout = true;
          return;
        }
        if (!candidate) return;
        out.synthesized = true;
        out.synth_seconds = candidate->synth_seconds;

        smt::CheckOptions check;
        check.deadline =
            Deadline::after_seconds(config.validate_timeout_seconds, token);
        auto validation = smt::validate_lyapunov(
            mc.a, candidate->p, smt::Engine::Sylvester, config.digits, check);
        out.valid = validation.valid();
        // Only completed verdicts become certificates: a timeout depends on
        // this run's budget and must not poison warmer runs.
        if (cache && validation.positivity.outcome != smt::Outcome::Timeout &&
            validation.decrease.outcome != smt::Outcome::Timeout)
          cache->insert(key, store::CertRecord{*candidate, validation});
        out.p = std::move(candidate->p);
      });

  // Merge in (strategy, case) order — the serial loop nest's order — so the
  // aggregation and the candidate list are independent of scheduling.
  for (std::size_t s = 0; s < result.strategies.size(); ++s) {
    for (std::size_t c = 0; c < num_cases; ++c) {
      const ModeCase& mc = cases[c];
      Table1Cell& cell = result.cells[s][mc.size];
      ++cell.cases;
      SynthOutcome& out = outcomes[s * num_cases + c];
      if (out.timeout) {
        ++cell.timeouts;
        continue;
      }
      if (!out.synthesized) continue;
      ++cell.synthesized;
      cell.total_synth_seconds += out.synth_seconds;
      if (out.valid) ++cell.valid;

      CandidateRecord record;
      record.model_name = mc.model_name;
      record.size = mc.size;
      record.integer_model = mc.integer_model;
      record.mode = mc.mode;
      record.strategy = result.strategies[s];
      record.a = mc.a;
      record.p = std::move(out.p);
      record.synth_seconds = out.synth_seconds;
      result.candidates.push_back(std::move(record));
    }
  }
  return result;
}

std::string EngineConfig::name() const {
  return smt::to_string(engine) + (det_encoding ? "+det" : "");
}

std::vector<EngineConfig> paper_engine_configs() {
  return {
      {smt::Engine::SympyGauss, false}, {smt::Engine::Sylvester, false},
      {smt::Engine::Ldlt, false},       {smt::Engine::Ldlt, true},
      {smt::Engine::SmtZ3Style, false}, {smt::Engine::SmtZ3Style, true},
      {smt::Engine::SmtCvc5Style, false}, {smt::Engine::SmtCvc5Style, true},
  };
}

Figure3Result run_figure3(const std::vector<CandidateRecord>& candidates,
                          const ExperimentConfig& config) {
  Figure3Result result;
  result.engines = paper_engine_configs();
  const std::size_t num_candidates = candidates.size();
  // One job per (engine, candidate), filling the sample slot the serial
  // engine-major loop nest would have pushed.
  result.samples.resize(result.engines.size() * num_candidates);

  for_each_job(
      result.samples.size(), config.jobs,
      [&](std::size_t idx, const CancelToken& token) {
        const std::size_t e = idx / num_candidates;
        const std::size_t c = idx % num_candidates;
        {
          std::ostringstream line;
          line << "[figure3] " << result.engines[e].name() << " candidate "
               << c << "/" << num_candidates << "\n";
          progress(config, line.str());
        }
        smt::CheckOptions check;
        check.det_encoding = result.engines[e].det_encoding;
        check.deadline =
            Deadline::after_seconds(config.validate_timeout_seconds, token);
        const auto t0 = std::chrono::steady_clock::now();
        auto validation =
            smt::validate_lyapunov(candidates[c].a, candidates[c].p,
                                   result.engines[e].engine, config.digits,
                                   check);
        ValidationSample& sample = result.samples[idx];
        sample.candidate_index = c;
        sample.engine_index = e;
        sample.seconds = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - t0)
                             .count();
        if (validation.positivity.outcome == smt::Outcome::Timeout ||
            validation.decrease.outcome == smt::Outcome::Timeout)
          sample.outcome = smt::Outcome::Timeout;
        else if (validation.valid())
          sample.outcome = smt::Outcome::Valid;
        else
          sample.outcome = smt::Outcome::Invalid;
      });
  return result;
}

RoundingResult run_rounding_study(
    const std::vector<CandidateRecord>& candidates,
    const ExperimentConfig& config, const std::vector<int>& digit_levels) {
  RoundingResult result;
  result.digit_levels = digit_levels;
  const std::size_t num_levels = digit_levels.size();

  // One job per (candidate, digit level); 0 = valid, 1 = invalid,
  // 2 = timeout, merged into the per-strategy counts afterwards.
  std::vector<int> outcomes(candidates.size() * num_levels, 0);
  for_each_job(
      outcomes.size(), config.jobs,
      [&](std::size_t idx, const CancelToken& token) {
        const CandidateRecord& record = candidates[idx / num_levels];
        const int digits = digit_levels[idx % num_levels];
        smt::CheckOptions check;
        check.deadline =
            Deadline::after_seconds(config.validate_timeout_seconds, token);
        auto validation = smt::validate_lyapunov(
            record.a, record.p, smt::Engine::Sylvester, digits, check);
        if (validation.positivity.outcome == smt::Outcome::Timeout ||
            validation.decrease.outcome == smt::Outcome::Timeout)
          outcomes[idx] = 2;
        else if (validation.valid())
          outcomes[idx] = 0;
        else
          outcomes[idx] = 1;
      });

  for (std::size_t c = 0; c < candidates.size(); ++c) {
    auto& row = result.counts[candidates[c].strategy.name()];
    if (row.empty()) row.resize(num_levels);
    for (std::size_t d = 0; d < num_levels; ++d) {
      switch (outcomes[c * num_levels + d]) {
        case 0: ++row[d].valid; break;
        case 1: ++row[d].invalid; break;
        default: ++row[d].timeout; break;
      }
    }
  }
  return result;
}

Table2Result run_table2(const ExperimentConfig& config,
                        const std::vector<std::size_t>& sizes) {
  Table2Result result;
  // Enumerate (model, mode, strategy) cases up front; the closed-loop
  // systems are shared read-only across jobs.
  struct Table2Case {
    const model::BenchmarkModel* bm;
    const model::PwaSystem* system;
    std::size_t mode;
    Strategy strategy;
  };
  std::vector<model::PwaSystem> systems;
  std::vector<const model::BenchmarkModel*> models;
  for (const auto& bm : model::benchmark_family()) {
    if (bm.integer_rounded) continue;
    if (std::find(sizes.begin(), sizes.end(), bm.size) == sizes.end())
      continue;
    systems.push_back(model::close_loop(bm.plant, bm.controller,
                                        bm.references));
    models.push_back(&bm);
  }
  std::vector<Table2Case> cases;
  for (std::size_t i = 0; i < systems.size(); ++i)
    for (std::size_t mode = 0; mode < systems[i].num_modes(); ++mode)
      for (const Strategy& strategy : paper_strategies()) {
        if (strategy.method == lyap::Method::EqSmt) continue;  // paper: TO
        cases.push_back({models[i], &systems[i], mode, strategy});
      }

  result.entries.resize(cases.size());
  for_each_job(
      cases.size(), config.jobs,
      [&](std::size_t idx, const CancelToken& token) {
        const Table2Case& tc = cases[idx];
        {
          std::ostringstream line;
          line << "[table2] " << tc.bm->name << " mode " << tc.mode << " "
               << tc.strategy.name() << "\n";
          progress(config, line.str());
        }
        Table2Entry& entry = result.entries[idx];
        entry.model_name = tc.bm->name;
        entry.size = tc.bm->size;
        entry.mode = tc.mode;
        entry.strategy = tc.strategy;
        lyap::SynthesisOptions options;
        options.alpha = config.alpha;
        options.nu = config.nu;
        if (tc.strategy.backend) options.backend = *tc.strategy.backend;
        options.deadline =
            Deadline::after_seconds(config.synth_timeout_seconds, token);
        std::optional<lyap::Candidate> candidate;
        try {
          candidate = lyap::synthesize(tc.system->mode(tc.mode).a,
                                       tc.strategy.method, options);
        } catch (const TimeoutError&) {
        }
        if (!candidate) return;
        entry.synthesized = true;
        try {
          robust::RegionOptions region_options;
          region_options.digits = config.digits;
          region_options.deadline = Deadline::after_seconds(
              config.validate_timeout_seconds, token);
          robust::RobustRegion region = robust::synthesize_region(
              *tc.system, tc.mode, candidate->p, tc.bm->references,
              region_options);
          entry.certified = region.certified;
          entry.optimal = region.optimal;
          entry.seconds = region.seconds;
          entry.volume = region.volume;
          entry.epsilon = robust::reference_robustness_epsilon(
              *tc.system, tc.mode, candidate->p, tc.bm->references, region);
        } catch (const TimeoutError&) {
        } catch (const std::runtime_error&) {
          // e.g. candidate not PD after rounding: leave uncertified.
        }
      });
  return result;
}

PiecewiseResult run_piecewise(const ExperimentConfig& config) {
  PiecewiseResult result;
  const model::StateSpace engine = model::make_engine_model();
  const model::SwitchedPiController ctrl = model::make_engine_controller();
  for (std::size_t size : config.sizes) {
    if (size > 10) continue;  // keep the exact checks tractable
    model::StateSpace plant =
        size == engine.num_states()
            ? engine
            : model::balanced_truncation(engine, size).sys;
    // References giving a single global attractor (mode 1 transient).
    Vector r{0.0, 1.0, 0.5, 1.0};
    auto mode1 = model::close_loop_single_mode(plant, model::engine_gains_mode1());
    Vector w_eq = mode1.equilibrium(r);
    double y0 = 0.0;
    for (std::size_t j = 0; j < plant.num_states(); ++j)
      y0 += plant.c(0, j) * w_eq[j];
    r[0] = y0;
    model::PwaSystem system = model::close_loop(plant, ctrl, r);

    for (lyap::SurfaceEncoding encoding :
         {lyap::SurfaceEncoding::Equality, lyap::SurfaceEncoding::Relaxed}) {
      if (config.verbose)
        std::cerr << "[piecewise] size " << size << " encoding "
                  << (encoding == lyap::SurfaceEncoding::Equality ? "equality"
                                                                  : "relaxed")
                  << "\n";
      PiecewiseEntry entry;
      entry.model_name = "size" + std::to_string(size);
      entry.encoding = encoding;
      lyap::PiecewiseOptions options;
      options.deadline = Deadline::after_seconds(config.synth_timeout_seconds);
      std::optional<lyap::PiecewiseCandidate> candidate;
      try {
        candidate = lyap::synthesize_piecewise(system, r, encoding, options);
      } catch (const TimeoutError&) {
      }
      if (candidate) {
        entry.candidate_found = true;
        entry.synth_seconds = candidate->synth_seconds;
        entry.validation = lyap::validate_piecewise(
            system, r, *candidate, encoding, config.digits,
            Deadline::after_seconds(config.validate_timeout_seconds));
      }
      result.entries.push_back(entry);
    }
  }
  return result;
}

}  // namespace spiv::core
