#include "core/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <iostream>

#include "core/env.hpp"

namespace spiv::core {

namespace {

/// One stderr warning per process for an over-cap jobs request (the
/// malformed-value warning lives in core::env, next to the parse).
void warn_jobs_once(const std::string& message) {
  static std::atomic<bool> warned{false};
  if (!warned.exchange(true)) std::cerr << "spiv: " << message << "\n";
}

/// Hardware thread count, never zero.
std::size_t hardware_jobs() {
  const unsigned hw_raw = std::thread::hardware_concurrency();
  return hw_raw > 0 ? hw_raw : 1;
}

/// Oversubscribing a work-stealing pool beyond a few threads per core only
/// adds contention; treat anything past 8x the hardware as a typo.
std::size_t jobs_cap() { return 8 * hardware_jobs(); }

}  // namespace

std::optional<std::size_t> parse_jobs(const char* text) {
  return env::parse_positive(text);
}

std::size_t resolve_jobs(std::size_t requested) {
  const std::size_t cap = jobs_cap();
  if (requested > 0) {
    if (requested <= cap) return requested;
    warn_jobs_once("requested " + std::to_string(requested) +
                   " jobs exceeds " + std::to_string(cap) +
                   " (8x hardware_concurrency); using " + std::to_string(cap));
    return cap;
  }
  // env::jobs() warns once on malformed values and reads as nullopt.
  if (const std::optional<std::size_t> v = env::jobs()) {
    if (*v <= cap) return *v;
    warn_jobs_once("SPIV_JOBS=" + std::to_string(*v) + " exceeds " +
                   std::to_string(cap) + " (8x hardware_concurrency); using " +
                   std::to_string(cap));
    return cap;
  }
  return hardware_jobs();
}

JobPool::JobPool(std::size_t threads)
    : queue_depth_(obs::Registry::global().gauge("spiv_pool_queue_depth")),
      jobs_executed_(
          obs::Registry::global().counter("spiv_pool_jobs_executed_total")),
      steals_(obs::Registry::global().counter("spiv_pool_steals_total")) {
  if (threads == 0) threads = 1;
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    workers_.push_back(std::make_unique<Worker>());
  threads_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    threads_.emplace_back([this, i] { run_worker(i); });
}

JobPool::~JobPool() {
  {
    std::lock_guard<std::mutex> lock(signal_mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void JobPool::submit(Job job) {
  std::size_t target;
  {
    std::lock_guard<std::mutex> lock(signal_mutex_);
    target = next_worker_;
    next_worker_ = (next_worker_ + 1) % workers_.size();
    ++pending_;
  }
  {
    std::lock_guard<std::mutex> lock(workers_[target]->mutex);
    workers_[target]->jobs.push_back(std::move(job));
  }
  queue_depth_.add(1);
  work_cv_.notify_one();
}

void JobPool::wait_idle() {
  std::unique_lock<std::mutex> lock(signal_mutex_);
  idle_cv_.wait(lock, [this] { return pending_ == 0; });
}

bool JobPool::any_work() const {
  for (const auto& w : workers_) {
    std::lock_guard<std::mutex> lock(w->mutex);
    if (!w->jobs.empty()) return true;
  }
  return false;
}

bool JobPool::try_pop(std::size_t self, Job& out) {
  // Own deque first (LIFO end for locality) ...
  {
    Worker& w = *workers_[self];
    std::lock_guard<std::mutex> lock(w.mutex);
    if (!w.jobs.empty()) {
      out = std::move(w.jobs.back());
      w.jobs.pop_back();
      queue_depth_.sub(1);
      return true;
    }
  }
  // ... then steal from the front of the other deques (oldest job first,
  // which keeps stolen work close to submission order).
  const std::size_t n = workers_.size();
  for (std::size_t k = 1; k < n; ++k) {
    Worker& w = *workers_[(self + k) % n];
    std::lock_guard<std::mutex> lock(w.mutex);
    if (!w.jobs.empty()) {
      out = std::move(w.jobs.front());
      w.jobs.pop_front();
      queue_depth_.sub(1);
      steals_.add(1);
      return true;
    }
  }
  return false;
}

void JobPool::run_worker(std::size_t self) {
  for (;;) {
    Job job;
    if (!try_pop(self, job)) {
      std::unique_lock<std::mutex> lock(signal_mutex_);
      work_cv_.wait(lock, [this] { return stop_ || any_work(); });
      if (stop_ && !any_work()) return;
      continue;
    }
    job();
    jobs_executed_.add(1);
    bool idle;
    {
      std::lock_guard<std::mutex> lock(signal_mutex_);
      idle = --pending_ == 0;
    }
    if (idle) idle_cv_.notify_all();
  }
}

void for_each_job(
    std::size_t n, std::size_t jobs,
    const std::function<void(std::size_t, const CancelToken&)>& body) {
  jobs = resolve_jobs(jobs);
  if (jobs <= 1 || n <= 1) {
    const CancelToken token;
    for (std::size_t i = 0; i < n; ++i) body(i, token);
    return;
  }
  JobPool pool{std::min(jobs, n)};
  for (std::size_t i = 0; i < n; ++i)
    pool.submit([&body, &pool, i] { body(i, pool.token()); });
  pool.wait_idle();
}

void for_each_block(
    std::size_t n, std::size_t jobs,
    const std::function<void(std::size_t, std::size_t, const CancelToken&)>&
        body) {
  if (n == 0) return;
  jobs = resolve_jobs(jobs);
  const std::size_t chunk = (n + std::min(jobs, n) - 1) / std::min(jobs, n);
  const std::size_t blocks = (n + chunk - 1) / chunk;  // no empty tail block
  for_each_job(blocks, jobs,
               [&body, n, chunk](std::size_t b, const CancelToken& token) {
                 const std::size_t begin = b * chunk;
                 body(begin, std::min(n, begin + chunk), token);
               });
}

}  // namespace spiv::core
