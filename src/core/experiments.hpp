// spiv::core — experiment orchestration: the paper's evaluation (§VI) as
// reusable, parameterized drivers.  Each driver returns structured results;
// the bench binaries print them in the paper's layout and as CSV.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "lyapunov/piecewise.hpp"
#include "lyapunov/synthesis.hpp"
#include "model/reduction.hpp"
#include "robust/region.hpp"
#include "smt/validate.hpp"

namespace spiv::store {
class CertStore;
}

namespace spiv::core {

/// One synthesis strategy row of Table I: a method plus (for the LMI
/// methods) a backend.
struct Strategy {
  lyap::Method method;
  std::optional<sdp::Backend> backend;

  [[nodiscard]] std::string name() const;
  [[nodiscard]] std::string backend_name() const;
};

/// The paper's 12 strategy rows (eq-smt, eq-num, modal, {LMI, LMIa,
/// LMIa+} x {newton-ac, fast-ipm, proj-sub}).
[[nodiscard]] std::vector<Strategy> paper_strategies();

struct ExperimentConfig {
  /// Plant sizes to include (paper: 3, 5, 10, 15, 18; integer variants are
  /// included automatically for 3/5/10).
  std::vector<std::size_t> sizes = {3, 5, 10, 15, 18};
  double synth_timeout_seconds = 30.0;
  double validate_timeout_seconds = 30.0;
  int digits = 10;         ///< rounding before exact validation
  double alpha = 0.1;      ///< LMIa decay-rate parameter
  double nu = 1e-3;        ///< LMIa+ eigenvalue floor
  bool verbose = false;    ///< progress lines on stderr
  /// Worker threads for the job pool: 0 = $SPIV_JOBS (else
  /// hardware_concurrency), 1 = run serially on the calling thread.
  /// All drivers merge job results in case-index order, so every non-timing
  /// output (counts, candidates, outcomes) is identical for any value.
  ///
  /// When a store is available, run_table1 additionally consults the
  /// content-addressed certificate store (store/cert_store.hpp): warm
  /// entries replay the stored candidate, verdict, and recorded synthesis
  /// time, making a warm re-run near-instant with bit-identical cells.
  std::size_t jobs = 0;
  /// Certificate store override: nullopt resolves $SPIV_CACHE_DIR
  /// (store::CertStore::from_env); an explicit nullptr disables caching; an
  /// explicit pointer (e.g. from verify::resolve_store on --cache-dir) is
  /// used as-is.
  std::optional<store::CertStore*> store;
};

/// One synthesized candidate, kept for the downstream experiments
/// (validation comparison, rounding study, robust regions).
struct CandidateRecord {
  std::string model_name;
  std::size_t size = 0;
  bool integer_model = false;
  std::size_t mode = 0;
  Strategy strategy;
  numeric::Matrix a;  ///< closed-loop mode matrix
  numeric::Matrix p;  ///< candidate Lyapunov matrix
  double synth_seconds = 0.0;
};

// ---------------------------------------------------------------- Table I

struct Table1Cell {
  /// Sum of per-job synthesis durations (CPU time of the individual jobs;
  /// under a parallel run this exceeds the harness wall-clock).
  double total_synth_seconds = 0.0;
  int synthesized = 0;
  int valid = 0;
  int timeouts = 0;
  int cases = 0;

  /// Mean synthesis time over the *successfully synthesized* cases only.
  /// Timed-out and failed cases are excluded from both numerator and
  /// denominator — the paper prints "TO" instead of a time for all-timeout
  /// cells — and a cell with no synthesized case returns 0.0 (never a
  /// division by zero).
  [[nodiscard]] double avg_synth_seconds() const {
    return synthesized > 0 ? total_synth_seconds / synthesized : 0.0;
  }
};

struct Table1Result {
  /// cell[strategy index][size] aggregated over model variants and modes.
  std::vector<std::map<std::size_t, Table1Cell>> cells;
  std::vector<Strategy> strategies;
  std::vector<CandidateRecord> candidates;
};

[[nodiscard]] Table1Result run_table1(const ExperimentConfig& config);

// ---------------------------------------------------------------- Fig. 3

struct EngineConfig {
  smt::Engine engine;
  bool det_encoding = false;
  [[nodiscard]] std::string name() const;
};

/// The paper's validator comparison set.
[[nodiscard]] std::vector<EngineConfig> paper_engine_configs();

struct ValidationSample {
  std::size_t candidate_index = 0;
  std::size_t engine_index = 0;
  smt::Outcome outcome = smt::Outcome::Timeout;
  double seconds = 0.0;
};

struct Figure3Result {
  std::vector<EngineConfig> engines;
  std::vector<ValidationSample> samples;
};

[[nodiscard]] Figure3Result run_figure3(
    const std::vector<CandidateRecord>& candidates,
    const ExperimentConfig& config);

// ------------------------------------------------------- rounding study

struct RoundingCell {
  int valid = 0;
  int invalid = 0;
  int timeout = 0;
};

struct RoundingResult {
  std::vector<int> digit_levels;  ///< e.g. {10, 6, 4}
  /// counts[strategy name][digit level index]
  std::map<std::string, std::vector<RoundingCell>> counts;
};

[[nodiscard]] RoundingResult run_rounding_study(
    const std::vector<CandidateRecord>& candidates,
    const ExperimentConfig& config,
    const std::vector<int>& digit_levels = {10, 6, 4});

// ---------------------------------------------------------------- Table II

struct Table2Entry {
  std::string model_name;
  std::size_t size = 0;
  std::size_t mode = 0;
  Strategy strategy;
  bool synthesized = false;
  bool certified = false;
  bool optimal = false;
  double seconds = 0.0;  ///< robust-region synthesis + certification time
  double volume = 0.0;
  double epsilon = 0.0;
};

struct Table2Result {
  std::vector<Table2Entry> entries;
};

/// Robust-region synthesis (paper Table II); `sizes` defaults to the
/// paper's reported pair {15, 18}.
[[nodiscard]] Table2Result run_table2(const ExperimentConfig& config,
                                      const std::vector<std::size_t>& sizes = {
                                          15, 18});

// ------------------------------------------------------------- piecewise

struct PiecewiseEntry {
  std::string model_name;
  lyap::SurfaceEncoding encoding;
  bool candidate_found = false;
  double synth_seconds = 0.0;
  lyap::PiecewiseValidation validation;
};

struct PiecewiseResult {
  std::vector<PiecewiseEntry> entries;
};

[[nodiscard]] PiecewiseResult run_piecewise(const ExperimentConfig& config);

}  // namespace spiv::core
