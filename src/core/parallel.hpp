// spiv::core — work-stealing job pool for the experiment harness.
//
// The paper's evaluation (§VI) is embarrassingly parallel: Table I is
// strategies x model variants x modes of independent synthesis jobs, Fig. 3
// is candidates x validator engines, Table II is models x modes x
// strategies.  JobPool runs those case lists across worker threads with
// per-worker deques and work stealing, so one long eq-smt solve no longer
// serializes the whole table behind it.
//
// Determinism contract: callers enumerate their case list up front, each
// job writes only its own pre-allocated slot, and results are merged on the
// calling thread in case-index order — so parallel output is identical to
// the serial harness for everything that is not a wall-clock measurement.
//
// Cancellation: the pool owns a CancelToken.  Jobs bind their per-job
// Deadline to it (Deadline::after_seconds(s, pool.token())), so cancel()
// preempts running kernels at their next innermost-loop poll.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "exact/timeout.hpp"
#include "obs/metrics.hpp"

namespace spiv::core {

/// Strict worker-count parse: the whole string must be a positive decimal
/// integer in `long` range ("4abc", "-1", "3.5", "" all reject).  Used for
/// $SPIV_JOBS and the service's --jobs flag.
[[nodiscard]] std::optional<std::size_t> parse_jobs(const char* text);

/// Worker count to use: `requested` if nonzero, else $SPIV_JOBS, else
/// hardware_concurrency().  Always >= 1.  $SPIV_JOBS must pass parse_jobs
/// (trailing junk rejects the value); both it and explicit requests are
/// capped at 8x hardware_concurrency().  Rejected or clamped values warn
/// once on stderr.
[[nodiscard]] std::size_t resolve_jobs(std::size_t requested = 0);

/// Fixed-size work-stealing thread pool.  Jobs must not throw (wrap the
/// body and record failures in the job's result slot instead).
class JobPool {
 public:
  using Job = std::function<void()>;

  explicit JobPool(std::size_t threads);
  ~JobPool();

  JobPool(const JobPool&) = delete;
  JobPool& operator=(const JobPool&) = delete;

  /// Enqueue a job (round-robin over the worker deques).
  void submit(Job job);

  /// Block until every submitted job has finished.
  void wait_idle();

  /// Flip the pool's CancelToken: deadlines bound to it expire immediately.
  void cancel_all() const { token_.cancel(); }

  [[nodiscard]] const CancelToken& token() const { return token_; }
  [[nodiscard]] std::size_t thread_count() const { return workers_.size(); }

 private:
  struct Worker {
    std::mutex mutex;
    std::deque<Job> jobs;
  };

  void run_worker(std::size_t self);
  bool try_pop(std::size_t self, Job& out);
  [[nodiscard]] bool any_work() const;

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;
  mutable std::mutex signal_mutex_;
  std::condition_variable work_cv_;  ///< workers: new work or stop
  std::condition_variable idle_cv_;  ///< wait_idle: pending reached zero
  std::size_t pending_ = 0;          ///< submitted but not yet finished
  bool stop_ = false;
  std::size_t next_worker_ = 0;  ///< round-robin submission cursor
  CancelToken token_;
  // Pool observability (global registry, shared by every pool in the
  // process): resolved once here so the submit/pop path never locks it.
  obs::Gauge& queue_depth_;      ///< submitted, not yet popped by a worker
  obs::Counter& jobs_executed_;  ///< jobs run to completion
  obs::Counter& steals_;         ///< pops from another worker's deque
};

/// Run body(i, token) for every i in [0, n) on a JobPool with `jobs`
/// workers.  jobs <= 1 (after resolve_jobs) runs inline on the calling
/// thread with a fresh token, reproducing the serial harness exactly.
/// The body must not throw; each invocation should write only slot i of a
/// pre-sized result vector.
void for_each_job(std::size_t n, std::size_t jobs,
                  const std::function<void(std::size_t, const CancelToken&)>& body);

/// Run body(begin, end, token) over a partition of [0, n) into at most
/// `jobs` contiguous near-equal blocks (block-cyclic would interleave
/// writes; contiguous blocks keep each worker on its own cache lines).
/// Used where per-item work is small and uniform — e.g. the per-entry CRT
/// folds of the multi-modular solver — so one pool job per item would
/// drown in submission overhead.  Same contract as for_each_job: jobs <= 1
/// runs inline serially, bodies must not throw, each block writes only its
/// own slots.
void for_each_block(
    std::size_t n, std::size_t jobs,
    const std::function<void(std::size_t, std::size_t, const CancelToken&)>&
        body);

}  // namespace spiv::core
