// spiv::core::env — the process's single environment-resolution point.
//
// Every SPIV_* knob used to be read with a private std::getenv scattered
// through the tree (core/parallel, store/cert_store, exact/modular,
// obs/span, the bench harnesses), each with its own parsing and its own
// idea of what a malformed value means.  This module centralizes them:
// one raw accessor, one strict parser per variable, and warn-once
// diagnostics for malformed values, so the full table of variables is
// documented in exactly one place (see README "Environment variables").
//
// All accessors re-read the environment on every call — tests flip
// variables with setenv/unsetenv and expect the change to be visible —
// while the warn-once flags are process-wide so a misconfigured shell
// does not spam every job of a parallel harness.
//
// Higher layers (verify::VerifyContext) resolve their defaults through
// these functions once per request/context and can override any of them
// explicitly; kernels below take the resolved values as parameters.
#pragma once

#include <optional>
#include <string>

namespace spiv::core::env {

/// Raw $name (nullptr when unset).  This is the ONLY std::getenv call site
/// in the library tree — new variables must be added here, not read ad hoc.
[[nodiscard]] const char* raw(const char* name) noexcept;

/// Strict positive-integer parse: the whole string must be a positive
/// decimal integer in `long` range ("4abc", "-1", "3.5", "" all reject).
[[nodiscard]] std::optional<std::size_t> parse_positive(const char* text);

/// $SPIV_JOBS — worker-thread count for the experiment pools.  Returns
/// nullopt when unset or malformed; a malformed value additionally warns
/// once per process on stderr.  Callers (core::resolve_jobs) fall back to
/// hardware_concurrency and apply the oversubscription cap.
[[nodiscard]] std::optional<std::size_t> jobs();

/// $SPIV_CACHE_DIR — certificate-store directory; empty = caching off.
[[nodiscard]] std::string cache_dir();

/// $SPIV_TRACE — JSONL span-trace path (obs::Span); empty = tracing off.
[[nodiscard]] std::string trace_path();

/// Exact linear-algebra backend selection (mirrors
/// exact::ExactSolverStrategy, which is defined above this layer).
enum class ExactSolver { Auto, Bareiss, Modular };

/// $SPIV_EXACT_SOLVER — "bareiss" | "modular" | "auto".  Unset/empty reads
/// as Auto; anything else warns once per process and reads as Auto.
[[nodiscard]] ExactSolver exact_solver();

/// $SPIV_MODULAR_CHECKPOINT — first trial-reconstruction checkpoint of the
/// multi-modular solver, in lucky primes folded (the schedule doubles from
/// there).  Returns nullopt when unset; a malformed value warns once per
/// process and reads as nullopt.  Purely a performance knob.
[[nodiscard]] std::optional<std::size_t> modular_checkpoint();

/// $SPIV_NEG_TTL — TTL in seconds for negative caching of synth-failed and
/// timeout outcomes in the certificate store (verify pipeline).  Returns
/// nullopt when unset or malformed (malformed warns once per process);
/// 0 disables negative caching, which is also the default.
[[nodiscard]] std::optional<double> negative_ttl();

/// Testing hook: rearm the warn-once flags so diagnostics tests can observe
/// each warning deterministically.  Not for production code.
void rearm_warnings_for_testing();

}  // namespace spiv::core::env
