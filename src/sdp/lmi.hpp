// spiv::sdp — linear matrix inequality (LMI) feasibility solving.
//
// The paper synthesizes Lyapunov candidates by solving LMI problems
// (paper §III-E(c)) through Picos with three backend SDP solvers (CVXOPT,
// Mosek, SMCP).  We provide the same architecture: one modeling layer
// (affine symmetric matrix pencils) and three backends of genuinely
// different algorithmic character:
//
//  * NewtonAnalyticCenter — phase-I barrier/Newton path following to a
//    well-centered strictly feasible point (CVXOPT-like: robust, medium
//    speed);
//  * FastInteriorPoint    — the same Newton machinery with an aggressive
//    step/termination schedule (Mosek-like: fastest, and — like the
//    paper's Mosek runs on LMIa+ at size 18 — occasionally returns
//    slightly infeasible points that later fail exact validation);
//  * ShortStepBarrier     — the textbook short-step path-following
//    variant: conservative damped Newton steps and a slow barrier
//    schedule (SMCP-like: provably convergent but one to two orders of
//    magnitude slower, mirroring the paper's consistently slowest
//    backend).
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "exact/timeout.hpp"
#include "numeric/matrix.hpp"

namespace spiv::sdp {

/// Affine symmetric-matrix-valued function F(p) = F0 + sum_k p_k Fk.
/// All matrices must be symmetric and share one dimension.
class MatrixPencil {
 public:
  MatrixPencil(numeric::Matrix f0, std::vector<numeric::Matrix> coeffs);

  [[nodiscard]] std::size_t dim() const { return f0_.rows(); }
  [[nodiscard]] std::size_t num_vars() const { return coeffs_.size(); }
  [[nodiscard]] const numeric::Matrix& constant() const { return f0_; }
  [[nodiscard]] const numeric::Matrix& coeff(std::size_t k) const {
    return coeffs_[k];
  }

  [[nodiscard]] numeric::Matrix evaluate(const numeric::Vector& p) const;

 private:
  numeric::Matrix f0_;
  std::vector<numeric::Matrix> coeffs_;
};

/// Feasibility problem: find p with F_j(p) > 0 (strictly) for all j.
struct LmiProblem {
  std::size_t num_vars = 0;
  std::vector<MatrixPencil> constraints;

  void validate() const;
  /// Smallest eigenvalue over all constraint blocks at p.
  [[nodiscard]] double min_eigenvalue(const numeric::Vector& p) const;
};

enum class Backend {
  NewtonAnalyticCenter,
  FastInteriorPoint,
  ShortStepBarrier,
};

[[nodiscard]] std::string to_string(Backend b);
/// Inverse of to_string ("newton-ac", ...); nullopt for unknown names.
[[nodiscard]] std::optional<Backend> backend_from_string(const std::string& name);

struct LmiOptions {
  /// Stop as soon as every block's min eigenvalue exceeds this.
  double target_margin = 1e-6;
  int max_iterations = 400;
  Deadline deadline{};
};

struct LmiSolution {
  bool feasible = false;
  numeric::Vector p;
  double achieved_margin = 0.0;  ///< min eigenvalue over blocks at p
  int iterations = 0;
  double seconds = 0.0;
};

/// Solve the feasibility problem with the chosen backend.
/// Throws TimeoutError when the deadline expires.
[[nodiscard]] LmiSolution solve_lmi(const LmiProblem& problem, Backend backend,
                                    const LmiOptions& options = {});

/// Stepping style of the shared barrier machinery (one per backend).
enum class BarrierMode { Robust, Aggressive, ShortStep };

// Internal entry point; exposed for targeted testing.
[[nodiscard]] LmiSolution solve_lmi_barrier(const LmiProblem& problem,
                                            const LmiOptions& options,
                                            BarrierMode mode);

}  // namespace spiv::sdp
