// spiv::sdp — LMI formulations for quadratic Lyapunov function synthesis
// (paper §III-E(c), methods LMI / LMIa / LMIa+).
//
// Decision variables are the n(n+1)/2 distinct entries of the symmetric P
// in vech order (matching spiv::exact::vech_index).  All three problems
// include the normalization P < kappa*I, which bounds the feasible cone so
// the analytic center exists.
#pragma once

#include "numeric/matrix.hpp"
#include "sdp/lmi.hpp"

namespace spiv::sdp {

struct LyapunovLmiConfig {
  /// Decay-rate parameter of LMIa / LMIa+ (paper eq. (10)); must satisfy
  /// alpha/2 < |spectral abscissa of A| for feasibility.
  double alpha = 0.0;
  /// Eigenvalue floor of LMIa+ (constraint P - nu*I > 0).
  double nu = 0.0;
  /// Normalization P < kappa*I.
  double kappa = 1.0;
};

/// Build the LMI feasibility problem for A:
///   P > 0 (or P > nu*I when nu > 0),   kappa*I - P > 0,
///   -(A^T P + P A) - alpha*P > 0.
[[nodiscard]] LmiProblem make_lyapunov_lmi(const numeric::Matrix& a,
                                           const LyapunovLmiConfig& config);

/// Symmetric basis matrix E_k of the vech parameterization (1 on the
/// diagonal entry, or 1 at both (i,j) and (j,i)).
[[nodiscard]] numeric::Matrix vech_basis_matrix(std::size_t k, std::size_t n);

/// Reassemble P from the solved variable vector.
[[nodiscard]] numeric::Matrix unvech_double(const numeric::Vector& p,
                                            std::size_t n);

}  // namespace spiv::sdp
