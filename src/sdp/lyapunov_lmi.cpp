#include "sdp/lyapunov_lmi.hpp"

#include <stdexcept>

namespace spiv::sdp {

using numeric::Matrix;
using numeric::Vector;

namespace {

/// Maps the flat vech index k back to (i, j) with i >= j for an n x n
/// symmetric matrix (column-stacked lower triangle).
std::pair<std::size_t, std::size_t> vech_position(std::size_t k,
                                                  std::size_t n) {
  std::size_t j = 0;
  std::size_t offset = 0;
  while (k >= offset + (n - j)) {
    offset += n - j;
    ++j;
    if (j >= n) throw std::out_of_range("vech_position: index out of range");
  }
  return {j + (k - offset), j};
}

}  // namespace

Matrix vech_basis_matrix(std::size_t k, std::size_t n) {
  auto [i, j] = vech_position(k, n);
  Matrix e{n, n};
  e(i, j) = 1.0;
  e(j, i) = 1.0;  // overwrites harmlessly when i == j
  return e;
}

Matrix unvech_double(const Vector& p, std::size_t n) {
  if (p.size() != n * (n + 1) / 2)
    throw std::invalid_argument("unvech_double: size mismatch");
  Matrix out{n, n};
  for (std::size_t k = 0; k < p.size(); ++k) {
    auto [i, j] = vech_position(k, n);
    out(i, j) = p[k];
    out(j, i) = p[k];
  }
  return out;
}

LmiProblem make_lyapunov_lmi(const Matrix& a, const LyapunovLmiConfig& config) {
  if (!a.is_square())
    throw std::invalid_argument("make_lyapunov_lmi: A must be square");
  if (config.kappa <= config.nu)
    throw std::invalid_argument("make_lyapunov_lmi: need kappa > nu");
  const std::size_t n = a.rows();
  const std::size_t big_k = n * (n + 1) / 2;
  const Matrix at = a.transposed();

  std::vector<Matrix> basis;
  basis.reserve(big_k);
  for (std::size_t k = 0; k < big_k; ++k)
    basis.push_back(vech_basis_matrix(k, n));

  LmiProblem problem;
  problem.num_vars = big_k;

  // P - nu*I > 0  (plain P > 0 when nu == 0).
  {
    Matrix f0{n, n};
    for (std::size_t i = 0; i < n; ++i) f0(i, i) = -config.nu;
    problem.constraints.emplace_back(std::move(f0), basis);
  }
  // kappa*I - P > 0.
  {
    Matrix f0{n, n};
    for (std::size_t i = 0; i < n; ++i) f0(i, i) = config.kappa;
    std::vector<Matrix> neg;
    neg.reserve(big_k);
    for (const auto& e : basis) neg.push_back(-e);
    problem.constraints.emplace_back(std::move(f0), std::move(neg));
  }
  // -(A^T P + P A) - alpha P > 0.
  {
    Matrix f0{n, n};
    std::vector<Matrix> coeffs;
    coeffs.reserve(big_k);
    for (const auto& e : basis) {
      Matrix c = -(at * e) - e * a;
      if (config.alpha != 0.0) c -= config.alpha * e;
      coeffs.push_back(std::move(c));
    }
    problem.constraints.emplace_back(std::move(f0), std::move(coeffs));
  }
  return problem;
}

}  // namespace spiv::sdp
