#include "sdp/lmi.hpp"

#include <chrono>
#include <cmath>
#include <stdexcept>
#include <tuple>

namespace spiv::sdp {

using numeric::Matrix;
using numeric::Vector;

MatrixPencil::MatrixPencil(Matrix f0, std::vector<Matrix> coeffs)
    : f0_(std::move(f0)), coeffs_(std::move(coeffs)) {
  if (!f0_.is_square())
    throw std::invalid_argument("MatrixPencil: F0 must be square");
  for (const auto& c : coeffs_)
    if (c.rows() != f0_.rows() || c.cols() != f0_.cols())
      throw std::invalid_argument("MatrixPencil: coefficient shape mismatch");
}

Matrix MatrixPencil::evaluate(const Vector& p) const {
  if (p.size() != coeffs_.size())
    throw std::invalid_argument("MatrixPencil: wrong number of variables");
  Matrix out = f0_;
  for (std::size_t k = 0; k < coeffs_.size(); ++k) {
    if (p[k] == 0.0) continue;
    for (std::size_t i = 0; i < out.rows(); ++i)
      for (std::size_t j = 0; j < out.cols(); ++j)
        out(i, j) += p[k] * coeffs_[k](i, j);
  }
  return out;
}

void LmiProblem::validate() const {
  if (constraints.empty())
    throw std::invalid_argument("LmiProblem: no constraints");
  for (const auto& c : constraints)
    if (c.num_vars() != num_vars)
      throw std::invalid_argument("LmiProblem: variable count mismatch");
}

double LmiProblem::min_eigenvalue(const Vector& p) const {
  double worst = std::numeric_limits<double>::infinity();
  for (const auto& c : constraints) {
    auto eig = numeric::symmetric_eigen(c.evaluate(p));
    worst = std::min(worst, eig.values.front());
  }
  return worst;
}

std::string to_string(Backend b) {
  switch (b) {
    case Backend::NewtonAnalyticCenter: return "newton-ac";
    case Backend::FastInteriorPoint: return "fast-ipm";
    case Backend::ShortStepBarrier: return "short-ipm";
  }
  return "?";
}

std::optional<Backend> backend_from_string(const std::string& name) {
  for (Backend b : {Backend::NewtonAnalyticCenter, Backend::FastInteriorPoint,
                    Backend::ShortStepBarrier})
    if (to_string(b) == name) return b;
  return std::nullopt;
}

namespace {

/// Strict positive-definiteness probe via Cholesky (cheap and robust).
bool is_pd(const Matrix& m) { return m.cholesky().has_value(); }

double trace_of_product(const Matrix& a, const Matrix& b) {
  double acc = 0.0;
  const std::size_t n = a.rows();
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) acc += a(i, j) * b(j, i);
  return acc;
}

}  // namespace

LmiSolution solve_lmi_barrier(const LmiProblem& problem,
                              const LmiOptions& options, BarrierMode mode) {
  const bool aggressive = mode == BarrierMode::Aggressive;
  const bool short_step = mode == BarrierMode::ShortStep;
  problem.validate();
  const auto start = std::chrono::steady_clock::now();
  const std::size_t big_k = problem.num_vars;  // p variables
  const std::size_t nx = big_k + 1;            // plus the slack t

  // Phase-I: maximize t subject to F_j(p) - t I > 0, starting from p = 0
  // and t strictly below the current minimum eigenvalue.
  Vector p(big_k, 0.0);
  double t = problem.min_eigenvalue(p) - 1.0;

  // Shifted blocks G_j(p, t) = F_j(p) - t I.
  auto eval_block = [&problem](std::size_t j, const Vector& pp, double tt) {
    Matrix g = problem.constraints[j].evaluate(pp);
    for (std::size_t i = 0; i < g.rows(); ++i) g(i, i) -= tt;
    return g;
  };
  auto all_pd = [&](const Vector& pp, double tt) {
    for (std::size_t j = 0; j < problem.constraints.size(); ++j)
      if (!is_pd(eval_block(j, pp, tt))) return false;
    return true;
  };
  auto barrier_value = [&](const Vector& pp, double tt) {
    double phi = 0.0;
    for (std::size_t j = 0; j < problem.constraints.size(); ++j) {
      auto chol = eval_block(j, pp, tt).cholesky();
      if (!chol) return std::numeric_limits<double>::infinity();
      for (std::size_t i = 0; i < chol->rows(); ++i)
        phi -= 2.0 * std::log((*chol)(i, i));
    }
    return phi;
  };

  LmiSolution sol;
  // Barrier weight on t; aggressive mode ramps it much faster and accepts
  // the first point past the margin without re-centering, while the
  // short-step mode crawls along the central path (slow but certain).
  double mu = aggressive ? 16.0 : (short_step ? 1.0 : 4.0);
  const double mu_growth = aggressive ? 20.0 : (short_step ? 1.4 : 6.0);
  const double stop_margin =
      aggressive ? options.target_margin : options.target_margin * 10.0;
  const int max_outer = aggressive ? 6 : (short_step ? 60 : 10);
  // Short-step mode caps the damped-Newton step fraction.
  const double max_step = short_step ? 0.18 : 1.0;

  int iters = 0;
  for (int outer = 0; outer < max_outer; ++outer) {
    for (int inner = 0; inner < options.max_iterations; ++inner) {
      options.deadline.check();
      ++iters;
      // Gradient and Hessian of phi_mu = -mu t + barrier over x = (p, t).
      Vector grad(nx, 0.0);
      grad[big_k] = -mu;
      Matrix hess{nx, nx};
      for (std::size_t j = 0; j < problem.constraints.size(); ++j) {
        const MatrixPencil& c = problem.constraints[j];
        Matrix g = eval_block(j, p, t);
        auto ginv_opt = g.inverse();
        if (!ginv_opt) return sol;  // numerically on the boundary
        const Matrix& ginv = *ginv_opt;
        // W_k = G^{-1} D_k with D_k = F_jk for p-vars and -I for t.
        std::vector<Matrix> w;
        w.reserve(nx);
        for (std::size_t k = 0; k < big_k; ++k) w.push_back(ginv * c.coeff(k));
        w.push_back(-ginv);
        for (std::size_t a = 0; a < nx; ++a) {
          // d/dx_a of -log det G = -tr(G^{-1} D_a) = -tr(W_a).
          double tr = 0.0;
          for (std::size_t i = 0; i < g.rows(); ++i) tr += w[a](i, i);
          grad[a] -= tr;
          for (std::size_t b = a; b < nx; ++b) {
            const double hab = trace_of_product(w[a], w[b]);
            hess(a, b) += hab;
            if (b != a) hess(b, a) += hab;
          }
        }
      }
      // Damped Newton step.
      for (std::size_t i = 0; i < nx; ++i) hess(i, i) += 1e-12;
      Vector neg_grad(nx);
      for (std::size_t i = 0; i < nx; ++i) neg_grad[i] = -grad[i];
      auto step_opt = hess.solve(neg_grad);
      if (!step_opt) return sol;
      const Vector& step = *step_opt;

      // Backtracking line search maintaining strict feasibility of the
      // shifted blocks and decreasing phi_mu.
      const double phi0 = barrier_value(p, t) - mu * t;
      double s = max_step;
      Vector p_new = p;
      double t_new = t;
      bool accepted = false;
      for (int ls = 0; ls < 40; ++ls) {
        for (std::size_t k = 0; k < big_k; ++k) p_new[k] = p[k] + s * step[k];
        t_new = t + s * step[big_k];
        if (all_pd(p_new, t_new)) {
          const double phi1 = barrier_value(p_new, t_new) - mu * t_new;
          if (phi1 < phi0 - 1e-12 * std::abs(phi0) ||
              s < (aggressive ? 1e-2 : 1e-4)) {
            accepted = true;
            break;
          }
        }
        s *= 0.5;
      }
      if (!accepted) break;  // stalled at this mu
      const double decrement = s * numeric::dot(step, grad);
      p = p_new;
      t = t_new;
      if (t >= stop_margin) {
        sol.feasible = true;
        sol.p = p;
        sol.achieved_margin = problem.min_eigenvalue(p);
        sol.iterations = iters;
        sol.seconds = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - start)
                          .count();
        return sol;
      }
      if (std::abs(decrement) < 1e-10 * (1.0 + std::abs(t))) break;
    }
    mu *= mu_growth;
  }

  // Out of budget: report whatever margin we reached.
  sol.p = p;
  sol.achieved_margin = problem.min_eigenvalue(p);
  sol.feasible = sol.achieved_margin > 0.0;
  sol.iterations = iters;
  sol.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return sol;
}

LmiSolution solve_lmi(const LmiProblem& problem, Backend backend,
                      const LmiOptions& options) {
  switch (backend) {
    case Backend::NewtonAnalyticCenter:
      return solve_lmi_barrier(problem, options, BarrierMode::Robust);
    case Backend::FastInteriorPoint:
      return solve_lmi_barrier(problem, options, BarrierMode::Aggressive);
    case Backend::ShortStepBarrier:
      return solve_lmi_barrier(problem, options, BarrierMode::ShortStep);
  }
  throw std::invalid_argument("solve_lmi: unknown backend");
}

}  // namespace spiv::sdp
