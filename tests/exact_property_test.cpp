// Parameterized property sweeps for the exact linear-algebra layer.
#include <gtest/gtest.h>

#include <random>

#include "exact/lyapunov_exact.hpp"
#include "exact/matrix.hpp"
#include "exact/modular.hpp"

namespace spiv::exact {
namespace {

RatMatrix random_matrix(std::mt19937_64& rng, std::size_t n, std::size_t m) {
  std::uniform_int_distribution<std::int64_t> num{-7, 7};
  std::uniform_int_distribution<std::int64_t> den{1, 5};
  RatMatrix out{n, m};
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < m; ++j) out(i, j) = Rational{num(rng), den(rng)};
  return out;
}

class ExactMatrixProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(ExactMatrixProperty, InverseIsTwoSided) {
  std::mt19937_64 rng{GetParam()};
  for (int iter = 0; iter < 8; ++iter) {
    const std::size_t n = 2 + iter % 5;
    RatMatrix m = random_matrix(rng, n, n);
    auto inv = m.inverse();
    if (!inv) {
      EXPECT_TRUE(m.determinant().is_zero());
      continue;
    }
    EXPECT_EQ(m * *inv, RatMatrix::identity(n));
    EXPECT_EQ(*inv * m, RatMatrix::identity(n));
    // det(M^-1) = 1/det(M).
    EXPECT_EQ(inv->determinant() * m.determinant(), Rational{1});
  }
}

TEST_P(ExactMatrixProperty, TransposeAndDeterminantLaws) {
  std::mt19937_64 rng{GetParam() + 5};
  for (int iter = 0; iter < 8; ++iter) {
    const std::size_t n = 2 + iter % 5;
    RatMatrix a = random_matrix(rng, n, n);
    RatMatrix b = random_matrix(rng, n, n);
    EXPECT_EQ(a.transposed().determinant(), a.determinant());
    EXPECT_EQ((a * b).transposed(), b.transposed() * a.transposed());
    EXPECT_EQ(a.transposed().transposed(), a);
    // rank(A) == rank(A^T).
    EXPECT_EQ(a.rank(), a.transposed().rank());
  }
}

TEST_P(ExactMatrixProperty, KroneckerMixedProduct) {
  // (A (x) B)(C (x) D) = (AC) (x) (BD).
  std::mt19937_64 rng{GetParam() + 9};
  RatMatrix a = random_matrix(rng, 2, 3);
  RatMatrix b = random_matrix(rng, 3, 2);
  RatMatrix c = random_matrix(rng, 3, 2);
  RatMatrix d = random_matrix(rng, 2, 3);
  EXPECT_EQ(kronecker(a, b) * kronecker(c, d), kronecker(a * c, b * d));
}

TEST_P(ExactMatrixProperty, LdltAgreesWithMinorsOnPdQuestion) {
  std::mt19937_64 rng{GetParam() + 13};
  for (int iter = 0; iter < 10; ++iter) {
    const std::size_t n = 2 + iter % 5;
    RatMatrix m = random_matrix(rng, n, n).symmetrized();
    auto minors = m.leading_principal_minors();
    bool pd_by_minors = true;
    for (const auto& mm : minors) pd_by_minors &= mm.sign() > 0;
    auto f = m.ldlt();
    bool pd_by_ldlt = f.has_value();
    if (f)
      for (const auto& dv : f->d) pd_by_ldlt &= dv.sign() > 0;
    EXPECT_EQ(pd_by_minors, pd_by_ldlt) << "iter " << iter;
  }
}

TEST_P(ExactMatrixProperty, FullKroneckerLyapunovMatchesVech) {
  std::mt19937_64 rng{GetParam() + 17};
  for (int iter = 0; iter < 4; ++iter) {
    const std::size_t n = 2 + iter % 3;
    // Diagonally dominant => Hurwitz and Lyapunov-solvable.
    RatMatrix a = random_matrix(rng, n, n);
    for (std::size_t i = 0; i < n; ++i) a(i, i) -= Rational{30};
    RatMatrix q = RatMatrix::identity(n);
    auto p1 = solve_lyapunov_exact(a, q);
    auto p2 = solve_lyapunov_exact_full_kronecker(a, q);
    ASSERT_TRUE(p1.has_value());
    ASSERT_TRUE(p2.has_value());
    EXPECT_EQ(*p1, *p2);
  }
}

TEST_P(ExactMatrixProperty, ModularSolverAgreesWithBareiss) {
  // The multi-modular path must return the *same RatMatrix* as Bareiss
  // (canonical rationals make equality representation-exact), or nullopt on
  // exactly the systems Bareiss declares singular.
  std::mt19937_64 rng{GetParam() + 29};
  for (int iter = 0; iter < 10; ++iter) {
    const std::size_t n = 2 + iter % 7;  // 2..8
    RatMatrix a = random_matrix(rng, n, n);
    if (iter % 3 == 0)  // bias a third of cases towards nonsingular
      for (std::size_t i = 0; i < n; ++i) a(i, i) += Rational{25};
    RatMatrix b = random_matrix(rng, n, 1 + iter % 2);
    auto modular = solve_rational_modular(a, b);
    auto bareiss = a.solve(b);
    if (bareiss.has_value()) {
      ASSERT_TRUE(modular.has_value()) << "iter " << iter;
      EXPECT_EQ(*modular, *bareiss) << "iter " << iter;
    } else {
      EXPECT_FALSE(modular.has_value()) << "iter " << iter;
    }
    EXPECT_EQ(determinant_modular(a), a.determinant()) << "iter " << iter;
  }
}

TEST_P(ExactMatrixProperty, QuadFormMatchesExplicitProduct) {
  std::mt19937_64 rng{GetParam() + 23};
  const std::size_t n = 5;
  RatMatrix m = random_matrix(rng, n, n);
  std::uniform_int_distribution<std::int64_t> num{-6, 6};
  std::vector<Rational> x(n);
  for (auto& v : x) v = Rational{num(rng), 2};
  // x^T M x via explicit products.
  std::vector<Rational> mx = m.apply(x);
  Rational expected;
  for (std::size_t i = 0; i < n; ++i) expected += x[i] * mx[i];
  EXPECT_EQ(m.quad_form(x), expected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExactMatrixProperty,
                         ::testing::Values(301u, 302u, 303u));

}  // namespace
}  // namespace spiv::exact
