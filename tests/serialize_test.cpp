// Round-trip tests for the plain-text model format.
#include "model/serialize.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace spiv::model {
namespace {

TEST(Serialize, StateSpaceRoundTrip) {
  StateSpace sys = make_engine_model();
  std::stringstream ss;
  write_state_space(ss, sys);
  StateSpace back = read_state_space(ss);
  EXPECT_EQ(back.a.data(), sys.a.data());  // bit-exact (17 digits)
  EXPECT_EQ(back.b.data(), sys.b.data());
  EXPECT_EQ(back.c.data(), sys.c.data());
}

TEST(Serialize, FullCaseRoundTripEveryFamilyMember) {
  for (const auto& bm : make_benchmark_family()) {
    BenchmarkModel back = case_from_string(case_to_string(bm));
    EXPECT_EQ(back.name, bm.name);
    EXPECT_EQ(back.size, bm.size);
    EXPECT_EQ(back.integer_rounded, bm.integer_rounded);
    EXPECT_EQ(back.plant.a.data(), bm.plant.a.data());
    EXPECT_EQ(back.plant.b.data(), bm.plant.b.data());
    EXPECT_EQ(back.plant.c.data(), bm.plant.c.data());
    ASSERT_EQ(back.controller.num_modes(), bm.controller.num_modes());
    for (std::size_t i = 0; i < bm.controller.num_modes(); ++i) {
      EXPECT_EQ(back.controller.gains[i].kp.data(),
                bm.controller.gains[i].kp.data());
      EXPECT_EQ(back.controller.gains[i].ki.data(),
                bm.controller.gains[i].ki.data());
      ASSERT_EQ(back.controller.regions[i].size(),
                bm.controller.regions[i].size());
      for (std::size_t g = 0; g < bm.controller.regions[i].size(); ++g) {
        EXPECT_EQ(back.controller.regions[i][g].g,
                  bm.controller.regions[i][g].g);
        EXPECT_EQ(back.controller.regions[i][g].h,
                  bm.controller.regions[i][g].h);
        EXPECT_EQ(back.controller.regions[i][g].strict,
                  bm.controller.regions[i][g].strict);
      }
    }
    EXPECT_EQ(back.references, bm.references);
    // The round-tripped case yields an identical closed loop.
    PwaSystem a = close_loop(bm.plant, bm.controller, bm.references);
    PwaSystem b = close_loop(back.plant, back.controller, back.references);
    EXPECT_EQ(a.mode(0).a.data(), b.mode(0).a.data());
    EXPECT_EQ(a.mode(1).b.data(), b.mode(1).b.data());
  }
}

TEST(Serialize, RejectsMalformedInput) {
  std::istringstream bad1{"not-a-case v1"};
  EXPECT_THROW(read_case(bad1), std::runtime_error);
  std::istringstream bad2{"spiv-case v2 name x size 1 integer 0"};
  EXPECT_THROW(read_case(bad2), std::runtime_error);
  std::istringstream truncated{
      "spiv-case v1\nname t size 2 integer 0\nplant 2 1 1\nA\n1 2\n"};
  EXPECT_THROW(read_case(truncated), std::runtime_error);
  std::istringstream bad_header{"plant 2 x 1\n"};
  EXPECT_THROW(read_state_space(bad_header), std::runtime_error);
}

TEST(Serialize, RejectsNonFiniteNumbers) {
  // operator>> accepts "nan"/"inf" tokens; a poisoned A matrix would make
  // every downstream synthesis/validation silently wrong.
  const auto plant_with = [](const std::string& entry) {
    return "plant 1 1 1\nA\n" + entry + "\nB\n1\nC\n1\n";
  };
  for (const std::string bad : {"nan", "inf", "-inf", "NaN", "Inf"}) {
    std::istringstream is{plant_with(bad)};
    EXPECT_THROW(
        {
          StateSpace sys = read_state_space(is);
          (void)sys;
        },
        std::runtime_error)
        << bad;
  }
  // Control: the same stream with a finite entry parses fine.
  std::istringstream ok{plant_with("-1.5")};
  EXPECT_EQ(read_state_space(ok).a(0, 0), -1.5);

  // Non-finite values are rejected everywhere, not just in matrices: here
  // in the references vector and a guard constant of a full case.
  std::string full =
      "spiv-case v1\nname t size 1 integer 0\n"
      "plant 1 1 1\nA\n-1\nB\n1\nC\n1\n"
      "controller 1\nmode\nKP\n1\nKI\n1\n"
      "guards 1\ng 1 h nan h_r 0 strict 0\n"
      "references 0\n";
  std::istringstream bad_guard{full};
  EXPECT_THROW(read_case(bad_guard), std::runtime_error);
  full.replace(full.find("nan"), 3, "0.5");
  full.replace(full.rfind("references 0"), 12, "references inf");
  std::istringstream bad_ref{full};
  EXPECT_THROW(read_case(bad_ref), std::runtime_error);
}

}  // namespace
}  // namespace spiv::model
