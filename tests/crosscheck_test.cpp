// Cross-checks between the exact (rational) and numeric (double) layers:
// the same computation done both ways must agree to floating-point
// accuracy.  These catch sign conventions and indexing bugs that
// single-layer tests cannot see.
#include <gtest/gtest.h>

#include <random>

#include "exact/lyapunov_exact.hpp"
#include "exact/matrix.hpp"
#include "numeric/eigen.hpp"
#include "numeric/lyapunov.hpp"
#include "numeric/svd.hpp"
#include "smt/charpoly.hpp"

namespace spiv {
namespace {

using exact::RatMatrix;
using exact::Rational;
using numeric::Matrix;

/// A rational matrix with small integer entries and its double twin.
std::pair<RatMatrix, Matrix> random_pair(std::mt19937_64& rng, std::size_t n,
                                         std::size_t m) {
  std::uniform_int_distribution<std::int64_t> num{-8, 8};
  std::uniform_int_distribution<std::int64_t> den{1, 4};
  RatMatrix r{n, m};
  Matrix d{n, m};
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < m; ++j) {
      Rational q{num(rng), den(rng)};
      r(i, j) = q;
      d(i, j) = q.to_double();
    }
  return {std::move(r), std::move(d)};
}

class CrossCheck : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CrossCheck, DeterminantsAgree) {
  std::mt19937_64 rng{GetParam()};
  for (int iter = 0; iter < 10; ++iter) {
    const std::size_t n = 2 + iter % 6;
    auto [r, d] = random_pair(rng, n, n);
    EXPECT_NEAR(r.determinant().to_double(), d.determinant(),
                1e-8 * (1.0 + std::abs(d.determinant())));
  }
}

TEST_P(CrossCheck, SolvesAgree) {
  std::mt19937_64 rng{GetParam() + 1};
  for (int iter = 0; iter < 10; ++iter) {
    const std::size_t n = 2 + iter % 6;
    auto [r, d] = random_pair(rng, n, n);
    if (r.determinant().is_zero()) continue;
    std::vector<Rational> b_exact(n);
    numeric::Vector b_num(n);
    std::uniform_int_distribution<std::int64_t> num{-5, 5};
    for (std::size_t i = 0; i < n; ++i) {
      b_exact[i] = Rational{num(rng)};
      b_num[i] = b_exact[i].to_double();
    }
    auto xe = r.solve(b_exact);
    auto xn = d.solve(b_num);
    ASSERT_TRUE(xe.has_value());
    ASSERT_TRUE(xn.has_value());
    for (std::size_t i = 0; i < n; ++i)
      EXPECT_NEAR((*xe)[i].to_double(), (*xn)[i],
                  1e-7 * (1.0 + std::abs((*xn)[i])));
  }
}

TEST_P(CrossCheck, CharPolyRootsMatchNumericEigenvalues) {
  std::mt19937_64 rng{GetParam() + 2};
  for (int iter = 0; iter < 6; ++iter) {
    const std::size_t n = 2 + iter % 4;
    auto [r, d] = random_pair(rng, n, n);
    auto coeffs = smt::characteristic_polynomial_faddeev(r);
    // p(lambda) should vanish (approximately) at every numeric eigenvalue.
    for (auto lambda : numeric::eigenvalues(d)) {
      std::complex<double> acc{0.0, 0.0};
      std::complex<double> power{1.0, 0.0};
      double scale = 0.0;
      for (std::size_t k = 0; k < coeffs.size(); ++k) {
        acc += coeffs[k].to_double() * power;
        scale += std::abs(coeffs[k].to_double()) * std::abs(power);
        power *= lambda;
      }
      EXPECT_LT(std::abs(acc), 1e-7 * (1.0 + scale));
    }
  }
}

TEST_P(CrossCheck, LyapunovSolutionsAgree) {
  std::mt19937_64 rng{GetParam() + 3};
  for (int iter = 0; iter < 5; ++iter) {
    const std::size_t n = 2 + iter % 4;
    // Diagonally dominant stable matrices keep both solvers happy.
    auto [r, d] = random_pair(rng, n, n);
    Rational shift{20};
    for (std::size_t i = 0; i < n; ++i) {
      r(i, i) -= shift;
      d(i, i) -= shift.to_double();
    }
    auto pe = exact::solve_lyapunov_exact(r, RatMatrix::identity(n));
    auto pn = numeric::solve_lyapunov(d, Matrix::identity(n));
    ASSERT_TRUE(pe.has_value());
    ASSERT_TRUE(pn.has_value());
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = 0; j < n; ++j)
        EXPECT_NEAR((*pe)(i, j).to_double(), (*pn)(i, j),
                    1e-8 * (1.0 + std::abs((*pn)(i, j))));
  }
}

TEST_P(CrossCheck, MinorsSignsMatchEigenvalueSigns) {
  // Sylvester: for symmetric M, #negative eigenvalues is determined by the
  // sign pattern of leading principal minors (when all are nonzero).
  std::mt19937_64 rng{GetParam() + 4};
  for (int iter = 0; iter < 10; ++iter) {
    const std::size_t n = 2 + iter % 5;
    auto [r0, d0] = random_pair(rng, n, n);
    RatMatrix r = r0.symmetrized();
    Matrix d = d0.symmetrized();
    auto minors = r.leading_principal_minors();
    bool any_zero = false;
    for (const auto& m : minors) any_zero |= m.is_zero();
    if (any_zero) continue;
    // Count sign agreements: PD <=> all minors positive <=> all eigs > 0.
    bool all_pos = true;
    for (const auto& m : minors) all_pos &= m.sign() > 0;
    auto eig = numeric::symmetric_eigen(d);
    const bool numerically_pd = eig.values.front() > 1e-9;
    if (std::abs(eig.values.front()) > 1e-7)  // avoid borderline flips
      EXPECT_EQ(all_pos, numerically_pd) << "iter " << iter;
  }
}

TEST_P(CrossCheck, SpectralNormMatchesSvd) {
  std::mt19937_64 rng{GetParam() + 5};
  for (int iter = 0; iter < 8; ++iter) {
    const std::size_t n = 3 + iter % 5;
    auto [r, d] = random_pair(rng, n + 1, n);
    (void)r;
    auto svd = numeric::svd_decompose(d);
    EXPECT_NEAR(numeric::spectral_norm(d), svd.singular_values.front(),
                1e-9 * (1.0 + svd.singular_values.front()));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrossCheck, ::testing::Values(100u, 200u, 300u));

}  // namespace
}  // namespace spiv
