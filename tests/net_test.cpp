// Tests for the socket transport: concurrent connections, out-of-order
// completion, admission shedding, graceful drain, batch pipelining, and
// parser robustness against hostile input.  The service::Handler hook
// substitutes deterministic canned outcomes (with scripted sleeps) for the
// real pipeline, so every scheduling property here is reproducible.
#include "net/server.hpp"

#include <gtest/gtest.h>

#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "net/client.hpp"
#include "net/socket.hpp"

namespace spiv::net {
namespace {

using namespace std::chrono_literals;

/// Canned handler: `sleep:<ms>` as the case file sleeps that long, then
/// every request answers `status=valid`.  No case files, no kernels.
service::Handler canned_handler() {
  return [](const service::Request& req, store::CertStore*, double,
            const CancelToken&) {
    if (req.case_file.rfind("sleep:", 0) == 0)
      std::this_thread::sleep_for(std::chrono::milliseconds(
          std::stoi(req.case_file.substr(6))));
    return service::Response{
        verify::Status::Valid,
        "result id=" + std::to_string(req.id) + " status=valid case=" +
            req.case_file};
  };
}

/// One verify line with a scripted handler sleep.
std::string verify_line(int sleep_ms) {
  return "verify sleep:" + std::to_string(sleep_ms) +
         " 0 eq-num - sylvester 10";
}

/// Server on a fresh unix socket, run() on a background thread.
class NetTest : public ::testing::Test {
 protected:
  void TearDown() override {
    if (thread_.joinable()) {
      server_->request_drain();
      thread_.join();
    }
    server_.reset();
    ::unlink(path_.c_str());
  }

  void start(ServerOptions options) {
    static std::atomic<int> counter{0};
    path_ = "/tmp/spiv_net_test_" + std::to_string(::getpid()) + "_" +
            std::to_string(counter.fetch_add(1)) + ".sock";
    options.unix_path = path_;
    if (!options.service.handler) options.service.handler = canned_handler();
    if (options.service.jobs == 0) options.service.jobs = 4;
    server_ = std::make_unique<Server>(std::move(options));
    server_->start();
    thread_ = std::thread([this] { run_result_ = server_->run(); });
  }

  [[nodiscard]] Client connect() {
    Client client;
    EXPECT_TRUE(client.connect_unix(path_)) << client.error();
    return client;
  }

  /// Read until `n` request-terminating lines (result/busy) arrive;
  /// returns every line seen.  Fails the test on early EOF.
  static std::vector<std::string> read_responses(Client& client,
                                                 std::size_t n) {
    std::vector<std::string> lines;
    std::size_t done = 0;
    while (done < n) {
      const auto line = client.recv_line();
      if (!line) {
        ADD_FAILURE() << "EOF after " << done << "/" << n << " responses";
        break;
      }
      lines.push_back(*line);
      if (line->rfind("result", 0) == 0 || line->rfind("busy", 0) == 0)
        ++done;
    }
    return lines;
  }

  static std::size_t count_prefix(const std::vector<std::string>& lines,
                                  const std::string& prefix) {
    std::size_t n = 0;
    for (const auto& line : lines)
      if (line.rfind(prefix, 0) == 0) ++n;
    return n;
  }

  std::string path_;
  std::unique_ptr<Server> server_;
  std::thread thread_;
  int run_result_ = -1;
};

TEST_F(NetTest, SoakManyConcurrentConnections) {
  // The acceptance bar: >= 32 concurrent connections multiplexed onto one
  // pool, every request answered, nothing dropped or blocked.
  constexpr std::size_t kConns = 32;
  constexpr std::size_t kRequests = 12;
  ServerOptions options;
  options.max_connections = kConns + 4;
  start(std::move(options));

  std::atomic<std::size_t> answered{0};
  std::vector<std::thread> clients;
  clients.reserve(kConns);
  for (std::size_t c = 0; c < kConns; ++c) {
    clients.emplace_back([this, c, &answered] {
      Client client;
      ASSERT_TRUE(client.connect_unix(path_)) << client.error();
      // Pipeline everything, then collect: stresses per-connection outbox
      // ordering under cross-connection interleaving.
      for (std::size_t i = 0; i < kRequests; ++i)
        ASSERT_TRUE(client.send_line(verify_line((c + i) % 3)));
      const auto lines = read_responses(client, kRequests);
      answered.fetch_add(count_prefix(lines, "result"));
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(answered.load(), kConns * kRequests);
}

TEST_F(NetTest, CompletionsArriveOutOfOrder) {
  start(ServerOptions{});
  Client client = connect();
  ASSERT_TRUE(client.send_line(verify_line(400)));  // id=1, slow
  ASSERT_TRUE(client.send_line(verify_line(0)));    // id=2, fast
  const auto lines = read_responses(client, 2);
  std::vector<std::string> results;
  for (const auto& line : lines)
    if (line.rfind("result", 0) == 0) results.push_back(line);
  ASSERT_EQ(results.size(), 2u);
  // The fast request overtakes the slow one: out-of-order completion with
  // per-request tags is the whole point of the id field.
  EXPECT_EQ(results[0].rfind("result id=2", 0), 0u) << results[0];
  EXPECT_EQ(results[1].rfind("result id=1", 0), 0u) << results[1];
}

TEST_F(NetTest, AdmissionControlShedsWithBusyInsteadOfBlocking) {
  ServerOptions options;
  options.service.max_inflight = 2;
  start(std::move(options));
  Client client = connect();
  // 8 requests pipelined against 2 admission slots held for 400 ms: the
  // event loop parses all lines long before a slot frees, so at least 6
  // are shed -- answered immediately with `busy`, never queued, never
  // blocking the connection.
  constexpr std::size_t kTotal = 8;
  for (std::size_t i = 0; i < kTotal; ++i)
    ASSERT_TRUE(client.send_line(verify_line(400)));
  const auto lines = read_responses(client, kTotal);
  const std::size_t busy = count_prefix(lines, "busy");
  const std::size_t results = count_prefix(lines, "result");
  EXPECT_EQ(busy + results, kTotal);
  EXPECT_GE(busy, 4u);
  EXPECT_GE(results, 2u);
  for (const auto& line : lines) {
    if (line.rfind("busy", 0) == 0)
      EXPECT_NE(line.find(" inflight="), std::string::npos) << line;
  }
}

TEST_F(NetTest, GracefulDrainDeliversEveryInflightResponse) {
  start(ServerOptions{});
  Client client = connect();
  constexpr std::size_t kInflight = 4;
  for (std::size_t i = 0; i < kInflight; ++i)
    ASSERT_TRUE(client.send_line(verify_line(300)));
  std::this_thread::sleep_for(50ms);  // let the loop admit them
  server_->request_drain();
  // Zero dropped in-flight responses: all four results arrive after the
  // drain began, then the server closes the connection and run() returns.
  const auto lines = read_responses(client, kInflight);
  EXPECT_EQ(count_prefix(lines, "result"), kInflight);
  EXPECT_FALSE(client.recv_line().has_value());  // clean EOF
  thread_.join();
  EXPECT_EQ(run_result_, 0);
  // Draining (now drained) server accepts no new connections.
  Client late;
  EXPECT_FALSE(late.connect_unix(path_));
}

TEST_F(NetTest, SigtermTriggersGracefulDrain) {
  start(ServerOptions{});
  server_->install_signal_handlers();
  Client client = connect();
  ASSERT_TRUE(client.send_line(verify_line(300)));
  std::this_thread::sleep_for(50ms);
  ::raise(SIGTERM);
  const auto lines = read_responses(client, 1);
  EXPECT_EQ(count_prefix(lines, "result"), 1u);
  EXPECT_FALSE(client.recv_line().has_value());
  thread_.join();
  EXPECT_EQ(run_result_, 0);
}

TEST_F(NetTest, QuitFromOneSessionDrainsTheWholeServer) {
  start(ServerOptions{});
  Client a = connect();
  Client b = connect();
  ASSERT_TRUE(b.send_line(verify_line(200)));
  std::this_thread::sleep_for(50ms);
  ASSERT_TRUE(a.send_line("quit"));
  // B's in-flight request still completes before the server goes down.
  const auto lines = read_responses(b, 1);
  EXPECT_EQ(count_prefix(lines, "result"), 1u);
  EXPECT_FALSE(a.recv_line().has_value());
  EXPECT_FALSE(b.recv_line().has_value());
  thread_.join();
  EXPECT_EQ(run_result_, 0);
}

TEST_F(NetTest, WaitPausesOnlyThatConnection) {
  start(ServerOptions{});
  Client slow = connect();
  Client fast = connect();
  ASSERT_TRUE(slow.send_line(verify_line(500)));
  ASSERT_TRUE(slow.send_line("wait"));
  std::this_thread::sleep_for(50ms);
  // While `slow` is parked on its barrier, other connections keep flowing.
  const auto t0 = std::chrono::steady_clock::now();
  ASSERT_TRUE(fast.send_line(verify_line(0)));
  const auto fast_lines = read_responses(fast, 1);
  const auto fast_elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_EQ(count_prefix(fast_lines, "result"), 1u);
  EXPECT_LT(fast_elapsed, 400ms) << "fast connection stalled behind `wait`";
  // The barrier releases with `idle` once the slow request lands.
  const auto slow_lines = read_responses(slow, 1);
  EXPECT_EQ(count_prefix(slow_lines, "result"), 1u);
  const auto idle = slow.recv_line();
  ASSERT_TRUE(idle.has_value());
  EXPECT_EQ(*idle, "idle");
}

TEST_F(NetTest, ConnectionCapShedsWithBusyLine) {
  ServerOptions options;
  options.max_connections = 1;
  start(std::move(options));
  Client first = connect();
  ASSERT_TRUE(first.send_line(verify_line(0)));
  (void)read_responses(first, 1);  // connection definitely registered
  Client second;
  ASSERT_TRUE(second.connect_unix(path_)) << second.error();
  const auto line = second.recv_line();
  ASSERT_TRUE(line.has_value());
  EXPECT_EQ(line->rfind("busy connections=", 0), 0u) << *line;
  EXPECT_FALSE(second.recv_line().has_value());  // then closed
}

TEST_F(NetTest, BatchVerifyAnswersEveryMemberAndSummarizes) {
  start(ServerOptions{});
  Client client = connect();
  ASSERT_TRUE(client.send_line("batch-verify 3"));
  ASSERT_TRUE(client.send_line("sleep:0 0 eq-num - sylvester 10"));
  ASSERT_TRUE(client.send_line("this is not a verify argument tail"));
  ASSERT_TRUE(client.send_line("sleep:50 0 eq-num - sylvester 10"));
  std::vector<std::string> lines;
  for (;;) {
    const auto line = client.recv_line();
    ASSERT_TRUE(line.has_value()) << "EOF before batch-done";
    lines.push_back(*line);
    if (line->rfind("batch-done", 0) == 0) break;
  }
  EXPECT_EQ(count_prefix(lines, "queued ids=1-3 batch=3"), 1u);
  EXPECT_EQ(count_prefix(lines, "result"), 3u);
  EXPECT_EQ(lines.back(), "batch-done ids=1-3 ok=2 failed=1 shed=0");
}

TEST_F(NetTest, TruncatedBatchStillReportsArrivedMembers) {
  start(ServerOptions{});
  Client client = connect();
  ASSERT_TRUE(client.send_line("batch-verify 3"));
  ASSERT_TRUE(client.send_line("sleep:0 0 eq-num - sylvester 10"));
  client.shutdown_write();  // EOF with 2 members never sent
  std::vector<std::string> lines;
  while (const auto line = client.recv_line()) lines.push_back(*line);
  EXPECT_EQ(count_prefix(lines, "error batch truncated (2 member"), 1u);
  EXPECT_EQ(count_prefix(lines, "result id=1"), 1u);
  EXPECT_EQ(count_prefix(lines, "batch-done ids=1-3 ok=1 failed=0 shed=0"),
            1u);
}

TEST_F(NetTest, DeadlineCapAcknowledgedAndCarriedIntoRequests) {
  // The cap's effect on the budget is covered by the service-layer tests;
  // here the protocol round trip: ack, and `off` resets.
  start(ServerOptions{});
  Client client = connect();
  ASSERT_TRUE(client.send_line("deadline 2.5"));
  auto line = client.recv_line();
  ASSERT_TRUE(line.has_value());
  EXPECT_EQ(*line, "ok deadline=2.5");
  ASSERT_TRUE(client.send_line("deadline off"));
  line = client.recv_line();
  ASSERT_TRUE(line.has_value());
  EXPECT_EQ(*line, "ok deadline=off");
  ASSERT_TRUE(client.send_line("deadline banana"));
  line = client.recv_line();
  ASSERT_TRUE(line.has_value());
  EXPECT_EQ(line->rfind("error deadline", 0), 0u) << *line;
}

TEST_F(NetTest, BinaryGarbageGetsErrorLinesWithoutKillingTheServer) {
  start(ServerOptions{});
  Client client = connect();
  // Binary garbage with embedded newlines: each chunk parses as an unknown
  // command and earns an error line; the connection survives.
  ASSERT_TRUE(client.send_line(std::string{"\x01\x02\xfe\xff garbage"}));
  ASSERT_TRUE(client.send_line(std::string{"\x00\x7f more", 9}));
  ASSERT_TRUE(client.send_line(verify_line(0)));
  const auto lines = read_responses(client, 1);
  EXPECT_GE(count_prefix(lines, "error unknown command"), 2u);
  EXPECT_EQ(count_prefix(lines, "result"), 1u);
  // And a second connection still works fine afterwards.
  Client other = connect();
  ASSERT_TRUE(other.send_line(verify_line(0)));
  EXPECT_EQ(count_prefix(read_responses(other, 1), "result"), 1u);
}

TEST_F(NetTest, OversizedLineIsRejectedAndInputClosed) {
  ServerOptions options;
  options.max_line_bytes = 1024;
  start(std::move(options));
  Client client = connect();
  ASSERT_TRUE(client.send_line(std::string(4096, 'A')));
  const auto line = client.recv_line();
  ASSERT_TRUE(line.has_value());
  EXPECT_EQ(line->rfind("error line too long (limit 1024", 0), 0u) << *line;
  EXPECT_FALSE(client.recv_line().has_value());  // input side closed
}

TEST_F(NetTest, PartialLinesAcrossWritesReassemble) {
  start(ServerOptions{});
  Client client = connect();
  // One complete line plus a partial one in the first write; the rest of
  // the partial line lands 30 ms later.  The server's buffer must
  // reassemble it into one request.
  ASSERT_TRUE(client.send_raw(verify_line(0) + "\nverify sleep:0 0 eq-"));
  std::this_thread::sleep_for(30ms);
  ASSERT_TRUE(client.send_raw("num - sylvester 10\n"));
  const auto lines = read_responses(client, 2);
  EXPECT_EQ(count_prefix(lines, "result"), 2u);
}

TEST_F(NetTest, TcpRoundTripOnEphemeralPort) {
  static std::atomic<int> counter{0};
  ServerOptions options;
  options.unix_path = "/tmp/spiv_net_tcp_" + std::to_string(::getpid()) +
                      "_" + std::to_string(counter.fetch_add(1)) + ".sock";
  options.tcp_host = "127.0.0.1";
  options.tcp_port = 0;  // ephemeral
  options.service.handler = canned_handler();
  options.service.jobs = 2;
  Server server{std::move(options)};
  server.start();
  ASSERT_GT(server.tcp_port(), 0);
  std::thread thread{[&server] { (void)server.run(); }};
  Client client;
  ASSERT_TRUE(client.connect_tcp("127.0.0.1", server.tcp_port()))
      << client.error();
  ASSERT_TRUE(client.send_line(verify_line(0)));
  const auto lines = read_responses(client, 1);
  EXPECT_EQ(count_prefix(lines, "result"), 1u);
  server.request_drain();
  thread.join();
}

TEST(NetServerTest, StartWithoutListenersThrows) {
  ServerOptions options;  // neither unix path nor tcp port
  Server server{std::move(options)};
  EXPECT_THROW(server.start(), std::runtime_error);
}

TEST(NetSocketTest, ParsesTcpAddresses) {
  const auto bare = parse_tcp_address("7199");
  ASSERT_TRUE(bare.has_value());
  EXPECT_EQ(bare->host, "127.0.0.1");
  EXPECT_EQ(bare->port, 7199);
  const auto full = parse_tcp_address("0.0.0.0:80");
  ASSERT_TRUE(full.has_value());
  EXPECT_EQ(full->host, "0.0.0.0");
  EXPECT_EQ(full->port, 80);
  EXPECT_FALSE(parse_tcp_address("").has_value());
  EXPECT_FALSE(parse_tcp_address(":80").has_value());
  EXPECT_FALSE(parse_tcp_address("host:").has_value());
  EXPECT_FALSE(parse_tcp_address("host:99999").has_value());
  EXPECT_FALSE(parse_tcp_address("host:12x").has_value());
}

}  // namespace
}  // namespace spiv::net
