// Tests for spiv::numeric dense matrices, QR, Cholesky, symmetric eigen.
#include "numeric/matrix.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

namespace spiv::numeric {
namespace {

Matrix random_matrix(std::mt19937_64& rng, std::size_t n, std::size_t m) {
  std::normal_distribution<double> d{0.0, 1.0};
  Matrix out{n, m};
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < m; ++j) out(i, j) = d(rng);
  return out;
}

void expect_near_matrix(const Matrix& a, const Matrix& b, double tol) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < a.cols(); ++j)
      EXPECT_NEAR(a(i, j), b(i, j), tol) << "(" << i << "," << j << ")";
}

TEST(NumericMatrix, BasicOps) {
  Matrix a{{1, 2}, {3, 4}};
  Matrix b{{0, 1}, {1, 0}};
  expect_near_matrix(a * b, Matrix{{2, 1}, {4, 3}}, 0);
  expect_near_matrix(a + b, Matrix{{1, 3}, {4, 4}}, 0);
  expect_near_matrix(a - b, Matrix{{1, 1}, {2, 4}}, 0);
  expect_near_matrix(a * 2.0, Matrix{{2, 4}, {6, 8}}, 0);
  expect_near_matrix(-a, Matrix{{-1, -2}, {-3, -4}}, 0);
  expect_near_matrix(a.transposed(), Matrix{{1, 3}, {2, 4}}, 0);
  EXPECT_THROW(a * Matrix(3, 3), std::invalid_argument);
}

TEST(NumericMatrix, ApplyAndQuadForm) {
  Matrix a{{2, 1}, {1, 3}};
  Vector x{1, -1};
  Vector y = a.apply(x);
  EXPECT_DOUBLE_EQ(y[0], 1.0);
  EXPECT_DOUBLE_EQ(y[1], -2.0);
  EXPECT_DOUBLE_EQ(a.quad_form(x), 3.0);
  Vector xt = a.apply_transposed(x);
  EXPECT_DOUBLE_EQ(xt[0], 1.0);
  EXPECT_DOUBLE_EQ(xt[1], -2.0);
}

TEST(NumericMatrix, BlocksAndNorms) {
  Matrix a{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}};
  Matrix blk = a.block(1, 1, 2, 2);
  expect_near_matrix(blk, Matrix{{5, 6}, {8, 9}}, 0);
  Matrix z{3, 3};
  z.set_block(0, 1, Matrix{{1, 1}, {1, 1}});
  EXPECT_DOUBLE_EQ(z(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(z(1, 2), 1.0);
  EXPECT_DOUBLE_EQ(z(2, 2), 0.0);
  EXPECT_THROW(a.block(2, 2, 2, 2), std::out_of_range);
  EXPECT_DOUBLE_EQ(Matrix::identity(4).frobenius_norm(), 2.0);
  EXPECT_DOUBLE_EQ(a.max_abs(), 9.0);
}

TEST(NumericMatrix, SolveInverseDeterminant) {
  Matrix a{{2, 1}, {1, 3}};
  auto x = a.solve(Vector{5, 10});
  ASSERT_TRUE(x.has_value());
  EXPECT_NEAR((*x)[0], 1.0, 1e-14);
  EXPECT_NEAR((*x)[1], 3.0, 1e-14);
  EXPECT_NEAR(a.determinant(), 5.0, 1e-14);
  auto inv = a.inverse();
  ASSERT_TRUE(inv.has_value());
  expect_near_matrix(a * *inv, Matrix::identity(2), 1e-14);
  Matrix singular{{1, 2}, {2, 4}};
  EXPECT_FALSE(singular.inverse().has_value());
  EXPECT_DOUBLE_EQ(singular.determinant(), 0.0);
}

TEST(NumericMatrix, SolveRandomRoundTrip) {
  std::mt19937_64 rng{1};
  for (int iter = 0; iter < 20; ++iter) {
    Matrix a = random_matrix(rng, 8, 8);
    Matrix x_true = random_matrix(rng, 8, 3);
    Matrix b = a * x_true;
    auto x = a.solve(b);
    ASSERT_TRUE(x.has_value());
    expect_near_matrix(*x, x_true, 1e-9);
  }
}

TEST(NumericMatrix, CholeskyPdAndFailure) {
  Matrix pd{{4, 2, 0}, {2, 5, 3}, {0, 3, 6}};
  auto l = pd.cholesky();
  ASSERT_TRUE(l.has_value());
  expect_near_matrix(*l * l->transposed(), pd, 1e-12);
  Matrix indef{{1, 3}, {3, 1}};
  EXPECT_FALSE(indef.cholesky().has_value());
  Matrix psd{{1, 1}, {1, 1}};  // singular PSD -> fails strict PD test
  EXPECT_FALSE(psd.cholesky().has_value());
}

TEST(NumericQr, ReconstructionAndOrthogonality) {
  std::mt19937_64 rng{3};
  for (auto [m, n] : {std::pair<std::size_t, std::size_t>{6, 6}, {8, 4}}) {
    Matrix a = random_matrix(rng, m, n);
    Qr f = qr_decompose(a);
    expect_near_matrix(f.q * f.r, a, 1e-12);
    expect_near_matrix(f.q * f.q.transposed(), Matrix::identity(m), 1e-12);
    // R upper trapezoidal.
    for (std::size_t i = 1; i < m; ++i)
      for (std::size_t j = 0; j < std::min<std::size_t>(i, n); ++j)
        EXPECT_EQ(f.r(i, j), 0.0);
  }
}

TEST(NumericSymmetricEigen, DiagonalizesKnownMatrix) {
  Matrix a{{2, 1}, {1, 2}};
  auto e = symmetric_eigen(a);
  ASSERT_EQ(e.values.size(), 2u);
  EXPECT_NEAR(e.values[0], 1.0, 1e-12);
  EXPECT_NEAR(e.values[1], 3.0, 1e-12);
  // A V = V diag(w)
  Matrix av = a * e.vectors;
  Matrix vd = e.vectors * Matrix::diagonal(e.values);
  expect_near_matrix(av, vd, 1e-12);
}

TEST(NumericSymmetricEigen, RandomPropertyChecks) {
  std::mt19937_64 rng{7};
  for (int iter = 0; iter < 10; ++iter) {
    const std::size_t n = 3 + iter;
    Matrix a = random_matrix(rng, n, n).symmetrized();
    auto e = symmetric_eigen(a);
    // Ascending order.
    for (std::size_t i = 1; i < n; ++i) EXPECT_LE(e.values[i - 1], e.values[i]);
    // Orthogonality and reconstruction.
    expect_near_matrix(e.vectors * e.vectors.transposed(),
                       Matrix::identity(n), 1e-10);
    Matrix rec = e.vectors * Matrix::diagonal(e.values) * e.vectors.transposed();
    expect_near_matrix(rec, a, 1e-10);
    // Trace preserved.
    double trace = 0.0, sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      trace += a(i, i);
      sum += e.values[i];
    }
    EXPECT_NEAR(trace, sum, 1e-10);
  }
}

TEST(NumericSpectralNorm, MatchesKnownValues) {
  EXPECT_NEAR(spectral_norm(Matrix::identity(5)), 1.0, 1e-12);
  Matrix diag = Matrix::diagonal(Vector{3, -7, 2});
  EXPECT_NEAR(spectral_norm(diag), 7.0, 1e-12);
  // Rank-1: norm = |u||v|.
  Matrix rank1{{2, 4}, {1, 2}};
  EXPECT_NEAR(spectral_norm(rank1), 5.0, 1e-10);
}

TEST(NumericVectors, Helpers) {
  Vector a{1, 2, 3}, b{4, 5, 6};
  EXPECT_DOUBLE_EQ(dot(a, b), 32.0);
  EXPECT_DOUBLE_EQ(norm2(Vector{3, 4}), 5.0);
  Vector s = a + b;
  EXPECT_DOUBLE_EQ(s[2], 9.0);
  Vector d = b - a;
  EXPECT_DOUBLE_EQ(d[0], 3.0);
  Vector sc = 2.0 * a;
  EXPECT_DOUBLE_EQ(sc[1], 4.0);
  EXPECT_THROW(dot(a, Vector{1}), std::invalid_argument);
}

}  // namespace
}  // namespace spiv::numeric
