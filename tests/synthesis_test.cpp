// Tests for the six Lyapunov synthesis methods (paper §VI-B1).
#include "lyapunov/synthesis.hpp"

#include <gtest/gtest.h>

#include "exact/lyapunov_exact.hpp"
#include "model/engine.hpp"
#include "model/reduction.hpp"
#include "numeric/eigen.hpp"
#include "smt/validate.hpp"

namespace spiv::lyap {
namespace {

using numeric::Matrix;
using numeric::Vector;

const std::vector<Method> kAllMethods = {Method::EqSmt,    Method::EqNum,
                                         Method::Modal,    Method::Lmi,
                                         Method::LmiAlpha, Method::LmiAlphaPlus};

TEST(Synthesis, AllMethodsProduceValidCandidatesOnSmallSystem) {
  Matrix a{{-2, 1, 0}, {0, -3, 1}, {-1, 0, -4}};
  for (Method m : kAllMethods) {
    SynthesisOptions options;
    options.alpha = 1.0;
    auto c = synthesize(a, m, options);
    ASSERT_TRUE(c.has_value()) << to_string(m);
    EXPECT_EQ(c->method, m);
    EXPECT_GE(c->synth_seconds, 0.0);
    auto v = smt::validate_lyapunov(a, c->p, smt::Engine::Sylvester, 10);
    EXPECT_TRUE(v.valid()) << to_string(m);
    EXPECT_EQ(c->exact_p.has_value(), m == Method::EqSmt);
  }
}

TEST(Synthesis, EqSmtSolutionIsExact) {
  Matrix a{{-1, 0}, {0, -2}};
  auto c = synthesize(a, Method::EqSmt);
  ASSERT_TRUE(c.has_value());
  ASSERT_TRUE(c->exact_p.has_value());
  // A^T P + P A + I = 0 exactly.
  auto a_exact = exact::rat_matrix_from_doubles(a.data().data(), 2, 2, 0);
  auto residual = exact::lyapunov_residual(a_exact, *c->exact_p,
                                           exact::RatMatrix::identity(2));
  EXPECT_EQ(residual, exact::RatMatrix(2, 2));
}

TEST(Synthesis, EqSmtHonorsDeadline) {
  // An 18-state closed-loop-sized exact solve under an expired deadline.
  model::StateSpace engine = model::make_engine_model();
  auto mode = model::close_loop_single_mode(engine, model::engine_gains_mode0());
  SynthesisOptions options;
  options.deadline = Deadline::after_seconds(-1.0);
  EXPECT_THROW(synthesize(mode.a, Method::EqSmt, options), TimeoutError);
}

TEST(Synthesis, MethodsFailGracefullyOnUnstableSystems) {
  Matrix a{{1, 0}, {0, -1}};  // eigenvalues {1, -1}: Lyapunov op singular
  EXPECT_FALSE(synthesize(a, Method::EqSmt).has_value());
  EXPECT_FALSE(synthesize(a, Method::EqNum).has_value());
  // LMI methods must not return a feasible candidate.
  for (Method m : {Method::Lmi, Method::LmiAlpha}) {
    SynthesisOptions options;
    options.alpha = 0.1;
    auto c = synthesize(a, m, options);
    if (c.has_value()) {
      auto v = smt::validate_lyapunov(a, c->p, smt::Engine::Sylvester, 10);
      EXPECT_FALSE(v.valid()) << to_string(m);
    }
  }
}

TEST(Synthesis, LmiAlphaCandidateHasDecayRate) {
  Matrix a{{-3, 1}, {0, -2}};
  SynthesisOptions options;
  options.alpha = 1.0;
  auto c = synthesize(a, Method::LmiAlpha, options);
  ASSERT_TRUE(c.has_value());
  Matrix m = a.transposed() * c->p + c->p * a + options.alpha * c->p;
  EXPECT_LT(numeric::symmetric_eigen(m).values.back(), 0.0);
}

TEST(Synthesis, LmiAlphaPlusRespectsEigenvalueFloor) {
  Matrix a{{-3, 1}, {0, -2}};
  SynthesisOptions options;
  options.alpha = 0.5;
  options.nu = 0.01;
  auto c = synthesize(a, Method::LmiAlphaPlus, options);
  ASSERT_TRUE(c.has_value());
  EXPECT_GT(numeric::symmetric_eigen(c->p).values.front(), options.nu);
}

TEST(Synthesis, AllNumericMethodsHandleEngineClosedLoopMode) {
  // Full 21-dimensional closed-loop mode of the engine case study.
  model::StateSpace engine = model::make_engine_model();
  auto mode = model::close_loop_single_mode(engine, model::engine_gains_mode0());
  for (Method m : {Method::EqNum, Method::Modal, Method::Lmi}) {
    auto c = synthesize(mode.a, m);
    ASSERT_TRUE(c.has_value()) << to_string(m);
    // Candidate is numerically PD with negative Lie derivative.
    EXPECT_TRUE(c->p.cholesky().has_value()) << to_string(m);
    Matrix lie = mode.a.transposed() * c->p + c->p * mode.a;
    EXPECT_LT(numeric::symmetric_eigen(lie).values.back(), 0.0) << to_string(m);
  }
}

TEST(Synthesis, MethodNamesRoundTrip) {
  EXPECT_EQ(to_string(Method::EqSmt), "eq-smt");
  EXPECT_EQ(to_string(Method::LmiAlphaPlus), "LMIa+");
  EXPECT_TRUE(is_lmi_method(Method::Lmi));
  EXPECT_TRUE(is_lmi_method(Method::LmiAlphaPlus));
  EXPECT_FALSE(is_lmi_method(Method::Modal));
}

}  // namespace
}  // namespace spiv::lyap
