// Tests for result formatting and CSV generation (core/format).
#include "core/format.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace spiv::core {
namespace {

Table1Result small_table1() {
  Table1Result r;
  r.strategies = {Strategy{lyap::Method::EqSmt, std::nullopt},
                  Strategy{lyap::Method::Lmi,
                           sdp::Backend::NewtonAnalyticCenter}};
  r.cells.resize(2);
  Table1Cell ok;
  ok.cases = 4;
  ok.synthesized = 4;
  ok.valid = 4;
  ok.total_synth_seconds = 2.0;
  Table1Cell to;
  to.cases = 2;
  to.timeouts = 2;
  r.cells[0][3] = ok;
  r.cells[0][15] = to;
  r.cells[1][3] = ok;
  return r;
}

TEST(Format, Table1ShowsTimeoutsAndRatios) {
  const std::string table = format_table1(small_table1());
  EXPECT_NE(table.find("TO"), std::string::npos);
  EXPECT_NE(table.find("4/4"), std::string::npos);
  EXPECT_NE(table.find("0/2"), std::string::npos);
  EXPECT_NE(table.find("0.50"), std::string::npos);  // 2.0 / 4 avg seconds
  // Strategy without a cell at a size prints dashes.
  EXPECT_NE(table.find("-"), std::string::npos);
}

TEST(Format, Table1CsvIsWellFormed) {
  const std::string csv = table1_csv(small_table1());
  // Header + 3 cells.
  int lines = 0;
  for (char c : csv) lines += c == '\n';
  EXPECT_EQ(lines, 4);
  EXPECT_EQ(csv.find("method,solver,size"), 0u);
  EXPECT_NE(csv.find("eq-smt,,15,TO,0,2,2"), std::string::npos);
}

TEST(Format, AvgSynthSecondsExcludesTimeouts) {
  // total_synth_seconds accumulates only over synthesized cases, so the
  // average divides by `synthesized`, never by `cases`: a cell with 2
  // successes (3 s of solver time) and 2 timeouts averages 1.5 s, not 0.75.
  Table1Cell cell;
  cell.cases = 4;
  cell.synthesized = 2;
  cell.timeouts = 2;
  cell.total_synth_seconds = 3.0;
  EXPECT_DOUBLE_EQ(cell.avg_synth_seconds(), 1.5);
  // An all-timeout cell has no synthesis times at all: 0.0, not a 0/0.
  Table1Cell all_to;
  all_to.cases = 2;
  all_to.timeouts = 2;
  EXPECT_DOUBLE_EQ(all_to.avg_synth_seconds(), 0.0);
}

TEST(Format, Table1DistinguishesTimeoutFromFailure) {
  Table1Result r;
  r.strategies = {Strategy{lyap::Method::EqSmt, std::nullopt}};
  r.cells.resize(1);
  Table1Cell failed;  // solver gave up without timing out
  failed.cases = 2;
  r.cells[0][5] = failed;
  Table1Cell empty;  // zero cases: must not appear in the CSV at all
  r.cells[0][18] = empty;
  const std::string table = format_table1(r);
  EXPECT_EQ(table.find("TO"), std::string::npos);
  const std::string csv = table1_csv(r);
  EXPECT_NE(csv.find("eq-smt,,5,-,0,2,0"), std::string::npos);
  EXPECT_EQ(csv.find(",18,"), std::string::npos);
}

TEST(Format, Table1BenchJsonWellFormed) {
  const std::string json = table1_bench_json(small_table1(), 12.5, 4);
  EXPECT_NE(json.find("\"experiment\": \"table1\""), std::string::npos);
  EXPECT_NE(json.find("\"jobs\": 4"), std::string::npos);
  EXPECT_NE(json.find("\"wall_seconds\": 12.5"), std::string::npos);
  EXPECT_NE(json.find("\"method\": \"eq-smt\""), std::string::npos);
  EXPECT_NE(json.find("\"size\": 15"), std::string::npos);
  EXPECT_NE(json.find("\"timeouts\": 2"), std::string::npos);
  // Three populated cells -> three objects.
  std::size_t count = 0, pos = 0;
  while ((pos = json.find("\"avg_synth_seconds\"", pos)) != std::string::npos) {
    ++count;
    ++pos;
  }
  EXPECT_EQ(count, 3u);
}

TEST(Format, Figure3CactusCountsMonotone) {
  Figure3Result r;
  r.engines = {{smt::Engine::Sylvester, false}, {smt::Engine::SmtZ3Style, true}};
  // Engine 0: solved at 0.05s and 0.2s; engine 1: one timeout, one 2s.
  r.samples = {{0, 0, smt::Outcome::Valid, 0.05},
               {1, 0, smt::Outcome::Valid, 0.2},
               {0, 1, smt::Outcome::Timeout, 30.0},
               {1, 1, smt::Outcome::Invalid, 2.0}};
  const std::string table = format_figure3(r);
  EXPECT_NE(table.find("sylvester"), std::string::npos);
  EXPECT_NE(table.find("smt-z3+det"), std::string::npos);
  const std::string csv = figure3_csv(r);
  EXPECT_NE(csv.find("timeout"), std::string::npos);
  EXPECT_NE(csv.find("invalid"), std::string::npos);
}

TEST(Format, Table2HighlightsMaxima) {
  Table2Result r;
  Table2Entry a;
  a.model_name = "size15";
  a.size = 15;
  a.mode = 0;
  a.strategy = {lyap::Method::EqNum, std::nullopt};
  a.synthesized = true;
  a.certified = true;
  a.optimal = true;
  a.seconds = 1.5;
  a.volume = 100.0;
  a.epsilon = 1e-5;
  Table2Entry b = a;
  b.strategy = {lyap::Method::Lmi, sdp::Backend::FastInteriorPoint};
  b.volume = 5.0;
  b.epsilon = 3e-4;
  r.entries = {a, b};
  const std::string table = format_table2(r);
  // The volume max (a) and the eps max (b) each get the star.
  EXPECT_NE(table.find("1e+02*"), std::string::npos);
  EXPECT_NE(table.find("3e-04*"), std::string::npos);
  const std::string csv = table2_csv(r);
  EXPECT_NE(csv.find("eq-num"), std::string::npos);
}

TEST(Format, RoundingTotalsAddUp) {
  RoundingResult r;
  r.digit_levels = {10, 6, 4};
  r.counts["eq-num"] = {{4, 0, 0}, {3, 1, 0}, {1, 3, 0}};
  r.counts["LMIa/newton-ac"] = {{4, 0, 0}, {4, 0, 0}, {4, 0, 0}};
  const std::string table = format_rounding(r);
  EXPECT_NE(table.find("4v/0i"), std::string::npos);
  EXPECT_NE(table.find("1v/3i"), std::string::npos);
  // Totals row: invalid sums 0 / 1 / 3.
  EXPECT_NE(table.find("TOTAL invalid"), std::string::npos);
}

TEST(Format, WriteFileRoundTrip) {
  const std::string path = "/tmp/spiv_format_test.txt";
  ASSERT_TRUE(write_file(path, "hello\n"));
  std::ifstream in{path};
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(content, "hello\n");
  std::remove(path.c_str());
  EXPECT_FALSE(write_file("/nonexistent-dir/x/y", "z"));
}

}  // namespace
}  // namespace spiv::core
