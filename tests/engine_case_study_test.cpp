// Deep checks of the engine case study against the paper's §V semantics.
#include <gtest/gtest.h>

#include <cmath>

#include "model/engine.hpp"
#include "model/reduction.hpp"
#include "numeric/eigen.hpp"
#include "sim/integrator.hpp"

namespace spiv::model {
namespace {

using numeric::Matrix;
using numeric::Vector;

TEST(EngineCaseStudy, SwitchingLawMatchesPaperDefinition) {
  // Paper §V-B: i = 0 if r0 - y0 < Theta, else 1.
  StateSpace plant = make_engine_model();
  SwitchedPiController ctrl = make_engine_controller();
  Vector r = make_engine_references(plant);
  PwaSystem sys = close_loop(plant, ctrl, r);

  // Drive y0 via the N1 sensor state (C row 0 reads state 12 with gain 1).
  auto w_with_y0 = [&](double y0) {
    Vector w(sys.dim(), 0.0);
    w[12] = y0;
    return w;
  };
  for (double y0 : {-10.0, 0.0, r[0] - 2.0, r[0] - 1.0001}) {
    EXPECT_EQ(sys.mode_of(w_with_y0(y0)), 1u)
        << "r0 - y0 = " << r[0] - y0 << " >= Theta must select mode 1";
  }
  for (double y0 : {r[0] - 0.9999, r[0], r[0] + 5.0}) {
    EXPECT_EQ(sys.mode_of(w_with_y0(y0)), 0u)
        << "r0 - y0 = " << r[0] - y0 << " < Theta must select mode 0";
  }
  // Boundary r0 - y0 == Theta belongs to mode 1 (non-strict guard).
  EXPECT_EQ(sys.mode_of(w_with_y0(r[0] - kEngineTheta)), 1u);
}

TEST(EngineCaseStudy, FlowIsContinuousAcrossTheSwitchingSurface) {
  // The paper's switching is continuous: w does not jump, only wdot does;
  // moreover the u1, u2 components of the flow agree across the surface
  // (those controller rows are identical in both modes).
  StateSpace plant = make_engine_model();
  SwitchedPiController ctrl = make_engine_controller();
  Vector r = make_engine_references(plant);
  PwaSystem sys = close_loop(plant, ctrl, r);
  // A state exactly on the surface: y0 = r0 - Theta.
  Vector w(sys.dim(), 0.5);
  w[12] = r[0] - kEngineTheta;
  Vector f0 = sys.mode(0).a.apply(w);
  Vector f1 = sys.mode(1).a.apply(w);
  const Vector d0 = sys.mode(0).drift(r);
  const Vector d1 = sys.mode(1).drift(r);
  for (std::size_t i = 0; i < sys.dim(); ++i) {
    f0[i] += d0[i];
    f1[i] += d1[i];
  }
  // Plant rows (first 18) agree identically: same A, B.
  for (std::size_t i = 0; i < 18; ++i) EXPECT_NEAR(f0[i], f1[i], 1e-12);
  // u1 (nozzle) and u2 (IGV) controller rows agree (same gains).
  EXPECT_NEAR(f0[19], f1[19], 1e-9);
  EXPECT_NEAR(f0[20], f1[20], 1e-9);
  // The fuel row (u0) genuinely switches.
  EXPECT_GT(std::abs(f0[18] - f1[18]), 1e-6);
}

TEST(EngineCaseStudy, PairedChannelsHavePositiveDcGainsAndInteraction) {
  // The loop pairing of §V-B requires positive diagonal channel gains and
  // a positive Niederlinski-style interaction determinant in both modes.
  StateSpace plant = make_engine_model();
  Matrix g = plant.dc_gain();  // 4 outputs x 3 inputs
  EXPECT_GT(g(0, 0), 0.0);  // fuel -> LPC speed   (mode 0 pairing)
  EXPECT_GT(g(1, 0), 0.0);  // fuel -> HPC PR      (mode 1 pairing)
  EXPECT_GT(g(2, 1), 0.0);  // nozzle -> Mach exit
  EXPECT_GT(g(3, 2), 0.0);  // IGV -> N2 speed
  // Mode-0 3x3 pairing determinant (y0, y2, y3) x (u0, u1, u2).
  auto det3 = [&](int r0, int r1, int r2) {
    Matrix m{{g(r0, 0), g(r0, 1), g(r0, 2)},
             {g(r1, 0), g(r1, 1), g(r1, 2)},
             {g(r2, 0), g(r2, 1), g(r2, 2)}};
    return m.determinant();
  };
  EXPECT_GT(det3(0, 2, 3), 0.0);
  EXPECT_GT(det3(1, 2, 3), 0.0);
}

TEST(EngineCaseStudy, Mode1LimitsLpcSpoolSpeed) {
  // The purpose of the switching logic: when the LPC spool speed demand
  // exceeds the limit, mode 1 holds y0 *below* r0 - Theta + margin.
  StateSpace plant = balanced_truncation(make_engine_model(), 5).sys;
  SwitchedPiController ctrl = make_engine_controller();
  Vector r = make_engine_references(plant);
  PwaSystem sys = close_loop(plant, ctrl, r);
  sim::SimOptions options;
  options.t_end = 120.0;
  options.convergence_radius = 1e-8;
  sim::Trajectory traj = sim::simulate(sys, r, Vector(sys.dim(), 0.0), options);
  // Settled in mode 1, with y0 at most r0 - Theta.
  EXPECT_EQ(traj.back().mode, 1u);
  Vector x(traj.back().w.begin(), traj.back().w.begin() + 5);
  Vector y = plant.c.apply(x);
  EXPECT_LE(y[0], r[0] - kEngineTheta + 1e-6);
  // And the mode-1 integrators drove their channels to the references.
  EXPECT_NEAR(y[1], r[1], 1e-4);
  EXPECT_NEAR(y[2], r[2], 1e-4);
  EXPECT_NEAR(y[3], r[3], 1e-4);
}

TEST(EngineCaseStudy, ReferencesScaleWithTheta) {
  StateSpace plant = make_engine_model();
  Vector r1 = make_engine_references(plant, 1.0);
  Vector r2 = make_engine_references(plant, 2.0);
  // r0 = y0_eq1 + 2*Theta and y0_eq1 is Theta-independent.
  EXPECT_NEAR(r2[0] - r1[0], 2.0, 1e-9);
  EXPECT_EQ(r1[1], r2[1]);
}

TEST(EngineCaseStudy, HankelSpectrumSupportsPaperReductionSizes) {
  // The paper reduces to 3/5/10/15: the Hankel spectrum of the engine must
  // decay enough that those orders are meaningful (tail << head).
  auto red = balanced_truncation(make_engine_model(), 3);
  const auto& h = red.hankel_singular_values;
  double head = h[0] + h[1] + h[2];
  double tail = 0.0;
  for (std::size_t i = 3; i < h.size(); ++i) tail += h[i];
  EXPECT_LT(tail, 0.35 * head);
  EXPECT_LT(h[10] / h[0], 1e-3);
}

}  // namespace
}  // namespace spiv::model
