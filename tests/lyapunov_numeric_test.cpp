// Tests for the Bartels–Stewart Lyapunov solver (eq-num method substrate).
#include "numeric/lyapunov.hpp"

#include <gtest/gtest.h>

#include <random>

#include "numeric/eigen.hpp"

namespace spiv::numeric {
namespace {

Matrix random_hurwitz(std::mt19937_64& rng, std::size_t n) {
  // Random matrix shifted left until stable.
  std::normal_distribution<double> d{0.0, 1.0};
  Matrix a{n, n};
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) a(i, j) = d(rng);
  const double abscissa = spectral_abscissa(a);
  for (std::size_t i = 0; i < n; ++i) a(i, i) -= abscissa + 0.5;
  return a;
}

TEST(SolveLyapunov, DiagonalClosedForm) {
  Matrix a = Matrix::diagonal(Vector{-1, -2});
  auto p = solve_lyapunov(a, Matrix::identity(2));
  ASSERT_TRUE(p.has_value());
  EXPECT_NEAR((*p)(0, 0), 0.5, 1e-13);
  EXPECT_NEAR((*p)(1, 1), 0.25, 1e-13);
  EXPECT_NEAR((*p)(0, 1), 0.0, 1e-13);
}

TEST(SolveLyapunov, ResidualSmallOnRandomStableSystems) {
  std::mt19937_64 rng{77};
  for (std::size_t n : {2u, 4u, 8u, 15u, 18u, 21u}) {
    Matrix a = random_hurwitz(rng, n);
    Matrix q = Matrix::identity(n);
    auto p = solve_lyapunov(a, q);
    ASSERT_TRUE(p.has_value()) << "n=" << n;
    Matrix res = lyapunov_residual(a, *p, q);
    EXPECT_LT(res.frobenius_norm(), 1e-8 * (1.0 + p->frobenius_norm()))
        << "n=" << n;
    // P must be symmetric PD for Hurwitz A, Q = I.
    EXPECT_TRUE(p->is_symmetric(1e-12));
    EXPECT_TRUE(p->cholesky().has_value()) << "n=" << n;
  }
}

TEST(SolveLyapunov, DualEquationGramianForm) {
  std::mt19937_64 rng{78};
  Matrix a = random_hurwitz(rng, 6);
  Matrix q = Matrix::identity(6);
  auto w = solve_lyapunov_dual(a, q);
  ASSERT_TRUE(w.has_value());
  Matrix res = a * *w + *w * a.transposed() + q;
  EXPECT_LT(res.frobenius_norm(), 1e-9 * (1.0 + w->frobenius_norm()));
}

TEST(SolveLyapunov, SingularSpectrumReturnsNullopt) {
  // Eigenvalues {1, -1}: lambda_i + lambda_j = 0 -> singular operator.
  Matrix a = Matrix::diagonal(Vector{1, -1});
  EXPECT_FALSE(solve_lyapunov(a, Matrix::identity(2)).has_value());
}

TEST(SolveLyapunov, RejectsShapeMismatch) {
  EXPECT_THROW(solve_lyapunov(Matrix{2, 3}, Matrix::identity(2)),
               std::invalid_argument);
  EXPECT_THROW(solve_lyapunov(Matrix::identity(2), Matrix::identity(3)),
               std::invalid_argument);
}

TEST(SolveLyapunov, NonIdentityQ) {
  std::mt19937_64 rng{79};
  Matrix a = random_hurwitz(rng, 5);
  // Q = R^T R + I is symmetric PD.
  std::normal_distribution<double> d{0.0, 1.0};
  Matrix r{5, 5};
  for (std::size_t i = 0; i < 5; ++i)
    for (std::size_t j = 0; j < 5; ++j) r(i, j) = d(rng);
  Matrix q = r.transposed() * r + Matrix::identity(5);
  auto p = solve_lyapunov(a, q);
  ASSERT_TRUE(p.has_value());
  EXPECT_LT(lyapunov_residual(a, *p, q).frobenius_norm(),
            1e-8 * (1.0 + p->frobenius_norm()));
  EXPECT_TRUE(p->cholesky().has_value());
}

}  // namespace
}  // namespace spiv::numeric
