// Tests for complex Schur decomposition and eigen-decomposition.
#include "numeric/eigen.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>

namespace spiv::numeric {
namespace {

Matrix random_matrix(std::mt19937_64& rng, std::size_t n) {
  std::normal_distribution<double> d{0.0, 1.0};
  Matrix out{n, n};
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) out(i, j) = d(rng);
  return out;
}

double schur_residual(const Matrix& a, const ComplexSchur& s) {
  // || A U - U T ||_F
  CMatrix au = CMatrix::from_real(a) * s.u;
  CMatrix ut = s.u * s.t;
  return (au - ut).frobenius_norm();
}

double unitarity_residual(const CMatrix& u) {
  CMatrix prod = u.adjoint() * u;
  CMatrix eye = CMatrix::identity(u.rows());
  return (prod - eye).frobenius_norm();
}

TEST(ComplexSchur, DiagonalMatrixIsItsOwnSchurForm) {
  Matrix a = Matrix::diagonal(Vector{-1, -2, -3});
  auto s = complex_schur(a);
  EXPECT_TRUE(s.converged);
  EXPECT_LT(schur_residual(a, s), 1e-12);
  std::vector<double> eigs;
  for (std::size_t i = 0; i < 3; ++i) eigs.push_back(s.t(i, i).real());
  std::sort(eigs.begin(), eigs.end());
  EXPECT_NEAR(eigs[0], -3.0, 1e-12);
  EXPECT_NEAR(eigs[2], -1.0, 1e-12);
}

TEST(ComplexSchur, RotationMatrixHasComplexPair) {
  // [[0, -1], [1, 0]] has eigenvalues +/- i.
  Matrix a{{0, -1}, {1, 0}};
  auto vals = eigenvalues(a);
  ASSERT_EQ(vals.size(), 2u);
  std::sort(vals.begin(), vals.end(),
            [](Complex x, Complex y) { return x.imag() < y.imag(); });
  EXPECT_NEAR(vals[0].real(), 0.0, 1e-12);
  EXPECT_NEAR(vals[0].imag(), -1.0, 1e-12);
  EXPECT_NEAR(vals[1].imag(), 1.0, 1e-12);
}

TEST(ComplexSchur, RandomMatricesDecomposeAccurately) {
  std::mt19937_64 rng{11};
  for (std::size_t n : {2u, 3u, 5u, 8u, 13u, 21u}) {
    Matrix a = random_matrix(rng, n);
    auto s = complex_schur(a);
    EXPECT_TRUE(s.converged) << "n=" << n;
    EXPECT_LT(schur_residual(a, s), 1e-9 * (1.0 + a.frobenius_norm()))
        << "n=" << n;
    EXPECT_LT(unitarity_residual(s.u), 1e-10) << "n=" << n;
    // T strictly upper triangular below diagonal.
    for (std::size_t i = 1; i < n; ++i)
      for (std::size_t j = 0; j < i; ++j)
        EXPECT_EQ(s.t(i, j), (Complex{0.0, 0.0}));
  }
}

TEST(ComplexSchur, EigenvalueSumEqualsTrace) {
  std::mt19937_64 rng{23};
  for (int iter = 0; iter < 10; ++iter) {
    const std::size_t n = 4 + iter;
    Matrix a = random_matrix(rng, n);
    auto vals = eigenvalues(a);
    Complex sum{};
    for (auto v : vals) sum += v;
    double trace = 0.0;
    for (std::size_t i = 0; i < n; ++i) trace += a(i, i);
    EXPECT_NEAR(sum.real(), trace, 1e-8);
    EXPECT_NEAR(sum.imag(), 0.0, 1e-8);
  }
}

TEST(EigenDecompose, EigenvectorsSatisfyDefinition) {
  std::mt19937_64 rng{31};
  for (std::size_t n : {3u, 6u, 10u}) {
    Matrix a = random_matrix(rng, n);
    auto e = eigen_decompose(a);
    EXPECT_TRUE(e.converged);
    CMatrix ca = CMatrix::from_real(a);
    for (std::size_t k = 0; k < n; ++k) {
      // || A v - lambda v || small, ||v|| == 1.
      double vnorm = 0.0, rnorm = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        Complex av{};
        for (std::size_t j = 0; j < n; ++j) av += ca(i, j) * e.modal(j, k);
        const Complex r = av - e.values[k] * e.modal(i, k);
        rnorm += std::norm(r);
        vnorm += std::norm(e.modal(i, k));
      }
      EXPECT_NEAR(std::sqrt(vnorm), 1.0, 1e-9);
      EXPECT_LT(std::sqrt(rnorm), 1e-7 * (1.0 + std::abs(e.values[k])));
    }
  }
}

TEST(EigenDecompose, ModalMatrixInvertibleForDistinctEigenvalues) {
  Matrix a{{-1, 1, 0}, {0, -2, 1}, {0, 0, -3}};
  auto e = eigen_decompose(a);
  auto inv = e.modal.inverse();
  ASSERT_TRUE(inv.has_value());
  // M^-1 A M should be (close to) diagonal with the eigenvalues.
  CMatrix d = *inv * CMatrix::from_real(a) * e.modal;
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 3; ++j) {
      if (i == j) continue;
      EXPECT_LT(std::abs(d(i, j)), 1e-9);
    }
}

TEST(Hurwitz, ClassifiesStability) {
  EXPECT_TRUE(is_hurwitz(Matrix::diagonal(Vector{-1, -0.5})));
  EXPECT_FALSE(is_hurwitz(Matrix::diagonal(Vector{-1, 0.5})));
  // Marginally stable oscillator is not Hurwitz.
  Matrix osc{{0, -1}, {1, 0}};
  EXPECT_FALSE(is_hurwitz(osc));
  EXPECT_NEAR(spectral_abscissa(osc), 0.0, 1e-12);
  // Damped oscillator is.
  Matrix damped{{-0.1, -1}, {1, -0.1}};
  EXPECT_TRUE(is_hurwitz(damped));
  EXPECT_NEAR(spectral_abscissa(damped), -0.1, 1e-10);
}

TEST(CMatrixOps, InverseAndAdjoint) {
  CMatrix m{2, 2};
  m(0, 0) = Complex{1, 1};
  m(0, 1) = Complex{0, 2};
  m(1, 0) = Complex{3, 0};
  m(1, 1) = Complex{1, -1};
  auto inv = m.inverse();
  ASSERT_TRUE(inv.has_value());
  CMatrix prod = m * *inv;
  EXPECT_LT((prod - CMatrix::identity(2)).frobenius_norm(), 1e-12);
  CMatrix adj = m.adjoint();
  EXPECT_EQ(adj(0, 1), (Complex{3, 0}));
  EXPECT_EQ(adj(1, 0), (Complex{0, -2}));
  // Singular complex matrix.
  CMatrix s{2, 2};
  s(0, 0) = Complex{1, 0};
  s(0, 1) = Complex{2, 0};
  s(1, 0) = Complex{2, 0};
  s(1, 1) = Complex{4, 0};
  EXPECT_FALSE(s.inverse().has_value());
}

}  // namespace
}  // namespace spiv::numeric
