// Edge-case and failure-injection tests across modules: inputs at the
// boundary of each contract, and the error paths a downstream user will
// eventually hit.
#include <gtest/gtest.h>

#include <random>

#include "exact/bigint.hpp"
#include "exact/rational.hpp"
#include "model/switched_pi.hpp"
#include "numeric/eigen.hpp"
#include "numeric/lyapunov.hpp"
#include "sdp/lmi.hpp"
#include "sim/integrator.hpp"

namespace spiv {
namespace {

using exact::BigInt;
using exact::Rational;
using numeric::Matrix;
using numeric::Vector;

// ---------------------------------------------------------------- BigInt

TEST(BigIntEdge, DivisionNearLimbBoundaries) {
  // Operands straddling 2^32 / 2^64 boundaries stress the Knuth D code.
  for (const char* num : {"4294967295", "4294967296", "4294967297",
                          "18446744073709551615", "18446744073709551616",
                          "79228162514264337593543950336"}) {  // 2^96
    for (const char* den : {"4294967295", "4294967296", "65536",
                            "18446744073709551615"}) {
      BigInt a{num}, b{den};
      auto [q, r] = BigInt::div_mod(a, b);
      EXPECT_EQ(q * b + r, a) << num << "/" << den;
      EXPECT_LT(r, b);
      EXPECT_GE(r, BigInt{0});
    }
  }
}

TEST(BigIntEdge, AddBackBranchStress) {
  // Random dividends just below divisor * 2^32k exercise the rare
  // "add back" correction of Algorithm D.
  std::mt19937_64 rng{501};
  for (int iter = 0; iter < 200; ++iter) {
    BigInt b{static_cast<std::int64_t>(rng() | 0x8000000000000000ull) >> 1};
    if (b.is_zero() || b.is_negative()) continue;
    BigInt scale = BigInt{1}.shifted_left(64 + rng() % 64);
    BigInt a = b * scale - BigInt{static_cast<std::int64_t>(rng() % 1000 + 1)};
    auto [q, r] = BigInt::div_mod(a, b);
    EXPECT_EQ(q * b + r, a);
    EXPECT_LT(r.abs(), b.abs());
  }
}

TEST(BigIntEdge, ShiftBoundaries) {
  BigInt v{"123456789012345678901234567890"};
  EXPECT_EQ(v.shifted_left(0), v);
  EXPECT_EQ(v.shifted_right(0), v);
  EXPECT_EQ(v.shifted_left(32).shifted_right(32), v);
  EXPECT_EQ(v.shifted_left(31).shifted_right(31), v);
  EXPECT_EQ(v.shifted_left(33).shifted_right(33), v);
  EXPECT_TRUE(v.shifted_right(1000).is_zero());
}

TEST(RationalEdge, ExtremeDoubles) {
  // Denormals and extreme exponents convert exactly and round-trip.
  for (double v : {5e-324, 1e-308, 1.7976931348623157e308, -2.2250738585072014e-308}) {
    Rational r = Rational::from_double_exact(v);
    EXPECT_EQ(r.to_double(), v) << v;
  }
}

TEST(RationalEdge, RoundedOfTinyAndHuge) {
  EXPECT_EQ(Rational::from_double_rounded(1.23456789e-30, 3),
            Rational{"1.23e-30"});
  EXPECT_EQ(Rational::from_double_rounded(-9.87654321e+25, 2),
            Rational{"-9.9e25"});
}

// ------------------------------------------------------------ numeric

TEST(NumericEdge, OneByOneAndEmptyMatrices) {
  Matrix one{{-3.0}};
  EXPECT_TRUE(numeric::is_hurwitz(one));
  auto e = numeric::eigen_decompose(one);
  EXPECT_NEAR(e.values[0].real(), -3.0, 1e-14);
  auto p = numeric::solve_lyapunov(one, Matrix::identity(1));
  ASSERT_TRUE(p.has_value());
  EXPECT_NEAR((*p)(0, 0), 1.0 / 6.0, 1e-14);
}

TEST(NumericEdge, SchurOfSymmetricMatchesJacobi) {
  std::mt19937_64 rng{502};
  std::normal_distribution<double> d;
  Matrix a{6, 6};
  for (std::size_t i = 0; i < 6; ++i)
    for (std::size_t j = 0; j < 6; ++j) a(i, j) = d(rng);
  Matrix s = a.symmetrized();
  auto jac = numeric::symmetric_eigen(s);
  auto vals = numeric::eigenvalues(s);
  std::vector<double> reals;
  for (auto v : vals) {
    EXPECT_NEAR(v.imag(), 0.0, 1e-8);
    reals.push_back(v.real());
  }
  std::sort(reals.begin(), reals.end());
  for (std::size_t i = 0; i < 6; ++i)
    EXPECT_NEAR(reals[i], jac.values[i], 1e-8);
}

// --------------------------------------------------------------- model

TEST(ModelEdge, ModeOfThrowsOutsideAllRegions) {
  model::PwaMode m;
  m.a = Matrix{{-1.0}};
  m.b = Matrix{1, 1};
  m.region.push_back(model::HalfSpace{Vector{1.0}, -5.0, false});  // w >= 5
  model::PwaSystem sys{{m}, 1, 0, 1};
  EXPECT_EQ(sys.mode_of(Vector{6.0}), 0u);
  EXPECT_THROW(sys.mode_of(Vector{0.0}), std::runtime_error);
}

TEST(ModelEdge, PwaSystemRejectsEmptyAndMismatched) {
  EXPECT_THROW((model::PwaSystem{{}, 1, 0, 1}), std::invalid_argument);
  model::PwaMode bad;
  bad.a = Matrix{{-1.0}};
  bad.b = Matrix{1, 1};
  EXPECT_THROW((model::PwaSystem{{bad}, 2, 1, 1}), std::invalid_argument);
}

TEST(ModelEdge, SingularModeEquilibriumThrows) {
  model::PwaMode m;
  m.a = Matrix{{0.0}};  // singular
  m.b = Matrix{{1.0}};
  EXPECT_THROW(m.equilibrium(Vector{1.0}), std::runtime_error);
}

// ----------------------------------------------------------------- sim

TEST(SimEdge, MaxStepsBoundsWork) {
  model::PwaMode m;
  m.a = Matrix{{-1.0}};
  m.b = Matrix{1, 1};
  m.region.push_back(model::HalfSpace{Vector{0.0}, 1.0, false});
  model::PwaSystem sys{{m}, 1, 0, 1};
  sim::SimOptions options;
  options.t_end = 1e9;        // far horizon
  options.max_steps = 50;     // but hard step bound
  options.dt_max = 1e-3;
  auto traj = sim::simulate(sys, Vector{0.0}, Vector{1.0}, options);
  EXPECT_LT(traj.back().t, 1.0);  // stopped early by the step bound
}

TEST(SimEdge, ChatteringNearSurfaceIsBounded) {
  // Two modes whose flows both push toward the same surface from either
  // side: the integrator must localize crossings and make progress (no
  // infinite loop), even though the trajectory slides near the surface.
  model::PwaMode left, right;
  left.a = Matrix{{0.0}};
  left.b = Matrix{{1.0}};   // wdot = +1 (pushes right)
  left.region.push_back(model::HalfSpace{Vector{-1.0}, 0.0, false});  // w <= 0
  right.a = Matrix{{0.0}};
  right.b = Matrix{{-1.0}};  // wdot = -1 (pushes left)
  right.region.push_back(model::HalfSpace{Vector{1.0}, 0.0, true});  // w > 0
  model::PwaSystem sys{{left, right}, 1, 0, 1};
  sim::SimOptions options;
  options.t_end = 0.5;
  options.max_steps = 20000;
  auto traj = sim::simulate(sys, Vector{1.0}, Vector{-0.3}, options);
  // Slides to the surface and chatters in a tiny band around it.
  EXPECT_LT(std::abs(traj.back().w[0]), 1e-2);
  EXPECT_GT(traj.switches.size(), 0u);
}

// ----------------------------------------------------------------- sdp

TEST(SdpEdge, EmptyProblemRejected) {
  sdp::LmiProblem empty;
  empty.num_vars = 1;
  EXPECT_THROW(solve_lmi(empty, sdp::Backend::NewtonAnalyticCenter),
               std::invalid_argument);
}

TEST(SdpEdge, InfeasibleIntervalReported) {
  // p > 1 and p < 0 simultaneously: infeasible.
  sdp::LmiProblem problem;
  problem.num_vars = 1;
  problem.constraints.emplace_back(Matrix{{-1.0}},
                                   std::vector<Matrix>{Matrix{{1.0}}});
  problem.constraints.emplace_back(Matrix{{0.0}},
                                   std::vector<Matrix>{Matrix{{-1.0}}});
  for (auto backend :
       {sdp::Backend::NewtonAnalyticCenter, sdp::Backend::FastInteriorPoint}) {
    sdp::LmiOptions options;
    options.max_iterations = 50;
    auto sol = solve_lmi(problem, backend, options);
    EXPECT_FALSE(sol.feasible && sol.achieved_margin > 1e-9);
  }
}

}  // namespace
}  // namespace spiv
