// Tests for the certified interval-Cholesky engine.
#include "smt/interval_cholesky.hpp"

#include <gtest/gtest.h>

#include <random>

#include "numeric/lyapunov.hpp"
#include "numeric/eigen.hpp"
#include "smt/validate.hpp"

namespace spiv::smt {
namespace {

using exact::RatMatrix;
using exact::Rational;

Rational q(std::int64_t n, std::int64_t d = 1) { return Rational{n, d}; }

TEST(IntervalCholesky, DecidesClearCases) {
  RatMatrix pd{{q(4), q(1)}, {q(1), q(3)}};
  EXPECT_EQ(interval_cholesky_check(pd), IntervalOutcome::ProvedPd);
  RatMatrix indef{{q(1), q(3)}, {q(3), q(1)}};
  EXPECT_EQ(interval_cholesky_check(indef), IntervalOutcome::ProvedNotPd);
  RatMatrix neg{{q(-1), q(0)}, {q(0), q(2)}};
  EXPECT_EQ(interval_cholesky_check(neg), IntervalOutcome::ProvedNotPd);
}

TEST(IntervalCholesky, UnknownOnSingularAndNearSingular) {
  // Exactly singular PSD: pivot enclosure straddles zero -> Unknown (the
  // engine is sound, never wrong, but incomplete).
  RatMatrix psd{{q(1), q(1)}, {q(1), q(1)}};
  EXPECT_EQ(interval_cholesky_check(psd), IntervalOutcome::Unknown);
  // Near-singular PD: tiny eigenvalue below the enclosure resolution.
  numeric::Matrix near{{1.0, 1.0}, {1.0, 1.0 + 1e-17}};
  EXPECT_NE(interval_cholesky_check(near), IntervalOutcome::ProvedNotPd);
}

TEST(IntervalCholesky, SoundnessAgainstExactOracle) {
  // On random integer symmetric matrices the interval verdict, when
  // decisive, must agree with the exact Sylvester engine.
  std::mt19937_64 rng{71};
  std::uniform_int_distribution<std::int64_t> d{-5, 5};
  int decided = 0;
  for (int iter = 0; iter < 40; ++iter) {
    const std::size_t n = 2 + iter % 5;
    RatMatrix m{n, n};
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = i; j < n; ++j) {
        m(i, j) = Rational{d(rng)};
        m(j, i) = m(i, j);
      }
    auto iv = interval_cholesky_check(m);
    if (iv == IntervalOutcome::Unknown) continue;
    ++decided;
    auto exact_verdict = check_positive_definite(m, Engine::Sylvester);
    if (iv == IntervalOutcome::ProvedPd)
      EXPECT_EQ(exact_verdict.outcome, Outcome::Valid) << "iter " << iter;
    else
      EXPECT_EQ(exact_verdict.outcome, Outcome::Invalid) << "iter " << iter;
  }
  EXPECT_GT(decided, 25);  // decisive on the vast majority
}

TEST(IntervalCholesky, ProvesRealLyapunovCandidates) {
  // The engine proves PD-ness of Bartels-Stewart candidates on a
  // closed-loop-sized system in floating-point time.
  std::mt19937_64 rng{72};
  std::normal_distribution<double> dist;
  const std::size_t n = 21;
  numeric::Matrix a{n, n};
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) a(i, j) = dist(rng);
  const double shift = numeric::spectral_abscissa(a) + 1.0;
  for (std::size_t i = 0; i < n; ++i) a(i, i) -= shift;
  auto p = numeric::solve_lyapunov(a, numeric::Matrix::identity(n));
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(interval_cholesky_check(p->symmetrized()),
            IntervalOutcome::ProvedPd);
  numeric::Matrix lie = (a.transposed() * *p + *p * a).symmetrized();
  EXPECT_EQ(interval_cholesky_check(-lie), IntervalOutcome::ProvedPd);
}

TEST(IntervalCholesky, RejectsNonSymmetric) {
  RatMatrix ns{{q(1), q(2)}, {q(0), q(1)}};
  EXPECT_THROW(interval_cholesky_check(ns), std::invalid_argument);
}

}  // namespace
}  // namespace spiv::smt
