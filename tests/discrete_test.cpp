// Tests for the discrete-time bridge: expm, ZOH discretization, Stein
// equation, and exact validation of discrete Lyapunov certificates.
#include "numeric/discrete.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "model/engine.hpp"
#include "model/reduction.hpp"
#include "numeric/eigen.hpp"
#include "smt/validate.hpp"

namespace spiv::numeric {
namespace {

TEST(Expm, MatchesClosedForms) {
  // expm(0) = I.
  Matrix z{3, 3};
  Matrix e0 = expm(z);
  EXPECT_LT((e0 - Matrix::identity(3)).max_abs(), 1e-14);
  // Diagonal: expm(diag(a)) = diag(e^a).
  Matrix d = Matrix::diagonal(Vector{-1.0, 0.5, 2.0});
  Matrix ed = expm(d);
  EXPECT_NEAR(ed(0, 0), std::exp(-1.0), 1e-12);
  EXPECT_NEAR(ed(1, 1), std::exp(0.5), 1e-12);
  EXPECT_NEAR(ed(2, 2), std::exp(2.0), 1e-11);
  EXPECT_NEAR(ed(0, 1), 0.0, 1e-14);
  // Rotation generator: expm([[0,-t],[t,0]]) = rotation by t.
  const double t = 0.7;
  Matrix rot = expm(Matrix{{0.0, -t}, {t, 0.0}});
  EXPECT_NEAR(rot(0, 0), std::cos(t), 1e-12);
  EXPECT_NEAR(rot(1, 0), std::sin(t), 1e-12);
  // Nilpotent: expm([[0,1],[0,0]]) = [[1,1],[0,1]].
  Matrix nil = expm(Matrix{{0.0, 1.0}, {0.0, 0.0}});
  EXPECT_NEAR(nil(0, 1), 1.0, 1e-14);
  EXPECT_NEAR(nil(1, 1), 1.0, 1e-14);
}

TEST(Expm, GroupLawAndLargeNorm) {
  std::mt19937_64 rng{61};
  std::normal_distribution<double> d;
  Matrix a{4, 4};
  for (std::size_t i = 0; i < 4; ++i)
    for (std::size_t j = 0; j < 4; ++j) a(i, j) = 3.0 * d(rng);
  // expm(A) expm(-A) = I.
  Matrix prod = expm(a) * expm(-a);
  EXPECT_LT((prod - Matrix::identity(4)).max_abs(), 1e-9);
  // expm(A/2)^2 = expm(A).
  Matrix half = expm(a * 0.5);
  EXPECT_LT((half * half - expm(a)).max_abs(),
            1e-9 * (1.0 + expm(a).max_abs()));
}

TEST(SpectralRadius, KnownValues) {
  EXPECT_NEAR(spectral_radius(Matrix::diagonal(Vector{0.5, -0.9})), 0.9,
              1e-12);
  EXPECT_TRUE(is_schur_stable(Matrix::diagonal(Vector{0.5, -0.9})));
  EXPECT_FALSE(is_schur_stable(Matrix::diagonal(Vector{0.5, -1.1})));
  // Rotation has radius exactly 1: not Schur stable with any real margin
  // (the radius itself computes to 1 within roundoff).
  Matrix rot{{0.0, -1.0}, {1.0, 0.0}};
  EXPECT_NEAR(spectral_radius(rot), 1.0, 1e-12);
  EXPECT_FALSE(is_schur_stable(rot, 1e-9));
}

TEST(DiscretizeZoh, MatchesScalarClosedForm) {
  // xdot = -2x + u, h = 0.1: Ad = e^{-0.2}, Bd = (1 - e^{-0.2})/2.
  auto [ad, bd] = discretize_zoh(Matrix{{-2.0}}, Matrix{{1.0}}, 0.1);
  EXPECT_NEAR(ad(0, 0), std::exp(-0.2), 1e-12);
  EXPECT_NEAR(bd(0, 0), (1.0 - std::exp(-0.2)) / 2.0, 1e-12);
}

TEST(DiscretizeZoh, PreservesStabilityOfEngineClosedLoop) {
  // ZOH discretization of a Hurwitz system is Schur stable for any h.
  model::StateSpace plant =
      model::balanced_truncation(model::make_engine_model(), 5).sys;
  auto mode = model::close_loop_single_mode(plant, model::engine_gains_mode0());
  for (double h : {0.001, 0.01, 0.1}) {
    auto [ad, bd] = discretize_zoh(mode.a, mode.b, h);
    (void)bd;
    EXPECT_TRUE(is_schur_stable(ad)) << "h=" << h;
    // Eigenvalue correspondence: eig(Ad) = exp(h * eig(A)).
    auto cont = eigenvalues(mode.a);
    for (auto l : cont) {
      const Complex target = std::exp(h * l);
      double best = 1e300;
      for (auto m : eigenvalues(ad)) best = std::min(best, std::abs(m - target));
      EXPECT_LT(best, 1e-8 * (1.0 + std::abs(target)));
    }
  }
}

TEST(DiscreteLyapunov, ClosedFormOnDiagonal) {
  // A = diag(1/2): P - (1/4)P = Q => P = (4/3) Q.
  Matrix a = Matrix::diagonal(Vector{0.5});
  auto p = solve_discrete_lyapunov(a, Matrix::identity(1));
  ASSERT_TRUE(p.has_value());
  EXPECT_NEAR((*p)(0, 0), 4.0 / 3.0, 1e-12);
}

TEST(DiscreteLyapunov, ResidualSmallOnRandomSchurStableSystems) {
  std::mt19937_64 rng{62};
  std::normal_distribution<double> d;
  for (std::size_t n : {3u, 8u, 15u}) {
    Matrix a{n, n};
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = 0; j < n; ++j) a(i, j) = d(rng);
    const double rho = spectral_radius(a);
    a *= 0.8 / rho;  // contract inside the unit disk
    Matrix q = Matrix::identity(n);
    auto p = solve_discrete_lyapunov(a, q);
    ASSERT_TRUE(p.has_value()) << "n=" << n;
    EXPECT_LT(discrete_lyapunov_residual(a, *p, q).frobenius_norm(),
              1e-8 * (1.0 + p->frobenius_norm()));
    EXPECT_TRUE(p->cholesky().has_value());
  }
}

TEST(DiscreteLyapunov, SingularWhenEigenvalueProductIsOne) {
  // Eigenvalues {2, 1/2}: lambda_i * lambda_j = 1 -> singular.
  Matrix a = Matrix::diagonal(Vector{2.0, 0.5});
  EXPECT_FALSE(solve_discrete_lyapunov(a, Matrix::identity(2)).has_value());
}

TEST(DiscreteLyapunov, ExactValidationOfDigitalImplementation) {
  // The full digital loop check: discretize the engine closed loop, solve
  // the Stein equation, and certify BOTH discrete Lyapunov conditions
  // exactly (P > 0 and P - Ad^T P Ad > 0) with the Sylvester engine.
  model::StateSpace plant =
      model::balanced_truncation(model::make_engine_model(), 3).sys;
  auto mode = model::close_loop_single_mode(plant, model::engine_gains_mode0());
  auto [ad, bd] = discretize_zoh(mode.a, mode.b, 0.01);
  (void)bd;
  auto p = solve_discrete_lyapunov(ad, Matrix::identity(ad.rows()));
  ASSERT_TRUE(p.has_value());

  const auto ad_exact = smt::rationalize(ad, 0);
  const auto p_exact = smt::rationalize(*p, 10).symmetrized();
  auto pd1 = smt::check_positive_definite(p_exact, smt::Engine::Sylvester);
  auto stein =
      (p_exact - (ad_exact.transposed() * p_exact * ad_exact)).symmetrized();
  auto pd2 = smt::check_positive_definite(stein, smt::Engine::Sylvester);
  EXPECT_EQ(pd1.outcome, smt::Outcome::Valid);
  EXPECT_EQ(pd2.outcome, smt::Outcome::Valid);
}

}  // namespace
}  // namespace spiv::numeric
