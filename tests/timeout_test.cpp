// Tests for the cooperative Deadline/CancelToken, in particular the
// saturation of absurdly large budgets: an unchecked duration_cast used to
// overflow steady_clock's representable range into a *past* expiry, so
// `spiv-serve --timeout 1e18` timed every request out instantly.
#include "exact/timeout.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <limits>
#include <thread>

namespace spiv {
namespace {

TEST(Deadline, DefaultConstructedNeverExpires) {
  const Deadline d;
  EXPECT_FALSE(d.expired());
  EXPECT_NO_THROW(d.check());
}

TEST(Deadline, HugeBudgetSaturatesInsteadOfOverflowing) {
  // 1e18 seconds (~31 Gyr) does not fit in steady_clock ticks; it must
  // clamp to "effectively never", not wrap into the past.
  const Deadline d = Deadline::after_seconds(1e18);
  EXPECT_FALSE(d.expired());
  EXPECT_NO_THROW(d.check());
  // Budgets past even double's comfortable range behave the same.
  EXPECT_FALSE(Deadline::after_seconds(1e300).expired());
  EXPECT_FALSE(
      Deadline{std::chrono::duration<double>(
                   std::numeric_limits<double>::infinity())}
          .expired());
}

TEST(Deadline, ReasonableBudgetDoesNotExpireImmediately) {
  const Deadline d = Deadline::after_seconds(60.0);
  EXPECT_FALSE(d.expired());
  EXPECT_NO_THROW(d.check());
}

TEST(Deadline, TinyBudgetExpires) {
  const Deadline d = Deadline::after_seconds(1e-9);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_TRUE(d.expired());
  EXPECT_THROW(d.check(), TimeoutError);
}

TEST(Deadline, CancelTokenExpiresEvenSaturatedBudgets) {
  const CancelToken token;
  const Deadline d = Deadline::after_seconds(1e18, token);
  EXPECT_FALSE(d.expired());
  token.cancel();
  EXPECT_TRUE(d.expired());
  EXPECT_THROW(d.check(), TimeoutError);
}

TEST(Deadline, WithTokenLeavesOriginalUnbound) {
  const CancelToken token;
  const Deadline base = Deadline::after_seconds(3600.0);
  const Deadline bound = base.with_token(token);
  token.cancel();
  EXPECT_TRUE(bound.expired());
  EXPECT_FALSE(base.expired());
}

TEST(CancelToken, CopiesShareOneFlag) {
  const CancelToken token;
  const CancelToken copy = token;
  EXPECT_FALSE(copy.cancelled());
  token.cancel();
  EXPECT_TRUE(copy.cancelled());
}

}  // namespace
}  // namespace spiv
