// Unit and property tests for spiv::exact::BigInt.
#include "exact/bigint.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <string>

namespace spiv::exact {
namespace {

TEST(BigInt, DefaultIsZero) {
  BigInt z;
  EXPECT_TRUE(z.is_zero());
  EXPECT_EQ(z.sign(), 0);
  EXPECT_EQ(z.to_string(), "0");
  EXPECT_EQ(z.bit_length(), 0u);
}

TEST(BigInt, FromInt64RoundTrips) {
  for (std::int64_t v : {std::int64_t{0}, std::int64_t{1}, std::int64_t{-1},
                         std::int64_t{42}, std::int64_t{-123456789},
                         std::int64_t{1} << 40,
                         std::numeric_limits<std::int64_t>::max(),
                         std::numeric_limits<std::int64_t>::min()}) {
    BigInt b{v};
    EXPECT_TRUE(b.fits_int64()) << v;
    EXPECT_EQ(b.to_int64(), v);
    EXPECT_EQ(b.to_string(), std::to_string(v));
  }
}

TEST(BigInt, ParseRoundTrips) {
  const std::string big = "123456789012345678901234567890123456789";
  BigInt b{big};
  EXPECT_EQ(b.to_string(), big);
  BigInt neg{"-" + big};
  EXPECT_EQ(neg.to_string(), "-" + big);
  EXPECT_FALSE(b.fits_int64());
  EXPECT_THROW(b.to_int64(), std::range_error);
}

TEST(BigInt, ParseRejectsGarbage) {
  EXPECT_THROW(BigInt{""}, std::invalid_argument);
  EXPECT_THROW(BigInt{"-"}, std::invalid_argument);
  EXPECT_THROW(BigInt{"12a3"}, std::invalid_argument);
}

TEST(BigInt, AdditionCarriesAcrossLimbs) {
  BigInt a{"4294967295"};  // 2^32 - 1
  BigInt one{1};
  EXPECT_EQ((a + one).to_string(), "4294967296");
  BigInt b{"18446744073709551615"};  // 2^64 - 1
  EXPECT_EQ((b + one).to_string(), "18446744073709551616");
}

TEST(BigInt, SubtractionSignHandling) {
  BigInt a{5}, b{9};
  EXPECT_EQ((a - b).to_int64(), -4);
  EXPECT_EQ((b - a).to_int64(), 4);
  EXPECT_EQ((a - a).to_int64(), 0);
  EXPECT_TRUE((a - a).is_zero());
}

TEST(BigInt, MultiplicationLarge) {
  BigInt a{"123456789012345678901234567890"};
  BigInt b{"987654321098765432109876543210"};
  EXPECT_EQ((a * b).to_string(),
            "121932631137021795226185032733622923332237463801111263526900");
}

TEST(BigInt, DivisionTruncatesTowardZero) {
  EXPECT_EQ((BigInt{7} / BigInt{2}).to_int64(), 3);
  EXPECT_EQ((BigInt{-7} / BigInt{2}).to_int64(), -3);
  EXPECT_EQ((BigInt{7} / BigInt{-2}).to_int64(), -3);
  EXPECT_EQ((BigInt{-7} / BigInt{-2}).to_int64(), 3);
  EXPECT_EQ((BigInt{7} % BigInt{2}).to_int64(), 1);
  EXPECT_EQ((BigInt{-7} % BigInt{2}).to_int64(), -1);
  EXPECT_EQ((BigInt{7} % BigInt{-2}).to_int64(), 1);
}

TEST(BigInt, DivisionByZeroThrows) {
  EXPECT_THROW(BigInt{1} / BigInt{0}, std::domain_error);
  EXPECT_THROW(BigInt{1} % BigInt{0}, std::domain_error);
}

TEST(BigInt, MultiLimbDivisionKnuthCases) {
  // Exercises the add-back branch region: numerator close to divisor * base.
  BigInt num{"340282366920938463463374607431768211456"};  // 2^128
  BigInt den{"18446744073709551616"};                     // 2^64
  EXPECT_EQ((num / den).to_string(), "18446744073709551616");
  EXPECT_TRUE((num % den).is_zero());

  BigInt a{"123456789123456789123456789123456789"};
  BigInt b{"98765432109876543210"};
  BigInt q = a / b;
  BigInt r = a % b;
  EXPECT_EQ((q * b + r), a);
  EXPECT_LT(r.abs(), b.abs());
}

TEST(BigInt, Comparisons) {
  EXPECT_LT(BigInt{-5}, BigInt{3});
  EXPECT_LT(BigInt{-5}, BigInt{-3});
  EXPECT_GT(BigInt{"100000000000000000000"}, BigInt{"99999999999999999999"});
  EXPECT_EQ(BigInt{7}, BigInt{"7"});
}

TEST(BigInt, GcdBasics) {
  EXPECT_EQ(BigInt::gcd(BigInt{12}, BigInt{18}).to_int64(), 6);
  EXPECT_EQ(BigInt::gcd(BigInt{-12}, BigInt{18}).to_int64(), 6);
  EXPECT_EQ(BigInt::gcd(BigInt{0}, BigInt{5}).to_int64(), 5);
  EXPECT_EQ(BigInt::gcd(BigInt{0}, BigInt{0}).to_int64(), 0);
  EXPECT_EQ(BigInt::gcd(BigInt{"1000000007"}, BigInt{"998244353"}).to_int64(), 1);
}

TEST(BigInt, GcdSteinEdgeCases) {
  // Power-of-two common factors (the binary algorithm's shift bookkeeping).
  EXPECT_EQ(BigInt::gcd(BigInt{1024}, BigInt{4096}).to_int64(), 1024);
  EXPECT_EQ(BigInt::gcd(BigInt{3} * BigInt{1024}, BigInt{5} * BigInt{4096})
                .to_int64(),
            1024);
  // Equal operands, including multi-limb.
  const BigInt big{"123456789012345678901234567890"};
  EXPECT_EQ(BigInt::gcd(big, big), big);
  EXPECT_EQ(BigInt::gcd(big, big.negated()), big);
  // Common factor spanning limbs: g has > 64 bits, so the word-size kernel
  // must not engage until it has been divided out.
  const BigInt g = BigInt::pow10(25);  // ~84 bits
  EXPECT_EQ(BigInt::gcd(g * BigInt{7}, g * BigInt{9}), g);
  // Coprime multi-limb pair: both odd and differing by 2, so the gcd is 1.
  EXPECT_TRUE(
      BigInt::gcd(BigInt::pow10(30) + BigInt{1}, BigInt::pow10(30) + BigInt{3})
          .is_one());
}

TEST(BigInt, GcdMatchesEuclidReference) {
  std::mt19937_64 rng{909};
  std::uniform_int_distribution<std::int64_t> dist{-1'000'000'000,
                                                   1'000'000'000};
  for (int iter = 0; iter < 200; ++iter) {
    const std::int64_t a = dist(rng);
    const std::int64_t b = dist(rng);
    std::int64_t x = a < 0 ? -a : a;
    std::int64_t y = b < 0 ? -b : b;
    while (y != 0) {
      const std::int64_t t = x % y;
      x = y;
      y = t;
    }
    EXPECT_EQ(BigInt::gcd(BigInt{a}, BigInt{b}).to_int64(), x)
        << a << ", " << b;
  }
  // And divisibility on operands far beyond one limb.
  for (int iter = 0; iter < 20; ++iter) {
    BigInt u{dist(rng)};
    BigInt v{dist(rng)};
    const BigInt scale = BigInt::pow10(18 + iter);
    const BigInt g = BigInt::gcd(u * scale, v * scale);
    EXPECT_TRUE((u * scale % g).is_zero());
    EXPECT_TRUE((v * scale % g).is_zero());
    EXPECT_TRUE((g % scale).is_zero());  // scale divides both, so also g
  }
}

TEST(BigInt, PowAndPow10) {
  EXPECT_EQ(BigInt{2}.pow(10).to_int64(), 1024);
  EXPECT_EQ(BigInt{10}.pow(0).to_int64(), 1);
  EXPECT_EQ(BigInt::pow10(20).to_string(), "100000000000000000000");
  EXPECT_EQ(BigInt{-3}.pow(3).to_int64(), -27);
  EXPECT_EQ(BigInt{-3}.pow(4).to_int64(), 81);
}

TEST(BigInt, Shifts) {
  BigInt one{1};
  EXPECT_EQ(one.shifted_left(100).shifted_right(100), one);
  EXPECT_EQ(one.shifted_left(100).bit_length(), 101u);
  EXPECT_EQ(BigInt{5}.shifted_right(1).to_int64(), 2);
  EXPECT_EQ(BigInt{-8}.shifted_left(2).to_int64(), -32);
  EXPECT_TRUE(BigInt{3}.shifted_right(10).is_zero());
}

TEST(BigInt, ToDoubleAccuracy) {
  EXPECT_DOUBLE_EQ(BigInt{12345}.to_double(), 12345.0);
  EXPECT_DOUBLE_EQ(BigInt{-12345}.to_double(), -12345.0);
  BigInt huge = BigInt{1}.shifted_left(200);
  EXPECT_NEAR(huge.to_double() / std::ldexp(1.0, 200), 1.0, 1e-12);
}

// --- property tests against int64/double reference arithmetic ---

TEST(BigInt, InlineToHeapBoundaryArithmetic) {
  // The limb storage keeps 4 x 32-bit limbs inline and moves to pooled
  // heap blocks beyond that; exercise sizes straddling that boundary in
  // both directions (grow via multiply, shrink via divide).
  const BigInt base{"4294967295"};  // 2^32 - 1, one limb
  BigInt acc{1};
  std::vector<BigInt> stages;
  for (int limbs = 1; limbs <= 9; ++limbs) {
    acc *= base;
    stages.push_back(acc);
  }
  for (int limbs = 9; limbs-- > 1;) {
    auto [quot, rem] = BigInt::div_mod(acc, base);
    EXPECT_TRUE(rem.is_zero()) << limbs;
    acc = quot;
    EXPECT_EQ(acc, stages[static_cast<std::size_t>(limbs) - 1]) << limbs;
  }
  // Add/sub round trip across the boundary (3 <-> 5 limbs).
  const BigInt big = stages[4], small = stages[2];
  EXPECT_EQ(big + small - small, big);
  EXPECT_EQ(small + big - big, small);
  EXPECT_EQ((big - big), BigInt{});
}

TEST(BigInt, MovedFromValuesAreReusable) {
  BigInt heap = BigInt{"123456789123456789"}.pow(8);  // well past 4 limbs
  const BigInt copy = heap;
  BigInt stolen = std::move(heap);
  EXPECT_EQ(stolen, copy);
  heap = BigInt{42};  // assign into the moved-from object
  EXPECT_EQ(heap.to_int64(), 42);
  heap = stolen * BigInt{2};
  EXPECT_EQ(heap, copy + copy);
}

TEST(BigInt, SmallOperandFastPathsMatchWideReference) {
  // +=, -=, *=, div_mod and gcd all special-case operands that fit two
  // limbs; compare against the same computation routed through multi-limb
  // values (scaled up then back down).
  std::mt19937_64 rng{77};
  const BigInt scale = BigInt{"340282366920938463463374607431768211456"};  // 2^128
  std::uniform_int_distribution<std::int64_t> dist{-1000000000, 1000000000};
  for (int iter = 0; iter < 100; ++iter) {
    const std::int64_t x = dist(rng);
    const std::int64_t y = dist(rng);
    if (y == 0) continue;
    const BigInt bx{x}, by{y};
    EXPECT_EQ((bx * scale + by * scale), (bx + by) * scale);
    EXPECT_EQ((bx * scale - by * scale), (bx - by) * scale);
    auto [q_small, r_small] = BigInt::div_mod(bx, by);
    auto [q_wide, r_wide] = BigInt::div_mod(bx * scale, by * scale);
    EXPECT_EQ(q_small, q_wide);
    EXPECT_EQ(r_small * scale, r_wide);
    EXPECT_EQ(BigInt::gcd(bx, by) * scale, BigInt::gcd(bx * scale, by * scale));
  }
}

class BigIntRandomProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(BigIntRandomProperty, RingLawsAgainstInt64) {
  std::mt19937_64 rng{GetParam()};
  std::uniform_int_distribution<std::int64_t> dist{-1000000000, 1000000000};
  for (int iter = 0; iter < 200; ++iter) {
    const std::int64_t x = dist(rng), y = dist(rng), z = dist(rng);
    BigInt bx{x}, by{y}, bz{z};
    EXPECT_EQ((bx + by).to_int64(), x + y);
    EXPECT_EQ((bx - by).to_int64(), x - y);
    EXPECT_EQ((bx * by).to_int64(), x * y);
    // Associativity / distributivity.
    EXPECT_EQ(((bx + by) + bz), (bx + (by + bz)));
    EXPECT_EQ((bx * (by + bz)), (bx * by + bx * bz));
    if (y != 0) {
      EXPECT_EQ((bx / by).to_int64(), x / y);
      EXPECT_EQ((bx % by).to_int64(), x % y);
    }
  }
}

TEST_P(BigIntRandomProperty, DivModInvariantOnHugeOperands) {
  std::mt19937_64 rng{GetParam() + 17};
  auto random_big = [&rng](int limbs) {
    BigInt acc;
    std::uniform_int_distribution<std::int64_t> d{0,
        std::numeric_limits<std::int64_t>::max()};
    for (int i = 0; i < limbs; ++i) {
      acc = acc.shifted_left(62);
      acc += BigInt{d(rng)};
    }
    return rng() % 2 ? acc : acc.negated();
  };
  for (int iter = 0; iter < 50; ++iter) {
    BigInt a = random_big(1 + static_cast<int>(rng() % 8));
    BigInt b = random_big(1 + static_cast<int>(rng() % 5));
    if (b.is_zero()) continue;
    auto [q, r] = BigInt::div_mod(a, b);
    EXPECT_EQ(q * b + r, a);
    EXPECT_LT(r.abs(), b.abs());
    // Remainder sign follows dividend (truncated division).
    if (!r.is_zero()) EXPECT_EQ(r.sign(), a.sign());
  }
}

TEST_P(BigIntRandomProperty, StringRoundTrip) {
  std::mt19937_64 rng{GetParam() + 99};
  std::uniform_int_distribution<std::int64_t> d{
      std::numeric_limits<std::int64_t>::min(),
      std::numeric_limits<std::int64_t>::max()};
  for (int iter = 0; iter < 100; ++iter) {
    BigInt a{d(rng)};
    BigInt b = a * a * a;  // force multi-limb
    EXPECT_EQ(BigInt{b.to_string()}, b);
  }
}

TEST_P(BigIntRandomProperty, KaratsubaMatchesSchoolbookViaIdentity) {
  // (a+b)^2 == a^2 + 2ab + b^2 on operands big enough to cross the
  // Karatsuba threshold.
  std::mt19937_64 rng{GetParam() + 7};
  auto random_wide = [&rng]() {
    BigInt acc{1};
    for (int i = 0; i < 40; ++i) {
      acc = acc.shifted_left(31);
      acc += BigInt{static_cast<std::int64_t>(rng() & 0x7fffffff)};
    }
    return acc;
  };
  for (int iter = 0; iter < 10; ++iter) {
    BigInt a = random_wide(), b = random_wide();
    BigInt lhs = (a + b) * (a + b);
    BigInt rhs = a * a + a * b + a * b + b * b;
    EXPECT_EQ(lhs, rhs);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BigIntRandomProperty,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

}  // namespace
}  // namespace spiv::exact
