// Tests for the exact validation engines (charpoly + PD checks).
#include <gtest/gtest.h>

#include <random>

#include "numeric/lyapunov.hpp"
#include "smt/charpoly.hpp"
#include "smt/validate.hpp"

namespace spiv::smt {
namespace {

using exact::RatMatrix;
using exact::Rational;

Rational q(std::int64_t n, std::int64_t d = 1) { return Rational{n, d}; }

const std::vector<Engine> kAllEngines = {
    Engine::Sylvester, Engine::SympyGauss, Engine::Ldlt, Engine::SmtZ3Style,
    Engine::SmtCvc5Style};

TEST(CharPoly, KnownSmallMatrices) {
  // M = [[2,1],[1,2]]: char poly = x^2 - 4x + 3.
  RatMatrix m{{q(2), q(1)}, {q(1), q(2)}};
  for (auto coeffs : {characteristic_polynomial_faddeev(m),
                      characteristic_polynomial_interpolation(m)}) {
    ASSERT_EQ(coeffs.size(), 3u);
    EXPECT_EQ(coeffs[2], q(1));
    EXPECT_EQ(coeffs[1], q(-4));
    EXPECT_EQ(coeffs[0], q(3));
  }
}

TEST(CharPoly, TwoAlgorithmsAgreeOnRandomMatrices) {
  std::mt19937_64 rng{21};
  std::uniform_int_distribution<std::int64_t> d{-5, 5};
  for (int iter = 0; iter < 10; ++iter) {
    const std::size_t n = 2 + iter % 5;
    RatMatrix m{n, n};
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = 0; j < n; ++j) m(i, j) = Rational{d(rng), 3};
    auto c1 = characteristic_polynomial_faddeev(m);
    auto c2 = characteristic_polynomial_interpolation(m);
    EXPECT_EQ(c1, c2);
    // p(lambda) evaluated at an eigenvalue-free integer equals
    // det(kI - M).
    RatMatrix shifted = -m;
    for (std::size_t i = 0; i < n; ++i) shifted(i, i) += q(7);
    EXPECT_EQ(evaluate_polynomial(c1, q(7)), shifted.determinant());
  }
}

TEST(CharPoly, DescartesSignConditions) {
  // diag(1, 2): roots {1, 2} positive.
  RatMatrix pd{{q(1), q(0)}, {q(0), q(2)}};
  EXPECT_TRUE(all_roots_positive_strict(characteristic_polynomial_faddeev(pd)));
  // diag(0, 2): nonnegative but not strict.
  RatMatrix psd{{q(0), q(0)}, {q(0), q(2)}};
  auto c = characteristic_polynomial_faddeev(psd);
  EXPECT_FALSE(all_roots_positive_strict(c));
  EXPECT_TRUE(all_roots_nonnegative(c));
  // diag(-1, 2): indefinite.
  RatMatrix indef{{q(-1), q(0)}, {q(0), q(2)}};
  auto ci = characteristic_polynomial_faddeev(indef);
  EXPECT_FALSE(all_roots_positive_strict(ci));
  EXPECT_FALSE(all_roots_nonnegative(ci));
}

TEST(CheckPd, AllEnginesAgreeOnKnownMatrices) {
  RatMatrix pd{{q(4), q(1), q(0)}, {q(1), q(3), q(1)}, {q(0), q(1), q(2)}};
  RatMatrix indef{{q(1), q(3)}, {q(3), q(1)}};
  RatMatrix psd{{q(1), q(1)}, {q(1), q(1)}};  // singular
  RatMatrix neg{{q(-2), q(0)}, {q(0), q(-3)}};
  for (Engine e : kAllEngines) {
    for (bool det : {false, true}) {
      CheckOptions opts;
      opts.det_encoding = det;
      EXPECT_EQ(check_positive_definite(pd, e, opts).outcome, Outcome::Valid)
          << to_string(e) << " det=" << det;
      EXPECT_EQ(check_positive_definite(indef, e, opts).outcome,
                Outcome::Invalid)
          << to_string(e) << " det=" << det;
      EXPECT_EQ(check_positive_definite(psd, e, opts).outcome,
                Outcome::Invalid)
          << to_string(e) << " det=" << det;
      EXPECT_EQ(check_positive_definite(neg, e, opts).outcome,
                Outcome::Invalid)
          << to_string(e) << " det=" << det;
    }
  }
}

TEST(CheckPd, EnginesAgreeOnRandomSymmetricMatrices) {
  std::mt19937_64 rng{31};
  std::uniform_int_distribution<std::int64_t> d{-4, 4};
  for (int iter = 0; iter < 25; ++iter) {
    const std::size_t n = 2 + iter % 5;
    RatMatrix m{n, n};
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = i; j < n; ++j) {
        m(i, j) = Rational{d(rng)};
        m(j, i) = m(i, j);
      }
    // Reference: Sylvester.
    const Outcome ref = check_positive_definite(m, Engine::Sylvester).outcome;
    for (Engine e : kAllEngines) {
      EXPECT_EQ(check_positive_definite(m, e).outcome, ref)
          << to_string(e) << " iter " << iter;
    }
  }
}

TEST(CheckPd, SmtEnginesProduceExactWitnesses) {
  RatMatrix indef{{q(1), q(3)}, {q(3), q(1)}};
  for (Engine e : {Engine::SmtZ3Style, Engine::SmtCvc5Style}) {
    Verdict v = check_positive_definite(indef, e);
    ASSERT_EQ(v.outcome, Outcome::Invalid);
    ASSERT_TRUE(v.witness.has_value()) << to_string(e);
    EXPECT_LE(indef.quad_form(*v.witness).sign(), 0);
  }
}

TEST(CheckPd, RespectsDeadline) {
  RatMatrix big{12, 12};
  for (std::size_t i = 0; i < 12; ++i) {
    big(i, i) = Rational{1000000007, 3};
    if (i + 1 < 12) {
      big(i, i + 1) = Rational{999999937, 13};
      big(i + 1, i) = big(i, i + 1);
    }
  }
  CheckOptions opts;
  opts.deadline = Deadline::after_seconds(-1.0);
  EXPECT_EQ(check_positive_definite(big, Engine::Sylvester, opts).outcome,
            Outcome::Timeout);
  EXPECT_EQ(check_positive_definite(big, Engine::SmtZ3Style, opts).outcome,
            Outcome::Timeout);
}

TEST(CheckPd, RejectsNonSymmetric) {
  RatMatrix ns{{q(1), q(2)}, {q(0), q(1)}};
  EXPECT_THROW(check_positive_definite(ns, Engine::Sylvester),
               std::invalid_argument);
}

TEST(ValidateLyapunov, AcceptsTrueLyapunovFunction) {
  // A = diag(-1,-2), P = diag(1/2, 1/4) solves A^T P + P A + I = 0.
  numeric::Matrix a = numeric::Matrix::diagonal(numeric::Vector{-1, -2});
  numeric::Matrix p = numeric::Matrix::diagonal(numeric::Vector{0.5, 0.25});
  for (Engine e : kAllEngines) {
    auto v = validate_lyapunov(a, p, e, 10);
    EXPECT_TRUE(v.valid()) << to_string(e);
  }
}

TEST(ValidateLyapunov, RejectsWrongCandidate) {
  numeric::Matrix a = numeric::Matrix::diagonal(numeric::Vector{-1, -2});
  // Indefinite "candidate".
  numeric::Matrix p{{1, 5}, {5, 1}};
  auto v = validate_lyapunov(a, p, Engine::Sylvester, 10);
  EXPECT_FALSE(v.valid());
  EXPECT_EQ(v.positivity.outcome, Outcome::Invalid);
  // Candidate for an unstable system fails the decrease condition.
  numeric::Matrix a_unstable = numeric::Matrix::diagonal(numeric::Vector{1, -2});
  numeric::Matrix p_id = numeric::Matrix::identity(2);
  auto v2 = validate_lyapunov(a_unstable, p_id, Engine::Sylvester, 10);
  EXPECT_EQ(v2.positivity.outcome, Outcome::Valid);
  EXPECT_EQ(v2.decrease.outcome, Outcome::Invalid);
}

TEST(ValidateLyapunov, RoundingDigitsMatter) {
  // A candidate that is PD but extremely close to singular: coarse
  // rounding can flip the verdict (the paper's robustness experiment).
  numeric::Matrix a = numeric::Matrix::diagonal(numeric::Vector{-1, -1});
  numeric::Matrix p{{1.0, 0.999999}, {0.999999, 1.0}};  // eigs {2e-6-ish, 2}
  auto fine = validate_lyapunov(a, p, Engine::Sylvester, 10);
  EXPECT_TRUE(fine.valid());
  auto coarse = validate_lyapunov(a, p, Engine::Sylvester, 4);
  // At 4 significant digits the off-diagonal rounds to 1.0 -> singular.
  EXPECT_FALSE(coarse.valid());
}

TEST(ValidateLyapunov, NumericLyapunovSolutionValidatesOnMidSizeSystem) {
  // End-to-end: Bartels–Stewart candidate on a random stable system passes
  // exact validation at 10 significant digits.
  std::mt19937_64 rng{47};
  std::normal_distribution<double> dist;
  const std::size_t n = 8;
  numeric::Matrix a{n, n};
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) a(i, j) = dist(rng);
  double shift = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    double row = 0.0;
    for (std::size_t j = 0; j < n; ++j) row += std::abs(a(i, j));
    shift = std::max(shift, row);
  }
  for (std::size_t i = 0; i < n; ++i) a(i, i) -= shift + 1.0;
  auto p = numeric::solve_lyapunov(a, numeric::Matrix::identity(n));
  ASSERT_TRUE(p.has_value());
  for (Engine e : {Engine::Sylvester, Engine::Ldlt, Engine::SympyGauss}) {
    auto v = validate_lyapunov(a, *p, e, 10);
    EXPECT_TRUE(v.valid()) << to_string(e);
  }
}

}  // namespace
}  // namespace spiv::smt
