// Integration tests for the experiment drivers (small configurations).
#include "core/experiments.hpp"

#include <gtest/gtest.h>

#include "core/format.hpp"

namespace spiv::core {
namespace {

ExperimentConfig small_config() {
  ExperimentConfig config;
  config.sizes = {3};
  config.synth_timeout_seconds = 20.0;
  config.validate_timeout_seconds = 20.0;
  return config;
}

TEST(Experiments, StrategiesMatchPaperRows) {
  auto strategies = paper_strategies();
  ASSERT_EQ(strategies.size(), 12u);
  EXPECT_EQ(strategies[0].name(), "eq-smt");
  EXPECT_EQ(strategies[1].name(), "eq-num");
  EXPECT_EQ(strategies[2].name(), "modal");
  EXPECT_EQ(strategies[3].name(), "LMI/newton-ac");
  EXPECT_EQ(strategies[11].name(), "LMIa+/short-ipm");
}

TEST(Experiments, Table1OnSize3) {
  Table1Result result = run_table1(small_config());
  ASSERT_EQ(result.cells.size(), 12u);
  // size-3 group: 2 model variants (float + integer) x 2 modes = 4 cases.
  for (std::size_t s = 0; s < result.cells.size(); ++s) {
    auto it = result.cells[s].find(3);
    ASSERT_NE(it, result.cells[s].end()) << result.strategies[s].name();
    EXPECT_EQ(it->second.cases, 4) << result.strategies[s].name();
    // Everything should be synthesized and validated at this size.
    EXPECT_EQ(it->second.valid, 4) << result.strategies[s].name();
  }
  EXPECT_EQ(result.candidates.size(), 12u * 4u);
  // Formatting round-trips without crashing and mentions the size.
  const std::string table = format_table1(result);
  EXPECT_NE(table.find("size 3"), std::string::npos);
  EXPECT_NE(table.find("eq-smt"), std::string::npos);
  const std::string csv = table1_csv(result);
  EXPECT_NE(csv.find("modal"), std::string::npos);
}

TEST(Experiments, Figure3AndRoundingOnSubset) {
  Table1Result table1 = run_table1(small_config());
  // Subsample candidates to keep the test fast.
  std::vector<CandidateRecord> subset;
  for (std::size_t i = 0; i < table1.candidates.size(); i += 8)
    subset.push_back(table1.candidates[i]);
  ASSERT_FALSE(subset.empty());

  ExperimentConfig config = small_config();
  Figure3Result fig3 = run_figure3(subset, config);
  EXPECT_EQ(fig3.engines.size(), 8u);
  EXPECT_EQ(fig3.samples.size(), subset.size() * fig3.engines.size());
  for (const auto& sample : fig3.samples)
    EXPECT_NE(sample.outcome, smt::Outcome::Timeout);
  EXPECT_FALSE(format_figure3(fig3).empty());
  EXPECT_FALSE(figure3_csv(fig3).empty());

  RoundingResult rounding = run_rounding_study(subset, config);
  ASSERT_EQ(rounding.digit_levels.size(), 3u);
  // At 10 digits everything valid; coarser roundings may lose some.
  for (const auto& [name, cells] : rounding.counts) {
    EXPECT_EQ(cells[0].invalid, 0) << name;
    EXPECT_GT(cells[0].valid, 0) << name;
  }
  EXPECT_FALSE(format_rounding(rounding).empty());
}

TEST(Experiments, Table2OnSize5) {
  ExperimentConfig config = small_config();
  Table2Result result = run_table2(config, {5});
  // 1 model x 2 modes x 11 strategies (eq-smt skipped).
  EXPECT_EQ(result.entries.size(), 2u * 11u);
  int certified = 0;
  for (const auto& e : result.entries)
    if (e.certified) {
      ++certified;
      EXPECT_GT(e.epsilon, 0.0);
      EXPECT_TRUE(e.optimal);
    }
  EXPECT_GT(certified, 11);  // the vast majority certifies
  EXPECT_FALSE(format_table2(result).empty());
  EXPECT_FALSE(table2_csv(result).empty());
}

TEST(Experiments, PiecewiseNegativeResultOnSize3) {
  ExperimentConfig config = small_config();
  PiecewiseResult result = run_piecewise(config);
  ASSERT_EQ(result.entries.size(), 2u);  // two encodings
  for (const auto& e : result.entries) {
    EXPECT_TRUE(e.candidate_found) << "encoding";
    EXPECT_FALSE(e.validation.surface);
  }
  EXPECT_FALSE(format_piecewise(result).empty());
}

}  // namespace
}  // namespace spiv::core
