// Tests for the exact (eq-smt) Lyapunov equation solver.
#include "exact/lyapunov_exact.hpp"

#include <gtest/gtest.h>

#include <random>

namespace spiv::exact {
namespace {

Rational q(std::int64_t n, std::int64_t d = 1) { return Rational{n, d}; }

TEST(VechIndex, OrderingAndBounds) {
  const std::size_t n = 4;
  // Column-stacked lower triangle: (0,0)(1,0)(2,0)(3,0)(1,1)(2,1)...
  EXPECT_EQ(vech_index(0, 0, n), 0u);
  EXPECT_EQ(vech_index(3, 0, n), 3u);
  EXPECT_EQ(vech_index(1, 1, n), 4u);
  EXPECT_EQ(vech_index(3, 3, n), 9u);
  EXPECT_EQ(vech_index(1, 3, n), vech_index(3, 1, n));  // symmetric access
}

TEST(Vech, RoundTrip) {
  RatMatrix m{{q(1), q(2), q(3)}, {q(2), q(4), q(5)}, {q(3), q(5), q(6)}};
  auto v = vech(m);
  ASSERT_EQ(v.size(), 6u);
  EXPECT_EQ(unvech(v, 3), m);
}

TEST(LyapunovExact, SolvesDiagonalSystem) {
  // A = diag(-1, -2): A^T P + P A + Q = 0 with Q = I gives P = diag(1/2, 1/4).
  RatMatrix a{{q(-1), q(0)}, {q(0), q(-2)}};
  auto p = solve_lyapunov_exact(a, RatMatrix::identity(2));
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ((*p)(0, 0), q(1, 2));
  EXPECT_EQ((*p)(1, 1), q(1, 4));
  EXPECT_EQ((*p)(0, 1), q(0));
  EXPECT_TRUE(lyapunov_residual(a, *p, RatMatrix::identity(2)) ==
              RatMatrix(2, 2));
}

TEST(LyapunovExact, ResidualIsExactlyZeroOnRandomStableSystems) {
  std::mt19937_64 rng{5};
  std::uniform_int_distribution<std::int64_t> d{-4, 4};
  for (int iter = 0; iter < 10; ++iter) {
    const std::size_t n = 3 + iter % 3;
    // Diagonally dominant negative matrices are Hurwitz.
    RatMatrix a{n, n};
    for (std::size_t i = 0; i < n; ++i) {
      Rational row_sum;
      for (std::size_t j = 0; j < n; ++j) {
        if (i == j) continue;
        a(i, j) = Rational{d(rng)};
        row_sum += a(i, j).abs();
      }
      a(i, i) = -(row_sum + Rational{1 + static_cast<std::int64_t>(iter)});
    }
    RatMatrix queue = RatMatrix::identity(n);
    auto p = solve_lyapunov_exact(a, queue);
    ASSERT_TRUE(p.has_value());
    EXPECT_TRUE(p->is_symmetric());
    EXPECT_EQ(lyapunov_residual(a, *p, queue), RatMatrix(n, n));
    // P of a Hurwitz system with Q > 0 must be positive definite:
    // all leading principal minors positive (Sylvester).
    for (const auto& minor : p->leading_principal_minors())
      EXPECT_GT(minor, q(0));
  }
}

TEST(LyapunovExact, SingularOperatorReturnsNullopt) {
  // A with eigenvalues {1, -1}: A and -A share an eigenvalue, so the
  // Lyapunov operator is singular.
  RatMatrix a{{q(1), q(0)}, {q(0), q(-1)}};
  EXPECT_FALSE(solve_lyapunov_exact(a, RatMatrix::identity(2)).has_value());
}

TEST(LyapunovExact, RejectsBadShapes) {
  RatMatrix a{2, 3};
  EXPECT_THROW(solve_lyapunov_exact(a, RatMatrix::identity(2)),
               std::invalid_argument);
  RatMatrix nonsym{{q(0), q(1)}, {q(0), q(0)}};
  RatMatrix good_a{{q(-1), q(0)}, {q(0), q(-1)}};
  EXPECT_THROW(solve_lyapunov_exact(good_a, nonsym), std::invalid_argument);
}

TEST(LyapunovExact, HonorsDeadline) {
  // An already-expired deadline must abort the solve.
  RatMatrix a{{q(-3), q(1)}, {q(0), q(-2)}};
  Deadline expired = Deadline::after_seconds(-1.0);
  EXPECT_THROW(solve_lyapunov_exact(a, RatMatrix::identity(2), expired),
               TimeoutError);
}

TEST(LyapunovExact, BatchedMultiQMatchesSingleSolves) {
  std::mt19937_64 rng{17};
  std::uniform_int_distribution<std::int64_t> d{-4, 4};
  const std::size_t n = 5;
  RatMatrix a{n, n};
  for (std::size_t i = 0; i < n; ++i) {
    Rational row_sum;
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      a(i, j) = Rational{d(rng)};
      row_sum += a(i, j).abs();
    }
    a(i, i) = -(row_sum + Rational{3});
  }
  // Three RHS: identity, a scaled identity, and a random symmetric Q.
  RatMatrix q2 = RatMatrix::identity(n) * Rational{7, 3};
  RatMatrix q3{n, n};
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j <= i; ++j) {
      q3(i, j) = Rational{d(rng)};
      q3(j, i) = q3(i, j);
    }
  for (std::size_t i = 0; i < n; ++i) q3(i, i) += Rational{20};
  const std::vector<RatMatrix> qs{RatMatrix::identity(n), q2, q3};
  auto batched = solve_lyapunov_exact_multi(a, qs);
  ASSERT_EQ(batched.size(), qs.size());
  for (std::size_t c = 0; c < qs.size(); ++c) {
    ASSERT_TRUE(batched[c].has_value()) << c;
    auto single = solve_lyapunov_exact(a, qs[c]);
    ASSERT_TRUE(single.has_value()) << c;
    EXPECT_EQ(*batched[c], *single) << c;
    EXPECT_EQ(lyapunov_residual(a, *batched[c], qs[c]), RatMatrix(n, n)) << c;
  }
}

TEST(LyapunovExact, MultiHandlesEmptyBatchAndSingularOperator) {
  RatMatrix good{{q(-1), q(0)}, {q(0), q(-2)}};
  EXPECT_TRUE(solve_lyapunov_exact_multi(good, {}).empty());
  RatMatrix sing{{q(1), q(0)}, {q(0), q(-1)}};  // A and -A share an eigenvalue
  auto ps = solve_lyapunov_exact_multi(
      sing, {RatMatrix::identity(2), RatMatrix::identity(2)});
  ASSERT_EQ(ps.size(), 2u);
  EXPECT_FALSE(ps[0].has_value());
  EXPECT_FALSE(ps[1].has_value());
}

TEST(LyapunovOperator, MatchesDirectComputationOnBasis) {
  RatMatrix a{{q(-2), q(1)}, {q(0), q(-1)}};
  RatMatrix op = lyapunov_operator_vech(a);
  ASSERT_EQ(op.rows(), 3u);
  // Apply operator to vech(P) for a random symmetric P and compare with
  // direct A^T P + P A.
  RatMatrix p{{q(3), q(-1)}, {q(-1), q(5)}};
  auto image = op.apply(vech(p));
  RatMatrix expected = a.transposed() * p + p * a;
  EXPECT_EQ(unvech(image, 2), expected);
}

TEST(LyapunovOperator, SparseAssemblyMatchesDefinitionOnRandomSystems) {
  // The operator is assembled from the 4-term closed form per basis matrix
  // (not dense products); check it against the defining identity
  // op * vech(P) == vech(A^T P + P A) for generic A and P.
  std::mt19937_64 rng{23};
  std::uniform_int_distribution<std::int64_t> d{-9, 9};
  std::uniform_int_distribution<std::int64_t> den{1, 5};
  for (std::size_t n : {std::size_t{3}, std::size_t{6}, std::size_t{9}}) {
    RatMatrix a{n, n};
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = 0; j < n; ++j) a(i, j) = Rational{d(rng), den(rng)};
    RatMatrix p{n, n};
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = 0; j <= i; ++j) {
        p(i, j) = Rational{d(rng), den(rng)};
        p(j, i) = p(i, j);
      }
    RatMatrix op = lyapunov_operator_vech(a);
    EXPECT_EQ(unvech(op.apply(vech(p)), n), a.transposed() * p + p * a)
        << "n=" << n;
  }
}

}  // namespace
}  // namespace spiv::exact
