// Tests for robust region synthesis and reference robustness (paper §VI-C).
#include "robust/region.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "lyapunov/synthesis.hpp"
#include "model/engine.hpp"
#include "model/reduction.hpp"

namespace spiv::robust {
namespace {

using numeric::Matrix;
using numeric::Vector;

/// A hand-analyzable 1-state plant under PI control: the closed loop is a
/// 2-state PWA system with the engine's guard structure.
model::PwaSystem make_toy_system(Vector* r_out) {
  model::StateSpace plant;
  plant.a = Matrix{{-1}};
  plant.b = Matrix{{1}};
  plant.c = Matrix{{1}};
  model::SwitchedPiController ctrl;
  ctrl.gains = {model::PiGains{Matrix{{2.0}}, Matrix{{3.0}}},
                model::PiGains{Matrix{{1.0}}, Matrix{{1.0}}}};
  model::OutputGuard g0{Vector{1}, 1.0, Vector{-1}, true};   // y > r0 - 1
  model::OutputGuard g1{Vector{-1}, -1.0, Vector{1}, false}; // y <= r0 - 1
  ctrl.regions = {{g0}, {g1}};
  Vector r{5.0};
  if (r_out) *r_out = r;
  return model::close_loop(plant, ctrl, r);
}

TEST(EllipsoidVolume, MatchesClosedForms) {
  // Unit disk: pi; radius-2 disk: 4 pi.
  EXPECT_NEAR(ellipsoid_volume(Matrix::identity(2), 1.0), M_PI, 1e-10);
  EXPECT_NEAR(ellipsoid_volume(Matrix::identity(2), 4.0), 4.0 * M_PI, 1e-10);
  // Unit ball in 3D: 4/3 pi; ellipsoid with P = diag(1, 4): area pi/2.
  EXPECT_NEAR(ellipsoid_volume(Matrix::identity(3), 1.0), 4.0 / 3.0 * M_PI,
              1e-10);
  EXPECT_NEAR(ellipsoid_volume(Matrix::diagonal(Vector{1, 4}), 1.0),
              M_PI / 2.0, 1e-10);
  EXPECT_EQ(ellipsoid_volume(Matrix::identity(2), -1.0), 0.0);
}

TEST(RobustRegion, ToySystemCertifiedAndOptimal) {
  Vector r;
  model::PwaSystem sys = make_toy_system(&r);
  // Only mode 0 has its equilibrium inside its region in the SISO toy
  // (both modes track the same output, so both equilibrate at y = r0).
  for (std::size_t mode : {std::size_t{0}}) {
    auto cand = lyap::synthesize(sys.mode(mode).a, lyap::Method::EqNum);
    ASSERT_TRUE(cand.has_value());
    RobustRegion region = synthesize_region(sys, mode, cand->p, r);
    EXPECT_TRUE(region.certified) << "mode " << mode;
    EXPECT_TRUE(region.optimal) << "mode " << mode;
    if (!region.flow_constant_on_surface) {
      EXPECT_GT(region.k, 0.0);
      EXPECT_LT(region.k, region.k_supremum);
      EXPECT_GT(region.volume, 0.0);
    }
    const double eps = reference_robustness_epsilon(sys, mode, cand->p, r, region);
    EXPECT_GT(eps, 0.0) << "mode " << mode;
  }
}

TEST(RobustRegion, SublevelSetStaysInsideRegion) {
  // Sample points with V <= k on the switching surface side: each must
  // either satisfy V > k or lie inside the region (empirical check of the
  // set inclusion behind condition (24)).
  Vector r;
  model::PwaSystem sys = make_toy_system(&r);
  auto cand = lyap::synthesize(sys.mode(0).a, lyap::Method::EqNum);
  ASSERT_TRUE(cand.has_value());
  RobustRegion region = synthesize_region(sys, 0, cand->p, r);
  ASSERT_TRUE(region.certified);
  const Vector w_eq = sys.mode(0).equilibrium(r);
  const model::HalfSpace& hs = sys.mode(0).region[0];
  // Walk along the surface and verify: points on the surface with V <= k
  // have inward flow g.(Aw + b) > 0.
  const Vector drift = sys.mode(0).drift(r);
  int tested = 0;
  for (double t = -50.0; t <= 50.0; t += 0.25) {
    // Surface in 2D: g.w + h = 0 with g = (c, 0) here; parameterize the
    // free (second) coordinate by t around the equilibrium.
    Vector w(2);
    w[0] = -hs.h / hs.g[0];
    w[1] = w_eq[1] + t;
    Vector x{w[0] - w_eq[0], w[1] - w_eq[1]};
    const double v = cand->p.quad_form(x);
    if (v > region.k) continue;
    ++tested;
    Vector flow = sys.mode(0).a.apply(w);
    for (std::size_t i = 0; i < 2; ++i) flow[i] += drift[i];
    EXPECT_GT(numeric::dot(hs.g, flow), 0.0) << "t=" << t;
  }
  EXPECT_GT(tested, 0);  // the sublevel set must actually reach the surface
}

TEST(RobustRegion, EngineReducedModelBothModes) {
  model::StateSpace plant =
      model::balanced_truncation(model::make_engine_model(), 5).sys;
  model::SwitchedPiController ctrl = model::make_engine_controller();
  Vector r = model::make_engine_references(plant);
  model::PwaSystem sys = model::close_loop(plant, ctrl, r);
  for (std::size_t mode : {std::size_t{0}, std::size_t{1}}) {
    auto cand = lyap::synthesize(sys.mode(mode).a, lyap::Method::Lmi);
    ASSERT_TRUE(cand.has_value()) << "mode " << mode;
    RobustRegion region = synthesize_region(sys, mode, cand->p, r);
    EXPECT_TRUE(region.certified) << "mode " << mode;
    EXPECT_TRUE(region.optimal) << "mode " << mode;
    EXPECT_GT(region.seconds, 0.0);
    const double eps = reference_robustness_epsilon(sys, mode, cand->p, r, region);
    EXPECT_GT(eps, 0.0);
    EXPECT_LT(eps, 1e3);
  }
}

TEST(RobustRegion, RejectsIndefiniteCandidate) {
  Vector r;
  model::PwaSystem sys = make_toy_system(&r);
  Matrix bad{{1, 5}, {5, 1}};  // indefinite
  EXPECT_THROW(synthesize_region(sys, 0, bad, r), std::runtime_error);
}

TEST(RobustRegion, HonorsDeadline) {
  Vector r;
  model::PwaSystem sys = make_toy_system(&r);
  auto cand = lyap::synthesize(sys.mode(0).a, lyap::Method::EqNum);
  ASSERT_TRUE(cand.has_value());
  RegionOptions options;
  options.deadline = Deadline::after_seconds(-1.0);
  EXPECT_THROW(synthesize_region(sys, 0, cand->p, r, options), TimeoutError);
}

TEST(RobustRegion, StateRobustnessRadiusIsBallInsideW) {
  Vector r;
  model::PwaSystem sys = make_toy_system(&r);
  auto cand = lyap::synthesize(sys.mode(0).a, lyap::Method::EqNum);
  ASSERT_TRUE(cand.has_value());
  RobustRegion region = synthesize_region(sys, 0, cand->p, r);
  ASSERT_TRUE(region.certified);
  const double alpha = state_robustness_radius(sys, 0, cand->p, r, region);
  ASSERT_GT(alpha, 0.0);
  // Every point at distance < alpha from the equilibrium lies in W:
  // inside the region and with V <= k.
  const Vector w_eq = sys.mode(0).equilibrium(r);
  auto eig = numeric::symmetric_eigen(cand->p.symmetrized());
  for (double angle = 0.0; angle < 6.28; angle += 0.3) {
    Vector w{w_eq[0] + 0.999 * alpha * std::cos(angle),
             w_eq[1] + 0.999 * alpha * std::sin(angle)};
    EXPECT_TRUE(sys.mode(0).contains(w)) << "angle " << angle;
    Vector x{w[0] - w_eq[0], w[1] - w_eq[1]};
    EXPECT_LE(cand->p.quad_form(x), region.k * (1.0 + 1e-9));
  }
}

}  // namespace
}  // namespace spiv::robust
