// Tests for the parallel experiment harness: SPIV_JOBS resolution, the
// work-stealing JobPool, the determinism contract of run_table1, and
// cooperative cancellation of the exact kernels.
#include "core/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <thread>
#include <vector>

#include "core/experiments.hpp"
#include "exact/lyapunov_exact.hpp"
#include "exact/timeout.hpp"

namespace spiv::core {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

// RAII guard so SPIV_JOBS changes cannot leak into other tests.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    if (old) saved_ = old;
    if (value)
      ::setenv(name, value, 1);
    else
      ::unsetenv(name);
  }
  ~ScopedEnv() {
    if (saved_.empty())
      ::unsetenv(name_);
    else
      ::setenv(name_, saved_.c_str(), 1);
  }

 private:
  const char* name_;
  std::string saved_;
};

TEST(ResolveJobs, ExplicitRequestWins) {
  ScopedEnv env{"SPIV_JOBS", "3"};
  EXPECT_EQ(resolve_jobs(5), 5u);
  EXPECT_EQ(resolve_jobs(1), 1u);
}

TEST(ResolveJobs, ReadsEnvironment) {
  ScopedEnv env{"SPIV_JOBS", "3"};
  EXPECT_EQ(resolve_jobs(), 3u);
}

TEST(ResolveJobs, FallsBackOnBadOrMissingEnv) {
  {
    ScopedEnv env{"SPIV_JOBS", nullptr};
    EXPECT_GE(resolve_jobs(), 1u);
  }
  {
    ScopedEnv env{"SPIV_JOBS", "0"};
    EXPECT_GE(resolve_jobs(), 1u);
  }
  {
    ScopedEnv env{"SPIV_JOBS", "not-a-number"};
    EXPECT_GE(resolve_jobs(), 1u);
  }
}

TEST(ResolveJobs, RejectsPartialParses) {
  // strtol used to stop at the first non-digit and hand back 4.
  const std::size_t fallback = [] {
    ScopedEnv env{"SPIV_JOBS", nullptr};
    return resolve_jobs();
  }();
  for (const char* bad : {"4abc", "2 2", "3.5", "+", "-7", "0x10"}) {
    ScopedEnv env{"SPIV_JOBS", bad};
    EXPECT_EQ(resolve_jobs(), fallback) << bad;
  }
}

TEST(ParseJobs, RequiresFullPositiveInteger) {
  EXPECT_EQ(parse_jobs("4").value_or(0), 4u);
  EXPECT_EQ(parse_jobs("1").value_or(0), 1u);
  for (const char* bad :
       {"4abc", "2 2", "3.5", "+", "-1", "-7", "0", "", "0x10", "abc"})
    EXPECT_FALSE(parse_jobs(bad).has_value()) << bad;
  EXPECT_FALSE(parse_jobs(nullptr).has_value());
}

TEST(ResolveJobs, CapsExplicitRequests) {
  // A huge explicit request (e.g. `--jobs -1` cast to size_t) must clamp to
  // the 8x-hardware cap instead of spawning that many threads.
  const unsigned hw_raw = std::thread::hardware_concurrency();
  const std::size_t cap = 8 * (hw_raw > 0 ? hw_raw : 1);
  EXPECT_EQ(resolve_jobs(cap), cap);
  EXPECT_EQ(resolve_jobs(cap + 1), cap);
  EXPECT_EQ(resolve_jobs(static_cast<std::size_t>(-1)), cap);
}

TEST(ResolveJobs, CapsAbsurdValues) {
  const unsigned hw_raw = std::thread::hardware_concurrency();
  const std::size_t cap = 8 * (hw_raw > 0 ? hw_raw : 1);
  {
    ScopedEnv env{"SPIV_JOBS", "1000000"};
    EXPECT_EQ(resolve_jobs(), cap);
  }
  {
    ScopedEnv env{"SPIV_JOBS", "99999999999999999999"};  // out of long range
    const std::size_t fallback = [] {
      ScopedEnv inner{"SPIV_JOBS", nullptr};
      return resolve_jobs();
    }();
    EXPECT_EQ(resolve_jobs(), fallback);
  }
  {
    // In-range values still pass through untouched.
    const std::string cap_str = std::to_string(cap);
    ScopedEnv env{"SPIV_JOBS", cap_str.c_str()};
    EXPECT_EQ(resolve_jobs(), cap);
  }
}

TEST(JobPool, RunsEveryJobAcrossThreads) {
  constexpr std::size_t kJobs = 200;
  std::vector<int> hits(kJobs, 0);
  std::atomic<int> done{0};
  {
    JobPool pool{4};
    EXPECT_EQ(pool.thread_count(), 4u);
    for (std::size_t i = 0; i < kJobs; ++i)
      pool.submit([&hits, &done, i] {
        hits[i] += 1;
        done.fetch_add(1, std::memory_order_relaxed);
      });
    pool.wait_idle();
    EXPECT_EQ(done.load(), static_cast<int>(kJobs));
  }
  for (std::size_t i = 0; i < kJobs; ++i) EXPECT_EQ(hits[i], 1) << i;
}

TEST(JobPool, WaitIdleCanBeReusedAfterMoreSubmissions) {
  JobPool pool{2};
  std::atomic<int> done{0};
  pool.submit([&done] { done.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(done.load(), 1);
  for (int i = 0; i < 10; ++i) pool.submit([&done] { done.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(done.load(), 11);
}

TEST(ForEachJob, CoversEveryIndexOnceSerialAndParallel) {
  for (std::size_t jobs : {std::size_t{1}, std::size_t{4}}) {
    std::vector<int> hits(100, 0);
    for_each_job(hits.size(), jobs,
                 [&hits](std::size_t i, const CancelToken& token) {
                   EXPECT_FALSE(token.cancelled());
                   hits[i] += 1;
                 });
    for (std::size_t i = 0; i < hits.size(); ++i)
      EXPECT_EQ(hits[i], 1) << "jobs=" << jobs << " i=" << i;
  }
}

TEST(ForEachBlock, PartitionsTheRangeExactlyOnce) {
  for (std::size_t jobs : {std::size_t{1}, std::size_t{3}, std::size_t{8}}) {
    for (std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{5},
                          std::size_t{7}, std::size_t{100}}) {
      std::vector<int> hits(n, 0);
      std::atomic<std::size_t> blocks{0};
      for_each_block(n, jobs,
                     [&](std::size_t begin, std::size_t end,
                         const CancelToken& token) {
                       EXPECT_FALSE(token.cancelled());
                       EXPECT_LT(begin, end);
                       blocks.fetch_add(1);
                       for (std::size_t i = begin; i < end; ++i) hits[i] += 1;
                     });
      for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(hits[i], 1) << "jobs=" << jobs << " n=" << n << " i=" << i;
      EXPECT_LE(blocks.load(), jobs) << "jobs=" << jobs << " n=" << n;
      if (n > 0) EXPECT_GE(blocks.load(), 1u);
    }
  }
}

// ------------------------------------------------------------ determinism

ExperimentConfig size3_config(std::size_t jobs) {
  ExperimentConfig config;
  config.sizes = {3};
  config.synth_timeout_seconds = 20.0;
  config.validate_timeout_seconds = 20.0;
  config.jobs = jobs;
  return config;
}

// The tentpole's core guarantee: everything except wall-clock timings is
// bit-identical between the serial harness and a 4-worker pool.
TEST(ParallelDeterminism, Table1IdenticalAcrossJobCounts) {
  const Table1Result serial = run_table1(size3_config(1));
  const Table1Result parallel = run_table1(size3_config(4));

  ASSERT_EQ(serial.strategies.size(), parallel.strategies.size());
  ASSERT_EQ(serial.cells.size(), parallel.cells.size());
  for (std::size_t s = 0; s < serial.cells.size(); ++s) {
    ASSERT_EQ(serial.cells[s].size(), parallel.cells[s].size())
        << serial.strategies[s].name();
    for (const auto& [size, cell] : serial.cells[s]) {
      auto it = parallel.cells[s].find(size);
      ASSERT_NE(it, parallel.cells[s].end());
      EXPECT_EQ(cell.cases, it->second.cases) << serial.strategies[s].name();
      EXPECT_EQ(cell.synthesized, it->second.synthesized)
          << serial.strategies[s].name();
      EXPECT_EQ(cell.valid, it->second.valid) << serial.strategies[s].name();
      EXPECT_EQ(cell.timeouts, it->second.timeouts)
          << serial.strategies[s].name();
    }
  }

  ASSERT_EQ(serial.candidates.size(), parallel.candidates.size());
  for (std::size_t i = 0; i < serial.candidates.size(); ++i) {
    const CandidateRecord& a = serial.candidates[i];
    const CandidateRecord& b = parallel.candidates[i];
    EXPECT_EQ(a.model_name, b.model_name) << i;
    EXPECT_EQ(a.size, b.size) << i;
    EXPECT_EQ(a.integer_model, b.integer_model) << i;
    EXPECT_EQ(a.mode, b.mode) << i;
    EXPECT_EQ(a.strategy.name(), b.strategy.name()) << i;
    // Bit-identical matrices: each job runs the same serial computation on
    // its own case, so scheduling cannot change a single double.
    EXPECT_EQ(a.a.data(), b.a.data()) << i;
    EXPECT_EQ(a.p.data(), b.p.data()) << i;
  }
}

// ----------------------------------------------------------- cancellation

// A dense well-conditioned rational matrix whose exact Lyapunov solve is
// deliberately slow (n=14 runs for tens of seconds unrestricted; the
// coefficient growth of exact elimination is the paper's point about
// eq-smt at sizes 15/18).
exact::RatMatrix slow_stable_matrix(std::size_t n) {
  exact::RatMatrix a{n, n};
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      a(i, j) = exact::Rational{static_cast<std::int64_t>(i * j + i + 1),
                                static_cast<std::int64_t>(i + 2 * j + 3)};
  for (std::size_t i = 0; i < n; ++i)
    a(i, i) -= exact::Rational{static_cast<std::int64_t>(10 * n), 1};
  return a;
}

TEST(Cancellation, SlowExactSolveTimesOutWithinTwiceDeadline) {
  const exact::RatMatrix a = slow_stable_matrix(14);
  const exact::RatMatrix q = exact::RatMatrix::identity(14);
  const double budget = 0.5;
  const auto t0 = Clock::now();
  EXPECT_THROW(
      {
        auto p = exact::solve_lyapunov_exact(a, q,
                                             Deadline::after_seconds(budget));
        (void)p;
      },
      TimeoutError);
  const double elapsed = seconds_since(t0);
  EXPECT_GE(elapsed, budget * 0.5);  // it did run up to the deadline
  EXPECT_LE(elapsed, budget * 2.0)
      << "deadline polling is too coarse: " << elapsed << " s";
}

TEST(Cancellation, TokenCancelledFromAnotherThreadStopsSolve) {
  const exact::RatMatrix a = slow_stable_matrix(14);
  const exact::RatMatrix q = exact::RatMatrix::identity(14);
  CancelToken token;
  // No wall-clock budget at all: only the token can stop this solve.
  const Deadline deadline = Deadline{}.with_token(token);
  const auto t0 = Clock::now();
  std::thread canceller([&token] {
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    token.cancel();
  });
  EXPECT_THROW(
      {
        auto p = exact::solve_lyapunov_exact(a, q, deadline);
        (void)p;
      },
      TimeoutError);
  canceller.join();
  const double elapsed = seconds_since(t0);
  EXPECT_LE(elapsed, 2.0) << "cancel took " << elapsed
                          << " s to be observed";
}

TEST(Cancellation, PoolCancelAllPreemptsQueuedDeadlines) {
  JobPool pool{2};
  std::atomic<int> timeouts{0};
  for (int i = 0; i < 2; ++i)
    pool.submit([&pool, &timeouts] {
      const exact::RatMatrix a = slow_stable_matrix(14);
      const exact::RatMatrix q = exact::RatMatrix::identity(14);
      try {
        auto p = exact::solve_lyapunov_exact(
            a, q, Deadline::after_seconds(60.0, pool.token()));
        (void)p;
      } catch (const TimeoutError&) {
        timeouts.fetch_add(1, std::memory_order_relaxed);
      }
    });
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  pool.cancel_all();
  pool.wait_idle();
  EXPECT_EQ(timeouts.load(), 2);
}

}  // namespace
}  // namespace spiv::core
