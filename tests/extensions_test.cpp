// Tests for the beyond-the-paper extensions: common Lyapunov functions,
// exponential certificates, empirical region stability.
#include "lyapunov/extensions.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "model/engine.hpp"
#include "model/reduction.hpp"
#include "numeric/eigen.hpp"

namespace spiv::lyap {
namespace {

using numeric::Matrix;
using numeric::Vector;

TEST(CommonLyapunov, ExistsForCommutingStableModes) {
  // Two diagonal (hence commuting) Hurwitz matrices always share a
  // quadratic Lyapunov function.
  Matrix a0 = Matrix::diagonal(Vector{-1, -3});
  Matrix a1 = Matrix::diagonal(Vector{-2, -0.5});
  auto c = synthesize_common({a0, a1});
  ASSERT_TRUE(c.has_value());
  EXPECT_TRUE(validate_common({a0, a1}, c->p));
}

TEST(CommonLyapunov, InfeasibleWhenOneModeIsUnstable) {
  Matrix a0 = Matrix::diagonal(Vector{-1, -3});
  Matrix a1 = Matrix::diagonal(Vector{-2, 0.5});
  SynthesisOptions options;
  options.deadline = Deadline::after_seconds(10);
  auto c = synthesize_common({a0, a1}, options);
  if (c.has_value()) EXPECT_FALSE(validate_common({a0, a1}, c->p));
}

TEST(CommonLyapunov, EngineModesShareAQuadraticCertificate) {
  // The two closed-loop modes of the (reduced) engine: a common quadratic
  // Lyapunov function strengthens the paper's per-mode analysis.
  model::StateSpace plant =
      model::balanced_truncation(model::make_engine_model(), 5).sys;
  Matrix a0 = model::close_loop_single_mode(plant, model::engine_gains_mode0()).a;
  Matrix a1 = model::close_loop_single_mode(plant, model::engine_gains_mode1()).a;
  auto c = synthesize_common({a0, a1});
  ASSERT_TRUE(c.has_value());
  EXPECT_TRUE(validate_common({a0, a1}, c->p));
}

TEST(CommonLyapunov, RejectsEmptyAndMismatched) {
  EXPECT_THROW(synthesize_common({}), std::invalid_argument);
  EXPECT_THROW(synthesize_common({Matrix::identity(2), Matrix::identity(3)}),
               std::invalid_argument);
}

TEST(ExponentialCertificate, MatchesClosedFormOnDiagonalSystem) {
  // A = diag(-1, -2), P = I: S = diag(2, 4); S - alpha P >= 0 iff
  // alpha <= 2.  The certified alpha must approach 2 from below.
  Matrix a = Matrix::diagonal(Vector{-1, -2});
  Matrix p = Matrix::identity(2);
  auto cert = exponential_certificate(a, p, 10, 1e-4);
  ASSERT_TRUE(cert.valid);
  EXPECT_GT(cert.alpha, 1.99);
  EXPECT_LE(cert.alpha, 2.0);
  EXPECT_NEAR(cert.settling_time, std::log(1e6) / cert.alpha, 1e-9);
}

TEST(ExponentialCertificate, ZeroForNonLyapunovCandidate) {
  Matrix a = Matrix::diagonal(Vector{1.0, -2});  // unstable
  Matrix p = Matrix::identity(2);
  auto cert = exponential_certificate(a, p);
  EXPECT_FALSE(cert.valid);
  EXPECT_EQ(cert.alpha, 0.0);
  EXPECT_TRUE(std::isinf(cert.settling_time));
}

TEST(ExponentialCertificate, EngineModeHasPositiveDecayRate) {
  model::StateSpace plant =
      model::balanced_truncation(model::make_engine_model(), 3).sys;
  Matrix a = model::close_loop_single_mode(plant, model::engine_gains_mode0()).a;
  SynthesisOptions options;
  options.alpha = 0.1;
  auto cand = synthesize(a, Method::LmiAlpha, options);
  ASSERT_TRUE(cand.has_value());
  auto cert = exponential_certificate(a, cand->p);
  ASSERT_TRUE(cert.valid);
  // LMIa guaranteed at least alpha = 0.1; the certificate can only improve.
  EXPECT_GE(cert.alpha, 0.1 * 0.9);
  EXPECT_LT(cert.settling_time, 1e4);
}

TEST(RegionStability, SwitchedEngineTrajectoriesAreTrapped) {
  model::StateSpace plant =
      model::balanced_truncation(model::make_engine_model(), 3).sys;
  model::SwitchedPiController ctrl = model::make_engine_controller();
  Vector r = model::make_engine_references(plant);
  model::PwaSystem sys = model::close_loop(plant, ctrl, r);
  auto report = check_region_stability(sys, r, /*amplitude=*/2.0,
                                       /*radius=*/0.05, /*samples=*/8,
                                       /*t_end=*/400.0);
  EXPECT_EQ(report.samples, 8);
  EXPECT_TRUE(report.all_trapped()) << report.trapped << "/" << report.samples;
}

}  // namespace
}  // namespace spiv::lyap
