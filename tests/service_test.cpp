// Tests for the spiv-serve protocol: parse errors, cold-then-warm verify
// through the certificate store, and the guarantee that a warm request is
// answered from the store without invoking any synthesis kernel.
#include "service/service.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <mutex>
#include <sstream>
#include <thread>
#include <vector>

#include "model/reduction.hpp"
#include "model/serialize.hpp"

namespace spiv::service {
namespace {

namespace fs = std::filesystem;

class ServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("spiv_service_test_" + std::to_string(::getpid()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    // Export the size-3 and size-5 benchmark cases once.
    for (const auto& bm : model::benchmark_family())
      if (bm.name == "size3" || bm.name == "size5") {
        std::ofstream out{case_path(bm.name)};
        model::write_case(out, bm);
      }
    ASSERT_TRUE(fs::exists(case_path()));
    ASSERT_TRUE(fs::exists(case_path("size5")));
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  [[nodiscard]] std::string case_path(const std::string& name = "size3") const {
    return (dir_ / (name + ".spivcase")).string();
  }
  [[nodiscard]] std::string cache_path() const {
    return (dir_ / "cache").string();
  }

  /// Drive the protocol and return the full response transcript.
  std::string drive(const std::string& script, store::CertStore* store,
                    int* errors = nullptr) {
    ServeOptions options;
    options.jobs = 2;
    options.default_timeout_seconds = 30.0;
    options.store = store;
    return drive_with(options, script, errors);
  }

  /// Same, with caller-supplied options (admission bounds, handler hooks).
  std::string drive_with(const ServeOptions& options,
                         const std::string& script, int* errors = nullptr) {
    std::istringstream in{script};
    std::ostringstream out;
    const int e = serve(in, out, options);
    if (errors) *errors = e;
    return out.str();
  }

  /// The `result id=N ...` line of the transcript.
  static std::string result_line(const std::string& transcript,
                                 std::size_t id) {
    std::istringstream is{transcript};
    const std::string prefix = "result id=" + std::to_string(id) + " ";
    std::string line;
    while (std::getline(is, line))
      if (line.rfind(prefix, 0) == 0) return line;
    return "";
  }

  /// Numeric `name=value` field of a result line; -1 when absent.
  static double field_double(const std::string& line, const std::string& name) {
    const std::size_t pos = line.find(" " + name + "=");
    if (pos == std::string::npos) return -1.0;
    return std::stod(line.substr(pos + name.size() + 2));
  }

  /// Value of the exposition sample named exactly `name`; -1 when absent.
  static double sample_value(const std::string& exposition,
                             const std::string& name) {
    std::istringstream is{exposition};
    std::string line;
    while (std::getline(is, line))
      if (line.rfind(name + " ", 0) == 0)
        return std::stod(line.substr(name.size() + 1));
    return -1.0;
  }

  fs::path dir_;
};

TEST_F(ServiceTest, RejectsMalformedRequests) {
  int errors = 0;
  const std::string transcript = drive(
      "verify\n"
      "verify missing.case 0 no-such-method - sylvester 10\n"
      "verify missing.case 0 LMIa no-such-backend sylvester 10\n"
      "verify missing.case 0 LMIa - no-such-engine 10\n"
      "frobnicate\n"
      "quit\n",
      nullptr, &errors);
  EXPECT_EQ(errors, 5);
  EXPECT_NE(result_line(transcript, 1).find("status=error"), std::string::npos);
  EXPECT_NE(result_line(transcript, 2).find("unknown method"),
            std::string::npos);
  EXPECT_NE(result_line(transcript, 3).find("unknown backend"),
            std::string::npos);
  EXPECT_NE(result_line(transcript, 4).find("unknown engine"),
            std::string::npos);
  EXPECT_NE(transcript.find("error unknown command"), std::string::npos);
}

TEST_F(ServiceTest, ReportsMissingCaseFileAsError) {
  int errors = 0;
  const std::string transcript = drive(
      "verify /nonexistent/case 0 LMIa newton-ac sylvester 10\nquit\n",
      nullptr, &errors);
  EXPECT_EQ(errors, 1);
  const std::string line = result_line(transcript, 1);
  EXPECT_NE(line.find("status=error"), std::string::npos);
  EXPECT_NE(line.find("cannot open case file"), std::string::npos);
}

TEST_F(ServiceTest, VerifiesWithoutStore) {
  const std::string transcript = drive(
      "verify " + case_path() + " 0 LMIa newton-ac sylvester 10\nquit\n",
      nullptr);
  const std::string line = result_line(transcript, 1);
  EXPECT_NE(line.find("status=valid"), std::string::npos) << line;
  EXPECT_NE(line.find("cache=off"), std::string::npos) << line;
  EXPECT_NE(line.find("model=size3"), std::string::npos) << line;
}

TEST_F(ServiceTest, ColdMissThenWarmHitThroughTheStore) {
  store::CertStore store{cache_path()};
  // `wait` sequences the two requests so the second observes the first's
  // certificate; both modes exercise the store under one key each.
  const std::string transcript = drive(
      "verify " + case_path() + " 0 LMIa newton-ac sylvester 10\n" +
          "wait\n" +
          "verify " + case_path() + " 0 LMIa newton-ac sylvester 10\n" +
          "stats\nquit\n",
      &store);
  const std::string cold = result_line(transcript, 1);
  const std::string warm = result_line(transcript, 2);
  EXPECT_NE(cold.find("status=valid"), std::string::npos) << cold;
  EXPECT_NE(cold.find("cache=miss"), std::string::npos) << cold;
  EXPECT_NE(warm.find("status=valid"), std::string::npos) << warm;
  EXPECT_NE(warm.find("cache=hit"), std::string::npos) << warm;
  EXPECT_NE(transcript.find("idle"), std::string::npos);

  // Cold and warm agree on the recorded timings (replayed, not re-measured).
  const auto field = [](const std::string& line, const std::string& name) {
    const std::size_t pos = line.find(" " + name + "=");
    return line.substr(pos + name.size() + 2,
                       line.find(' ', pos + 1 + name.size() + 2) -
                           (pos + name.size() + 2));
  };
  EXPECT_EQ(field(cold, "synth_seconds"), field(warm, "synth_seconds"));
  EXPECT_EQ(field(cold, "key"), field(warm, "key"));
}

TEST_F(ServiceTest, WarmRequestNeverInvokesSynthesisKernel) {
  store::CertStore store{cache_path()};
  // Warm the store.
  drive("verify " + case_path() + " 0 LMIa newton-ac sylvester 10\nquit\n",
        &store);
  ASSERT_EQ(store.stats().writes, 1u);
  // A 1 ms budget is far below any synthesis kernel's runtime: the request
  // can only answer `valid` if it was served from the store without
  // touching the kernels at all.
  const std::string transcript = drive(
      "verify " + case_path() + " 0 LMIa newton-ac sylvester 10 0.001\nquit\n",
      &store);
  const std::string line = result_line(transcript, 1);
  EXPECT_NE(line.find("status=valid"), std::string::npos) << line;
  EXPECT_NE(line.find("cache=hit"), std::string::npos) << line;
}

TEST_F(ServiceTest, StatsLineReflectsStoreCounters) {
  store::CertStore store{cache_path()};
  const std::string transcript = drive(
      "verify " + case_path() + " 0 eq-num - sylvester 10\n" +
          "wait\nstats\nquit\n",
      &store);
  EXPECT_NE(transcript.find("stats jobs=2"), std::string::npos);
  EXPECT_NE(transcript.find("writes=1"), std::string::npos);
  const std::string no_store = drive("stats\nquit\n", nullptr);
  EXPECT_NE(no_store.find("store=off"), std::string::npos);
}

TEST_F(ServiceTest, TimeoutBudgetIsSharedBetweenSynthesisAndValidation) {
  // Regression test for the deadline double-spend: synthesis and validation
  // used to each mint a FRESH `timeout_s` deadline, so a request declaring
  // a budget T could run for up to 2T.  The workload (exact eq-smt solve on
  // size5, validated by the exact smt-z3 engine at digits 0) takes roughly
  // equal time in both stages, which makes the two behaviours observable:
  // with one shared deadline, validation only gets what synthesis left and
  // times out; with a fresh deadline it would finish and answer `valid`.
  //
  // Pin the exact solver to Bareiss: the multi-modular backend makes this
  // synthesis an order of magnitude faster, which collapses the s ~= v
  // balance the calibration below relies on.  The property under test is
  // the service's deadline accounting, not solver speed, so the slower
  // deterministic backend is the right workload.
  struct ScopedBareiss {
    ScopedBareiss() { ::setenv("SPIV_EXACT_SOLVER", "bareiss", 1); }
    ~ScopedBareiss() { ::unsetenv("SPIV_EXACT_SOLVER"); }
  } scoped_bareiss;
  const std::string cmd =
      "verify " + case_path("size5") + " 0 eq-smt - smt-z3 0";

  // Calibrate on this machine under a generous budget.
  const std::string calib = drive(cmd + " 600\nquit\n", nullptr);
  const std::string calib_line = result_line(calib, 1);
  ASSERT_NE(calib_line.find("status=valid"), std::string::npos) << calib_line;
  const double s = field_double(calib_line, "synth_seconds");
  const double v = field_double(calib_line, "validate_seconds");
  ASSERT_GT(s, 0.0);
  ASSERT_GT(v, 0.0);
  // The budget below only discriminates when synthesis leaves validation
  // less than it needs (T - s = v/2 < v) while a fresh deadline would have
  // been ample (T = s + v/2 >= v, i.e. s >= v/2), and when both stages are
  // long enough that scheduler noise cannot flip the outcome.
  if (s < 0.2 || v < 0.2 || s < 0.6 * v)
    GTEST_SKIP() << "workload cannot discriminate on this machine (synthesis "
                 << s << " s, validation " << v << " s)";

  const double budget = s + 0.5 * v;
  std::ostringstream request;
  request << cmd << " " << std::setprecision(17) << budget << "\nquit\n";
  const auto t0 = std::chrono::steady_clock::now();
  const std::string transcript = drive(request.str(), nullptr);
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  const std::string line = result_line(transcript, 1);
  EXPECT_NE(line.find("status=timeout"), std::string::npos)
      << "request exceeded its declared budget (double-spent deadline?): "
      << line;
  // The whole request stays near its declared budget; the old code ran to
  // completion at ~s+v wall-clock.
  EXPECT_LT(wall, s + v) << "budget " << budget << " s, synthesis " << s
                         << " s, validation " << v << " s";
}

TEST_F(ServiceTest, BatchVerifyPipelinesAndSummarizes) {
  const std::string tail = case_path() + " 0 eq-num - sylvester 10";
  const std::string transcript = drive(
      "batch-verify 3\n" + tail + "\nthis is not a verify tail\n" + tail +
          "\nquit\n",
      nullptr);
  EXPECT_NE(transcript.find("queued ids=1-3 batch=3"), std::string::npos)
      << transcript;
  EXPECT_NE(result_line(transcript, 1).find("status=valid"),
            std::string::npos);
  EXPECT_NE(result_line(transcript, 2).find("status=error"),
            std::string::npos);
  EXPECT_NE(result_line(transcript, 3).find("status=valid"),
            std::string::npos);
  EXPECT_NE(transcript.find("batch-done ids=1-3 ok=2 failed=1 shed=0"),
            std::string::npos)
      << transcript;
}

TEST_F(ServiceTest, TruncatedBatchOnStdinReportsMissingMembers) {
  int errors = 0;
  const std::string transcript = drive(
      "batch-verify 2\n" + case_path() + " 0 eq-num - sylvester 10\n",
      nullptr, &errors);
  EXPECT_NE(transcript.find("error batch truncated (1 member"),
            std::string::npos)
      << transcript;
  EXPECT_NE(transcript.find("batch-done ids=1-2 ok=1 failed=0 shed=0"),
            std::string::npos)
      << transcript;
  EXPECT_EQ(errors, 1);
}

TEST_F(ServiceTest, DeadlineCapRidesIntoTheRequestBudget) {
  // Handler hook: record the effective timeout each request ran with.
  std::mutex mutex;
  std::vector<double> budgets;
  ServeOptions options;
  options.jobs = 1;
  options.default_timeout_seconds = 30.0;
  options.handler = [&](const Request& req, store::CertStore*, double,
                        const CancelToken&) {
    std::lock_guard<std::mutex> lock(mutex);
    budgets.push_back(req.timeout_seconds);
    return Response{verify::Status::Valid,
                    "result id=" + std::to_string(req.id) + " status=valid"};
  };
  const std::string tail = " 0 eq-num - sylvester 10";
  // `wait` between requests: the pool does not guarantee completion order,
  // the budgets vector should.
  const std::string transcript = drive_with(
      options, "deadline 5\n"
               "verify a" + tail + " 60\nwait\n"   // capped: 60 -> 5
               "verify b" + tail + " 2\nwait\n" +  // under the cap: stays 2
               "deadline off\n"
               "verify c" + tail + " 60\n"         // cap removed: stays 60
               "wait\nquit\n");
  EXPECT_NE(transcript.find("ok deadline=5"), std::string::npos);
  EXPECT_NE(transcript.find("ok deadline=off"), std::string::npos);
  ASSERT_EQ(budgets.size(), 3u);
  EXPECT_EQ(budgets[0], 5.0);
  EXPECT_EQ(budgets[1], 2.0);
  EXPECT_EQ(budgets[2], 60.0);
}

TEST_F(ServiceTest, MaxInflightShedsWithBusyOnStdin) {
  ServeOptions options;
  options.jobs = 2;
  options.max_inflight = 1;
  options.handler = [](const Request& req, store::CertStore*, double,
                       const CancelToken&) {
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    return Response{verify::Status::Valid,
                    "result id=" + std::to_string(req.id) + " status=valid"};
  };
  const std::string tail = " 0 eq-num - sylvester 10";
  const std::string transcript = drive_with(
      options, "verify a" + tail + "\nverify b" + tail + "\nverify c" + tail +
                   "\nwait\nquit\n");
  // One admission slot held for 300 ms while stdin feeds three requests:
  // the first is admitted, the other two are shed with `busy` — cheap,
  // immediate, and the stream keeps flowing.
  std::size_t busy = 0, results = 0;
  std::istringstream is{transcript};
  for (std::string line; std::getline(is, line);) {
    if (line.rfind("busy id=", 0) == 0) ++busy;
    if (line.rfind("result id=", 0) == 0) ++results;
  }
  EXPECT_EQ(busy, 2u) << transcript;
  EXPECT_EQ(results, 1u) << transcript;
  EXPECT_NE(transcript.find("idle"), std::string::npos);
}

TEST_F(ServiceTest, BinaryGarbageOnStdinEarnsErrorLinesAndKeepsServing) {
  int errors = 0;
  std::string script;
  script += "\x01\x02\xfe garbage\n";
  script += std::string{"\x00\x7f more\n", 8};
  script += "verify " + case_path() + " 0 eq-num - sylvester 10\nwait\nquit\n";
  const std::string transcript = drive(script, nullptr, &errors);
  EXPECT_EQ(errors, 2);
  EXPECT_NE(result_line(transcript, 1).find("status=valid"),
            std::string::npos)
      << transcript;
}

TEST_F(ServiceTest, NegativeCacheRepaysSynthFailures) {
  store::CertStore store{cache_path()};
  // Handler counting invocations, always failing synthesis — through the
  // REAL pipeline path the service wires (negative_ttl_seconds plumbed
  // from ServeOptions into VerifyContext) this would need an unstable
  // case; here the service-level plumbing is what's under test, so the
  // store is driven directly.
  std::atomic<int> calls{0};
  ServeOptions options;
  options.jobs = 1;
  options.store = &store;
  options.negative_ttl_seconds = 60.0;
  options.handler = [&](const Request& req, store::CertStore* s,
                        double negative_ttl_seconds, const CancelToken&) {
    calls.fetch_add(1);
    EXPECT_EQ(negative_ttl_seconds, 60.0);  // ServeOptions reached the job
    if (auto neg = s->lookup_negative("deadbeef", /*request_budget=*/1.0))
      return Response{verify::Status::SynthFailed,
                      "result id=" + std::to_string(req.id) +
                          " status=synth-failed cache=neg-hit"};
    s->insert_negative("deadbeef", "synth-failed", 0.0,
                       negative_ttl_seconds);
    return Response{verify::Status::SynthFailed,
                    "result id=" + std::to_string(req.id) +
                        " status=synth-failed cache=miss"};
  };
  const std::string tail = " 0 eq-num - sylvester 10";
  const std::string transcript = drive_with(
      options, "verify a" + tail + "\nwait\nverify a" + tail +
                   "\nwait\nstats\nquit\n");
  EXPECT_EQ(calls.load(), 2);
  EXPECT_NE(result_line(transcript, 1).find("cache=miss"), std::string::npos);
  EXPECT_NE(result_line(transcript, 2).find("cache=neg-hit"),
            std::string::npos);
  // The stats line carries the per-tier negative counters.
  EXPECT_NE(transcript.find("neg_hits=1"), std::string::npos) << transcript;
  EXPECT_NE(transcript.find("neg_writes=1"), std::string::npos) << transcript;
}

TEST_F(ServiceTest, MetricsCommandExposesAndIncreasesAcrossRequests) {
  store::CertStore store{cache_path()};
  const std::string transcript = drive(
      "metrics\n"
      "verify " + case_path() + " 0 eq-num - sylvester 10\n" +
          "wait\nmetrics\nquit\n",
      &store);

  // Two scrapes, each terminated by `# EOF`.
  const std::size_t cut = transcript.find("# EOF");
  ASSERT_NE(cut, std::string::npos);
  const std::string first = transcript.substr(0, cut + 5);
  const std::string second = transcript.substr(cut + 5);
  ASSERT_NE(second.find("# EOF"), std::string::npos);

  // The families promised by the protocol are present before any request.
  for (const char* needle :
       {"# TYPE spiv_serve_requests_total counter",
        "# TYPE spiv_pool_queue_depth gauge", "spiv_pool_jobs_executed_total",
        "spiv_store_memory_hits_total", "spiv_store_disk_hits_total",
        "spiv_store_misses_total",
        "spiv_stage_seconds_bucket{stage=\"synthesis\",le=\"+Inf\"}",
        "spiv_stage_seconds_bucket{stage=\"validation\",le=\"+Inf\"}"})
    EXPECT_NE(first.find(needle), std::string::npos) << needle;

  // Counters increase monotonically from the first scrape to the second.
  const double req0 = sample_value(first, "spiv_serve_requests_total");
  const double req1 = sample_value(second, "spiv_serve_requests_total");
  ASSERT_GE(req0, 0.0);
  EXPECT_EQ(req1, req0 + 1.0);
  EXPECT_GE(sample_value(second, "spiv_pool_jobs_executed_total"),
            sample_value(first, "spiv_pool_jobs_executed_total") + 1.0);
  EXPECT_GE(sample_value(second, "spiv_store_misses_total"),
            sample_value(first, "spiv_store_misses_total") + 1.0);
  // The idle pool's queue depth gauge reads zero again after the request.
  EXPECT_EQ(sample_value(second, "spiv_pool_queue_depth"), 0.0);
}

}  // namespace
}  // namespace spiv::service
