// Tests for the spiv-serve protocol: parse errors, cold-then-warm verify
// through the certificate store, and the guarantee that a warm request is
// answered from the store without invoking any synthesis kernel.
#include "service/service.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "model/reduction.hpp"
#include "model/serialize.hpp"

namespace spiv::service {
namespace {

namespace fs = std::filesystem;

class ServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("spiv_service_test_" + std::to_string(::getpid()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    // Export the size-3 benchmark case once.
    for (const auto& bm : model::benchmark_family())
      if (bm.name == "size3") {
        std::ofstream out{case_path()};
        model::write_case(out, bm);
        break;
      }
    ASSERT_TRUE(fs::exists(case_path()));
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  [[nodiscard]] std::string case_path() const {
    return (dir_ / "size3.spivcase").string();
  }
  [[nodiscard]] std::string cache_path() const {
    return (dir_ / "cache").string();
  }

  /// Drive the protocol and return the full response transcript.
  std::string drive(const std::string& script, store::CertStore* store,
                    int* errors = nullptr) {
    ServeOptions options;
    options.jobs = 2;
    options.default_timeout_seconds = 30.0;
    options.store = store;
    std::istringstream in{script};
    std::ostringstream out;
    const int e = serve(in, out, options);
    if (errors) *errors = e;
    return out.str();
  }

  /// The `result id=N ...` line of the transcript.
  static std::string result_line(const std::string& transcript,
                                 std::size_t id) {
    std::istringstream is{transcript};
    const std::string prefix = "result id=" + std::to_string(id) + " ";
    std::string line;
    while (std::getline(is, line))
      if (line.rfind(prefix, 0) == 0) return line;
    return "";
  }

  fs::path dir_;
};

TEST_F(ServiceTest, RejectsMalformedRequests) {
  int errors = 0;
  const std::string transcript = drive(
      "verify\n"
      "verify missing.case 0 no-such-method - sylvester 10\n"
      "verify missing.case 0 LMIa no-such-backend sylvester 10\n"
      "verify missing.case 0 LMIa - no-such-engine 10\n"
      "frobnicate\n"
      "quit\n",
      nullptr, &errors);
  EXPECT_EQ(errors, 5);
  EXPECT_NE(result_line(transcript, 1).find("status=error"), std::string::npos);
  EXPECT_NE(result_line(transcript, 2).find("unknown method"),
            std::string::npos);
  EXPECT_NE(result_line(transcript, 3).find("unknown backend"),
            std::string::npos);
  EXPECT_NE(result_line(transcript, 4).find("unknown engine"),
            std::string::npos);
  EXPECT_NE(transcript.find("error unknown command"), std::string::npos);
}

TEST_F(ServiceTest, ReportsMissingCaseFileAsError) {
  int errors = 0;
  const std::string transcript = drive(
      "verify /nonexistent/case 0 LMIa newton-ac sylvester 10\nquit\n",
      nullptr, &errors);
  EXPECT_EQ(errors, 1);
  const std::string line = result_line(transcript, 1);
  EXPECT_NE(line.find("status=error"), std::string::npos);
  EXPECT_NE(line.find("cannot open case file"), std::string::npos);
}

TEST_F(ServiceTest, VerifiesWithoutStore) {
  const std::string transcript = drive(
      "verify " + case_path() + " 0 LMIa newton-ac sylvester 10\nquit\n",
      nullptr);
  const std::string line = result_line(transcript, 1);
  EXPECT_NE(line.find("status=valid"), std::string::npos) << line;
  EXPECT_NE(line.find("cache=off"), std::string::npos) << line;
  EXPECT_NE(line.find("model=size3"), std::string::npos) << line;
}

TEST_F(ServiceTest, ColdMissThenWarmHitThroughTheStore) {
  store::CertStore store{cache_path()};
  // `wait` sequences the two requests so the second observes the first's
  // certificate; both modes exercise the store under one key each.
  const std::string transcript = drive(
      "verify " + case_path() + " 0 LMIa newton-ac sylvester 10\n" +
          "wait\n" +
          "verify " + case_path() + " 0 LMIa newton-ac sylvester 10\n" +
          "stats\nquit\n",
      &store);
  const std::string cold = result_line(transcript, 1);
  const std::string warm = result_line(transcript, 2);
  EXPECT_NE(cold.find("status=valid"), std::string::npos) << cold;
  EXPECT_NE(cold.find("cache=miss"), std::string::npos) << cold;
  EXPECT_NE(warm.find("status=valid"), std::string::npos) << warm;
  EXPECT_NE(warm.find("cache=hit"), std::string::npos) << warm;
  EXPECT_NE(transcript.find("idle"), std::string::npos);

  // Cold and warm agree on the recorded timings (replayed, not re-measured).
  const auto field = [](const std::string& line, const std::string& name) {
    const std::size_t pos = line.find(" " + name + "=");
    return line.substr(pos + name.size() + 2,
                       line.find(' ', pos + 1 + name.size() + 2) -
                           (pos + name.size() + 2));
  };
  EXPECT_EQ(field(cold, "synth_seconds"), field(warm, "synth_seconds"));
  EXPECT_EQ(field(cold, "key"), field(warm, "key"));
}

TEST_F(ServiceTest, WarmRequestNeverInvokesSynthesisKernel) {
  store::CertStore store{cache_path()};
  // Warm the store.
  drive("verify " + case_path() + " 0 LMIa newton-ac sylvester 10\nquit\n",
        &store);
  ASSERT_EQ(store.stats().writes, 1u);
  // A 1 ms budget is far below any synthesis kernel's runtime: the request
  // can only answer `valid` if it was served from the store without
  // touching the kernels at all.
  const std::string transcript = drive(
      "verify " + case_path() + " 0 LMIa newton-ac sylvester 10 0.001\nquit\n",
      &store);
  const std::string line = result_line(transcript, 1);
  EXPECT_NE(line.find("status=valid"), std::string::npos) << line;
  EXPECT_NE(line.find("cache=hit"), std::string::npos) << line;
}

TEST_F(ServiceTest, StatsLineReflectsStoreCounters) {
  store::CertStore store{cache_path()};
  const std::string transcript = drive(
      "verify " + case_path() + " 0 eq-num - sylvester 10\n" +
          "wait\nstats\nquit\n",
      &store);
  EXPECT_NE(transcript.find("stats jobs=2"), std::string::npos);
  EXPECT_NE(transcript.find("writes=1"), std::string::npos);
  const std::string no_store = drive("stats\nquit\n", nullptr);
  EXPECT_NE(no_store.find("store=off"), std::string::npos);
}

}  // namespace
}  // namespace spiv::service
