// The central algebraic step of the paper (§IV-B): rewriting the feedback
// interconnection of plant and PI controller as an autonomous system on
// w = (x, u).  This test validates the reformulation *semantically*: the
// closed-loop trajectory of the reformulated system must coincide with a
// direct simulation of the plant driven by a PI controller implemented the
// classic way (integrator states z = \int e dt, u = K_P e + K_I z).
#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "model/engine.hpp"
#include "model/reduction.hpp"
#include "model/switched_pi.hpp"
#include "numeric/matrix.hpp"
#include "sim/integrator.hpp"

namespace spiv::model {
namespace {

using numeric::Matrix;
using numeric::Vector;

/// Direct simulation of plant + classic PI (x, z-integrator states) with a
/// plain fixed-step RK4, for one mode (no switching).
std::vector<Vector> simulate_direct(const StateSpace& plant,
                                    const PiGains& gains, const Vector& r,
                                    Vector x0, double t_end, double dt,
                                    double record_every) {
  const std::size_t n = plant.num_states();
  const std::size_t p = plant.num_outputs();
  // State: (x, z) with z the output-error integrals.
  Vector state(n + p, 0.0);
  std::copy(x0.begin(), x0.end(), state.begin());
  auto control = [&](const Vector& s) {
    Vector x(s.begin(), s.begin() + static_cast<std::ptrdiff_t>(n));
    Vector z(s.begin() + static_cast<std::ptrdiff_t>(n), s.end());
    Vector e = plant.c.apply(x);
    for (std::size_t i = 0; i < p; ++i) e[i] = r[i] - e[i];
    Vector u = gains.kp.apply(e);
    Vector iz = gains.ki.apply(z);
    for (std::size_t i = 0; i < u.size(); ++i) u[i] += iz[i];
    return u;
  };
  auto deriv = [&](const Vector& s) {
    Vector x(s.begin(), s.begin() + static_cast<std::ptrdiff_t>(n));
    Vector u = control(s);
    Vector dx = plant.a.apply(x);
    Vector bu = plant.b.apply(u);
    for (std::size_t i = 0; i < n; ++i) dx[i] += bu[i];
    Vector e = plant.c.apply(x);
    for (std::size_t i = 0; i < p; ++i) e[i] = r[i] - e[i];
    Vector ds(n + p);
    std::copy(dx.begin(), dx.end(), ds.begin());
    std::copy(e.begin(), e.end(), ds.begin() + static_cast<std::ptrdiff_t>(n));
    return ds;
  };
  std::vector<Vector> record;
  double next_record = 0.0;
  for (double t = 0.0; t <= t_end + 1e-12; t += dt) {
    if (t >= next_record - 1e-12) {
      // Record (x, u).
      Vector x(state.begin(), state.begin() + static_cast<std::ptrdiff_t>(n));
      Vector u = control(state);
      Vector w(n + u.size());
      std::copy(x.begin(), x.end(), w.begin());
      std::copy(u.begin(), u.end(), w.begin() + static_cast<std::ptrdiff_t>(n));
      record.push_back(std::move(w));
      next_record += record_every;
    }
    // RK4 step.
    Vector k1 = deriv(state);
    Vector s2(state.size()), s3(state.size()), s4(state.size());
    for (std::size_t i = 0; i < state.size(); ++i)
      s2[i] = state[i] + 0.5 * dt * k1[i];
    Vector k2 = deriv(s2);
    for (std::size_t i = 0; i < state.size(); ++i)
      s3[i] = state[i] + 0.5 * dt * k2[i];
    Vector k3 = deriv(s3);
    for (std::size_t i = 0; i < state.size(); ++i)
      s4[i] = state[i] + dt * k3[i];
    Vector k4 = deriv(s4);
    for (std::size_t i = 0; i < state.size(); ++i)
      state[i] += dt / 6.0 * (k1[i] + 2 * k2[i] + 2 * k3[i] + k4[i]);
  }
  return record;
}

TEST(ReformulationEquivalence, SisoClosedLoopTrajectoriesMatch) {
  StateSpace plant;
  plant.a = Matrix{{-1.0, 0.3}, {0.1, -2.0}};
  plant.b = Matrix{{1.0}, {0.5}};
  plant.c = Matrix{{1.0, 0.0}};
  PiGains gains{Matrix{{1.5}}, Matrix{{2.5}}};
  Vector r{1.0};

  // Direct simulation.
  auto direct = simulate_direct(plant, gains, r, Vector{0.2, -0.1},
                                /*t_end=*/5.0, /*dt=*/1e-4,
                                /*record_every=*/0.5);

  // Reformulated autonomous system (single mode, trivial region).
  PwaMode mode = close_loop_single_mode(plant, gains);
  mode.region.push_back(HalfSpace{Vector(3, 0.0), 1.0, false});
  PwaSystem sys{{mode}, 2, 1, 1};
  // Matching initial condition: u(0) = K_P e(0) + K_I z(0), z(0) = 0.
  Vector x0{0.2, -0.1};
  Vector y0 = plant.c.apply(x0);
  Vector w0{x0[0], x0[1], gains.kp(0, 0) * (r[0] - y0[0])};
  sim::SimOptions options;
  options.t_end = 5.0;
  options.rel_tol = 1e-10;
  options.abs_tol = 1e-12;
  options.record_interval = 10.0;  // we resample from direct times below
  sim::Trajectory traj = sim::simulate(sys, r, w0, options);

  // Compare at the recorded direct-simulation times by re-simulating to
  // each horizon (cheap for this size).
  for (std::size_t k = 0; k < direct.size(); ++k) {
    const double t = 0.5 * static_cast<double>(k);
    if (t == 0.0) continue;
    sim::SimOptions o2 = options;
    o2.t_end = t;
    sim::Trajectory tr = sim::simulate(sys, r, w0, o2);
    for (std::size_t i = 0; i < 3; ++i)
      EXPECT_NEAR(tr.back().w[i], direct[k][i], 1e-5)
          << "t=" << t << " comp " << i;
  }
  (void)traj;
}

TEST(ReformulationEquivalence, EngineMode0TrajectoriesMatch) {
  // Same equivalence on the reduced engine model (MIMO: 3 inputs,
  // 4 outputs), mode 0.
  StateSpace plant = balanced_truncation(make_engine_model(), 5).sys;
  PiGains gains = engine_gains_mode0();
  Vector r = make_engine_references(plant);

  auto direct = simulate_direct(plant, gains, r, Vector(5, 0.0),
                                /*t_end=*/2.0, /*dt=*/2e-5,
                                /*record_every=*/0.9);

  PwaMode mode = close_loop_single_mode(plant, gains);
  mode.region.push_back(HalfSpace{Vector(8, 0.0), 1.0, false});
  PwaSystem sys{{mode}, 5, 3, 4};
  // u(0) = K_P e(0) with x(0) = 0 -> e(0) = r.
  Vector u0 = gains.kp.apply(r);
  Vector w0(8, 0.0);
  std::copy(u0.begin(), u0.end(), w0.begin() + 5);
  sim::SimOptions options;
  options.t_end = 1.8;  // = 2 * record_every of the direct run
  options.rel_tol = 1e-10;
  options.abs_tol = 1e-12;
  sim::Trajectory traj = sim::simulate(sys, r, w0, options);

  ASSERT_GE(direct.size(), 3u);
  const Vector& w_direct = direct[2];  // t = 1.8
  for (std::size_t i = 0; i < 8; ++i)
    EXPECT_NEAR(traj.back().w[i], w_direct[i],
                1e-4 * (1.0 + std::abs(w_direct[i])))
        << "component " << i;
}

TEST(ReformulationEquivalence, EquilibriumIsFixedPointOfBothViews) {
  // At the reformulated equilibrium, the direct-view derivative vanishes:
  // y = r on the integrator channels and xdot = 0.
  StateSpace plant = balanced_truncation(make_engine_model(), 3).sys;
  PiGains gains = engine_gains_mode0();
  Vector r = make_engine_references(plant);
  PwaMode mode = close_loop_single_mode(plant, gains);
  Vector w_eq = mode.equilibrium(r);
  Vector x(w_eq.begin(), w_eq.begin() + 3);
  Vector u(w_eq.begin() + 3, w_eq.end());
  Vector dx = plant.a.apply(x);
  Vector bu = plant.b.apply(u);
  for (std::size_t i = 0; i < 3; ++i)
    EXPECT_NEAR(dx[i] + bu[i], 0.0, 1e-10);
  // K_I e = 0 at equilibrium (udot = 0 with xdot = 0).
  Vector e = plant.c.apply(x);
  for (std::size_t i = 0; i < e.size(); ++i) e[i] = r[i] - e[i];
  Vector kie = gains.ki.apply(e);
  for (double v : kie) EXPECT_NEAR(v, 0.0, 1e-9);
}

}  // namespace
}  // namespace spiv::model
