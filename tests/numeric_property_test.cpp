// Parameterized property sweeps for the numeric layer, including edge
// cases (defective matrices, clustered eigenvalues, near-singular inputs).
#include <gtest/gtest.h>

#include <random>

#include "numeric/eigen.hpp"
#include "numeric/lyapunov.hpp"
#include "numeric/matrix.hpp"
#include "numeric/svd.hpp"

namespace spiv::numeric {
namespace {

Matrix random_matrix(std::mt19937_64& rng, std::size_t n, std::size_t m) {
  std::normal_distribution<double> d;
  Matrix out{n, m};
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < m; ++j) out(i, j) = d(rng);
  return out;
}

class NumericProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(NumericProperty, SchurHandlesDefectiveMatrices) {
  // Jordan blocks (defective) and clustered spectra must still decompose.
  for (std::size_t n : {2u, 4u, 8u}) {
    Matrix jordan{n, n};
    for (std::size_t i = 0; i < n; ++i) {
      jordan(i, i) = -1.0;
      if (i + 1 < n) jordan(i, i + 1) = 1.0;
    }
    auto s = complex_schur(jordan);
    EXPECT_TRUE(s.converged);
    for (std::size_t i = 0; i < n; ++i)
      EXPECT_NEAR(s.t(i, i).real(), -1.0, 1e-7) << "n=" << n;
    // Residual still tiny.
    CMatrix au = CMatrix::from_real(jordan) * s.u;
    CMatrix ut = s.u * s.t;
    EXPECT_LT((au - ut).frobenius_norm(), 1e-10);
  }
}

TEST_P(NumericProperty, SchurOfSimilarMatricesSharesSpectrum) {
  std::mt19937_64 rng{GetParam()};
  const std::size_t n = 6;
  Matrix a = random_matrix(rng, n, n);
  // Orthogonal similarity (perfectly conditioned) from a QR factor.
  Matrix t = qr_decompose(random_matrix(rng, n, n)).q;
  Matrix b = t.transposed() * a * t;
  auto ea = eigenvalues(a);
  auto eb = eigenvalues(b);
  // Greedy nearest matching (robust to ordering differences).
  for (const Complex& x : ea) {
    double best = 1e300;
    std::size_t best_j = 0;
    for (std::size_t j = 0; j < eb.size(); ++j) {
      const double d = std::abs(x - eb[j]);
      if (d < best) {
        best = d;
        best_j = j;
      }
    }
    EXPECT_LT(best, 1e-6 * (1.0 + std::abs(x)));
    eb.erase(eb.begin() + static_cast<std::ptrdiff_t>(best_j));
  }
}

TEST_P(NumericProperty, LyapunovSolutionIsMonotoneInQ) {
  // Q1 <= Q2 (PSD order) implies P1 <= P2 for the same stable A.
  std::mt19937_64 rng{GetParam() + 1};
  const std::size_t n = 5;
  Matrix a = random_matrix(rng, n, n);
  const double shift = spectral_abscissa(a) + 1.0;
  for (std::size_t i = 0; i < n; ++i) a(i, i) -= shift;
  Matrix q1 = Matrix::identity(n);
  Matrix r = random_matrix(rng, n, n);
  Matrix q2 = q1 + r.transposed() * r;  // q2 - q1 PSD
  auto p1 = solve_lyapunov(a, q1);
  auto p2 = solve_lyapunov(a, q2);
  ASSERT_TRUE(p1 && p2);
  auto eig = symmetric_eigen(*p2 - *p1);
  EXPECT_GE(eig.values.front(), -1e-9);
}

TEST_P(NumericProperty, SvdOfOrthogonalMatrixIsAllOnes) {
  std::mt19937_64 rng{GetParam() + 2};
  Matrix a = random_matrix(rng, 7, 7);
  Qr f = qr_decompose(a);
  Svd s = svd_decompose(f.q);
  for (double sv : s.singular_values) EXPECT_NEAR(sv, 1.0, 1e-10);
}

TEST_P(NumericProperty, EigenvalueProductMatchesDeterminant) {
  std::mt19937_64 rng{GetParam() + 3};
  for (std::size_t n : {3u, 6u, 10u}) {
    Matrix a = random_matrix(rng, n, n);
    Complex prod{1.0, 0.0};
    for (auto l : eigenvalues(a)) prod *= l;
    EXPECT_NEAR(prod.real(), a.determinant(),
                1e-6 * (1.0 + std::abs(a.determinant())));
    EXPECT_NEAR(prod.imag(), 0.0, 1e-6 * (1.0 + std::abs(a.determinant())));
  }
}

TEST_P(NumericProperty, CholeskySolvesAgreeWithLu) {
  std::mt19937_64 rng{GetParam() + 4};
  const std::size_t n = 6;
  Matrix r = random_matrix(rng, n, n);
  Matrix spd = r.transposed() * r + Matrix::identity(n);
  auto l = spd.cholesky();
  ASSERT_TRUE(l.has_value());
  Vector b(n, 1.0);
  auto x_lu = spd.solve(b);
  ASSERT_TRUE(x_lu.has_value());
  // Forward/back substitution with L.
  Vector y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double acc = b[i];
    for (std::size_t k = 0; k < i; ++k) acc -= (*l)(i, k) * y[k];
    y[i] = acc / (*l)(i, i);
  }
  Vector x(n);
  for (std::size_t i = n; i-- > 0;) {
    double acc = y[i];
    for (std::size_t k = i + 1; k < n; ++k) acc -= (*l)(k, i) * x[k];
    x[i] = acc / (*l)(i, i);
  }
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], (*x_lu)[i], 1e-9);
}

TEST_P(NumericProperty, ModalLyapunovMatrixSolvesLyapunovEquation) {
  // Paper §III-E(b): P = M^{-1 dagger} M^{-1} solves eq. (7) with
  // Q = -M^{-1 dagger}(D + conj(D)) M^{-1}, which is PD for Hurwitz A.
  std::mt19937_64 rng{GetParam() + 5};
  const std::size_t n = 5;
  Matrix a = random_matrix(rng, n, n);
  const double shift = spectral_abscissa(a) + 0.7;
  for (std::size_t i = 0; i < n; ++i) a(i, i) -= shift;
  auto eig = eigen_decompose(a);
  auto m_inv = eig.modal.inverse();
  ASSERT_TRUE(m_inv.has_value());
  Matrix p = (m_inv->adjoint() * *m_inv).real_part().symmetrized();
  // A^T P + P A must be negative definite.
  Matrix lie = a.transposed() * p + p * a;
  EXPECT_LT(symmetric_eigen(lie).values.back(), 0.0);
  EXPECT_TRUE(p.cholesky().has_value());
}

INSTANTIATE_TEST_SUITE_P(Seeds, NumericProperty,
                         ::testing::Values(401u, 402u, 403u));

}  // namespace
}  // namespace spiv::numeric
