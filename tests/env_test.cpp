// Tests for core::env — the single environment-variable resolution point.
// Covers every parse path of every accessor (the README env-var table),
// plus the warn-once diagnostics for malformed values.
#include "core/env.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

namespace {

using namespace spiv::core;

// Sets (or unsets, when value is nullptr) an environment variable for the
// lifetime of the object, restoring the previous state on destruction.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    if (old) {
      saved_ = old;
      had_ = true;
    }
    if (value)
      ::setenv(name, value, 1);
    else
      ::unsetenv(name);
  }
  ~ScopedEnv() {
    if (had_)
      ::setenv(name_, saved_.c_str(), 1);
    else
      ::unsetenv(name_);
  }

 private:
  const char* name_;
  std::string saved_;
  bool had_ = false;
};

TEST(ParsePositive, AcceptsPositiveIntegers) {
  EXPECT_EQ(env::parse_positive("1"), 1u);
  EXPECT_EQ(env::parse_positive("8"), 8u);
  EXPECT_EQ(env::parse_positive("128"), 128u);
}

TEST(ParsePositive, RejectsEverythingElse) {
  EXPECT_FALSE(env::parse_positive("").has_value());
  EXPECT_FALSE(env::parse_positive("0").has_value());
  EXPECT_FALSE(env::parse_positive("-1").has_value());
  EXPECT_FALSE(env::parse_positive("4abc").has_value());
  EXPECT_FALSE(env::parse_positive("abc").has_value());
  EXPECT_FALSE(env::parse_positive(" 4").has_value());
  EXPECT_FALSE(env::parse_positive("4 ").has_value());
  EXPECT_FALSE(env::parse_positive("2.5").has_value());
  // Larger than any plausible core count and than LONG_MAX: overflow path.
  EXPECT_FALSE(env::parse_positive("99999999999999999999999").has_value());
}

TEST(Raw, ReflectsEnvironment) {
  {
    ScopedEnv env{"SPIV_ENV_TEST_RAW", "hello"};
    ASSERT_NE(env::raw("SPIV_ENV_TEST_RAW"), nullptr);
    EXPECT_STREQ(env::raw("SPIV_ENV_TEST_RAW"), "hello");
  }
  {
    ScopedEnv env{"SPIV_ENV_TEST_RAW", nullptr};
    EXPECT_EQ(env::raw("SPIV_ENV_TEST_RAW"), nullptr);
  }
}

TEST(Jobs, ValidValue) {
  ScopedEnv env{"SPIV_JOBS", "4"};
  ASSERT_TRUE(env::jobs().has_value());
  EXPECT_EQ(*env::jobs(), 4u);
}

TEST(Jobs, UnsetReturnsNullopt) {
  ScopedEnv env{"SPIV_JOBS", nullptr};
  EXPECT_FALSE(env::jobs().has_value());
}

TEST(Jobs, MalformedReturnsNulloptAndWarnsOnce) {
  ScopedEnv env{"SPIV_JOBS", "4abc"};
  env::rearm_warnings_for_testing();
  testing::internal::CaptureStderr();
  EXPECT_FALSE(env::jobs().has_value());
  EXPECT_FALSE(env::jobs().has_value());  // second read: no second warning
  const std::string err = testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("SPIV_JOBS"), std::string::npos);
  EXPECT_NE(err.find("4abc"), std::string::npos);
  // Warn-once: the variable name appears exactly one time.
  EXPECT_EQ(err.find("SPIV_JOBS"), err.rfind("SPIV_JOBS"));
}

TEST(Jobs, NegativeAndZeroAreMalformed) {
  env::rearm_warnings_for_testing();
  testing::internal::CaptureStderr();
  {
    ScopedEnv env{"SPIV_JOBS", "-1"};
    EXPECT_FALSE(env::jobs().has_value());
  }
  {
    ScopedEnv env{"SPIV_JOBS", "0"};
    EXPECT_FALSE(env::jobs().has_value());
  }
  testing::internal::GetCapturedStderr();
}

TEST(NegativeTtl, ValidValuesIncludingZero) {
  {
    ScopedEnv env{"SPIV_NEG_TTL", "30"};
    ASSERT_TRUE(env::negative_ttl().has_value());
    EXPECT_EQ(*env::negative_ttl(), 30.0);
  }
  {
    ScopedEnv env{"SPIV_NEG_TTL", "0.5"};
    ASSERT_TRUE(env::negative_ttl().has_value());
    EXPECT_EQ(*env::negative_ttl(), 0.5);
  }
  {
    // 0 is a VALID value (explicitly disables negative caching) as opposed
    // to unset (caller picks its default).
    ScopedEnv env{"SPIV_NEG_TTL", "0"};
    ASSERT_TRUE(env::negative_ttl().has_value());
    EXPECT_EQ(*env::negative_ttl(), 0.0);
  }
}

TEST(NegativeTtl, UnsetReturnsNullopt) {
  ScopedEnv env{"SPIV_NEG_TTL", nullptr};
  EXPECT_FALSE(env::negative_ttl().has_value());
}

TEST(NegativeTtl, MalformedReturnsNulloptAndWarnsOnce) {
  ScopedEnv env{"SPIV_NEG_TTL", "soon"};
  env::rearm_warnings_for_testing();
  testing::internal::CaptureStderr();
  EXPECT_FALSE(env::negative_ttl().has_value());
  EXPECT_FALSE(env::negative_ttl().has_value());
  const std::string err = testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("SPIV_NEG_TTL"), std::string::npos);
  EXPECT_EQ(err.find("SPIV_NEG_TTL"), err.rfind("SPIV_NEG_TTL"));
}

TEST(NegativeTtl, RejectsNegativeTrailingJunkAndInf) {
  env::rearm_warnings_for_testing();
  testing::internal::CaptureStderr();
  for (const char* bad : {"-1", "1.5s", " 2", "inf", "nan", "1e19"}) {
    ScopedEnv env{"SPIV_NEG_TTL", bad};
    EXPECT_FALSE(env::negative_ttl().has_value()) << bad;
  }
  testing::internal::GetCapturedStderr();
}

TEST(CacheDir, SetAndUnset) {
  {
    ScopedEnv env{"SPIV_CACHE_DIR", "/tmp/spiv-cache"};
    EXPECT_EQ(env::cache_dir(), "/tmp/spiv-cache");
  }
  {
    ScopedEnv env{"SPIV_CACHE_DIR", nullptr};
    EXPECT_TRUE(env::cache_dir().empty());  // empty = caching off
  }
}

TEST(CacheDir, EmptyMeansDisabled) {
  ScopedEnv env{"SPIV_CACHE_DIR", ""};
  EXPECT_TRUE(env::cache_dir().empty());
}

TEST(TracePath, SetAndUnset) {
  {
    ScopedEnv env{"SPIV_TRACE", "/tmp/trace.jsonl"};
    EXPECT_EQ(env::trace_path(), "/tmp/trace.jsonl");
  }
  {
    ScopedEnv env{"SPIV_TRACE", nullptr};
    EXPECT_TRUE(env::trace_path().empty());  // empty = tracing off
  }
}

TEST(ExactSolver, AllRecognizedSpellings) {
  {
    ScopedEnv env{"SPIV_EXACT_SOLVER", "bareiss"};
    EXPECT_EQ(env::exact_solver(), env::ExactSolver::Bareiss);
  }
  {
    ScopedEnv env{"SPIV_EXACT_SOLVER", "modular"};
    EXPECT_EQ(env::exact_solver(), env::ExactSolver::Modular);
  }
  {
    ScopedEnv env{"SPIV_EXACT_SOLVER", "auto"};
    EXPECT_EQ(env::exact_solver(), env::ExactSolver::Auto);
  }
  {
    ScopedEnv env{"SPIV_EXACT_SOLVER", nullptr};
    EXPECT_EQ(env::exact_solver(), env::ExactSolver::Auto);
  }
}

TEST(ExactSolver, InvalidFallsBackToAutoAndWarnsOnce) {
  ScopedEnv env{"SPIV_EXACT_SOLVER", "simplex"};
  env::rearm_warnings_for_testing();
  testing::internal::CaptureStderr();
  EXPECT_EQ(env::exact_solver(), env::ExactSolver::Auto);
  EXPECT_EQ(env::exact_solver(), env::ExactSolver::Auto);
  const std::string err = testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("SPIV_EXACT_SOLVER"), std::string::npos);
  EXPECT_NE(err.find("simplex"), std::string::npos);
  EXPECT_EQ(err.find("SPIV_EXACT_SOLVER"), err.rfind("SPIV_EXACT_SOLVER"));
}

// Accessors must re-read the environment on every call (tests and
// long-running services flip variables at runtime).
TEST(Env, AccessorsReReadPerCall) {
  ScopedEnv guard{"SPIV_JOBS", "2"};
  EXPECT_EQ(env::jobs().value_or(0), 2u);
  ::setenv("SPIV_JOBS", "7", 1);
  EXPECT_EQ(env::jobs().value_or(0), 7u);
}

}  // namespace
