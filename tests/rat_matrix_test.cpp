// Unit and property tests for spiv::exact::RatMatrix.
#include "exact/matrix.hpp"

#include <gtest/gtest.h>

#include <random>

namespace spiv::exact {
namespace {

Rational q(std::int64_t n, std::int64_t d = 1) { return Rational{n, d}; }

RatMatrix random_matrix(std::mt19937_64& rng, std::size_t n, std::size_t m,
                        std::int64_t lo = -9, std::int64_t hi = 9) {
  std::uniform_int_distribution<std::int64_t> d{lo, hi};
  RatMatrix out{n, m};
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < m; ++j) out(i, j) = Rational{d(rng)};
  return out;
}

TEST(RatMatrix, BasicShapeAndAccess) {
  RatMatrix m{2, 3};
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_FALSE(m.is_square());
  m(1, 2) = q(7);
  EXPECT_EQ(m(1, 2), q(7));
  EXPECT_THROW((RatMatrix{{q(1)}, {q(1), q(2)}}), std::invalid_argument);
}

TEST(RatMatrix, ArithmeticAndShapeChecks) {
  RatMatrix a{{q(1), q(2)}, {q(3), q(4)}};
  RatMatrix b{{q(5), q(6)}, {q(7), q(8)}};
  EXPECT_EQ(a + b, (RatMatrix{{q(6), q(8)}, {q(10), q(12)}}));
  EXPECT_EQ(b - a, (RatMatrix{{q(4), q(4)}, {q(4), q(4)}}));
  EXPECT_EQ(a * q(2), (RatMatrix{{q(2), q(4)}, {q(6), q(8)}}));
  EXPECT_EQ(a * b, (RatMatrix{{q(19), q(22)}, {q(43), q(50)}}));
  EXPECT_EQ(-a, (RatMatrix{{q(-1), q(-2)}, {q(-3), q(-4)}}));
  RatMatrix wrong{1, 2};
  EXPECT_THROW(a += wrong, std::invalid_argument);
  EXPECT_THROW(a * RatMatrix(3, 3), std::invalid_argument);
}

TEST(RatMatrix, TransposeAndSymmetry) {
  RatMatrix a{{q(1), q(2)}, {q(3), q(4)}};
  EXPECT_EQ(a.transposed(), (RatMatrix{{q(1), q(3)}, {q(2), q(4)}}));
  EXPECT_FALSE(a.is_symmetric());
  RatMatrix s = a.symmetrized();
  EXPECT_TRUE(s.is_symmetric());
  EXPECT_EQ(s(0, 1), q(5, 2));
}

TEST(RatMatrix, DeterminantKnownValues) {
  EXPECT_EQ((RatMatrix{{q(1), q(2)}, {q(3), q(4)}}).determinant(), q(-2));
  EXPECT_EQ(RatMatrix::identity(5).determinant(), q(1));
  RatMatrix singular{{q(1), q(2)}, {q(2), q(4)}};
  EXPECT_EQ(singular.determinant(), q(0));
  // Requires a row swap to find the pivot.
  RatMatrix swap_needed{{q(0), q(1)}, {q(1), q(0)}};
  EXPECT_EQ(swap_needed.determinant(), q(-1));
  RatMatrix m3{{q(2), q(0), q(1)}, {q(1), q(3), q(2)}, {q(1), q(1), q(4)}};
  EXPECT_EQ(m3.determinant(), q(18));
}

TEST(RatMatrix, DeterminantIsMultiplicative) {
  std::mt19937_64 rng{42};
  for (int iter = 0; iter < 20; ++iter) {
    RatMatrix a = random_matrix(rng, 4, 4);
    RatMatrix b = random_matrix(rng, 4, 4);
    EXPECT_EQ((a * b).determinant(), a.determinant() * b.determinant());
  }
}

TEST(RatMatrix, LeadingPrincipalMinors) {
  RatMatrix m{{q(2), q(1), q(0)}, {q(1), q(2), q(1)}, {q(0), q(1), q(2)}};
  auto minors = m.leading_principal_minors();
  ASSERT_EQ(minors.size(), 3u);
  EXPECT_EQ(minors[0], q(2));
  EXPECT_EQ(minors[1], q(3));
  EXPECT_EQ(minors[2], q(4));
  // Zero pivot path: top-left entry zero.
  RatMatrix zp{{q(0), q(1)}, {q(1), q(0)}};
  auto mz = zp.leading_principal_minors();
  ASSERT_EQ(mz.size(), 2u);
  EXPECT_EQ(mz[0], q(0));
  EXPECT_EQ(mz[1], q(-1));
}

TEST(RatMatrix, MinorsMatchExplicitDeterminants) {
  std::mt19937_64 rng{7};
  for (int iter = 0; iter < 10; ++iter) {
    RatMatrix m = random_matrix(rng, 5, 5);
    auto minors = m.leading_principal_minors();
    for (std::size_t k = 0; k < 5; ++k) {
      RatMatrix block{k + 1, k + 1};
      for (std::size_t i = 0; i <= k; ++i)
        for (std::size_t j = 0; j <= k; ++j) block(i, j) = m(i, j);
      EXPECT_EQ(minors[k], block.determinant()) << "k=" << k;
    }
  }
}

TEST(RatMatrix, SolveAndInverse) {
  RatMatrix a{{q(2), q(1)}, {q(1), q(3)}};
  auto x = a.solve(std::vector<Rational>{q(5), q(10)});
  ASSERT_TRUE(x.has_value());
  EXPECT_EQ((*x)[0], q(1));
  EXPECT_EQ((*x)[1], q(3));
  auto inv = a.inverse();
  ASSERT_TRUE(inv.has_value());
  EXPECT_EQ(a * *inv, RatMatrix::identity(2));
  RatMatrix singular{{q(1), q(2)}, {q(2), q(4)}};
  EXPECT_FALSE(singular.inverse().has_value());
  EXPECT_FALSE(singular.solve(std::vector<Rational>{q(1), q(1)}).has_value());
}

TEST(RatMatrix, SolveRandomRoundTrip) {
  std::mt19937_64 rng{123};
  for (int iter = 0; iter < 20; ++iter) {
    RatMatrix a = random_matrix(rng, 6, 6);
    if (a.determinant().is_zero()) continue;
    RatMatrix x_true = random_matrix(rng, 6, 2);
    RatMatrix b = a * x_true;
    auto x = a.solve(b);
    ASSERT_TRUE(x.has_value());
    EXPECT_EQ(*x, x_true);
  }
}

TEST(RatMatrix, Rank) {
  EXPECT_EQ(RatMatrix::identity(4).rank(), 4u);
  RatMatrix r1{{q(1), q(2)}, {q(2), q(4)}};
  EXPECT_EQ(r1.rank(), 1u);
  EXPECT_EQ(RatMatrix(3, 3).rank(), 0u);
  RatMatrix rect{{q(1), q(0), q(1)}, {q(0), q(1), q(1)}};
  EXPECT_EQ(rect.rank(), 2u);
}

TEST(RatMatrix, LdltReconstruction) {
  RatMatrix m{{q(4), q(2), q(0)}, {q(2), q(5), q(3)}, {q(0), q(3), q(6)}};
  auto f = m.ldlt();
  ASSERT_TRUE(f.has_value());
  // Reconstruct L D L^T.
  RatMatrix d{3, 3};
  for (std::size_t i = 0; i < 3; ++i) d(i, i) = f->d[i];
  EXPECT_EQ(f->l * d * f->l.transposed(), m);
  for (const auto& di : f->d) EXPECT_GT(di, q(0));
  // Indefinite matrix has a negative pivot.
  RatMatrix indef{{q(1), q(3)}, {q(3), q(1)}};
  auto fi = indef.ldlt();
  ASSERT_TRUE(fi.has_value());
  EXPECT_LT(fi->d[1], q(0));
  // Zero pivot fails.
  RatMatrix zp{{q(0), q(1)}, {q(1), q(0)}};
  EXPECT_FALSE(zp.ldlt().has_value());
}

TEST(RatMatrix, QuadFormAndApply) {
  RatMatrix p{{q(2), q(1)}, {q(1), q(3)}};
  std::vector<Rational> x{q(1), q(-1)};
  EXPECT_EQ(p.quad_form(x), q(3));  // 2 - 1 - 1 + 3
  auto y = p.apply(x);
  EXPECT_EQ(y[0], q(1));
  EXPECT_EQ(y[1], q(-2));
}

TEST(RatMatrix, FromDoublesRoundedAndExact) {
  const double data[4] = {0.123456, -1.0, 2.5, 1e-8};
  RatMatrix exact = rat_matrix_from_doubles(data, 2, 2, 0);
  EXPECT_DOUBLE_EQ(exact(0, 0).to_double(), 0.123456);
  RatMatrix rounded = rat_matrix_from_doubles(data, 2, 2, 3);
  EXPECT_EQ(rounded(0, 0), Rational{"0.123"});
  EXPECT_EQ(rounded(1, 0), Rational{"2.5"});
}

TEST(RatMatrix, KroneckerProduct) {
  RatMatrix a{{q(1), q(2)}, {q(3), q(4)}};
  RatMatrix b{{q(0), q(1)}, {q(1), q(0)}};
  RatMatrix k = kronecker(a, b);
  ASSERT_EQ(k.rows(), 4u);
  EXPECT_EQ(k(0, 1), q(1));
  EXPECT_EQ(k(0, 3), q(2));
  EXPECT_EQ(k(3, 0), q(3));
  // det(A (x) B) = det(A)^n det(B)^m.
  EXPECT_EQ(k.determinant(),
            a.determinant().pow(2) * b.determinant().pow(2));
}

}  // namespace
}  // namespace spiv::exact
