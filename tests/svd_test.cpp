// Tests for the one-sided Jacobi SVD.
#include "numeric/svd.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

namespace spiv::numeric {
namespace {

Matrix random_matrix(std::mt19937_64& rng, std::size_t n, std::size_t m) {
  std::normal_distribution<double> d{0.0, 1.0};
  Matrix out{n, m};
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < m; ++j) out(i, j) = d(rng);
  return out;
}

TEST(Svd, DiagonalMatrix) {
  Matrix a = Matrix::diagonal(Vector{3, -1, 2});
  Svd s = svd_decompose(a);
  EXPECT_NEAR(s.singular_values[0], 3.0, 1e-12);
  EXPECT_NEAR(s.singular_values[1], 2.0, 1e-12);
  EXPECT_NEAR(s.singular_values[2], 1.0, 1e-12);
}

TEST(Svd, ReconstructionAndOrthogonality) {
  std::mt19937_64 rng{5};
  for (auto [m, n] : {std::pair<std::size_t, std::size_t>{5, 5},
                      {8, 5},
                      {21, 18}}) {
    Matrix a = random_matrix(rng, m, n);
    Svd s = svd_decompose(a);
    // Descending order, nonnegative.
    for (std::size_t i = 1; i < n; ++i)
      EXPECT_LE(s.singular_values[i], s.singular_values[i - 1]);
    EXPECT_GE(s.singular_values.back(), 0.0);
    // A = U S V^T
    Matrix rec = s.u * Matrix::diagonal(s.singular_values) * s.v.transposed();
    EXPECT_LT((rec - a).frobenius_norm(), 1e-10 * (1.0 + a.frobenius_norm()));
    // U column-orthonormal, V orthogonal.
    Matrix utu = s.u.transposed() * s.u;
    EXPECT_LT((utu - Matrix::identity(n)).frobenius_norm(), 1e-10);
    Matrix vtv = s.v.transposed() * s.v;
    EXPECT_LT((vtv - Matrix::identity(n)).frobenius_norm(), 1e-10);
  }
}

TEST(Svd, FrobeniusNormIdentity) {
  std::mt19937_64 rng{6};
  Matrix a = random_matrix(rng, 7, 4);
  Svd s = svd_decompose(a);
  double sum_sq = 0.0;
  for (double sv : s.singular_values) sum_sq += sv * sv;
  EXPECT_NEAR(std::sqrt(sum_sq), a.frobenius_norm(), 1e-10);
}

TEST(Svd, RequiresTallMatrix) {
  EXPECT_THROW(svd_decompose(Matrix{2, 3}), std::invalid_argument);
}

TEST(Svd, ConditionNumber) {
  EXPECT_NEAR(condition_number(Matrix::identity(4)), 1.0, 1e-12);
  Matrix d = Matrix::diagonal(Vector{100, 1});
  EXPECT_NEAR(condition_number(d), 100.0, 1e-10);
  Matrix singular{{1, 2}, {2, 4}};
  EXPECT_TRUE(std::isinf(condition_number(singular)));
  // Wide matrices are handled by transposition.
  Matrix wide{{1, 0, 0}, {0, 2, 0}};
  EXPECT_NEAR(condition_number(wide), 2.0, 1e-10);
}

}  // namespace
}  // namespace spiv::numeric
