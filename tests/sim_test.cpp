// Tests for the switched-system simulator, including the semantic link to
// the robust regions: trajectories inside W_i never switch mode.
#include "sim/integrator.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "lyapunov/synthesis.hpp"
#include "model/engine.hpp"
#include "model/reduction.hpp"
#include "robust/region.hpp"

namespace spiv::sim {
namespace {

using numeric::Matrix;
using numeric::Vector;

TEST(Simulate, ExponentialDecayMatchesClosedForm) {
  // Single mode, no switching: wdot = -w, w(0) = 1 -> w(t) = e^-t.
  model::PwaMode mode;
  mode.a = Matrix{{-1}};
  mode.b = Matrix{1, 1};
  mode.region.push_back(model::HalfSpace{Vector{0.0}, 1.0, false});  // all
  model::PwaSystem sys{{mode}, 1, 0, 1};
  SimOptions options;
  options.t_end = 3.0;
  Trajectory traj = simulate(sys, Vector{0.0}, Vector{1.0}, options);
  EXPECT_FALSE(traj.step_failed);
  EXPECT_TRUE(traj.switches.empty());
  for (const auto& pt : traj.points)
    EXPECT_NEAR(pt.w[0], std::exp(-pt.t), 1e-6) << "t=" << pt.t;
}

TEST(Simulate, AffineModeConvergesToEquilibrium) {
  // wdot = -2w + 4: equilibrium at 2.
  model::PwaMode mode;
  mode.a = Matrix{{-2}};
  mode.b = Matrix{{4.0}};
  mode.region.push_back(model::HalfSpace{Vector{0.0}, 1.0, false});
  model::PwaSystem sys{{mode}, 1, 0, 1};
  SimOptions options;
  options.t_end = 20.0;
  options.convergence_radius = 1e-6;
  Trajectory traj = simulate(sys, Vector{1.0}, Vector{-5.0}, options);
  EXPECT_TRUE(traj.converged);
  EXPECT_NEAR(traj.back().w[0], 2.0, 1e-5);
}

TEST(Simulate, EngineClosedLoopReachesReferenceOutputs) {
  model::StateSpace plant =
      model::balanced_truncation(model::make_engine_model(), 5).sys;
  model::SwitchedPiController ctrl = model::make_engine_controller();
  Vector r = model::make_engine_references(plant);
  model::PwaSystem sys = model::close_loop(plant, ctrl, r);
  // Start at rest (all states zero) and run until settled.
  SimOptions options;
  options.t_end = 60.0;
  options.convergence_radius = 1e-7;
  Trajectory traj = simulate(sys, r, Vector(sys.dim(), 0.0), options);
  EXPECT_FALSE(traj.step_failed);
  // The final mode's equilibrium should be (approximately) reached.
  const std::size_t mode = traj.back().mode;
  Vector w_eq = sys.mode(mode).equilibrium(r);
  double err = 0.0;
  for (std::size_t i = 0; i < sys.dim(); ++i)
    err = std::max(err, std::abs(traj.back().w[i] - w_eq[i]));
  EXPECT_LT(err, 1e-3);
}

TEST(Simulate, TrajectoriesInsideRobustRegionNeverSwitch) {
  // The semantic guarantee of paper §VI-C1: starting inside
  // W_i = {V <= k} ∩ R_i, the trajectory converges without switching.
  model::StateSpace plant =
      model::balanced_truncation(model::make_engine_model(), 3).sys;
  model::SwitchedPiController ctrl = model::make_engine_controller();
  Vector r = model::make_engine_references(plant);
  model::PwaSystem sys = model::close_loop(plant, ctrl, r);
  auto cand = lyap::synthesize(sys.mode(0).a, lyap::Method::Lmi);
  ASSERT_TRUE(cand.has_value());
  robust::RobustRegion region = robust::synthesize_region(sys, 0, cand->p, r);
  ASSERT_TRUE(region.certified);
  ASSERT_FALSE(region.flow_constant_on_surface);

  const Vector w_eq = sys.mode(0).equilibrium(r);
  // Sample directions on the V = 0.9k shell.
  auto eig = numeric::symmetric_eigen(cand->p.symmetrized());
  std::mt19937_64 rng{17};
  std::normal_distribution<double> gauss;
  int launched = 0;
  for (int trial = 0; trial < 12; ++trial) {
    Vector dir(sys.dim());
    for (auto& v : dir) v = gauss(rng);
    const double v_dir = cand->p.quad_form(dir);
    const double scale = std::sqrt(0.9 * region.k / v_dir);
    Vector w0(sys.dim());
    for (std::size_t i = 0; i < sys.dim(); ++i)
      w0[i] = w_eq[i] + scale * dir[i];
    if (!sys.mode(0).contains(w0)) continue;  // W is the *truncated* set
    ++launched;
    SimOptions options;
    options.t_end = 250.0;  // mode-0 abscissa ~ -0.12: slow final decay
    options.convergence_radius = 1e-5;
    Trajectory traj = simulate(sys, r, w0, options);
    EXPECT_TRUE(traj.switches.empty()) << "trial " << trial;
    EXPECT_TRUE(traj.converged) << "trial " << trial;
    // V must be (weakly) decreasing along the trajectory.
    double prev = cand->p.quad_form(dir) * scale * scale;
    for (const auto& pt : traj.points) {
      Vector x(sys.dim());
      for (std::size_t i = 0; i < sys.dim(); ++i) x[i] = pt.w[i] - w_eq[i];
      const double v = cand->p.quad_form(x);
      EXPECT_LT(v, prev * 1.01 + 1e-12);
      prev = v;
    }
  }
  EXPECT_GT(launched, 3);
}

TEST(Simulate, SwitchingOccursWhenStartingDeepInMode1) {
  // Start far below the LPC-speed limit with references demanding mode-0
  // operation: the trajectory must pass through mode 1 and/or switch.
  model::StateSpace plant =
      model::balanced_truncation(model::make_engine_model(), 3).sys;
  model::SwitchedPiController ctrl = model::make_engine_controller();
  Vector r = model::make_engine_references(plant);
  model::PwaSystem sys = model::close_loop(plant, ctrl, r);
  Vector w0(sys.dim(), 0.0);
  ASSERT_EQ(sys.mode_of(w0), 1u);  // y0 = 0 << r0 - Theta
  SimOptions options;
  options.t_end = 60.0;
  Trajectory traj = simulate(sys, r, w0, options);
  EXPECT_FALSE(traj.step_failed);
  // The mode-1 equilibrium lies inside R1 for these references, so the
  // trajectory settles in mode 1 (no switching back and forth at the end).
  EXPECT_EQ(traj.back().mode, 1u);
}

TEST(Simulate, RejectsWrongDimension) {
  model::PwaMode mode;
  mode.a = Matrix{{-1}};
  mode.b = Matrix{1, 1};
  mode.region.push_back(model::HalfSpace{Vector{0.0}, 1.0, false});
  model::PwaSystem sys{{mode}, 1, 0, 1};
  EXPECT_THROW(simulate(sys, Vector{0.0}, Vector{1.0, 2.0}, SimOptions{}),
               std::invalid_argument);
}

}  // namespace
}  // namespace spiv::sim
