// Tests for the piecewise-quadratic switched synthesis (paper §VI-B2).
// The paper's finding: the LMI solver always produces a candidate, and the
// exact validation of the switching-surface condition always fails.
#include "lyapunov/piecewise.hpp"

#include <gtest/gtest.h>

#include "model/engine.hpp"
#include "model/reduction.hpp"

namespace spiv::lyap {
namespace {

using numeric::Vector;

/// References giving the switched system a single global attractor: r0 is
/// chosen so the mode-1 equilibrium falls *outside* region R1 (mode 1 is
/// then transient), the setting presupposed by §III-F.
Vector single_equilibrium_references(const model::StateSpace& plant) {
  Vector r{0.0, 1.0, 0.5, 1.0};
  auto mode1 =
      model::close_loop_single_mode(plant, model::engine_gains_mode1());
  Vector w_eq = mode1.equilibrium(r);
  double y0 = 0.0;
  for (std::size_t j = 0; j < plant.num_states(); ++j)
    y0 += plant.c(0, j) * w_eq[j];
  r[0] = y0;  // r0 - y0 = 0 < Theta: mode-1 equilibrium sits in R0
  return r;
}

class PiecewiseOnReducedModel
    : public ::testing::TestWithParam<SurfaceEncoding> {};

TEST_P(PiecewiseOnReducedModel, CandidateFoundButSurfaceValidationFails) {
  // Size-3 reduced model: small enough for the LMI and the exact checks.
  model::StateSpace engine = model::make_engine_model();
  model::StateSpace plant = model::balanced_truncation(engine, 3).sys;
  model::SwitchedPiController ctrl = model::make_engine_controller();
  Vector r = single_equilibrium_references(plant);
  model::PwaSystem sys = model::close_loop(plant, ctrl, r);

  PiecewiseOptions options;
  auto candidate = synthesize_piecewise(sys, r, GetParam(), options);
  // The paper: "the LMI solver always finds a candidate".
  ASSERT_TRUE(candidate.has_value());
  EXPECT_GT(candidate->synth_seconds, 0.0);

  auto validation = validate_piecewise(sys, r, *candidate, GetParam());
  // The paper: "the subsequent validation using an SMT solver always
  // fails", specifically on the switching-surface condition.
  EXPECT_FALSE(validation.surface);
  EXPECT_FALSE(validation.all_valid());
}

INSTANTIATE_TEST_SUITE_P(BothEncodings, PiecewiseOnReducedModel,
                         ::testing::Values(SurfaceEncoding::Equality,
                                           SurfaceEncoding::Relaxed),
                         [](const auto& info) {
                           return info.param == SurfaceEncoding::Equality
                                      ? "Equality"
                                      : "Relaxed";
                         });

TEST(Piecewise, RejectsSystemsWithMoreGuards) {
  model::StateSpace engine = model::make_engine_model();
  model::StateSpace plant = model::balanced_truncation(engine, 3).sys;
  model::SwitchedPiController ctrl = model::make_engine_controller();
  // Add a second guard to mode 0.
  ctrl.regions[0].push_back(ctrl.regions[0][0]);
  Vector r = single_equilibrium_references(plant);
  model::PwaSystem sys = model::close_loop(plant, ctrl, r);
  EXPECT_THROW(synthesize_piecewise(sys, r, SurfaceEncoding::Equality),
               std::invalid_argument);
}

TEST(Piecewise, Mode0PiecePositivityHoldsExactly) {
  // Even though the surface condition fails, the per-piece conditions for
  // the equilibrium mode (plain quadratic form) typically validate.
  model::StateSpace engine = model::make_engine_model();
  model::StateSpace plant = model::balanced_truncation(engine, 3).sys;
  model::SwitchedPiController ctrl = model::make_engine_controller();
  Vector r = single_equilibrium_references(plant);
  model::PwaSystem sys = model::close_loop(plant, ctrl, r);
  auto candidate =
      synthesize_piecewise(sys, r, SurfaceEncoding::Equality, PiecewiseOptions{});
  ASSERT_TRUE(candidate.has_value());
  auto validation =
      validate_piecewise(sys, r, *candidate, SurfaceEncoding::Equality);
  EXPECT_TRUE(validation.positivity0);
  EXPECT_TRUE(validation.decrease0);
}

}  // namespace
}  // namespace spiv::lyap
