// Tests for the LMI/SDP layer: pencils, the three backends, and the
// Lyapunov LMI constructors.
#include "sdp/lmi.hpp"

#include <gtest/gtest.h>

#include <random>

#include "numeric/eigen.hpp"
#include "numeric/lyapunov.hpp"
#include "sdp/lyapunov_lmi.hpp"

namespace spiv::sdp {
namespace {

using numeric::Matrix;
using numeric::Vector;

TEST(MatrixPencil, EvaluatesAffinely) {
  Matrix f0{{1, 0}, {0, 1}};
  Matrix f1{{0, 1}, {1, 0}};
  MatrixPencil pencil{f0, {f1}};
  Matrix at2 = pencil.evaluate(Vector{2.0});
  EXPECT_DOUBLE_EQ(at2(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(at2(0, 0), 1.0);
  EXPECT_THROW(pencil.evaluate(Vector{1.0, 2.0}), std::invalid_argument);
  EXPECT_THROW(MatrixPencil(f0, {Matrix{3, 3}}), std::invalid_argument);
}

TEST(LmiProblem, MinEigenvalueAcrossBlocks) {
  // Block 1: diag(1+p, 1-p); block 2: [2].
  Matrix f0 = Matrix::identity(2);
  Matrix f1{{1, 0}, {0, -1}};
  LmiProblem problem;
  problem.num_vars = 1;
  problem.constraints.emplace_back(f0, std::vector<Matrix>{f1});
  problem.constraints.emplace_back(Matrix{{2}}, std::vector<Matrix>{Matrix{1, 1}});
  EXPECT_NEAR(problem.min_eigenvalue(Vector{0.5}), 0.5, 1e-12);
  EXPECT_NEAR(problem.min_eigenvalue(Vector{0.0}), 1.0, 1e-12);
}

class BackendTest : public ::testing::TestWithParam<Backend> {};

TEST_P(BackendTest, SolvesSimpleIntervalFeasibility) {
  // 1 + p > 0 and 1 - p > 0 and p - 0.2 > 0: feasible p in (0.2, 1).
  LmiProblem problem;
  problem.num_vars = 1;
  problem.constraints.emplace_back(Matrix{{1}}, std::vector<Matrix>{Matrix{{1}}});
  problem.constraints.emplace_back(Matrix{{1}}, std::vector<Matrix>{Matrix{{-1}}});
  problem.constraints.emplace_back(Matrix{{-0.2}},
                                   std::vector<Matrix>{Matrix{{1}}});
  auto sol = solve_lmi(problem, GetParam());
  ASSERT_TRUE(sol.feasible) << to_string(GetParam());
  EXPECT_GT(sol.p[0], 0.2);
  EXPECT_LT(sol.p[0], 1.0);
  EXPECT_GT(sol.achieved_margin, 0.0);
}

TEST_P(BackendTest, SolvesLyapunovLmiOnStableSystem) {
  Matrix a{{-1, 2}, {0, -3}};
  LyapunovLmiConfig config;
  auto problem = make_lyapunov_lmi(a, config);
  auto sol = solve_lmi(problem, GetParam());
  ASSERT_TRUE(sol.feasible) << to_string(GetParam());
  Matrix p = unvech_double(sol.p, 2);
  // P symmetric PD, A^T P + P A ND.
  EXPECT_TRUE(p.cholesky().has_value());
  Matrix lie = a.transposed() * p + p * a;
  auto eig = numeric::symmetric_eigen(lie);
  EXPECT_LT(eig.values.back(), 0.0) << to_string(GetParam());
}

TEST_P(BackendTest, ReportsInfeasibleForUnstableSystem) {
  // No Lyapunov function exists for an unstable A; solvers must not claim
  // a margin above target.
  Matrix a{{1, 0}, {0, -1}};
  LyapunovLmiConfig config;
  auto problem = make_lyapunov_lmi(a, config);
  LmiOptions options;
  options.max_iterations = 60;
  auto sol = solve_lmi(problem, GetParam(), options);
  if (sol.feasible) {
    // Any point the solver returns must violate the Lie constraint when
    // checked properly (margin cannot truly be positive).
    EXPECT_LT(problem.min_eigenvalue(sol.p), 1e-9);
  }
}

TEST_P(BackendTest, HonorsDeadline) {
  Matrix a = Matrix::diagonal(Vector{-1, -2, -3, -4, -5, -6});
  auto problem = make_lyapunov_lmi(a, LyapunovLmiConfig{});
  LmiOptions options;
  options.deadline = Deadline::after_seconds(-1.0);
  EXPECT_THROW(solve_lmi(problem, GetParam(), options), TimeoutError);
}

INSTANTIATE_TEST_SUITE_P(AllBackends, BackendTest,
                         ::testing::Values(Backend::NewtonAnalyticCenter,
                                           Backend::FastInteriorPoint,
                                           Backend::ShortStepBarrier),
                         [](const auto& info) {
                           std::string s = to_string(info.param);
                           for (auto& ch : s)
                             if (ch == '-') ch = '_';
                           return s;
                         });

TEST(LyapunovLmi, AlphaVariantEnforcesDecayRate) {
  Matrix a{{-2, 1}, {0, -2}};
  LyapunovLmiConfig config;
  config.alpha = 1.0;  // well below 2*|abscissa| = 4
  auto problem = make_lyapunov_lmi(a, config);
  auto sol = solve_lmi(problem, Backend::NewtonAnalyticCenter);
  ASSERT_TRUE(sol.feasible);
  Matrix p = unvech_double(sol.p, 2);
  // A^T P + P A + alpha P < 0  =>  Vdot <= -alpha V.
  Matrix m = a.transposed() * p + p * a + config.alpha * p;
  EXPECT_LT(numeric::symmetric_eigen(m).values.back(), 0.0);
}

TEST(LyapunovLmi, AlphaPlusVariantBoundsEigenvaluesBelow) {
  Matrix a{{-2, 1}, {0, -2}};
  LyapunovLmiConfig config;
  config.alpha = 0.5;
  config.nu = 0.05;
  auto problem = make_lyapunov_lmi(a, config);
  auto sol = solve_lmi(problem, Backend::NewtonAnalyticCenter);
  ASSERT_TRUE(sol.feasible);
  Matrix p = unvech_double(sol.p, 2);
  auto eig = numeric::symmetric_eigen(p);
  EXPECT_GT(eig.values.front(), config.nu);
  EXPECT_LT(eig.values.back(), 1.0);  // kappa normalization
}

TEST(LyapunovLmi, RejectsBadConfig) {
  Matrix a{{-1}};
  LyapunovLmiConfig config;
  config.nu = 2.0;  // >= kappa
  EXPECT_THROW(make_lyapunov_lmi(a, config), std::invalid_argument);
  EXPECT_THROW(make_lyapunov_lmi(Matrix{2, 3}, LyapunovLmiConfig{}),
               std::invalid_argument);
}

TEST(VechBasis, RoundTripsThroughUnvech) {
  const std::size_t n = 4;
  const std::size_t big_k = n * (n + 1) / 2;
  std::mt19937_64 rng{3};
  std::normal_distribution<double> d;
  Vector p(big_k);
  for (auto& v : p) v = d(rng);
  Matrix m = unvech_double(p, n);
  EXPECT_TRUE(m.is_symmetric(0.0));
  // Sum of p_k * E_k equals unvech(p).
  Matrix acc{n, n};
  for (std::size_t k = 0; k < big_k; ++k)
    acc += p[k] * vech_basis_matrix(k, n);
  EXPECT_LT((acc - m).max_abs(), 1e-15);
}

TEST(Backends, LyapunovOnClosedLoopSizedProblem) {
  // A representative mid-size problem (d = 8) solved by the two barrier
  // backends; the projection backend is exercised at small sizes only
  // (it is deliberately slow, mirroring SMCP).
  std::mt19937_64 rng{9};
  std::normal_distribution<double> d;
  Matrix a{8, 8};
  for (std::size_t i = 0; i < 8; ++i)
    for (std::size_t j = 0; j < 8; ++j) a(i, j) = d(rng);
  const double shift = numeric::spectral_abscissa(a) + 1.0;
  for (std::size_t i = 0; i < 8; ++i) a(i, i) -= shift;
  for (Backend b : {Backend::NewtonAnalyticCenter, Backend::FastInteriorPoint}) {
    auto sol = solve_lmi(make_lyapunov_lmi(a, LyapunovLmiConfig{}), b);
    ASSERT_TRUE(sol.feasible) << to_string(b);
    Matrix p = unvech_double(sol.p, 8);
    EXPECT_TRUE(p.cholesky().has_value());
    EXPECT_LT(
        numeric::symmetric_eigen(a.transposed() * p + p * a).values.back(),
        0.0);
  }
}

}  // namespace
}  // namespace spiv::sdp
