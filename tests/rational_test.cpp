// Unit and property tests for spiv::exact::Rational.
#include "exact/rational.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

namespace spiv::exact {
namespace {

TEST(Rational, NormalizationInvariants) {
  Rational r{6, -4};
  EXPECT_EQ(r.num().to_int64(), -3);
  EXPECT_EQ(r.den().to_int64(), 2);
  Rational z{0, 17};
  EXPECT_TRUE(z.is_zero());
  EXPECT_EQ(z.den().to_int64(), 1);
  EXPECT_THROW((Rational{1, 0}), std::domain_error);
}

TEST(Rational, ParseForms) {
  EXPECT_EQ(Rational{"3/4"}, (Rational{3, 4}));
  EXPECT_EQ(Rational{"-3/4"}, (Rational{-3, 4}));
  EXPECT_EQ(Rational{"0.25"}, (Rational{1, 4}));
  EXPECT_EQ(Rational{"-1.5e2"}, (Rational{-150}));
  EXPECT_EQ(Rational{"2.5E-3"}, (Rational{1, 400}));
  EXPECT_EQ(Rational{"42"}, (Rational{42}));
  EXPECT_THROW(Rational{"1/0"}, std::domain_error);
  EXPECT_THROW(Rational{"abc"}, std::invalid_argument);
}

TEST(Rational, FieldOps) {
  Rational a{1, 3}, b{1, 6};
  EXPECT_EQ(a + b, (Rational{1, 2}));
  EXPECT_EQ(a - b, (Rational{1, 6}));
  EXPECT_EQ(a * b, (Rational{1, 18}));
  EXPECT_EQ(a / b, (Rational{2}));
  EXPECT_EQ(-a, (Rational{-1, 3}));
  EXPECT_EQ(a.reciprocal(), (Rational{3}));
  EXPECT_THROW(Rational{}.reciprocal(), std::domain_error);
  EXPECT_THROW(a / Rational{}, std::domain_error);
}

TEST(Rational, CrossCancellingMulDiv) {
  // Results must stay in lowest terms with positive denominators even when
  // all the cancellation happens across the operands.
  EXPECT_EQ(Rational(4, 9) * Rational(3, 8), Rational(1, 6));
  EXPECT_EQ(Rational(-4, 9) * Rational(3, 8), Rational(-1, 6));
  EXPECT_EQ(Rational(4, 9) / Rational(8, 3), Rational(1, 6));
  EXPECT_EQ(Rational(4, 9) / Rational(-8, 3), Rational(-1, 6));
  EXPECT_EQ(Rational(0) * Rational(7, 3), Rational(0));
  EXPECT_EQ(Rational(0) / Rational(7, 3), Rational(0));
  EXPECT_EQ((Rational(0) / Rational(7, 3)).den(), BigInt{1});
  // Aliasing: r *= r and r /= r.
  Rational r{6, 10};
  r *= r;
  EXPECT_EQ(r, Rational(9, 25));
  r /= r;
  EXPECT_EQ(r, Rational(1));
  // Huge common factors cancel exactly.
  const Rational big{BigInt::pow10(40) * BigInt{3}, BigInt{7}};
  EXPECT_EQ(big * big.reciprocal(), Rational(1));
  const Rational x{BigInt{21}, BigInt::pow10(40)};
  EXPECT_EQ(big * x, Rational(9, 1));
}

TEST(Rational, Ordering) {
  EXPECT_LT((Rational{1, 3}), (Rational{1, 2}));
  EXPECT_LT((Rational{-1, 2}), (Rational{-1, 3}));
  EXPECT_GT((Rational{5, 1}), (Rational{9, 2}));
  EXPECT_EQ((Rational{2, 4}), (Rational{1, 2}));
}

TEST(Rational, PowIncludingNegative) {
  EXPECT_EQ((Rational{2, 3}).pow(3), (Rational{8, 27}));
  EXPECT_EQ((Rational{2, 3}).pow(-2), (Rational{9, 4}));
  EXPECT_EQ((Rational{5}).pow(0), (Rational{1}));
}

TEST(Rational, FromDoubleExactIsExact) {
  for (double v : {0.5, -0.125, 3.0, 1.0 / 3.0, 0.1, -1e-20, 12345.6789}) {
    Rational r = Rational::from_double_exact(v);
    EXPECT_DOUBLE_EQ(r.to_double(), v);
  }
  EXPECT_TRUE(Rational::from_double_exact(0.0).is_zero());
  EXPECT_EQ(Rational::from_double_exact(0.5), (Rational{1, 2}));
  EXPECT_THROW(Rational::from_double_exact(std::nan("")), std::domain_error);
  EXPECT_THROW(Rational::from_double_exact(INFINITY), std::domain_error);
}

TEST(Rational, FromDoubleRoundedSignificantFigures) {
  // The paper rounds candidate matrices to k significant figures.
  EXPECT_EQ(Rational::from_double_rounded(0.0123456, 3), Rational{"0.0123"});
  EXPECT_EQ(Rational::from_double_rounded(-98765.4, 2), Rational{"-99000"});
  EXPECT_EQ(Rational::from_double_rounded(1.0, 4), (Rational{1}));
  EXPECT_TRUE(Rational::from_double_rounded(0.0, 5).is_zero());
  EXPECT_THROW(Rational::from_double_rounded(1.0, 0), std::invalid_argument);
  // Rounding at 10 digits then converting to double stays very close.
  const double v = 0.12345678901234;
  EXPECT_NEAR(Rational::from_double_rounded(v, 10).to_double(), v, 1e-10);
}

TEST(Rational, ToDoubleHugeRatios) {
  Rational tiny{BigInt{1}, BigInt::pow10(40)};
  EXPECT_NEAR(tiny.to_double() * 1e40, 1.0, 1e-9);
  Rational big{BigInt::pow10(40), BigInt{3}};
  EXPECT_NEAR(big.to_double() / (1e40 / 3.0), 1.0, 1e-9);
}

TEST(Rational, IsqrtExactAndBounds) {
  EXPECT_EQ(isqrt(BigInt{0}).to_int64(), 0);
  EXPECT_EQ(isqrt(BigInt{1}).to_int64(), 1);
  EXPECT_EQ(isqrt(BigInt{15}).to_int64(), 3);
  EXPECT_EQ(isqrt(BigInt{16}).to_int64(), 4);
  EXPECT_EQ(isqrt(BigInt{"1000000000000000000000000"}).to_string(),
            "1000000000000");
  EXPECT_THROW(isqrt(BigInt{-1}), std::domain_error);
  std::mt19937_64 rng{11};
  for (int i = 0; i < 100; ++i) {
    BigInt v{static_cast<std::int64_t>(rng() >> 1)};
    BigInt s = isqrt(v);
    EXPECT_LE(s * s, v);
    EXPECT_GT((s + BigInt{1}) * (s + BigInt{1}), v);
  }
}

TEST(Rational, SqrtBracketTightAndCorrect) {
  for (auto v : {Rational{2}, Rational{1, 2}, Rational{17, 3}, Rational{100}}) {
    auto [lo, hi] = sqrt_bracket(v, 64);
    EXPECT_LE(lo * lo, v);
    EXPECT_GE(hi * hi, v);
    EXPECT_LE(hi - lo, (Rational{BigInt{1}, BigInt{1}.shifted_left(64)}));
    EXPECT_NEAR(lo.to_double(), std::sqrt(v.to_double()), 1e-12);
  }
  auto [zlo, zhi] = sqrt_bracket(Rational{}, 10);
  EXPECT_TRUE(zlo.is_zero());
  EXPECT_TRUE(zhi.is_zero());
}

class RationalFieldLaws : public ::testing::TestWithParam<unsigned> {};

TEST_P(RationalFieldLaws, RandomizedAgainstDoubles) {
  std::mt19937_64 rng{GetParam()};
  std::uniform_int_distribution<std::int64_t> num{-10000, 10000};
  std::uniform_int_distribution<std::int64_t> den{1, 10000};
  for (int iter = 0; iter < 300; ++iter) {
    Rational a{num(rng), den(rng)}, b{num(rng), den(rng)}, c{num(rng), den(rng)};
    // Field laws.
    EXPECT_EQ(a + b, b + a);
    EXPECT_EQ((a + b) + c, a + (b + c));
    EXPECT_EQ(a * (b + c), a * b + a * c);
    EXPECT_EQ(a + (-a), Rational{});
    if (!a.is_zero()) EXPECT_EQ(a * a.reciprocal(), Rational{1});
    // Consistency with floating point to within rounding.
    EXPECT_NEAR((a * b).to_double(), a.to_double() * b.to_double(), 1e-6);
    // Ordering is total and consistent with doubles when far apart.
    if (std::abs(a.to_double() - b.to_double()) > 1e-9)
      EXPECT_EQ(a < b, a.to_double() < b.to_double());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RationalFieldLaws,
                         ::testing::Values(10u, 20u, 30u));

}  // namespace
}  // namespace spiv::exact
