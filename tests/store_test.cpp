// Tests for the content-addressed certificate store: request keys, the
// spiv-cert v1 format (exact round-trip including rational exact_p),
// corruption handling (miss, never crash), the LRU tiers, and the JobPool
// concurrency contract (N workers racing one key produce exactly one entry
// and identical results).
#include "store/cert_store.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <sstream>
#include <thread>

#include "core/parallel.hpp"

namespace spiv::store {
namespace {

namespace fs = std::filesystem;

/// Fresh temp directory per test, removed on destruction.
class TempDir {
 public:
  explicit TempDir(const std::string& tag) {
    dir_ = fs::temp_directory_path() /
           ("spiv_store_test_" + tag + "_" + std::to_string(::getpid()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }
  [[nodiscard]] std::string path() const { return dir_.string(); }

 private:
  fs::path dir_;
};

CertRequest sample_request(double seed = 1.0) {
  CertRequest req;
  req.a = numeric::Matrix{{-2.0 * seed, 1.0}, {0.25, -3.0}};
  req.method = lyap::Method::LmiAlpha;
  req.backend = sdp::Backend::NewtonAnalyticCenter;
  req.engine = smt::Engine::Sylvester;
  req.digits = 10;
  return req;
}

/// A record with every optional field populated: exact_p with non-trivial
/// rationals, an Invalid verdict carrying a witness.
CertRecord sample_record() {
  CertRecord rec;
  rec.candidate.method = lyap::Method::EqSmt;
  rec.candidate.p = numeric::Matrix{{0.30000000000000004, -1e-17},
                                    {-1e-17, 12345.678901234567}};
  rec.candidate.synth_seconds = 0.012345678901234567;
  exact::RatMatrix ep{2, 2};
  ep(0, 0) = exact::Rational{exact::BigInt{"123456789012345678901234567890"},
                             exact::BigInt{"987654321098765432109876543217"}};
  ep(0, 1) = exact::Rational{-7, 3};
  ep(1, 0) = exact::Rational{-7, 3};
  ep(1, 1) = exact::Rational::from_double_exact(0.1);
  rec.candidate.exact_p = std::move(ep);
  rec.validation.positivity.outcome = smt::Outcome::Valid;
  rec.validation.positivity.seconds = 0.001220703125;
  rec.validation.decrease.outcome = smt::Outcome::Invalid;
  rec.validation.decrease.seconds = 7.0000000000000001e-05;
  rec.validation.decrease.witness = std::vector<exact::Rational>{
      exact::Rational{1, 1}, exact::Rational{-355, 113}};
  return rec;
}

void expect_records_equal(const CertRecord& a, const CertRecord& b) {
  EXPECT_EQ(a.candidate.method, b.candidate.method);
  EXPECT_EQ(a.candidate.p.rows(), b.candidate.p.rows());
  EXPECT_EQ(a.candidate.p.data(), b.candidate.p.data());  // bit-exact doubles
  EXPECT_EQ(a.candidate.synth_seconds, b.candidate.synth_seconds);
  ASSERT_EQ(a.candidate.exact_p.has_value(), b.candidate.exact_p.has_value());
  if (a.candidate.exact_p)
    EXPECT_EQ(*a.candidate.exact_p, *b.candidate.exact_p);  // exact rationals
  EXPECT_EQ(a.validation.positivity.outcome, b.validation.positivity.outcome);
  EXPECT_EQ(a.validation.positivity.seconds, b.validation.positivity.seconds);
  EXPECT_EQ(a.validation.decrease.outcome, b.validation.decrease.outcome);
  EXPECT_EQ(a.validation.decrease.seconds, b.validation.decrease.seconds);
  ASSERT_EQ(a.validation.decrease.witness.has_value(),
            b.validation.decrease.witness.has_value());
  if (a.validation.decrease.witness)
    EXPECT_EQ(*a.validation.decrease.witness, *b.validation.decrease.witness);
}

// ---------------------------------------------------------------- keys

TEST(CertKey, DeterministicAndSensitiveToEveryField) {
  const CertRequest base = sample_request();
  const std::string key = request_key(base);
  EXPECT_EQ(key.size(), 32u);
  EXPECT_EQ(key, request_key(base));  // deterministic

  CertRequest other = base;
  other.digits = 6;
  EXPECT_NE(request_key(other), key);
  other = base;
  other.engine = smt::Engine::Ldlt;
  EXPECT_NE(request_key(other), key);
  other = base;
  other.method = lyap::Method::Lmi;
  EXPECT_NE(request_key(other), key);
  other = base;
  other.backend = std::nullopt;
  EXPECT_NE(request_key(other), key);
  other = base;
  other.a(0, 0) = std::nextafter(other.a(0, 0), 0.0);  // one ulp
  EXPECT_NE(request_key(other), key);
  // Synthesis parameters shape LMI results and must shape the key: a
  // different-alpha certificate replayed for this request would be wrong.
  other = base;
  other.alpha = 0.2;
  EXPECT_NE(request_key(other), key);
  other = base;
  other.nu = 1e-4;
  EXPECT_NE(request_key(other), key);
  other = base;
  other.kappa = 2.0;
  EXPECT_NE(request_key(other), key);
}

TEST(CertKey, NonLmiMethodsShareCertificatesAcrossSynthesisParams) {
  // eq-smt/eq-num/modal results do not depend on alpha/nu/kappa, so an
  // alpha sweep must keep hitting the same certificate.
  CertRequest req = sample_request();
  req.method = lyap::Method::EqNum;
  req.backend = std::nullopt;
  const std::string key = request_key(req);
  req.alpha = 0.5;
  req.nu = 1.0;
  req.kappa = 3.0;
  EXPECT_EQ(request_key(req), key);
}

// -------------------------------------------------------------- format

TEST(CertFormat, ExactRoundTripIncludingRationalExactP) {
  const CertRecord rec = sample_record();
  const std::string key = request_key(sample_request());
  const std::string text = cert_to_string(key, rec);
  const CertRecord back = cert_from_string(text, key);
  expect_records_equal(rec, back);
}

TEST(CertFormat, RoundTripWithoutOptionalFields) {
  CertRecord rec;
  rec.candidate.method = lyap::Method::Modal;
  rec.candidate.p = numeric::Matrix{{1.0}};
  rec.validation.positivity.outcome = smt::Outcome::Valid;
  rec.validation.decrease.outcome = smt::Outcome::Valid;
  const std::string text = cert_to_string("k", rec);
  const CertRecord back = cert_from_string(text, "k");
  expect_records_equal(rec, back);
}

TEST(CertFormat, RejectsDamage) {
  const std::string key = request_key(sample_request());
  const std::string good = cert_to_string(key, sample_record());

  // Truncation (checksum line gone entirely).
  EXPECT_THROW(cert_from_string(good.substr(0, good.size() / 2), key),
               std::runtime_error);
  // Flipped payload byte: checksum mismatch.
  std::string corrupt = good;
  corrupt[good.find("method") + 1] = 'X';
  EXPECT_THROW(cert_from_string(corrupt, key), std::runtime_error);
  // Wrong key.
  EXPECT_THROW(cert_from_string(good, "deadbeef"), std::runtime_error);
  // Version mismatch (re-checksummed so only the version is wrong).
  std::string v2 = good;
  v2.replace(v2.find("spiv-cert v1"), 12, "spiv-cert v2");
  const std::string body = v2.substr(0, v2.rfind("checksum "));
  std::ostringstream sum;
  sum << "checksum " << std::hex << std::setfill('0') << std::setw(16)
      << fnv1a64(body) << "\n";
  EXPECT_THROW(cert_from_string(body + sum.str(), key), std::runtime_error);
}

// --------------------------------------------------------------- store

TEST(CertStore, DiskRoundTripAcrossInstances) {
  TempDir dir{"roundtrip"};
  const std::string key = request_key(sample_request());
  {
    CertStore store{dir.path()};
    EXPECT_EQ(store.lookup(key), nullptr);
    store.insert(key, sample_record());
    EXPECT_EQ(store.stats().writes, 1u);
  }
  CertStore fresh{dir.path()};  // cold memory tier: must come from disk
  auto rec = fresh.lookup(key);
  ASSERT_NE(rec, nullptr);
  expect_records_equal(sample_record(), *rec);
  EXPECT_EQ(fresh.stats().disk_hits, 1u);
  // Second lookup is served from memory — and shares the cached record
  // instead of deep-copying it.
  auto again = fresh.lookup(key);
  ASSERT_NE(again, nullptr);
  EXPECT_EQ(again.get(), rec.get());
  EXPECT_EQ(fresh.stats().memory_hits, 1u);
}

TEST(CertStore, CorruptTruncatedAndMismatchedEntriesAreMisses) {
  TempDir dir{"corrupt"};
  const std::string key = request_key(sample_request());
  CertStore writer{dir.path()};
  writer.insert(key, sample_record());
  const std::string path = writer.path_for(key);

  const auto damaged_lookup = [&](const std::string& contents) {
    std::ofstream out{path, std::ios::binary | std::ios::trunc};
    out << contents;
    out.close();
    CertStore fresh{dir.path()};  // bypass the memory tier
    return fresh.lookup(key);
  };

  std::ifstream in{path, std::ios::binary};
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string good = buf.str();
  in.close();

  EXPECT_EQ(damaged_lookup(good.substr(0, good.size() - 7)), nullptr);
  std::string flipped = good;
  flipped[flipped.size() / 2] ^= 0x20;
  EXPECT_EQ(damaged_lookup(flipped), nullptr);
  EXPECT_EQ(damaged_lookup("spiv-cert v7 garbage\n"), nullptr);
  EXPECT_EQ(damaged_lookup(""), nullptr);

  // A fresh insert repairs the damaged entry.
  {
    std::ofstream out{path, std::ios::binary | std::ios::trunc};
    out << "garbage";
  }
  CertStore repair{dir.path()};
  EXPECT_EQ(repair.lookup(key), nullptr);
  repair.insert(key, sample_record());
  auto rec = repair.lookup(key);
  ASSERT_NE(rec, nullptr);
  expect_records_equal(sample_record(), *rec);
}

TEST(CertStore, LruEvictionFallsBackToDisk) {
  TempDir dir{"lru"};
  // Capacity 16 total = 1 per shard: inserting several keys that land in
  // one shard evicts all but the newest from memory, but disk still serves.
  CertStore store{dir.path(), /*memory_capacity=*/16};
  std::vector<std::string> keys;
  for (int i = 0; i < 6; ++i)
    keys.push_back(request_key(sample_request(1.0 + i)));
  for (const auto& k : keys) store.insert(k, sample_record());
  for (const auto& k : keys) EXPECT_NE(store.lookup(k), nullptr) << k;
  const StoreStats s = store.stats();
  EXPECT_EQ(s.memory_hits + s.disk_hits, keys.size());
  EXPECT_EQ(s.misses, 0u);
}

TEST(CertStore, UppercaseAndGarbageKeysShardSafely) {
  TempDir dir{"oddkeys"};
  CertStore store{dir.path()};
  // Keys normally end in a lowercase-hex nibble; the shard picker must
  // still behave for caller-supplied keys ending in uppercase hex or
  // arbitrary bytes (the old arithmetic wrapped `c - '0'` negative).
  const CertRecord rec = sample_record();
  for (const std::string key :
       {"0123456789ABCDEF", "oddkeyZ", "oddkey!", "oddkey~", "K"}) {
    EXPECT_EQ(store.lookup(key), nullptr) << key;
    store.insert(key, rec);
    auto hit = store.lookup(key);
    ASSERT_NE(hit, nullptr) << key;
    expect_records_equal(rec, *hit);
  }
}

// ------------------------------------------------------- negative tier

TEST(CertStoreNegative, RemembersReasonWithTtlAndCountsPerTier) {
  TempDir dir{"neg"};
  CertStore store{dir.path()};
  EXPECT_FALSE(store.lookup_negative("k", 1.0).has_value());
  store.insert_negative("k", "synth-failed", /*budget_seconds=*/0.0,
                        /*ttl_seconds=*/60.0);
  const auto hit = store.lookup_negative("k", 123.0);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->reason, "synth-failed");
  const StoreStats s = store.stats();
  EXPECT_EQ(s.negative_writes, 1u);
  EXPECT_EQ(s.negative_hits, 1u);
  // Negatives never become certificates: the positive tiers are untouched.
  EXPECT_EQ(s.writes, 0u);
  EXPECT_EQ(s.memory_entries, 0u);
}

TEST(CertStoreNegative, EntriesExpireAfterTheTtl) {
  TempDir dir{"negttl"};
  CertStore store{dir.path()};
  store.insert_negative("gone", "timeout-synthesis", 5.0, /*ttl=*/0.02);
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  EXPECT_FALSE(store.lookup_negative("gone", 1.0).has_value());
  // TTL <= 0 disables the write entirely.
  store.insert_negative("noop", "synth-failed", 0.0, 0.0);
  EXPECT_FALSE(store.lookup_negative("noop", 1.0).has_value());
  EXPECT_EQ(store.stats().negative_writes, 1u);
}

TEST(CertStoreNegative, TimeoutEntriesShieldOnlySmallerOrEqualBudgets) {
  TempDir dir{"negbudget"};
  CertStore store{dir.path()};
  store.insert_negative("t", "timeout-validation", /*budget=*/10.0, 60.0);
  // A run that timed out at 10 s shields retries with <= 10 s of budget...
  EXPECT_TRUE(store.lookup_negative("t", 10.0).has_value());
  EXPECT_TRUE(store.lookup_negative("t", 1.0).has_value());
  // ...but a bigger budget deserves a fresh attempt.
  EXPECT_FALSE(store.lookup_negative("t", 30.0).has_value());
  // budget_seconds == 0 marks a budget-independent failure (synth-failed):
  // it shields any budget, and a budget-bound entry never replaces it.
  store.insert_negative("s", "synth-failed", 0.0, 60.0);
  store.insert_negative("s", "timeout-synthesis", 10.0, 60.0);
  const auto hit = store.lookup_negative("s", 1e9);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->reason, "synth-failed");
}

TEST(CertStoreNegative, MemoryEntriesGaugeTracksTheLruExactly) {
  TempDir dir{"negentries"};
  CertStore store{dir.path(), /*memory_capacity=*/16};  // 1 per shard
  EXPECT_EQ(store.stats().memory_entries, 0u);
  const std::string key = request_key(sample_request());
  store.insert(key, sample_record());
  EXPECT_EQ(store.stats().memory_entries, 1u);
  store.insert(key, sample_record());  // replace, not grow
  EXPECT_EQ(store.stats().memory_entries, 1u);
  // Keys colliding in one shard evict (capacity 1 per shard): the gauge
  // follows the evictions instead of counting monotonically.
  std::size_t inserted = 1;
  for (int i = 0; i < 6; ++i) {
    store.insert(request_key(sample_request(2.0 + i)), sample_record());
    ++inserted;
  }
  const std::size_t entries = store.stats().memory_entries;
  EXPECT_LE(entries, inserted);
  EXPECT_GE(entries, 1u);
}

// ---------------------------------------------------------- concurrency

TEST(CertStore, WorkersRacingOneKeyProduceOneEntryAndIdenticalResults) {
  TempDir dir{"race"};
  CertStore store{dir.path()};
  const std::string key = request_key(sample_request());
  const CertRecord record = sample_record();
  const std::string expected = cert_to_string(key, record);

  constexpr std::size_t kWorkers = 8;
  constexpr std::size_t kRounds = 25;
  std::atomic<int> failures{0};
  core::JobPool pool{kWorkers};
  for (std::size_t w = 0; w < kWorkers; ++w)
    pool.submit([&] {
      for (std::size_t r = 0; r < kRounds; ++r) {
        auto hit = store.lookup(key);
        if (!hit) {
          store.insert(key, record);  // racing inserts of identical bytes
          hit = store.lookup(key);
        }
        if (!hit || cert_to_string(key, *hit) != expected)
          failures.fetch_add(1, std::memory_order_relaxed);
      }
    });
  pool.wait_idle();
  EXPECT_EQ(failures.load(), 0);

  // Exactly one store entry: every tmp file was renamed or removed.
  std::size_t files = 0;
  for (const auto& entry : fs::directory_iterator(dir.path())) {
    ++files;
    EXPECT_EQ(entry.path().filename().string(), key + ".spivcert");
  }
  EXPECT_EQ(files, 1u);

  auto final_rec = store.lookup(key);
  ASSERT_NE(final_rec, nullptr);
  expect_records_equal(record, *final_rec);
}

}  // namespace
}  // namespace spiv::store
