// Tests for state-space models, the switched-PI closed-loop reformulation,
// and the engine case study.
#include <gtest/gtest.h>

#include <cmath>

#include "model/engine.hpp"
#include "model/state_space.hpp"
#include "model/switched_pi.hpp"
#include "numeric/eigen.hpp"

namespace spiv::model {
namespace {

using numeric::Matrix;
using numeric::Vector;

TEST(StateSpace, ValidateAndDcGain) {
  StateSpace sys;
  sys.a = Matrix{{-1, 0}, {0, -2}};
  sys.b = Matrix{{1}, {1}};
  sys.c = Matrix{{1, 0}};
  EXPECT_NO_THROW(sys.validate());
  Matrix g = sys.dc_gain();
  EXPECT_NEAR(g(0, 0), 1.0, 1e-14);  // C(-A)^-1 B = 1/1
  EXPECT_TRUE(sys.is_stable());

  StateSpace bad = sys;
  bad.b = Matrix{3, 1};
  EXPECT_THROW(bad.validate(), std::invalid_argument);
}

TEST(HalfSpace, ContainsAndStrictness) {
  HalfSpace hs{Vector{1, 0}, -1.0, false};  // x0 - 1 >= 0
  EXPECT_TRUE(hs.contains(Vector{1.0, 5.0}));
  EXPECT_TRUE(hs.contains(Vector{2.0, 0.0}));
  EXPECT_FALSE(hs.contains(Vector{0.5, 0.0}));
  HalfSpace strict{Vector{1, 0}, -1.0, true};  // x0 - 1 > 0
  EXPECT_FALSE(strict.contains(Vector{1.0, 0.0}));
  EXPECT_DOUBLE_EQ(strict.evaluate(Vector{3.0, 0.0}), 2.0);
}

TEST(CloseLoop, SisoPiMatchesHandComputation) {
  // Plant: xdot = -x + u, y = x.  PI: u = kp e + ki \int e.
  // Closed loop on w = (x, u):
  //   xdot = -x + u
  //   udot = (-kp*c*a - ki*c) x - kp*c*b u + ki r = (kp - ki) x - kp u + ki r
  StateSpace plant;
  plant.a = Matrix{{-1}};
  plant.b = Matrix{{1}};
  plant.c = Matrix{{1}};
  PiGains gains{Matrix{{2.0}}, Matrix{{3.0}}};  // kp=2, ki=3
  PwaMode mode = close_loop_single_mode(plant, gains);
  ASSERT_EQ(mode.a.rows(), 2u);
  EXPECT_DOUBLE_EQ(mode.a(0, 0), -1.0);
  EXPECT_DOUBLE_EQ(mode.a(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(mode.a(1, 0), 2.0 - 3.0);  // -kp*c*a - ki*c = 2 - 3
  EXPECT_DOUBLE_EQ(mode.a(1, 1), -2.0);       // -kp*c*b
  EXPECT_DOUBLE_EQ(mode.b(1, 0), 3.0);        // ki
  EXPECT_DOUBLE_EQ(mode.b(0, 0), 0.0);

  // Equilibrium: y = r  ->  x = r, u = x = r (since xdot=0 -> u = x).
  Vector w_eq = mode.equilibrium(Vector{5.0});
  EXPECT_NEAR(w_eq[0], 5.0, 1e-12);
  EXPECT_NEAR(w_eq[1], 5.0, 1e-12);
  // Closed loop must be Hurwitz for these gains.
  EXPECT_TRUE(numeric::is_hurwitz(mode.a));
}

TEST(CloseLoop, EquilibriumTracksReferenceOutputs) {
  // At a mode-i equilibrium, K_I e = 0; for diagonal-like K_I with a full
  // column the error entries used by the integrators vanish.
  StateSpace plant = make_engine_model();
  Vector r = make_engine_references(plant);
  PwaMode mode0 = close_loop_single_mode(plant, engine_gains_mode0());
  Vector w_eq = mode0.equilibrium(r);
  // Outputs at equilibrium.
  Vector x(w_eq.begin(), w_eq.begin() + 18);
  Vector y = plant.c.apply(x);
  EXPECT_NEAR(y[0], r[0], 1e-8);  // mode 0 drives e0 -> 0
  EXPECT_NEAR(y[2], r[2], 1e-8);  // e2 -> 0
  EXPECT_NEAR(y[3], r[3], 1e-8);  // e3 -> 0
  // y1 is uncontrolled in mode 0 (free).
}

TEST(Engine, DimensionsMatchPaper) {
  StateSpace plant = make_engine_model();
  EXPECT_EQ(plant.num_states(), 18u);
  EXPECT_EQ(plant.num_inputs(), 3u);
  EXPECT_EQ(plant.num_outputs(), 4u);
  EXPECT_TRUE(plant.is_stable());
  // Deterministic: two calls agree exactly.
  StateSpace again = make_engine_model();
  EXPECT_EQ(plant.a.data(), again.a.data());
}

TEST(Engine, PaperGainMatrices) {
  PiGains g0 = engine_gains_mode0();
  EXPECT_DOUBLE_EQ(g0.ki(0, 0), 10.0);
  EXPECT_DOUBLE_EQ(g0.ki(1, 2), 100.0);
  EXPECT_DOUBLE_EQ(g0.ki(2, 3), 2.0);
  EXPECT_DOUBLE_EQ(g0.kp(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(g0.kp(1, 2), 10.0);
  EXPECT_DOUBLE_EQ(g0.kp(2, 3), 0.5);
  PiGains g1 = engine_gains_mode1();
  EXPECT_DOUBLE_EQ(g1.ki(0, 1), 20.0);
  EXPECT_DOUBLE_EQ(g1.kp(0, 1), 0.1);
  EXPECT_DOUBLE_EQ(g1.ki(0, 0), 0.0);
}

TEST(Engine, ClosedLoopHurwitzInBothModes) {
  StateSpace plant = make_engine_model();
  for (const PiGains& g : {engine_gains_mode0(), engine_gains_mode1()}) {
    PwaMode mode = close_loop_single_mode(plant, g);
    EXPECT_EQ(mode.a.rows(), 21u);
    EXPECT_TRUE(numeric::is_hurwitz(mode.a))
        << "closed-loop spectral abscissa: "
        << numeric::spectral_abscissa(mode.a);
  }
}

TEST(Engine, SwitchedSystemRegionsArePlacedCorrectly) {
  StateSpace plant = make_engine_model();
  SwitchedPiController ctrl = make_engine_controller();
  Vector r = make_engine_references(plant);
  PwaSystem sys = close_loop(plant, ctrl, r);
  ASSERT_EQ(sys.num_modes(), 2u);
  EXPECT_EQ(sys.dim(), 21u);

  // The mode-i equilibrium must lie strictly inside region R_i (the
  // setting required by the paper's robustness analysis).
  for (std::size_t i = 0; i < 2; ++i) {
    Vector w_eq = sys.mode(i).equilibrium(r);
    EXPECT_TRUE(sys.mode(i).contains(w_eq)) << "mode " << i;
    EXPECT_EQ(sys.mode_of(w_eq), i);
    // And not on the boundary: guard value bounded away from zero.
    for (const auto& hs : sys.mode(i).region)
      EXPECT_GT(std::abs(hs.evaluate(w_eq)), 0.5) << "mode " << i;
  }
}

TEST(Engine, RegionsPartitionTheStateSpace) {
  StateSpace plant = make_engine_model();
  SwitchedPiController ctrl = make_engine_controller();
  Vector r = make_engine_references(plant);
  PwaSystem sys = close_loop(plant, ctrl, r);
  // R0: y0 > r0 - theta (strict); R1: y0 <= r0 - theta.  Every w belongs to
  // exactly one region.
  Vector w(21, 0.0);
  // With x = 0, y0 = 0 <= r0 - 1 (r0 > 1 by construction) -> mode 1.
  EXPECT_EQ(sys.mode_of(w), 1u);
  // Push the N1 sensor state so y0 is huge -> mode 0.
  w[12] = r[0] + 100.0;
  EXPECT_EQ(sys.mode_of(w), 0u);
  // Exactly on the surface y0 = r0 - theta -> mode 1 (non-strict side).
  w[12] = r[0] - kEngineTheta;
  EXPECT_EQ(sys.mode_of(w), 1u);
}

TEST(Engine, GuardsRejectWrongDimensions) {
  StateSpace plant = make_engine_model();
  SwitchedPiController ctrl = make_engine_controller();
  EXPECT_THROW(close_loop(plant, ctrl, Vector{1.0}), std::invalid_argument);
  SwitchedPiController bad = ctrl;
  bad.regions[0][0].g = Vector{1.0};  // wrong dimension
  Vector r = make_engine_references(plant);
  EXPECT_THROW(close_loop(plant, bad, r), std::invalid_argument);
}

}  // namespace
}  // namespace spiv::model
