// Tests for the obs subsystem: exact counter totals under concurrency
// (run under tsan by the tsan preset), histogram bucket boundary
// semantics, registry identity and Prometheus exposition, and span
// nesting/stage attribution.
#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <thread>
#include <vector>

#include "obs/span.hpp"

namespace spiv::obs {
namespace {

// ------------------------------------------------------------- counters

TEST(Counter, ConcurrentIncrementsSumExactly) {
  Counter counter;
  constexpr std::size_t kThreads = 8;
  constexpr std::uint64_t kPerThread = 20000;
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t)
    threads.emplace_back([&counter] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) counter.add();
      counter.add(5);
    });
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter.value(), kThreads * (kPerThread + 5));
}

TEST(Gauge, TracksAddSubSet) {
  Gauge gauge;
  EXPECT_EQ(gauge.value(), 0);
  gauge.add(7);
  gauge.sub(3);
  EXPECT_EQ(gauge.value(), 4);
  gauge.sub(10);
  EXPECT_EQ(gauge.value(), -6);  // gauges may go negative transiently
  gauge.set(42);
  EXPECT_EQ(gauge.value(), 42);
}

// ------------------------------------------------------------ histogram

TEST(HistogramTest, BucketBoundariesAreLogScaleWithLeSemantics) {
  // Bounds are 1 µs · 2^i; an observation exactly on a bound belongs to
  // that bucket (Prometheus `le` = less-or-equal).
  EXPECT_DOUBLE_EQ(Histogram::bucket_bound(0), 1e-6);
  EXPECT_DOUBLE_EQ(Histogram::bucket_bound(1), 2e-6);
  EXPECT_DOUBLE_EQ(Histogram::bucket_bound(10), 1024e-6);
  EXPECT_TRUE(std::isinf(Histogram::bucket_bound(Histogram::kBuckets - 1)));

  EXPECT_EQ(Histogram::bucket_index(0.0), 0u);
  EXPECT_EQ(Histogram::bucket_index(1e-6), 0u);           // on the bound
  EXPECT_EQ(Histogram::bucket_index(1.0000001e-6), 1u);   // just past it
  EXPECT_EQ(Histogram::bucket_index(2e-6), 1u);
  EXPECT_EQ(Histogram::bucket_index(3e-6), 2u);
  EXPECT_EQ(Histogram::bucket_index(1e9), Histogram::kBuckets - 1);

  Histogram h;
  h.observe(1e-6);
  h.observe(1.5e-6);
  h.observe(1e9);
  EXPECT_EQ(h.cumulative(0), 1u);
  EXPECT_EQ(h.cumulative(1), 2u);
  // The +Inf bucket's cumulative count equals the total count.
  EXPECT_EQ(h.cumulative(Histogram::kBuckets - 1), 3u);
  EXPECT_EQ(h.count(), 3u);
}

TEST(HistogramTest, ConcurrentObservationsCountExactly) {
  Histogram h;
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kPerThread = 5000;
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t)
    threads.emplace_back([&h, t] {
      for (std::size_t i = 0; i < kPerThread; ++i)
        h.observe(1e-6 * static_cast<double>(t + 1));
    });
  for (auto& t : threads) t.join();
  EXPECT_EQ(h.count(), kThreads * kPerThread);
  EXPECT_EQ(h.cumulative(Histogram::kBuckets - 1), kThreads * kPerThread);
  EXPECT_GT(h.sum_seconds(), 0.0);
}

// ------------------------------------------------------------- registry

TEST(RegistryTest, SameNameYieldsSameInstance) {
  Registry registry;
  Counter& a = registry.counter("obs_test_total");
  Counter& b = registry.counter("obs_test_total");
  EXPECT_EQ(&a, &b);
  EXPECT_NE(&a, &registry.counter("obs_test_other_total"));
  Histogram& h1 = registry.histogram("obs_test_seconds{stage=\"x\"}");
  Histogram& h2 = registry.histogram("obs_test_seconds{stage=\"x\"}");
  EXPECT_EQ(&h1, &h2);
}

TEST(RegistryTest, ExposesPrometheusTextWithTypesAndLabels) {
  Registry registry;
  registry.counter("t_requests_total").add(3);
  registry.gauge("t_depth").set(-2);
  Histogram& h = registry.histogram("t_latency_seconds{stage=\"synth\"}");
  h.observe(0.5);
  h.observe(3e-6);

  const std::string text = registry.expose();
  EXPECT_NE(text.find("# TYPE t_requests_total counter\n"), std::string::npos);
  EXPECT_NE(text.find("t_requests_total 3\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE t_depth gauge\n"), std::string::npos);
  EXPECT_NE(text.find("t_depth -2\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE t_latency_seconds histogram\n"),
            std::string::npos);
  // Histogram labels merge with the le label; +Inf bucket present; sum and
  // count carry the original label set.
  EXPECT_NE(text.find("t_latency_seconds_bucket{stage=\"synth\",le=\"+Inf\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("t_latency_seconds_count{stage=\"synth\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("t_latency_seconds_sum{stage=\"synth\"} 0.5"),
            std::string::npos);
  // OpenMetrics-style terminator, and every line is a comment or a
  // `name value` sample.
  EXPECT_EQ(text.rfind("# EOF"), text.size() - 5);
  std::istringstream is{text};
  std::string line;
  while (std::getline(is, line)) {
    ASSERT_FALSE(line.empty());
    if (line[0] == '#') continue;
    const std::size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    EXPECT_NO_THROW((void)std::stod(line.substr(space + 1))) << line;
  }
}

// ---------------------------------------------------------------- spans

TEST(SpanTest, NestsAndAttributesToStageHistograms) {
  Histogram& outer_h = Registry::global().histogram(
      "spiv_stage_seconds{stage=\"obs-test-outer\"}");
  Histogram& inner_h = Registry::global().histogram(
      "spiv_stage_seconds{stage=\"obs-test-inner\"}");
  const std::uint64_t outer_before = outer_h.count();
  const std::uint64_t inner_before = inner_h.count();
  {
    Span outer{"obs-test-outer"};
    EXPECT_EQ(outer.depth(), 0);
    {
      Span inner{"obs-test-inner", "first"};
      EXPECT_EQ(inner.depth(), 1);
    }
    {
      Span inner{"obs-test-inner", "second"};
      EXPECT_EQ(inner.depth(), 1);  // sibling, not deeper
    }
    EXPECT_GE(outer.elapsed_seconds(), 0.0);
  }
  Span after{"obs-test-outer"};
  EXPECT_EQ(after.depth(), 0);  // stack unwound completely
  EXPECT_EQ(outer_h.count(), outer_before + 1);
  EXPECT_EQ(inner_h.count(), inner_before + 2);
}

TEST(SpanTest, ConcurrentSpansCountExactly) {
  Histogram& h = Registry::global().histogram(
      "spiv_stage_seconds{stage=\"obs-test-mt\"}");
  const std::uint64_t before = h.count();
  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kPerThread = 200;
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t)
    threads.emplace_back([] {
      for (std::size_t i = 0; i < kPerThread; ++i) Span span{"obs-test-mt"};
    });
  for (auto& t : threads) t.join();
  EXPECT_EQ(h.count(), before + kThreads * kPerThread);
}

}  // namespace
}  // namespace spiv::obs
