// Tests for balanced truncation and the benchmark family (paper §VI-A).
#include "model/reduction.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "numeric/eigen.hpp"

namespace spiv::model {
namespace {

using numeric::Matrix;
using numeric::Vector;

TEST(BalancedTruncation, HankelValuesDescendAndReducedIsStable) {
  StateSpace engine = make_engine_model();
  ReducedModel red = balanced_truncation(engine, 5);
  ASSERT_EQ(red.hankel_singular_values.size(), 18u);
  for (std::size_t i = 1; i < 18; ++i)
    EXPECT_LE(red.hankel_singular_values[i],
              red.hankel_singular_values[i - 1] + 1e-12);
  EXPECT_GT(red.hankel_singular_values[0], 0.0);
  EXPECT_EQ(red.sys.num_states(), 5u);
  EXPECT_EQ(red.sys.num_inputs(), 3u);
  EXPECT_EQ(red.sys.num_outputs(), 4u);
  EXPECT_TRUE(red.sys.is_stable());
}

TEST(BalancedTruncation, FullOrderPreservesTransferFunctionDcGain) {
  StateSpace engine = make_engine_model();
  ReducedModel red = balanced_truncation(engine, 18);
  Matrix g_full = engine.dc_gain();
  Matrix g_red = red.sys.dc_gain();
  EXPECT_LT((g_full - g_red).max_abs(), 1e-6 * (1.0 + g_full.max_abs()));
}

TEST(BalancedTruncation, DcGainErrorShrinksWithOrder) {
  StateSpace engine = make_engine_model();
  Matrix g_full = engine.dc_gain();
  double prev_err = 1e100;
  for (std::size_t order : {3u, 5u, 10u, 15u}) {
    Matrix g_red = balanced_truncation(engine, order).sys.dc_gain();
    const double err = (g_full - g_red).max_abs();
    // Errors need not be strictly monotone, but must not blow up, and the
    // largest orders must be accurate.
    EXPECT_LT(err, prev_err * 10 + 1e-3) << "order " << order;
    prev_err = err;
  }
  EXPECT_LT((g_full - balanced_truncation(engine, 15).sys.dc_gain()).max_abs(),
            1e-3);
}

TEST(BalancedTruncation, TruncationErrorBoundedByDiscardedHsv) {
  // Classic bound on the DC-gain error: |G(0) - Gr(0)| <= 2 * sum tail HSV.
  StateSpace engine = make_engine_model();
  for (std::size_t order : {3u, 5u, 10u}) {
    ReducedModel red = balanced_truncation(engine, order);
    double tail = 0.0;
    for (std::size_t i = order; i < 18; ++i)
      tail += red.hankel_singular_values[i];
    const double err =
        numeric::spectral_norm(engine.dc_gain() - red.sys.dc_gain());
    EXPECT_LE(err, 2.0 * tail * (1.0 + 1e-6) + 1e-9) << "order " << order;
  }
}

TEST(BalancedTruncation, RejectsBadArguments) {
  StateSpace engine = make_engine_model();
  EXPECT_THROW(balanced_truncation(engine, 0), std::invalid_argument);
  EXPECT_THROW(balanced_truncation(engine, 19), std::invalid_argument);
  StateSpace unstable = engine;
  unstable.a(0, 0) = 10.0;  // destabilize
  if (!unstable.is_stable())
    EXPECT_THROW(balanced_truncation(unstable, 3), std::runtime_error);
}

TEST(RoundToIntegers, RoundsEveryEntry) {
  StateSpace sys;
  sys.a = Matrix{{-1.4, 0.6}, {0.4, -2.6}};
  sys.b = Matrix{{0.9}, {-0.2}};
  sys.c = Matrix{{1.49, -0.51}};
  StateSpace r = round_to_integers(sys);
  EXPECT_DOUBLE_EQ(r.a(0, 0), -1.0);
  EXPECT_DOUBLE_EQ(r.a(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(r.a(1, 0), 0.0);
  EXPECT_DOUBLE_EQ(r.a(1, 1), -3.0);
  EXPECT_DOUBLE_EQ(r.b(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(r.c(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(r.c(0, 1), -1.0);
}

TEST(BenchmarkFamily, MatchesPaperLayout) {
  auto family = make_benchmark_family();
  ASSERT_EQ(family.size(), 8u);
  // sizes 3i,3,5i,5,10i,10,15,18.
  EXPECT_EQ(family[0].name, "size3i");
  EXPECT_TRUE(family[0].integer_rounded);
  EXPECT_EQ(family[1].name, "size3");
  EXPECT_EQ(family[6].name, "size15");
  EXPECT_EQ(family[7].name, "size18");
  EXPECT_EQ(family[7].size, 18u);
  for (const auto& bm : family) {
    EXPECT_EQ(bm.plant.num_inputs(), 3u) << bm.name;
    EXPECT_EQ(bm.plant.num_outputs(), 4u) << bm.name;
    EXPECT_EQ(bm.plant.num_states(), bm.size) << bm.name;
  }
}

TEST(BenchmarkFamily, EveryClosedLoopModeIsHurwitz) {
  // The paper's Table I reports valid Lyapunov functions for every mode of
  // every benchmark, which presupposes stable closed loops.
  for (const auto& bm : make_benchmark_family()) {
    for (const PiGains& g : {engine_gains_mode0(), engine_gains_mode1()}) {
      PwaMode mode = close_loop_single_mode(bm.plant, g);
      EXPECT_TRUE(numeric::is_hurwitz(mode.a))
          << bm.name << " abscissa "
          << numeric::spectral_abscissa(mode.a);
    }
  }
}

TEST(BenchmarkFamily, EquilibriaLieInTheirRegions) {
  for (const auto& bm : make_benchmark_family()) {
    PwaSystem sys = close_loop(bm.plant, bm.controller, bm.references);
    for (std::size_t i = 0; i < 2; ++i) {
      Vector w_eq = sys.mode(i).equilibrium(bm.references);
      EXPECT_TRUE(sys.mode(i).contains(w_eq)) << bm.name << " mode " << i;
    }
  }
}

}  // namespace
}  // namespace spiv::model
