// Tests for the verify pipeline layer (src/verify) and its golden parity
// with the spiv-serve protocol: `handle_verify` is a thin adapter over
// `run_verify`, so the service's status/cache/key/timing fields must match
// what the pipeline reports directly — on hit, miss, timeout, synth-failed,
// and error paths alike.
#include "verify/verify.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <sstream>

#include "model/reduction.hpp"
#include "model/serialize.hpp"
#include "numeric/eigen.hpp"
#include "model/switched_pi.hpp"
#include "service/service.hpp"
#include "store/cert_store.hpp"

namespace spiv {
namespace {

namespace fs = std::filesystem;

class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    if (old) {
      saved_ = old;
      had_ = true;
    }
    if (value)
      ::setenv(name, value, 1);
    else
      ::unsetenv(name);
  }
  ~ScopedEnv() {
    if (had_)
      ::setenv(name_, saved_.c_str(), 1);
    else
      ::unsetenv(name_);
  }

 private:
  const char* name_;
  std::string saved_;
  bool had_ = false;
};

class VerifyPipelineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("spiv_verify_test_" + std::to_string(::getpid()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    for (const auto& bm : model::benchmark_family())
      if (bm.name == "size3" || bm.name == "size5") {
        std::ofstream out{case_path(bm.name)};
        model::write_case(out, bm);
      }
    ASSERT_TRUE(fs::exists(case_path("size3")));
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  [[nodiscard]] std::string case_path(const std::string& name) const {
    return (dir_ / (name + ".spivcase")).string();
  }

  /// The closed-loop matrix the service derives from the same case.
  [[nodiscard]] static numeric::Matrix closed_a(const std::string& name,
                                                std::size_t mode = 0) {
    for (const auto& bm : model::benchmark_family())
      if (bm.name == name)
        return model::close_loop_single_mode(bm.plant,
                                             bm.controller.gains[mode])
            .a;
    throw std::runtime_error("unknown benchmark " + name);
  }

  /// Drive the protocol and return the full response transcript.
  static std::string drive(const std::string& script,
                           store::CertStore* store) {
    service::ServeOptions options;
    options.jobs = 1;
    options.default_timeout_seconds = 30.0;
    options.store = store;
    std::istringstream in{script};
    std::ostringstream out;
    service::serve(in, out, options);
    return out.str();
  }

  static std::string result_line(const std::string& transcript) {
    std::istringstream is{transcript};
    std::string line;
    while (std::getline(is, line))
      if (line.rfind("result id=", 0) == 0) return line;
    return "";
  }

  /// `name=value` field of a protocol line ("" when absent).
  static std::string field(const std::string& line, const std::string& name) {
    const std::size_t pos = line.find(" " + name + "=");
    if (pos == std::string::npos) return "";
    const std::size_t begin = pos + name.size() + 2;
    const std::size_t end = line.find(' ', begin);
    return line.substr(begin, end == std::string::npos ? end : end - begin);
  }

  /// The service's exact seconds formatting (setprecision(17)).
  static std::string fmt17(double s) {
    std::ostringstream os;
    os << std::setprecision(17) << s;
    return os.str();
  }

  /// Assert the protocol line agrees with a pipeline outcome on every field
  /// both report: status, cache, key, and timing-field presence.
  static void expect_parity(const std::string& line,
                            const verify::VerifyOutcome& res) {
    EXPECT_EQ(field(line, "status"), verify::to_string(res.status)) << line;
    EXPECT_EQ(field(line, "cache"), verify::to_string(res.cache)) << line;
    if (res.status != verify::Status::Error) {
      EXPECT_EQ(field(line, "key"), res.key) << line;
    }
    EXPECT_EQ(!field(line, "synth_seconds").empty(), res.synthesized())
        << line;
    EXPECT_EQ(!field(line, "validate_seconds").empty(), res.synthesized())
        << line;
  }

  fs::path dir_;
};

TEST_F(VerifyPipelineTest, GoldenParityOnMiss) {
  // Independent stores so both runs are cold.
  store::CertStore service_store{(dir_ / "cache_service").string()};
  store::CertStore direct_store{(dir_ / "cache_direct").string()};

  const std::string transcript = drive(
      "verify " + case_path("size3") + " 0 LMIa newton-ac sylvester 10\nquit\n",
      &service_store);
  const std::string line = result_line(transcript);

  verify::VerifyContext ctx;
  ctx.store = &direct_store;
  verify::VerifyRequest req;
  req.a = closed_a("size3");
  req.method = lyap::Method::LmiAlpha;
  req.backend = sdp::Backend::NewtonAnalyticCenter;
  req.engine = smt::Engine::Sylvester;
  req.digits = 10;
  req.budget = verify::SharedBudget{30.0};
  const verify::VerifyOutcome res = verify::run_verify(ctx, req);

  EXPECT_EQ(res.status, verify::Status::Valid);
  EXPECT_EQ(res.cache, verify::Cache::Miss);
  expect_parity(line, res);
}

TEST_F(VerifyPipelineTest, GoldenParityOnHit) {
  store::CertStore store{(dir_ / "cache").string()};

  // Cold run through the pipeline fills the store...
  verify::VerifyContext ctx;
  ctx.store = &store;
  verify::VerifyRequest req;
  req.a = closed_a("size3");
  req.method = lyap::Method::LmiAlpha;
  req.backend = sdp::Backend::NewtonAnalyticCenter;
  req.engine = smt::Engine::Sylvester;
  req.digits = 10;
  req.budget = verify::SharedBudget{30.0};
  const verify::VerifyOutcome cold = verify::run_verify(ctx, req);
  ASSERT_EQ(cold.cache, verify::Cache::Miss);

  // ...then the service and a second direct run both hit the same record.
  const std::string transcript = drive(
      "verify " + case_path("size3") + " 0 LMIa newton-ac sylvester 10\nquit\n",
      &store);
  const std::string line = result_line(transcript);
  const verify::VerifyOutcome warm = verify::run_verify(ctx, req);

  ASSERT_EQ(warm.cache, verify::Cache::Hit);
  expect_parity(line, warm);
  // Hits replay the recorded timings, so the values agree to the bit.
  EXPECT_EQ(field(line, "synth_seconds"), fmt17(warm.synth_seconds)) << line;
  EXPECT_EQ(field(line, "validate_seconds"), fmt17(warm.validate_seconds))
      << line;
  EXPECT_EQ(warm.key, cold.key);
}

TEST_F(VerifyPipelineTest, GoldenParityOnTimeout) {
  // Pin the slow deterministic exact backend so the eq-smt synthesis
  // reliably outlives a millisecond budget.
  ScopedEnv bareiss{"SPIV_EXACT_SOLVER", "bareiss"};
  const std::string transcript = drive(
      "verify " + case_path("size5") + " 0 eq-smt - smt-z3 0 0.001\nquit\n",
      nullptr);
  const std::string line = result_line(transcript);

  verify::VerifyContext ctx;
  verify::VerifyRequest req;
  req.a = closed_a("size5");
  req.method = lyap::Method::EqSmt;
  req.engine = smt::Engine::SmtZ3Style;
  req.digits = 0;
  req.budget = verify::SharedBudget{0.001};
  const verify::VerifyOutcome res = verify::run_verify(ctx, req);

  EXPECT_EQ(res.status, verify::Status::Timeout);
  EXPECT_EQ(res.timeout_stage, verify::Stage::Synthesis);
  EXPECT_EQ(res.cache, verify::Cache::Off);
  expect_parity(line, res);
}

TEST_F(VerifyPipelineTest, GoldenParityOnSynthFailed) {
  // Destabilize the size3 plant: the closed loop has no Lyapunov function,
  // so the LMI is infeasible and synthesis reports synth-failed.
  model::BenchmarkModel bm;
  for (const auto& b : model::benchmark_family())
    if (b.name == "size3") bm = b;
  for (std::size_t i = 0; i < bm.plant.a.rows(); ++i) bm.plant.a(i, i) += 100.0;
  bm.name = "unstable3";
  ASSERT_GT(numeric::spectral_abscissa(model::close_loop_single_mode(
                                           bm.plant, bm.controller.gains[0])
                                           .a),
            0.0)
      << "test plant is supposed to be unstable in closed loop";
  {
    std::ofstream out{case_path("unstable3")};
    model::write_case(out, bm);
  }

  const std::string transcript = drive(
      "verify " + case_path("unstable3") +
          " 0 LMIa newton-ac sylvester 10\nquit\n",
      nullptr);
  const std::string line = result_line(transcript);

  verify::VerifyContext ctx;
  verify::VerifyRequest req;
  req.a = model::close_loop_single_mode(bm.plant, bm.controller.gains[0]).a;
  req.method = lyap::Method::LmiAlpha;
  req.backend = sdp::Backend::NewtonAnalyticCenter;
  req.engine = smt::Engine::Sylvester;
  req.digits = 10;
  req.budget = verify::SharedBudget{30.0};
  const verify::VerifyOutcome res = verify::run_verify(ctx, req);

  EXPECT_EQ(res.status, verify::Status::SynthFailed);
  EXPECT_FALSE(res.synthesized());
  expect_parity(line, res);
}

TEST_F(VerifyPipelineTest, GoldenParityOnError) {
  // Service error: unreadable case file.  Pipeline error: a degenerate
  // request (empty matrix) makes synthesis throw.  Both classify as
  // status=error with caching off.
  const std::string transcript = drive(
      "verify /nonexistent/case 0 LMIa newton-ac sylvester 10\nquit\n",
      nullptr);
  const std::string line = result_line(transcript);

  verify::VerifyContext ctx;
  verify::VerifyRequest req;
  req.a = numeric::Matrix{};
  req.method = lyap::Method::LmiAlpha;
  req.backend = sdp::Backend::NewtonAnalyticCenter;
  const verify::VerifyOutcome res = verify::run_verify(ctx, req);

  EXPECT_EQ(res.status, verify::Status::Error);
  EXPECT_EQ(res.cache, verify::Cache::Off);
  EXPECT_FALSE(res.message.empty());
  EXPECT_EQ(field(line, "status"), verify::to_string(res.status)) << line;
  EXPECT_EQ(field(line, "cache"), verify::to_string(res.cache)) << line;
}

TEST_F(VerifyPipelineTest, BudgetPolicySemantics) {
  // Regression test for the double-budget bug (examples/verify_case.cpp
  // used to mint a FRESH deadline per stage, letting one --timeout T run
  // burn up to 3T).  Under SharedBudget the stages draw from one deadline;
  // under SplitBudget the validation clock must not start until synthesis
  // has finished.  Calibrate a workload where both stages take comparable,
  // measurable time, then observe both policies.
  ScopedEnv bareiss{"SPIV_EXACT_SOLVER", "bareiss"};
  verify::VerifyContext ctx;
  verify::VerifyRequest req;
  req.a = closed_a("size5");
  req.method = lyap::Method::EqSmt;
  req.engine = smt::Engine::SmtZ3Style;
  req.digits = 0;
  req.budget = verify::SharedBudget{600.0};
  const verify::VerifyOutcome calib = verify::run_verify(ctx, req);
  ASSERT_EQ(calib.status, verify::Status::Valid);
  const double s = calib.synth_seconds;
  const double v = calib.validate_seconds;

  // SharedBudget{s + v/2}: synthesis spends s, validation gets only v/2 of
  // the v it needs and must time out — and the whole request stays under
  // s + v wall-clock (the old per-stage deadlines ran to completion).
  // Discriminates only when both stages are long enough that scheduler
  // noise cannot flip the outcome and a fresh deadline would have been
  // ample (s >= 0.6 v, cf. the sibling test in service_test.cpp).
  const bool shared_discriminates = s >= 0.2 && v >= 0.2 && s >= 0.6 * v;
  if (shared_discriminates) {
    req.budget = verify::SharedBudget{s + 0.5 * v};
    const auto t0 = std::chrono::steady_clock::now();
    const verify::VerifyOutcome shared = verify::run_verify(ctx, req);
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    EXPECT_EQ(shared.status, verify::Status::Timeout)
        << "budget " << s + 0.5 * v;
    EXPECT_EQ(shared.timeout_stage, verify::Stage::Validation);
    EXPECT_LT(wall, s + v);
  }

  // SplitBudget{2s, v + s/2}: if the validation deadline were minted at
  // request start, synthesis would eat s of it and leave v - s/2 < v —
  // a timeout.  Minted after synthesis (the Table I semantics), validation
  // holds v + s/2 > v and completes.  Only needs synthesis to be long
  // (the s/2 margin must dominate noise).
  const bool split_discriminates = s >= 0.4;
  if (split_discriminates) {
    req.budget = verify::SplitBudget{2.0 * s + 1.0, v + 0.5 * s};
    const verify::VerifyOutcome split = verify::run_verify(ctx, req);
    EXPECT_EQ(split.status, verify::Status::Valid)
        << "validation clock started ticking during synthesis?";
  }

  if (!shared_discriminates && !split_discriminates)
    GTEST_SKIP() << "workload cannot discriminate on this machine (synthesis "
                 << s << " s, validation " << v << " s)";
}

TEST_F(VerifyPipelineTest, NegativeCacheRepaysSynthFailedWithoutRerunning) {
  // An unstable closed loop has no Lyapunov function: the first request
  // burns a real synthesis attempt (cache=miss, synth-failed), the retry
  // answers from the store's negative tier (cache=neg-hit) without
  // touching a kernel.  synth-failed is budget-independent, so even a
  // much larger retry budget is shielded.
  store::CertStore store{(dir_ / "cache").string()};
  verify::VerifyContext ctx;
  ctx.store = &store;
  ctx.negative_ttl_seconds = 60.0;
  verify::VerifyRequest req;
  req.a = closed_a("size3");
  for (std::size_t i = 0; i < req.a.rows(); ++i) req.a(i, i) += 100.0;
  req.method = lyap::Method::LmiAlpha;
  req.backend = sdp::Backend::NewtonAnalyticCenter;
  req.engine = smt::Engine::Sylvester;
  req.digits = 10;
  req.budget = verify::SharedBudget{30.0};

  const verify::VerifyOutcome cold = verify::run_verify(ctx, req);
  ASSERT_EQ(cold.status, verify::Status::SynthFailed);
  EXPECT_EQ(cold.cache, verify::Cache::Miss);

  req.budget = verify::SharedBudget{300.0};  // bigger budget, same answer
  const verify::VerifyOutcome warm = verify::run_verify(ctx, req);
  EXPECT_EQ(warm.status, verify::Status::SynthFailed);
  EXPECT_EQ(warm.cache, verify::Cache::NegativeHit);
  EXPECT_EQ(std::string{verify::to_string(warm.cache)}, "neg-hit");

  const store::StoreStats s = store.stats();
  EXPECT_EQ(s.negative_writes, 1u);
  EXPECT_EQ(s.negative_hits, 1u);
  EXPECT_EQ(s.writes, 0u);  // a failure never becomes a certificate

  // TTL 0 (the default) opts out entirely: the same retry re-runs.
  verify::VerifyContext off = ctx;
  off.negative_ttl_seconds = 0.0;
  const verify::VerifyOutcome rerun = verify::run_verify(off, req);
  EXPECT_EQ(rerun.status, verify::Status::SynthFailed);
  EXPECT_EQ(rerun.cache, verify::Cache::Miss);
}

}  // namespace
}  // namespace spiv
