// Property tests for the exact validation engines: constructed-PD and
// constructed-indefinite sweeps where ground truth is known by design.
#include <gtest/gtest.h>

#include <random>

#include "smt/validate.hpp"

namespace spiv::smt {
namespace {

using exact::RatMatrix;
using exact::Rational;

struct Case {
  Engine engine;
  bool det;
  unsigned seed;
};

class EngineProperty
    : public ::testing::TestWithParam<std::tuple<Engine, bool, unsigned>> {};

RatMatrix random_rational(std::mt19937_64& rng, std::size_t n,
                          std::int64_t span = 6) {
  std::uniform_int_distribution<std::int64_t> num{-span, span};
  std::uniform_int_distribution<std::int64_t> den{1, 4};
  RatMatrix m{n, n};
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) m(i, j) = Rational{num(rng), den(rng)};
  return m;
}

TEST_P(EngineProperty, GramMatricesOfFullRankFactorsArePd) {
  auto [engine, det, seed] = GetParam();
  CheckOptions options;
  options.det_encoding = det;
  std::mt19937_64 rng{seed};
  for (int iter = 0; iter < 8; ++iter) {
    const std::size_t n = 2 + iter % 5;
    // L unit lower triangular with random entries => L L^T is PD.
    RatMatrix l = RatMatrix::identity(n);
    std::uniform_int_distribution<std::int64_t> num{-3, 3};
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = 0; j < i; ++j) l(i, j) = Rational{num(rng), 2};
    RatMatrix m = l * l.transposed();
    EXPECT_EQ(check_positive_definite(m, engine, options).outcome,
              Outcome::Valid)
        << to_string(engine) << " det=" << det << " iter " << iter;
  }
}

TEST_P(EngineProperty, MatricesWithNegativeDiagonalEntryAreRejected) {
  auto [engine, det, seed] = GetParam();
  CheckOptions options;
  options.det_encoding = det;
  std::mt19937_64 rng{seed + 1};
  for (int iter = 0; iter < 8; ++iter) {
    const std::size_t n = 2 + iter % 5;
    RatMatrix m = (random_rational(rng, n) *
                   random_rational(rng, n).transposed())
                      .symmetrized();
    // Force indefiniteness: one strongly negative diagonal entry.
    m(n - 1, n - 1) = Rational{-1000};
    EXPECT_EQ(check_positive_definite(m, engine, options).outcome,
              Outcome::Invalid)
        << to_string(engine) << " det=" << det << " iter " << iter;
  }
}

TEST_P(EngineProperty, RankDeficientGramMatricesAreNotStrictlyPd) {
  auto [engine, det, seed] = GetParam();
  CheckOptions options;
  options.det_encoding = det;
  std::mt19937_64 rng{seed + 2};
  for (int iter = 0; iter < 6; ++iter) {
    const std::size_t n = 3 + iter % 3;
    // Rank n-1 Gram matrix: B (n x n-1) random, M = B B^T is PSD singular.
    std::uniform_int_distribution<std::int64_t> num{-4, 4};
    RatMatrix b{n, n - 1};
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = 0; j + 1 < n; ++j) b(i, j) = Rational{num(rng)};
    RatMatrix m = (b * b.transposed()).symmetrized();
    EXPECT_EQ(check_positive_definite(m, engine, options).outcome,
              Outcome::Invalid)
        << to_string(engine) << " det=" << det << " iter " << iter;
  }
}

TEST_P(EngineProperty, ScalingInvariance) {
  // PD-ness is invariant under positive scaling of the matrix.
  auto [engine, det, seed] = GetParam();
  CheckOptions options;
  options.det_encoding = det;
  std::mt19937_64 rng{seed + 3};
  RatMatrix l = RatMatrix::identity(4);
  std::uniform_int_distribution<std::int64_t> num{-3, 3};
  for (std::size_t i = 0; i < 4; ++i)
    for (std::size_t j = 0; j < i; ++j) l(i, j) = Rational{num(rng), 3};
  RatMatrix m = l * l.transposed();
  for (auto scale : {Rational{1, 1000000}, Rational{1}, Rational{1000000}}) {
    RatMatrix scaled = m;
    scaled *= scale;
    EXPECT_EQ(check_positive_definite(scaled, engine, options).outcome,
              Outcome::Valid)
        << to_string(engine) << " scale " << scale.to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EngineProperty,
    ::testing::Combine(::testing::Values(Engine::Sylvester, Engine::SympyGauss,
                                         Engine::Ldlt, Engine::SmtZ3Style,
                                         Engine::SmtCvc5Style),
                       ::testing::Bool(), ::testing::Values(11u, 22u)),
    [](const auto& info) {
      std::string s = to_string(std::get<0>(info.param)) +
                      (std::get<1>(info.param) ? "_det" : "") + "_s" +
                      std::to_string(std::get<2>(info.param));
      for (auto& ch : s)
        if (ch == '-' || ch == '+') ch = '_';
      return s;
    });

}  // namespace
}  // namespace spiv::smt
