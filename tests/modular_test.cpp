// Multi-modular exact solver: Montgomery kernel units, rational
// reconstruction, and (the property the whole module hangs on)
// bit-identical agreement with fraction-free Bareiss.
#include <gtest/gtest.h>

#include <cstdlib>
#include <random>

#include "exact/lyapunov_exact.hpp"
#include "exact/matrix.hpp"
#include "exact/modular.hpp"

namespace spiv::exact {
namespace {

RatMatrix random_matrix(std::mt19937_64& rng, std::size_t n, std::size_t m) {
  std::uniform_int_distribution<std::int64_t> num{-9, 9};
  std::uniform_int_distribution<std::int64_t> den{1, 6};
  RatMatrix out{n, m};
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < m; ++j) out(i, j) = Rational{num(rng), den(rng)};
  return out;
}

/// Diagonally dominant => nonsingular (and Hurwitz after the shift).
RatMatrix random_stable(std::mt19937_64& rng, std::size_t n) {
  RatMatrix a = random_matrix(rng, n, n);
  for (std::size_t i = 0; i < n; ++i) a(i, i) -= Rational{40};
  return a;
}

/// RAII environment override (tests run single-threaded).
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    if (old) saved_ = old;
    had_ = old != nullptr;
    if (value)
      ::setenv(name, value, 1);
    else
      ::unsetenv(name);
  }
  ~ScopedEnv() {
    if (had_)
      ::setenv(name_, saved_.c_str(), 1);
    else
      ::unsetenv(name_);
  }

 private:
  const char* name_;
  std::string saved_;
  bool had_ = false;
};

// ---------------------------------------------------------------- kernel

TEST(Montgomery62, RoundTripAndArithmeticMatchReference) {
  const std::uint64_t p = modular_prime(0);
  const Montgomery62 mont{p};
  std::mt19937_64 rng{42};
  std::uniform_int_distribution<std::uint64_t> dist{0, p - 1};
  EXPECT_EQ(mont.from_mont(mont.one()), 1u);
  for (int iter = 0; iter < 200; ++iter) {
    const std::uint64_t a = dist(rng);
    const std::uint64_t b = dist(rng);
    EXPECT_EQ(mont.from_mont(mont.to_mont(a)), a);
    const std::uint64_t prod = mont.from_mont(mont.mul(mont.to_mont(a), mont.to_mont(b)));
    const auto ref = static_cast<std::uint64_t>(
        static_cast<unsigned __int128>(a) * b % p);
    EXPECT_EQ(prod, ref);
    EXPECT_EQ(mont.from_mont(mont.add(mont.to_mont(a), mont.to_mont(b))),
              (a + b) % p);
    const std::uint64_t diff = a >= b ? a - b : a + p - b;
    EXPECT_EQ(mont.from_mont(mont.sub(mont.to_mont(a), mont.to_mont(b))), diff);
    if (a != 0) {
      const std::uint64_t inv = mont.inv(mont.to_mont(a));
      EXPECT_EQ(mont.from_mont(mont.mul(inv, mont.to_mont(a))), 1u);
    }
  }
}

TEST(Montgomery62, RejectsBadModulus) {
  EXPECT_THROW(Montgomery62{0}, std::invalid_argument);
  EXPECT_THROW(Montgomery62{10}, std::invalid_argument);  // even
  EXPECT_THROW(Montgomery62{std::uint64_t{1} << 62}, std::invalid_argument);
}

TEST(ModularPrime, DeterministicDescendingOddSequence) {
  const std::uint64_t p0 = modular_prime(0);
  EXPECT_EQ(p0, modular_prime(0));  // cached, stable
  EXPECT_LT(p0, std::uint64_t{1} << 62);
  for (std::size_t i = 0; i < 8; ++i) {
    const std::uint64_t p = modular_prime(i);
    EXPECT_EQ(p & 1u, 1u);
    if (i > 0) EXPECT_LT(p, modular_prime(i - 1));
    // Spot-check primality against small factors.
    for (std::uint64_t d : {3ull, 5ull, 7ull, 11ull, 13ull, 101ull})
      EXPECT_NE(p % d, 0u) << "prime " << i;
  }
}

// -------------------------------------------------------- reconstruction

TEST(RationalReconstruct, RecoversSmallFractions) {
  const BigInt m{1000003};  // prime
  const BigInt bound = isqrt((m - BigInt{1}) / BigInt{2});
  // u = num * den^-1 mod m, computed by brute-force search of the inverse.
  auto encode = [&](std::int64_t num, std::int64_t den) {
    std::int64_t inv = 0;
    for (std::int64_t t = 1; t < 1000003; ++t)
      if (t * den % 1000003 == 1) {
        inv = t;
        break;
      }
    std::int64_t u = (num % 1000003 + 1000003) % 1000003;
    u = u * inv % 1000003;
    return BigInt{u};
  };
  for (auto [num, den] : {std::pair<std::int64_t, std::int64_t>{22, 7},
                          {-3, 5},
                          {0, 1},
                          {137, 1},
                          {-1, 99}}) {
    auto r = rational_reconstruct(encode(num, den), m, bound);
    ASSERT_TRUE(r.has_value()) << num << "/" << den;
    EXPECT_EQ(*r, Rational(num, den));
  }
}

TEST(RationalReconstruct, RejectsValuesOutsideTheBound) {
  // With bound floor(sqrt((m-1)/2)) ~ 707, a residue encoding 1234/1235
  // (both above the bound) has no admissible representative.
  const BigInt m{1000003};
  const BigInt bound{20};
  auto r = rational_reconstruct(BigInt{987654}, m, bound);
  EXPECT_FALSE(r.has_value());
}

// ---------------------------------------------------------------- solves

TEST(SolveRationalModular, MatchesBareissOnRandomSystems) {
  std::mt19937_64 rng{7001};
  for (std::size_t n = 2; n <= 8; ++n) {
    RatMatrix a = random_stable(rng, n);
    RatMatrix b = random_matrix(rng, n, 2);
    ModularStats stats;
    ModularOptions options;
    options.stats = &stats;
    auto modular = solve_rational_modular(a, b, Deadline{}, options);
    auto bareiss = a.solve(b);
    ASSERT_TRUE(modular.has_value()) << "n=" << n;
    ASSERT_TRUE(bareiss.has_value()) << "n=" << n;
    EXPECT_EQ(*modular, *bareiss) << "n=" << n;
    EXPECT_GE(stats.primes_used, 1u);
  }
}

TEST(SolveRationalModular, SingularSystemReturnsNullopt) {
  RatMatrix a{{Rational{1}, Rational{2}}, {Rational{2}, Rational{4}}};
  RatMatrix b{{Rational{1}}, {Rational{1}}};
  ModularStats stats;
  ModularOptions options;
  options.stats = &stats;
  EXPECT_FALSE(solve_rational_modular(a, b, Deadline{}, options).has_value());
  EXPECT_FALSE(a.solve(b).has_value());  // Bareiss agrees: singular
}

TEST(SolveRationalModular, SkipsSeededUnluckyPrime) {
  // det(A) == modular_prime(0), so the first prime of the sequence sees a
  // singular system and must be skipped without affecting the result.
  const auto p0 = static_cast<std::int64_t>(modular_prime(0));
  RatMatrix a{{Rational{p0}, Rational{0}, Rational{3}},
              {Rational{0}, Rational{1}, Rational{1}},
              {Rational{0}, Rational{0}, Rational{1}}};
  RatMatrix b{{Rational{1}}, {Rational{2}}, {Rational{3}}};
  ModularStats stats;
  ModularOptions options;
  options.stats = &stats;
  auto modular = solve_rational_modular(a, b, Deadline{}, options);
  auto bareiss = a.solve(b);
  ASSERT_TRUE(modular.has_value());
  ASSERT_TRUE(bareiss.has_value());
  EXPECT_EQ(*modular, *bareiss);
  EXPECT_GE(stats.unlucky_primes, 1u);
}

TEST(SolveRationalModular, ResultIndependentOfJobs) {
  std::mt19937_64 rng{7003};
  RatMatrix a = random_stable(rng, 6);
  RatMatrix b = random_matrix(rng, 6, 1);
  ModularOptions serial;
  serial.jobs = 1;
  ModularOptions parallel;
  parallel.jobs = 4;
  auto x1 = solve_rational_modular(a, b, Deadline{}, serial);
  auto x4 = solve_rational_modular(a, b, Deadline{}, parallel);
  ASSERT_TRUE(x1.has_value());
  ASSERT_TRUE(x4.has_value());
  EXPECT_EQ(*x1, *x4);
}

TEST(SolveRationalModular, PaperSizeVechSystemsMatchBareissAcrossJobs) {
  // The Table I "TO" sizes: vech Lyapunov systems of matrix dimension 15
  // and 18 (120 and 171 unknowns).  Small-coefficient random A keeps the
  // Bareiss reference affordable; the property under test is the same as
  // for the engine family — the modular result is bit-identical to
  // Bareiss and independent of the worker count.
  for (std::size_t n : {std::size_t{15}, std::size_t{18}}) {
    std::mt19937_64 rng{7100 + n};
    RatMatrix a = random_stable(rng, n);
    RatMatrix op = lyapunov_operator_vech(a);
    const std::vector<Rational> v = vech(RatMatrix::identity(n) * Rational{-1});
    RatMatrix rhs{op.rows(), 1};
    for (std::size_t i = 0; i < v.size(); ++i) rhs(i, 0) = v[i];
    auto bareiss = op.solve(rhs);
    ASSERT_TRUE(bareiss.has_value()) << "n=" << n;
    for (std::size_t jobs : {std::size_t{1}, std::size_t{4}}) {
      ModularStats stats;
      ModularOptions options;
      options.jobs = jobs;
      options.stats = &stats;
      auto modular = solve_rational_modular(op, rhs, Deadline{}, options);
      ASSERT_TRUE(modular.has_value()) << "n=" << n << " jobs=" << jobs;
      EXPECT_EQ(*modular, *bareiss) << "n=" << n << " jobs=" << jobs;
      EXPECT_GT(stats.primes_used, 0u);
      // The per-phase split is recorded and accounts for real time.
      EXPECT_GT(stats.elim_seconds, 0.0);
      EXPECT_GT(stats.reconstruct_seconds, 0.0);
      EXPECT_GE(stats.crt_seconds, 0.0);
      EXPECT_GE(stats.verify_seconds, 0.0);
    }
  }
}

TEST(SolveRationalModular, PerEntryReconstructionHandlesMixedDenominators) {
  // Output-sensitive reconstruction: a diagonal system whose solution
  // mixes tiny denominators (reconstructable after a handful of primes,
  // then served from the per-entry cache) with ~200-bit ones (needing
  // most of the Hadamard budget), plus repeats that exercise the
  // shared-denominator fast path.
  const BigInt huge1 = BigInt{"340282366920938463463374607431768211507"};
  const BigInt huge2 = BigInt{"18446744073709551629"}.pow(3);
  const std::vector<Rational> expect = {
      Rational{1, 2},
      Rational{-3, 7},
      Rational{5},
      Rational{BigInt{7}, huge1},
      Rational{BigInt{-11}, huge2},
      Rational{BigInt{13}, huge1},   // repeated huge denominator
      Rational{0},
      Rational{1, 2},                // repeated tiny denominator
  };
  const std::size_t n = expect.size();
  RatMatrix a{n, n};
  RatMatrix b{n, 1};
  for (std::size_t i = 0; i < n; ++i) {
    // a(i,i) * x_i = 1  =>  pick a(i,i) = 1 / x_i (x_i = 0 row uses b = 0).
    if (expect[i].is_zero()) {
      a(i, i) = Rational{1};
      b(i, 0) = Rational{0};
    } else {
      a(i, i) = Rational{expect[i].den(), expect[i].num()};
      b(i, 0) = Rational{1};
    }
  }
  ModularOptions options;
  options.checkpoint = 1;  // reconstruct as eagerly as possible
  auto x = solve_rational_modular(a, b, Deadline{}, options);
  ASSERT_TRUE(x.has_value());
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ((*x)(i, 0), expect[i]) << i;
}

TEST(SolveRationalModular, SkipsSeededUnluckyPrimeAtSize15) {
  // A 15-dimensional system whose determinant is divisible by the first
  // prime of the modular sequence: block-triangular with a(0,0) ==
  // modular_prime(0), so p0 must be rejected as unlucky at full size and
  // the result still match Bareiss bit-for-bit.
  std::mt19937_64 rng{7111};
  RatMatrix a = random_stable(rng, 15);
  for (std::size_t j = 1; j < 15; ++j) a(0, j) = Rational{0};
  for (std::size_t i = 1; i < 15; ++i) a(i, 0) = Rational{0};
  a(0, 0) = Rational{static_cast<std::int64_t>(modular_prime(0))};
  // Integer entries only: row scaling must not cancel the seeded factor.
  for (std::size_t i = 1; i < 15; ++i)
    for (std::size_t j = 1; j < 15; ++j)
      a(i, j) = Rational{a(i, j).num() * BigInt{60} / a(i, j).den(), BigInt{1}};
  RatMatrix b = random_matrix(rng, 15, 1);
  ModularStats stats;
  ModularOptions options;
  options.stats = &stats;
  auto modular = solve_rational_modular(a, b, Deadline{}, options);
  auto bareiss = a.solve(b);
  ASSERT_TRUE(modular.has_value());
  ASSERT_TRUE(bareiss.has_value());
  EXPECT_EQ(*modular, *bareiss);
  EXPECT_GE(stats.unlucky_primes, 1u);
}

TEST(SolveRationalModular, CheckpointEnvKnobPreservesTheResult) {
  std::mt19937_64 rng{7117};
  RatMatrix a = random_stable(rng, 6);
  RatMatrix b = random_matrix(rng, 6, 1);
  const auto reference = solve_rational_modular(a, b);
  ASSERT_TRUE(reference.has_value());
  for (const char* v : {"1", "64", "not-a-number"}) {
    ScopedEnv env{"SPIV_MODULAR_CHECKPOINT", v};
    auto x = solve_rational_modular(a, b);
    ASSERT_TRUE(x.has_value()) << v;
    EXPECT_EQ(*x, *reference) << v;
  }
}

TEST(SolveRationalModular, EarlyExitsWhenSolutionIsSmallerThanTheBound) {
  // Scaling the whole system by 10^40 inflates the Hadamard budget far
  // beyond what the (unchanged, small) solution needs; checkpointed trial
  // reconstruction should bail out long before the full prime budget.
  std::mt19937_64 rng{7005};
  RatMatrix a = random_stable(rng, 4);
  RatMatrix b = random_matrix(rng, 4, 1);
  const Rational scale{BigInt::pow10(40), BigInt{1}};
  RatMatrix a2 = a * scale;
  RatMatrix b2 = b * scale;
  ModularStats stats;
  ModularOptions options;
  options.stats = &stats;
  auto x = solve_rational_modular(a2, b2, Deadline{}, options);
  auto reference = a.solve(b);
  ASSERT_TRUE(x.has_value());
  ASSERT_TRUE(reference.has_value());
  EXPECT_EQ(*x, *reference);
  EXPECT_TRUE(stats.early_exit);
}

TEST(SolveRationalModular, HonoursExpiredDeadline) {
  std::mt19937_64 rng{7007};
  RatMatrix a = random_stable(rng, 5);
  RatMatrix b = random_matrix(rng, 5, 1);
  const Deadline expired = Deadline::after_seconds(-1.0);
  EXPECT_THROW((void)solve_rational_modular(a, b, expired), TimeoutError);
}

// ----------------------------------------------------------- determinant

TEST(DeterminantModular, MatchesBareissIncludingSignAndZero) {
  std::mt19937_64 rng{7011};
  for (std::size_t n = 1; n <= 7; ++n) {
    RatMatrix m = random_matrix(rng, n, n);
    EXPECT_EQ(determinant_modular(m), m.determinant()) << "n=" << n;
  }
  // Singular: determinant is exactly zero (no "unlucky prime" confusion).
  RatMatrix s{{Rational{1}, Rational{2}}, {Rational{2}, Rational{4}}};
  EXPECT_TRUE(determinant_modular(s).is_zero());
  // Known negative determinant.
  RatMatrix neg{{Rational{0}, Rational{1}}, {Rational{1}, Rational{0}}};
  EXPECT_EQ(determinant_modular(neg), Rational{-1});
}

// -------------------------------------------------------------- strategy

TEST(Strategy, EnvParsingAndThreshold) {
  {
    ScopedEnv env{"SPIV_EXACT_SOLVER", "bareiss"};
    EXPECT_EQ(exact_solver_strategy(), ExactSolverStrategy::Bareiss);
    EXPECT_FALSE(modular_preferred(100, exact_solver_strategy()));
  }
  {
    ScopedEnv env{"SPIV_EXACT_SOLVER", "modular"};
    EXPECT_EQ(exact_solver_strategy(), ExactSolverStrategy::Modular);
    EXPECT_TRUE(modular_preferred(2, exact_solver_strategy()));
  }
  {
    ScopedEnv env{"SPIV_EXACT_SOLVER", "auto"};
    EXPECT_EQ(exact_solver_strategy(), ExactSolverStrategy::Auto);
    EXPECT_FALSE(modular_preferred(5, exact_solver_strategy()));
    EXPECT_TRUE(modular_preferred(6, exact_solver_strategy()));
  }
  {
    ScopedEnv env{"SPIV_EXACT_SOLVER", nullptr};
    EXPECT_EQ(exact_solver_strategy(), ExactSolverStrategy::Auto);
  }
  {
    ScopedEnv env{"SPIV_EXACT_SOLVER", "simplex"};  // invalid: warn + Auto
    EXPECT_EQ(exact_solver_strategy(), ExactSolverStrategy::Auto);
  }
}

TEST(Strategy, LyapunovSolveIsIdenticalAcrossBackends) {
  std::mt19937_64 rng{7013};
  for (std::size_t n = 3; n <= 5; ++n) {
    RatMatrix a = random_stable(rng, n);
    RatMatrix q = RatMatrix::identity(n);
    std::optional<RatMatrix> via_bareiss, via_modular;
    {
      ScopedEnv env{"SPIV_EXACT_SOLVER", "bareiss"};
      via_bareiss = solve_lyapunov_exact(a, q);
    }
    {
      ScopedEnv env{"SPIV_EXACT_SOLVER", "modular"};
      via_modular = solve_lyapunov_exact(a, q);
    }
    ASSERT_TRUE(via_bareiss.has_value());
    ASSERT_TRUE(via_modular.has_value());
    EXPECT_EQ(*via_bareiss, *via_modular) << "n=" << n;
    // And the result actually solves the Lyapunov equation.
    RatMatrix r = lyapunov_residual(a, *via_modular, q);
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = 0; j < n; ++j) EXPECT_TRUE(r(i, j).is_zero());
  }
}

TEST(Strategy, FullKroneckerSolveIsIdenticalAcrossBackends) {
  std::mt19937_64 rng{7017};
  RatMatrix a = random_stable(rng, 3);
  RatMatrix q = RatMatrix::identity(3);
  std::optional<RatMatrix> via_bareiss, via_modular;
  {
    ScopedEnv env{"SPIV_EXACT_SOLVER", "bareiss"};
    via_bareiss = solve_lyapunov_exact_full_kronecker(a, q);
  }
  {
    ScopedEnv env{"SPIV_EXACT_SOLVER", "modular"};
    via_modular = solve_lyapunov_exact_full_kronecker(a, q);
  }
  ASSERT_TRUE(via_bareiss.has_value());
  ASSERT_TRUE(via_modular.has_value());
  EXPECT_EQ(*via_bareiss, *via_modular);
}

}  // namespace
}  // namespace spiv::exact
