// Robustness to perturbation (paper §VI-C): synthesize certified robust
// regions around the stable states of both operating modes, compute the
// reference-perturbation radius eps, and *demonstrate* the guarantee by
// simulation: trajectories started inside W_i converge without switching.
//
// Build & run:  ./build/examples/robust_regions [order]
//   order: plant order to analyze (default 5; 18 = the full engine).
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <random>

#include "model/reduction.hpp"
#include "robust/region.hpp"
#include "sim/integrator.hpp"
#include "verify/verify.hpp"

int main(int argc, char** argv) {
  using namespace spiv;
  using numeric::Vector;

  const std::size_t order = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 5;
  model::StateSpace engine = model::make_engine_model();
  model::StateSpace plant = order == engine.num_states()
                                ? engine
                                : model::balanced_truncation(engine, order).sys;
  model::SwitchedPiController controller = model::make_engine_controller();
  Vector r = model::make_engine_references(plant);
  model::PwaSystem system = model::close_loop(plant, controller, r);
  std::printf("plant order %zu -> closed loop with %zu states\n", order,
              system.dim());

  for (std::size_t mode = 0; mode < system.num_modes(); ++mode) {
    std::printf("=== mode %zu ===\n", mode);
    verify::VerifyContext ctx = verify::VerifyContext::from_env();
    verify::VerifyRequest req;
    req.a = system.mode(mode).a;
    req.method = lyap::Method::Lmi;
    const verify::VerifyOutcome res = verify::run_synthesize(ctx, req);
    if (!res.synthesized()) {
      std::printf("  synthesis failed\n");
      continue;
    }
    const lyap::Candidate& candidate = *res.candidate_ptr();
    robust::RobustRegion region =
        robust::synthesize_region(system, mode, candidate.p, r);
    if (region.flow_constant_on_surface) {
      std::printf("  flow constant on the surface: W = whole region\n");
    } else {
      std::printf("  k  = %.6g (certified %s, optimal within 1e-3: %s)\n",
                  region.k, region.certified ? "yes" : "NO",
                  region.optimal ? "yes" : "NO");
      std::printf("  vol(W) = %.3e   [%.2fs]\n", region.volume, region.seconds);
    }
    const double eps = robust::reference_robustness_epsilon(
        system, mode, candidate.p, r, region);
    std::printf("  eps = %.3e  (references within this ball keep the old\n"
                "                equilibrium inside the new robust region)\n",
                eps);

    if (region.flow_constant_on_surface || !region.certified) continue;

    // Demonstration: launch trajectories from the 0.9k level set of V and
    // watch them converge without a single mode switch.
    Vector w_eq = system.mode(mode).equilibrium(r);
    std::mt19937_64 rng{2024};
    std::normal_distribution<double> gauss;
    int launched = 0, clean = 0;
    for (int trial = 0; trial < 20; ++trial) {
      Vector dir(system.dim());
      for (auto& v : dir) v = gauss(rng);
      const double scale =
          std::sqrt(0.9 * region.k / candidate.p.quad_form(dir));
      Vector w0(system.dim());
      for (std::size_t i = 0; i < system.dim(); ++i)
        w0[i] = w_eq[i] + scale * dir[i];
      if (!system.mode(mode).contains(w0)) continue;
      ++launched;
      sim::SimOptions options;
      options.t_end = 300.0;
      options.convergence_radius = 1e-5;
      sim::Trajectory traj = sim::simulate(system, r, w0, options);
      if (traj.switches.empty() && traj.converged) ++clean;
    }
    std::printf("  simulation: %d/%d trajectories from the 0.9k shell "
                "converged switch-free\n",
                clean, launched);
  }
  return 0;
}
