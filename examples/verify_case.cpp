// spiv-verify: end-to-end verification of a serialized benchmark case.
//
//   ./build/examples/verify_case <case.spivcase> [--method NAME]
//                                [--digits N] [--timeout SECONDS]
//
// Loads a plant + switched-PI-controller case (see export_benchmarks),
// closes the loop, and for every operating mode:
//   1. synthesizes a candidate Lyapunov function (default: LMIa),
//   2. validates both Lyapunov conditions exactly,
//   3. synthesizes + certifies the robust region and both robustness radii.
// Exit code 0 iff every mode is proved stable with a certified region.
//
// --timeout is a SHARED per-mode budget (verify::SharedBudget): synthesis,
// validation, and the region computation all draw from the same deadline,
// so one mode can never burn more than its declared budget.  (An earlier
// version minted a fresh full-timeout deadline per stage, letting one mode
// spend 3x the declared budget.)
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "lyapunov/synthesis.hpp"
#include "model/serialize.hpp"
#include "numeric/eigen.hpp"
#include "robust/region.hpp"
#include "verify/verify.hpp"

namespace {

using namespace spiv;

std::optional<lyap::Method> parse_method(const std::string& name) {
  for (lyap::Method m :
       {lyap::Method::EqSmt, lyap::Method::EqNum, lyap::Method::Modal,
        lyap::Method::Lmi, lyap::Method::LmiAlpha, lyap::Method::LmiAlphaPlus})
    if (lyap::to_string(m) == name) return m;
  return std::nullopt;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s <case.spivcase> [--method eq-smt|eq-num|modal|"
                 "LMI|LMIa|LMIa+] [--digits N] [--timeout SECONDS]\n",
                 argv[0]);
    return 2;
  }
  lyap::Method method = lyap::Method::LmiAlpha;
  int digits = 10;
  double timeout = 120.0;
  for (int i = 2; i + 1 < argc; i += 2) {
    if (!std::strcmp(argv[i], "--method")) {
      auto m = parse_method(argv[i + 1]);
      if (!m) {
        std::fprintf(stderr, "unknown method '%s'\n", argv[i + 1]);
        return 2;
      }
      method = *m;
    } else if (!std::strcmp(argv[i], "--digits")) {
      digits = std::atoi(argv[i + 1]);
    } else if (!std::strcmp(argv[i], "--timeout")) {
      timeout = std::atof(argv[i + 1]);
    }
  }

  std::ifstream in{argv[1]};
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", argv[1]);
    return 2;
  }
  model::BenchmarkModel bm;
  try {
    bm = model::read_case(in);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "parse error: %s\n", e.what());
    return 2;
  }
  std::printf("case %s: plant %zu/%zu/%zu, %zu modes, method %s\n",
              bm.name.c_str(), bm.plant.num_states(), bm.plant.num_inputs(),
              bm.plant.num_outputs(), bm.controller.num_modes(),
              lyap::to_string(method).c_str());

  model::PwaSystem sys =
      model::close_loop(bm.plant, bm.controller, bm.references);
  bool all_ok = true;
  for (std::size_t mode = 0; mode < sys.num_modes(); ++mode) {
    std::printf("mode %zu: abscissa %+.4f  ", mode,
                numeric::spectral_abscissa(sys.mode(mode).a));
    verify::VerifyContext ctx = verify::VerifyContext::from_env();
    verify::VerifyRequest vreq;
    vreq.a = sys.mode(mode).a;
    vreq.method = method;
    vreq.digits = digits;
    vreq.budget = verify::SharedBudget{timeout};
    const verify::VerifyOutcome res = verify::run_verify(ctx, vreq);
    if (res.status == verify::Status::Timeout) {
      std::printf("%s TIMEOUT\n",
                  res.timeout_stage == verify::Stage::Synthesis
                      ? "synthesis"
                      : "exact validation");
      all_ok = false;
      continue;
    }
    if (res.status == verify::Status::SynthFailed ||
        res.status == verify::Status::Error) {
      std::printf("synthesis FAILED%s%s\n", res.message.empty() ? "" : ": ",
                  res.message.c_str());
      all_ok = false;
      continue;
    }
    if (res.status != verify::Status::Valid) {
      std::printf("exact validation FAILED\n");
      all_ok = false;
      continue;
    }
    const lyap::Candidate& cand = *res.candidate_ptr();
    std::printf("stable (exact proof, %.2fs+%.2fs)  ", res.synth_seconds,
                res.validate_seconds);
    try {
      robust::RegionOptions ropt;
      ropt.digits = digits;
      // Chain the region work on the pipeline's remaining budget.
      ropt.deadline = res.deadline;
      robust::RobustRegion region =
          robust::synthesize_region(sys, mode, cand.p, bm.references, ropt);
      const double eps = robust::reference_robustness_epsilon(
          sys, mode, cand.p, bm.references, region);
      const double alpha = robust::state_robustness_radius(
          sys, mode, cand.p, bm.references, region);
      std::printf("region k=%.4g cert=%s vol=%.3g alpha=%.3g eps=%.3g\n",
                  region.k, region.certified ? "yes" : "NO", region.volume,
                  alpha, eps);
      all_ok &= region.certified;
    } catch (const std::exception& e) {
      std::printf("region synthesis failed: %s\n", e.what());
      all_ok = false;
    }
  }
  std::printf("%s\n", all_ok ? "VERIFIED" : "NOT VERIFIED");
  return all_ok ? 0 : 1;
}
