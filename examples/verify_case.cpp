// spiv-verify: end-to-end verification of a serialized benchmark case.
//
//   ./build/examples/verify_case <case.spivcase> [--method NAME]
//                                [--digits N] [--timeout SECONDS]
//
// Loads a plant + switched-PI-controller case (see export_benchmarks),
// closes the loop, and for every operating mode:
//   1. synthesizes a candidate Lyapunov function (default: LMIa),
//   2. validates both Lyapunov conditions exactly,
//   3. synthesizes + certifies the robust region and both robustness radii.
// Exit code 0 iff every mode is proved stable with a certified region.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "lyapunov/synthesis.hpp"
#include "model/serialize.hpp"
#include "numeric/eigen.hpp"
#include "robust/region.hpp"
#include "smt/validate.hpp"

namespace {

using namespace spiv;

std::optional<lyap::Method> parse_method(const std::string& name) {
  for (lyap::Method m :
       {lyap::Method::EqSmt, lyap::Method::EqNum, lyap::Method::Modal,
        lyap::Method::Lmi, lyap::Method::LmiAlpha, lyap::Method::LmiAlphaPlus})
    if (lyap::to_string(m) == name) return m;
  return std::nullopt;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s <case.spivcase> [--method eq-smt|eq-num|modal|"
                 "LMI|LMIa|LMIa+] [--digits N] [--timeout SECONDS]\n",
                 argv[0]);
    return 2;
  }
  lyap::Method method = lyap::Method::LmiAlpha;
  int digits = 10;
  double timeout = 120.0;
  for (int i = 2; i + 1 < argc; i += 2) {
    if (!std::strcmp(argv[i], "--method")) {
      auto m = parse_method(argv[i + 1]);
      if (!m) {
        std::fprintf(stderr, "unknown method '%s'\n", argv[i + 1]);
        return 2;
      }
      method = *m;
    } else if (!std::strcmp(argv[i], "--digits")) {
      digits = std::atoi(argv[i + 1]);
    } else if (!std::strcmp(argv[i], "--timeout")) {
      timeout = std::atof(argv[i + 1]);
    }
  }

  std::ifstream in{argv[1]};
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", argv[1]);
    return 2;
  }
  model::BenchmarkModel bm;
  try {
    bm = model::read_case(in);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "parse error: %s\n", e.what());
    return 2;
  }
  std::printf("case %s: plant %zu/%zu/%zu, %zu modes, method %s\n",
              bm.name.c_str(), bm.plant.num_states(), bm.plant.num_inputs(),
              bm.plant.num_outputs(), bm.controller.num_modes(),
              lyap::to_string(method).c_str());

  model::PwaSystem sys =
      model::close_loop(bm.plant, bm.controller, bm.references);
  bool all_ok = true;
  for (std::size_t mode = 0; mode < sys.num_modes(); ++mode) {
    std::printf("mode %zu: abscissa %+.4f  ", mode,
                numeric::spectral_abscissa(sys.mode(mode).a));
    lyap::SynthesisOptions options;
    options.deadline = Deadline::after_seconds(timeout);
    std::optional<lyap::Candidate> cand;
    try {
      cand = lyap::synthesize(sys.mode(mode).a, method, options);
    } catch (const TimeoutError&) {
      std::printf("synthesis TIMEOUT\n");
      all_ok = false;
      continue;
    }
    if (!cand) {
      std::printf("synthesis FAILED\n");
      all_ok = false;
      continue;
    }
    smt::CheckOptions check;
    check.deadline = Deadline::after_seconds(timeout);
    auto verdict = smt::validate_lyapunov(sys.mode(mode).a, cand->p,
                                          smt::Engine::Sylvester, digits,
                                          check);
    if (!verdict.valid()) {
      std::printf("exact validation FAILED\n");
      all_ok = false;
      continue;
    }
    std::printf("stable (exact proof, %.2fs+%.2fs)  ", cand->synth_seconds,
                verdict.seconds());
    try {
      robust::RegionOptions ropt;
      ropt.digits = digits;
      ropt.deadline = Deadline::after_seconds(timeout);
      robust::RobustRegion region =
          robust::synthesize_region(sys, mode, cand->p, bm.references, ropt);
      const double eps = robust::reference_robustness_epsilon(
          sys, mode, cand->p, bm.references, region);
      const double alpha = robust::state_robustness_radius(
          sys, mode, cand->p, bm.references, region);
      std::printf("region k=%.4g cert=%s vol=%.3g alpha=%.3g eps=%.3g\n",
                  region.k, region.certified ? "yes" : "NO", region.volume,
                  alpha, eps);
      all_ok &= region.certified;
    } catch (const std::exception& e) {
      std::printf("region synthesis failed: %s\n", e.what());
      all_ok = false;
    }
  }
  std::printf("%s\n", all_ok ? "VERIFIED" : "NOT VERIFIED");
  return all_ok ? 0 : 1;
}
