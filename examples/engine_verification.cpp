// The paper's industrial case study, end to end (paper §V + §VI-B):
// the 18-state turbofan engine under the 2-mode switched PI controller
// becomes a 21-state autonomous PWA system; both operating modes are
// proved asymptotically stable with exact (symbolic) certificates.
//
// Build & run:  ./build/examples/engine_verification
#include <cstdio>

#include "model/engine.hpp"
#include "numeric/eigen.hpp"
#include "verify/verify.hpp"

int main() {
  using namespace spiv;

  // The engine model (18 states, 3 inputs, 4 outputs) and the switched PI
  // controller with the paper's gain matrices.
  model::StateSpace engine = model::make_engine_model();
  model::SwitchedPiController controller = model::make_engine_controller();
  numeric::Vector r = model::make_engine_references(engine);
  std::printf("engine: %zu states, %zu inputs, %zu outputs\n",
              engine.num_states(), engine.num_inputs(), engine.num_outputs());
  std::printf("references r = (%.4f, %.4f, %.4f, %.4f), Theta = %.1f\n", r[0],
              r[1], r[2], r[3], model::kEngineTheta);

  // Close the loop: hybrid system with 21 state variables and two modes.
  model::PwaSystem system = model::close_loop(engine, controller, r);
  std::printf("closed loop: %zu state variables, %zu modes\n\n", system.dim(),
              system.num_modes());

  bool all_proved = true;
  for (std::size_t mode = 0; mode < system.num_modes(); ++mode) {
    const numeric::Matrix& a = system.mode(mode).a;
    std::printf("=== mode %zu (%s) ===\n", mode,
                mode == 0 ? "thrust control" : "LPC spool-speed limiting");
    std::printf("  spectral abscissa: %.4f\n", numeric::spectral_abscissa(a));

    // Synthesize with the LMIa method (decay-rate alpha), the method the
    // paper found most robust, then validate exactly — one verify-pipeline
    // call owns both stages.
    verify::VerifyContext ctx = verify::VerifyContext::from_env();
    verify::VerifyRequest req;
    req.a = a;
    req.method = lyap::Method::LmiAlpha;
    req.digits = 10;
    req.options.alpha = 0.1;
    const verify::VerifyOutcome res = verify::run_verify(ctx, req);
    if (!res.synthesized()) {
      std::printf("  synthesis FAILED\n");
      all_proved = false;
      continue;
    }
    std::printf("  LMIa candidate synthesized in %.2fs\n", res.synth_seconds);

    std::printf("  exact validation (10 significant digits): %s  [%.2fs]\n",
                res.status == verify::Status::Valid
                    ? "VALID — mode proved stable"
                    : "FAILED",
                res.validate_seconds);
    all_proved &= res.status == verify::Status::Valid;

    // Equilibrium of the mode and its location w.r.t. the guard.
    numeric::Vector w_eq = system.mode(mode).equilibrium(r);
    std::printf("  equilibrium inside its region: %s\n\n",
                system.mode(mode).contains(w_eq) ? "yes" : "no");
  }

  std::printf("%s\n", all_proved
                          ? "both operating modes carry exact stability proofs"
                          : "verification incomplete");
  return all_proved ? 0 : 1;
}
