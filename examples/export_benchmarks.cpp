// Export the full benchmark family to portable text files — the paper
// plans to archive this case study for ARCH-COMP (§VII); this example
// produces the shareable instances (plant + switched PI controller +
// references) and shows how to read one back.
//
// Build & run:  ./build/examples/export_benchmarks [directory]
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "model/serialize.hpp"

int main(int argc, char** argv) {
  using namespace spiv;
  const std::filesystem::path dir = argc > 1 ? argv[1] : "benchmark_cases";
  std::filesystem::create_directories(dir);

  for (const auto& bm : model::make_benchmark_family()) {
    const std::filesystem::path path = dir / (bm.name + ".spivcase");
    std::ofstream out{path};
    model::write_case(out, bm);
    std::printf("wrote %-28s (%zu states, %s)\n", path.c_str(), bm.size,
                bm.integer_rounded ? "integer-rounded" : "float");
  }

  // Round-trip demonstration: read one case back and rebuild its closed
  // loop.
  std::ifstream in{dir / "size18.spivcase"};
  model::BenchmarkModel bm = model::read_case(in);
  model::PwaSystem sys =
      model::close_loop(bm.plant, bm.controller, bm.references);
  std::printf("\nre-loaded %s: closed loop with %zu states and %zu modes\n",
              bm.name.c_str(), sys.dim(), sys.num_modes());
  return 0;
}
