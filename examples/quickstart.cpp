// Quickstart: verify stability of a small control loop with a symbolic
// certificate, end to end.
//
//   1. model a plant and a PI controller,
//   2. close the loop (paper §IV-B reformulation),
//   3. synthesize a candidate Lyapunov function numerically,
//   4. validate it *exactly* (rational arithmetic, Sylvester criterion).
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "model/switched_pi.hpp"
#include "numeric/eigen.hpp"
#include "verify/verify.hpp"

int main() {
  using namespace spiv;
  using numeric::Matrix;

  // A two-state plant: xdot = A x + B u, y = C x.
  model::StateSpace plant;
  plant.a = Matrix{{-1.0, 0.5}, {0.0, -2.0}};
  plant.b = Matrix{{0.0}, {1.0}};
  plant.c = Matrix{{1.0, 0.0}};
  plant.validate();
  std::printf("plant: %zu states, %zu inputs, %zu outputs, stable: %s\n",
              plant.num_states(), plant.num_inputs(), plant.num_outputs(),
              plant.is_stable() ? "yes" : "no");

  // A PI controller u = Kp e + Ki \int e with e = r - y.
  model::PiGains pi{Matrix{{2.0}}, Matrix{{4.0}}};

  // Close the loop: the state becomes w = (x, u), the system autonomous.
  model::PwaMode closed = model::close_loop_single_mode(plant, pi);
  std::printf("closed loop: %zu states, spectral abscissa %.4f\n",
              closed.a.rows(), numeric::spectral_abscissa(closed.a));

  // Synthesize a candidate Lyapunov function (Bartels–Stewart here; see
  // lyap::Method for the full palette of paper methods) and validate it
  // exactly — one call into the verify pipeline: the candidate is rounded
  // to 10 significant figures and both Lyapunov conditions are decided in
  // exact rational arithmetic (Sylvester criterion).
  verify::VerifyContext ctx = verify::VerifyContext::from_env();
  verify::VerifyRequest req;
  req.a = closed.a;
  req.method = lyap::Method::EqNum;
  req.digits = 10;
  const verify::VerifyOutcome res = verify::run_verify(ctx, req);
  if (!res.synthesized()) {
    std::printf("synthesis failed — the closed loop is not stable\n");
    return 1;
  }
  const lyap::Candidate& candidate = *res.candidate_ptr();
  std::printf("candidate synthesized in %.4fs\n", res.synth_seconds);

  const smt::LyapunovValidation& verdict = *res.validation_ptr();
  std::printf("exact validation: positivity %s, decrease %s => %s\n",
              verdict.positivity.outcome == smt::Outcome::Valid ? "ok" : "FAIL",
              verdict.decrease.outcome == smt::Outcome::Valid ? "ok" : "FAIL",
              res.status == verify::Status::Valid ? "PROVED STABLE"
                                                  : "NOT PROVED");

  // The certificate: V(w) = (w - w_eq)^T P (w - w_eq).
  std::printf("P =\n");
  for (std::size_t i = 0; i < candidate.p.rows(); ++i) {
    for (std::size_t j = 0; j < candidate.p.cols(); ++j)
      std::printf("  % .6f", candidate.p(i, j));
    std::printf("\n");
  }
  return res.status == verify::Status::Valid ? 0 : 1;
}
