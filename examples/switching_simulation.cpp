// The switching behaviour of the engine control loop (paper §V-B): start
// the engine from rest with thrust-demand references; the LPC spool-speed
// limiter (mode 1) is active while r0 - y0 >= Theta, and the loop hands
// over to the thrust controller (mode 0) only if the spool-speed command
// allows it.  Prints a time series of the four outputs and the active mode
// plus all switching events.
//
// Build & run:  ./build/examples/switching_simulation [order]
#include <cstdio>
#include <cstdlib>

#include "model/reduction.hpp"
#include "sim/integrator.hpp"

int main(int argc, char** argv) {
  using namespace spiv;
  using numeric::Vector;

  const std::size_t order = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 10;
  model::StateSpace engine = model::make_engine_model();
  model::StateSpace plant = order == engine.num_states()
                                ? engine
                                : model::balanced_truncation(engine, order).sys;
  model::SwitchedPiController controller = model::make_engine_controller();
  Vector r = model::make_engine_references(plant);
  model::PwaSystem system = model::close_loop(plant, controller, r);

  std::printf("references: LPC-limit r0=%.3f, PR r1=%.3f, Mach r2=%.3f, "
              "N2 r3=%.3f (Theta = %.1f)\n\n",
              r[0], r[1], r[2], r[3], model::kEngineTheta);

  sim::SimOptions options;
  options.t_end = 40.0;
  options.record_interval = 0.5;
  sim::Trajectory traj = sim::simulate(system, r, Vector(system.dim(), 0.0),
                                       options);

  std::printf("%8s %6s %10s %10s %10s %10s\n", "t", "mode", "y0(LPC)",
              "y1(PR)", "y2(Mach)", "y3(N2)");
  for (const auto& pt : traj.points) {
    // Outputs are C x with x the first plant-order components of w.
    Vector x(pt.w.begin(),
             pt.w.begin() + static_cast<std::ptrdiff_t>(plant.num_states()));
    Vector y = plant.c.apply(x);
    std::printf("%8.2f %6zu %10.4f %10.4f %10.4f %10.4f\n", pt.t, pt.mode,
                y[0], y[1], y[2], y[3]);
  }

  std::printf("\nswitching events: %zu\n", traj.switches.size());
  for (const auto& sw : traj.switches)
    std::printf("  t=%.4f: mode %zu -> %zu\n", sw.t, sw.from, sw.to);
  std::printf("final mode: %zu\n", traj.back().mode);
  return 0;
}
